// Minimal GoogleTest-compatible shim.
//
// Fallback used only when no real GoogleTest is available (no installed
// package, no /usr/src/googletest, no network for FetchContent) — see
// cmake/GTestSetup.cmake. It implements exactly the API surface the suites in
// tests/ use: TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P with
// Range/Values/Combine, the EXPECT_* / ASSERT_* families below,
// ADD_FAILURE / FAIL, SCOPED_TRACE and GTEST_SKIP. It is not a general
// gtest replacement.
#ifndef MINIGTEST_GTEST_H_
#define MINIGTEST_GTEST_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

namespace testing {

namespace internal {

// Thrown by failed ASSERT_* to abort the current TestBody.
struct FatalFailure {};

void ReportFailure(const char* file, int line, const std::string& message);
void MarkSkipped(const std::string& message);

// Active SCOPED_TRACE frames; ReportFailure appends them to each message.
std::vector<std::string>& TraceStack();

/// RAII frame for SCOPED_TRACE(message).
class ScopedTrace {
 public:
  template <typename T>
  ScopedTrace(const char* file, int line, const T& message) {
    std::ostringstream os;
    os << file << ":" << line << ": " << message;
    TraceStack().push_back(os.str());
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() { TraceStack().pop_back(); }
};

// Destructor-reporting failure sink so `EXPECT_EQ(a, b) << "context"` works.
class Failure {
 public:
  Failure(const char* file, int line, bool fatal)
      : file_(file), line_(line), fatal_(fatal) {}
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;
  ~Failure() noexcept(false) {
    ReportFailure(file_, line_, stream_.str());
    if (fatal_ && std::uncaught_exceptions() == 0) throw FatalFailure{};
  }
  template <typename T>
  Failure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

// Message buffer for GTEST_SKIP() << "...".
class SkipMessage {
 public:
  template <typename T>
  SkipMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

// `return SkipAssigner() = SkipMessage() << "why"` — operator= returns void so
// the whole expression is a valid operand of `return` in a void TestBody.
struct SkipAssigner {
  void operator=(const SkipMessage& m) const { MarkSkipped(m.str()); }
};

template <typename A, typename B>
bool CmpEQ(const A& a, const B& b) { return a == b; }
template <typename A, typename B>
bool CmpNE(const A& a, const B& b) { return a != b; }
template <typename A, typename B>
bool CmpLT(const A& a, const B& b) { return a < b; }
template <typename A, typename B>
bool CmpLE(const A& a, const B& b) { return a <= b; }
template <typename A, typename B>
bool CmpGT(const A& a, const B& b) { return a > b; }
template <typename A, typename B>
bool CmpGE(const A& a, const B& b) { return a >= b; }

inline bool CmpStrEQ(const char* a, const char* b) {
  if (a == nullptr || b == nullptr) return a == b;
  return std::strcmp(a, b) == 0;
}

// 4-ULP floating point comparison, matching gtest's FloatingPoint<>.
inline std::uint64_t BiasedRepr(std::uint64_t sign_magnitude) {
  constexpr std::uint64_t kSign = 0x8000000000000000ull;
  return (sign_magnitude & kSign) ? ~sign_magnitude + 1
                                  : sign_magnitude | kSign;
}
inline bool AlmostEqual(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return false;
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  const std::uint64_t ba = BiasedRepr(ua), bb = BiasedRepr(ub);
  return (ba >= bb ? ba - bb : bb - ba) <= 4;
}
inline std::uint32_t BiasedRepr32(std::uint32_t sign_magnitude) {
  constexpr std::uint32_t kSign = 0x80000000u;
  return (sign_magnitude & kSign) ? ~sign_magnitude + 1
                                  : sign_magnitude | kSign;
}
inline bool AlmostEqual(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return false;
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  const std::uint32_t ba = BiasedRepr32(ua), bb = BiasedRepr32(ub);
  return (ba >= bb ? ba - bb : bb - ba) <= 4;
}

}  // namespace internal

class Test {
 public:
  virtual ~Test() = default;
  virtual void TestBody() = 0;

 protected:
  virtual void SetUp() {}
  virtual void TearDown() {}

 private:
  friend int RunAllTestsImpl();
  void RunSetUp() { SetUp(); }
  void RunTearDown() { TearDown(); }
};

template <typename T>
class WithParamInterface {
 public:
  using ParamType = T;
  virtual ~WithParamInterface() = default;
  static const ParamType& GetParam() { return *CurrentParam(); }
  static const ParamType*& CurrentParam() {
    static const ParamType* current = nullptr;
    return current;
  }
};

template <typename T>
class TestWithParam : public Test, public WithParamInterface<T> {};

namespace internal {

struct TestCase {
  std::string suite;
  std::string name;
  std::function<Test*()> factory;
  std::function<void()> bind_param;  // empty for non-parameterized tests
};

struct ParamPattern {
  std::string fixture;
  std::string name;
  std::function<Test*()> factory;
};

std::vector<TestCase>& Registry();
std::vector<ParamPattern>& ParamPatterns();
std::vector<std::function<void()>>& Instantiations();

int RegisterTest(const char* suite, const char* name,
                 std::function<Test*()> factory);
int RegisterParamPattern(const char* fixture, const char* name,
                         std::function<Test*()> factory);

template <typename T>
struct ValueList {
  std::vector<T> values;
};

// Instantiation is deferred to RUN_ALL_TESTS so TEST_P / INSTANTIATE order
// within a translation unit does not matter.
template <typename Fixture, typename GenT>
int RegisterInstantiation(const char* prefix, const char* fixture_name,
                          ValueList<GenT> gen) {
  Instantiations().push_back([prefix, fixture_name, gen]() {
    using Param = typename Fixture::ParamType;
    auto values = std::make_shared<std::vector<Param>>();
    values->reserve(gen.values.size());
    for (const auto& v : gen.values) values->push_back(static_cast<Param>(v));
    for (const auto& pattern : ParamPatterns()) {
      if (pattern.fixture != fixture_name) continue;
      for (std::size_t i = 0; i < values->size(); ++i) {
        TestCase tc;
        tc.suite = std::string(prefix) + "/" + fixture_name;
        tc.name = pattern.name + "/" + std::to_string(i);
        tc.factory = pattern.factory;
        tc.bind_param = [values, i]() {
          Fixture::CurrentParam() = &(*values)[i];
        };
        Registry().push_back(std::move(tc));
      }
    }
  });
  return 0;
}

}  // namespace internal

template <typename T = long long>
internal::ValueList<long long> Range(long long begin, long long end,
                                     long long step = 1) {
  internal::ValueList<long long> out;
  for (long long v = begin; v < end; v += step) out.values.push_back(v);
  return out;
}

template <typename... Ts>
auto Values(Ts... vs) {
  using T = std::common_type_t<Ts...>;
  return internal::ValueList<T>{{static_cast<T>(vs)...}};
}

template <typename A, typename B>
internal::ValueList<std::tuple<A, B>> Combine(const internal::ValueList<A>& a,
                                              const internal::ValueList<B>& b) {
  internal::ValueList<std::tuple<A, B>> out;
  for (const auto& x : a.values)
    for (const auto& y : b.values) out.values.emplace_back(x, y);
  return out;
}

void InitGoogleTest(int* argc = nullptr, char** argv = nullptr);
int RunAllTestsImpl();

}  // namespace testing

#define RUN_ALL_TESTS() ::testing::RunAllTestsImpl()

#define GTEST_MINI_CONCAT_IMPL_(a, b) a##b
#define GTEST_MINI_CONCAT_(a, b) GTEST_MINI_CONCAT_IMPL_(a, b)

/// Failure messages inside the enclosing scope carry `message` as context.
#define SCOPED_TRACE(message)                                        \
  ::testing::internal::ScopedTrace GTEST_MINI_CONCAT_(               \
      gtest_mini_trace_, __LINE__)(__FILE__, __LINE__, (message))

#define GTEST_MINI_CLASS_(suite, name) suite##_##name##_Test

#define GTEST_MINI_TEST_(suite, name, base, registrar)                     \
  class GTEST_MINI_CLASS_(suite, name) : public base {                     \
   public:                                                                 \
    void TestBody() override;                                              \
  };                                                                       \
  static const int gtest_mini_reg_##suite##_##name =                       \
      ::testing::internal::registrar(#suite, #name, []() -> ::testing::Test* { \
        return new GTEST_MINI_CLASS_(suite, name);                         \
      });                                                                  \
  void GTEST_MINI_CLASS_(suite, name)::TestBody()

#define TEST(suite, name) GTEST_MINI_TEST_(suite, name, ::testing::Test, RegisterTest)
#define TEST_F(fixture, name) GTEST_MINI_TEST_(fixture, name, fixture, RegisterTest)
#define TEST_P(fixture, name) GTEST_MINI_TEST_(fixture, name, fixture, RegisterParamPattern)

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, generator)             \
  static const int gtest_mini_inst_##prefix##_##fixture =                \
      ::testing::internal::RegisterInstantiation<fixture>(#prefix,       \
                                                          #fixture, generator)

// `switch` wrapper avoids dangling-else warnings, exactly as in gtest.
#define GTEST_MINI_CHECK_(ok, fatal)                      \
  switch (0)                                              \
  case 0:                                                 \
  default:                                                \
    if (ok)                                               \
      ;                                                   \
    else                                                  \
      ::testing::internal::Failure(__FILE__, __LINE__, fatal)

#define GTEST_MINI_CMP_(cmp, opstr, a, b, fatal)                       \
  GTEST_MINI_CHECK_(::testing::internal::cmp((a), (b)), fatal)         \
      << "Expected: (" #a ") " opstr " (" #b "), which is false. "

#define EXPECT_EQ(a, b) GTEST_MINI_CMP_(CmpEQ, "==", a, b, false)
#define EXPECT_NE(a, b) GTEST_MINI_CMP_(CmpNE, "!=", a, b, false)
#define EXPECT_LT(a, b) GTEST_MINI_CMP_(CmpLT, "<", a, b, false)
#define EXPECT_LE(a, b) GTEST_MINI_CMP_(CmpLE, "<=", a, b, false)
#define EXPECT_GT(a, b) GTEST_MINI_CMP_(CmpGT, ">", a, b, false)
#define EXPECT_GE(a, b) GTEST_MINI_CMP_(CmpGE, ">=", a, b, false)
#define ASSERT_EQ(a, b) GTEST_MINI_CMP_(CmpEQ, "==", a, b, true)
#define ASSERT_NE(a, b) GTEST_MINI_CMP_(CmpNE, "!=", a, b, true)
#define ASSERT_LT(a, b) GTEST_MINI_CMP_(CmpLT, "<", a, b, true)
#define ASSERT_LE(a, b) GTEST_MINI_CMP_(CmpLE, "<=", a, b, true)
#define ASSERT_GT(a, b) GTEST_MINI_CMP_(CmpGT, ">", a, b, true)
#define ASSERT_GE(a, b) GTEST_MINI_CMP_(CmpGE, ">=", a, b, true)

#define EXPECT_TRUE(cond)                                       \
  GTEST_MINI_CHECK_(static_cast<bool>(cond), false)             \
      << "Expected: " #cond " is true. "
#define EXPECT_FALSE(cond)                                      \
  GTEST_MINI_CHECK_(!static_cast<bool>(cond), false)            \
      << "Expected: " #cond " is false. "
#define ASSERT_TRUE(cond)                                       \
  GTEST_MINI_CHECK_(static_cast<bool>(cond), true)              \
      << "Expected: " #cond " is true. "
#define ASSERT_FALSE(cond)                                      \
  GTEST_MINI_CHECK_(!static_cast<bool>(cond), true)             \
      << "Expected: " #cond " is false. "

#define EXPECT_STREQ(a, b) GTEST_MINI_CMP_(CmpStrEQ, "streq", a, b, false)
#define ASSERT_STREQ(a, b) GTEST_MINI_CMP_(CmpStrEQ, "streq", a, b, true)

#define EXPECT_NEAR(a, b, tol)                                            \
  GTEST_MINI_CHECK_(std::fabs(static_cast<double>(a) -                    \
                              static_cast<double>(b)) <=                  \
                        static_cast<double>(tol),                         \
                    false)                                                \
      << "Expected: |" #a " - " #b "| <= " #tol ", which is false. "
#define EXPECT_DOUBLE_EQ(a, b)                                            \
  GTEST_MINI_CHECK_(::testing::internal::AlmostEqual(                     \
                        static_cast<double>(a), static_cast<double>(b)),  \
                    false)                                                \
      << "Expected: " #a " ~= " #b " (4 ULP), which is false. "
#define EXPECT_FLOAT_EQ(a, b)                                             \
  GTEST_MINI_CHECK_(::testing::internal::AlmostEqual(                     \
                        static_cast<float>(a), static_cast<float>(b)),    \
                    false)                                                \
      << "Expected: " #a " ~= " #b " (4 ULP), which is false. "

// Lambda-based (rather than do-while) so callers can stream context:
// `EXPECT_THROW(f(), std::runtime_error) << "case " << i;` — matching the
// real gtest macros, which are also streamable.
#define EXPECT_THROW(stmt, extype)                                        \
  GTEST_MINI_CHECK_(                                                      \
      ([&]() -> bool {                                                    \
        try {                                                             \
          stmt;                                                           \
        } catch (const ::testing::internal::FatalFailure&) {              \
          throw;                                                          \
        } catch (const extype&) {                                         \
          return true;                                                    \
        } catch (...) {                                                   \
        }                                                                 \
        return false;                                                     \
      })(),                                                               \
      false)                                                              \
      << "Expected: " #stmt " throws " #extype ", but it did not. "

#define EXPECT_NO_THROW(stmt)                                             \
  GTEST_MINI_CHECK_(                                                      \
      ([&]() -> bool {                                                    \
        try {                                                             \
          stmt;                                                           \
        } catch (const ::testing::internal::FatalFailure&) {              \
          throw;                                                          \
        } catch (...) {                                                   \
          return false;                                                   \
        }                                                                 \
        return true;                                                      \
      })(),                                                               \
      false)                                                              \
      << "Expected: " #stmt " does not throw, but it threw. "

#define ADD_FAILURE() GTEST_MINI_CHECK_(false, false) << "Failed. "
#define FAIL() GTEST_MINI_CHECK_(false, true) << "Failed. "

#define GTEST_SKIP()                                           \
  return ::testing::internal::SkipAssigner() =                 \
             ::testing::internal::SkipMessage()

#endif  // MINIGTEST_GTEST_H_
