#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

namespace testing {
namespace internal {

namespace {

struct CurrentTestState {
  bool failed = false;
  bool skipped = false;
};

CurrentTestState& Current() {
  static CurrentTestState state;
  return state;
}

}  // namespace

std::vector<TestCase>& Registry() {
  static std::vector<TestCase> cases;
  return cases;
}

std::vector<ParamPattern>& ParamPatterns() {
  static std::vector<ParamPattern> patterns;
  return patterns;
}

std::vector<std::function<void()>>& Instantiations() {
  static std::vector<std::function<void()>> fns;
  return fns;
}

int RegisterTest(const char* suite, const char* name,
                 std::function<Test*()> factory) {
  Registry().push_back(TestCase{suite, name, std::move(factory), {}});
  return 0;
}

int RegisterParamPattern(const char* fixture, const char* name,
                         std::function<Test*()> factory) {
  ParamPatterns().push_back(ParamPattern{fixture, name, std::move(factory)});
  return 0;
}

std::vector<std::string>& TraceStack() {
  static std::vector<std::string> stack;
  return stack;
}

void ReportFailure(const char* file, int line, const std::string& message) {
  Current().failed = true;
  std::fprintf(stderr, "%s:%d: Failure\n%s\n", file, line, message.c_str());
  // Innermost SCOPED_TRACE frame first, like real gtest.
  for (auto it = TraceStack().rbegin(); it != TraceStack().rend(); ++it) {
    std::fprintf(stderr, "Google Test trace:\n%s\n", it->c_str());
  }
}

void MarkSkipped(const std::string& message) {
  Current().skipped = true;
  if (!message.empty()) std::fprintf(stderr, "Skipped: %s\n", message.c_str());
}

}  // namespace internal

void InitGoogleTest(int*, char**) {}

int RunAllTestsImpl() {
  using internal::Current;
  for (const auto& instantiate : internal::Instantiations()) instantiate();

  int failed = 0, skipped = 0;
  const auto& cases = internal::Registry();
  std::printf("[minigtest] running %zu tests\n", cases.size());
  const auto t0 = std::chrono::steady_clock::now();

  for (const auto& tc : cases) {
    const std::string full = tc.suite + "." + tc.name;
    std::printf("[ RUN      ] %s\n", full.c_str());
    Current() = {};
    if (tc.bind_param) tc.bind_param();
    const auto run_phase = [](const char* phase, auto&& fn) {
      try {
        fn();
      } catch (const internal::FatalFailure&) {
        // Failure already recorded by the ASSERT_* that threw.
      } catch (const std::exception& e) {
        internal::ReportFailure(phase, 0,
                                std::string("uncaught exception: ") + e.what());
      } catch (...) {
        internal::ReportFailure(phase, 0, "uncaught non-std exception");
      }
    };
    std::unique_ptr<Test> test;
    run_phase("<construct>", [&]() { test.reset(tc.factory()); });
    if (test) {
      run_phase("<SetUp/TestBody>", [&]() {
        test->RunSetUp();
        test->TestBody();
      });
      // Like real gtest: TearDown runs once SetUp has been invoked, even
      // after a fatal SetUp failure.
      run_phase("<TearDown>", [&]() { test->RunTearDown(); });
    }
    if (Current().skipped && !Current().failed) {
      ++skipped;
      std::printf("[  SKIPPED ] %s\n", full.c_str());
    } else if (Current().failed) {
      ++failed;
      std::printf("[  FAILED  ] %s\n", full.c_str());
    } else {
      std::printf("[       OK ] %s\n", full.c_str());
    }
  }

  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::printf("[minigtest] %zu tests, %d failed, %d skipped (%lld ms)\n",
              cases.size(), failed, skipped, static_cast<long long>(ms));
  return failed == 0 ? 0 : 1;
}

}  // namespace testing
