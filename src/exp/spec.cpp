#include "exp/spec.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "nn/zoo.hpp"

namespace hhpim::exp {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm{base};
  std::uint64_t s = sm.next() ^ a;
  SplitMix64 sm2{s};
  return sm2.next() ^ (b * 0x9e3779b97f4a7c15ULL);
}

ScenarioSpec ScenarioSpec::of(workload::Scenario kind, workload::ScenarioConfig cfg) {
  ScenarioSpec s;
  s.name = workload::to_string(kind);
  s.kind = kind;
  s.cfg = std::move(cfg);
  return s;
}

ScenarioSpec ScenarioSpec::fixed(std::string name, std::vector<int> loads) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.explicit_loads = std::move(loads);
  s.is_fixed = true;
  return s;
}

ExperimentSpec ExperimentSpec::paper_grid(workload::ScenarioConfig wc) {
  ExperimentSpec spec;
  spec.name = "paper-grid";
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());
  spec.models = nn::zoo::paper_models();
  for (const auto s : workload::all_scenarios()) {
    spec.scenarios.push_back(ScenarioSpec::of(s, wc));
  }
  return spec;
}

std::size_t ExperimentSpec::run_count() const {
  const std::size_t variants_n = variants.empty() ? 1 : variants.size();
  return variants_n * archs.size() * models.size() * scenarios.size();
}

std::vector<RunSpec> ExperimentSpec::expand() const {
  if (archs.empty() || models.empty() || scenarios.empty()) {
    throw std::invalid_argument("ExperimentSpec: archs, models and scenarios must be non-empty");
  }

  // Materialize the load trace for each scenario once; every run of the
  // scenario (any arch, model, variant) replays the same trace.
  std::vector<std::vector<int>> loads_per_scenario;
  std::vector<std::uint64_t> seed_per_scenario;
  loads_per_scenario.reserve(scenarios.size());
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const ScenarioSpec& s = scenarios[si];
    if (s.is_fixed || !s.explicit_loads.empty()) {
      loads_per_scenario.push_back(s.explicit_loads);
      seed_per_scenario.push_back(s.cfg.seed);
      continue;
    }
    workload::ScenarioConfig cfg = s.cfg;
    cfg.seed = derive_seed(seed, si, s.cfg.seed);
    loads_per_scenario.push_back(workload::generate(s.kind, cfg));
    seed_per_scenario.push_back(cfg.seed);
  }

  std::vector<ConfigVariant> vs = variants;
  if (vs.empty()) vs.emplace_back();  // one unnamed default variant

  std::vector<RunSpec> runs;
  runs.reserve(run_count());
  for (const ConfigVariant& v : vs) {
    for (const nn::Model& model : models) {
      // The paper's protocol: HH-PIM's application requirement (its slice
      // length T) is the one every architecture must honour. Derive it once
      // per (variant, model) cell so the grid's runs stay independent.
      Time shared_slice = v.config.slice;
      if (share_hhpim_slice && shared_slice == Time::zero()) {
        for (const sys::ArchConfig& a : archs) {
          if (a.kind == sys::ArchKind::kHhpim) {
            sys::SystemConfig ref = v.config;
            ref.arch = a;
            shared_slice = sys::derived_slice_length(ref, model);
            break;
          }
        }
      }
      for (std::size_t si = 0; si < scenarios.size(); ++si) {
        for (const sys::ArchConfig& a : archs) {
          RunSpec r{.index = runs.size(),
                    .variant = v.name,
                    .arch = a.name,
                    .model_name = model.name(),
                    .scenario = scenarios[si].name,
                    .config = v.config,
                    .model = model,
                    .loads = loads_per_scenario[si],
                    .seed = seed_per_scenario[si]};
          r.config.arch = a;
          if (shared_slice > Time::zero()) r.config.slice = shared_slice;
          runs.push_back(std::move(r));
        }
      }
    }
  }
  return runs;
}

}  // namespace hhpim::exp
