#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "energy/ledger.hpp"
#include "hhpim/processor.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim::exp {

unsigned Runner::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned Runner::resolve_workers(unsigned requested, std::size_t runs) {
  return std::min<unsigned>(resolve_threads(requested),
                            static_cast<unsigned>(std::max<std::size_t>(runs, 1)));
}

placement::LutCache* Runner::resolve_lut_cache() const {
  if (!options_.share_luts) return nullptr;
  return options_.lut_cache != nullptr ? options_.lut_cache
                                       : &placement::LutCache::process_cache();
}

ProcessorPool::Lease::Lease(ProcessorPool* pool, std::uint64_t key,
                            std::unique_ptr<sys::Processor> proc)
    : pool_(pool), key_(key), proc_(std::move(proc)) {}

ProcessorPool::Lease::Lease(Lease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      key_(other.key_),
      proc_(std::move(other.proc_)) {}

ProcessorPool::Lease& ProcessorPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && proc_ != nullptr) pool_->give_back(key_, std::move(proc_));
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = other.key_;
    proc_ = std::move(other.proc_);
  }
  return *this;
}

ProcessorPool::Lease::~Lease() {
  if (pool_ != nullptr && proc_ != nullptr) pool_->give_back(key_, std::move(proc_));
}

ProcessorPool::Lease ProcessorPool::checkout(const sys::SystemConfig& config,
                                             const nn::Model& model) {
  const std::uint64_t key = sys::processor_reuse_key(config, model);
  std::unique_ptr<sys::Processor> p;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    const auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      p = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  // reset()/construction run outside the lock — the critical section is a
  // pointer pop, never simulation-state work.
  if (p != nullptr) {
    p->reset();
  } else {
    p = std::make_unique<sys::Processor>(config, model);
  }
  return Lease{this, key, std::move(p)};
}

void ProcessorPool::give_back(std::uint64_t key, std::unique_ptr<sys::Processor> proc) {
  const std::lock_guard<std::mutex> lock{mu_};
  idle_[key].push_back(std::move(proc));
}

std::size_t ProcessorPool::size() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::size_t total = 0;
  for (const auto& [key, procs] : idle_) total += procs.size();
  return total;
}

RunResult Runner::execute(const RunSpec& spec, bool keep_slices,
                          placement::LutCache* lut_cache, ProcessorPool* pool) {
  sys::SystemConfig config = spec.config;
  if (config.lut_cache == nullptr) config.lut_cache = lut_cache;
  std::optional<sys::Processor> local;
  ProcessorPool::Lease lease;
  if (pool != nullptr) lease = pool->checkout(config, spec.model);
  sys::Processor& proc =
      pool != nullptr ? lease.get() : local.emplace(config, spec.model);
  const sys::RunStats stats = proc.run_scenario(spec.loads);
  const energy::EnergyLedger& ledger = proc.ledger();

  RunResult r;
  r.index = spec.index;
  r.variant = spec.variant;
  r.arch = spec.arch;
  r.model = spec.model_name;
  r.scenario = spec.scenario;
  r.seed = spec.seed;
  r.slice_ps = proc.slice_length().as_ps();
  r.slices = static_cast<int>(stats.slices.size());
  r.tasks = stats.tasks;
  r.deadline_violations = stats.deadline_violations;
  r.total_energy_pj = stats.total_energy.as_pj();
  r.mean_slice_energy_pj = stats.mean_slice_energy().as_pj();
  r.dynamic_energy_pj = ledger.dynamic_total().as_pj();
  r.leakage_energy_pj = ledger.total(energy::Activity::kLeakage).as_pj();
  r.transfer_energy_pj = ledger.total(energy::Activity::kTransfer).as_pj();
  r.total_time_ps = stats.total_time.as_ps();
  for (const sys::SliceStats& s : stats.slices) {
    r.busy_time_ps += s.busy_time.as_ps();
    r.max_busy_ps = std::max(r.max_busy_ps, s.busy_time.as_ps());
    r.movement_time_ps += s.movement_time.as_ps();
    if (keep_slices) {
      SliceMetrics m;
      m.slice = s.slice;
      m.tasks = s.tasks_executed;
      m.busy_ps = s.busy_time.as_ps();
      m.movement_ps = s.movement_time.as_ps();
      m.energy_pj = s.energy.as_pj();
      m.deadline_violated = s.deadline_violated;
      r.slice_metrics.push_back(m);
    }
  }
  return r;
}

ResultSet Runner::run_all(std::vector<RunSpec> runs) const {
  std::vector<RunResult> results(runs.size());
  const unsigned workers = resolve_workers(options_.threads, runs.size());

  placement::LutCache* const lut_cache = resolve_lut_cache();
  std::exception_ptr first_error;
  ProcessorPool pool;  // shared by all workers (checkout/return is thread-safe)
  ProcessorPool* const pool_ptr = options_.reuse_processors ? &pool : nullptr;
  if (workers <= 1) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      try {
        results[i] = execute(runs[i], options_.keep_slices, lut_cache, pool_ptr);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    const bool keep_slices = options_.keep_slices;
    auto worker = [&] {
      // Results are buffered per worker and placed after the claiming loop
      // drains: while runs execute, no two workers write anywhere near each
      // other. Each result lands at the run's *position* (not
      // RunSpec::index, which echoes the original grid coordinate and may
      // be sparse when the caller passes a filtered subset), so output
      // order always matches input order regardless of completion order.
      std::vector<std::pair<std::size_t, RunResult>> local;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= runs.size()) break;
        try {
          local.emplace_back(i, execute(runs[i], keep_slices, lut_cache, pool_ptr));
        } catch (...) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
      }
      // Disjoint indices: placement needs no lock, and it happens once per
      // worker, after all simulation work.
      for (auto& [i, r] : local) results[i] = std::move(r);
    };
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return ResultSet{std::move(results)};
}

ResultSet Runner::run(const ExperimentSpec& spec) const {
  ResultSet rs = run_all(spec.expand());
  rs.experiment_name = spec.name;
  return rs;
}

}  // namespace hhpim::exp
