// Parallel experiment runner.
//
// Executes the independent RunSpecs of an expanded ExperimentSpec on a fixed
// pool of N worker threads (no work stealing: workers claim the next grid
// index from a shared atomic counter; never more workers than runs). Each
// run executes on a sys::Processor checked out of a pool shared by every
// worker (ProcessorPool; RunnerOptions::reuse_processors, default on; a
// reset() Processor is bit-exchangeable for a fresh one), or constructed
// per run with reuse off. Workers buffer their RunResults locally and place
// them at the runs' grid indices after the claiming loop drains, so no two
// workers write near each other mid-run. Results are bit-identical
// regardless of thread count, completion order or reuse; only wall-clock
// changes.
//
// Thread safety: a Runner is immutable after construction — run()/run_all()
// may be called concurrently from multiple threads (each call spins up its
// own pool). The LutCache the options name must itself be thread-safe
// (placement::LutCache is) and outlive every call that uses it.
//
// Cost: one Processor construction + scenario execution per run —
// O(runs · slices · tasks/slice) simulation work; for HH-PIM runs the LUT
// build (O(t_entries · k_blocks) DP entries) dominates construction unless
// served by the cache.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exp/result.hpp"
#include "exp/spec.hpp"

namespace hhpim::placement {
class LutCache;  // placement/lut_cache.hpp — only a pointer is stored here
}

namespace hhpim::exp {

/// Thread-safe checkout pool of reusable sys::Processors, keyed by
/// sys::processor_reuse_key(config, model) and shared by every worker of a
/// run_all call. checkout() pops an idle processor (Processor::reset() and
/// construction both happen outside the lock) or constructs one, so grid
/// cells sharing a (model, arch, config) stop paying CostModel::build +
/// cluster construction per run; the Lease returns it on destruction.
/// Sharing one pool bounds constructions per key by the peak number of
/// concurrent runs of that key — per-worker pools would construct
/// workers × keys processors, which is what made oversubscribed workers
/// slower than one. Results are bit-identical to fresh construction
/// (pinned by tests/test_batched.cpp).
class ProcessorPool {
 public:
  /// RAII checkout: returns the processor to the pool when destroyed.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    /// The leased processor, in just-constructed state at checkout.
    [[nodiscard]] sys::Processor& get() const { return *proc_; }

   private:
    friend class ProcessorPool;
    Lease(ProcessorPool* pool, std::uint64_t key,
          std::unique_ptr<sys::Processor> proc);
    ProcessorPool* pool_ = nullptr;
    std::uint64_t key_ = 0;
    std::unique_ptr<sys::Processor> proc_;
  };

  /// A processor for (config, model) in just-constructed state.
  /// `config.lut_cache` must already be resolved by the caller (it is part
  /// of the key). Safe to call from any thread.
  [[nodiscard]] Lease checkout(const sys::SystemConfig& config,
                               const nn::Model& model);

  /// Idle processors currently pooled (leased ones excluded).
  [[nodiscard]] std::size_t size() const;

 private:
  void give_back(std::uint64_t key, std::unique_ptr<sys::Processor> proc);

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<sys::Processor>>>
      idle_;
};

struct RunnerOptions {
  /// Worker threads. 0 = one per hardware thread (min 1); 1 = run inline on
  /// the calling thread (no pool).
  unsigned threads = 0;
  /// Retain per-slice metrics in each RunResult (larger results/JSON).
  bool keep_slices = false;
  /// Share placement LUTs across the grid's runs: HH-PIM runs agreeing on
  /// (model topology, arch, cost model, slice, resolution) build one LUT
  /// instead of one per run. Results are byte-identical with sharing on or
  /// off (pinned by tests/test_lut_cache.cpp); only wall-clock changes.
  bool share_luts = true;
  /// Cache used when `share_luts` (not owned; must outlive the grid run).
  /// nullptr = the process-wide placement::LutCache::process_cache().
  placement::LutCache* lut_cache = nullptr;
  /// Reuse Processors across runs sharing a (config, model) via the
  /// checkout ProcessorPool shared by all workers: repeated grid cells
  /// skip CostModel::build and cluster construction. Results are
  /// byte-identical with reuse on or off; only wall-clock changes.
  bool reuse_processors = true;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Expands and executes the grid. Propagates the first run exception (all
  /// other runs still complete).
  [[nodiscard]] ResultSet run(const ExperimentSpec& spec) const;

  /// Executes pre-expanded runs (possibly a filtered subset of an expanded
  /// grid). Results are returned in the same order as `runs`; each
  /// RunResult::index echoes its RunSpec::index.
  [[nodiscard]] ResultSet run_all(std::vector<RunSpec> runs) const;

  /// Executes one run on the calling thread. Exposed for tests and for
  /// callers embedding single runs in their own loops. `lut_cache` (may be
  /// nullptr = uncached) is consulted unless the RunSpec's SystemConfig
  /// already names a cache of its own. `pool` (may be nullptr = construct a
  /// fresh Processor) supplies a reused Processor for the run's
  /// (config, model).
  [[nodiscard]] static RunResult execute(const RunSpec& spec, bool keep_slices = false,
                                         placement::LutCache* lut_cache = nullptr,
                                         ProcessorPool* pool = nullptr);

  [[nodiscard]] const RunnerOptions& options() const { return options_; }
  /// The cache this runner's options resolve to (nullptr when sharing off).
  [[nodiscard]] placement::LutCache* resolve_lut_cache() const;
  /// The worker count a `threads` request resolves to on this host.
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);
  /// Workers actually spawned for `requested` threads over `runs` runs:
  /// min(resolve_threads(requested), runs), at least 1. Surplus workers
  /// would only contend on the claim counter.
  [[nodiscard]] static unsigned resolve_workers(unsigned requested,
                                                std::size_t runs);

 private:
  RunnerOptions options_;
};

}  // namespace hhpim::exp
