// Parallel experiment runner.
//
// Executes the independent RunSpecs of an expanded ExperimentSpec on a fixed
// pool of N worker threads (no work stealing: workers claim the next grid
// index from a shared atomic counter). Each run executes on its worker's
// *own* sys::Processor — reused across runs sharing a (config, model) via a
// per-worker ProcessorPool (RunnerOptions::reuse_processors, default on; a
// reset() Processor is bit-exchangeable for a fresh one), or constructed
// per run with reuse off — and writes its RunResult into a pre-sized vector
// at the run's grid index. Results are therefore bit-identical regardless
// of thread count, completion order or reuse; only wall-clock changes.
//
// Thread safety: a Runner is immutable after construction — run()/run_all()
// may be called concurrently from multiple threads (each call spins up its
// own pool). The LutCache the options name must itself be thread-safe
// (placement::LutCache is) and outlive every call that uses it.
//
// Cost: one Processor construction + scenario execution per run —
// O(runs · slices · tasks/slice) simulation work; for HH-PIM runs the LUT
// build (O(t_entries · k_blocks) DP entries) dominates construction unless
// served by the cache.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exp/result.hpp"
#include "exp/spec.hpp"

namespace hhpim::placement {
class LutCache;  // placement/lut_cache.hpp — only a pointer is stored here
}

namespace hhpim::exp {

/// Per-worker pool of reusable sys::Processors, keyed by
/// sys::processor_reuse_key(config, model). acquire() constructs on first
/// use and Processor::reset()s on every later hit, so grid cells sharing a
/// (model, arch, config) stop paying CostModel::build + cluster
/// construction per run. Results are bit-identical to fresh construction
/// (pinned by tests/test_batched.cpp). Not thread-safe — one pool per
/// worker thread.
class ProcessorPool {
 public:
  /// The pooled processor for (config, model), reset and ready to run.
  /// `config.lut_cache` must already be resolved by the caller (it is part
  /// of the key).
  [[nodiscard]] sys::Processor& acquire(const sys::SystemConfig& config,
                                        const nn::Model& model);

  [[nodiscard]] std::size_t size() const { return pool_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::unique_ptr<sys::Processor>> pool_;
};

struct RunnerOptions {
  /// Worker threads. 0 = one per hardware thread (min 1); 1 = run inline on
  /// the calling thread (no pool).
  unsigned threads = 0;
  /// Retain per-slice metrics in each RunResult (larger results/JSON).
  bool keep_slices = false;
  /// Share placement LUTs across the grid's runs: HH-PIM runs agreeing on
  /// (model topology, arch, cost model, slice, resolution) build one LUT
  /// instead of one per run. Results are byte-identical with sharing on or
  /// off (pinned by tests/test_lut_cache.cpp); only wall-clock changes.
  bool share_luts = true;
  /// Cache used when `share_luts` (not owned; must outlive the grid run).
  /// nullptr = the process-wide placement::LutCache::process_cache().
  placement::LutCache* lut_cache = nullptr;
  /// Reuse one Processor per (config, model) per worker (ProcessorPool):
  /// repeated grid cells skip CostModel::build and cluster construction.
  /// Results are byte-identical with reuse on or off; only wall-clock
  /// changes.
  bool reuse_processors = true;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Expands and executes the grid. Propagates the first run exception (all
  /// other runs still complete).
  [[nodiscard]] ResultSet run(const ExperimentSpec& spec) const;

  /// Executes pre-expanded runs (possibly a filtered subset of an expanded
  /// grid). Results are returned in the same order as `runs`; each
  /// RunResult::index echoes its RunSpec::index.
  [[nodiscard]] ResultSet run_all(std::vector<RunSpec> runs) const;

  /// Executes one run on the calling thread. Exposed for tests and for
  /// callers embedding single runs in their own loops. `lut_cache` (may be
  /// nullptr = uncached) is consulted unless the RunSpec's SystemConfig
  /// already names a cache of its own. `pool` (may be nullptr = construct a
  /// fresh Processor) supplies a reused Processor for the run's
  /// (config, model).
  [[nodiscard]] static RunResult execute(const RunSpec& spec, bool keep_slices = false,
                                         placement::LutCache* lut_cache = nullptr,
                                         ProcessorPool* pool = nullptr);

  [[nodiscard]] const RunnerOptions& options() const { return options_; }
  /// The cache this runner's options resolve to (nullptr when sharing off).
  [[nodiscard]] placement::LutCache* resolve_lut_cache() const;
  /// The worker count a `threads` request resolves to on this host.
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);

 private:
  RunnerOptions options_;
};

}  // namespace hhpim::exp
