// Parallel experiment runner.
//
// Executes the independent RunSpecs of an expanded ExperimentSpec on a fixed
// pool of N worker threads (no work stealing: workers claim the next grid
// index from a shared atomic counter). Each run constructs its *own*
// sys::Processor — the single-threaded invariant of sim::Engine and the
// Processor's internal state is preserved per run — and writes its RunResult
// into a pre-sized vector at the run's grid index. Results are therefore
// bit-identical regardless of thread count or completion order; only
// wall-clock changes.
#pragma once

#include <vector>

#include "exp/result.hpp"
#include "exp/spec.hpp"

namespace hhpim::exp {

struct RunnerOptions {
  /// Worker threads. 0 = one per hardware thread (min 1); 1 = run inline on
  /// the calling thread (no pool).
  unsigned threads = 0;
  /// Retain per-slice metrics in each RunResult (larger results/JSON).
  bool keep_slices = false;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Expands and executes the grid. Propagates the first run exception (all
  /// other runs still complete).
  [[nodiscard]] ResultSet run(const ExperimentSpec& spec) const;

  /// Executes pre-expanded runs (possibly a filtered subset of an expanded
  /// grid). Results are returned in the same order as `runs`; each
  /// RunResult::index echoes its RunSpec::index.
  [[nodiscard]] ResultSet run_all(std::vector<RunSpec> runs) const;

  /// Executes one run on the calling thread. Exposed for tests and for
  /// callers embedding single runs in their own loops.
  [[nodiscard]] static RunResult execute(const RunSpec& spec, bool keep_slices = false);

  [[nodiscard]] const RunnerOptions& options() const { return options_; }
  /// The worker count a `threads` request resolves to on this host.
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);

 private:
  RunnerOptions options_;
};

}  // namespace hhpim::exp
