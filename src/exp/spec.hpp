// Declarative experiment grids.
//
// The paper's results (Tables I–VI, Figs. 4–6) are all cartesian grids of
// independent simulator runs: architecture × model × scenario (× optional
// SystemConfig variants such as a Vdd sweep). An ExperimentSpec describes
// such a grid once; expand() flattens it into self-contained RunSpecs that
// exp::Runner executes on a thread pool. Two properties make grids
// reproducible regardless of thread count or completion order:
//
//   * Seeds are derived deterministically from (spec.seed, scenario index,
//     scenario config) during single-threaded expansion, and the per-slice
//     load trace is materialized into each RunSpec up front — every
//     architecture in a cell sees byte-identical loads.
//   * When the grid contains HH-PIM and share_hhpim_slice is set (the
//     paper's protocol), expansion pins config.slice for every run of a
//     (variant, model) cell to the HH-PIM-derived slice length, so the slice
//     does not depend on which run happens to execute first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hhpim/arch_config.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"
#include "workload/scenario.hpp"

namespace hhpim::exp {

/// One scenario axis entry: either a named generator + config, or an
/// explicit load trace.
struct ScenarioSpec {
  std::string name;
  workload::Scenario kind = workload::Scenario::kLowConstant;
  workload::ScenarioConfig cfg;
  std::vector<int> explicit_loads;  ///< replayed as-is when is_fixed
  bool is_fixed = false;            ///< set by fixed(): replay explicit_loads
                                    ///< (even empty) instead of generating

  /// A generator-backed scenario (name defaults to workload::to_string).
  [[nodiscard]] static ScenarioSpec of(workload::Scenario kind,
                                       workload::ScenarioConfig cfg = {});
  /// An explicit trace under a caller-chosen name.
  [[nodiscard]] static ScenarioSpec fixed(std::string name, std::vector<int> loads);
};

/// One SystemConfig axis entry (e.g. a supply-voltage point of a design-space
/// sweep). The variant's arch/slice fields are overwritten per run.
struct ConfigVariant {
  std::string name;
  sys::SystemConfig config;
};

/// One fully resolved, independent run: everything a worker thread needs to
/// construct its own Processor and execute the scenario.
struct RunSpec {
  std::size_t index = 0;  ///< position in the expanded grid (result order)
  std::string variant;    ///< "" when the spec has no variant axis
  std::string arch;
  std::string model_name;
  std::string scenario;
  sys::SystemConfig config;  ///< arch + slice + overrides, fully resolved
  nn::Model model;
  std::vector<int> loads;    ///< materialized load trace
  std::uint64_t seed = 0;    ///< effective scenario seed for this run
};

/// The declarative grid. Axis order in the expansion is
/// variant (outer) → model → scenario → architecture (inner).
struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<sys::ArchConfig> archs;
  std::vector<nn::Model> models;
  std::vector<ScenarioSpec> scenarios;
  std::vector<ConfigVariant> variants;  ///< empty = one unnamed default variant
  std::uint64_t seed = 0x5eed2025;      ///< grid seed; per-run seeds derive from it
  bool share_hhpim_slice = true;        ///< pin each cell to HH-PIM's T (paper protocol)

  /// The paper's full evaluation grid: Table I architectures × Table IV
  /// models × Fig. 4 scenarios.
  [[nodiscard]] static ExperimentSpec paper_grid(workload::ScenarioConfig wc = {});

  /// Grid cardinality (variants × archs × models × scenarios). O(1).
  [[nodiscard]] std::size_t run_count() const;

  /// Flattens the grid. Throws std::invalid_argument on an empty axis or a
  /// scenario that fails to generate. Single-threaded and side-effect free
  /// (const; safe to call concurrently); each RunSpec carries a full copy
  /// of its model and loads, so the spec may be destroyed afterwards.
  /// O(run_count · (|model| + slices)) time and memory — for very large
  /// device populations use fleet::FleetSpec, which defers trace
  /// materialization to the workers.
  [[nodiscard]] std::vector<RunSpec> expand() const;
};

/// Deterministic seed mixing (SplitMix64 over the concatenated inputs);
/// exposed for tests. Pure function — equal inputs give the equal output on
/// every host, which is what makes per-run seeds reproducible.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                                        std::uint64_t b);

}  // namespace hhpim::exp
