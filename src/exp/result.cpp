#include "exp/result.hpp"

#include <sstream>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::exp {

const RunResult* ResultSet::find(const std::string& arch, const std::string& model,
                                 const std::string& scenario,
                                 const std::string& variant) const {
  for (const RunResult& r : runs_) {
    if (r.arch == arch && r.model == model && r.scenario == scenario &&
        r.variant == variant) {
      return &r;
    }
  }
  return nullptr;
}

const RunResult& ResultSet::at(const std::string& arch, const std::string& model,
                               const std::string& scenario,
                               const std::string& variant) const {
  const RunResult* r = find(arch, model, scenario, variant);
  if (r == nullptr) {
    throw std::out_of_range("ResultSet::at: no run (" + arch + ", " + model + ", " +
                            scenario + ", '" + variant + "')");
  }
  return *r;
}

void ResultSet::write_json(std::ostream& os, bool include_slices) const {
  JsonWriter w{os};
  w.begin_object();
  w.field("experiment", experiment_name);
  w.field("run_count", static_cast<std::uint64_t>(runs_.size()));
  w.key("runs");
  w.begin_array();
  for (const RunResult& r : runs_) {
    w.begin_object();
    w.field("index", static_cast<std::uint64_t>(r.index));
    if (!r.variant.empty()) w.field("variant", r.variant);
    w.field("arch", r.arch);
    w.field("model", r.model);
    w.field("scenario", r.scenario);
    w.field("seed", r.seed);
    w.field("slice_ps", r.slice_ps);
    w.field("slices", r.slices);
    w.field("tasks", r.tasks);
    w.field("deadline_violations", r.deadline_violations);
    w.field("total_energy_pj", r.total_energy_pj);
    w.field("mean_slice_energy_pj", r.mean_slice_energy_pj);
    w.field("dynamic_energy_pj", r.dynamic_energy_pj);
    w.field("leakage_energy_pj", r.leakage_energy_pj);
    w.field("transfer_energy_pj", r.transfer_energy_pj);
    w.field("total_time_ps", r.total_time_ps);
    w.field("busy_time_ps", r.busy_time_ps);
    w.field("max_busy_ps", r.max_busy_ps);
    w.field("movement_time_ps", r.movement_time_ps);
    if (include_slices && !r.slice_metrics.empty()) {
      w.key("slice_metrics");
      w.begin_array();
      for (const SliceMetrics& s : r.slice_metrics) {
        w.begin_object();
        w.field("slice", s.slice);
        w.field("tasks", s.tasks);
        w.field("busy_ps", s.busy_ps);
        w.field("movement_ps", s.movement_ps);
        w.field("energy_pj", s.energy_pj);
        w.field("deadline_violated", s.deadline_violated);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string ResultSet::to_json(bool include_slices) const {
  std::ostringstream os;
  write_json(os, include_slices);
  return os.str();
}

void ResultSet::write_csv(std::ostream& os) const {
  CsvWriter w{os};
  w.row({"index", "variant", "arch", "model", "scenario", "seed", "slice_ps", "slices",
         "tasks", "deadline_violations", "total_energy_pj", "mean_slice_energy_pj",
         "dynamic_energy_pj", "leakage_energy_pj", "transfer_energy_pj", "total_time_ps",
         "busy_time_ps", "max_busy_ps", "movement_time_ps"});
  for (const RunResult& r : runs_) {
    w.row({std::to_string(r.index), r.variant, r.arch, r.model, r.scenario,
           std::to_string(r.seed), std::to_string(r.slice_ps), std::to_string(r.slices),
           std::to_string(r.tasks), std::to_string(r.deadline_violations),
           json_number(r.total_energy_pj), json_number(r.mean_slice_energy_pj),
           json_number(r.dynamic_energy_pj), json_number(r.leakage_energy_pj),
           json_number(r.transfer_energy_pj), std::to_string(r.total_time_ps),
           std::to_string(r.busy_time_ps), std::to_string(r.max_busy_ps),
           std::to_string(r.movement_time_ps)});
  }
}

std::string ResultSet::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace hhpim::exp
