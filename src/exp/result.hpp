// Typed experiment results and their JSON/CSV serialization.
//
// A ResultSet holds one RunResult per RunSpec, in grid (index) order — never
// completion order — so serializing the same spec twice yields byte-identical
// output whatever the runner's thread count was.
//
// Units follow the field suffixes throughout: *_ps are integer picoseconds,
// *_pj are double picojoules (the common/units.hpp conventions). A ResultSet
// is immutable in practice (the runner returns it fully built); const access
// from multiple threads is safe, mutation is not synchronized.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hhpim::exp {

/// Per-slice measurement echo (subset of sys::SliceStats that serializes).
struct SliceMetrics {
  int slice = 0;
  int tasks = 0;
  std::int64_t busy_ps = 0;
  std::int64_t movement_ps = 0;
  double energy_pj = 0.0;
  bool deadline_violated = false;
};

/// All metrics of one grid run.
struct RunResult {
  // Identity (mirrors RunSpec).
  std::size_t index = 0;
  std::string variant, arch, model, scenario;
  std::uint64_t seed = 0;

  // Configuration echoes.
  std::int64_t slice_ps = 0;  ///< the slice length T the run used
  int slices = 0;             ///< number of slices executed (incl. drain)

  // Aggregate metrics.
  std::uint64_t tasks = 0;
  std::uint64_t deadline_violations = 0;
  double total_energy_pj = 0.0;
  double mean_slice_energy_pj = 0.0;
  double dynamic_energy_pj = 0.0;
  double leakage_energy_pj = 0.0;
  double transfer_energy_pj = 0.0;
  std::int64_t total_time_ps = 0;
  std::int64_t busy_time_ps = 0;      ///< sum of per-slice busy times
  std::int64_t max_busy_ps = 0;       ///< worst slice
  std::int64_t movement_time_ps = 0;  ///< sum of per-slice movement overheads

  std::vector<SliceMetrics> slice_metrics;  ///< filled when keep_slices is set

  [[nodiscard]] Energy total_energy() const { return Energy::pj(total_energy_pj); }
  [[nodiscard]] Time total_time() const { return Time::ps(total_time_ps); }
};

class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<RunResult> runs) : runs_(std::move(runs)) {}

  [[nodiscard]] const std::vector<RunResult>& runs() const { return runs_; }
  [[nodiscard]] std::size_t size() const { return runs_.size(); }

  /// The run matching (arch, model, scenario[, variant]); throws
  /// std::out_of_range if absent. Linear scan — O(size()); fine for paper
  /// grids (dozens of runs), use runs()[index] when the grid index is known.
  [[nodiscard]] const RunResult& at(const std::string& arch, const std::string& model,
                                    const std::string& scenario,
                                    const std::string& variant = "") const;
  /// Like at(), but returns nullptr when absent. O(size()).
  [[nodiscard]] const RunResult* find(const std::string& arch, const std::string& model,
                                      const std::string& scenario,
                                      const std::string& variant = "") const;

  /// JSON: {"experiment": name, "runs": [{...}, ...]}. Deterministic byte
  /// output for equal inputs. Per-slice metrics are emitted only when
  /// `include_slices` (and only for runs that retained them).
  void write_json(std::ostream& os, bool include_slices = false) const;
  [[nodiscard]] std::string to_json(bool include_slices = false) const;

  /// CSV: one header row, then one row per run (aggregates only).
  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;

  std::string experiment_name = "experiment";

 private:
  std::vector<RunResult> runs_;
};

}  // namespace hhpim::exp
