#include "hhpim/metrics.hpp"

namespace hhpim::sys {

double energy_saving_percent(Energy ours, Energy reference) {
  if (reference.as_pj() <= 0.0) return 0.0;
  return (1.0 - ours / reference) * 100.0;
}

CellResult run_cell(const SystemConfig& config, const nn::Model& model,
                    const std::vector<int>& loads) {
  Processor proc{config, model};
  const RunStats run = proc.run_scenario(loads);
  CellResult r;
  r.arch = config.arch.name;
  r.energy = run.total_energy;
  r.deadline_violations = run.deadline_violations;
  return r;
}

}  // namespace hhpim::sys
