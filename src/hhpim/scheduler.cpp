#include "hhpim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hhpim::sys {

using placement::Allocation;
using placement::Space;

StaticPolicy::StaticPolicy(Allocation fixed, Time slice)
    : fixed_(fixed), slice_(slice) {}

SliceDecision StaticPolicy::decide(const Allocation& current, int n_tasks) {
  SliceDecision d;
  d.alloc = fixed_;
  d.plan = placement::plan_movement(current, fixed_);  // non-empty only at startup
  d.movement_time = Time::zero();
  d.movement_energy = Energy::zero();
  d.t_constraint = n_tasks > 0 ? slice_ / n_tasks : slice_;
  return d;
}

DynamicLutPolicy::DynamicLutPolicy(std::shared_ptr<const placement::AllocationLut> lut,
                                   placement::CostModel model,
                                   placement::MovementParams movement)
    : lut_(std::move(lut)), model_(model), movement_(movement) {
  if (lut_ == nullptr) {
    throw std::invalid_argument("DynamicLutPolicy: lut must be non-null");
  }
  std::uint64_t total = 0;
  if (!lut_->entries().empty()) total = lut_->entries().back().alloc.total();
  peak_ = balanced_sram_split(model_, total);
}

DynamicLutPolicy::DynamicLutPolicy(placement::AllocationLut lut,
                                   placement::CostModel model,
                                   placement::MovementParams movement)
    : DynamicLutPolicy(
          std::make_shared<const placement::AllocationLut>(std::move(lut)), model,
          movement) {}

Allocation DynamicLutPolicy::initial() {
  // Start from the most relaxed entry: the minimum-energy parking placement.
  return lut_->entries().back().alloc;
}

SliceDecision DynamicLutPolicy::decide(const Allocation& current, int n_tasks) {
  SliceDecision d;
  const Time slice = lut_->slice();

  if (n_tasks == 0) {
    // Idle slice: park the weights in the most energy-efficient placement
    // (everything power-gateable), if the move pays for itself in leakage.
    d.alloc = lut_->entries().back().alloc;
    d.plan = placement::plan_movement(current, d.alloc);
    const auto cost = placement::estimate_movement(model_, d.plan, movement_);
    d.movement_time = cost.time;
    d.movement_energy = cost.energy;
    d.t_constraint = slice;
    return d;
  }

  // Fixed-point iteration on the movement overhead (paper §III-B: the
  // runtime t_constraint accounts for the transition from the previous
  // allocation). A few rounds suffice: the overhead shrinks monotonically as
  // the constraint tightens toward placements nearer the current one.
  Allocation chosen;
  placement::MovementPlan plan;
  Time move_time = Time::zero();
  Energy move_energy = Energy::zero();
  Time tc = slice / n_tasks;
  bool have_choice = false;
  for (int iter = 0; iter < 3; ++iter) {
    // When tc sits left of (or quantizes below) the LUT's peak boundary, use
    // the exact peak-performance placement — the hardware simply runs as
    // fast as it can (left of it is the paper's grey "Not Possible" region).
    const placement::LutEntry& floor_entry = lut_->lookup(tc);
    const placement::Allocation& target =
        floor_entry.feasible ? floor_entry.alloc : peak_;
    plan = placement::plan_movement(current, target);
    const auto cost = placement::estimate_movement(model_, plan, movement_);
    const Time budget = slice - cost.time;
    const Time new_tc = budget > Time::zero() ? budget / n_tasks : Time::ps(1);
    chosen = target;
    move_time = cost.time;
    move_energy = cost.energy;
    have_choice = true;
    // Feasibility of the final choice: movement plus n tasks within T.
    d.feasible = placement::task_time(model_, chosen) <= new_tc;
    if (new_tc == tc) break;
    tc = new_tc;
  }

  if (!have_choice) {
    // Whole table infeasible (cannot happen with a sane T, but stay safe):
    // keep the current placement.
    d.alloc = current;
    d.t_constraint = slice / n_tasks;
    d.feasible = false;
    return d;
  }

  d.alloc = chosen;
  d.plan = plan;
  d.movement_time = move_time;
  d.movement_energy = move_energy;
  d.t_constraint = tc;
  return d;
}

Allocation balanced_sram_split(const placement::CostModel& m, std::uint64_t total) {
  const auto& hp = m.at(Space::kHpSram);
  const auto& lp = m.at(Space::kLpSram);
  Allocation best;
  if (lp.capacity_weights == 0) {
    best[Space::kHpSram] = total;
    return best;
  }
  // Continuous optimum, then check the two neighbouring integers.
  const double t_hp = static_cast<double>(hp.time_per_weight.as_ps());
  const double t_lp = static_cast<double>(lp.time_per_weight.as_ps());
  const double x_star = static_cast<double>(total) * t_lp / (t_hp + t_lp);
  auto time_of = [&](std::uint64_t x_hp) {
    Allocation a;
    a[Space::kHpSram] = x_hp;
    a[Space::kLpSram] = total - x_hp;
    return placement::task_time(m, a);
  };
  std::uint64_t best_x = std::min<std::uint64_t>(
      total, static_cast<std::uint64_t>(x_star));
  Time best_t = time_of(best_x);
  for (const std::int64_t d : {-1, 1, 2}) {
    const std::int64_t cand = static_cast<std::int64_t>(best_x) + d;
    if (cand < 0 || cand > static_cast<std::int64_t>(total)) continue;
    const Time t = time_of(static_cast<std::uint64_t>(cand));
    if (t < best_t) {
      best_t = t;
      best_x = static_cast<std::uint64_t>(cand);
    }
  }
  best[Space::kHpSram] = best_x;
  best[Space::kLpSram] = total - best_x;
  return best;
}

Allocation balanced_mram_split(const placement::CostModel& m, std::uint64_t total) {
  const auto& hp = m.at(Space::kHpMram);
  const auto& lp = m.at(Space::kLpMram);
  Allocation a;
  if (lp.capacity_weights == 0) {
    a[Space::kHpMram] = total;
    return a;
  }
  const double t_hp = static_cast<double>(hp.time_per_weight.as_ps());
  const double t_lp = static_cast<double>(lp.time_per_weight.as_ps());
  const auto x_hp = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(total) * t_lp / (t_hp + t_lp)));
  a[Space::kHpMram] = std::min(x_hp, total);
  a[Space::kLpMram] = total - a[Space::kHpMram];
  return a;
}

}  // namespace hhpim::sys
