// Placement policies and the per-slice scheduling decision.
//
// Every architecture runs the same slice loop; what differs is how weights
// are placed:
//   * Baseline-PIM  : everything in HP-SRAM (the only storage it has).
//   * Hetero-PIM    : fixed latency-balanced split between HP-SRAM and
//                     LP-SRAM (set once for peak load, never adapted).
//   * Hybrid-PIM    : everything in HP-MRAM; SRAM serves as the I/O buffer
//                     (the conventional H-PIM weight placement).
//   * HH-PIM        : dynamic — each slice consults the allocation_state LUT
//                     with t_constraint = (T - t_move) / n_tasks, iterating
//                     once on the movement overhead (paper §III-B).
#pragma once

#include <memory>

#include "common/units.hpp"
#include "placement/cost_model.hpp"
#include "placement/lut.hpp"
#include "placement/movement.hpp"

namespace hhpim::sys {

/// What the policy decided for one slice.
struct SliceDecision {
  placement::Allocation alloc;       ///< placement to use this slice
  placement::MovementPlan plan;      ///< movement from the previous placement
  Time movement_time;                ///< estimated movement overhead
  Energy movement_energy;
  Time t_constraint;                 ///< per-task budget after movement
  bool feasible = true;              ///< false if even peak placement misses T
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Decides the placement for a slice executing `n_tasks` buffered tasks,
  /// transitioning from `current`.
  ///
  /// Contract: decide() must be a pure function of (current, n_tasks) and
  /// construction-time state — no per-call mutable state. sys::Processor
  /// memoizes decisions per (current, n_tasks) pair when
  /// SystemConfig::memoize_decisions is on (the default), so a stateful
  /// policy would silently see stale decisions. Both shipped policies
  /// (StaticPolicy, DynamicLutPolicy) are pure.
  virtual SliceDecision decide(const placement::Allocation& current, int n_tasks) = 0;

  /// Initial placement at application start.
  [[nodiscard]] virtual placement::Allocation initial() = 0;
};

/// Fixed placement (Baseline / Hetero / Hybrid).
class StaticPolicy final : public PlacementPolicy {
 public:
  StaticPolicy(placement::Allocation fixed, Time slice);

  SliceDecision decide(const placement::Allocation& current, int n_tasks) override;
  placement::Allocation initial() override { return fixed_; }

 private:
  placement::Allocation fixed_;
  Time slice_;
};

/// Dynamic LUT-driven placement (HH-PIM).
///
/// The LUT is held by shared_ptr<const …>: it is immutable after build and
/// may be shared with other Processors through placement::LutCache (see
/// docs/ARCHITECTURE.md). The policy co-owns it, so a cache clear() never
/// invalidates a live policy.
class DynamicLutPolicy final : public PlacementPolicy {
 public:
  /// `lut` must be non-null (throws std::invalid_argument otherwise).
  DynamicLutPolicy(std::shared_ptr<const placement::AllocationLut> lut,
                   placement::CostModel model,
                   placement::MovementParams movement = {});
  /// Convenience for callers that build a private LUT (wraps it unshared).
  DynamicLutPolicy(placement::AllocationLut lut, placement::CostModel model,
                   placement::MovementParams movement = {});

  SliceDecision decide(const placement::Allocation& current, int n_tasks) override;
  placement::Allocation initial() override;

  [[nodiscard]] const placement::AllocationLut& lut() const { return *lut_; }
  [[nodiscard]] const std::shared_ptr<const placement::AllocationLut>& lut_ptr() const {
    return lut_;
  }
  /// The exact (unquantized) peak-performance placement: latency-balanced
  /// across HP-SRAM and LP-SRAM — the green point of the paper's Fig. 6.
  [[nodiscard]] const placement::Allocation& peak_allocation() const { return peak_; }

 private:
  std::shared_ptr<const placement::AllocationLut> lut_;
  placement::CostModel model_;
  placement::MovementParams movement_;
  placement::Allocation peak_;
};

/// Latency-balanced split of `total` weights between HP-SRAM and LP-SRAM
/// (the Hetero-PIM static placement; also HH-PIM's peak point). Minimizes
/// max(t_hp, t_lp) over integer splits.
[[nodiscard]] placement::Allocation balanced_sram_split(const placement::CostModel& m,
                                                        std::uint64_t total);

/// Latency-balanced split of `total` weights between HP-MRAM and LP-MRAM
/// (all in HP-MRAM when there is no LP cluster) — the minimum-leakage
/// placement: every SRAM bank can power-gate. This is the "low-power static"
/// mode the fleet's battery-driven adaptation pins via
/// sys::Processor::set_placement_override; it is also the purple MRAM-only
/// point of the paper's Fig. 6.
[[nodiscard]] placement::Allocation balanced_mram_split(const placement::CostModel& m,
                                                        std::uint64_t total);

}  // namespace hhpim::sys
