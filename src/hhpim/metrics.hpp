// Energy-saving metrics and report formatting for the benchmark harness.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "hhpim/processor.hpp"

namespace hhpim::sys {

/// Energy saving of `ours` relative to `reference`, in percent
/// (paper metric: ES = (1 - E_ours / E_ref) * 100).
[[nodiscard]] double energy_saving_percent(Energy ours, Energy reference);

/// One architecture's result on one (model, scenario) cell.
struct CellResult {
  std::string arch;
  Energy energy;
  std::uint64_t deadline_violations = 0;
};

/// Runs a scenario for one architecture+model and returns total energy.
/// Fresh processor per call (steady-state measurement).
[[nodiscard]] CellResult run_cell(const SystemConfig& config, const nn::Model& model,
                                  const std::vector<int>& loads);

}  // namespace hhpim::sys
