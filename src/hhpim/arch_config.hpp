// Architecture configurations (paper Table I):
//
//   Baseline-PIM       : 8 HP modules, 128 kB SRAM each
//   Heterogeneous-PIM  : 4 HP + 4 LP modules, 128 kB SRAM each
//   Hybrid-PIM         : 8 HP modules, 64 kB MRAM + 64 kB SRAM each
//   HH-PIM             : 4 HP + 4 LP modules, 64 kB MRAM + 64 kB SRAM each
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "placement/cost_model.hpp"

namespace hhpim::sys {

enum class ArchKind : std::uint8_t { kBaseline = 0, kHetero, kHybrid, kHhpim };

[[nodiscard]] const char* to_string(ArchKind k);

struct ArchConfig {
  ArchKind kind = ArchKind::kHhpim;
  std::string name = "HH-PIM";
  std::size_t hp_modules = 4;
  std::size_t lp_modules = 4;
  std::size_t mram_kb_per_module = 64;  ///< 0 = no MRAM
  std::size_t sram_kb_per_module = 64;

  [[nodiscard]] static ArchConfig baseline();
  [[nodiscard]] static ArchConfig hetero();
  [[nodiscard]] static ArchConfig hybrid();
  [[nodiscard]] static ArchConfig hhpim();
  /// All four in Table I order.
  [[nodiscard]] static std::array<ArchConfig, 4> paper_table1();

  [[nodiscard]] placement::ClusterShape hp_shape() const;
  [[nodiscard]] placement::ClusterShape lp_shape() const;
  [[nodiscard]] std::size_t total_modules() const { return hp_modules + lp_modules; }

  /// Digest of the structural fields (kind, module counts, per-module
  /// capacities; the display `name` is excluded). Part of the placement-LUT
  /// cache key (placement/lut_cache.hpp).
  [[nodiscard]] std::uint64_t config_hash() const;
};

}  // namespace hhpim::sys
