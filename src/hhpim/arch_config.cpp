#include "hhpim/arch_config.hpp"

#include "common/hash.hpp"

namespace hhpim::sys {

const char* to_string(ArchKind k) {
  switch (k) {
    case ArchKind::kBaseline: return "Baseline-PIM";
    case ArchKind::kHetero: return "Heterogeneous-PIM";
    case ArchKind::kHybrid: return "Hybrid-PIM";
    case ArchKind::kHhpim: return "HH-PIM";
  }
  return "?";
}

ArchConfig ArchConfig::baseline() {
  return ArchConfig{ArchKind::kBaseline, "Baseline-PIM", 8, 0, 0, 128};
}

ArchConfig ArchConfig::hetero() {
  return ArchConfig{ArchKind::kHetero, "Heterogeneous-PIM", 4, 4, 0, 128};
}

ArchConfig ArchConfig::hybrid() {
  return ArchConfig{ArchKind::kHybrid, "Hybrid-PIM", 8, 0, 64, 64};
}

ArchConfig ArchConfig::hhpim() {
  return ArchConfig{ArchKind::kHhpim, "HH-PIM", 4, 4, 64, 64};
}

std::array<ArchConfig, 4> ArchConfig::paper_table1() {
  return {baseline(), hetero(), hybrid(), hhpim()};
}

placement::ClusterShape ArchConfig::hp_shape() const {
  return placement::ClusterShape{hp_modules, mram_kb_per_module * 1024,
                                 sram_kb_per_module * 1024};
}

placement::ClusterShape ArchConfig::lp_shape() const {
  return placement::ClusterShape{lp_modules, mram_kb_per_module * 1024,
                                 sram_kb_per_module * 1024};
}

std::uint64_t ArchConfig::config_hash() const {
  Fnv1a h;
  h.add(static_cast<std::uint64_t>(kind))
      .add(static_cast<std::uint64_t>(hp_modules))
      .add(static_cast<std::uint64_t>(lp_modules))
      .add(static_cast<std::uint64_t>(mram_kb_per_module))
      .add(static_cast<std::uint64_t>(sram_kb_per_module));
  return h.digest();
}

}  // namespace hhpim::sys
