#include "hhpim/processor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "placement/lut_cache.hpp"

namespace hhpim::sys {

using energy::ClusterKind;
using energy::MemoryKind;
using placement::Allocation;
using placement::Space;

Energy RunStats::mean_slice_energy() const {
  if (slices.empty()) return Energy::zero();
  return total_energy / static_cast<double>(slices.size());
}

energy::PowerSpec resolved_power_spec(const SystemConfig& config) {
  return (config.power.has_value() ? *config.power : energy::PowerSpec::paper_45nm())
      .scaled(config.time_scale);
}

namespace {

// T = N_max * peak task time (paper: up to 10 inferences per slice at peak),
// plus the 1 % margin the paper reserves for runtime overheads (its optimizer
// budget is "1 % of each time slice"). Peak is the latency-balanced SRAM
// split. The single definition shared by the Processor constructor and
// derived_slice_length — the grid's slice-pinning invariant depends on the
// two agreeing exactly.
Time slice_from_cost(const placement::CostModel& cost, std::uint64_t weights,
                     int max_inferences_per_slice) {
  const Time peak = placement::task_time(cost, balanced_sram_split(cost, weights));
  return peak * static_cast<std::int64_t>(max_inferences_per_slice) * 1.01;
}

}  // namespace

Time derived_slice_length(const SystemConfig& config, const nn::Model& model) {
  if (config.slice > Time::zero()) return config.slice;
  const auto cost =
      placement::CostModel::build(resolved_power_spec(config), config.arch.hp_shape(),
                                  config.arch.lp_shape(), model.uses_per_weight());
  return slice_from_cost(cost, model.effective_params(), config.max_inferences_per_slice);
}

Processor::Processor(const SystemConfig& config, const nn::Model& model)
    : config_(config),
      spec_(resolved_power_spec(config)),
      weights_(model.effective_params()),
      pim_macs_(model.pim_macs()),
      cost_(placement::CostModel::build(spec_, config.arch.hp_shape(),
                                        config.arch.lp_shape(), model.uses_per_weight())) {
  const ArchConfig& arch = config_.arch;

  if (arch.hp_modules > 0) {
    pim::ClusterConfig cc;
    cc.name = "hp";
    cc.kind = ClusterKind::kHighPerformance;
    cc.module_count = arch.hp_modules;
    cc.mram_bytes_per_module = arch.mram_kb_per_module * 1024;
    cc.sram_bytes_per_module = arch.sram_kb_per_module * 1024;
    hp_.emplace(cc, spec_, &ledger_);
  }
  if (arch.lp_modules > 0) {
    pim::ClusterConfig cc;
    cc.name = "lp";
    cc.kind = ClusterKind::kLowPower;
    cc.module_count = arch.lp_modules;
    cc.mram_bytes_per_module = arch.mram_kb_per_module * 1024;
    cc.sram_bytes_per_module = arch.sram_kb_per_module * 1024;
    lp_.emplace(cc, spec_, &ledger_);
  }

  pim::DataAllocatorConfig xc;
  xc.name = "xcluster";
  xc.bytes_per_ns_per_module = config_.movement.bytes_per_ns_per_module;
  xc.interface_latency = config_.movement.interface_latency;
  xc.energy_per_byte = config_.movement.energy_per_byte;
  const std::size_t lanes = std::max<std::size_t>(
      1, std::min(arch.hp_modules == 0 ? arch.lp_modules : arch.hp_modules,
                  arch.lp_modules == 0 ? arch.hp_modules : arch.lp_modules));
  xfer_ = std::make_unique<pim::DataAllocator>(xc, lanes, &ledger_);

  slice_ = config_.slice > Time::zero()
               ? config_.slice
               : slice_from_cost(cost_, weights_, config_.max_inferences_per_slice);

  // Placement policy per architecture.
  switch (arch.kind) {
    case ArchKind::kBaseline: {
      Allocation a;
      a[Space::kHpSram] = weights_;
      if (!placement::fits(cost_, a)) {
        throw std::invalid_argument("Baseline-PIM: model does not fit in SRAM");
      }
      policy_ = std::make_unique<StaticPolicy>(a, slice_);
      break;
    }
    case ArchKind::kHetero: {
      const Allocation a = balanced_sram_split(cost_, weights_);
      policy_ = std::make_unique<StaticPolicy>(a, slice_);
      break;
    }
    case ArchKind::kHybrid: {
      Allocation a;
      a[Space::kHpMram] = weights_;
      if (!placement::fits(cost_, a)) {
        throw std::invalid_argument("Hybrid-PIM: model does not fit in MRAM");
      }
      policy_ = std::make_unique<StaticPolicy>(a, slice_);
      break;
    }
    case ArchKind::kHhpim: {
      placement::LutParams lp;
      lp.slice = slice_;
      lp.total_weights = weights_;
      lp.t_entries = config_.lut_t_entries;
      lp.k_blocks = config_.lut_k_blocks;
      std::shared_ptr<const placement::AllocationLut> lut;
      if (config_.lut_cache != nullptr) {
        // Shared path: identical (model topology, arch, cost model, slice,
        // resolution) keys resolve to one LUT built once per process.
        const auto key = placement::LutCacheKey::make(
            model.topology_hash(), arch.config_hash(), cost_, lp);
        lut = config_.lut_cache->get_or_build(key, cost_, lp);
      } else {
        lut = std::make_shared<const placement::AllocationLut>(
            placement::AllocationLut::build(cost_, lp));
      }
      auto policy = std::make_unique<DynamicLutPolicy>(std::move(lut), cost_,
                                                       config_.movement);
      lut_view_ = &policy->lut();
      policy_ = std::move(policy);
      break;
    }
  }

  // Initial deployment: weights appear in their initial residency. The
  // one-time provisioning cost (identical for all architectures) is not
  // charged, matching the paper's steady-state measurements.
  current_ = policy_->initial();
  apply_residency(current_);
}

const placement::AllocationLut* Processor::lut() const { return lut_view_; }

pim::Cluster* Processor::cluster_of(Space s) {
  const bool hp = placement::cluster_of(s) == ClusterKind::kHighPerformance;
  if (hp) return hp_.has_value() ? &*hp_ : nullptr;
  return lp_.has_value() ? &*lp_ : nullptr;
}

Time Processor::peak_task_time() const {
  // Fastest placement: latency-balanced across the SRAMs of both clusters
  // (weights may live in SRAM at peak — the core HH-PIM capability).
  const Allocation a = balanced_sram_split(cost_, weights_);
  return placement::task_time(cost_, a);
}

Time Processor::mram_only_task_time() const {
  if (config_.arch.mram_kb_per_module == 0) return Time::zero();
  // Balanced across the MRAM of both clusters (or all in HP-MRAM when there
  // is no LP cluster).
  return placement::task_time(cost_, balanced_mram_split(cost_, weights_));
}

void Processor::apply_residency(const Allocation& alloc) {
  for (const Space s : placement::all_spaces()) {
    pim::Cluster* c = cluster_of(s);
    if (c == nullptr) continue;
    if (placement::memory_of(s) == MemoryKind::kMram &&
        config_.arch.mram_kb_per_module == 0) {
      continue;
    }
    c->distribute_resident(placement::memory_of(s), alloc[s], now_);
  }
}

void Processor::apply_movement(const placement::MovementPlan& plan) {
  std::vector<pim::TransferRequest> requests;
  for (std::size_t src = 0; src < placement::kSpaceCount; ++src) {
    for (std::size_t dst = 0; dst < placement::kSpaceCount; ++dst) {
      const std::uint64_t w = plan.moved[src][dst];
      if (w == 0) continue;
      const Space s = static_cast<Space>(src);
      const Space d = static_cast<Space>(dst);
      pim::Cluster* cs = cluster_of(s);
      pim::Cluster* cd = cluster_of(d);
      if (cs == nullptr || cd == nullptr) {
        throw std::logic_error("movement through a non-existent cluster");
      }
      // Split the stream across module lanes.
      const std::size_t lanes = std::min(cs->module_count(), cd->module_count());
      const std::uint64_t base = w / lanes;
      const std::uint64_t extra = w % lanes;
      for (std::size_t i = 0; i < lanes; ++i) {
        const std::uint64_t share = base + (i < extra ? 1 : 0);
        if (share == 0) continue;
        pim::TransferRequest r;
        r.src = &cs->module(i);
        r.src_mem = placement::memory_of(s);
        r.dst = cs == cd ? &cd->module(i) : &cd->module(i % cd->module_count());
        r.dst_mem = placement::memory_of(d);
        r.weights = share;
        requests.push_back(r);
      }
    }
  }
  if (!requests.empty()) xfer_->execute(now_, requests);
}

Time Processor::run_task(Time start) {
  Time done = start;
  const std::uint64_t total = current_.total();
  if (total == 0 || pim_macs_ == 0) return done;

  for (const Space s : placement::all_spaces()) {
    const std::uint64_t w = current_[s];
    if (w == 0) continue;
    pim::Cluster* c = cluster_of(s);
    if (c == nullptr) continue;
    const auto macs = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(pim_macs_) * static_cast<double>(w) /
        static_cast<double>(total)));
    if (macs == 0) continue;
    // compute() starts each module at max(start, module busy) — the MRAM and
    // SRAM shares of a module serialize automatically.
    done = std::max(done, c->compute(start, placement::memory_of(s), macs));
  }
  return done;
}

void Processor::set_placement_override(
    const std::optional<placement::Allocation>& alloc) {
  if (alloc.has_value()) {
    if (alloc->total() != weights_) {
      throw std::invalid_argument(
          "set_placement_override: allocation must place every weight");
    }
    if (!placement::fits(cost_, *alloc)) {
      throw std::invalid_argument(
          "set_placement_override: allocation exceeds capacity");
    }
  }
  override_ = alloc;
}

// A pinned (override) placement decided exactly like a static policy would:
// move whatever differs from the current residency, charge the estimated
// movement against the slice budget, and report infeasibility if the pinned
// placement cannot serve the load within T.
SliceDecision Processor::decide_override(const placement::Allocation& target,
                                         int n_tasks) const {
  SliceDecision d;
  d.alloc = target;
  d.plan = placement::plan_movement(current_, target);
  const auto cost = placement::estimate_movement(cost_, d.plan, config_.movement);
  d.movement_time = cost.time;
  d.movement_energy = cost.energy;
  const Time budget = slice_ - cost.time;
  d.t_constraint = n_tasks > 0
                       ? (budget > Time::zero() ? budget / n_tasks : Time::ps(1))
                       : slice_;
  d.feasible = n_tasks == 0 ||
               placement::task_time(cost_, target) <= d.t_constraint;
  return d;
}

SliceStats Processor::run_slice(int n_tasks) {
  const Time slice_start = now_;
  const Time slice_end = slice_start + slice_;
  const Energy before = ledger_.total();

  const SliceDecision d = override_.has_value()
                              ? decide_override(*override_, n_tasks)
                              : policy_->decide(current_, n_tasks);
  if (!(d.alloc == current_) && d.plan.total() > 0) {
    apply_movement(d.plan);
    // Residency flips after the data lands.
    apply_residency(d.alloc);
    current_ = d.alloc;
  } else if (!(d.alloc == current_)) {
    apply_residency(d.alloc);
    current_ = d.alloc;
  }

  Time cursor = std::max(now_, hp_.has_value() ? hp_->busy_until() : Time::zero());
  if (lp_.has_value()) cursor = std::max(cursor, lp_->busy_until());

  for (int i = 0; i < n_tasks; ++i) {
    cursor = run_task(cursor);
  }

  SliceStats stats;
  stats.slice = slice_index_++;
  stats.tasks_executed = n_tasks;
  stats.alloc = current_;
  stats.movement_time = d.movement_time;
  stats.busy_time = cursor - slice_start;
  stats.deadline_violated = cursor > slice_end;

  // The slice boundary: close leakage windows so the slice's energy is
  // attributed to it, then advance the clock.
  now_ = std::max(slice_end, cursor);
  if (hp_.has_value()) hp_->settle(now_);
  if (lp_.has_value()) lp_->settle(now_);
  stats.energy = ledger_.total() - before;
  return stats;
}

RunStats Processor::run_scenario(const std::vector<int>& loads) {
  RunStats run;
  const Energy before = ledger_.total();
  const Time t0 = now_;

  // Slice k executes the inferences that arrived in slice k-1; one trailing
  // slice drains the last arrivals.
  int buffered = 0;
  for (std::size_t k = 0; k <= loads.size(); ++k) {
    const int arriving = k < loads.size() ? loads[k] : 0;
    SliceStats s = run_slice(buffered);
    run.tasks += static_cast<std::uint64_t>(s.tasks_executed);
    run.deadline_violations += s.deadline_violated ? 1 : 0;
    run.slices.push_back(std::move(s));
    buffered = arriving;
  }
  run.total_energy = ledger_.total() - before;
  run.total_time = now_ - t0;
  return run;
}

Inventory Processor::inventory() const {
  Inventory inv;
  inv.hp_modules = config_.arch.hp_modules;
  inv.lp_modules = config_.arch.lp_modules;
  const std::size_t total = inv.hp_modules + inv.lp_modules;
  inv.mram_banks = config_.arch.mram_kb_per_module > 0 ? total : 0;
  inv.sram_banks = total;
  inv.pes = total;
  inv.controllers = (hp_.has_value() ? 1 : 0) + (lp_.has_value() ? 1 : 0);
  inv.mram_bytes = static_cast<std::uint64_t>(inv.mram_banks) *
                   config_.arch.mram_kb_per_module * 1024;
  inv.sram_bytes = static_cast<std::uint64_t>(inv.sram_banks) *
                   config_.arch.sram_kb_per_module * 1024;
  inv.instruction_queue_depth =
      hp_.has_value() ? hp_->controller().queue().depth() : 0;
  return inv;
}

}  // namespace hhpim::sys
