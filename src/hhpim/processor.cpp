#include "hhpim/processor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "common/serialize.hpp"
#include "placement/lut_cache.hpp"
#include "riscv/rv_asm.hpp"

namespace hhpim::sys {

using energy::ClusterKind;
using energy::MemoryKind;
using placement::Allocation;
using placement::Space;

Energy RunStats::mean_slice_energy() const {
  if (slices.empty()) return Energy::zero();
  return total_energy / static_cast<double>(slices.size());
}

energy::PowerSpec resolved_power_spec(const SystemConfig& config) {
  return (config.power.has_value() ? *config.power : energy::PowerSpec::paper_45nm())
      .scaled(config.time_scale);
}

namespace {

// T = N_max * peak task time (paper: up to 10 inferences per slice at peak),
// plus the 1 % margin the paper reserves for runtime overheads (its optimizer
// budget is "1 % of each time slice"). Peak is the latency-balanced SRAM
// split. The single definition shared by the Processor constructor and
// derived_slice_length — the grid's slice-pinning invariant depends on the
// two agreeing exactly.
Time slice_from_cost(const placement::CostModel& cost, std::uint64_t weights,
                     int max_inferences_per_slice) {
  const Time peak = placement::task_time(cost, balanced_sram_split(cost, weights));
  return peak * static_cast<std::int64_t>(max_inferences_per_slice) * 1.01;
}

/// FNV-1a over a byte run, 8 bytes per step (length hashed first so a zero
/// tail cannot collide) — the host program text and host RAM digests.
void add_bytes(Fnv1a& h, const std::uint8_t* bytes, std::size_t size) {
  h.add(static_cast<std::uint64_t>(size));
  for (std::size_t i = 0; i < size; i += 8) {
    std::uint64_t chunk = 0;
    const std::size_t n = size - i < 8 ? size - i : 8;
    for (std::size_t j = 0; j < n; ++j) {
      chunk |= static_cast<std::uint64_t>(bytes[i + j]) << (8 * j);
    }
    h.add(chunk);
  }
}

}  // namespace

std::string default_host_program() {
  // Per-slice scheduler: a0 = n_tasks on entry. Persistent state lives at
  // 0x800 (last slice's load) and 0x804 (descriptor digest) — a pure
  // function of (previous state, n_tasks), which is exactly the contract
  // Processor::state_digest() needs for memo replay to stay exact.
  return R"(
        li   s0, 0x800        # persistent scheduler state base
        lw   s1, 0(s0)        # tasks dispatched last slice
        li   t0, 0            # task index
        li   t1, 0            # descriptor accumulator
loop:
        beq  t0, a0, done
        # per-task dispatch bookkeeping: fold the task index and last
        # slice's load into a descriptor word (queue address arithmetic)
        mul  t2, t0, s1
        slli t3, t0, 2
        add  t2, t2, t3
        xor  t1, t1, t2
        addi t0, t0, 1
        j    loop
done:
        sw   a0, 0(s0)        # remember this slice's load
        sw   t1, 4(s0)        # and the dispatch digest
        ecall
)";
}

/// Host co-simulation state. `image` is the full initial RAM content so
/// reset() restores construction state exactly; the engine's block cache is
/// cleared whenever RAM is rewritten behind the Bus (reset, load_state).
struct Processor::HostState {
  riscv::Ram ram;
  riscv::Bus bus;
  riscv::BlockEngine engine;
  std::vector<std::uint8_t> image;
  energy::ComponentId component;
  Power active_power = Power::mw(0.0);
  Time cycle_period = Time::zero();

  HostState(std::uint32_t ram_bytes, riscv::CycleModel cycles)
      : ram(ram_bytes), engine(&bus, 0, cycles) {
    bus.map(0, ram_bytes, &ram);
  }
};

Time derived_slice_length(const SystemConfig& config, const nn::Model& model) {
  if (config.slice > Time::zero()) return config.slice;
  const auto cost =
      placement::CostModel::build(resolved_power_spec(config), config.arch.hp_shape(),
                                  config.arch.lp_shape(), model.uses_per_weight());
  return slice_from_cost(cost, model.effective_params(), config.max_inferences_per_slice);
}

Processor::Processor(const SystemConfig& config, const nn::Model& model)
    : config_(config),
      spec_(resolved_power_spec(config)),
      weights_(model.effective_params()),
      pim_macs_(model.pim_macs()),
      cost_(placement::CostModel::build(spec_, config.arch.hp_shape(),
                                        config.arch.lp_shape(), model.uses_per_weight())) {
  const ArchConfig& arch = config_.arch;

  if (arch.hp_modules > 0) {
    pim::ClusterConfig cc;
    cc.name = "hp";
    cc.kind = ClusterKind::kHighPerformance;
    cc.module_count = arch.hp_modules;
    cc.mram_bytes_per_module = arch.mram_kb_per_module * 1024;
    cc.sram_bytes_per_module = arch.sram_kb_per_module * 1024;
    hp_.emplace(cc, spec_, &ledger_);
  }
  if (arch.lp_modules > 0) {
    pim::ClusterConfig cc;
    cc.name = "lp";
    cc.kind = ClusterKind::kLowPower;
    cc.module_count = arch.lp_modules;
    cc.mram_bytes_per_module = arch.mram_kb_per_module * 1024;
    cc.sram_bytes_per_module = arch.sram_kb_per_module * 1024;
    lp_.emplace(cc, spec_, &ledger_);
  }

  pim::DataAllocatorConfig xc;
  xc.name = "xcluster";
  xc.bytes_per_ns_per_module = config_.movement.bytes_per_ns_per_module;
  xc.interface_latency = config_.movement.interface_latency;
  xc.energy_per_byte = config_.movement.energy_per_byte;
  const std::size_t lanes = std::max<std::size_t>(
      1, std::min(arch.hp_modules == 0 ? arch.lp_modules : arch.hp_modules,
                  arch.lp_modules == 0 ? arch.hp_modules : arch.lp_modules));
  xfer_ = std::make_unique<pim::DataAllocator>(xc, lanes, &ledger_);

  slice_ = config_.slice > Time::zero()
               ? config_.slice
               : slice_from_cost(cost_, weights_, config_.max_inferences_per_slice);

  // Placement policy per architecture.
  switch (arch.kind) {
    case ArchKind::kBaseline: {
      Allocation a;
      a[Space::kHpSram] = weights_;
      if (!placement::fits(cost_, a)) {
        throw std::invalid_argument("Baseline-PIM: model does not fit in SRAM");
      }
      policy_ = std::make_unique<StaticPolicy>(a, slice_);
      break;
    }
    case ArchKind::kHetero: {
      const Allocation a = balanced_sram_split(cost_, weights_);
      policy_ = std::make_unique<StaticPolicy>(a, slice_);
      break;
    }
    case ArchKind::kHybrid: {
      Allocation a;
      a[Space::kHpMram] = weights_;
      if (!placement::fits(cost_, a)) {
        throw std::invalid_argument("Hybrid-PIM: model does not fit in MRAM");
      }
      policy_ = std::make_unique<StaticPolicy>(a, slice_);
      break;
    }
    case ArchKind::kHhpim: {
      placement::LutParams lp;
      lp.slice = slice_;
      lp.total_weights = weights_;
      lp.t_entries = config_.lut_t_entries;
      lp.k_blocks = config_.lut_k_blocks;
      std::shared_ptr<const placement::AllocationLut> lut;
      if (config_.lut_cache != nullptr) {
        // Shared path: identical (model topology, arch, cost model, slice,
        // resolution) keys resolve to one LUT built once per process.
        const auto key = placement::LutCacheKey::make(
            model.topology_hash(), arch.config_hash(), cost_, lp);
        lut = config_.lut_cache->get_or_build(key, cost_, lp);
      } else {
        lut = std::make_shared<const placement::AllocationLut>(
            placement::AllocationLut::build(cost_, lp));
      }
      auto policy = std::make_unique<DynamicLutPolicy>(std::move(lut), cost_,
                                                       config_.movement);
      lut_view_ = &policy->lut();
      policy_ = std::move(policy);
      break;
    }
  }

  // Initial deployment: weights appear in their initial residency. The
  // one-time provisioning cost (identical for all architectures) is not
  // charged, matching the paper's steady-state measurements.
  current_ = policy_->initial();
  apply_residency(current_);

  if (config_.host.enabled) {
    const HostConfig& hc = config_.host;
    if (hc.ram_bytes < 64 || (hc.ram_bytes & 3u) != 0) {
      throw std::invalid_argument("host: ram_bytes must be >= 64 and 4-aligned");
    }
    host_ = std::make_unique<HostState>(hc.ram_bytes, hc.cycles);
    const std::string source =
        hc.program.empty() ? default_host_program() : hc.program;
    const riscv::RvAsmResult assembled = riscv::assemble_rv32(source, 0);
    if (const auto* err = std::get_if<riscv::RvAsmError>(&assembled)) {
      throw std::invalid_argument("host program, line " +
                                  std::to_string(err->line) + ": " +
                                  err->message);
    }
    const auto& words = std::get<std::vector<std::uint32_t>>(assembled);
    if (words.size() * 4 > hc.ram_bytes) {
      throw std::invalid_argument("host program does not fit in host RAM");
    }
    host_->image.assign(hc.ram_bytes, 0);
    for (std::size_t i = 0; i < words.size(); ++i) {
      for (unsigned b = 0; b < 4; ++b) {
        host_->image[i * 4 + b] =
            static_cast<std::uint8_t>(words[i] >> (8 * b));
      }
    }
    host_->ram.load_image(0, host_->image.data(), host_->image.size());
    host_->component = ledger_.register_component("host");
    host_->active_power = spec_.hp.pe.dynamic * hc.power_scale;
    host_->cycle_period = Frequency::ghz(hc.clock_ghz).period();
    if (host_->cycle_period <= Time::zero()) {
      throw std::invalid_argument("host: clock_ghz must be positive");
    }
  }
}

Processor::~Processor() = default;

const placement::AllocationLut* Processor::lut() const { return lut_view_; }

pim::Cluster* Processor::cluster_of(Space s) {
  const bool hp = placement::cluster_of(s) == ClusterKind::kHighPerformance;
  if (hp) return hp_.has_value() ? &*hp_ : nullptr;
  return lp_.has_value() ? &*lp_ : nullptr;
}

Time Processor::peak_task_time() const {
  // Fastest placement: latency-balanced across the SRAMs of both clusters
  // (weights may live in SRAM at peak — the core HH-PIM capability).
  const Allocation a = balanced_sram_split(cost_, weights_);
  return placement::task_time(cost_, a);
}

Time Processor::mram_only_task_time() const {
  if (config_.arch.mram_kb_per_module == 0) return Time::zero();
  // Balanced across the MRAM of both clusters (or all in HP-MRAM when there
  // is no LP cluster).
  return placement::task_time(cost_, balanced_mram_split(cost_, weights_));
}

void Processor::apply_residency(const Allocation& alloc) {
  for (const Space s : placement::all_spaces()) {
    pim::Cluster* c = cluster_of(s);
    if (c == nullptr) continue;
    if (placement::memory_of(s) == MemoryKind::kMram &&
        config_.arch.mram_kb_per_module == 0) {
      continue;
    }
    c->distribute_resident(placement::memory_of(s), alloc[s], now_);
  }
}

void Processor::apply_movement(const placement::MovementPlan& plan) {
  std::vector<pim::TransferRequest> requests;
  for (std::size_t src = 0; src < placement::kSpaceCount; ++src) {
    for (std::size_t dst = 0; dst < placement::kSpaceCount; ++dst) {
      const std::uint64_t w = plan.moved[src][dst];
      if (w == 0) continue;
      const Space s = static_cast<Space>(src);
      const Space d = static_cast<Space>(dst);
      pim::Cluster* cs = cluster_of(s);
      pim::Cluster* cd = cluster_of(d);
      if (cs == nullptr || cd == nullptr) {
        throw std::logic_error("movement through a non-existent cluster");
      }
      // Split the stream across module lanes.
      const std::size_t lanes = std::min(cs->module_count(), cd->module_count());
      const std::uint64_t base = w / lanes;
      const std::uint64_t extra = w % lanes;
      for (std::size_t i = 0; i < lanes; ++i) {
        const std::uint64_t share = base + (i < extra ? 1 : 0);
        if (share == 0) continue;
        pim::TransferRequest r;
        r.src = &cs->module(i);
        r.src_mem = placement::memory_of(s);
        r.dst = cs == cd ? &cd->module(i) : &cd->module(i % cd->module_count());
        r.dst_mem = placement::memory_of(d);
        r.weights = share;
        requests.push_back(r);
      }
    }
  }
  if (!requests.empty()) xfer_->execute(now_, requests);
}

bool Processor::task_shares(
    std::array<std::uint64_t, placement::kSpaceCount>& macs) const {
  const std::uint64_t total = current_.total();
  if (total == 0 || pim_macs_ == 0) return false;

  // Proportional split with largest-remainder correction: per-space llround
  // can leave the shares summing to pim_macs_ ± a few; the residue lands on
  // the largest share (first such space on ties), so every task computes
  // exactly pim_macs_ MACs regardless of the placement's granularity.
  std::uint64_t assigned = 0;
  std::size_t largest = placement::kSpaceCount;
  for (std::size_t i = 0; i < placement::kSpaceCount; ++i) {
    const std::uint64_t w = current_.weights[i];
    macs[i] = w == 0 ? 0
                     : static_cast<std::uint64_t>(std::llround(
                           static_cast<double>(pim_macs_) * static_cast<double>(w) /
                           static_cast<double>(total)));
    assigned += macs[i];
    // Residue target: the largest share; if every share rounded to zero
    // (pim_macs_ < number of occupied spaces), the most-weighted space.
    if (w > 0 && (largest == placement::kSpaceCount || macs[i] > macs[largest] ||
                  (macs[i] == macs[largest] &&
                   macs[largest] == 0 && w > current_.weights[largest]))) {
      largest = i;
    }
  }
  if (largest != placement::kSpaceCount && assigned != pim_macs_) {
    // |residue| is at most kSpaceCount/2 MACs; a negative residue can exceed
    // the largest share only when pim_macs_ is single-digit, so drain
    // whichever share is currently largest until balanced.
    std::int64_t residue = static_cast<std::int64_t>(pim_macs_) -
                           static_cast<std::int64_t>(assigned);
    if (residue > 0) {
      macs[largest] += static_cast<std::uint64_t>(residue);
    } else {
      while (residue < 0) {
        std::size_t big = 0;
        for (std::size_t i = 1; i < placement::kSpaceCount; ++i) {
          if (macs[i] > macs[big]) big = i;
        }
        if (macs[big] == 0) break;
        const std::uint64_t take =
            std::min(macs[big], static_cast<std::uint64_t>(-residue));
        macs[big] -= take;
        residue += static_cast<std::int64_t>(take);
      }
    }
  }
  return true;
}

Time Processor::run_task(
    Time start, const std::array<std::uint64_t, placement::kSpaceCount>& macs) {
  Time done = start;
  for (const Space s : placement::all_spaces()) {
    const std::uint64_t m = macs[static_cast<std::size_t>(s)];
    if (m == 0) continue;
    pim::Cluster* c = cluster_of(s);
    if (c == nullptr) continue;
    // compute() starts each module at max(start, module busy) — the MRAM and
    // SRAM shares of a module serialize automatically.
    done = std::max(done, c->compute(start, placement::memory_of(s), m));
  }
  return done;
}

Time Processor::run_tasks_batched(Time cursor, int n_tasks) {
  if (n_tasks <= 0) return cursor;
  std::array<std::uint64_t, placement::kSpaceCount> macs{};
  if (!task_shares(macs)) return cursor;

  const bool batch = config_.batched_execution && n_tasks >= 3;
  if (!batch) {
    for (int i = 0; i < n_tasks; ++i) cursor = run_task(cursor, macs);
    return cursor;
  }

  // Single active space: the whole task is one cluster burst — hand the
  // batch to the cluster-level kernel.
  std::size_t active = placement::kSpaceCount;
  int active_count = 0;
  for (std::size_t i = 0; i < placement::kSpaceCount; ++i) {
    if (macs[i] > 0 && cluster_of(static_cast<Space>(i)) != nullptr) {
      active = i;
      ++active_count;
    }
  }
  if (active_count == 0) return cursor;
  if (active_count == 1) {
    const auto s = static_cast<Space>(active);
    return cluster_of(s)->compute_batch(cursor, placement::memory_of(s),
                                        macs[active], n_tasks);
  }

  // Generic steady-state replay. Task 1 absorbs whatever power-window and
  // busy-time state the slice boundary (movement, residency flips) left
  // behind; from task 2 on, every task advances the system by an identical
  // period with identical energy posts and integer-state deltas. Record
  // task 2, then replay it (n - 2) times — bit-identical to the scalar
  // loop (pinned by tests/test_batched.cpp).
  cursor = run_task(cursor, macs);

  probe_.clear();
  if (hp_.has_value()) {
    for (std::size_t i = 0; i < hp_->module_count(); ++i) {
      probe_.push_back(hp_->module(i).counters());
    }
  }
  if (lp_.has_value()) {
    for (std::size_t i = 0; i < lp_->module_count(); ++i) {
      probe_.push_back(lp_->module(i).counters());
    }
  }

  replay_posts_.clear();
  const Time c1 = cursor;
  ledger_.begin_recording(&replay_posts_);
  cursor = run_task(cursor, macs);
  ledger_.end_recording();
  const Time period = cursor - c1;

  const int repeats = n_tasks - 2;
  ledger_.replay(replay_posts_, repeats);
  std::size_t pi = 0;
  if (hp_.has_value()) {
    for (std::size_t i = 0; i < hp_->module_count(); ++i, ++pi) {
      pim::PimModule& mod = hp_->module(i);
      mod.fast_forward(pim::ModuleCounters::delta(probe_[pi], mod.counters()),
                       repeats);
    }
  }
  if (lp_.has_value()) {
    for (std::size_t i = 0; i < lp_->module_count(); ++i, ++pi) {
      pim::PimModule& mod = lp_->module(i);
      mod.fast_forward(pim::ModuleCounters::delta(probe_[pi], mod.counters()),
                       repeats);
    }
  }
  return cursor + period * static_cast<std::int64_t>(repeats);
}

void Processor::set_placement_override(
    const std::optional<placement::Allocation>& alloc) {
  if (alloc.has_value()) {
    if (alloc->total() != weights_) {
      throw std::invalid_argument(
          "set_placement_override: allocation must place every weight");
    }
    if (!placement::fits(cost_, *alloc)) {
      throw std::invalid_argument(
          "set_placement_override: allocation exceeds capacity");
    }
  }
  override_ = alloc;
  // Memoized decisions were computed under the previous decision source.
  memo_.clear();
}

const SliceDecision& Processor::slice_decision(int n_tasks) {
  if (!config_.memoize_decisions) {
    scratch_decision_ = override_.has_value()
                            ? decide_override(*override_, n_tasks)
                            : policy_->decide(current_, n_tasks);
    return scratch_decision_;
  }
  for (const MemoEntry& e : memo_) {
    if (e.n_tasks == n_tasks && e.current == current_) return e.decision;
  }
  SliceDecision d = override_.has_value() ? decide_override(*override_, n_tasks)
                                          : policy_->decide(current_, n_tasks);
  if (memo_.size() >= kMemoCapacity) {
    // Pathological churn (capacity distinct slice states): serve uncached.
    scratch_decision_ = std::move(d);
    return scratch_decision_;
  }
  memo_.push_back(MemoEntry{current_, n_tasks, std::move(d)});
  return memo_.back().decision;
}

// A pinned (override) placement decided exactly like a static policy would:
// move whatever differs from the current residency, charge the estimated
// movement against the slice budget, and report infeasibility if the pinned
// placement cannot serve the load within T.
SliceDecision Processor::decide_override(const placement::Allocation& target,
                                         int n_tasks) const {
  SliceDecision d;
  d.alloc = target;
  d.plan = placement::plan_movement(current_, target);
  const auto cost = placement::estimate_movement(cost_, d.plan, config_.movement);
  d.movement_time = cost.time;
  d.movement_energy = cost.energy;
  const Time budget = slice_ - cost.time;
  d.t_constraint = n_tasks > 0
                       ? (budget > Time::zero() ? budget / n_tasks : Time::ps(1))
                       : slice_;
  d.feasible = n_tasks == 0 ||
               placement::task_time(cost_, target) <= d.t_constraint;
  return d;
}

SliceStats Processor::run_slice(int n_tasks) {
  const Time slice_start = now_;
  const Time slice_end = slice_start + slice_;
  // Slice energy is read from the ledger's window, not as a delta of the
  // cumulative totals: the window sums this slice's posts from zero, so the
  // reported bits depend only on the slice's own behavior — never on how
  // much energy the run accumulated before it. The fleet's device-outcome
  // memo replays slices across devices with different histories and relies
  // on exactly that (fleet/outcome_cache.hpp).
  ledger_.begin_window();

  // NOTE: `d` may reference a memo entry — it must not outlive any call that
  // mutates memo_ (none happens below).
  const SliceDecision& d = slice_decision(n_tasks);
  if (!(d.alloc == current_) && d.plan.total() > 0) {
    apply_movement(d.plan);
    // Residency flips after the data lands.
    apply_residency(d.alloc);
    current_ = d.alloc;
  } else if (!(d.alloc == current_)) {
    apply_residency(d.alloc);
    current_ = d.alloc;
  }

  Time cursor = std::max(now_, hp_.has_value() ? hp_->busy_until() : Time::zero());
  if (lp_.has_value()) cursor = std::max(cursor, lp_->busy_until());

  cursor = run_tasks_batched(cursor, n_tasks);

  // The host scheduler runs once per slice, inside the ledger window so its
  // energy lands in this slice's bits (always after the task batch and
  // before settle — the window sum order is part of the byte contract).
  const std::uint64_t host_cycles =
      host_ != nullptr ? run_host_slice(n_tasks) : 0;

  SliceStats stats;
  stats.slice = slice_index_++;
  stats.tasks_executed = n_tasks;
  stats.alloc = current_;
  stats.movement_time = d.movement_time;
  stats.busy_time = cursor - slice_start;
  stats.deadline_violated = cursor > slice_end;
  stats.host_cycles = host_cycles;

  // The slice boundary: close leakage windows so the slice's energy is
  // attributed to it, then advance the clock.
  now_ = std::max(slice_end, cursor);
  if (hp_.has_value()) hp_->settle(now_);
  if (lp_.has_value()) lp_->settle(now_);
  stats.energy = ledger_.window_total();
  return stats;
}

std::uint64_t Processor::run_host_slice(int n_tasks) {
  riscv::BlockEngine& e = host_->engine;
  const std::uint64_t before = e.cycles();
  // Fresh register file each slice (persistent scheduler state lives in host
  // RAM, never in registers): sp at the top of RAM, a0 carries the load.
  for (unsigned i = 1; i < 32; ++i) e.set_reg(i, 0);
  e.set_reg(2, static_cast<std::uint32_t>(host_->ram.size()));
  e.set_reg(10, static_cast<std::uint32_t>(n_tasks));
  e.resume(0);
  e.run(config_.host.max_steps_per_slice);
  if (e.halt_reason() != riscv::HaltReason::kEcall) {
    throw std::runtime_error(
        std::string("host scheduler halted with ") +
        riscv::to_string(e.halt_reason()) + " at pc 0x" +
        std::to_string(e.pc()) + " (expected ecall)");
  }
  const std::uint64_t cycles = e.cycles() - before;
  ledger_.add(host_->component, energy::Activity::kControl,
              host_->active_power *
                  (host_->cycle_period * static_cast<std::int64_t>(cycles)));
  return cycles;
}

RunStats Processor::run_scenario(const std::vector<int>& loads) {
  RunStats run;
  const Energy before = ledger_.total();
  const Time t0 = now_;

  // Slice k executes the inferences that arrived in slice k-1; one trailing
  // slice drains the last arrivals.
  int buffered = 0;
  for (std::size_t k = 0; k <= loads.size(); ++k) {
    const int arriving = k < loads.size() ? loads[k] : 0;
    SliceStats s = run_slice(buffered);
    run.tasks += static_cast<std::uint64_t>(s.tasks_executed);
    run.deadline_violations += s.deadline_violated ? 1 : 0;
    run.slices.push_back(std::move(s));
    buffered = arriving;
  }
  run.total_energy = ledger_.total() - before;
  run.total_time = now_ - t0;
  return run;
}

void Processor::reset() {
  // Order matters only in that tracker resets must not post to the ledger
  // (they don't — reset() zeroes state directly), so zeroing the ledger
  // first or last is equivalent. Component registrations persist; only the
  // accumulators clear, exactly matching a fresh construction's ledger.
  ledger_.reset();
  if (hp_.has_value()) hp_->reset_accounting();
  if (lp_.has_value()) lp_->reset_accounting();
  xfer_->reset_accounting();
  override_.reset();
  memo_.clear();
  now_ = Time::zero();
  slice_index_ = 0;
  // Re-run the constructor's initial deployment: the policy's initial
  // placement appears in residency uncharged (steady-state measurement
  // convention; see the constructor).
  current_ = policy_->initial();
  apply_residency(current_);
  if (host_ != nullptr) {
    // Restore the initial RAM image and drop compiled blocks: the rewrite
    // bypasses the Bus, so the engine cannot see it. Registers need no
    // reset — run_host_slice re-arms them every slice.
    host_->ram.load_image(0, host_->image.data(), host_->image.size());
    host_->engine.clear_cache();
  }
}

std::uint64_t Processor::state_digest() const {
  Fnv1a h;
  for (const std::uint64_t w : current_.weights) h.add(w);
  h.add(override_.has_value() ? 1 : 0);
  if (override_.has_value()) {
    for (const std::uint64_t w : override_->weights) h.add(w);
  }
  h.add(hp_.has_value() ? 1 : 0);
  if (hp_.has_value()) hp_->add_state(h, now_);
  h.add(lp_.has_value() ? 1 : 0);
  if (lp_.has_value()) lp_->add_state(h, now_);
  xfer_->add_state(h, now_);
  // Host RAM is the scheduler's persistent state (registers are re-armed
  // per slice, the block cache is wall-clock-only). Folded only when the
  // host exists so feature-off digests match pre-feature builds bit-exactly.
  if (host_ != nullptr) {
    add_bytes(h, host_->ram.data(), host_->ram.size());
  }
  return h.digest();
}

void Processor::save_state(ByteWriter& w) const {
  for (const std::uint64_t v : current_.weights) w.u64(v);
  w.u8(override_.has_value() ? 1 : 0);
  if (override_.has_value()) {
    for (const std::uint64_t v : override_->weights) w.u64(v);
  }
  w.i32(slice_index_);
  w.u8(hp_.has_value() ? 1 : 0);
  if (hp_.has_value()) hp_->save_state(w, now_);
  w.u8(lp_.has_value() ? 1 : 0);
  if (lp_.has_value()) lp_->save_state(w, now_);
  xfer_->save_state(w, now_);
  // Written only when the host exists: load_state requires an identical
  // reuse key, so writer and reader agree on the host's presence, and
  // feature-off blobs stay byte-identical to pre-feature builds.
  if (host_ != nullptr) {
    w.blob(std::string_view(reinterpret_cast<const char*>(host_->ram.data()),
                            host_->ram.size()));
  }
}

void Processor::load_state(ByteReader& r) {
  for (std::uint64_t& v : current_.weights) v = r.u64();
  if (r.u8() != 0) {
    placement::Allocation o;
    for (std::uint64_t& v : o.weights) v = r.u64();
    override_ = o;
  } else {
    override_.reset();
  }
  slice_index_ = r.i32();
  if ((r.u8() != 0) != hp_.has_value()) {
    throw std::runtime_error("snapshot: HP-cluster shape mismatch");
  }
  if (hp_.has_value()) hp_->load_state(r);
  if ((r.u8() != 0) != lp_.has_value()) {
    throw std::runtime_error("snapshot: LP-cluster shape mismatch");
  }
  if (lp_.has_value()) lp_->load_state(r);
  xfer_->load_state(r);
  if (host_ != nullptr) {
    const std::string_view bytes = r.blob();
    if (bytes.size() != host_->ram.size()) {
      throw std::runtime_error("snapshot: host RAM shape mismatch");
    }
    host_->ram.load_image(
        0, reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    host_->engine.clear_cache();
  }
  // The restored component times are relative to the snapshot's slice
  // boundary; the clock rebases to zero (save_state stored them that way).
  // The decision memo stays cold — decisions are pure.
  now_ = Time::zero();
  memo_.clear();
}

std::uint64_t processor_reuse_key(const SystemConfig& config,
                                  const nn::Model& model) {
  Fnv1a h;
  h.add(config.arch.config_hash())
      .add(model.topology_hash())
      .add(model.effective_params())
      .add(model.pim_macs())
      .add(model.uses_per_weight());
  // The resolved spec folds `power` and `time_scale` together — two configs
  // resolving to the same effective hardware are exchangeable.
  const energy::PowerSpec spec = resolved_power_spec(config);
  const auto add_module = [&h](const energy::ModuleSpec& m) {
    h.add(m.vdd)
        .add(m.mram_timing.read.as_ps())
        .add(m.mram_timing.write.as_ps())
        .add(m.sram_timing.read.as_ps())
        .add(m.sram_timing.write.as_ps())
        .add(m.mram_power.dyn_read.as_mw())
        .add(m.mram_power.dyn_write.as_mw())
        .add(m.mram_power.leakage.as_mw())
        .add(m.sram_power.dyn_read.as_mw())
        .add(m.sram_power.dyn_write.as_mw())
        .add(m.sram_power.leakage.as_mw())
        .add(m.pe.mac_latency.as_ps())
        .add(m.pe.dynamic.as_mw())
        .add(m.pe.leakage.as_mw());
  };
  add_module(spec.hp);
  add_module(spec.lp);
  h.add(config.max_inferences_per_slice)
      .add(config.slice.as_ps())
      .add(config.lut_t_entries)
      .add(config.lut_k_blocks)
      .add(static_cast<std::uint64_t>(
          reinterpret_cast<std::uintptr_t>(config.lut_cache)))
      .add(config.movement.bytes_per_ns_per_module)
      .add(config.movement.interface_latency.as_ps())
      .add(config.movement.energy_per_byte.as_pj())
      .add(static_cast<std::uint64_t>(config.batched_execution ? 1 : 0))
      .add(static_cast<std::uint64_t>(config.memoize_decisions ? 1 : 0));
  // Host fields fold in only when the host is enabled, so feature-off keys
  // (and everything derived from them — FleetSpec::content_digest, snapshot
  // compatibility) are unchanged from pre-feature builds.
  if (config.host.enabled) {
    const HostConfig& hc = config.host;
    const std::string source =
        hc.program.empty() ? default_host_program() : hc.program;
    h.add(static_cast<std::uint64_t>(0x74736f68u));  // "host" marker
    add_bytes(h, reinterpret_cast<const std::uint8_t*>(source.data()),
              source.size());
    h.add(static_cast<std::uint64_t>(hc.ram_bytes))
        .add(hc.clock_ghz)
        .add(hc.power_scale)
        .add(static_cast<std::uint64_t>(hc.cycles.alu))
        .add(static_cast<std::uint64_t>(hc.cycles.mul))
        .add(static_cast<std::uint64_t>(hc.cycles.div))
        .add(static_cast<std::uint64_t>(hc.cycles.load))
        .add(static_cast<std::uint64_t>(hc.cycles.store))
        .add(static_cast<std::uint64_t>(hc.cycles.branch))
        .add(static_cast<std::uint64_t>(hc.cycles.jump))
        .add(static_cast<std::uint64_t>(hc.cycles.system))
        .add(hc.max_steps_per_slice);
  }
  return h.digest();
}

Inventory Processor::inventory() const {
  Inventory inv;
  inv.hp_modules = config_.arch.hp_modules;
  inv.lp_modules = config_.arch.lp_modules;
  const std::size_t total = inv.hp_modules + inv.lp_modules;
  inv.mram_banks = config_.arch.mram_kb_per_module > 0 ? total : 0;
  inv.sram_banks = total;
  inv.pes = total;
  inv.controllers = (hp_.has_value() ? 1 : 0) + (lp_.has_value() ? 1 : 0);
  inv.mram_bytes = static_cast<std::uint64_t>(inv.mram_banks) *
                   config_.arch.mram_kb_per_module * 1024;
  inv.sram_bytes = static_cast<std::uint64_t>(inv.sram_banks) *
                   config_.arch.sram_kb_per_module * 1024;
  inv.instruction_queue_depth =
      hp_.has_value() ? hp_->controller().queue().depth() : 0;
  return inv;
}

}  // namespace hhpim::sys
