// The PIM processor (Fig. 3): clusters + controllers + data allocator +
// energy accounting, executing a scenario of time slices.
//
// Slice protocol (paper §III-A): inferences arriving during slice k are
// buffered and processed in slice k+1, so end-to-end latency stays below 2T.
// At each slice boundary the placement policy decides the allocation; weight
// movement executes first (its overhead was budgeted into t_constraint), then
// the buffered tasks run back-to-back, each split across clusters per the
// allocation — the MRAM share and SRAM share of a module serialize, modules
// and clusters run in parallel.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "energy/power_spec.hpp"
#include "hhpim/arch_config.hpp"
#include "hhpim/scheduler.hpp"
#include "nn/model.hpp"
#include "pim/cluster.hpp"
#include "pim/data_allocator.hpp"
#include "placement/cost_model.hpp"
#include "placement/lut.hpp"
#include "riscv/engine.hpp"
#include "workload/task.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::placement {
class LutCache;  // placement/lut_cache.hpp — only a pointer is stored here
}

namespace hhpim::sys {

/// Feature-gated host-core co-simulation (docs/RISCV.md "Host in the loop").
///
/// When enabled, the Processor owns an RV32IM `riscv::BlockEngine` running a
/// per-slice scheduler binary (the paper's Rocket host role): each run_slice
/// re-enters the program at pc 0 with a0 = n_tasks and sp at the top of host
/// RAM, runs it to ECALL, and posts the retired cycles as host energy into
/// the EnergyLedger. Host RAM persists across slices (scheduler state), is
/// folded into state_digest()/save_state(), and rides the processor reuse
/// key — so the fleet's outcome memo and snapshots stay exact. When disabled
/// (the default) every digest, snapshot and output byte is identical to a
/// build without the feature.
struct HostConfig {
  bool enabled = false;
  /// rv_asm source of the scheduler program; empty = the built-in default
  /// (default_host_program()). Must halt with ECALL; any other halt reason
  /// throws std::runtime_error from run_slice (a wedged host is a bug, not
  /// a statistic). Assembled once at construction; assembly errors throw
  /// std::invalid_argument.
  std::string program;
  /// Host RAM size in bytes (program + stack + persistent scheduler state).
  std::uint32_t ram_bytes = 4096;
  /// Host core clock: cycles convert to time as cycles * period.
  double clock_ghz = 1.0;
  /// Host active power while retiring, as a multiple of the resolved HP PE
  /// dynamic power — PowerSpec-derived, so design-space sweeps scale the
  /// host with the hardware around it.
  double power_scale = 2.0;
  /// Per-op-class retired-cycle costs.
  riscv::CycleModel cycles{};
  /// Step budget per slice; exceeding it throws (runaway host program).
  std::uint64_t max_steps_per_slice = 1'000'000;
};

/// The built-in per-slice scheduler: walks the task queue (a0 = n_tasks)
/// doing per-task dispatch arithmetic, persists (last load, descriptor
/// digest) to host RAM at 0x800, and halts with ECALL. Steady-state loads
/// reach a fixed host RAM state after one slice, so the fleet outcome memo
/// keeps hitting with the host enabled.
[[nodiscard]] std::string default_host_program();

struct SystemConfig {
  ArchConfig arch = ArchConfig::hhpim();
  /// Hardware timing/power spec override (raw, unscaled — `time_scale` is
  /// applied on top, exactly as for the default). Empty = the paper's
  /// Tables III/V (PowerSpec::paper_45nm()). Design-space sweeps plug
  /// NvsimLite::make_spec() results in here.
  std::optional<energy::PowerSpec> power;
  /// System time-base stretch vs raw Table III latencies (see
  /// PowerSpec::scaled and DESIGN.md §3). Calibrated default.
  double time_scale = 4.0;
  /// Up-to-N inferences per slice at peak (paper: 10). Sets T.
  int max_inferences_per_slice = 10;
  /// Explicit slice length; zero = derive as max_inferences * peak task time.
  Time slice = Time::zero();
  /// LUT resolution (HH-PIM only).
  int lut_t_entries = 128;
  int lut_k_blocks = 128;
  /// Shared placement-LUT cache (HH-PIM only; not owned, must outlive the
  /// Processor). nullptr = build a private LUT. exp::Runner points every run
  /// of a grid at one cache so a grid over M distinct (model, arch, cost,
  /// resolution) combinations builds M LUTs instead of one per run; results
  /// are byte-identical either way (pinned by tests/test_lut_cache.cpp).
  placement::LutCache* lut_cache = nullptr;
  placement::MovementParams movement{};
  /// Execute each slice's identical buffered tasks through the batched
  /// steady-state kernel (Processor::run_tasks_batched): tasks 1–2 run
  /// scalar, tasks 3..n are applied by replaying task 2's recorded ledger
  /// posts and integer state deltas. Results are bit-identical to the
  /// scalar loop (pinned by tests/test_batched.cpp); only wall-clock
  /// changes. Off = always run the scalar per-task loop (A/B benches).
  bool batched_execution = true;
  /// Memoize placement decisions per (current allocation, n_tasks) pair
  /// within a run — PlacementPolicy::decide is required to be pure (see
  /// scheduler.hpp), so repeated slice states skip the LUT probe and
  /// movement planning. Byte-identical results; off for A/B benches.
  bool memoize_decisions = true;
  /// RISC-V host co-simulation (off by default; see HostConfig).
  HostConfig host{};
};

/// Per-slice measurement record.
struct SliceStats {
  int slice = 0;
  int tasks_executed = 0;
  placement::Allocation alloc;
  Time movement_time;
  Time busy_time;              ///< from slice start to last task completion
  Energy energy;               ///< everything charged during this slice
  bool deadline_violated = false;
  /// Host-core cycles retired this slice (0 unless SystemConfig::host is
  /// enabled). Host energy is already included in `energy`; host time is
  /// bookkeeping overhead and deliberately not part of `busy_time` (the PIM
  /// deadline path).
  std::uint64_t host_cycles = 0;
};

struct RunStats {
  std::vector<SliceStats> slices;
  Energy total_energy;
  std::uint64_t tasks = 0;
  std::uint64_t deadline_violations = 0;
  Time total_time;

  [[nodiscard]] Energy mean_slice_energy() const;
};

/// The effective (scaled) hardware spec a `config` resolves to.
[[nodiscard]] energy::PowerSpec resolved_power_spec(const SystemConfig& config);

/// The slice length T a Processor built from (config, model) will use,
/// computed without constructing the Processor (no clusters, no LUT build).
/// The experiment runner uses this to pin every architecture in a grid cell
/// to the HH-PIM slice before any run starts.
[[nodiscard]] Time derived_slice_length(const SystemConfig& config, const nn::Model& model);

/// Component inventory — our substitute for the paper's Table II (FPGA
/// resource usage has no simulator equivalent; see DESIGN.md).
struct Inventory {
  std::size_t hp_modules = 0, lp_modules = 0;
  std::size_t mram_banks = 0, sram_banks = 0, pes = 0, controllers = 0;
  std::uint64_t mram_bytes = 0, sram_bytes = 0;
  std::size_t instruction_queue_depth = 0;
};

class Processor {
 public:
  Processor(const SystemConfig& config, const nn::Model& model);
  ~Processor();  // out-of-line: HostState is incomplete here

  /// Executes one slice: runs `n_tasks` buffered inferences. Advances the
  /// internal clock by (at least) one slice.
  SliceStats run_slice(int n_tasks);

  /// Online adaptation hook (hhpim::fleet): from the next run_slice on, pin
  /// the placement to `alloc` instead of consulting the constructed policy.
  /// Movement toward the pinned placement is planned and charged exactly
  /// like a policy decision (weights migrate once, then stay). `alloc` must
  /// total the model's weights and fit the architecture's capacities
  /// (throws std::invalid_argument otherwise). Pass std::nullopt to resume
  /// the constructed policy — e.g. HH-PIM's dynamic LUT placement.
  void set_placement_override(const std::optional<placement::Allocation>& alloc);
  [[nodiscard]] bool placement_override_active() const {
    return override_.has_value();
  }

  /// Executes a whole scenario: loads[k] inferences arrive in slice k and
  /// execute in slice k+1; one trailing slice drains the buffer.
  RunStats run_scenario(const std::vector<int>& loads);

  /// Re-arms the processor to its just-constructed state: ledger zeroed,
  /// clusters/banks/PEs/allocators back to pristine power and counter
  /// state, clock and slice index at zero, any placement override and memo
  /// cleared, and the policy's initial residency re-applied. Subsequent
  /// runs produce bit-identical results to a freshly constructed Processor
  /// (pinned by tests/test_batched.cpp) — this is what lets exp::Runner and
  /// fleet::FleetSimulator reuse one Processor per (config, model) per
  /// worker instead of paying CostModel::build + cluster construction per
  /// run. Cost: O(components); no allocation, no LUT work.
  void reset();

  /// FNV digest of every piece of mutable state that determines future
  /// behavior, with times translated relative to the internal clock. Two
  /// processors built from the same processor_reuse_key inputs whose
  /// state_digest() agree at a slice boundary produce bit-identical
  /// SliceStats (and equal successor digests) for equal run_slice inputs —
  /// the invariant the fleet's device-level outcome memo
  /// (fleet::OutcomeCache) is keyed on; pinned by tests/test_outcome_memo.
  /// Cumulative counters, the ledger, now_ and the slice index are excluded
  /// (history / translation-invariant); the decision memo is excluded
  /// because decisions are pure. Meaningful at slice boundaries (after
  /// construction, reset() or run_slice) — mid-operation state is not
  /// digested.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Checkpoint save: serializes exactly the mutable state state_digest()
  /// walks (allocation, override, cluster/xfer component state with times
  /// relative to the internal clock) plus the slice index — everything a
  /// load_state() needs to resume at a slice boundary. Call only at slice
  /// boundaries (after construction, reset() or run_slice), like
  /// state_digest(). History (cumulative counters, the ledger, now_) is
  /// deliberately not saved: slice energy is window-based and all times are
  /// stored relative, so a restored processor continues bit-identically
  /// with its clock rebased to zero (tests/test_snapshot.cpp pins this).
  void save_state(ByteWriter& w) const;

  /// Inverse of save_state(). Must be called on a freshly constructed or
  /// reset() Processor built from the same processor_reuse_key inputs.
  /// Throws std::runtime_error when the blob's component shape does not
  /// match this processor's (wrong arch/model for the snapshot). The
  /// decision memo starts cold — decisions are pure, so warmth is a
  /// wall-clock concern, never a behavioral one.
  void load_state(ByteReader& r);

  [[nodiscard]] Time slice_length() const { return slice_; }
  [[nodiscard]] const placement::CostModel& cost_model() const { return cost_; }
  [[nodiscard]] const energy::EnergyLedger& ledger() const { return ledger_; }
  [[nodiscard]] const placement::Allocation& current_allocation() const { return current_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  /// The LUT (HH-PIM only; nullptr otherwise).
  [[nodiscard]] const placement::AllocationLut* lut() const;

  /// Total model weights K (the quantity every Allocation must sum to).
  [[nodiscard]] std::uint64_t total_weights() const { return weights_; }

  /// Minimum achievable task time (peak performance point).
  [[nodiscard]] Time peak_task_time() const;
  /// Task time with weights only in MRAM (the H-PIM-style purple point of
  /// Fig. 6); returns zero for architectures without MRAM.
  [[nodiscard]] Time mram_only_task_time() const;

  [[nodiscard]] Inventory inventory() const;

 private:
  void apply_movement(const placement::MovementPlan& plan);
  void apply_residency(const placement::Allocation& alloc);
  /// SliceDecision for a pinned (override) placement; mirrors StaticPolicy
  /// but plans/charges movement from the current residency.
  [[nodiscard]] SliceDecision decide_override(const placement::Allocation& target,
                                              int n_tasks) const;
  /// The slice's decision — memoized per (current allocation, n_tasks) when
  /// `memoize_decisions` is on, computed fresh otherwise.
  [[nodiscard]] const SliceDecision& slice_decision(int n_tasks);
  /// Per-space MAC shares of one task under the current placement. Shares
  /// sum to exactly pim_macs_ (largest-remainder rounding). Returns false
  /// when there is nothing to compute.
  bool task_shares(std::array<std::uint64_t, placement::kSpaceCount>& macs) const;
  /// Runs one task (shares precomputed by task_shares) starting at `start`;
  /// returns its completion time.
  Time run_task(Time start,
                const std::array<std::uint64_t, placement::kSpaceCount>& macs);
  /// Runs the slice's `n_tasks` identical tasks starting at `cursor`:
  /// scalar for n <= 2 (and when batching is off), otherwise via
  /// pim::Cluster::compute_batch (single active space) or the generic
  /// record/replay steady-state kernel (task 1 absorbs boundary state,
  /// task 2 is recorded, tasks 3..n replayed). Bit-identical to the scalar
  /// loop; see docs/PERF.md.
  Time run_tasks_batched(Time cursor, int n_tasks);
  /// Re-runs the host scheduler program for this slice (host enabled only):
  /// zeroes the register file, sets sp/a0, resumes at pc 0, requires an
  /// ECALL halt, posts host energy into the ledger. Returns cycles retired.
  std::uint64_t run_host_slice(int n_tasks);

  [[nodiscard]] pim::Cluster* cluster_of(placement::Space s);

  SystemConfig config_;
  energy::PowerSpec spec_;
  std::uint64_t weights_;       ///< K
  std::uint64_t pim_macs_;      ///< per task
  placement::CostModel cost_;
  Time slice_;
  energy::EnergyLedger ledger_;
  std::optional<pim::Cluster> hp_;
  std::optional<pim::Cluster> lp_;
  std::unique_ptr<pim::DataAllocator> xfer_;   ///< inter-cluster path
  std::unique_ptr<PlacementPolicy> policy_;
  const placement::AllocationLut* lut_view_ = nullptr;
  std::optional<placement::Allocation> override_;  ///< pinned placement, if any
  placement::Allocation current_;
  Time now_ = Time::zero();
  int slice_index_ = 0;

  /// Decision memo: (current allocation, n_tasks) -> SliceDecision. Small
  /// and linearly scanned — steady-state runs cycle through a handful of
  /// (alloc, load) pairs. Cleared by reset() and set_placement_override().
  struct MemoEntry {
    placement::Allocation current;
    int n_tasks = 0;
    SliceDecision decision;
  };
  static constexpr std::size_t kMemoCapacity = 64;
  std::vector<MemoEntry> memo_;
  SliceDecision scratch_decision_;  ///< fallback when the memo is bypassed

  // Scratch buffers for the batched kernel, reused across slices.
  std::vector<energy::RecordedPost> replay_posts_;
  std::vector<pim::ModuleCounters> probe_;

  /// Host co-simulation state (RAM + bus + block engine + initial image);
  /// null unless config.host.enabled.
  struct HostState;
  std::unique_ptr<HostState> host_;
};

/// Digest of every (config, model) field that determines a Processor's
/// behavior — equal keys mean a reset() Processor built from one pair is
/// bit-exchangeable for a fresh Processor built from the other. Used by the
/// experiment runner's shared processor checkout pool (exp::ProcessorPool).
[[nodiscard]] std::uint64_t processor_reuse_key(const SystemConfig& config,
                                                const nn::Model& model);

}  // namespace hhpim::sys
