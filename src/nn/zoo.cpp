#include "nn/zoo.hpp"

#include <cmath>
#include <cstdio>

namespace hhpim::nn::zoo {

namespace {

/// One MBConv block (expansion conv -> depthwise -> projection), the
/// building block of EfficientNet and MobileNetV2.
void mbconv(Model& m, const std::string& name, int expand_ratio, int out_c, int kernel,
            int stride) {
  const int in_c = m.current_shape().c;
  const int mid = in_c * expand_ratio;
  if (expand_ratio != 1) {
    m.conv(name + ".expand", mid, 1, 1);
    m.act(name + ".act0");
  }
  m.dwconv(name + ".dw", kernel, stride);
  m.act(name + ".act1");
  m.conv(name + ".project", out_c, 1, 1);
}

/// One ResNet basic block: two 3x3 convolutions (+ shortcut conv on
/// downsampling).
void basic_block(Model& m, const std::string& name, int out_c, int stride) {
  const int in_c = m.current_shape().c;
  m.conv(name + ".conv1", out_c, 3, stride);
  m.act(name + ".act1");
  m.conv(name + ".conv2", out_c, 3, 1);
  if (stride != 1 || in_c != out_c) {
    // Shortcut projection: modeled structurally; the residual add itself has
    // no weights.
    Layer sc;
    sc.name = name + ".shortcut";
    sc.kind = LayerKind::kConv2d;
    sc.in = {in_c, m.current_shape().h * stride, m.current_shape().w * stride};
    sc.out = m.current_shape();
    sc.kernel = 1;
    sc.stride = stride;
    m.add(std::move(sc));
  }
  m.act(name + ".act2");
}

}  // namespace

Model efficientnet_b0() {
  // TinyML-width EfficientNet-B0: the standard 16-block topology at reduced
  // channel widths, 32x32 input (CIFAR-class edge workload).
  Model m{"EfficientNet-B0", 0.85};
  m.input({3, 32, 32});
  m.conv("stem", 16, 3, 1);
  m.act("stem.act");
  mbconv(m, "mb1", 1, 8, 3, 1);
  mbconv(m, "mb2a", 6, 12, 3, 2);
  mbconv(m, "mb2b", 6, 12, 3, 1);
  mbconv(m, "mb3a", 6, 16, 5, 2);
  mbconv(m, "mb3b", 6, 16, 5, 1);
  mbconv(m, "mb4a", 6, 32, 3, 2);
  mbconv(m, "mb4b", 6, 32, 3, 1);
  mbconv(m, "mb4c", 6, 32, 3, 1);
  mbconv(m, "mb5a", 6, 44, 5, 1);
  mbconv(m, "mb5b", 6, 44, 5, 1);
  mbconv(m, "mb5c", 6, 44, 5, 1);
  mbconv(m, "mb6a", 6, 56, 5, 2);
  mbconv(m, "mb6b", 6, 56, 5, 1);
  mbconv(m, "mb6c", 6, 56, 5, 1);
  mbconv(m, "mb6d", 6, 56, 5, 1);
  mbconv(m, "mb7", 6, 96, 3, 1);
  m.conv("head", 160, 1, 1);
  m.act("head.act");
  m.pool("gap", m.current_shape().h);
  m.linear("classifier", 10);
  m.calibrate(95'000, 3'245'000);
  return m;
}

Model mobilenet_v2() {
  // Width-reduced MobileNetV2 (17 inverted-residual blocks), 32x32 input.
  Model m{"MobileNetV2", 0.80};
  m.input({3, 32, 32});
  m.conv("stem", 16, 3, 1);
  m.act("stem.act");
  mbconv(m, "ir1", 1, 8, 3, 1);
  mbconv(m, "ir2a", 6, 12, 3, 2);
  mbconv(m, "ir2b", 6, 12, 3, 1);
  mbconv(m, "ir3a", 6, 16, 3, 2);
  mbconv(m, "ir3b", 6, 16, 3, 1);
  mbconv(m, "ir3c", 6, 16, 3, 1);
  mbconv(m, "ir4a", 6, 32, 3, 2);
  mbconv(m, "ir4b", 6, 32, 3, 1);
  mbconv(m, "ir4c", 6, 32, 3, 1);
  mbconv(m, "ir4d", 6, 32, 3, 1);
  mbconv(m, "ir5a", 6, 48, 3, 1);
  mbconv(m, "ir5b", 6, 48, 3, 1);
  mbconv(m, "ir5c", 6, 48, 3, 1);
  mbconv(m, "ir6a", 6, 80, 3, 2);
  mbconv(m, "ir6b", 6, 80, 3, 1);
  mbconv(m, "ir6c", 6, 80, 3, 1);
  mbconv(m, "ir7", 6, 160, 3, 1);
  m.conv("head", 320, 1, 1);
  m.act("head.act");
  m.pool("gap", m.current_shape().h);
  m.linear("classifier", 10);
  m.calibrate(101'000, 2'528'000);
  return m;
}

Model resnet18() {
  // Width-reduced ResNet-18 (8 basic blocks), 32x32 input.
  Model m{"ResNet-18", 0.75};
  m.input({3, 32, 32});
  m.conv("stem", 16, 3, 1);
  m.act("stem.act");
  basic_block(m, "l1a", 16, 1);
  basic_block(m, "l1b", 16, 1);
  basic_block(m, "l2a", 32, 2);
  basic_block(m, "l2b", 32, 1);
  basic_block(m, "l3a", 64, 2);
  basic_block(m, "l3b", 64, 1);
  basic_block(m, "l4a", 128, 2);
  basic_block(m, "l4b", 128, 1);
  m.pool("gap", m.current_shape().h);
  m.linear("classifier", 10);
  m.calibrate(256'000, 29'580'000);
  return m;
}

std::vector<Model> paper_models() {
  std::vector<Model> v;
  v.push_back(efficientnet_b0());
  v.push_back(mobilenet_v2());
  v.push_back(resnet18());
  return v;
}

std::optional<Model> find_model(const std::string& name) {
  for (Model& m : paper_models()) {
    if (m.name() == name) return std::move(m);
  }
  return std::nullopt;
}

std::string known_model_names() {
  std::string out;
  for (const Model& m : paper_models()) {
    if (!out.empty()) out += ", ";
    out += m.name();
  }
  return out;
}

std::vector<Model> width_variants(const Model& base, const std::vector<double>& scales) {
  std::vector<Model> out;
  for (const double scale : scales) {
    const auto params = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base.effective_params()) * scale));
    const auto macs = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base.effective_macs()) * scale));
    if (params == 0 || macs == 0 || params > base.structural_params()) continue;
    Model m = base;
    m.calibrate(params, macs);
    if (scale != 1.0) {
      char suffix[32];
      std::snprintf(suffix, sizeof suffix, "@x%.2f", scale);
      m.rename(base.name() + suffix);
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace hhpim::nn::zoo
