#include "nn/layer.hpp"

#include <stdexcept>

namespace hhpim::nn {

const char* to_string(LayerKind k) {
  switch (k) {
    case LayerKind::kConv2d: return "conv";
    case LayerKind::kDwConv2d: return "dwconv";
    case LayerKind::kLinear: return "linear";
    case LayerKind::kPool: return "pool";
    case LayerKind::kAdd: return "add";
    case LayerKind::kActivation: return "act";
  }
  return "?";
}

int conv_out_dim(int in, int stride) { return (in + stride - 1) / stride; }

std::uint64_t Layer::params() const {
  switch (kind) {
    case LayerKind::kConv2d:
      return static_cast<std::uint64_t>(kernel) * kernel * (in.c / groups) * out.c;
    case LayerKind::kDwConv2d:
      return static_cast<std::uint64_t>(kernel) * kernel * in.c;
    case LayerKind::kLinear:
      return static_cast<std::uint64_t>(in.elements()) * out.c;
    case LayerKind::kPool:
    case LayerKind::kAdd:
    case LayerKind::kActivation:
      return 0;
  }
  return 0;
}

std::uint64_t Layer::macs() const {
  switch (kind) {
    case LayerKind::kConv2d:
    case LayerKind::kDwConv2d:
      return params() * static_cast<std::uint64_t>(out.h) * out.w;
    case LayerKind::kLinear:
      return params();
    case LayerKind::kPool:
    case LayerKind::kAdd:
    case LayerKind::kActivation:
      return 0;
  }
  return 0;
}

void Layer::validate() const {
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("Layer '" + name + "': " + why);
  };
  if (in.c <= 0 || out.c <= 0) fail("channel counts must be positive");
  switch (kind) {
    case LayerKind::kConv2d:
      if (in.c % groups != 0 || out.c % groups != 0) fail("channels not divisible by groups");
      [[fallthrough]];
    case LayerKind::kDwConv2d:
      if (kind == LayerKind::kDwConv2d && in.c != out.c) fail("depthwise must preserve channels");
      if (out.h != conv_out_dim(in.h, stride) || out.w != conv_out_dim(in.w, stride)) {
        fail("output spatial dims inconsistent with stride");
      }
      break;
    case LayerKind::kLinear:
      if (out.h != 1 || out.w != 1) fail("linear output must be 1x1");
      break;
    case LayerKind::kPool:
      if (out.h != conv_out_dim(in.h, stride) || out.w != conv_out_dim(in.w, stride)) {
        fail("pool output dims inconsistent with stride");
      }
      break;
    case LayerKind::kAdd:
    case LayerKind::kActivation:
      if (!(in == out)) fail("elementwise layers must preserve shape");
      break;
  }
}

}  // namespace hhpim::nn
