// Model container with Table-IV calibration.
//
// The paper's benchmarks are INT8-quantized, *pruned* TinyML variants of
// EfficientNet-B0, MobileNetV2 and ResNet-18 with the parameter/MAC totals of
// Table IV. We build structurally realistic layer stacks and model pruning as
// a uniform sparsity factor (pruned weights are neither stored nor
// multiplied), plus a MAC-side calibration factor absorbing the residual
// between our input resolution and the authors' (unstated) one. After
// `calibrate()`, effective_params()/effective_macs() reproduce Table IV
// exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace hhpim::nn {

class Model {
 public:
  Model(std::string name, double pim_op_ratio);

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Fraction of operations executed on the PIM (Table IV).
  [[nodiscard]] double pim_op_ratio() const { return pim_ratio_; }

  /// Relabels the model (variant ladders — nn::zoo::width_variants). The name
  /// is excluded from topology_hash(), so renaming never changes placement or
  /// LUT-cache behavior; it only changes how results are reported.
  Model& rename(std::string name) {
    name_ = std::move(name);
    return *this;
  }

  // --- construction --------------------------------------------------------

  /// Appends a layer (validated). Returns *this for chaining.
  Model& add(Layer layer);
  /// Convenience builders; `in` is the previous layer's output (tracked).
  Model& conv(const std::string& name, int out_c, int kernel, int stride, int groups = 1);
  Model& dwconv(const std::string& name, int kernel, int stride);
  Model& linear(const std::string& name, int out_features);
  Model& pool(const std::string& name, int stride);
  Model& act(const std::string& name);
  /// Sets the input shape; must be called before the first layer.
  Model& input(TensorShape shape);

  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }
  [[nodiscard]] TensorShape current_shape() const { return shape_; }

  // --- structural totals ---------------------------------------------------

  [[nodiscard]] std::uint64_t structural_params() const;
  [[nodiscard]] std::uint64_t structural_macs() const;

  // --- calibration to the paper's Table IV ---------------------------------

  /// Chooses sparsity (<= 1) and MAC calibration so the effective totals are
  /// exactly (params, macs). Throws if the structure is too small to prune
  /// down to the target.
  void calibrate(std::uint64_t params, std::uint64_t macs);

  [[nodiscard]] double sparsity() const { return sparsity_; }
  [[nodiscard]] double mac_calibration() const { return mac_calibration_; }

  [[nodiscard]] std::uint64_t effective_params() const;
  [[nodiscard]] std::uint64_t effective_macs() const;

  // --- quantities consumed by the PIM simulator ----------------------------

  /// MACs per inference that run on the PIM (Table IV ratio applied).
  [[nodiscard]] std::uint64_t pim_macs() const;
  /// Core-side (non-PIM) operations per inference.
  [[nodiscard]] std::uint64_t core_ops() const;
  /// Average times each stored weight is used per inference.
  [[nodiscard]] double uses_per_weight() const;

  /// Order-sensitive digest of the layer structure (kinds, shapes, kernel/
  /// stride/groups) plus calibration (sparsity, MAC calibration, PIM ratio).
  /// Two models with equal parameter totals but different topology hash
  /// differently; layer *names* and the model name are excluded. Keys the
  /// placement-LUT cache (placement/lut_cache.hpp).
  [[nodiscard]] std::uint64_t topology_hash() const;

 private:
  std::string name_;
  double pim_ratio_;
  std::vector<Layer> layers_;
  TensorShape shape_{};
  bool input_set_ = false;
  double sparsity_ = 1.0;
  double mac_calibration_ = 1.0;
};

}  // namespace hhpim::nn
