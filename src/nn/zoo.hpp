// TinyML model zoo: the paper's three benchmarks (Table IV), built as
// realistic layer stacks and calibrated to the reported totals:
//
//   EfficientNet-B0  :  95 k params, 3.245 M MACs, 85 % PIM ops
//   MobileNetV2      : 101 k params, 2.528 M MACs, 80 % PIM ops
//   ResNet-18        : 256 k params, 29.580 M MACs, 75 % PIM ops
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace hhpim::nn::zoo {

[[nodiscard]] Model efficientnet_b0();
[[nodiscard]] Model mobilenet_v2();
[[nodiscard]] Model resnet18();

/// All three, in the paper's Table IV order.
[[nodiscard]] std::vector<Model> paper_models();

/// The Table IV model named `name` (exact match on Model::name());
/// std::nullopt for an unknown name. The single model-by-name lookup shared
/// by the experiment-grid and fleet CLIs — add new zoo models here, not in
/// per-binary copies.
[[nodiscard]] std::optional<Model> find_model(const std::string& name);

/// Comma-separated list of the known model names (for CLI error messages).
[[nodiscard]] std::string known_model_names();

}  // namespace hhpim::nn::zoo
