// TinyML model zoo: the paper's three benchmarks (Table IV), built as
// realistic layer stacks and calibrated to the reported totals:
//
//   EfficientNet-B0  :  95 k params, 3.245 M MACs, 85 % PIM ops
//   MobileNetV2      : 101 k params, 2.528 M MACs, 80 % PIM ops
//   ResNet-18        : 256 k params, 29.580 M MACs, 75 % PIM ops
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace hhpim::nn::zoo {

[[nodiscard]] Model efficientnet_b0();
[[nodiscard]] Model mobilenet_v2();
[[nodiscard]] Model resnet18();

/// All three, in the paper's Table IV order.
[[nodiscard]] std::vector<Model> paper_models();

/// The Table IV model named `name` (exact match on Model::name());
/// std::nullopt for an unknown name. The single model-by-name lookup shared
/// by the experiment-grid and fleet CLIs — add new zoo models here, not in
/// per-binary copies.
[[nodiscard]] std::optional<Model> find_model(const std::string& name);

/// Comma-separated list of the known model names (for CLI error messages).
[[nodiscard]] std::string known_model_names();

/// Width-variant ladder for placement-aware NAS sweeps: copies of `base`
/// re-calibrated so the effective parameter/MAC totals scale by each factor,
/// renamed "<name>@x<scale>" (scale 1.0 keeps the base name, so the identity
/// point lines up with paper runs). The topology is unchanged — scaling rides
/// entirely on the sparsity / MAC-calibration knobs, exactly how the paper
/// itself maps pruned TinyML variants onto one structure. Factors whose
/// parameter target exceeds the structural totals (sparsity would have to
/// exceed 1) or rounds to zero are skipped, so the ladder may be shorter than
/// `scales`.
[[nodiscard]] std::vector<Model> width_variants(const Model& base,
                                                const std::vector<double>& scales);

}  // namespace hhpim::nn::zoo
