#include "nn/model.hpp"

#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"

namespace hhpim::nn {

Model::Model(std::string name, double pim_op_ratio)
    : name_(std::move(name)), pim_ratio_(pim_op_ratio) {
  if (pim_ratio_ <= 0.0 || pim_ratio_ > 1.0) {
    throw std::invalid_argument("Model: pim_op_ratio must be in (0, 1]");
  }
}

Model& Model::input(TensorShape shape) {
  if (!layers_.empty()) throw std::logic_error("Model::input after layers were added");
  shape_ = shape;
  input_set_ = true;
  return *this;
}

Model& Model::add(Layer layer) {
  layer.validate();
  shape_ = layer.out;
  layers_.push_back(std::move(layer));
  return *this;
}

Model& Model::conv(const std::string& name, int out_c, int kernel, int stride, int groups) {
  if (!input_set_) throw std::logic_error("Model: set input() first");
  Layer l;
  l.name = name;
  l.kind = LayerKind::kConv2d;
  l.in = shape_;
  l.out = {out_c, conv_out_dim(shape_.h, stride), conv_out_dim(shape_.w, stride)};
  l.kernel = kernel;
  l.stride = stride;
  l.groups = groups;
  return add(std::move(l));
}

Model& Model::dwconv(const std::string& name, int kernel, int stride) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::kDwConv2d;
  l.in = shape_;
  l.out = {shape_.c, conv_out_dim(shape_.h, stride), conv_out_dim(shape_.w, stride)};
  l.kernel = kernel;
  l.stride = stride;
  l.groups = shape_.c;
  return add(std::move(l));
}

Model& Model::linear(const std::string& name, int out_features) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::kLinear;
  l.in = shape_;
  l.out = {out_features, 1, 1};
  return add(std::move(l));
}

Model& Model::pool(const std::string& name, int stride) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::kPool;
  l.in = shape_;
  l.out = {shape_.c, conv_out_dim(shape_.h, stride), conv_out_dim(shape_.w, stride)};
  l.stride = stride;
  return add(std::move(l));
}

Model& Model::act(const std::string& name) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::kActivation;
  l.in = shape_;
  l.out = shape_;
  return add(std::move(l));
}

std::uint64_t Model::structural_params() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) total += l.params();
  return total;
}

std::uint64_t Model::structural_macs() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) total += l.macs();
  return total;
}

void Model::calibrate(std::uint64_t params, std::uint64_t macs) {
  const std::uint64_t sp = structural_params();
  const std::uint64_t sm = structural_macs();
  if (sp == 0 || sm == 0) throw std::logic_error("Model::calibrate: empty model");
  if (params > sp) {
    throw std::invalid_argument("Model::calibrate: structure has only " +
                                std::to_string(sp) + " params; cannot prune to " +
                                std::to_string(params));
  }
  sparsity_ = static_cast<double>(params) / static_cast<double>(sp);
  // Pruned weights contribute no MACs; the residual between the resulting MAC
  // count and Table IV is absorbed by mac_calibration_ (input-resolution and
  // structure differences vs the authors' unstated variant).
  const double pruned_macs = static_cast<double>(sm) * sparsity_;
  mac_calibration_ = static_cast<double>(macs) / pruned_macs;
}

std::uint64_t Model::effective_params() const {
  return static_cast<std::uint64_t>(std::llround(static_cast<double>(structural_params()) * sparsity_));
}

std::uint64_t Model::effective_macs() const {
  return static_cast<std::uint64_t>(std::llround(
      static_cast<double>(structural_macs()) * sparsity_ * mac_calibration_));
}

std::uint64_t Model::pim_macs() const {
  return static_cast<std::uint64_t>(std::llround(
      static_cast<double>(effective_macs()) * pim_ratio_));
}

std::uint64_t Model::core_ops() const { return effective_macs() - pim_macs(); }

double Model::uses_per_weight() const {
  const std::uint64_t p = effective_params();
  if (p == 0) return 0.0;
  return static_cast<double>(pim_macs()) / static_cast<double>(p);
}

std::uint64_t Model::topology_hash() const {
  Fnv1a h;
  h.add(static_cast<std::uint64_t>(layers_.size()));
  for (const Layer& l : layers_) {
    h.add(static_cast<int>(l.kind));
    h.add(l.in.c);
    h.add(l.in.h);
    h.add(l.in.w);
    h.add(l.out.c);
    h.add(l.out.h);
    h.add(l.out.w);
    h.add(l.kernel);
    h.add(l.stride);
    h.add(l.groups);
  }
  h.add(sparsity_);
  h.add(mac_calibration_);
  h.add(pim_ratio_);
  return h.digest();
}

}  // namespace hhpim::nn
