// INT8 symmetric quantization (the paper's models are INT8-quantized).
// Used by the functional examples/tests that push real data through the PE.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hhpim::nn {

struct QuantParams {
  double scale = 1.0;  ///< real = scale * q

  /// Chooses a symmetric scale covering [-absmax, absmax] in int8.
  [[nodiscard]] static QuantParams choose(std::span<const float> values);
};

/// real -> int8, round-to-nearest, saturating.
[[nodiscard]] std::int8_t quantize_one(float v, const QuantParams& qp);
[[nodiscard]] std::vector<std::int8_t> quantize(std::span<const float> v, const QuantParams& qp);

/// int8 -> real.
[[nodiscard]] float dequantize_one(std::int8_t q, const QuantParams& qp);
[[nodiscard]] std::vector<float> dequantize(std::span<const std::int8_t> q, const QuantParams& qp);

/// int32 accumulator of (a.q * b.q) -> real, given both operand scales.
[[nodiscard]] float dequantize_acc(std::int32_t acc, const QuantParams& a, const QuantParams& b);

}  // namespace hhpim::nn
