#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace hhpim::nn {

QuantParams QuantParams::choose(std::span<const float> values) {
  float absmax = 0.0f;
  for (const float v : values) absmax = std::max(absmax, std::abs(v));
  QuantParams qp;
  qp.scale = absmax == 0.0f ? 1.0 : static_cast<double>(absmax) / 127.0;
  return qp;
}

std::int8_t quantize_one(float v, const QuantParams& qp) {
  const double q = std::nearbyint(static_cast<double>(v) / qp.scale);
  return static_cast<std::int8_t>(std::clamp(q, -128.0, 127.0));
}

std::vector<std::int8_t> quantize(std::span<const float> v, const QuantParams& qp) {
  std::vector<std::int8_t> out;
  out.reserve(v.size());
  for (const float x : v) out.push_back(quantize_one(x, qp));
  return out;
}

float dequantize_one(std::int8_t q, const QuantParams& qp) {
  return static_cast<float>(static_cast<double>(q) * qp.scale);
}

std::vector<float> dequantize(std::span<const std::int8_t> q, const QuantParams& qp) {
  std::vector<float> out;
  out.reserve(q.size());
  for (const std::int8_t x : q) out.push_back(dequantize_one(x, qp));
  return out;
}

float dequantize_acc(std::int32_t acc, const QuantParams& a, const QuantParams& b) {
  return static_cast<float>(static_cast<double>(acc) * a.scale * b.scale);
}

}  // namespace hhpim::nn
