// Neural-network layer descriptors. The simulator needs per-layer parameter
// and MAC counts (weights stream through the PIM modules), not live tensors,
// so layers are shape-level descriptions with exact arithmetic.
#pragma once

#include <cstdint>
#include <string>

namespace hhpim::nn {

struct TensorShape {
  int c = 0, h = 0, w = 0;
  [[nodiscard]] std::int64_t elements() const {
    return static_cast<std::int64_t>(c) * h * w;
  }
  [[nodiscard]] bool operator==(const TensorShape&) const = default;
};

enum class LayerKind : std::uint8_t {
  kConv2d,     ///< standard or grouped convolution
  kDwConv2d,   ///< depthwise convolution (groups == in channels)
  kLinear,     ///< fully connected
  kPool,       ///< max/avg pool (no weights)
  kAdd,        ///< residual add (no weights)
  kActivation, ///< ReLU / swish / etc. (no weights)
};

[[nodiscard]] const char* to_string(LayerKind k);

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv2d;
  TensorShape in;
  TensorShape out;
  int kernel = 1;
  int stride = 1;
  int groups = 1;

  /// Weight parameter count (biases excluded — folded in INT8 deployment).
  [[nodiscard]] std::uint64_t params() const;

  /// Multiply-accumulate count for one inference.
  [[nodiscard]] std::uint64_t macs() const;

  /// Validates shape arithmetic (spatial dims vs kernel/stride, channel
  /// divisibility by groups). Throws std::invalid_argument on violation.
  void validate() const;
};

/// Output spatial size for a conv/pool with "same-ish" padding:
/// out = ceil(in / stride).
[[nodiscard]] int conv_out_dim(int in, int stride);

}  // namespace hhpim::nn
