// System bus of the host processor (Fig. 3): the RISC-V core talks to RAM
// and memory-mapped devices (UART-style console, the PIM instruction queue
// port) through this bus. Addresses are 32-bit; devices are mapped at fixed
// base addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace hhpim::riscv {

/// A bus-attached device. Accesses are little-endian, `size` is 1, 2 or 4,
/// and `addr` is the offset from the device base.
class Device {
 public:
  virtual ~Device() = default;
  virtual std::uint32_t load(std::uint32_t addr, unsigned size) = 0;
  virtual void store(std::uint32_t addr, unsigned size, std::uint32_t value) = 0;
};

/// Plain RAM.
class Ram : public Device {
 public:
  explicit Ram(std::size_t bytes) : data_(bytes, 0) {}

  std::uint32_t load(std::uint32_t addr, unsigned size) override;
  void store(std::uint32_t addr, unsigned size, std::uint32_t value) override;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] const std::uint8_t* data() const { return data_.data(); }
  /// Copies a blob into RAM (program loading).
  void load_image(std::uint32_t addr, const std::uint8_t* bytes, std::size_t n);

 private:
  std::vector<std::uint8_t> data_;
};

/// Write-only console at offset 0 (one byte per store); tests read back the
/// collected output.
class Console : public Device {
 public:
  std::uint32_t load(std::uint32_t, unsigned) override { return 0; }
  void store(std::uint32_t addr, unsigned size, std::uint32_t value) override;
  [[nodiscard]] const std::string& output() const { return out_; }

 private:
  std::string out_;
};

/// Memory-mapped PIM port:
///   offset 0x0 (write): push one encoded PIM instruction into the queue
///   offset 0x4 (read):  status — bit0 = queue full, bit1 = queue empty
///   offset 0x8 (write): doorbell — the owner's callback runs the queue
class PimPort : public Device {
 public:
  using PushFn = std::function<bool(std::uint32_t)>;   ///< returns false if full
  using StatusFn = std::function<std::uint32_t()>;
  using DoorbellFn = std::function<void()>;

  PimPort(PushFn push, StatusFn status, DoorbellFn doorbell);

  std::uint32_t load(std::uint32_t addr, unsigned size) override;
  void store(std::uint32_t addr, unsigned size, std::uint32_t value) override;

  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t doorbells() const { return doorbells_; }

 private:
  PushFn push_;
  StatusFn status_;
  DoorbellFn doorbell_;
  std::uint64_t pushes_ = 0;
  std::uint64_t doorbells_ = 0;
};

/// The address decoder.
class Bus {
 public:
  /// Maps `device` at [base, base+size). Overlapping regions are rejected.
  void map(std::uint32_t base, std::uint32_t size, Device* device);

  std::uint32_t load(std::uint32_t addr, unsigned size);
  void store(std::uint32_t addr, unsigned size, std::uint32_t value);

  /// Non-throwing variants for the CPU cores: an access outside every mapped
  /// region returns false (the core halts with `HaltReason::kUnmappedAccess`)
  /// instead of unwinding through the dispatch loop.
  [[nodiscard]] bool try_load(std::uint32_t addr, unsigned size, std::uint32_t& out);
  [[nodiscard]] bool try_store(std::uint32_t addr, unsigned size, std::uint32_t value);

 private:
  struct Region {
    std::uint32_t base;
    std::uint32_t size;
    Device* device;
  };
  Region* find(std::uint32_t addr, unsigned size);
  std::vector<Region> regions_;
};

}  // namespace hhpim::riscv
