#include "riscv/engine.hpp"

#include <algorithm>

namespace hhpim::riscv {
namespace {

/// Blocks are capped so a straight-line megabyte of code cannot produce one
/// unbounded decode; execution falls through to the next block seamlessly.
constexpr int kMaxBlockOps = 64;

std::int32_t sext(std::uint32_t v, unsigned bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return static_cast<std::int32_t>((v ^ m) - m);
}

}  // namespace

std::uint32_t CycleModel::cost(OpClass c) const {
  switch (c) {
    case OpClass::kAlu: return alu;
    case OpClass::kMul: return mul;
    case OpClass::kDiv: return div;
    case OpClass::kLoad: return load;
    case OpClass::kStore: return store;
    case OpClass::kBranch: return branch;
    case OpClass::kJump: return jump;
    case OpClass::kSystem: return system;
    case OpClass::kCount: break;
  }
  return 1;
}

BlockEngine::BlockEngine(Bus* bus, std::uint32_t pc, CycleModel cycles)
    : bus_(bus), pc_(pc), model_(cycles) {}

void BlockEngine::clear_cache() {
  blocks_.clear();
  last_block_ = nullptr;
  code_lo_ = 0xffffffffu;
  code_hi_ = 0;
}

BlockEngine::Block* BlockEngine::lookup_or_compile(std::uint32_t pc) {
  if (last_block_ != nullptr && last_block_->start == pc) {
    ++stats_.block_hits;
    return last_block_;
  }
  auto it = blocks_.find(pc);
  if (it != blocks_.end()) {
    ++stats_.block_hits;
    last_block_ = &it->second;
    return last_block_;
  }

  Block blk;
  blk.start = pc;
  std::uint32_t cur = pc;
  for (int len = 0; len < kMaxBlockOps; ++len) {
    std::uint32_t word = 0;
    if (!bus_->try_load(cur, 4, word)) break;  // block ends at the fault edge
    DecodedOp op = decode_rv32(word);
    op.cycles = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(255u, model_.cost(class_of(op.kind))));
    blk.ops.push_back(op);
    cur += 4;
    if (ends_block(op.kind)) break;
  }
  if (blk.ops.empty()) return nullptr;  // unmapped fetch at the block start
  blk.end = cur;
  ++stats_.blocks_compiled;
  code_lo_ = std::min(code_lo_, blk.start);
  code_hi_ = std::max(code_hi_, blk.end);
  // unordered_map is node-based: rehash on insert never moves elements, so
  // cached Block pointers stay valid until the block itself is erased.
  auto inserted = blocks_.emplace(pc, std::move(blk));
  last_block_ = &inserted.first->second;
  return last_block_;
}

bool BlockEngine::invalidate_range(std::uint32_t addr, unsigned size) {
  const std::uint32_t lo = addr;
  const std::uint32_t hi = addr + size;
  std::uint64_t erased = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (lo < it->second.end && hi > it->second.start) {
      it = blocks_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  if (erased == 0) return false;
  stats_.invalidations += erased;
  last_block_ = nullptr;
  code_lo_ = 0xffffffffu;
  code_hi_ = 0;
  for (const auto& entry : blocks_) {
    code_lo_ = std::min(code_lo_, entry.second.start);
    code_hi_ = std::max(code_hi_, entry.second.end);
  }
  return true;
}

std::uint64_t BlockEngine::run(std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (halt_ == HaltReason::kRunning && executed < max_steps) {
    if ((pc_ & 3u) != 0) {
      halt_ = HaltReason::kMisalignedAccess;
      break;
    }
    Block* blk = lookup_or_compile(pc_);
    if (blk == nullptr) {
      halt_ = HaltReason::kUnmappedAccess;
      break;
    }
    exec_block(*blk, max_steps, executed);
  }
  if (halt_ == HaltReason::kRunning && executed >= max_steps) {
    halt_ = HaltReason::kMaxSteps;
  }
  return executed;
}

// The dispatch loop. On GCC/Clang each handler jumps straight to the next
// op's handler through a label table (threaded dispatch); elsewhere the same
// handler bodies sit in a switch re-entered via `dispatch_top`. Halt/retire
// semantics mirror Cpu exactly: the halting instruction counts in retired_
// but not in `executed`, data faults leave pc_ at the faulting op, and a
// budget stop leaves pc_ at the first unexecuted op.
void BlockEngine::exec_block(const Block& blk, std::uint64_t max_steps,
                             std::uint64_t& executed) {
  const DecodedOp* ops = blk.ops.data();
  const std::size_t n = blk.ops.size();
  const std::uint32_t start = blk.start;
  const std::uint32_t end = blk.end;
  std::size_t i = 0;
  const DecodedOp* op = ops;

#define CUR_PC (start + (static_cast<std::uint32_t>(i) << 2))

#define RETIRE_JUMP(target)    \
  do {                         \
    ++retired_;                \
    ++executed;                \
    cycles_ += op->cycles;     \
    pc_ = (target);            \
    return;                    \
  } while (0)

#define HALT_RETIRE(reason)    \
  do {                         \
    ++retired_;                \
    cycles_ += op->cycles;     \
    pc_ = CUR_PC;              \
    halt_ = (reason);          \
    return;                    \
  } while (0)

#define RETIRE_NEXT()                  \
  do {                                 \
    ++retired_;                        \
    ++executed;                        \
    cycles_ += op->cycles;             \
    ++i;                               \
    if (i == n) {                      \
      pc_ = end;                       \
      return;                          \
    }                                  \
    if (executed >= max_steps) {       \
      pc_ = CUR_PC;                    \
      return;                          \
    }                                  \
    op = ops + i;                      \
    DISPATCH();                        \
  } while (0)

#if defined(__GNUC__) && !defined(HHPIM_RISCV_NO_COMPUTED_GOTO)
  // Label table indexed by OpKind — must match the enum declaration order.
  static const void* const kLabels[] = {
      &&h_Lui, &&h_Auipc, &&h_Jal, &&h_Jalr,
      &&h_Beq, &&h_Bne, &&h_Blt, &&h_Bge, &&h_Bltu, &&h_Bgeu,
      &&h_Lb, &&h_Lh, &&h_Lw, &&h_Lbu, &&h_Lhu,
      &&h_Sb, &&h_Sh, &&h_Sw,
      &&h_Addi, &&h_Slti, &&h_Sltiu, &&h_Xori, &&h_Ori, &&h_Andi,
      &&h_Slli, &&h_Srli, &&h_Srai,
      &&h_Add, &&h_Sub, &&h_Sll, &&h_Slt, &&h_Sltu, &&h_Xor,
      &&h_Srl, &&h_Sra, &&h_Or, &&h_And,
      &&h_Mul, &&h_Mulh, &&h_Mulhsu, &&h_Mulhu,
      &&h_Div, &&h_Divu, &&h_Rem, &&h_Remu,
      &&h_Fence, &&h_Ecall, &&h_Ebreak, &&h_Illegal,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                    static_cast<std::size_t>(OpKind::kCount),
                "label table must cover every OpKind");
#define HANDLER(name) h_##name
#define DISPATCH() goto* kLabels[static_cast<std::size_t>(op->kind)]
  DISPATCH();
#else
#define HANDLER(name) case OpKind::k##name
#define DISPATCH() goto dispatch_top
dispatch_top:
  switch (op->kind) {
#endif

  HANDLER(Lui) : {
    x_[op->rd] = static_cast<std::uint32_t>(op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Auipc) : {
    x_[op->rd] = CUR_PC + static_cast<std::uint32_t>(op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Jal) : {
    const std::uint32_t cur = CUR_PC;
    x_[op->rd] = cur + 4;
    RETIRE_JUMP(cur + static_cast<std::uint32_t>(op->imm));
  }
  HANDLER(Jalr) : {
    const std::uint32_t target =
        (x_[op->rs1] + static_cast<std::uint32_t>(op->imm)) & ~1u;
    x_[op->rd] = CUR_PC + 4;
    RETIRE_JUMP(target);
  }
  HANDLER(Beq) : {
    if (x_[op->rs1] == x_[op->rs2]) {
      RETIRE_JUMP(CUR_PC + static_cast<std::uint32_t>(op->imm));
    }
    RETIRE_JUMP(CUR_PC + 4);
  }
  HANDLER(Bne) : {
    if (x_[op->rs1] != x_[op->rs2]) {
      RETIRE_JUMP(CUR_PC + static_cast<std::uint32_t>(op->imm));
    }
    RETIRE_JUMP(CUR_PC + 4);
  }
  HANDLER(Blt) : {
    if (static_cast<std::int32_t>(x_[op->rs1]) <
        static_cast<std::int32_t>(x_[op->rs2])) {
      RETIRE_JUMP(CUR_PC + static_cast<std::uint32_t>(op->imm));
    }
    RETIRE_JUMP(CUR_PC + 4);
  }
  HANDLER(Bge) : {
    if (static_cast<std::int32_t>(x_[op->rs1]) >=
        static_cast<std::int32_t>(x_[op->rs2])) {
      RETIRE_JUMP(CUR_PC + static_cast<std::uint32_t>(op->imm));
    }
    RETIRE_JUMP(CUR_PC + 4);
  }
  HANDLER(Bltu) : {
    if (x_[op->rs1] < x_[op->rs2]) {
      RETIRE_JUMP(CUR_PC + static_cast<std::uint32_t>(op->imm));
    }
    RETIRE_JUMP(CUR_PC + 4);
  }
  HANDLER(Bgeu) : {
    if (x_[op->rs1] >= x_[op->rs2]) {
      RETIRE_JUMP(CUR_PC + static_cast<std::uint32_t>(op->imm));
    }
    RETIRE_JUMP(CUR_PC + 4);
  }
  HANDLER(Lb) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint32_t v = 0;
    if (!bus_->try_load(addr, 1, v)) HALT_RETIRE(HaltReason::kUnmappedAccess);
    x_[op->rd] = static_cast<std::uint32_t>(sext(v, 8));
    RETIRE_NEXT();
  }
  HANDLER(Lh) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if ((addr & 1u) != 0) HALT_RETIRE(HaltReason::kMisalignedAccess);
    std::uint32_t v = 0;
    if (!bus_->try_load(addr, 2, v)) HALT_RETIRE(HaltReason::kUnmappedAccess);
    x_[op->rd] = static_cast<std::uint32_t>(sext(v, 16));
    RETIRE_NEXT();
  }
  HANDLER(Lw) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if ((addr & 3u) != 0) HALT_RETIRE(HaltReason::kMisalignedAccess);
    std::uint32_t v = 0;
    if (!bus_->try_load(addr, 4, v)) HALT_RETIRE(HaltReason::kUnmappedAccess);
    x_[op->rd] = v;
    RETIRE_NEXT();
  }
  HANDLER(Lbu) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    std::uint32_t v = 0;
    if (!bus_->try_load(addr, 1, v)) HALT_RETIRE(HaltReason::kUnmappedAccess);
    x_[op->rd] = v;
    RETIRE_NEXT();
  }
  HANDLER(Lhu) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if ((addr & 1u) != 0) HALT_RETIRE(HaltReason::kMisalignedAccess);
    std::uint32_t v = 0;
    if (!bus_->try_load(addr, 2, v)) HALT_RETIRE(HaltReason::kUnmappedAccess);
    x_[op->rd] = v;
    RETIRE_NEXT();
  }
  HANDLER(Sb) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if (!bus_->try_store(addr, 1, x_[op->rs2])) {
      HALT_RETIRE(HaltReason::kUnmappedAccess);
    }
    if (addr < code_hi_ && addr + 1u > code_lo_) {
      const std::uint32_t next = CUR_PC + 4;
      const std::uint8_t cyc = op->cycles;
      if (invalidate_range(addr, 1)) {
        // ops may now dangle — leave the block, the outer loop recompiles.
        ++retired_;
        ++executed;
        cycles_ += cyc;
        pc_ = next;
        return;
      }
    }
    RETIRE_NEXT();
  }
  HANDLER(Sh) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if ((addr & 1u) != 0) HALT_RETIRE(HaltReason::kMisalignedAccess);
    if (!bus_->try_store(addr, 2, x_[op->rs2])) {
      HALT_RETIRE(HaltReason::kUnmappedAccess);
    }
    if (addr < code_hi_ && addr + 2u > code_lo_) {
      const std::uint32_t next = CUR_PC + 4;
      const std::uint8_t cyc = op->cycles;
      if (invalidate_range(addr, 2)) {
        ++retired_;
        ++executed;
        cycles_ += cyc;
        pc_ = next;
        return;
      }
    }
    RETIRE_NEXT();
  }
  HANDLER(Sw) : {
    const std::uint32_t addr = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    if ((addr & 3u) != 0) HALT_RETIRE(HaltReason::kMisalignedAccess);
    if (!bus_->try_store(addr, 4, x_[op->rs2])) {
      HALT_RETIRE(HaltReason::kUnmappedAccess);
    }
    if (addr < code_hi_ && addr + 4u > code_lo_) {
      const std::uint32_t next = CUR_PC + 4;
      const std::uint8_t cyc = op->cycles;
      if (invalidate_range(addr, 4)) {
        ++retired_;
        ++executed;
        cycles_ += cyc;
        pc_ = next;
        return;
      }
    }
    RETIRE_NEXT();
  }
  HANDLER(Addi) : {
    x_[op->rd] = x_[op->rs1] + static_cast<std::uint32_t>(op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Slti) : {
    x_[op->rd] = static_cast<std::int32_t>(x_[op->rs1]) < op->imm ? 1 : 0;
    RETIRE_NEXT();
  }
  HANDLER(Sltiu) : {
    x_[op->rd] = x_[op->rs1] < static_cast<std::uint32_t>(op->imm) ? 1 : 0;
    RETIRE_NEXT();
  }
  HANDLER(Xori) : {
    x_[op->rd] = x_[op->rs1] ^ static_cast<std::uint32_t>(op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Ori) : {
    x_[op->rd] = x_[op->rs1] | static_cast<std::uint32_t>(op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Andi) : {
    x_[op->rd] = x_[op->rs1] & static_cast<std::uint32_t>(op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Slli) : {
    x_[op->rd] = x_[op->rs1] << op->imm;
    RETIRE_NEXT();
  }
  HANDLER(Srli) : {
    x_[op->rd] = x_[op->rs1] >> op->imm;
    RETIRE_NEXT();
  }
  HANDLER(Srai) : {
    x_[op->rd] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(x_[op->rs1]) >> op->imm);
    RETIRE_NEXT();
  }
  HANDLER(Add) : {
    x_[op->rd] = x_[op->rs1] + x_[op->rs2];
    RETIRE_NEXT();
  }
  HANDLER(Sub) : {
    x_[op->rd] = x_[op->rs1] - x_[op->rs2];
    RETIRE_NEXT();
  }
  HANDLER(Sll) : {
    x_[op->rd] = x_[op->rs1] << (x_[op->rs2] & 0x1f);
    RETIRE_NEXT();
  }
  HANDLER(Slt) : {
    x_[op->rd] = static_cast<std::int32_t>(x_[op->rs1]) <
                         static_cast<std::int32_t>(x_[op->rs2])
                     ? 1
                     : 0;
    RETIRE_NEXT();
  }
  HANDLER(Sltu) : {
    x_[op->rd] = x_[op->rs1] < x_[op->rs2] ? 1 : 0;
    RETIRE_NEXT();
  }
  HANDLER(Xor) : {
    x_[op->rd] = x_[op->rs1] ^ x_[op->rs2];
    RETIRE_NEXT();
  }
  HANDLER(Srl) : {
    x_[op->rd] = x_[op->rs1] >> (x_[op->rs2] & 0x1f);
    RETIRE_NEXT();
  }
  HANDLER(Sra) : {
    x_[op->rd] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(x_[op->rs1]) >> (x_[op->rs2] & 0x1f));
    RETIRE_NEXT();
  }
  HANDLER(Or) : {
    x_[op->rd] = x_[op->rs1] | x_[op->rs2];
    RETIRE_NEXT();
  }
  HANDLER(And) : {
    x_[op->rd] = x_[op->rs1] & x_[op->rs2];
    RETIRE_NEXT();
  }
  HANDLER(Mul) : {
    x_[op->rd] = x_[op->rs1] * x_[op->rs2];
    RETIRE_NEXT();
  }
  HANDLER(Mulh) : {
    const std::int64_t sa = static_cast<std::int32_t>(x_[op->rs1]);
    const std::int64_t sb = static_cast<std::int32_t>(x_[op->rs2]);
    x_[op->rd] = static_cast<std::uint32_t>((sa * sb) >> 32);
    RETIRE_NEXT();
  }
  HANDLER(Mulhsu) : {
    const std::int64_t sa = static_cast<std::int32_t>(x_[op->rs1]);
    const std::int64_t ub = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(x_[op->rs2]));
    x_[op->rd] = static_cast<std::uint32_t>((sa * ub) >> 32);
    RETIRE_NEXT();
  }
  HANDLER(Mulhu) : {
    const std::uint64_t ua = x_[op->rs1];
    const std::uint64_t ub = x_[op->rs2];
    x_[op->rd] = static_cast<std::uint32_t>((ua * ub) >> 32);
    RETIRE_NEXT();
  }
  HANDLER(Div) : {
    const std::uint32_t a = x_[op->rs1];
    const std::uint32_t b = x_[op->rs2];
    if (b == 0) {
      x_[op->rd] = 0xffffffffu;
    } else if (a == 0x80000000u && b == 0xffffffffu) {
      x_[op->rd] = 0x80000000u;
    } else {
      x_[op->rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) /
                                              static_cast<std::int32_t>(b));
    }
    RETIRE_NEXT();
  }
  HANDLER(Divu) : {
    const std::uint32_t b = x_[op->rs2];
    x_[op->rd] = b == 0 ? 0xffffffffu : x_[op->rs1] / b;
    RETIRE_NEXT();
  }
  HANDLER(Rem) : {
    const std::uint32_t a = x_[op->rs1];
    const std::uint32_t b = x_[op->rs2];
    if (b == 0) {
      x_[op->rd] = a;
    } else if (a == 0x80000000u && b == 0xffffffffu) {
      x_[op->rd] = 0;
    } else {
      x_[op->rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) %
                                              static_cast<std::int32_t>(b));
    }
    RETIRE_NEXT();
  }
  HANDLER(Remu) : {
    const std::uint32_t b = x_[op->rs2];
    x_[op->rd] = b == 0 ? x_[op->rs1] : x_[op->rs1] % b;
    RETIRE_NEXT();
  }
  HANDLER(Fence) : { RETIRE_NEXT(); }
  HANDLER(Ecall) : { HALT_RETIRE(HaltReason::kEcall); }
  HANDLER(Ebreak) : { HALT_RETIRE(HaltReason::kEbreak); }
  HANDLER(Illegal) : { HALT_RETIRE(HaltReason::kBadInstruction); }

#if defined(__GNUC__) && !defined(HHPIM_RISCV_NO_COMPUTED_GOTO)
#else
  case OpKind::kCount:
    break;
  }
  // Unreachable: decode never emits kCount and every handler exits.
  HALT_RETIRE(HaltReason::kBadInstruction);
#endif

#undef CUR_PC
#undef RETIRE_JUMP
#undef HALT_RETIRE
#undef RETIRE_NEXT
#undef HANDLER
#undef DISPATCH
}

}  // namespace hhpim::riscv
