// RV32IM instruction-set simulator.
//
// The paper's processor uses a RISC-V Rocket core as the host that feeds PIM
// instructions to HH-PIM over AXI; this ISS plays that role. It implements
// the full RV32I base ISA plus the M extension, little-endian, no CSRs or
// traps — ECALL/EBREAK halt the core (the convention used by our benchmark
// programs).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "riscv/bus.hpp"

namespace hhpim::riscv {

enum class HaltReason : std::uint8_t {
  kRunning,
  kEcall,
  kEbreak,
  kMaxSteps,
  kBadInstruction,
  /// A load/store whose address is not size-aligned, or a fetch from a pc
  /// that is not 4-aligned. RV32 permits either trapping or supporting
  /// misaligned data; this core traps, so a wild pointer halts loudly
  /// instead of producing silently rotated bytes.
  kMisalignedAccess,
  /// A load, store, or fetch outside every mapped Bus region.
  kUnmappedAccess,
};

/// Human-readable halt reason (demo/diagnostic output).
[[nodiscard]] const char* to_string(HaltReason reason);

class Cpu {
 public:
  explicit Cpu(Bus* bus, std::uint32_t pc = 0);

  /// Executes one instruction. Returns false if the core is halted.
  bool step();

  /// Runs until halt or `max_steps`. Returns the number of retired
  /// instructions.
  std::uint64_t run(std::uint64_t max_steps = 1'000'000);

  [[nodiscard]] std::uint32_t reg(unsigned i) const { return x_[i]; }
  void set_reg(unsigned i, std::uint32_t v) {
    if (i != 0) x_[i] = v;
  }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }

  [[nodiscard]] bool halted() const { return halt_ != HaltReason::kRunning; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] std::uint64_t retired() const { return retired_; }

  /// Restarts execution at `pc` with registers preserved.
  void resume(std::uint32_t pc) {
    pc_ = pc;
    halt_ = HaltReason::kRunning;
  }

 private:
  void execute(std::uint32_t inst);

  Bus* bus_;
  std::array<std::uint32_t, 32> x_{};
  std::uint32_t pc_;
  HaltReason halt_ = HaltReason::kRunning;
  std::uint64_t retired_ = 0;
};

}  // namespace hhpim::riscv
