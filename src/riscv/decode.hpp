// Flat decoded-op IR for the RV32IM block engine (docs/RISCV.md).
//
// `decode_rv32` turns one raw instruction word into a `DecodedOp`: a dense
// opcode id plus pre-extracted register indices and a fully assembled
// immediate. The block engine predecodes straight-line runs of these once,
// then dispatches on `kind` without ever re-touching the instruction bytes.
#pragma once

#include <cstdint>

namespace hhpim::riscv {

/// One executable operation. Dense so dispatch tables index directly by it.
enum class OpKind : std::uint8_t {
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kFence, kEcall, kEbreak,
  kIllegal,
  kCount,
};

/// Coarse op classes the host cycle model charges by (docs/RISCV.md
/// "Cycle model").
enum class OpClass : std::uint8_t {
  kAlu, kMul, kDiv, kLoad, kStore, kBranch, kJump, kSystem,
  kCount,
};

/// A predecoded instruction.
///
/// `rd` is the *write slot*: destination register, except that writes to x0
/// are redirected at decode time to the scratch slot 32 — the engine's
/// register file has 33 entries so the hot loop never branches on rd == 0.
/// `rs1`/`rs2` are always architectural indices (x0 itself is never written,
/// so reads of slot 0 stay zero). `imm` is the sign-extended immediate; for
/// shifts it holds the 5-bit shamt, for LUI/AUIPC the pre-shifted upper
/// immediate, and for branches/JAL the pc-relative byte offset. `cycles` is
/// filled in by the engine from its `CycleModel` when a block is compiled.
struct DecodedOp {
  OpKind kind = OpKind::kIllegal;
  std::uint8_t rd = 32;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t cycles = 1;
  std::int32_t imm = 0;
};

/// Decodes one RV32IM instruction word. Unknown encodings come back as
/// `kIllegal` (the engine halts with `HaltReason::kBadInstruction`, exactly
/// like the step interpreter).
[[nodiscard]] DecodedOp decode_rv32(std::uint32_t inst);

/// The cycle-model class of an op kind.
[[nodiscard]] OpClass class_of(OpKind kind);

/// True when `kind` terminates a basic block: branches, jumps, system ops,
/// and illegal encodings. Stores do *not* end blocks — self-modifying code
/// is handled by invalidation instead (docs/RISCV.md "Invalidation").
[[nodiscard]] bool ends_block(OpKind kind);

}  // namespace hhpim::riscv
