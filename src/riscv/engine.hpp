// Decoded-block RV32IM engine: basic-block cache + threaded dispatch.
//
// `BlockEngine` is architecturally equivalent to `Cpu` (same registers, same
// halt semantics, same Bus) but executes from a cache of predecoded basic
// blocks instead of fetching and decoding one instruction at a time — the
// rv32emu decoded-block idiom. Blocks are keyed by start pc, terminated at
// control-flow/system ops, and invalidated when a store lands inside a
// compiled range, so self-modifying code stays correct. A per-op-class
// `CycleModel` accumulates retired cycles for the host-in-the-loop energy
// accounting (docs/RISCV.md).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "riscv/decode.hpp"

namespace hhpim::riscv {

/// Per-op-class retired-cycle costs, loosely modeled on an in-order Rocket
/// pipeline: single-cycle ALU/branch, pipelined multiplier, iterative
/// divider, blocking loads/stores. Costs are capped at 255 (they are baked
/// into `DecodedOp::cycles` at block-compile time).
struct CycleModel {
  std::uint32_t alu = 1;
  std::uint32_t mul = 3;
  std::uint32_t div = 34;
  std::uint32_t load = 2;
  std::uint32_t store = 2;
  std::uint32_t branch = 1;
  std::uint32_t jump = 2;
  std::uint32_t system = 1;

  [[nodiscard]] std::uint32_t cost(OpClass c) const;
};

/// Block-cache observability counters (`riscv_host_demo --stats`).
struct EngineStats {
  std::uint64_t blocks_compiled = 0;
  std::uint64_t block_hits = 0;     ///< dispatches served from the cache
  std::uint64_t invalidations = 0;  ///< blocks dropped by stores into code
};

class BlockEngine {
 public:
  explicit BlockEngine(Bus* bus, std::uint32_t pc = 0, CycleModel cycles = {});

  /// Runs until halt or `max_steps`. Returns the number of retired
  /// instructions this call, matching `Cpu::run` exactly (the halting
  /// instruction counts toward `retired()` but not the return value).
  std::uint64_t run(std::uint64_t max_steps = 1'000'000);

  [[nodiscard]] std::uint32_t reg(unsigned i) const { return x_[i]; }
  void set_reg(unsigned i, std::uint32_t v) {
    if (i != 0) x_[i] = v;
  }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }

  [[nodiscard]] bool halted() const { return halt_ != HaltReason::kRunning; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] std::uint64_t retired() const { return retired_; }
  /// Cycles retired under the engine's `CycleModel` (monotonic; callers
  /// window by differencing).
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Restarts execution at `pc` with registers preserved. Compiled blocks
  /// survive — re-running the same program is the cache's whole point.
  void resume(std::uint32_t pc) {
    pc_ = pc;
    halt_ = HaltReason::kRunning;
  }

  /// Drops every compiled block. Must be called after memory the engine may
  /// have compiled from is rewritten *without* going through the Bus (e.g.
  /// `Ram::load_image`); stores through the Bus invalidate automatically.
  void clear_cache();

  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  struct Block {
    std::uint32_t start = 0;
    std::uint32_t end = 0;  ///< byte address one past the last decoded op
    std::vector<DecodedOp> ops;
  };

  Block* lookup_or_compile(std::uint32_t pc);
  /// Executes ops of `blk` until a terminator, fault, invalidating store, or
  /// the step budget; updates pc_/halt_/retired_/cycles_ and `executed`.
  void exec_block(const Block& blk, std::uint64_t max_steps,
                  std::uint64_t& executed);
  /// Erases blocks overlapping [addr, addr+size). Returns true if any block
  /// was dropped (the caller must abandon the block it is executing).
  bool invalidate_range(std::uint32_t addr, unsigned size);

  Bus* bus_;
  // Slot 32 is the write sink for rd == x0 (see DecodedOp::rd).
  std::array<std::uint32_t, 33> x_{};
  std::uint32_t pc_;
  HaltReason halt_ = HaltReason::kRunning;
  std::uint64_t retired_ = 0;
  std::uint64_t cycles_ = 0;
  CycleModel model_;

  std::unordered_map<std::uint32_t, Block> blocks_;
  // Union of compiled code ranges: the store fast path rejects data stores
  // with two compares instead of walking the block map.
  std::uint32_t code_lo_ = 0xffffffffu;
  std::uint32_t code_hi_ = 0;
  // One-entry lookup cache for tight loops (cleared on any invalidation).
  Block* last_block_ = nullptr;
  EngineStats stats_;
};

}  // namespace hhpim::riscv
