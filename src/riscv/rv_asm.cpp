#include "riscv/rv_asm.hpp"

#include <cstdlib>
#include <map>
#include <optional>

#include "common/strings.hpp"

namespace hhpim::riscv {

namespace {

// --- encoders ---------------------------------------------------------------

std::uint32_t enc_r(std::uint32_t f7, int rs2, int rs1, std::uint32_t f3, int rd,
                    std::uint32_t op) {
  return (f7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (f3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | op;
}

std::uint32_t enc_i(std::int32_t imm, int rs1, std::uint32_t f3, int rd, std::uint32_t op) {
  return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (f3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | op;
}

std::uint32_t enc_s(std::int32_t imm, int rs2, int rs1, std::uint32_t f3) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return (((u >> 5) & 0x7f) << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (f3 << 12) | ((u & 0x1f) << 7) | 0x23;
}

std::uint32_t enc_b(std::int32_t imm, int rs2, int rs1, std::uint32_t f3) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
         (static_cast<std::uint32_t>(rs2) << 20) | (static_cast<std::uint32_t>(rs1) << 15) |
         (f3 << 12) | (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}

std::uint32_t enc_u(std::int32_t imm, int rd, std::uint32_t op) {
  return (static_cast<std::uint32_t>(imm) & 0xfffff000u) |
         (static_cast<std::uint32_t>(rd) << 7) | op;
}

std::uint32_t enc_j(std::int32_t imm, int rd) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) | (((u >> 11) & 1) << 20) |
         (((u >> 12) & 0xff) << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x6f;
}

struct Op3 {
  std::uint32_t f7, f3;
};

const std::map<std::string, Op3, std::less<>> kRType = {
    {"add", {0x00, 0}},  {"sub", {0x20, 0}},  {"sll", {0x00, 1}},  {"slt", {0x00, 2}},
    {"sltu", {0x00, 3}}, {"xor", {0x00, 4}},  {"srl", {0x00, 5}},  {"sra", {0x20, 5}},
    {"or", {0x00, 6}},   {"and", {0x00, 7}},  {"mul", {0x01, 0}},  {"mulh", {0x01, 1}},
    {"mulhsu", {0x01, 2}}, {"mulhu", {0x01, 3}}, {"div", {0x01, 4}}, {"divu", {0x01, 5}},
    {"rem", {0x01, 6}},  {"remu", {0x01, 7}},
};

const std::map<std::string, std::uint32_t, std::less<>> kIType = {
    {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4}, {"ori", 6}, {"andi", 7},
};

const std::map<std::string, std::uint32_t, std::less<>> kLoads = {
    {"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 4}, {"lhu", 5},
};

const std::map<std::string, std::uint32_t, std::less<>> kStores = {
    {"sb", 0}, {"sh", 1}, {"sw", 2},
};

const std::map<std::string, std::uint32_t, std::less<>> kBranches = {
    {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5}, {"bltu", 6}, {"bgeu", 7},
};

}  // namespace

int parse_register(std::string_view name) {
  static const std::map<std::string, int, std::less<>> kAbi = {
      {"zero", 0}, {"ra", 1},  {"sp", 2},  {"gp", 3},  {"tp", 4},  {"t0", 5},
      {"t1", 6},   {"t2", 7},  {"s0", 8},  {"fp", 8},  {"s1", 9},  {"a0", 10},
      {"a1", 11},  {"a2", 12}, {"a3", 13}, {"a4", 14}, {"a5", 15}, {"a6", 16},
      {"a7", 17},  {"s2", 18}, {"s3", 19}, {"s4", 20}, {"s5", 21}, {"s6", 22},
      {"s7", 23},  {"s8", 24}, {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
      {"t4", 29},  {"t5", 30}, {"t6", 31},
  };
  const auto it = kAbi.find(name);
  if (it != kAbi.end()) return it->second;
  if (name.size() >= 2 && name[0] == 'x') {
    char* end = nullptr;
    const std::string digits{name.substr(1)};
    const long v = std::strtol(digits.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && v >= 0 && v <= 31) return static_cast<int>(v);
  }
  return -1;
}

namespace {

struct Line {
  std::size_t number;
  std::string mnemonic;
  std::vector<std::string> ops;
};

struct Parsed {
  std::vector<Line> lines;
  std::map<std::string, std::uint32_t> labels;
};

std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string str{s};
  const long long v = std::strtoll(str.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

/// First pass: strip comments, collect labels, count instruction words.
std::variant<Parsed, RvAsmError> first_pass(std::string_view source, std::uint32_t origin) {
  Parsed p;
  std::uint32_t addr = origin;
  std::size_t line_no = 0;
  for (const auto& raw : split(source, '\n')) {
    ++line_no;
    std::string text = raw;
    const auto hash = text.find('#');
    if (hash != std::string::npos) text = text.substr(0, hash);
    text = trim(text);
    // Labels (possibly several on one line).
    for (auto colon = text.find(':'); colon != std::string::npos; colon = text.find(':')) {
      const std::string label = trim(text.substr(0, colon));
      if (label.empty() || label.find(' ') != std::string::npos) {
        return RvAsmError{line_no, "bad label '" + label + "'"};
      }
      if (p.labels.count(label) > 0) {
        return RvAsmError{line_no, "duplicate label '" + label + "'"};
      }
      p.labels[label] = addr;
      text = trim(text.substr(colon + 1));
    }
    if (text.empty()) continue;

    const auto space = text.find_first_of(" \t");
    Line line;
    line.number = line_no;
    line.mnemonic = to_lower(text.substr(0, space));
    if (space != std::string::npos) {
      for (const auto& op : split(text.substr(space), ',')) {
        const std::string t = trim(op);
        if (!t.empty()) line.ops.push_back(t);
      }
    }
    // `li` with a large immediate expands to two instructions.
    std::uint32_t words = 1;
    if (line.mnemonic == "li" && line.ops.size() == 2) {
      const auto v = parse_int(line.ops[1]);
      if (v.has_value() && (*v < -2048 || *v > 2047)) words = 2;
    }
    p.lines.push_back(std::move(line));
    addr += 4 * words;
  }
  return p;
}

/// Splits "imm(rs1)" into offset and register.
bool parse_mem_operand(std::string_view s, std::int32_t* off, int* reg) {
  const auto open = s.find('(');
  const auto close = s.find(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
    return false;
  }
  const auto imm_text = trim(s.substr(0, open));
  const auto v = imm_text.empty() ? std::optional<std::int64_t>{0} : parse_int(imm_text);
  if (!v.has_value()) return false;
  *off = static_cast<std::int32_t>(*v);
  *reg = parse_register(trim(s.substr(open + 1, close - open - 1)));
  return *reg >= 0;
}

}  // namespace

RvAsmResult assemble_rv32(std::string_view source, std::uint32_t origin) {
  auto pass1 = first_pass(source, origin);
  if (std::holds_alternative<RvAsmError>(pass1)) return std::get<RvAsmError>(pass1);
  const Parsed& p = std::get<Parsed>(pass1);

  std::vector<std::uint32_t> out;
  std::uint32_t addr = origin;

  auto err = [&](const Line& l, const std::string& msg) -> RvAsmError {
    return RvAsmError{l.number, msg + " in '" + l.mnemonic + "'"};
  };

  auto resolve = [&](const Line& l, std::string_view s,
                     std::int64_t* value) -> std::optional<RvAsmError> {
    const auto v = parse_int(s);
    if (v.has_value()) {
      *value = *v;
      return std::nullopt;
    }
    const auto it = p.labels.find(std::string{s});
    if (it == p.labels.end()) return err(l, "unknown symbol '" + std::string{s} + "'");
    *value = it->second;
    return std::nullopt;
  };

  for (const auto& l : p.lines) {
    const auto& m = l.mnemonic;
    auto need = [&](std::size_t n) { return l.ops.size() == n; };
    auto reg = [&](std::size_t i) { return parse_register(l.ops[i]); };

    if (const auto r = kRType.find(m); r != kRType.end()) {
      if (!need(3) || reg(0) < 0 || reg(1) < 0 || reg(2) < 0) return err(l, "bad operands");
      out.push_back(enc_r(r->second.f7, reg(2), reg(1), r->second.f3, reg(0), 0x33));
    } else if (const auto i = kIType.find(m); i != kIType.end()) {
      std::int64_t imm = 0;
      if (!need(3) || reg(0) < 0 || reg(1) < 0) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[2], &imm)) return *e;
      if (imm < -2048 || imm > 2047) return err(l, "immediate out of range");
      out.push_back(enc_i(static_cast<std::int32_t>(imm), reg(1), i->second, reg(0), 0x13));
    } else if (m == "slli" || m == "srli" || m == "srai") {
      std::int64_t sh = 0;
      if (!need(3) || reg(0) < 0 || reg(1) < 0) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[2], &sh)) return *e;
      if (sh < 0 || sh > 31) return err(l, "shift amount out of range");
      const std::uint32_t f7 = m == "srai" ? 0x20 : 0x00;
      const std::uint32_t f3 = m == "slli" ? 1 : 5;
      out.push_back(enc_r(f7, static_cast<int>(sh), reg(1), f3, reg(0), 0x13));
    } else if (const auto ld = kLoads.find(m); ld != kLoads.end()) {
      std::int32_t off = 0;
      int base = 0;
      if (!need(2) || reg(0) < 0 || !parse_mem_operand(l.ops[1], &off, &base)) {
        return err(l, "bad operands");
      }
      out.push_back(enc_i(off, base, ld->second, reg(0), 0x03));
    } else if (const auto st = kStores.find(m); st != kStores.end()) {
      std::int32_t off = 0;
      int base = 0;
      if (!need(2) || reg(0) < 0 || !parse_mem_operand(l.ops[1], &off, &base)) {
        return err(l, "bad operands");
      }
      out.push_back(enc_s(off, reg(0), base, st->second));
    } else if (const auto br = kBranches.find(m); br != kBranches.end()) {
      std::int64_t target = 0;
      if (!need(3) || reg(0) < 0 || reg(1) < 0) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[2], &target)) return *e;
      out.push_back(enc_b(static_cast<std::int32_t>(target - addr), reg(1), reg(0), br->second));
    } else if (m == "beqz" || m == "bnez") {
      std::int64_t target = 0;
      if (!need(2) || reg(0) < 0) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[1], &target)) return *e;
      out.push_back(enc_b(static_cast<std::int32_t>(target - addr), 0, reg(0),
                          m == "beqz" ? 0 : 1));
    } else if (m == "lui" || m == "auipc") {
      std::int64_t imm = 0;
      if (!need(2) || reg(0) < 0) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[1], &imm)) return *e;
      out.push_back(enc_u(static_cast<std::int32_t>(imm << 12), reg(0),
                          m == "lui" ? 0x37 : 0x17));
    } else if (m == "jal") {
      // jal rd, label  |  jal label (rd = ra)
      std::int64_t target = 0;
      int rd = 1;
      std::size_t t = 0;
      if (need(2)) {
        rd = reg(0);
        t = 1;
        if (rd < 0) return err(l, "bad operands");
      } else if (!need(1)) {
        return err(l, "bad operands");
      }
      if (auto e = resolve(l, l.ops[t], &target)) return *e;
      out.push_back(enc_j(static_cast<std::int32_t>(target - addr), rd));
    } else if (m == "jalr") {
      if (need(1)) {
        const int rs = reg(0);
        if (rs < 0) return err(l, "bad operands");
        out.push_back(enc_i(0, rs, 0, 1, 0x67));
      } else if (need(3)) {
        std::int64_t imm = 0;
        if (reg(0) < 0 || reg(1) < 0) return err(l, "bad operands");
        if (auto e = resolve(l, l.ops[2], &imm)) return *e;
        out.push_back(enc_i(static_cast<std::int32_t>(imm), reg(1), 0, reg(0), 0x67));
      } else {
        return err(l, "bad operands");
      }
    } else if (m == "li") {
      std::int64_t v = 0;
      if (!need(2) || reg(0) < 0) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[1], &v)) return *e;
      if (v >= -2048 && v <= 2047) {
        out.push_back(enc_i(static_cast<std::int32_t>(v), 0, 0, reg(0), 0x13));
      } else {
        const std::uint32_t uv = static_cast<std::uint32_t>(v);
        std::uint32_t hi = uv >> 12;
        const std::int32_t lo = static_cast<std::int32_t>(uv << 20) >> 20;
        if (lo < 0) hi += 1;  // ADDI sign-extends; compensate in LUI
        out.push_back(enc_u(static_cast<std::int32_t>(hi << 12), reg(0), 0x37));
        out.push_back(enc_i(lo, reg(0), 0, reg(0), 0x13));
        addr += 4;
      }
    } else if (m == "mv") {
      if (!need(2) || reg(0) < 0 || reg(1) < 0) return err(l, "bad operands");
      out.push_back(enc_i(0, reg(1), 0, reg(0), 0x13));
    } else if (m == "j") {
      std::int64_t target = 0;
      if (!need(1)) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[0], &target)) return *e;
      out.push_back(enc_j(static_cast<std::int32_t>(target - addr), 0));
    } else if (m == "jr") {
      if (!need(1) || reg(0) < 0) return err(l, "bad operands");
      out.push_back(enc_i(0, reg(0), 0, 0, 0x67));
    } else if (m == "call") {
      std::int64_t target = 0;
      if (!need(1)) return err(l, "bad operands");
      if (auto e = resolve(l, l.ops[0], &target)) return *e;
      out.push_back(enc_j(static_cast<std::int32_t>(target - addr), 1));
    } else if (m == "ret") {
      out.push_back(enc_i(0, 1, 0, 0, 0x67));
    } else if (m == "nop") {
      out.push_back(enc_i(0, 0, 0, 0, 0x13));
    } else if (m == "ecall") {
      out.push_back(0x00000073);
    } else if (m == "ebreak") {
      out.push_back(0x00100073);
    } else if (m == "fence") {
      out.push_back(0x0000000f);
    } else {
      return err(l, "unknown mnemonic");
    }
    addr += 4;
  }
  return out;
}

}  // namespace hhpim::riscv
