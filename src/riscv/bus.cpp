#include "riscv/bus.hpp"

#include <stdexcept>

namespace hhpim::riscv {

std::uint32_t Ram::load(std::uint32_t addr, unsigned size) {
  if (addr + size > data_.size()) {
    throw std::out_of_range("Ram: load beyond end at 0x" + std::to_string(addr));
  }
  std::uint32_t v = 0;
  for (unsigned i = 0; i < size; ++i) v |= static_cast<std::uint32_t>(data_[addr + i]) << (8 * i);
  return v;
}

void Ram::store(std::uint32_t addr, unsigned size, std::uint32_t value) {
  if (addr + size > data_.size()) {
    throw std::out_of_range("Ram: store beyond end at 0x" + std::to_string(addr));
  }
  for (unsigned i = 0; i < size; ++i) data_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void Ram::load_image(std::uint32_t addr, const std::uint8_t* bytes, std::size_t n) {
  if (addr + n > data_.size()) {
    throw std::out_of_range("Ram: image does not fit");
  }
  std::copy_n(bytes, n, data_.begin() + addr);
}

void Console::store(std::uint32_t addr, unsigned, std::uint32_t value) {
  if (addr == 0) out_.push_back(static_cast<char>(value & 0xff));
}

PimPort::PimPort(PushFn push, StatusFn status, DoorbellFn doorbell)
    : push_(std::move(push)), status_(std::move(status)), doorbell_(std::move(doorbell)) {}

std::uint32_t PimPort::load(std::uint32_t addr, unsigned) {
  if (addr == 0x4 && status_) return status_();
  return 0;
}

void PimPort::store(std::uint32_t addr, unsigned, std::uint32_t value) {
  if (addr == 0x0 && push_) {
    push_(value);
    ++pushes_;
  } else if (addr == 0x8 && doorbell_) {
    doorbell_();
    ++doorbells_;
  }
}

void Bus::map(std::uint32_t base, std::uint32_t size, Device* device) {
  for (const auto& r : regions_) {
    const bool overlap = base < r.base + r.size && r.base < base + size;
    if (overlap) throw std::invalid_argument("Bus: overlapping region");
  }
  regions_.push_back(Region{base, size, device});
}

Bus::Region* Bus::find(std::uint32_t addr, unsigned size) {
  for (auto& r : regions_) {
    if (addr >= r.base && addr + size <= r.base + r.size) return &r;
  }
  return nullptr;
}

std::uint32_t Bus::load(std::uint32_t addr, unsigned size) {
  Region* r = find(addr, size);
  if (r == nullptr) {
    throw std::out_of_range("Bus: load from unmapped address 0x" + std::to_string(addr));
  }
  return r->device->load(addr - r->base, size);
}

void Bus::store(std::uint32_t addr, unsigned size, std::uint32_t value) {
  Region* r = find(addr, size);
  if (r == nullptr) {
    throw std::out_of_range("Bus: store to unmapped address 0x" + std::to_string(addr));
  }
  r->device->store(addr - r->base, size, value);
}

bool Bus::try_load(std::uint32_t addr, unsigned size, std::uint32_t& out) {
  Region* r = find(addr, size);
  if (r == nullptr) return false;
  out = r->device->load(addr - r->base, size);
  return true;
}

bool Bus::try_store(std::uint32_t addr, unsigned size, std::uint32_t value) {
  Region* r = find(addr, size);
  if (r == nullptr) return false;
  r->device->store(addr - r->base, size, value);
  return true;
}

}  // namespace hhpim::riscv
