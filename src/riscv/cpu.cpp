#include "riscv/cpu.hpp"

namespace hhpim::riscv {

namespace {
std::int32_t sext(std::uint32_t v, unsigned bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return static_cast<std::int32_t>((v ^ m) - m);
}
}  // namespace

const char* to_string(HaltReason reason) {
  switch (reason) {
    case HaltReason::kRunning: return "running";
    case HaltReason::kEcall: return "ecall";
    case HaltReason::kEbreak: return "ebreak";
    case HaltReason::kMaxSteps: return "max-steps";
    case HaltReason::kBadInstruction: return "bad-instruction";
    case HaltReason::kMisalignedAccess: return "misaligned-access";
    case HaltReason::kUnmappedAccess: return "unmapped-access";
  }
  return "unknown";
}

Cpu::Cpu(Bus* bus, std::uint32_t pc) : bus_(bus), pc_(pc) {}

bool Cpu::step() {
  if (halted()) return false;
  // A fetch fault halts before any instruction executes, so it does not
  // count as retired; data faults below retire the faulting instruction.
  if ((pc_ & 3u) != 0) {
    halt_ = HaltReason::kMisalignedAccess;
    return false;
  }
  std::uint32_t inst = 0;
  if (!bus_->try_load(pc_, 4, inst)) {
    halt_ = HaltReason::kUnmappedAccess;
    return false;
  }
  execute(inst);
  ++retired_;
  return !halted();
}

std::uint64_t Cpu::run(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (n < max_steps && step()) ++n;
  if (!halted() && n >= max_steps) halt_ = HaltReason::kMaxSteps;
  return n;
}

void Cpu::execute(std::uint32_t inst) {
  const std::uint32_t opcode = inst & 0x7f;
  const unsigned rd = (inst >> 7) & 0x1f;
  const unsigned rs1 = (inst >> 15) & 0x1f;
  const unsigned rs2 = (inst >> 20) & 0x1f;
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t funct7 = (inst >> 25) & 0x7f;

  std::uint32_t next_pc = pc_ + 4;
  const std::uint32_t a = x_[rs1];
  const std::uint32_t b = x_[rs2];

  auto wr = [&](std::uint32_t v) {
    if (rd != 0) x_[rd] = v;
  };

  switch (opcode) {
    case 0x37:  // LUI
      wr(inst & 0xfffff000);
      break;
    case 0x17:  // AUIPC
      wr(pc_ + (inst & 0xfffff000));
      break;
    case 0x6f: {  // JAL
      const std::uint32_t imm = ((inst >> 31) << 20) | (((inst >> 12) & 0xff) << 12) |
                                (((inst >> 20) & 1) << 11) | (((inst >> 21) & 0x3ff) << 1);
      wr(pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(sext(imm, 21));
      break;
    }
    case 0x67: {  // JALR
      const std::int32_t imm = sext(inst >> 20, 12);
      const std::uint32_t target = (a + static_cast<std::uint32_t>(imm)) & ~1u;
      wr(pc_ + 4);
      next_pc = target;
      break;
    }
    case 0x63: {  // branches
      const std::uint32_t imm = ((inst >> 31) << 12) | (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3f) << 5) | (((inst >> 8) & 0xf) << 1);
      const std::int32_t off = sext(imm, 13);
      bool take = false;
      switch (funct3) {
        case 0: take = a == b; break;                                             // BEQ
        case 1: take = a != b; break;                                             // BNE
        case 4: take = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b); break;   // BLT
        case 5: take = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b); break;  // BGE
        case 6: take = a < b; break;                                              // BLTU
        case 7: take = a >= b; break;                                             // BGEU
        default: halt_ = HaltReason::kBadInstruction; return;
      }
      if (take) next_pc = pc_ + static_cast<std::uint32_t>(off);
      break;
    }
    case 0x03: {  // loads
      const std::uint32_t addr = a + static_cast<std::uint32_t>(sext(inst >> 20, 12));
      unsigned size = 0;
      switch (funct3) {
        case 0: case 4: size = 1; break;  // LB/LBU
        case 1: case 5: size = 2; break;  // LH/LHU
        case 2: size = 4; break;          // LW
        default: halt_ = HaltReason::kBadInstruction; return;
      }
      if ((addr & (size - 1)) != 0) {
        halt_ = HaltReason::kMisalignedAccess;
        return;
      }
      std::uint32_t v = 0;
      if (!bus_->try_load(addr, size, v)) {
        halt_ = HaltReason::kUnmappedAccess;
        return;
      }
      switch (funct3) {
        case 0: wr(static_cast<std::uint32_t>(sext(v, 8))); break;   // LB
        case 1: wr(static_cast<std::uint32_t>(sext(v, 16))); break;  // LH
        default: wr(v); break;                                       // LW/LBU/LHU
      }
      break;
    }
    case 0x23: {  // stores
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1f);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(sext(imm, 12));
      unsigned size = 0;
      switch (funct3) {
        case 0: size = 1; break;  // SB
        case 1: size = 2; break;  // SH
        case 2: size = 4; break;  // SW
        default: halt_ = HaltReason::kBadInstruction; return;
      }
      if ((addr & (size - 1)) != 0) {
        halt_ = HaltReason::kMisalignedAccess;
        return;
      }
      if (!bus_->try_store(addr, size, b)) {
        halt_ = HaltReason::kUnmappedAccess;
        return;
      }
      break;
    }
    case 0x13: {  // OP-IMM
      const std::int32_t imm = sext(inst >> 20, 12);
      const std::uint32_t ui = static_cast<std::uint32_t>(imm);
      const unsigned sh = rs2;  // shamt
      switch (funct3) {
        case 0: wr(a + ui); break;                                                     // ADDI
        case 2: wr(static_cast<std::int32_t>(a) < imm ? 1 : 0); break;                 // SLTI
        case 3: wr(a < ui ? 1 : 0); break;                                             // SLTIU
        case 4: wr(a ^ ui); break;                                                     // XORI
        case 6: wr(a | ui); break;                                                     // ORI
        case 7: wr(a & ui); break;                                                     // ANDI
        case 1: wr(a << sh); break;                                                    // SLLI
        case 5:
          if ((funct7 & 0x20) != 0) {
            wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> sh));        // SRAI
          } else {
            wr(a >> sh);                                                               // SRLI
          }
          break;
        default: halt_ = HaltReason::kBadInstruction; return;
      }
      break;
    }
    case 0x33: {  // OP
      if (funct7 == 0x01) {  // M extension
        const std::int64_t sa = static_cast<std::int32_t>(a);
        const std::int64_t sb = static_cast<std::int32_t>(b);
        const std::uint64_t ua = a;
        const std::uint64_t ub = b;
        switch (funct3) {
          case 0: wr(a * b); break;                                                    // MUL
          case 1: wr(static_cast<std::uint32_t>((sa * sb) >> 32)); break;              // MULH
          case 2: wr(static_cast<std::uint32_t>((sa * static_cast<std::int64_t>(ub)) >> 32)); break;  // MULHSU
          case 3: wr(static_cast<std::uint32_t>((ua * ub) >> 32)); break;              // MULHU
          case 4:                                                                      // DIV
            if (b == 0) {
              wr(0xffffffffu);
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              wr(0x80000000u);
            } else {
              wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) /
                                            static_cast<std::int32_t>(b)));
            }
            break;
          case 5: wr(b == 0 ? 0xffffffffu : a / b); break;                             // DIVU
          case 6:                                                                      // REM
            if (b == 0) {
              wr(a);
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              wr(0);
            } else {
              wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) %
                                            static_cast<std::int32_t>(b)));
            }
            break;
          case 7: wr(b == 0 ? a : a % b); break;                                       // REMU
          default: halt_ = HaltReason::kBadInstruction; return;
        }
      } else {
        switch (funct3) {
          case 0: wr((funct7 & 0x20) != 0 ? a - b : a + b); break;                     // ADD/SUB
          case 1: wr(a << (b & 0x1f)); break;                                          // SLL
          case 2: wr(static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1 : 0); break;  // SLT
          case 3: wr(a < b ? 1 : 0); break;                                            // SLTU
          case 4: wr(a ^ b); break;                                                    // XOR
          case 5:
            if ((funct7 & 0x20) != 0) {
              wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 0x1f)));  // SRA
            } else {
              wr(a >> (b & 0x1f));                                                     // SRL
            }
            break;
          case 6: wr(a | b); break;                                                    // OR
          case 7: wr(a & b); break;                                                    // AND
          default: halt_ = HaltReason::kBadInstruction; return;
        }
      }
      break;
    }
    case 0x0f:  // FENCE — no-op in a single-core in-order model
      break;
    case 0x73:  // SYSTEM
      if (inst == 0x00000073) {
        halt_ = HaltReason::kEcall;
      } else if (inst == 0x00100073) {
        halt_ = HaltReason::kEbreak;
      } else {
        halt_ = HaltReason::kBadInstruction;
      }
      return;
    default:
      halt_ = HaltReason::kBadInstruction;
      return;
  }
  pc_ = next_pc;
}

}  // namespace hhpim::riscv
