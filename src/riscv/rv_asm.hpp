// Two-pass RV32IM assembler for the benchmark/driver programs.
//
// Supports the full RV32IM instruction set, labels ("loop:"), decimal/hex
// immediates, ABI and numeric register names, `%lo(label)`-free absolute
// addressing via the `li` pseudo-instruction, and the pseudo-instructions
// li, mv, j, jr, ret, nop, beqz, bnez, call (jal ra).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hhpim::riscv {

struct RvAsmError {
  std::size_t line;
  std::string message;
};

using RvAsmResult = std::variant<std::vector<std::uint32_t>, RvAsmError>;

/// Assembles at base address `origin` (labels resolve to absolute addresses).
[[nodiscard]] RvAsmResult assemble_rv32(std::string_view source, std::uint32_t origin = 0);

/// Parses a register name ("x5", "t0", "sp", ...) to its index; -1 if invalid.
[[nodiscard]] int parse_register(std::string_view name);

}  // namespace hhpim::riscv
