#include "riscv/decode.hpp"

namespace hhpim::riscv {
namespace {

std::int32_t sext(std::uint32_t v, unsigned bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return static_cast<std::int32_t>((v ^ m) - m);
}

/// Destination write slot: x0 writes go to the scratch slot 32.
std::uint8_t wslot(std::uint32_t inst) {
  const std::uint8_t rd = static_cast<std::uint8_t>((inst >> 7) & 0x1f);
  return rd == 0 ? 32 : rd;
}

DecodedOp make(OpKind kind, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2,
               std::int32_t imm) {
  DecodedOp op;
  op.kind = kind;
  op.rd = rd;
  op.rs1 = rs1;
  op.rs2 = rs2;
  op.imm = imm;
  return op;
}

}  // namespace

DecodedOp decode_rv32(std::uint32_t inst) {
  const std::uint32_t opcode = inst & 0x7f;
  const std::uint8_t rd = wslot(inst);
  const std::uint8_t rs1 = static_cast<std::uint8_t>((inst >> 15) & 0x1f);
  const std::uint8_t rs2 = static_cast<std::uint8_t>((inst >> 20) & 0x1f);
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t funct7 = (inst >> 25) & 0x7f;

  switch (opcode) {
    case 0x37:  // LUI
      return make(OpKind::kLui, rd, 0, 0,
                  static_cast<std::int32_t>(inst & 0xfffff000u));
    case 0x17:  // AUIPC
      return make(OpKind::kAuipc, rd, 0, 0,
                  static_cast<std::int32_t>(inst & 0xfffff000u));
    case 0x6f: {  // JAL
      const std::uint32_t imm = ((inst >> 31) << 20) |
                                (((inst >> 12) & 0xff) << 12) |
                                (((inst >> 20) & 1) << 11) |
                                (((inst >> 21) & 0x3ff) << 1);
      return make(OpKind::kJal, rd, 0, 0, sext(imm, 21));
    }
    case 0x67:  // JALR
      if (funct3 != 0) break;
      return make(OpKind::kJalr, rd, rs1, 0, sext(inst >> 20, 12));
    case 0x63: {  // branches
      const std::uint32_t imm = ((inst >> 31) << 12) | (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3f) << 5) |
                                (((inst >> 8) & 0xf) << 1);
      const std::int32_t off = sext(imm, 13);
      switch (funct3) {
        case 0: return make(OpKind::kBeq, 32, rs1, rs2, off);
        case 1: return make(OpKind::kBne, 32, rs1, rs2, off);
        case 4: return make(OpKind::kBlt, 32, rs1, rs2, off);
        case 5: return make(OpKind::kBge, 32, rs1, rs2, off);
        case 6: return make(OpKind::kBltu, 32, rs1, rs2, off);
        case 7: return make(OpKind::kBgeu, 32, rs1, rs2, off);
        default: break;
      }
      break;
    }
    case 0x03: {  // loads
      const std::int32_t imm = sext(inst >> 20, 12);
      switch (funct3) {
        case 0: return make(OpKind::kLb, rd, rs1, 0, imm);
        case 1: return make(OpKind::kLh, rd, rs1, 0, imm);
        case 2: return make(OpKind::kLw, rd, rs1, 0, imm);
        case 4: return make(OpKind::kLbu, rd, rs1, 0, imm);
        case 5: return make(OpKind::kLhu, rd, rs1, 0, imm);
        default: break;
      }
      break;
    }
    case 0x23: {  // stores
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1f);
      const std::int32_t off = sext(imm, 12);
      switch (funct3) {
        case 0: return make(OpKind::kSb, 32, rs1, rs2, off);
        case 1: return make(OpKind::kSh, 32, rs1, rs2, off);
        case 2: return make(OpKind::kSw, 32, rs1, rs2, off);
        default: break;
      }
      break;
    }
    case 0x13: {  // OP-IMM
      const std::int32_t imm = sext(inst >> 20, 12);
      switch (funct3) {
        case 0: return make(OpKind::kAddi, rd, rs1, 0, imm);
        case 2: return make(OpKind::kSlti, rd, rs1, 0, imm);
        case 3: return make(OpKind::kSltiu, rd, rs1, 0, imm);
        case 4: return make(OpKind::kXori, rd, rs1, 0, imm);
        case 6: return make(OpKind::kOri, rd, rs1, 0, imm);
        case 7: return make(OpKind::kAndi, rd, rs1, 0, imm);
        case 1: return make(OpKind::kSlli, rd, rs1, 0, static_cast<std::int32_t>(rs2));
        case 5:
          return make((funct7 & 0x20) != 0 ? OpKind::kSrai : OpKind::kSrli, rd,
                      rs1, 0, static_cast<std::int32_t>(rs2));
        default: break;
      }
      break;
    }
    case 0x33: {  // OP
      if (funct7 == 0x01) {  // M extension
        switch (funct3) {
          case 0: return make(OpKind::kMul, rd, rs1, rs2, 0);
          case 1: return make(OpKind::kMulh, rd, rs1, rs2, 0);
          case 2: return make(OpKind::kMulhsu, rd, rs1, rs2, 0);
          case 3: return make(OpKind::kMulhu, rd, rs1, rs2, 0);
          case 4: return make(OpKind::kDiv, rd, rs1, rs2, 0);
          case 5: return make(OpKind::kDivu, rd, rs1, rs2, 0);
          case 6: return make(OpKind::kRem, rd, rs1, rs2, 0);
          case 7: return make(OpKind::kRemu, rd, rs1, rs2, 0);
          default: break;
        }
        break;
      }
      switch (funct3) {
        case 0:
          return make((funct7 & 0x20) != 0 ? OpKind::kSub : OpKind::kAdd, rd,
                      rs1, rs2, 0);
        case 1: return make(OpKind::kSll, rd, rs1, rs2, 0);
        case 2: return make(OpKind::kSlt, rd, rs1, rs2, 0);
        case 3: return make(OpKind::kSltu, rd, rs1, rs2, 0);
        case 4: return make(OpKind::kXor, rd, rs1, rs2, 0);
        case 5:
          return make((funct7 & 0x20) != 0 ? OpKind::kSra : OpKind::kSrl, rd,
                      rs1, rs2, 0);
        case 6: return make(OpKind::kOr, rd, rs1, rs2, 0);
        case 7: return make(OpKind::kAnd, rd, rs1, rs2, 0);
        default: break;
      }
      break;
    }
    case 0x0f:  // FENCE — no-op in a single-core in-order model
      return make(OpKind::kFence, 32, 0, 0, 0);
    case 0x73:  // SYSTEM
      if (inst == 0x00000073u) return make(OpKind::kEcall, 32, 0, 0, 0);
      if (inst == 0x00100073u) return make(OpKind::kEbreak, 32, 0, 0, 0);
      break;
    default:
      break;
  }
  return make(OpKind::kIllegal, 32, 0, 0, 0);
}

OpClass class_of(OpKind kind) {
  switch (kind) {
    case OpKind::kLb: case OpKind::kLh: case OpKind::kLw:
    case OpKind::kLbu: case OpKind::kLhu:
      return OpClass::kLoad;
    case OpKind::kSb: case OpKind::kSh: case OpKind::kSw:
      return OpClass::kStore;
    case OpKind::kBeq: case OpKind::kBne: case OpKind::kBlt:
    case OpKind::kBge: case OpKind::kBltu: case OpKind::kBgeu:
      return OpClass::kBranch;
    case OpKind::kJal: case OpKind::kJalr:
      return OpClass::kJump;
    case OpKind::kMul: case OpKind::kMulh: case OpKind::kMulhsu:
    case OpKind::kMulhu:
      return OpClass::kMul;
    case OpKind::kDiv: case OpKind::kDivu: case OpKind::kRem:
    case OpKind::kRemu:
      return OpClass::kDiv;
    case OpKind::kFence: case OpKind::kEcall: case OpKind::kEbreak:
    case OpKind::kIllegal:
      return OpClass::kSystem;
    default:
      return OpClass::kAlu;
  }
}

bool ends_block(OpKind kind) {
  switch (kind) {
    case OpKind::kJal: case OpKind::kJalr:
    case OpKind::kBeq: case OpKind::kBne: case OpKind::kBlt:
    case OpKind::kBge: case OpKind::kBltu: case OpKind::kBgeu:
    case OpKind::kEcall: case OpKind::kEbreak: case OpKind::kIllegal:
      return true;
    default:
      return false;
  }
}

}  // namespace hhpim::riscv
