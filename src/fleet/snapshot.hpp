// Fleet checkpoint/restore: a FleetSnapshot is the whole fleet's state at a
// global slice boundary, serialized with common/serialize ByteWriter/Reader
// into a versioned, field-tagged, checksummed binary blob.
//
// Produced by FleetSimulator::run_to and consumed by run_to/resume: a
// simulated week can run as N resumable segments — across process restarts
// — whose concatenated output (JSONL shards, summary, FleetResult) is
// byte-identical to one uninterrupted run at any thread count (pinned by
// tests/test_snapshot.cpp). The format fails loudly: truncated, corrupted,
// version-skewed or wrong-spec blobs all throw std::runtime_error with a
// diagnostic — a snapshot is never silently misread.
//
// What is NOT stored: load traces (regenerated from the spec — exact),
// LUT-cache contents (rebuilt per process; lut_builds stats stay correct
// via the counted-pair list below), and OutcomeCache contents (segments run
// the exact path, which the memo path is byte-identical to by invariant).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/device.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim::fleet {

struct FleetSnapshot {
  /// FleetSpec::content_digest() of the originating run; run_to/resume
  /// refuse a snapshot whose digest does not match the spec they're given.
  std::uint64_t spec_digest = 0;
  /// First global slice the next segment executes (== the `end_slice` the
  /// producing run_to was given).
  int next_slice = 0;
  /// LUT builds counted so far across segments, and the LUT-cache keys
  /// already accounted — so a (firmware, model) pair first active in a
  /// later segment, or a rebuild after a process restart, is never
  /// double-counted into the summary's lut_builds (which counts *logical*
  /// builds of the whole segmented run, matching what one uninterrupted
  /// run would have measured).
  std::uint64_t lut_builds = 0;
  std::vector<placement::LutCacheKey> lut_counted;
  /// One entry per device, in id order (devices not yet joined included,
  /// with started == false).
  std::vector<DeviceProgress> devices;

  /// Serializes to the versioned binary format (magic, version, tagged
  /// payload, trailing FNV-1a checksum).
  [[nodiscard]] std::string to_bytes() const;

  /// Parses to_bytes() output. Throws std::runtime_error on a bad magic, a
  /// version newer than this build supports, a checksum mismatch, a
  /// truncated stream, or an unknown field tag.
  [[nodiscard]] static FleetSnapshot from_bytes(std::string_view bytes);

  /// to_bytes()/from_bytes() through a file. Throw std::runtime_error on
  /// I/O failure.
  void save(const std::string& path) const;
  [[nodiscard]] static FleetSnapshot load(const std::string& path);
};

}  // namespace hhpim::fleet
