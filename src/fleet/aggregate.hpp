// Fleet-wide online aggregates, mergeable across shards.
//
// Each worker accumulates one FleetAggregate per shard while its devices
// run; the simulator merges the shard aggregates in shard-index order after
// the pool joins. Histogram merges are exact (bin-wise integer adds), and
// Summary merges happen in the fixed shard order, so the merged aggregate
// is byte-identical at any thread count — the same invariant exp::Runner
// gives per-run results.
//
// Units: busy fractions are slice busy time / slice length T (dimensionless,
// robust across devices with different models and hence different T);
// energies are millijoules. Quantiles come from sim::Histogram::quantile
// (linear within a bin) — resolution is set by AggregateShape, which must be
// identical across everything merged (enforced by Histogram::merge).
#pragma once

#include <cstdint>

#include "fleet/spec.hpp"
#include "sim/stats.hpp"

namespace hhpim::fleet {

struct DeviceResult;  // fleet/device.hpp

class FleetAggregate {
 public:
  explicit FleetAggregate(const AggregateShape& shape = {});

  /// Accounts one executed slice. `busy_frac` = busy time / T;
  /// `busy_time_us` = the same busy time in microseconds (absolute);
  /// `energy_mj` = everything the slice charged, in millijoules.
  void add_slice(double busy_frac, double busy_time_us, double energy_mj);

  /// Accounts one finished device (its counters and totals).
  void add_device(const DeviceResult& r);

  /// Adds `other` into this aggregate. Shapes must match (throws
  /// std::invalid_argument via Histogram::merge otherwise). Summary merges
  /// are order-sensitive in the last floating-point bit — merge shards in a
  /// fixed order for reproducible output (the simulator does).
  void merge(const FleetAggregate& other);

  // --- fleet counters -------------------------------------------------------
  std::uint64_t devices = 0;
  std::uint64_t executed_slices = 0;      ///< slices actually run (incl. drain)
  std::uint64_t tasks = 0;
  std::uint64_t tasks_dropped = 0;        ///< arrived after a battery died
  std::uint64_t deadline_violations = 0;
  std::uint64_t exhausted_devices = 0;
  std::uint64_t mode_switches = 0;
  std::uint64_t low_power_slices = 0;
  std::uint64_t host_cycles = 0;          ///< RISC-V host cycles (0 = no host)

  // --- distributions --------------------------------------------------------
  sim::Summary device_energy_mj;  ///< per-device total energy, millijoules
  sim::Summary final_soc;         ///< per-device battery SoC at run end
  sim::Summary busy_us;           ///< per-slice busy time, microseconds

  [[nodiscard]] const sim::Histogram& busy_frac_hist() const { return busy_frac_; }
  [[nodiscard]] const sim::Histogram& slice_energy_hist() const { return energy_; }

  /// Fleet-wide slice-latency quantile, in fractions of the slice length T
  /// (q in [0, 1]; e.g. 0.99 -> p99).
  [[nodiscard]] double busy_frac_quantile(double q) const {
    return busy_frac_.quantile(q);
  }
  /// Fleet-wide per-slice energy quantile, millijoules.
  [[nodiscard]] double slice_energy_mj_quantile(double q) const {
    return energy_.quantile(q);
  }

 private:
  sim::Histogram busy_frac_;
  sim::Histogram energy_;
};

}  // namespace hhpim::fleet
