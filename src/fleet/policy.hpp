// Online battery-driven placement adaptation — the per-device control loop
// of the fleet simulator.
//
// The paper's HH-PIM optimizes placement *within* a power mode: every slice
// the LUT picks the minimum-energy allocation meeting t_constraint (§III-B).
// The fleet layer closes the loop one level up: a device watches its battery
// state of charge (SoC) and switches the whole placement *mode* —
//
//   kDynamic   : the HH-PIM LUT policy, adapting placement per slice;
//   kLowPower  : a pinned MRAM-balanced placement (every SRAM bank
//                power-gated; sys::balanced_mram_split), slower but with
//                minimum leakage — what an edge device does when the battery
//                runs low.
//
// The switch uses hysteresis: at or below `low_soc` the device drops to
// kLowPower; it returns to kDynamic only at or above `high_soc`. Exact
// threshold hits switch (<=, >=), so a device sitting precisely on the
// threshold behaves deterministically.
//
// All methods are O(1); instances are per-device and not thread-safe.
#pragma once

#include <cstdint>

namespace hhpim::fleet {

enum class DeviceMode : std::uint8_t { kDynamic = 0, kLowPower };

[[nodiscard]] const char* to_string(DeviceMode m);

/// Which point of a LUT entry's Pareto frontier an SLO-aware device pins
/// (placement/pareto.hpp; only meaningful when DeviceSpec::latency_slo_ps is
/// set). Numeric values are part of the SliceOutcomeKey encoding — append
/// only.
enum class FrontierTier : std::uint8_t {
  kBalanced = 0,     ///< min energy subject to the SLO (the frontier anchor)
  kPerformance = 1,  ///< min latency — battery is rich, buy headroom
  kSaver = 2,        ///< min energy outright — SLO waived for battery survival
};

[[nodiscard]] const char* to_string(FrontierTier t);

struct AdaptiveThresholds {
  /// SoC at or below which the device pins the low-power static placement.
  double low_soc = 0.30;
  /// SoC at or above which it resumes dynamic HH-PIM placement. Must be
  /// >= low_soc (equal thresholds are allowed: zero hysteresis).
  double high_soc = 0.50;
};

/// The frontier tier for one slice, from the hysteresis mode and the SoC
/// observed at the slice boundary. Pure — Device::run_steps and the fleet
/// simulator's SoA replay mirror call this same function, which is what
/// keeps memo replays byte-identical to the exact path:
///   kSaver        iff mode == kLowPower (inherits the mode hysteresis);
///   kPerformance  iff soc >= high_soc (exact threshold, like update());
///   kBalanced     otherwise.
[[nodiscard]] FrontierTier select_tier(DeviceMode mode, double soc,
                                       const AdaptiveThresholds& thresholds);

/// SoC-threshold mode controller with hysteresis. Feed it the SoC observed
/// at each slice boundary; it returns the mode the coming slice should run
/// in and counts transitions.
class AdaptivePolicy {
 public:
  /// Throws std::invalid_argument unless 0 <= low_soc <= high_soc <= 1.
  explicit AdaptivePolicy(AdaptiveThresholds thresholds);

  /// Advances the controller with the SoC in [0, 1] observed now; returns
  /// the mode for the next slice.
  DeviceMode update(double soc);

  [[nodiscard]] DeviceMode mode() const { return mode_; }
  /// Number of mode transitions so far (either direction).
  [[nodiscard]] std::uint32_t switches() const { return switches_; }

  /// Checkpoint restore: resumes the controller mid-run with the mode and
  /// transition count captured by a prior mode()/switches() read.
  void restore(DeviceMode mode, std::uint32_t switches) {
    mode_ = mode;
    switches_ = switches;
  }

 private:
  AdaptiveThresholds thresholds_;
  DeviceMode mode_ = DeviceMode::kDynamic;
  std::uint32_t switches_ = 0;
};

}  // namespace hhpim::fleet
