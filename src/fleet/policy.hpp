// Online battery-driven placement adaptation — the per-device control loop
// of the fleet simulator.
//
// The paper's HH-PIM optimizes placement *within* a power mode: every slice
// the LUT picks the minimum-energy allocation meeting t_constraint (§III-B).
// The fleet layer closes the loop one level up: a device watches its battery
// state of charge (SoC) and switches the whole placement *mode* —
//
//   kDynamic   : the HH-PIM LUT policy, adapting placement per slice;
//   kLowPower  : a pinned MRAM-balanced placement (every SRAM bank
//                power-gated; sys::balanced_mram_split), slower but with
//                minimum leakage — what an edge device does when the battery
//                runs low.
//
// The switch uses hysteresis: at or below `low_soc` the device drops to
// kLowPower; it returns to kDynamic only at or above `high_soc`. Exact
// threshold hits switch (<=, >=), so a device sitting precisely on the
// threshold behaves deterministically.
//
// All methods are O(1); instances are per-device and not thread-safe.
#pragma once

#include <cstdint>

namespace hhpim::fleet {

enum class DeviceMode : std::uint8_t { kDynamic = 0, kLowPower };

[[nodiscard]] const char* to_string(DeviceMode m);

struct AdaptiveThresholds {
  /// SoC at or below which the device pins the low-power static placement.
  double low_soc = 0.30;
  /// SoC at or above which it resumes dynamic HH-PIM placement. Must be
  /// >= low_soc (equal thresholds are allowed: zero hysteresis).
  double high_soc = 0.50;
};

/// SoC-threshold mode controller with hysteresis. Feed it the SoC observed
/// at each slice boundary; it returns the mode the coming slice should run
/// in and counts transitions.
class AdaptivePolicy {
 public:
  /// Throws std::invalid_argument unless 0 <= low_soc <= high_soc <= 1.
  explicit AdaptivePolicy(AdaptiveThresholds thresholds);

  /// Advances the controller with the SoC in [0, 1] observed now; returns
  /// the mode for the next slice.
  DeviceMode update(double soc);

  [[nodiscard]] DeviceMode mode() const { return mode_; }
  /// Number of mode transitions so far (either direction).
  [[nodiscard]] std::uint32_t switches() const { return switches_; }

  /// Checkpoint restore: resumes the controller mid-run with the mode and
  /// transition count captured by a prior mode()/switches() read.
  void restore(DeviceMode mode, std::uint32_t switches) {
    mode_ = mode;
    switches_ = switches;
  }

 private:
  AdaptiveThresholds thresholds_;
  DeviceMode mode_ = DeviceMode::kDynamic;
  std::uint32_t switches_ = 0;
};

}  // namespace hhpim::fleet
