#include "fleet/outcome_cache.hpp"

namespace hhpim::fleet {

const SliceOutcome* OutcomeCache::lookup(const SliceOutcomeKey& key) {
  const ReadyMap* snap = ready_.load(std::memory_order_acquire);
  if (snap != nullptr) {
    const auto it = snap->find(key);
    if (it != snap->end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void OutcomeCache::insert_batch(
    const std::vector<std::pair<SliceOutcomeKey, SliceOutcome>>& entries) {
  if (entries.empty()) return;
  const std::lock_guard<std::mutex> lock{mu_};
  const ReadyMap* cur = ready_.load(std::memory_order_relaxed);

  // Cheap pre-check against the current snapshot: a shard re-recording a
  // device whose keys all landed already (racing fallbacks, repeated runs
  // against a warm cache) skips the copy-on-write entirely.
  bool any_new = cur == nullptr;
  if (!any_new) {
    for (const auto& e : entries) {
      if (cur->find(e.first) == cur->end()) {
        any_new = true;
        break;
      }
    }
  }
  if (!any_new) return;

  auto next = std::make_unique<ReadyMap>(cur != nullptr ? *cur : ReadyMap{});
  std::uint64_t inserted = 0;
  for (const auto& e : entries) {
    if (next->emplace(e.first, e.second).second) ++inserted;
  }
  if (inserted == 0) return;
  insertions_.fetch_add(inserted, std::memory_order_relaxed);
  publish_locked(std::move(next));
}

void OutcomeCache::publish_locked(std::unique_ptr<const ReadyMap> next) {
  ready_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
}

void OutcomeCache::clear() {
  const std::lock_guard<std::mutex> lock{mu_};
  // The superseded snapshot already lives in retired_; publishing null is
  // enough (readers treat it as empty).
  ready_.store(nullptr, std::memory_order_release);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
}

OutcomeCache::Stats OutcomeCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  const ReadyMap* snap = ready_.load(std::memory_order_acquire);
  s.entries = snap != nullptr ? snap->size() : 0;
  return s;
}

OutcomeCache& OutcomeCache::process_cache() {
  static OutcomeCache cache;
  return cache;
}

}  // namespace hhpim::fleet
