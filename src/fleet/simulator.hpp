// The streaming fleet simulator: N independent devices sharded across a
// fixed worker pool.
//
// Execution model (mirrors exp::Runner, at shard granularity):
//
//   * expand() derives DeviceSpecs single-threaded; devices are grouped
//     into fixed-size shards (FleetOptions::shard_size). Shard boundaries
//     depend only on the spec and options — never on the thread count.
//   * Workers claim batches of consecutive shard indices from a shared
//     atomic counter (FleetOptions::claim_batch), run each device of each
//     shard (its own Processor + Battery + policy), and accumulate one
//     FleetAggregate per shard. Shard aggregate slots are cache-line
//     aligned so sibling workers never false-share a line, and never more
//     workers than shards are spawned (resolve_workers).
//   * With FleetOptions::memoize_devices (default), a shard first advances
//     all of its devices through the device-level outcome memo
//     (fleet::OutcomeCache): per-device hot state lives in SoA lanes —
//     charge, mode, counters, the processor-state digest — and a memo hit
//     advances a lane without touching a sys::Processor at all. Devices
//     that miss (cold keys, exhaustion-boundary slices) fall back to the
//     full Device::run path, recording their outcomes for everyone after
//     them. Replayed aggregate/JSONL output is byte-identical to the
//     scalar path (see docs/PERF.md "Device-level memoization").
//   * When FleetOptions::shard_dir is set, each worker streams its shard's
//     device lines to <dir>/shard-NNNNN.jsonl as the shard completes — a
//     fleet of millions never holds all results in memory
//     (keep_results = false drops them after the shard file is written).
//   * After the pool joins, shard aggregates merge in shard-index order.
//
// Determinism: device results depend only on the DeviceSpec (loads are
// generated from its scenario config; the only shared object is the
// placement::LutCache, whose entries are immutable), shard contents depend
// only on shard index, and the merge order is fixed — so JSONL shards,
// to_jsonl() and summary_to_json() are byte-identical at any thread count.
// tests/test_fleet.cpp pins this at 1 vs 8 threads.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fleet/aggregate.hpp"
#include "fleet/device.hpp"
#include "fleet/snapshot.hpp"
#include "fleet/spec.hpp"

namespace hhpim::placement {
class LutCache;  // placement/lut_cache.hpp — only a pointer is stored here
}

namespace hhpim::fleet {

class OutcomeCache;  // fleet/outcome_cache.hpp

struct FleetOptions {
  /// Worker threads. 0 = one per hardware thread (min 1); 1 = run inline.
  unsigned threads = 0;
  /// Devices per shard: the unit of work claiming, JSONL file granularity
  /// and aggregate merging. Smaller shards balance load better; larger
  /// shards mean fewer files. Must be >= 1 (clamped).
  std::size_t shard_size = 256;
  /// Share placement LUTs across devices (devices with the same model/arch
  /// resolve to one build). Results are byte-identical with sharing on or
  /// off; only wall-clock changes.
  bool share_luts = true;
  /// Cache used when `share_luts` (not owned; must outlive the run).
  /// nullptr = the process-wide placement::LutCache::process_cache().
  placement::LutCache* lut_cache = nullptr;
  /// When non-empty: write <shard_dir>/shard-NNNNN.jsonl while the run
  /// progresses (the directory must exist; open/write failures are
  /// reported as std::runtime_error after all shards finish). Each worker
  /// formats its shard into a private memory buffer and writes the file in
  /// one call — stream handoff never blocks a sibling worker.
  std::string shard_dir;
  /// Shards claimed per atomic fetch_add (the work-claiming granularity).
  /// Larger batches cut claim traffic on the shared counter; smaller
  /// batches balance the tail. 0 = auto: ~8 claims per worker
  /// (resolve_claim_batch). Output is byte-identical at any value.
  std::size_t claim_batch = 0;
  /// Retain per-device results in FleetResult::devices. Turn off for very
  /// large fleets streamed to shard files — aggregates are kept either way.
  bool keep_results = true;
  /// Reuse sys::Processors across devices: devices sharing the fleet
  /// config and a model run on a reset() processor instead of paying
  /// CostModel::build + cluster construction each (Processor::reset ==
  /// fresh construction; pinned by tests/test_batched.cpp). Processors
  /// live in a checkout pool shared by all workers, so the number
  /// constructed is bounded by the peak per-model overlap — not by
  /// workers × models as per-worker pools would be. Results are
  /// byte-identical with reuse on or off; only wall-clock changes.
  bool reuse_processors = true;
  /// Device-level outcome memoization (fleet::OutcomeCache): devices whose
  /// per-slice (processor state, mode, load) keys are all warm replay from
  /// SoA hot-state lanes without constructing or running a Processor;
  /// misses fall back to the exact Device::run path and record for later
  /// devices. Output is byte-identical with memoization on or off at any
  /// thread count (pinned by tests/test_outcome_memo.cpp); only wall-clock
  /// changes.
  bool memoize_devices = true;
  /// Cache used when `memoize_devices` (not owned; must outlive the run).
  /// nullptr = the process-wide fleet::OutcomeCache::process_cache().
  OutcomeCache* outcome_cache = nullptr;
};

struct FleetResult {
  std::string fleet_name;
  /// Per-device results in device-id order (empty when !keep_results).
  std::vector<DeviceResult> devices;
  /// The run's model-name table: DeviceResult::model_index points in here
  /// (the FleetSpec's resolved model population, in order). Interning the
  /// name at the spec level is what keeps DeviceResult allocation-free.
  std::vector<std::string> model_names;
  FleetAggregate aggregate;
  std::size_t shard_count = 0;
  std::size_t shard_size = 0;
  /// LUT-cache economy of this run: `builds` counts LUTs actually
  /// constructed (cache-stats delta — exactly one per new key regardless of
  /// thread count), `shared` the devices whose LUT came from a shared build
  /// (devices - builds for an HH-PIM fleet with a cache; 0 otherwise).
  /// Both are deterministic at any thread count and with processor reuse on
  /// or off. builds ≪ devices is the fleet's whole economy.
  std::uint64_t lut_builds = 0;
  std::uint64_t lut_shared = 0;

  /// Device-memo economy of this run (zero when memoization is off). The
  /// replayed/exact split is deterministic at one thread; hit/miss deltas
  /// vary with worker interleaving and cache warmth — which is exactly why
  /// none of these appear in summary_to_json() (the summary must stay
  /// byte-identical at any thread count and with the memo toggled).
  std::uint64_t memo_replayed_devices = 0;  ///< advanced wholly via the memo
  std::uint64_t memo_exact_devices = 0;     ///< ran the full Device::run path
  std::uint64_t memo_hits = 0;              ///< OutcomeCache stats delta
  std::uint64_t memo_misses = 0;

  /// One compact JSON object per device, '\n'-separated (JSON Lines).
  /// Byte-identical to the concatenation of the run's shard files.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string to_jsonl() const;

  /// Fleet-wide aggregate metrics (counters, energy/SoC summaries,
  /// p50/p95/p99 of slice busy fraction and per-slice energy).
  void write_summary_json(std::ostream& os) const;
  [[nodiscard]] std::string summary_to_json() const;
};

/// Writes one device's compact JSONL line (shared by shard streaming and
/// FleetResult::write_jsonl so the bytes agree). `model_names` resolves
/// DeviceResult::model_index (FleetResult::model_names). Appends '\n'.
void write_device_line(std::ostream& os, const DeviceResult& r,
                       const std::vector<std::string>& model_names);

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetOptions options = {});

  /// Expands and executes the fleet. Propagates the first device/shard
  /// exception (other shards still complete).
  [[nodiscard]] FleetResult run(const FleetSpec& spec) const;

  /// Checkpointed execution: advances the fleet through global slices
  /// [from ? from->next_slice : 0, end_slice) and returns the fleet state
  /// at that boundary. `end_slice` must lie in (start, spec.slices]; the
  /// trailing drain slices belong to the final segment (resume). Segments
  /// run the exact Device path (to which the memo path is byte-identical),
  /// buffering per-slice aggregate samples in the snapshot; no JSONL or
  /// aggregates are produced until resume(). The snapshot is pinned to
  /// FleetSpec::content_digest() — run_to/resume throw std::runtime_error
  /// on a digest mismatch, std::invalid_argument on a bad window.
  [[nodiscard]] FleetSnapshot run_to(const FleetSpec& spec, int end_slice,
                                     const FleetSnapshot* from = nullptr) const;

  /// Final segment: resumes `from` and runs every device to completion
  /// (remaining arrival slices plus the drain slices). The FleetResult —
  /// devices, aggregate, JSONL shard files, summary JSON, lut_builds/
  /// lut_shared — is byte-identical to run() on the same spec and options
  /// at any thread count (memo_* stats are 0: segments bypass the outcome
  /// memo, whose output the exact path equals by invariant).
  [[nodiscard]] FleetResult resume(const FleetSpec& spec,
                                   const FleetSnapshot& from) const;

  [[nodiscard]] const FleetOptions& options() const { return options_; }
  /// The cache this run will use (nullptr when sharing is off).
  [[nodiscard]] placement::LutCache* resolve_lut_cache() const;
  /// The device-outcome memo this run will use (nullptr when memoization
  /// is off).
  [[nodiscard]] OutcomeCache* resolve_outcome_cache() const;
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);
  /// Workers actually spawned for a `requested` thread count over `shards`
  /// shards: min(resolve_threads(requested), shards), at least 1. Surplus
  /// workers would only contend on the claim counter and error mutex.
  [[nodiscard]] static unsigned resolve_workers(unsigned requested,
                                                std::size_t shards);
  /// The shard-claim batch a `requested` FleetOptions::claim_batch value
  /// resolves to: the request itself, or for 0 (auto) the largest batch
  /// that still gives every worker ~8 claims (min 1).
  [[nodiscard]] static std::size_t resolve_claim_batch(std::size_t requested,
                                                       std::size_t shards,
                                                       unsigned workers);

 private:
  /// Shared engine of run_to/resume: one segment over global slices
  /// [from ? from->next_slice : 0, end_slice), or to completion when
  /// `final_out` is non-null (end_slice ignored). Returns the end-of-
  /// segment snapshot (meaningless for the final segment).
  FleetSnapshot run_segment(const FleetSpec& spec, int end_slice,
                            const FleetSnapshot* from,
                            FleetResult* final_out) const;

  FleetOptions options_;
};

}  // namespace hhpim::fleet
