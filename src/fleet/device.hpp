// One simulated edge device: a sys::Processor + energy::Battery +
// fleet::AdaptivePolicy executing its per-device request stream.
//
// The device runs the slice protocol of sys::Processor::run_scenario
// (arrivals in slice k execute in slice k+1, one trailing drain slice), but
// drives it slice by slice so the battery and the adaptation loop sit in
// the middle:
//
//   per slice boundary:
//     1. observe battery SoC -> AdaptivePolicy::update
//     2. kLowPower  -> Processor::set_placement_override(MRAM-balanced)
//        kDynamic   -> clear the override (HH-PIM LUT placement resumes)
//     3. run the slice, drain the slice's energy from the battery
//     4. battery hit zero mid-slice -> record exhaustion, stop; arrivals
//        that never executed are counted as dropped
//
// Devices are strictly single-threaded and share no mutable state; the only
// cross-device object is the placement::LutCache (immutable entries), which
// is what makes a fleet of thousands cheap: devices with the same model and
// arch resolve to the same LUT build.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "energy/battery.hpp"
#include "fleet/policy.hpp"
#include "fleet/spec.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"

namespace hhpim::placement {
class LutCache;  // placement/lut_cache.hpp — only a pointer is passed through
}

namespace hhpim::fleet {

class FleetAggregate;   // fleet/aggregate.hpp
struct OutcomeRecorder;  // fleet/outcome_cache.hpp

/// Everything one device run produces; one JSONL line each (the schema is
/// documented in docs/FLEET.md). Times are picoseconds, energies picojoules
/// (matching exp::RunResult); SoC is in [0, 1]. Model and scenario are
/// interned — `model_index` points into FleetResult::model_names (the
/// FleetSpec's resolved model table) and `scenario` is the enum; both
/// resolve to strings only at JSONL-write time, so a million DeviceResults
/// carry no per-device string allocations.
struct DeviceResult {
  std::uint32_t id = 0;
  std::uint32_t model_index = 0;
  workload::Scenario scenario = workload::Scenario::kLowConstant;
  std::uint64_t seed = 0;
  std::int64_t slice_ps = 0;           ///< the device's slice length T

  int slices_total = 0;                ///< planned slices incl. the drain slice
  int slices_executed = 0;             ///< actually run (< total if exhausted)
  std::uint64_t tasks = 0;
  std::uint64_t tasks_dropped = 0;     ///< arrived but never executed
  std::uint64_t deadline_violations = 0;

  double energy_pj = 0.0;              ///< total drained from the battery
  double battery_capacity_pj = 0.0;
  double final_soc = 0.0;
  int exhausted_at_slice = -1;         ///< slice whose drain hit zero; -1 = never

  std::uint32_t mode_switches = 0;
  int low_power_slices = 0;            ///< slices run under the pinned placement

  std::int64_t busy_time_ps = 0;       ///< sum of per-slice busy times
  std::int64_t max_busy_ps = 0;        ///< worst slice
  std::int64_t movement_time_ps = 0;   ///< sum of per-slice movement overheads

  // SLO-aware frontier policy (zero / absent from JSONL when the device has
  // no SLO — docs/PARETO.md).
  std::int64_t latency_slo_ps = 0;     ///< DeviceSpec::latency_slo_ps echo
  std::uint32_t tier_switches = 0;     ///< frontier-tier transitions

  /// RISC-V host cycles retired across all slices (zero / absent from JSONL
  /// unless the firmware enables SystemConfig::host — docs/RISCV.md).
  std::uint64_t host_cycles = 0;
};

/// One device's resumable mid-run state — what a FleetSnapshot stores per
/// device. Captures everything Device::run_steps needs to continue at step
/// `next_k` and still produce byte-identical output: the partial
/// DeviceResult, the policy/battery state, the processor checkpoint blob
/// (Processor::save_state), and the per-slice aggregate samples buffered
/// until the final segment (histogram insertion order is device-major and
/// must not interleave with other devices until the whole stream is known).
struct DeviceProgress {
  DeviceResult result;
  int next_k = 0;           ///< next local step (slice) to execute
  bool started = false;     ///< start_progress() ran; result header is valid
  bool done = false;        ///< stream complete (drained, left, or exhausted)
  std::uint8_t mode = 0;    ///< AdaptivePolicy mode (DeviceMode)
  std::uint32_t switches = 0;
  std::uint8_t tier = 255;  ///< FrontierTier applied (255 = none yet; SLO only)
  int buffered = 0;         ///< arrivals awaiting execution in the next slice
  double charge_pj = 0.0;   ///< exact battery charge bits
  std::vector<std::int64_t> sample_busy_ps;  ///< per executed slice
  std::vector<double> sample_energy_pj;      ///< requested (pre-clamp) energy
  std::string proc_state;   ///< Processor::save_state blob (live devices only)
};

class Device {
 public:
  /// `model` must be fleet.resolved_models()[spec.model_index] (the caller
  /// resolves once per run, not once per device); `lut_cache` may be null
  /// (private LUT build). The Processor is constructed here — with a cache,
  /// construction is cheap for every device after the first per model.
  Device(const FleetSpec& fleet, const DeviceSpec& spec, const nn::Model& model,
         placement::LutCache* lut_cache);

  /// Processor-reuse variant (FleetOptions::reuse_processors): runs on
  /// `proc`, a pooled processor built from the same (fleet config, model)
  /// pair, already reset() by the caller. `proc` must outlive the Device.
  /// Results are bit-identical to the owning constructor (reset ==
  /// fresh construction; pinned by tests/test_batched.cpp).
  Device(const FleetSpec& fleet, const DeviceSpec& spec, const nn::Model& model,
         sys::Processor& proc);

  /// Executes the device's whole stream (loads materialized from the spec
  /// with the fleet's envelope applied). Per-slice samples are accumulated
  /// into `agg` (may be null). Call once.
  DeviceResult run(FleetAggregate* agg);

  /// Same, with the load trace precomputed by the caller (`loads` must
  /// equal device_loads(spec) with the fleet envelope applied) and optional
  /// outcome recording: when `recorder` is non-null, every executed slice
  /// appends one (SliceOutcomeKey, SliceOutcome) pair chained through
  /// Processor::state_digest() — the exact-path side of the fleet's
  /// device-level memo (recorder->reuse_key must be the processor's
  /// sys::processor_reuse_key). Recording changes wall-clock only, never
  /// the result. Call once.
  DeviceResult run(FleetAggregate* agg, const std::vector<int>& loads,
                   OutcomeRecorder* recorder);

  // --- segmented execution (fleet checkpoint/restore) ----------------------
  // A whole run is: start_progress once, then run_steps in one or more
  // [next_k, k_end) windows — capture_progress / restore_progress (plus a
  // fresh Device on a reset processor) between windows — until run_steps
  // returns true. The step sequence executed this way is instruction-for-
  // instruction the one run() executes, so output stays byte-identical.

  /// True when the device stays to the horizon and runs the trailing drain
  /// slice; a device leaving early drops its final buffer instead.
  [[nodiscard]] bool has_drain() const;

  /// Steps of this device's whole stream: loads.size() + 1 drain slice for
  /// horizon devices, loads.size() for early leavers.
  [[nodiscard]] int total_steps(const std::vector<int>& loads) const;

  /// Fills p.result's identity/header fields and p's initial lane state
  /// from this (fresh) device. Call exactly once per device stream.
  void start_progress(DeviceProgress& p, const std::vector<int>& loads) const;

  /// Resumes a prior capture_progress onto this device, whose processor
  /// must be fresh/reset() and built from the same reuse key.
  void restore_progress(const DeviceProgress& p);

  /// Captures policy/battery/processor state so a later restore_progress
  /// continues the stream exactly. Only valid between run_steps windows.
  void capture_progress(DeviceProgress& p) const;

  /// Executes local steps [p.next_k, min(k_end, total_steps)) and updates
  /// p. Returns true when the stream completed (drained, left early, or
  /// exhausted). With `agg` non-null, samples post directly; with
  /// `buffer_samples`, they append to p's sample vectors instead (segmented
  /// runs — replayed into the aggregate by the final segment).
  bool run_steps(DeviceProgress& p, const std::vector<int>& loads, int k_end,
                 FleetAggregate* agg, OutcomeRecorder* recorder,
                 bool buffer_samples = false);

  /// The SystemConfig a device of `fleet` runs under: the device's firmware
  /// entry with the simulator-resolved LUT cache plugged in. What both
  /// constructors build from — exposed so FleetSimulator's processor pool
  /// constructs identical processors.
  [[nodiscard]] static sys::SystemConfig device_config(
      const FleetSpec& fleet, const DeviceSpec& spec,
      placement::LutCache* lut_cache);

  /// Single-firmware convenience (firmware entry 0 == FleetSpec::config).
  [[nodiscard]] static sys::SystemConfig device_config(
      const FleetSpec& fleet, placement::LutCache* lut_cache);

  [[nodiscard]] const sys::Processor& processor() const { return *proc_; }
  [[nodiscard]] const energy::Battery& battery() const { return battery_; }

 private:
  /// Resolves the three frontier-tier allocations once per device (SLO set
  /// and HH-PIM LUT present; no-ops otherwise — slo_active() stays false).
  void init_slo_tiers();
  [[nodiscard]] bool slo_active() const { return spec_.latency_slo_ps > 0 && slo_ok_; }
  [[nodiscard]] const placement::Allocation& tier_alloc(FrontierTier t) const;

  const FleetSpec& fleet_;
  const DeviceSpec& spec_;
  const nn::Model& model_;
  std::optional<sys::Processor> owned_;  ///< engaged by the owning constructor
  sys::Processor* proc_;                 ///< the processor this device runs on
  energy::Battery battery_;
  AdaptivePolicy policy_;
  placement::Allocation low_power_alloc_;
  // SLO frontier picks, resolved once from the processor's LUT: [balanced,
  // performance, saver] indexed by FrontierTier.
  std::array<placement::Allocation, 3> slo_allocs_{};
  bool slo_ok_ = false;           ///< tiers resolved (LUT had a feasible entry)
  std::uint8_t applied_tier_ = 255;  ///< override installed (255 = none yet)
};

}  // namespace hhpim::fleet
