// One simulated edge device: a sys::Processor + energy::Battery +
// fleet::AdaptivePolicy executing its per-device request stream.
//
// The device runs the slice protocol of sys::Processor::run_scenario
// (arrivals in slice k execute in slice k+1, one trailing drain slice), but
// drives it slice by slice so the battery and the adaptation loop sit in
// the middle:
//
//   per slice boundary:
//     1. observe battery SoC -> AdaptivePolicy::update
//     2. kLowPower  -> Processor::set_placement_override(MRAM-balanced)
//        kDynamic   -> clear the override (HH-PIM LUT placement resumes)
//     3. run the slice, drain the slice's energy from the battery
//     4. battery hit zero mid-slice -> record exhaustion, stop; arrivals
//        that never executed are counted as dropped
//
// Devices are strictly single-threaded and share no mutable state; the only
// cross-device object is the placement::LutCache (immutable entries), which
// is what makes a fleet of thousands cheap: devices with the same model and
// arch resolve to the same LUT build.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "energy/battery.hpp"
#include "fleet/policy.hpp"
#include "fleet/spec.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"

namespace hhpim::placement {
class LutCache;  // placement/lut_cache.hpp — only a pointer is passed through
}

namespace hhpim::fleet {

class FleetAggregate;   // fleet/aggregate.hpp
struct OutcomeRecorder;  // fleet/outcome_cache.hpp

/// Everything one device run produces; one JSONL line each (the schema is
/// documented in docs/FLEET.md). Times are picoseconds, energies picojoules
/// (matching exp::RunResult); SoC is in [0, 1]. Model and scenario are
/// interned — `model_index` points into FleetResult::model_names (the
/// FleetSpec's resolved model table) and `scenario` is the enum; both
/// resolve to strings only at JSONL-write time, so a million DeviceResults
/// carry no per-device string allocations.
struct DeviceResult {
  std::uint32_t id = 0;
  std::uint32_t model_index = 0;
  workload::Scenario scenario = workload::Scenario::kLowConstant;
  std::uint64_t seed = 0;
  std::int64_t slice_ps = 0;           ///< the device's slice length T

  int slices_total = 0;                ///< planned slices incl. the drain slice
  int slices_executed = 0;             ///< actually run (< total if exhausted)
  std::uint64_t tasks = 0;
  std::uint64_t tasks_dropped = 0;     ///< arrived but never executed
  std::uint64_t deadline_violations = 0;

  double energy_pj = 0.0;              ///< total drained from the battery
  double battery_capacity_pj = 0.0;
  double final_soc = 0.0;
  int exhausted_at_slice = -1;         ///< slice whose drain hit zero; -1 = never

  std::uint32_t mode_switches = 0;
  int low_power_slices = 0;            ///< slices run under the pinned placement

  std::int64_t busy_time_ps = 0;       ///< sum of per-slice busy times
  std::int64_t max_busy_ps = 0;        ///< worst slice
  std::int64_t movement_time_ps = 0;   ///< sum of per-slice movement overheads
};

class Device {
 public:
  /// `model` must be fleet.resolved_models()[spec.model_index] (the caller
  /// resolves once per run, not once per device); `lut_cache` may be null
  /// (private LUT build). The Processor is constructed here — with a cache,
  /// construction is cheap for every device after the first per model.
  Device(const FleetSpec& fleet, const DeviceSpec& spec, const nn::Model& model,
         placement::LutCache* lut_cache);

  /// Processor-reuse variant (FleetOptions::reuse_processors): runs on
  /// `proc`, a pooled processor built from the same (fleet config, model)
  /// pair, already reset() by the caller. `proc` must outlive the Device.
  /// Results are bit-identical to the owning constructor (reset ==
  /// fresh construction; pinned by tests/test_batched.cpp).
  Device(const FleetSpec& fleet, const DeviceSpec& spec, const nn::Model& model,
         sys::Processor& proc);

  /// Executes the device's whole stream. Per-slice samples are accumulated
  /// into `agg` (may be null). Call once.
  DeviceResult run(FleetAggregate* agg);

  /// Same, with the load trace precomputed by the caller (`loads` must
  /// equal device_loads(spec)) and optional outcome recording: when
  /// `recorder` is non-null, every executed slice appends one
  /// (SliceOutcomeKey, SliceOutcome) pair chained through
  /// Processor::state_digest() — the exact-path side of the fleet's
  /// device-level memo (recorder->reuse_key must be the processor's
  /// sys::processor_reuse_key). Recording changes wall-clock only, never
  /// the result. Call once.
  DeviceResult run(FleetAggregate* agg, const std::vector<int>& loads,
                   OutcomeRecorder* recorder);

  /// The SystemConfig a device of `fleet` runs under: the fleet's shared
  /// config with the simulator-resolved LUT cache plugged in. What both
  /// constructors build from — exposed so FleetSimulator's processor pool
  /// constructs identical processors.
  [[nodiscard]] static sys::SystemConfig device_config(
      const FleetSpec& fleet, placement::LutCache* lut_cache);

  [[nodiscard]] const sys::Processor& processor() const { return *proc_; }
  [[nodiscard]] const energy::Battery& battery() const { return battery_; }

 private:
  const FleetSpec& fleet_;
  const DeviceSpec& spec_;
  const nn::Model& model_;
  std::optional<sys::Processor> owned_;  ///< engaged by the owning constructor
  sys::Processor* proc_;                 ///< the processor this device runs on
  energy::Battery battery_;
  AdaptivePolicy policy_;
  placement::Allocation low_power_alloc_;
};

}  // namespace hhpim::fleet
