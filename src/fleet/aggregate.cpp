#include "fleet/aggregate.hpp"

#include "fleet/device.hpp"

namespace hhpim::fleet {

FleetAggregate::FleetAggregate(const AggregateShape& shape)
    : busy_frac_(0.0, shape.busy_frac_max, shape.busy_frac_bins),
      energy_(0.0, shape.slice_energy_mj_max, shape.slice_energy_bins) {}

void FleetAggregate::add_slice(double busy_frac, double busy_time_us,
                               double energy_mj) {
  busy_frac_.add(busy_frac);
  busy_us.add(busy_time_us);
  energy_.add(energy_mj);
}

void FleetAggregate::add_device(const DeviceResult& r) {
  ++devices;
  executed_slices += static_cast<std::uint64_t>(r.slices_executed);
  tasks += r.tasks;
  tasks_dropped += r.tasks_dropped;
  deadline_violations += r.deadline_violations;
  if (r.exhausted_at_slice >= 0) ++exhausted_devices;
  mode_switches += r.mode_switches;
  low_power_slices += static_cast<std::uint64_t>(r.low_power_slices);
  host_cycles += r.host_cycles;
  device_energy_mj.add(r.energy_pj * 1e-9);
  final_soc.add(r.final_soc);
}

void FleetAggregate::merge(const FleetAggregate& o) {
  devices += o.devices;
  executed_slices += o.executed_slices;
  tasks += o.tasks;
  tasks_dropped += o.tasks_dropped;
  deadline_violations += o.deadline_violations;
  exhausted_devices += o.exhausted_devices;
  mode_switches += o.mode_switches;
  low_power_slices += o.low_power_slices;
  host_cycles += o.host_cycles;
  device_energy_mj.merge(o.device_energy_mj);
  final_soc.merge(o.final_soc);
  busy_us.merge(o.busy_us);
  busy_frac_.merge(o.busy_frac_);
  energy_.merge(o.energy_);
}

}  // namespace hhpim::fleet
