#include "fleet/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "hhpim/scheduler.hpp"
#include "nn/zoo.hpp"

namespace hhpim::fleet {
namespace {

/// Uniform double in [0, 1) from one SplitMix64 draw (53 mantissa bits).
double to_unit(std::uint64_t u) { return static_cast<double>(u >> 11) * 0x1.0p-53; }

void add_string(Fnv1a& h, const std::string& s) {
  h.add(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) h.add(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
}

void add_scenario_cfg(Fnv1a& h, const workload::ScenarioConfig& c) {
  h.add(c.slices).add(c.low).add(c.high).add(c.spike_period)
      .add(c.spike_period_frequent).add(c.pulse_width).add(c.seed)
      .add(c.burst_period).add(c.burst_decay).add(c.poisson_mean);
  add_string(h, c.trace_path);
  h.add(static_cast<std::uint64_t>(c.trace.size()));
  for (const int v : c.trace) h.add(v);
}

}  // namespace

std::vector<nn::Model> FleetSpec::resolved_models() const {
  return models.empty() ? nn::zoo::paper_models() : models;
}

std::vector<workload::Scenario> FleetSpec::resolved_mix() const {
  if (!mix.empty()) return mix;
  return {workload::Scenario::kPulsing, workload::Scenario::kRandom,
          workload::Scenario::kPoisson, workload::Scenario::kBurstDecay};
}

std::vector<sys::SystemConfig> FleetSpec::resolved_firmware() const {
  return firmware.empty() ? std::vector<sys::SystemConfig>{config} : firmware;
}

std::vector<double> FleetSpec::envelope_multipliers() const {
  if (!envelope.enabled) return {};
  workload::ScenarioConfig c = envelope.cfg;
  c.slices = slices;
  c.seed = envelope.seed;
  const std::vector<int> raw = workload::generate(envelope.shape, c);
  std::vector<double> m(static_cast<std::size_t>(slices), envelope.min_multiplier);
  const double lo = static_cast<double>(c.low);
  const double hi = static_cast<double>(c.high);
  for (std::size_t g = 0; g < m.size(); ++g) {
    // A trace shape defines its own length; cycle it over the horizon.
    const double r = static_cast<double>(raw[g % raw.size()]);
    const double t =
        hi > lo ? (std::clamp(r, lo, hi) - lo) / (hi - lo) : 1.0;
    m[g] = envelope.min_multiplier +
           t * (envelope.max_multiplier - envelope.min_multiplier);
  }
  return m;
}

std::uint64_t FleetSpec::content_digest() const {
  Fnv1a h;
  add_string(h, name);
  h.add(devices).add(slices).add(seed).add(adapt ? 1 : 0);
  h.add(thresholds.low_soc).add(thresholds.high_soc);
  h.add(battery.capacity.as_pj()).add(battery.initial_soc);
  h.add(histograms.busy_frac_max)
      .add(static_cast<std::uint64_t>(histograms.busy_frac_bins))
      .add(histograms.slice_energy_mj_max)
      .add(static_cast<std::uint64_t>(histograms.slice_energy_bins));
  const std::vector<workload::Scenario> shapes = resolved_mix();
  h.add(static_cast<std::uint64_t>(shapes.size()));
  for (const workload::Scenario s : shapes) h.add(static_cast<int>(s));
  add_scenario_cfg(h, workload);
  // Firmware x model reuse keys digest everything a Processor's behavior
  // depends on (arch, power spec, knobs, model topology/params/macs). The
  // raw lut_cache pointer is process-local, so key with it nulled.
  const std::vector<nn::Model> ms = resolved_models();
  const std::vector<sys::SystemConfig> fws = resolved_firmware();
  h.add(static_cast<std::uint64_t>(ms.size()))
      .add(static_cast<std::uint64_t>(fws.size()));
  for (const sys::SystemConfig& fw : fws) {
    sys::SystemConfig c = fw;
    c.lut_cache = nullptr;
    for (const nn::Model& m : ms) h.add(sys::processor_reuse_key(c, m));
  }
  h.add(lifecycle.join_fraction).add(lifecycle.leave_fraction);
  h.add(static_cast<std::uint64_t>(lifecycle_overrides.size()));
  for (const LifecycleOverride& o : lifecycle_overrides)
    h.add(static_cast<std::uint64_t>(o.id)).add(o.join_slice).add(o.leave_slice);
  h.add(charging.period).add(charging.window)
      .add(charging.energy_per_slice.as_pj());
  h.add(envelope.enabled ? 1 : 0);
  if (envelope.enabled) {
    h.add(static_cast<int>(envelope.shape))
        .add(envelope.min_multiplier)
        .add(envelope.max_multiplier)
        .add(envelope.seed);
    add_scenario_cfg(h, envelope.cfg);
  }
  // SLO fields are fully guarded (no unconditional marker) so a spec without
  // them digests byte-identically to pre-SLO builds — snapshots written
  // before this field existed still restore onto the same spec.
  if (latency_slo > Time::zero() || !slo_overrides.empty()) {
    h.add(latency_slo.as_ps());
    h.add(static_cast<std::uint64_t>(slo_overrides.size()));
    for (const SloOverride& o : slo_overrides)
      h.add(static_cast<std::uint64_t>(o.id)).add(o.latency_slo.as_ps());
  }
  return h.digest();
}

void FleetSpec::validate() const {
  if (devices < 0) throw std::invalid_argument("FleetSpec: devices must be >= 0");
  if (slices <= 0) throw std::invalid_argument("FleetSpec: slices must be > 0");
  for (const workload::Scenario s : resolved_mix()) {
    if (s == workload::Scenario::kTrace) {
      // A fleet draws per-device streams from generators; replaying one
      // fixed trace on every device defeats the jitter. Use a generator
      // shape, or feed the trace through FleetSpec::workload.trace as a
      // custom generator if that ever becomes a need.
      throw std::invalid_argument("FleetSpec: trace-replay cannot be a mix entry");
    }
  }
  for (const sys::SystemConfig& fw : resolved_firmware()) {
    if (fw.lut_cache != nullptr) {
      // The cache is an execution concern: FleetOptions names it (and the
      // simulator's lut_builds/lut_shared stats are measured on it). A cache
      // smuggled in through the SystemConfig would bypass share_luts and
      // silently skew those stats.
      throw std::invalid_argument(
          "FleetSpec: set the LUT cache via FleetOptions::lut_cache, "
          "not SystemConfig::lut_cache");
    }
    if (adapt && (fw.arch.kind != sys::ArchKind::kHhpim ||
                  fw.arch.mram_kb_per_module == 0)) {
      throw std::invalid_argument(
          "FleetSpec: adaptation needs the HH-PIM arch with MRAM "
          "(set adapt = false for static architectures)");
    }
    if (adapt) {
      // The low-power mode pins balanced_mram_split — reject models whose
      // split does not fit the MRAM capacities here, not from the first
      // worker thread whose device's SoC crosses the threshold mid-run.
      const energy::PowerSpec power = sys::resolved_power_spec(fw);
      for (const nn::Model& m : resolved_models()) {
        const placement::CostModel cost = placement::CostModel::build(
            power, fw.arch.hp_shape(), fw.arch.lp_shape(),
            m.uses_per_weight());
        if (!placement::fits(
                cost, sys::balanced_mram_split(cost, m.effective_params()))) {
          throw std::invalid_argument(
              "FleetSpec: low-power MRAM placement does not fit model '" +
              m.name() + "' (grow mram_kb_per_module or set adapt = false)");
        }
      }
    }
  }
  if (lifecycle.join_fraction < 0.0 || lifecycle.join_fraction > 1.0 ||
      lifecycle.leave_fraction < 0.0 || lifecycle.leave_fraction > 1.0) {
    throw std::invalid_argument(
        "FleetSpec: lifecycle fractions must be in [0, 1]");
  }
  for (const LifecycleOverride& o : lifecycle_overrides) {
    const int leave = o.leave_slice < 0 ? slices : o.leave_slice;
    if (o.id >= static_cast<std::uint32_t>(devices) || o.join_slice < 0 ||
        o.join_slice >= leave || leave > slices) {
      throw std::invalid_argument(
          "FleetSpec: lifecycle override for device " + std::to_string(o.id) +
          " needs 0 <= join < leave <= slices and an in-range id");
    }
  }
  if (latency_slo < Time::zero()) {
    throw std::invalid_argument("FleetSpec: latency_slo must be >= 0");
  }
  for (const SloOverride& o : slo_overrides) {
    if (o.id >= static_cast<std::uint32_t>(devices) ||
        o.latency_slo < Time::zero()) {
      throw std::invalid_argument(
          "FleetSpec: SLO override for device " + std::to_string(o.id) +
          " needs an in-range id and a non-negative latency");
    }
  }
  if (latency_slo > Time::zero() || !slo_overrides.empty()) {
    // The SLO tiers pin Pareto-frontier points, which only the HH-PIM LUT
    // policy carries; fail here, not from the first SLO device constructed.
    for (const sys::SystemConfig& fw : resolved_firmware()) {
      if (fw.arch.kind != sys::ArchKind::kHhpim) {
        throw std::invalid_argument(
            "FleetSpec: latency SLOs need the HH-PIM arch "
            "(frontier points come from the placement LUT)");
      }
    }
  }
  if (charging.period < 0 || charging.window < 0 ||
      charging.window > charging.period ||
      charging.energy_per_slice.as_pj() < 0.0) {
    throw std::invalid_argument(
        "FleetSpec: charging needs 0 <= window <= period and a "
        "non-negative energy per slice");
  }
  if (envelope.enabled) {
    if (!(envelope.min_multiplier >= 0.0) ||
        !(envelope.max_multiplier >= envelope.min_multiplier) ||
        !std::isfinite(envelope.max_multiplier)) {
      throw std::invalid_argument(
          "FleetSpec: envelope needs 0 <= min_multiplier <= max_multiplier "
          "(finite)");
    }
    // Resolve once here so a malformed envelope shape (e.g. an empty
    // trace) throws from validate(), not from the first run.
    (void)envelope_multipliers();
  }
  // Constructor-level validation, surfaced early and once rather than from
  // the first worker thread mid-run.
  (void)energy::Battery{battery};
  (void)AdaptivePolicy{thresholds};
}

std::vector<DeviceSpec> FleetSpec::expand() const {
  validate();
  const std::size_t n_models = resolved_models().size();
  const std::vector<workload::Scenario> shapes = resolved_mix();
  const std::size_t n_firmware = resolved_firmware().size();

  std::vector<DeviceSpec> specs;
  specs.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    // One SplitMix64 stream per device, keyed on (fleet seed, device id):
    // the draws below are independent of every other device's. New draws
    // only ever append to this sequence, and only when their feature is on
    // — a spec without firmware/lifecycle expands byte-identically to
    // pre-lifecycle builds.
    SplitMix64 sm{seed ^ (0xf1ee7u + static_cast<std::uint64_t>(d) *
                                         0x9e3779b97f4a7c15ULL)};
    DeviceSpec s;
    s.id = static_cast<std::uint32_t>(d);
    s.model_index = static_cast<std::size_t>(sm.next() % n_models);
    s.scenario = shapes[sm.next() % shapes.size()];
    s.cfg = workload;
    s.cfg.slices = slices;
    s.cfg.seed = sm.next();
    s.seed = s.cfg.seed;
    s.phase = static_cast<int>(sm.next() % static_cast<std::uint64_t>(slices));
    if (n_firmware > 1) {
      s.firmware_index = static_cast<std::size_t>(sm.next() % n_firmware);
    }
    if (lifecycle.join_fraction > 0.0) {
      const bool joins_late = to_unit(sm.next()) < lifecycle.join_fraction;
      if (joins_late && slices > 1) {
        s.join_slice = 1 + static_cast<int>(
            sm.next() % static_cast<std::uint64_t>(slices - 1));
      }
    }
    if (lifecycle.leave_fraction > 0.0) {
      const bool leaves_early = to_unit(sm.next()) < lifecycle.leave_fraction;
      const int span = slices - s.join_slice;
      if (leaves_early && span > 1) {
        s.leave_slice = s.join_slice + 1 + static_cast<int>(
            sm.next() % static_cast<std::uint64_t>(span - 1));
      }
    }
    specs.push_back(std::move(s));
  }
  for (const LifecycleOverride& o : lifecycle_overrides) {
    specs[o.id].join_slice = o.join_slice;
    specs[o.id].leave_slice = o.leave_slice;
  }
  // SLO assignment is deterministic (no RNG draws): the fleet-wide default,
  // then per-device pins. A spec with neither leaves every latency_slo_ps at
  // 0, so pre-SLO expansions are reproduced byte-identically.
  if (latency_slo > Time::zero()) {
    for (DeviceSpec& s : specs) s.latency_slo_ps = latency_slo.as_ps();
  }
  for (const SloOverride& o : slo_overrides) {
    specs[o.id].latency_slo_ps = o.latency_slo.as_ps();
  }
  for (DeviceSpec& s : specs) {
    if (s.leave_slice < 0 || s.leave_slice > slices) s.leave_slice = slices;
    s.cfg.slices = s.leave_slice - s.join_slice;
  }
  return specs;
}

std::vector<int> device_loads(const DeviceSpec& spec) {
  std::vector<int> loads;
  device_loads_into(spec, loads);
  return loads;
}

void device_loads_into(const DeviceSpec& spec, std::vector<int>& out) {
  workload::generate_into(spec.scenario, spec.cfg, out);
  const auto phase = static_cast<std::size_t>(spec.phase) % out.size();
  std::rotate(out.begin(),
              out.begin() + static_cast<std::vector<int>::difference_type>(phase),
              out.end());
}

void device_loads_into(const DeviceSpec& spec, const std::vector<double>& env,
                       std::vector<int>& out) {
  device_loads_into(spec, out);
  if (env.empty()) return;
  const auto join = static_cast<std::size_t>(spec.join_slice < 0 ? 0 : spec.join_slice);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const double m = env[(join + k) % env.size()];
    out[k] = static_cast<int>(static_cast<double>(out[k]) * m + 0.5);
  }
}

}  // namespace hhpim::fleet
