#include "fleet/spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "hhpim/scheduler.hpp"
#include "nn/zoo.hpp"

namespace hhpim::fleet {

std::vector<nn::Model> FleetSpec::resolved_models() const {
  return models.empty() ? nn::zoo::paper_models() : models;
}

std::vector<workload::Scenario> FleetSpec::resolved_mix() const {
  if (!mix.empty()) return mix;
  return {workload::Scenario::kPulsing, workload::Scenario::kRandom,
          workload::Scenario::kPoisson, workload::Scenario::kBurstDecay};
}

void FleetSpec::validate() const {
  if (devices < 0) throw std::invalid_argument("FleetSpec: devices must be >= 0");
  if (slices <= 0) throw std::invalid_argument("FleetSpec: slices must be > 0");
  for (const workload::Scenario s : resolved_mix()) {
    if (s == workload::Scenario::kTrace) {
      // A fleet draws per-device streams from generators; replaying one
      // fixed trace on every device defeats the jitter. Use a generator
      // shape, or feed the trace through FleetSpec::workload.trace as a
      // custom generator if that ever becomes a need.
      throw std::invalid_argument("FleetSpec: trace-replay cannot be a mix entry");
    }
  }
  if (config.lut_cache != nullptr) {
    // The cache is an execution concern: FleetOptions names it (and the
    // simulator's lut_builds/lut_shared stats are measured on it). A cache
    // smuggled in through the SystemConfig would bypass share_luts and
    // silently skew those stats.
    throw std::invalid_argument(
        "FleetSpec: set the LUT cache via FleetOptions::lut_cache, "
        "not SystemConfig::lut_cache");
  }
  if (adapt && (config.arch.kind != sys::ArchKind::kHhpim ||
                config.arch.mram_kb_per_module == 0)) {
    throw std::invalid_argument(
        "FleetSpec: adaptation needs the HH-PIM arch with MRAM "
        "(set adapt = false for static architectures)");
  }
  if (adapt) {
    // The low-power mode pins balanced_mram_split — reject models whose
    // split does not fit the MRAM capacities here, not from the first
    // worker thread whose device's SoC crosses the threshold mid-run.
    const energy::PowerSpec power = sys::resolved_power_spec(config);
    for (const nn::Model& m : resolved_models()) {
      const placement::CostModel cost = placement::CostModel::build(
          power, config.arch.hp_shape(), config.arch.lp_shape(),
          m.uses_per_weight());
      if (!placement::fits(
              cost, sys::balanced_mram_split(cost, m.effective_params()))) {
        throw std::invalid_argument(
            "FleetSpec: low-power MRAM placement does not fit model '" +
            m.name() + "' (grow mram_kb_per_module or set adapt = false)");
      }
    }
  }
  // Constructor-level validation, surfaced early and once rather than from
  // the first worker thread mid-run.
  (void)energy::Battery{battery};
  (void)AdaptivePolicy{thresholds};
}

std::vector<DeviceSpec> FleetSpec::expand() const {
  validate();
  const std::size_t n_models = resolved_models().size();
  const std::vector<workload::Scenario> shapes = resolved_mix();

  std::vector<DeviceSpec> specs;
  specs.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    // One SplitMix64 stream per device, keyed on (fleet seed, device id):
    // the draws below are independent of every other device's.
    SplitMix64 sm{seed ^ (0xf1ee7u + static_cast<std::uint64_t>(d) *
                                         0x9e3779b97f4a7c15ULL)};
    DeviceSpec s;
    s.id = static_cast<std::uint32_t>(d);
    s.model_index = static_cast<std::size_t>(sm.next() % n_models);
    s.scenario = shapes[sm.next() % shapes.size()];
    s.cfg = workload;
    s.cfg.slices = slices;
    s.cfg.seed = sm.next();
    s.seed = s.cfg.seed;
    s.phase = static_cast<int>(sm.next() % static_cast<std::uint64_t>(slices));
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<int> device_loads(const DeviceSpec& spec) {
  std::vector<int> loads;
  device_loads_into(spec, loads);
  return loads;
}

void device_loads_into(const DeviceSpec& spec, std::vector<int>& out) {
  workload::generate_into(spec.scenario, spec.cfg, out);
  const auto phase = static_cast<std::size_t>(spec.phase) % out.size();
  std::rotate(out.begin(),
              out.begin() + static_cast<std::vector<int>::difference_type>(phase),
              out.end());
}

}  // namespace hhpim::fleet
