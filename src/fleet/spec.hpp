// Declarative fleet descriptions.
//
// A FleetSpec describes N independent simulated edge devices in one object:
// the model population, the scenario mix each device draws its request
// stream from, the shared SystemConfig, the battery, and the adaptation
// thresholds. expand() derives one DeviceSpec per device — deterministic,
// single-threaded, and cheap (loads are *not* materialized here; each worker
// generates its device's trace from the DeviceSpec's scenario config, which
// fully determines it).
//
// Per-device diversity comes from three seeded draws per device (model
// index, scenario kind, phase) plus a per-device scenario seed, all derived
// from FleetSpec::seed with common/rng.hpp SplitMix64 — so the same spec
// expands to byte-identical DeviceSpecs on every host and at every thread
// count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/battery.hpp"
#include "fleet/policy.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"
#include "workload/scenario.hpp"

namespace hhpim::fleet {

/// Bin layout of the fleet-wide aggregate histograms (see aggregate.hpp).
/// Part of the spec because shards can only merge histograms of identical
/// shape; the shape must therefore be fixed before the run starts.
struct AggregateShape {
  /// Slice busy time as a fraction of the slice length T; values at or
  /// above `busy_frac_max` land in the overflow bin (reported separately).
  double busy_frac_max = 2.0;
  std::size_t busy_frac_bins = 200;
  /// Per-slice energy in millijoules (Table IV models on HH-PIM charge
  /// single-digit mJ per slice; see BENCH_fleet.json for measured spreads).
  double slice_energy_mj_max = 60.0;
  std::size_t slice_energy_bins = 256;
};

/// Everything one worker needs to simulate one device (plus the FleetSpec
/// it came from). Loads are generated on demand: workload::generate(kind,
/// cfg) rotated left by `phase` slices — the per-device jitter.
struct DeviceSpec {
  std::uint32_t id = 0;
  std::size_t model_index = 0;       ///< into FleetSpec::resolved_models()
  workload::Scenario scenario = workload::Scenario::kLowConstant;
  workload::ScenarioConfig cfg;      ///< per-device seed already applied
  int phase = 0;                     ///< left rotation of the load trace
  std::uint64_t seed = 0;            ///< effective per-device seed (echo)
};

struct FleetSpec {
  std::string name = "fleet";
  /// Device count; 0 is allowed (an empty fleet expands to no devices and
  /// simulates to empty results — useful for pipeline plumbing tests).
  int devices = 1000;
  /// Time slices per device run (the drain slice is added on top).
  int slices = 20;
  /// Model population; empty = nn::zoo::paper_models(). Devices draw
  /// uniformly — devices sharing a model also share one cached placement
  /// LUT (placement::LutCache), the fan-in that makes fleet runs cheap.
  std::vector<nn::Model> models;
  /// Scenario mix devices draw from; empty = a default dynamic mix
  /// {pulsing, random, poisson, burst-decay}.
  std::vector<workload::Scenario> mix;
  /// Base scenario shape (low/high, spike periods, ...). `slices` and
  /// `seed` are overridden per device.
  workload::ScenarioConfig workload;
  /// Shared system configuration. The arch must be HH-PIM with MRAM when
  /// `adapt` is on (the adaptation pins an MRAM placement); `lut_cache`
  /// must stay null — the simulator supplies it (FleetOptions::lut_cache;
  /// validate() rejects a preset cache).
  sys::SystemConfig config;
  energy::BatteryConfig battery;
  AdaptiveThresholds thresholds;
  /// Battery-driven mode adaptation (fleet::AdaptivePolicy). Off = every
  /// device runs the plain HH-PIM dynamic policy until its battery dies.
  bool adapt = true;
  std::uint64_t seed = 0x5eed2025;
  AggregateShape histograms;

  /// The model population after defaulting (never empty).
  [[nodiscard]] std::vector<nn::Model> resolved_models() const;
  /// The scenario mix after defaulting (never empty).
  [[nodiscard]] std::vector<workload::Scenario> resolved_mix() const;

  /// One DeviceSpec per device, in id order. Throws std::invalid_argument
  /// on a malformed spec (negative devices, slices <= 0, a trace scenario
  /// in the mix, or adapt on a non-HH-PIM / MRAM-less arch).
  [[nodiscard]] std::vector<DeviceSpec> expand() const;

  /// Validation only (same throws as expand()); cheap, O(mix).
  void validate() const;
};

/// The materialized per-slice load trace of one device: generate + rotate.
[[nodiscard]] std::vector<int> device_loads(const DeviceSpec& spec);

/// device_loads() into a caller-owned buffer (resized, capacity reused) —
/// what the fleet's shard workers call per device so trace regeneration
/// allocates nothing after the first device of a shard.
void device_loads_into(const DeviceSpec& spec, std::vector<int>& out);

}  // namespace hhpim::fleet
