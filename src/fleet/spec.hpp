// Declarative fleet descriptions.
//
// A FleetSpec describes N independent simulated edge devices in one object:
// the model population, the scenario mix each device draws its request
// stream from, the shared SystemConfig, the battery, and the adaptation
// thresholds. expand() derives one DeviceSpec per device — deterministic,
// single-threaded, and cheap (loads are *not* materialized here; each worker
// generates its device's trace from the DeviceSpec's scenario config, which
// fully determines it).
//
// Per-device diversity comes from three seeded draws per device (model
// index, scenario kind, phase) plus a per-device scenario seed, all derived
// from FleetSpec::seed with common/rng.hpp SplitMix64 — so the same spec
// expands to byte-identical DeviceSpecs on every host and at every thread
// count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/battery.hpp"
#include "fleet/policy.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"
#include "workload/scenario.hpp"

namespace hhpim::fleet {

/// Bin layout of the fleet-wide aggregate histograms (see aggregate.hpp).
/// Part of the spec because shards can only merge histograms of identical
/// shape; the shape must therefore be fixed before the run starts.
struct AggregateShape {
  /// Slice busy time as a fraction of the slice length T; values at or
  /// above `busy_frac_max` land in the overflow bin (reported separately).
  double busy_frac_max = 2.0;
  std::size_t busy_frac_bins = 200;
  /// Per-slice energy in millijoules (Table IV models on HH-PIM charge
  /// single-digit mJ per slice; see BENCH_fleet.json for measured spreads).
  double slice_energy_mj_max = 60.0;
  std::size_t slice_energy_bins = 256;
};

/// Everything one worker needs to simulate one device (plus the FleetSpec
/// it came from). Loads are generated on demand: workload::generate(kind,
/// cfg) rotated left by `phase` slices — the per-device jitter.
struct DeviceSpec {
  std::uint32_t id = 0;
  std::size_t model_index = 0;       ///< into FleetSpec::resolved_models()
  workload::Scenario scenario = workload::Scenario::kLowConstant;
  workload::ScenarioConfig cfg;      ///< per-device seed already applied
  int phase = 0;                     ///< left rotation of the load trace
  std::uint64_t seed = 0;            ///< effective per-device seed (echo)
  std::size_t firmware_index = 0;    ///< into FleetSpec::resolved_firmware()
  /// Lifecycle window in global slice indices: the device executes global
  /// slices [join_slice, leave_slice). A device that stays to the horizon
  /// (leave_slice == FleetSpec::slices, or the -1 hand-built default) runs
  /// the drain slice for its final buffer; one that leaves early drops the
  /// final buffer exactly like exhaustion drops future arrivals.
  int join_slice = 0;
  int leave_slice = -1;              ///< -1 = runs to the horizon
  /// Per-device latency SLO in picoseconds; 0 = none. When set, the device
  /// pins an SLO-aware Pareto-frontier point per slice (FrontierTier) instead
  /// of the plain dynamic/MRAM-pinned toggle — see docs/PARETO.md.
  std::int64_t latency_slo_ps = 0;
};

/// Random lifecycle draws for expand(): each device independently joins
/// late / leaves early with these probabilities (uniform slice within the
/// legal range). Zero fractions draw nothing, so default specs expand
/// byte-identically to pre-lifecycle builds.
struct LifecycleSpec {
  double join_fraction = 0.0;   ///< P(device joins at a slice > 0)
  double leave_fraction = 0.0;  ///< P(device leaves before the horizon)
};

/// Pins one device's lifecycle window, overriding the random draws.
struct LifecycleOverride {
  std::uint32_t id = 0;
  int join_slice = 0;
  int leave_slice = -1;  ///< -1 = runs to the horizon
};

/// Pins one device's latency SLO, overriding FleetSpec::latency_slo.
struct SloOverride {
  std::uint32_t id = 0;
  Time latency_slo = Time::zero();  ///< zero = explicitly no SLO
};

/// Global charging schedule: during the first `window` slices of every
/// `period`-slice cycle (in global slice indices), each live device
/// recharges `energy_per_slice` at the start of the executed slice —
/// before the adaptive policy observes the SoC — clamped at capacity by
/// Battery::recharge. period == 0 disables charging.
struct ChargingSpec {
  int period = 0;
  int window = 0;
  Energy energy_per_slice = Energy::zero();
};

/// Global load envelope: one workload::generate stream over the fleet
/// horizon, normalized to [min_multiplier, max_multiplier] by the shape's
/// own low/high, multiplying every device's arrivals at its *global* slice
/// index (effective = int(raw * m + 0.5)). min == max == 1.0 reproduces
/// un-enveloped output byte-identically.
struct LoadEnvelope {
  bool enabled = false;
  workload::Scenario shape = workload::Scenario::kPulsing;
  workload::ScenarioConfig cfg;  ///< slices/seed overridden from the fleet
  double min_multiplier = 1.0;
  double max_multiplier = 1.0;
  std::uint64_t seed = 0xd1a2025;
};

struct FleetSpec {
  std::string name = "fleet";
  /// Device count; 0 is allowed (an empty fleet expands to no devices and
  /// simulates to empty results — useful for pipeline plumbing tests).
  int devices = 1000;
  /// Time slices per device run (the drain slice is added on top).
  int slices = 20;
  /// Model population; empty = nn::zoo::paper_models(). Devices draw
  /// uniformly — devices sharing a model also share one cached placement
  /// LUT (placement::LutCache), the fan-in that makes fleet runs cheap.
  std::vector<nn::Model> models;
  /// Scenario mix devices draw from; empty = a default dynamic mix
  /// {pulsing, random, poisson, burst-decay}.
  std::vector<workload::Scenario> mix;
  /// Base scenario shape (low/high, spike periods, ...). `slices` and
  /// `seed` are overridden per device.
  workload::ScenarioConfig workload;
  /// Shared system configuration. The arch must be HH-PIM with MRAM when
  /// `adapt` is on (the adaptation pins an MRAM placement); `lut_cache`
  /// must stay null — the simulator supplies it (FleetOptions::lut_cache;
  /// validate() rejects a preset cache).
  sys::SystemConfig config;
  /// Firmware heterogeneity: the per-device SystemConfig population (mixed
  /// ArchConfigs / power specs / knob generations in one fleet). Empty =
  /// {config}; devices draw uniformly. Every entry obeys the same
  /// constraints as `config` (null lut_cache; HH-PIM with MRAM when
  /// `adapt` is on).
  std::vector<sys::SystemConfig> firmware;
  energy::BatteryConfig battery;
  AdaptiveThresholds thresholds;
  /// Battery-driven mode adaptation (fleet::AdaptivePolicy). Off = every
  /// device runs the plain HH-PIM dynamic policy until its battery dies.
  bool adapt = true;
  std::uint64_t seed = 0x5eed2025;
  AggregateShape histograms;
  LifecycleSpec lifecycle;
  /// Pinned lifecycle windows, applied after the random draws (by id).
  std::vector<LifecycleOverride> lifecycle_overrides;
  ChargingSpec charging;
  LoadEnvelope envelope;
  /// Fleet-wide latency SLO; zero = off. When off and `slo_overrides` is
  /// empty, every derived field stays at its default and the spec expands,
  /// digests and simulates byte-identically to pre-SLO builds.
  Time latency_slo = Time::zero();
  /// Per-device SLO pins, applied after the fleet-wide default (by id).
  std::vector<SloOverride> slo_overrides;

  /// The model population after defaulting (never empty).
  [[nodiscard]] std::vector<nn::Model> resolved_models() const;
  /// The scenario mix after defaulting (never empty).
  [[nodiscard]] std::vector<workload::Scenario> resolved_mix() const;
  /// The firmware population after defaulting (never empty).
  [[nodiscard]] std::vector<sys::SystemConfig> resolved_firmware() const;

  /// The per-global-slice envelope multiplier stream over the horizon;
  /// empty when envelope.enabled is false. Resolved once per run and shared
  /// by every worker.
  [[nodiscard]] std::vector<double> envelope_multipliers() const;

  /// Digest of every behavior-determining field (models, firmware reuse
  /// keys, workload shape, battery, lifecycle, charging, envelope, seed...)
  /// — the identity a FleetSnapshot is pinned to: restoring onto a spec
  /// with a different digest fails loudly.
  [[nodiscard]] std::uint64_t content_digest() const;

  /// One DeviceSpec per device, in id order, lifecycle windows normalized
  /// (leave_slice resolved to `slices` for horizon devices; cfg.slices =
  /// leave - join). Throws std::invalid_argument on a malformed spec
  /// (negative devices, slices <= 0, a trace scenario in the mix, adapt on
  /// a non-HH-PIM / MRAM-less arch, or an out-of-range lifecycle override).
  [[nodiscard]] std::vector<DeviceSpec> expand() const;

  /// Validation only (same throws as expand()); O(mix + firmware * models
  /// + slices when the envelope is enabled).
  void validate() const;
};

/// The materialized per-slice load trace of one device: generate + rotate.
[[nodiscard]] std::vector<int> device_loads(const DeviceSpec& spec);

/// device_loads() into a caller-owned buffer (resized, capacity reused) —
/// what the fleet's shard workers call per device so trace regeneration
/// allocates nothing after the first device of a shard.
void device_loads_into(const DeviceSpec& spec, std::vector<int>& out);

/// device_loads_into() with the fleet's envelope applied: arrival k of a
/// device is scaled by env[join_slice + k] (the device's *global* slice
/// index), rounded to nearest. An empty `env` applies no scaling.
void device_loads_into(const DeviceSpec& spec, const std::vector<double>& env,
                       std::vector<int>& out);

}  // namespace hhpim::fleet
