// Process-wide, thread-safe memo of whole-device slice outcomes.
//
// Most devices of a fleet share (arch config, model, placement-decision
// stream) and differ only in seed jitter and battery trajectory. A slice's
// outcome — energy requested, busy/movement time, deadline flag, and the
// processor state it leaves behind — is a pure function of the processor's
// behavior-relevant state at the slice boundary (sys::Processor::
// state_digest), the placement mode the adaptation loop picked, and the
// number of buffered tasks. Battery state never enters: the SoC only
// influences a slice *through* the hysteresis mode decision, which is an
// exact field of the key, and the drain clamp is re-applied at replay time.
// That is what lets the fleet replay memoized outcomes byte-identically to
// the scalar Device::run path (pinned by tests/test_outcome_memo.cpp).
//
// Key anatomy (docs/PERF.md "Device-level memoization"):
//   reuse_key  sys::processor_reuse_key(config, model) — which machine
//   state      Processor::state_digest() before the slice — where it is
//   slo_ps     the device's latency SLO (the frontier the policy picks from)
//   n_tasks    the exact buffered-task count (the "load bucket")
//   mode       fleet::DeviceMode for the slice (the "SoC bucket")
//   tier       fleet::FrontierTier pinned for the slice (the "SLO bucket")
// The buckets are exact, not approximations: two devices fall into the same
// bucket only when the simulator would compute bit-identical slices for
// them, so memoization changes wall-clock, never output.
//
// Concurrency mirrors placement::LutCache (docs/PERF.md "Parallel
// scaling"): completed outcomes live in an immutable snapshot map published
// through an atomic pointer — a hit is one acquire load plus a hash lookup,
// no lock. Inserts arrive in per-device batches (one copy-on-write republish
// per recorded device, not per slice), first writer wins per key; racing
// inserts of the same key are benign because honest writers compute
// identical values. Superseded snapshots are retired, not freed, until the
// cache is destroyed, so a pointer returned by lookup() stays valid for the
// cache's lifetime — even across clear().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"

namespace hhpim::fleet {

/// Value-semantic memo key; equality compares every field, so outcomes are
/// never shared across distinct machines, states, loads, modes or SLO
/// placements.
///
/// `slo_ps`/`tier` exist because the SLO policy's frontier pick is decided
/// *before* the slice runs: on the first slice the `state` digest predates
/// the override the tier is about to install, so without these fields two
/// devices with different SLOs (or different tiers at the same state) would
/// share a bucket and replay each other's outcomes. Both are 0 whenever the
/// device has no SLO, which keeps pre-SLO keys' contents unchanged.
struct SliceOutcomeKey {
  std::uint64_t reuse_key = 0;  ///< sys::processor_reuse_key(config, model)
  std::uint64_t state = 0;      ///< Processor::state_digest() before the slice
  std::int64_t slo_ps = 0;      ///< DeviceSpec::latency_slo_ps (0 = no SLO)
  std::uint32_t n_tasks = 0;    ///< buffered tasks executed this slice
  std::uint8_t mode = 0;        ///< fleet::DeviceMode for the slice
  std::uint8_t tier = 0;        ///< fleet::FrontierTier pinned (0 when no SLO)

  [[nodiscard]] bool operator==(const SliceOutcomeKey&) const = default;

  struct Hash {
    [[nodiscard]] std::size_t operator()(const SliceOutcomeKey& k) const {
      Fnv1a h;
      h.add(k.reuse_key)
          .add(k.state)
          .add(k.slo_ps)
          .add(static_cast<std::uint64_t>(k.n_tasks))
          .add(static_cast<std::uint64_t>(k.mode))
          .add(static_cast<std::uint64_t>(k.tier));
      return static_cast<std::size_t>(h.digest());
    }
  };
};

/// Everything a replayed slice contributes to a device run. `energy_pj` is
/// the *requested* slice energy (sys::SliceStats::energy) — the battery's
/// drain clamp is re-applied per device at replay time, which is also how
/// exhaustion-boundary slices are detected and routed to the exact path.
struct SliceOutcome {
  double energy_pj = 0.0;
  std::int64_t busy_ps = 0;
  std::int64_t movement_ps = 0;
  std::uint64_t post_state = 0;   ///< state_digest() after the slice
  std::uint64_t host_cycles = 0;  ///< host-core cycles (0 when host disabled)
  bool deadline_violated = false;
};

/// Per-device recording sink for the exact path: Device::run chains
/// state digests across its slices and appends one (key, outcome) pair per
/// slice. The buffer is reused across devices (clear(), capacity retained);
/// the shard inserts it as one batch when the device completes.
struct OutcomeRecorder {
  std::uint64_t reuse_key = 0;
  std::vector<std::pair<SliceOutcomeKey, SliceOutcome>> recorded;
};

/// Thread-safe memo of slice outcomes. One instance is process-wide
/// (process_cache()); tests and benchmarks construct private instances.
class OutcomeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;        ///< lookup() calls that returned an outcome
    std::uint64_t misses = 0;      ///< lookup() calls that returned nullptr
    std::uint64_t insertions = 0;  ///< keys actually added (first writer only)
    std::size_t entries = 0;       ///< keys in the current snapshot
  };

  OutcomeCache() = default;
  OutcomeCache(const OutcomeCache&) = delete;
  OutcomeCache& operator=(const OutcomeCache&) = delete;
  ~OutcomeCache() = default;

  /// Lock-free: the outcome memoized for `key`, or nullptr. The pointer
  /// stays valid until the cache is destroyed (snapshots are retired, never
  /// freed — memory stays proportional to insert batches actually
  /// published, which state convergence keeps small).
  [[nodiscard]] const SliceOutcome* lookup(const SliceOutcomeKey& key);

  /// Publishes a device's recorded (key, outcome) pairs: one copy-on-write
  /// republish for the whole batch, first writer wins per key, no republish
  /// when every key is already present. Safe to call concurrently with
  /// lookups and other inserts.
  void insert_batch(
      const std::vector<std::pair<SliceOutcomeKey, SliceOutcome>>& entries);

  /// Forgets all entries and zeroes the counters. Outcomes already handed
  /// out by lookup() stay valid (retired snapshots are kept).
  void clear();

  [[nodiscard]] Stats stats() const;

  /// The process-wide instance FleetSimulator uses by default.
  [[nodiscard]] static OutcomeCache& process_cache();

 private:
  /// Immutable map of memoized outcomes. Never mutated after publication —
  /// mutation copies it and publishes the copy.
  using ReadyMap =
      std::unordered_map<SliceOutcomeKey, SliceOutcome, SliceOutcomeKey::Hash>;

  /// Publishes `next` as the current snapshot (mu_ held). The superseded
  /// snapshot is retired — kept alive until destruction so concurrent
  /// lock-free readers (and held outcome pointers) stay safe.
  void publish_locked(std::unique_ptr<const ReadyMap> next);

  /// Current snapshot; readers load-acquire and never lock. Owned by
  /// retired_ (every snapshot ever published lives there).
  std::atomic<const ReadyMap*> ready_{nullptr};
  std::vector<std::unique_ptr<const ReadyMap>> retired_;

  mutable std::mutex mu_;  ///< guards retired_ and snapshot swaps

  // Counter increments race only with each other; relaxed is enough.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace hhpim::fleet
