#include "fleet/policy.hpp"

#include <stdexcept>

namespace hhpim::fleet {

const char* to_string(DeviceMode m) {
  switch (m) {
    case DeviceMode::kDynamic: return "dynamic";
    case DeviceMode::kLowPower: return "low-power";
  }
  return "?";
}

const char* to_string(FrontierTier t) {
  switch (t) {
    case FrontierTier::kBalanced: return "balanced";
    case FrontierTier::kPerformance: return "performance";
    case FrontierTier::kSaver: return "saver";
  }
  return "?";
}

FrontierTier select_tier(DeviceMode mode, double soc,
                         const AdaptiveThresholds& thresholds) {
  if (mode == DeviceMode::kLowPower) return FrontierTier::kSaver;
  if (soc >= thresholds.high_soc) return FrontierTier::kPerformance;
  return FrontierTier::kBalanced;
}

AdaptivePolicy::AdaptivePolicy(AdaptiveThresholds thresholds)
    : thresholds_(thresholds) {
  if (thresholds.low_soc < 0.0 || thresholds.high_soc > 1.0 ||
      thresholds.low_soc > thresholds.high_soc) {
    throw std::invalid_argument(
        "AdaptivePolicy: need 0 <= low_soc <= high_soc <= 1");
  }
}

DeviceMode AdaptivePolicy::update(double soc) {
  if (mode_ == DeviceMode::kDynamic && soc <= thresholds_.low_soc) {
    mode_ = DeviceMode::kLowPower;
    ++switches_;
  } else if (mode_ == DeviceMode::kLowPower && soc >= thresholds_.high_soc) {
    mode_ = DeviceMode::kDynamic;
    ++switches_;
  }
  return mode_;
}

}  // namespace hhpim::fleet
