#include "fleet/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/align.hpp"
#include "common/serialize.hpp"
#include "fleet/outcome_cache.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim::fleet {

FleetSimulator::FleetSimulator(FleetOptions options) : options_(options) {
  if (options_.shard_size == 0) options_.shard_size = 1;
}

unsigned FleetSimulator::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned FleetSimulator::resolve_workers(unsigned requested, std::size_t shards) {
  return std::min<unsigned>(resolve_threads(requested),
                            static_cast<unsigned>(std::max<std::size_t>(shards, 1)));
}

std::size_t FleetSimulator::resolve_claim_batch(std::size_t requested,
                                                std::size_t shards,
                                                unsigned workers) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, shards / (static_cast<std::size_t>(workers) * 8));
}

placement::LutCache* FleetSimulator::resolve_lut_cache() const {
  if (!options_.share_luts) return nullptr;
  return options_.lut_cache != nullptr ? options_.lut_cache
                                       : &placement::LutCache::process_cache();
}

OutcomeCache* FleetSimulator::resolve_outcome_cache() const {
  if (!options_.memoize_devices) return nullptr;
  return options_.outcome_cache != nullptr ? options_.outcome_cache
                                           : &OutcomeCache::process_cache();
}

void write_device_line(std::ostream& os, const DeviceResult& r,
                       const std::vector<std::string>& model_names) {
  JsonWriter w{os, JsonWriter::Style::kCompact};
  w.begin_object();
  w.field("device", static_cast<std::uint64_t>(r.id));
  w.field("model", model_names[r.model_index]);
  w.field("scenario", std::string_view{workload::to_string(r.scenario)});
  w.field("seed", r.seed);
  w.field("slice_ps", r.slice_ps);
  w.field("slices_total", r.slices_total);
  w.field("slices_executed", r.slices_executed);
  w.field("tasks", r.tasks);
  w.field("tasks_dropped", r.tasks_dropped);
  w.field("deadline_violations", r.deadline_violations);
  w.field("energy_pj", r.energy_pj);
  w.field("battery_capacity_pj", r.battery_capacity_pj);
  w.field("final_soc", r.final_soc);
  w.field("exhausted_at_slice", r.exhausted_at_slice);
  w.field("mode_switches", static_cast<std::uint64_t>(r.mode_switches));
  w.field("low_power_slices", r.low_power_slices);
  w.field("busy_time_ps", r.busy_time_ps);
  w.field("max_busy_ps", r.max_busy_ps);
  w.field("movement_time_ps", r.movement_time_ps);
  if (r.host_cycles > 0) {
    // Appended only when the firmware co-simulates the RISC-V host, so
    // host-off fleets keep the pre-host line layout byte for byte
    // (pinned by tests/test_host_loop.cpp).
    w.field("host_cycles", r.host_cycles);
  }
  if (r.latency_slo_ps > 0) {
    // Appended only for SLO devices so no-SLO fleets keep the pre-SLO line
    // layout byte for byte (pinned by tests/test_fleet.cpp).
    w.field("latency_slo_ps", r.latency_slo_ps);
    w.field("tier_switches", static_cast<std::uint64_t>(r.tier_switches));
  }
  w.end_object();
  os << '\n';
}

void FleetResult::write_jsonl(std::ostream& os) const {
  for (const DeviceResult& r : devices) write_device_line(os, r, model_names);
}

std::string FleetResult::to_jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

namespace {

void write_summary_stats(JsonWriter& w, const sim::Summary& s) {
  w.begin_object();
  w.field("count", s.count());
  w.field("mean", s.mean());
  w.field("min", s.min());
  w.field("max", s.max());
  w.field("stddev", s.stddev());
  w.end_object();
}

void write_quantiles(JsonWriter& w, const sim::Histogram& h) {
  w.begin_object();
  w.field("p50", h.quantile(0.50));
  w.field("p95", h.quantile(0.95));
  w.field("p99", h.quantile(0.99));
  w.field("samples", h.total());
  w.field("overflow", h.overflow());
  w.end_object();
}

}  // namespace

void FleetResult::write_summary_json(std::ostream& os) const {
  JsonWriter w{os};
  w.begin_object();
  w.field("fleet", fleet_name);
  w.field("devices", aggregate.devices);
  w.field("shards", static_cast<std::uint64_t>(shard_count));
  w.field("shard_size", static_cast<std::uint64_t>(shard_size));
  w.field("executed_slices", aggregate.executed_slices);
  w.field("tasks", aggregate.tasks);
  w.field("tasks_dropped", aggregate.tasks_dropped);
  w.field("deadline_violations", aggregate.deadline_violations);
  w.field("exhausted_devices", aggregate.exhausted_devices);
  w.field("mode_switches", aggregate.mode_switches);
  w.field("low_power_slices", aggregate.low_power_slices);
  if (aggregate.host_cycles > 0) {
    // Host-off fleets keep the pre-host summary layout byte for byte.
    w.field("host_cycles", aggregate.host_cycles);
  }
  w.field("lut_builds", lut_builds);
  w.field("lut_shared", lut_shared);
  w.key("device_energy_mj");
  write_summary_stats(w, aggregate.device_energy_mj);
  w.key("final_soc");
  write_summary_stats(w, aggregate.final_soc);
  w.key("busy_us");
  write_summary_stats(w, aggregate.busy_us);
  w.key("busy_frac");
  write_quantiles(w, aggregate.busy_frac_hist());
  w.key("slice_energy_mj");
  write_quantiles(w, aggregate.slice_energy_hist());
  w.end_object();
  os << '\n';
}

std::string FleetResult::summary_to_json() const {
  std::ostringstream os;
  write_summary_json(os);
  return os.str();
}

namespace {

std::string shard_path(const std::string& dir, std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%05zu.jsonl", shard);
  return dir + "/" + name;
}

}  // namespace

FleetResult FleetSimulator::run(const FleetSpec& spec) const {
  const std::vector<DeviceSpec> device_specs = spec.expand();
  const std::vector<nn::Model> models = spec.resolved_models();
  const std::vector<sys::SystemConfig> firmwares = spec.resolved_firmware();
  const std::size_t n_models = models.size();
  // The global load envelope, resolved once and shared read-only by every
  // worker (empty = no envelope).
  const std::vector<double> env = spec.envelope_multipliers();
  placement::LutCache* const cache = resolve_lut_cache();
  const placement::LutCache::Stats stats_before =
      cache != nullptr ? cache->stats() : placement::LutCache::Stats{};
  OutcomeCache* const memo = resolve_outcome_cache();
  const OutcomeCache::Stats memo_before =
      memo != nullptr ? memo->stats() : OutcomeCache::Stats{};

  const std::size_t n = device_specs.size();
  const std::size_t shard_size = options_.shard_size;
  const std::size_t shards = n == 0 ? 0 : (n + shard_size - 1) / shard_size;

  FleetResult result{.fleet_name = spec.name,
                     .devices = {},
                     .model_names = {},
                     .aggregate = FleetAggregate{spec.histograms},
                     .shard_count = shards,
                     .shard_size = shard_size};
  result.model_names.reserve(models.size());
  for (const nn::Model& m : models) result.model_names.push_back(m.name());
  if (options_.keep_results) result.devices.resize(n);

  // One slot per shard, each on its own cache line: a worker finishing
  // shard s move-assigns into slot s while a sibling fills s±1 — without
  // the alignment those writes would false-share a line.
  struct alignas(kCacheLine) ShardSlot {
    FleetAggregate agg;
  };
  std::vector<ShardSlot> shard_aggs(shards, ShardSlot{FleetAggregate{spec.histograms}});

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> next{0};

  // Checkout pool of reusable processors, one freelist per (firmware,
  // model) pair — flattened as firmware * n_models + model — shared by all
  // workers (reuse_processors): the pair fully determines a device's
  // processor. Sharing the pool bounds constructions by the peak per-pair
  // overlap — a per-worker pool would construct workers × pairs
  // processors, which is exactly what made 8 oversubscribed workers slower
  // than 1 on a single core. Checkout/return are pointer pops under a
  // per-pair mutex, held for nanoseconds against device runs of tens of
  // microseconds; each freelist sits on its own cache line.
  struct alignas(kCacheLine) ModelPool {
    std::mutex mu;
    std::vector<std::unique_ptr<sys::Processor>> idle;
  };
  const bool reuse = options_.reuse_processors;
  const std::size_t n_pairs = firmwares.size() * n_models;
  std::vector<ModelPool> model_pools(reuse ? n_pairs : 0);
  std::vector<sys::SystemConfig> fw_cfgs;
  if (reuse || memo != nullptr) {
    fw_cfgs.reserve(firmwares.size());
    for (const sys::SystemConfig& fw : firmwares) {
      sys::SystemConfig c = fw;
      c.lut_cache = cache;
      fw_cfgs.push_back(c);
    }
  }
  const auto pair_of = [n_models](const DeviceSpec& ds) {
    return ds.firmware_index * n_models + ds.model_index;
  };

  // Returns a processor for pair `p` in just-constructed state (pooled ones
  // are reset() outside the lock; construction also happens outside the
  // lock).
  auto checkout = [&](std::size_t pair) {
    ModelPool& mp = model_pools[pair];
    std::unique_ptr<sys::Processor> p;
    {
      const std::lock_guard<std::mutex> lock{mp.mu};
      if (!mp.idle.empty()) {
        p = std::move(mp.idle.back());
        mp.idle.pop_back();
      }
    }
    if (p != nullptr) {
      p->reset();
      return p;
    }
    return std::make_unique<sys::Processor>(fw_cfgs[pair / n_models],
                                            models[pair % n_models]);
  };
  auto give_back = [&](std::size_t pair, std::unique_ptr<sys::Processor> p) {
    ModelPool& mp = model_pools[pair];
    const std::lock_guard<std::mutex> lock{mp.mu};
    mp.idle.push_back(std::move(p));
  };

  // Per-pair constants of the memo path, computed once up front. Only
  // pairs some device actually uses get a processor built here — building
  // an unused pair's LUT would bump lut_builds and break the memo-on /
  // memo-off byte-identity of the summary. Pool processors are checked out
  // and returned, so nothing extra is constructed under reuse.
  struct ModelMemoInfo {
    std::uint64_t reuse_key = 0;
    std::uint64_t init_state = 0;  ///< state_digest() of a fresh processor
    Time slice = Time::zero();
    std::int64_t slice_ps = 0;
  };
  std::vector<ModelMemoInfo> model_info(memo != nullptr ? n_pairs : 0);
  if (memo != nullptr && n > 0) {
    std::vector<char> used(n_pairs, 0);
    for (const DeviceSpec& ds : device_specs) used[pair_of(ds)] = 1;
    for (std::size_t pair = 0; pair < n_pairs; ++pair) {
      if (used[pair] == 0) continue;
      ModelMemoInfo& info = model_info[pair];
      info.reuse_key = sys::processor_reuse_key(fw_cfgs[pair / n_models],
                                                models[pair % n_models]);
      if (reuse) {
        std::unique_ptr<sys::Processor> p = checkout(pair);
        info.init_state = p->state_digest();
        info.slice = p->slice_length();
        give_back(pair, std::move(p));
      } else {
        const sys::Processor p{fw_cfgs[pair / n_models], models[pair % n_models]};
        info.init_state = p.state_digest();
        info.slice = p.slice_length();
      }
      info.slice_ps = info.slice.as_ps();
    }
  }

  // Battery constants shared by every device (the fleet has one
  // BatteryConfig): replay lanes mirror energy::Battery on these raw pJ
  // doubles. spec.expand() already validated the config.
  const double capacity_pj =
      memo != nullptr ? energy::Battery{spec.battery}.capacity().as_pj() : 0.0;
  const double initial_charge_pj =
      memo != nullptr ? energy::Battery{spec.battery}.charge().as_pj() : 0.0;
  const auto k_dynamic = static_cast<std::uint8_t>(DeviceMode::kDynamic);
  const auto k_low_power = static_cast<std::uint8_t>(DeviceMode::kLowPower);
  const bool charging_on = spec.charging.period > 0 && spec.charging.window > 0;
  const double charge_step_pj = spec.charging.energy_per_slice.as_pj();

  // SoA hot state of one shard's replay lanes, owned per worker and reused
  // across its shards (assign() keeps capacity): a memo-hit device advances
  // entirely inside these arrays — no Processor, no Battery, no per-device
  // allocation. sample_* buffer phase 1's per-slice aggregate samples so
  // phase 2 can flush them device-major, in the exact order the scalar path
  // feeds FleetAggregate (Summary adds are order-sensitive in the last
  // floating-point bit).
  struct ReplayScratch {
    std::vector<std::vector<int>> loads;   ///< per-device trace, buffers reused
    std::vector<int> exact_loads;          ///< non-memo path trace buffer
    std::vector<std::int32_t> steps;       ///< per-device stream length
    std::vector<std::int32_t> join;        ///< global slice of local step 0
    std::vector<std::uint8_t> drain;       ///< runs the trailing drain slice?
    std::vector<std::uint8_t> replay;      ///< lane still on the memo path?
    std::vector<double> charge_pj;         ///< Battery::charge mirror
    std::vector<std::uint8_t> mode;        ///< DeviceMode
    std::vector<std::uint32_t> switches;   ///< AdaptivePolicy::switches mirror
    std::vector<std::uint8_t> tier;        ///< applied FrontierTier (255 = none)
    std::vector<std::uint32_t> tier_switches;  ///< Device tier_switches mirror
    std::vector<std::uint64_t> state;      ///< current processor-state digest
    std::vector<std::int32_t> buffered;    ///< arrivals awaiting execution
    std::vector<double> energy_pj;
    std::vector<std::int64_t> busy_ps;
    std::vector<std::int64_t> max_busy_ps;
    std::vector<std::int64_t> movement_ps;
    std::vector<std::uint64_t> host_cycles;
    std::vector<std::uint64_t> tasks;
    std::vector<std::uint64_t> deadline_violations;
    std::vector<std::int32_t> low_power;
    std::vector<std::int64_t> sample_busy_ps;   ///< count x (slices+1)
    std::vector<double> sample_energy_pj;       ///< count x (slices+1)
    OutcomeRecorder recorder;
    /// The shard's recorded outcomes, published in ONE insert_batch at
    /// shard end: all of a shard's lookups happen in phase 1, before any
    /// phase-2 device records, so batching per shard has the same hit
    /// behavior as per-device inserts at a fraction of the copy-on-write
    /// churn (one snapshot copy per shard with news, not one per device).
    std::vector<std::pair<SliceOutcomeKey, SliceOutcome>> pending;
  };
  std::atomic<std::uint64_t> memo_replayed{0};
  std::atomic<std::uint64_t> memo_exact{0};

  auto run_shard = [&](std::size_t s, ReplayScratch& scratch) {
    const std::size_t begin = s * shard_size;
    const std::size_t end = std::min(n, begin + shard_size);
    FleetAggregate agg{spec.histograms};
    std::vector<DeviceResult> local;
    const bool stream = !options_.shard_dir.empty();
    if (stream && !options_.keep_results) local.reserve(end - begin);

    // The shard's current lease: held across consecutive devices of the
    // same (firmware, model) pair, returned on a pair switch or at shard
    // end. A device that throws abandons the lease (the processor may be
    // mid-run).
    std::unique_ptr<sys::Processor> held;
    std::size_t held_model = 0;

    auto emit = [&](std::size_t i, DeviceResult&& r) {
      if (options_.keep_results) {
        result.devices[i] = std::move(r);
      } else if (stream) {
        local.push_back(std::move(r));
      }
    };

    if (memo != nullptr) {
      const std::size_t count = end - begin;
      const auto total_slices = static_cast<std::size_t>(spec.slices) + 1;

      if (scratch.loads.size() < count) scratch.loads.resize(count);
      scratch.steps.resize(count);
      scratch.join.resize(count);
      scratch.drain.resize(count);
      scratch.replay.assign(count, 1);
      scratch.charge_pj.assign(count, initial_charge_pj);
      scratch.mode.assign(count, k_dynamic);
      scratch.switches.assign(count, 0);
      scratch.tier.assign(count, 255);
      scratch.tier_switches.assign(count, 0);
      scratch.state.resize(count);
      scratch.buffered.assign(count, 0);
      scratch.energy_pj.assign(count, 0.0);
      scratch.busy_ps.assign(count, 0);
      scratch.max_busy_ps.assign(count, 0);
      scratch.movement_ps.assign(count, 0);
      scratch.host_cycles.assign(count, 0);
      scratch.tasks.assign(count, 0);
      scratch.deadline_violations.assign(count, 0);
      scratch.low_power.assign(count, 0);
      scratch.sample_busy_ps.resize(count * total_slices);
      scratch.sample_energy_pj.resize(count * total_slices);
      for (std::size_t i = 0; i < count; ++i) {
        const DeviceSpec& ds = device_specs[begin + i];
        device_loads_into(ds, env, scratch.loads[i]);
        scratch.state[i] = model_info[pair_of(ds)].init_state;
        // Lifecycle window (mirrors Device::has_drain/total_steps): a
        // horizon device runs its arrivals plus the drain slice; an early
        // leaver runs arrivals only and drops its final buffer.
        const bool has_drain = ds.leave_slice < 0 || ds.leave_slice >= spec.slices;
        scratch.drain[i] = has_drain ? 1 : 0;
        scratch.join[i] = ds.join_slice;
        scratch.steps[i] =
            static_cast<std::int32_t>(scratch.loads[i].size()) + (has_drain ? 1 : 0);
      }

      // Phase 1 — slice-major lane advance. Each lane mirrors exactly what
      // Device::run does around run_slice: hysteresis on the pre-drain SoC,
      // then the battery clamp on the outcome's *requested* energy. A cold
      // key or a clamped drain (exhaustion boundary) parks the lane for the
      // exact path — its partial lane state is discarded wholesale, so
      // nothing double-counts.
      for (std::size_t k = 0; k < total_slices; ++k) {
        for (std::size_t i = 0; i < count; ++i) {
          if (scratch.replay[i] == 0) continue;
          if (static_cast<std::int32_t>(k) >= scratch.steps[i]) continue;
          const DeviceSpec& ds = device_specs[begin + i];
          if (charging_on) {
            // Mirrors Battery::recharge on raw pJ doubles, before the
            // policy observes the SoC (same order as Device::run_steps).
            const int g = scratch.join[i] + static_cast<int>(k);
            if (g % spec.charging.period < spec.charging.window) {
              scratch.charge_pj[i] += charge_step_pj;
              if (scratch.charge_pj[i] > capacity_pj) {
                scratch.charge_pj[i] = capacity_pj;
              }
            }
          }
          std::uint8_t slice_tier = 0;
          if (spec.adapt) {
            const double soc = scratch.charge_pj[i] / capacity_pj;
            if (scratch.mode[i] == k_dynamic && soc <= spec.thresholds.low_soc) {
              scratch.mode[i] = k_low_power;
              ++scratch.switches[i];
            } else if (scratch.mode[i] == k_low_power &&
                       soc >= spec.thresholds.high_soc) {
              scratch.mode[i] = k_dynamic;
              ++scratch.switches[i];
            }
            if (ds.latency_slo_ps > 0) {
              // Mirror of the Device's frontier pick — the same pure
              // select_tier on the same (mode, SoC) the hysteresis just saw.
              slice_tier = static_cast<std::uint8_t>(
                  select_tier(static_cast<DeviceMode>(scratch.mode[i]), soc,
                              spec.thresholds));
            }
          }
          if (ds.latency_slo_ps > 0 && slice_tier != scratch.tier[i]) {
            if (scratch.tier[i] != 255) ++scratch.tier_switches[i];
            scratch.tier[i] = slice_tier;
          }
          const SliceOutcome* out = memo->lookup(
              SliceOutcomeKey{model_info[pair_of(ds)].reuse_key,
                              scratch.state[i], ds.latency_slo_ps,
                              static_cast<std::uint32_t>(scratch.buffered[i]),
                              scratch.mode[i], slice_tier});
          if (out == nullptr) {
            scratch.replay[i] = 0;  // cold key -> exact path
            continue;
          }
          const double requested = out->energy_pj;
          const double drained =
              requested < scratch.charge_pj[i] ? requested : scratch.charge_pj[i];
          if (drained < requested) {
            scratch.replay[i] = 0;  // exhaustion boundary -> exact path
            continue;
          }
          scratch.charge_pj[i] -= drained;
          scratch.tasks[i] += static_cast<std::uint64_t>(scratch.buffered[i]);
          scratch.deadline_violations[i] += out->deadline_violated ? 1 : 0;
          scratch.energy_pj[i] += drained;
          scratch.busy_ps[i] += out->busy_ps;
          scratch.max_busy_ps[i] = std::max(scratch.max_busy_ps[i], out->busy_ps);
          scratch.movement_ps[i] += out->movement_ps;
          scratch.host_cycles[i] += out->host_cycles;
          if (scratch.mode[i] == k_low_power) ++scratch.low_power[i];
          scratch.sample_busy_ps[i * total_slices + k] = out->busy_ps;
          scratch.sample_energy_pj[i * total_slices + k] = out->energy_pj;
          scratch.state[i] = out->post_state;
          scratch.buffered[i] =
              k < scratch.loads[i].size() ? scratch.loads[i][k] : 0;
        }
      }

      // Phase 2 — device-major flush, in device order: replayed lanes
      // materialize their DeviceResult and feed the aggregate exactly as
      // the scalar path would have; parked lanes run the full Device path
      // at their ordinal position, recording their outcomes for everyone
      // after them.
      std::uint64_t shard_replayed = 0;
      std::uint64_t shard_exact = 0;
      scratch.pending.clear();
      for (std::size_t i = 0; i < count; ++i) {
        const DeviceSpec& ds = device_specs[begin + i];
        DeviceResult r;
        if (scratch.replay[i] != 0) {
          const ModelMemoInfo& info = model_info[pair_of(ds)];
          const auto dev_steps = static_cast<std::size_t>(scratch.steps[i]);
          r.id = ds.id;
          r.model_index = static_cast<std::uint32_t>(ds.model_index);
          r.scenario = ds.scenario;
          r.seed = ds.seed;
          r.slice_ps = info.slice_ps;
          r.slices_total = scratch.steps[i];
          r.slices_executed = scratch.steps[i];
          r.tasks = scratch.tasks[i];
          // Replayed devices never exhaust; an early leaver still drops its
          // final buffer (no drain slice runs it).
          r.tasks_dropped = scratch.drain[i] != 0
                                ? 0
                                : static_cast<std::uint64_t>(scratch.buffered[i]);
          r.deadline_violations = scratch.deadline_violations[i];
          r.energy_pj = scratch.energy_pj[i];
          r.battery_capacity_pj = capacity_pj;
          r.final_soc = scratch.charge_pj[i] / capacity_pj;
          r.exhausted_at_slice = -1;
          r.mode_switches = scratch.switches[i];
          r.low_power_slices = scratch.low_power[i];
          r.busy_time_ps = scratch.busy_ps[i];
          r.max_busy_ps = scratch.max_busy_ps[i];
          r.movement_time_ps = scratch.movement_ps[i];
          r.host_cycles = scratch.host_cycles[i];
          r.latency_slo_ps = ds.latency_slo_ps;
          r.tier_switches = scratch.tier_switches[i];
          for (std::size_t k = 0; k < dev_steps; ++k) {
            const Time busy = Time::ps(scratch.sample_busy_ps[i * total_slices + k]);
            agg.add_slice(
                busy / info.slice, busy.as_us(),
                Energy::pj(scratch.sample_energy_pj[i * total_slices + k]).as_mj());
          }
          agg.add_device(r);
          ++shard_replayed;
        } else {
          const std::size_t pair = pair_of(ds);
          scratch.recorder.reuse_key = model_info[pair].reuse_key;
          scratch.recorder.recorded.clear();
          if (reuse) {
            if (held == nullptr) {
              held = checkout(pair);
              held_model = pair;
            } else if (held_model != pair) {
              give_back(held_model, std::move(held));
              held = checkout(pair);
              held_model = pair;
            } else {
              held->reset();
            }
            Device dev{spec, ds, models[ds.model_index], *held};
            r = dev.run(&agg, scratch.loads[i], &scratch.recorder);
          } else {
            Device dev{spec, ds, models[ds.model_index], cache};
            r = dev.run(&agg, scratch.loads[i], &scratch.recorder);
          }
          scratch.pending.insert(scratch.pending.end(),
                                 scratch.recorder.recorded.begin(),
                                 scratch.recorder.recorded.end());
          ++shard_exact;
        }
        emit(begin + i, std::move(r));
      }
      if (!scratch.pending.empty()) memo->insert_batch(scratch.pending);
      memo_replayed.fetch_add(shard_replayed, std::memory_order_relaxed);
      memo_exact.fetch_add(shard_exact, std::memory_order_relaxed);
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        const DeviceSpec& ds = device_specs[i];
        device_loads_into(ds, env, scratch.exact_loads);
        DeviceResult r;
        if (reuse) {
          const std::size_t pair = pair_of(ds);
          if (held == nullptr) {
            held = checkout(pair);
            held_model = pair;
          } else if (held_model != pair) {
            give_back(held_model, std::move(held));
            held = checkout(pair);
            held_model = pair;
          } else {
            held->reset();
          }
          Device dev{spec, ds, models[ds.model_index], *held};
          r = dev.run(&agg, scratch.exact_loads, nullptr);
        } else {
          Device dev{spec, ds, models[ds.model_index], cache};
          r = dev.run(&agg, scratch.exact_loads, nullptr);
        }
        emit(i, std::move(r));
      }
    }
    if (held != nullptr) give_back(held_model, std::move(held));

    if (stream) {
      // Format into a private buffer first, then write the file in one
      // call: the worker spends no time in the filesystem while holding
      // work another claim could overlap with, and no handoff ever blocks
      // a sibling worker.
      std::ostringstream buf;
      if (options_.keep_results) {
        for (std::size_t i = begin; i < end; ++i) {
          write_device_line(buf, result.devices[i], result.model_names);
        }
      } else {
        for (const DeviceResult& r : local) {
          write_device_line(buf, r, result.model_names);
        }
      }
      const std::string path = shard_path(options_.shard_dir, s);
      std::ofstream out(path, std::ios::binary);
      if (!out) throw std::runtime_error("fleet: cannot open " + path);
      const std::string& bytes = buf.str();
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out) throw std::runtime_error("fleet: write failed for " + path);
    }
    shard_aggs[s].agg = std::move(agg);
  };

  const unsigned workers = resolve_workers(options_.threads, shards);
  const std::size_t batch =
      resolve_claim_batch(options_.claim_batch, shards, workers);

  auto worker = [&] {
    ReplayScratch scratch;  // per-worker; lane buffers reused across shards
    for (;;) {
      const std::size_t base = next.fetch_add(batch, std::memory_order_relaxed);
      if (base >= shards) return;
      const std::size_t limit = std::min(shards, base + batch);
      for (std::size_t s = base; s < limit; ++s) {
        try {
          run_shard(s, scratch);
        } catch (...) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Merge in shard-index order: Summary merges are order-sensitive in the
  // last floating-point bit, so a fixed order keeps output byte-identical
  // at any thread count.
  for (const ShardSlot& slot : shard_aggs) result.aggregate.merge(slot.agg);

  if (cache != nullptr) {
    const placement::LutCache::Stats after = cache->stats();
    // Builds: one cache miss per new key, regardless of thread count or
    // processor reuse (concurrent first touches dedup through the cache's
    // build future). Shared: the devices that ran on a LUT they didn't
    // build. Raw hit counts would vary with threads under processor reuse
    // (each worker's pool probes the cache once per model it encounters),
    // so the shared count is derived instead — keeping the summary JSON
    // byte-identical at any thread count.
    result.lut_builds = after.misses - stats_before.misses;
    // Only HH-PIM devices resolve through the LUT cache; static archs in a
    // mixed-firmware fleet never share a build. (Single-firmware fleets
    // reduce to the old all-or-nothing formula.)
    std::uint64_t hhpim_devices = 0;
    for (const DeviceSpec& ds : device_specs) {
      if (firmwares[ds.firmware_index].arch.kind == sys::ArchKind::kHhpim) {
        ++hhpim_devices;
      }
    }
    result.lut_shared = hhpim_devices >= result.lut_builds
                            ? hhpim_devices - result.lut_builds
                            : 0;
  }
  if (memo != nullptr) {
    const OutcomeCache::Stats memo_after = memo->stats();
    result.memo_replayed_devices = memo_replayed.load(std::memory_order_relaxed);
    result.memo_exact_devices = memo_exact.load(std::memory_order_relaxed);
    result.memo_hits = memo_after.hits - memo_before.hits;
    result.memo_misses = memo_after.misses - memo_before.misses;
  }
  return result;
}

namespace {

/// The LUT-cache key a Processor built from (cfg, model) resolves through —
/// mirrors the kHhpim branch of the Processor constructor, without
/// constructing one. Only meaningful for an HH-PIM arch.
placement::LutCacheKey device_lut_key(const sys::SystemConfig& cfg,
                                      const nn::Model& model) {
  const placement::CostModel cost = placement::CostModel::build(
      sys::resolved_power_spec(cfg), cfg.arch.hp_shape(), cfg.arch.lp_shape(),
      model.uses_per_weight());
  placement::LutParams lp;
  lp.slice = sys::derived_slice_length(cfg, model);
  lp.total_weights = model.effective_params();
  lp.t_entries = cfg.lut_t_entries;
  lp.k_blocks = cfg.lut_k_blocks;
  return placement::LutCacheKey::make(model.topology_hash(),
                                      cfg.arch.config_hash(), cost, lp);
}

}  // namespace

FleetSnapshot FleetSimulator::run_to(const FleetSpec& spec, int end_slice,
                                     const FleetSnapshot* from) const {
  const int start = from != nullptr ? from->next_slice : 0;
  if (end_slice <= start || end_slice > spec.slices) {
    throw std::invalid_argument(
        "FleetSimulator::run_to: end_slice must lie in (" +
        std::to_string(start) + ", " + std::to_string(spec.slices) + "]");
  }
  return run_segment(spec, end_slice, from, nullptr);
}

FleetResult FleetSimulator::resume(const FleetSpec& spec,
                                   const FleetSnapshot& from) const {
  FleetResult result;
  (void)run_segment(spec, spec.slices, &from, &result);
  return result;
}

FleetSnapshot FleetSimulator::run_segment(const FleetSpec& spec, int end_slice,
                                          const FleetSnapshot* from,
                                          FleetResult* final_out) const {
  const bool final_segment = final_out != nullptr;
  const std::vector<DeviceSpec> device_specs = spec.expand();
  const std::vector<nn::Model> models = spec.resolved_models();
  const std::vector<sys::SystemConfig> firmwares = spec.resolved_firmware();
  const std::size_t n_models = models.size();
  const std::vector<double> env = spec.envelope_multipliers();
  placement::LutCache* const cache = resolve_lut_cache();
  const std::uint64_t digest = spec.content_digest();
  const std::size_t n = device_specs.size();

  if (from != nullptr) {
    if (from->spec_digest != digest) {
      throw std::runtime_error(
          "snapshot: spec mismatch — the snapshot's content digest differs "
          "from this FleetSpec's (models, firmware, workload, lifecycle, "
          "battery, envelope or seed changed between segments)");
    }
    if (from->devices.size() != n) {
      throw std::runtime_error("snapshot: device count mismatch");
    }
    if (from->next_slice > spec.slices) {
      throw std::runtime_error("snapshot: next_slice beyond the fleet horizon");
    }
  }

  FleetSnapshot snap;
  snap.spec_digest = digest;
  snap.next_slice = final_segment ? spec.slices : end_slice;
  if (from != nullptr) {
    snap.lut_builds = from->lut_builds;
    snap.lut_counted = from->lut_counted;
    snap.devices = from->devices;
  } else {
    snap.devices.resize(n);
  }

  // Active = will construct a processor and execute steps this segment:
  // not yet finished, and (for a bounded segment) already joined.
  const auto active = [&](std::size_t i) {
    const DeviceProgress& p = snap.devices[i];
    if (p.done) return false;
    return final_segment || device_specs[i].join_slice < end_slice;
  };

  // LUT-build accounting, single-threaded before the pool spins up: a
  // newly-accounted key absent from the cache counts as one build (the
  // segment's workers will build it); rebuilds of an already-accounted key
  // — a later segment in a fresh process with a cold cache — are never
  // re-counted. The final summary's lut_builds therefore equals the delta
  // one uninterrupted run() would have measured.
  if (cache != nullptr) {
    std::vector<char> pair_probed(firmwares.size() * n_models, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!active(i)) continue;
      const DeviceSpec& ds = device_specs[i];
      const sys::SystemConfig& fw = firmwares[ds.firmware_index];
      if (fw.arch.kind != sys::ArchKind::kHhpim) continue;
      const std::size_t pair = ds.firmware_index * n_models + ds.model_index;
      if (pair_probed[pair] != 0) continue;
      pair_probed[pair] = 1;
      const placement::LutCacheKey key =
          device_lut_key(fw, models[ds.model_index]);
      if (std::find(snap.lut_counted.begin(), snap.lut_counted.end(), key) !=
          snap.lut_counted.end()) {
        continue;
      }
      if (!cache->contains(key)) ++snap.lut_builds;
      snap.lut_counted.push_back(key);
    }
  }

  const std::size_t shard_size = options_.shard_size;
  const std::size_t shards = n == 0 ? 0 : (n + shard_size - 1) / shard_size;

  if (final_segment) {
    *final_out = FleetResult{.fleet_name = spec.name,
                             .devices = {},
                             .model_names = {},
                             .aggregate = FleetAggregate{spec.histograms},
                             .shard_count = shards,
                             .shard_size = shard_size};
    final_out->model_names.reserve(models.size());
    for (const nn::Model& m : models) final_out->model_names.push_back(m.name());
    if (options_.keep_results) final_out->devices.resize(n);
  }

  struct alignas(kCacheLine) ShardSlot {
    FleetAggregate agg;
  };
  std::vector<ShardSlot> shard_aggs(final_segment ? shards : 0,
                                    ShardSlot{FleetAggregate{spec.histograms}});

  // Processor checkout pool, identical in shape to run()'s.
  struct alignas(kCacheLine) ModelPool {
    std::mutex mu;
    std::vector<std::unique_ptr<sys::Processor>> idle;
  };
  const bool reuse = options_.reuse_processors;
  const std::size_t n_pairs = firmwares.size() * n_models;
  std::vector<ModelPool> model_pools(reuse ? n_pairs : 0);
  std::vector<sys::SystemConfig> fw_cfgs;
  fw_cfgs.reserve(firmwares.size());
  for (const sys::SystemConfig& fw : firmwares) {
    sys::SystemConfig c = fw;
    c.lut_cache = cache;
    fw_cfgs.push_back(c);
  }
  auto checkout = [&](std::size_t pair) {
    ModelPool& mp = model_pools[pair];
    std::unique_ptr<sys::Processor> p;
    {
      const std::lock_guard<std::mutex> lock{mp.mu};
      if (!mp.idle.empty()) {
        p = std::move(mp.idle.back());
        mp.idle.pop_back();
      }
    }
    if (p != nullptr) {
      p->reset();
      return p;
    }
    return std::make_unique<sys::Processor>(fw_cfgs[pair / n_models],
                                            models[pair % n_models]);
  };
  auto give_back = [&](std::size_t pair, std::unique_ptr<sys::Processor> p) {
    ModelPool& mp = model_pools[pair];
    const std::lock_guard<std::mutex> lock{mp.mu};
    mp.idle.push_back(std::move(p));
  };

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> next{0};

  auto run_shard = [&](std::size_t s, std::vector<int>& loads_buf) {
    const std::size_t begin = s * shard_size;
    const std::size_t end = std::min(n, begin + shard_size);
    FleetAggregate agg{spec.histograms};
    std::vector<DeviceResult> local;
    const bool stream = final_segment && !options_.shard_dir.empty();
    if (stream && !options_.keep_results) local.reserve(end - begin);

    std::unique_ptr<sys::Processor> held;
    std::size_t held_pair = 0;

    auto emit = [&](std::size_t i, DeviceResult&& r) {
      if (options_.keep_results) {
        final_out->devices[i] = std::move(r);
      } else if (stream) {
        local.push_back(std::move(r));
      }
    };

    // Replays the sample slices buffered by earlier segments, then (final
    // segment) runs the rest live — per device, all add_slice calls in
    // slice order followed by one add_device: the exact device-major
    // order the uninterrupted run feeds the aggregate.
    auto advance = [&](Device& dev, DeviceProgress& p, const DeviceSpec& ds) {
      if (!p.started) {
        dev.start_progress(p, loads_buf);
      } else {
        dev.restore_progress(p);
      }
      if (final_segment) {
        const Time slice = Time::ps(p.result.slice_ps);
        for (std::size_t k = 0; k < p.sample_busy_ps.size(); ++k) {
          const Time busy = Time::ps(p.sample_busy_ps[k]);
          agg.add_slice(busy / slice, busy.as_us(),
                        Energy::pj(p.sample_energy_pj[k]).as_mj());
        }
        (void)dev.run_steps(p, loads_buf, dev.total_steps(loads_buf), &agg,
                            nullptr);
        agg.add_device(p.result);
      } else {
        const int k_end = end_slice - ds.join_slice;
        const bool done =
            dev.run_steps(p, loads_buf, k_end, nullptr, nullptr,
                          /*buffer_samples=*/true);
        if (done) {
          p.proc_state.clear();  // finished devices carry no processor blob
        } else {
          dev.capture_progress(p);
        }
      }
    };

    for (std::size_t i = begin; i < end; ++i) {
      DeviceProgress& p = snap.devices[i];
      const DeviceSpec& ds = device_specs[i];
      if (p.done) {
        if (final_segment) {
          // Finished in an earlier segment: replay its buffered samples at
          // its ordinal position and emit its stored result.
          const Time slice = Time::ps(p.result.slice_ps);
          for (std::size_t k = 0; k < p.sample_busy_ps.size(); ++k) {
            const Time busy = Time::ps(p.sample_busy_ps[k]);
            agg.add_slice(busy / slice, busy.as_us(),
                          Energy::pj(p.sample_energy_pj[k]).as_mj());
          }
          agg.add_device(p.result);
          emit(i, std::move(p.result));
        }
        continue;
      }
      if (!final_segment && ds.join_slice >= end_slice) continue;

      device_loads_into(ds, env, loads_buf);
      if (reuse) {
        const std::size_t pair =
            ds.firmware_index * n_models + ds.model_index;
        if (held == nullptr) {
          held = checkout(pair);
          held_pair = pair;
        } else if (held_pair != pair) {
          give_back(held_pair, std::move(held));
          held = checkout(pair);
          held_pair = pair;
        } else {
          held->reset();
        }
        Device dev{spec, ds, models[ds.model_index], *held};
        advance(dev, p, ds);
      } else {
        Device dev{spec, ds, models[ds.model_index], cache};
        advance(dev, p, ds);
      }
      if (final_segment) emit(i, std::move(p.result));
    }
    if (held != nullptr) give_back(held_pair, std::move(held));

    if (stream) {
      std::ostringstream buf;
      if (options_.keep_results) {
        for (std::size_t i = begin; i < end; ++i) {
          write_device_line(buf, final_out->devices[i], final_out->model_names);
        }
      } else {
        for (const DeviceResult& r : local) {
          write_device_line(buf, r, final_out->model_names);
        }
      }
      const std::string path = shard_path(options_.shard_dir, s);
      std::ofstream out(path, std::ios::binary);
      if (!out) throw std::runtime_error("fleet: cannot open " + path);
      const std::string& bytes = buf.str();
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out) throw std::runtime_error("fleet: write failed for " + path);
    }
    if (final_segment) shard_aggs[s].agg = std::move(agg);
  };

  const unsigned workers = resolve_workers(options_.threads, shards);
  const std::size_t batch =
      resolve_claim_batch(options_.claim_batch, shards, workers);

  auto worker = [&] {
    std::vector<int> loads_buf;  // per-worker trace buffer, reused
    for (;;) {
      const std::size_t base = next.fetch_add(batch, std::memory_order_relaxed);
      if (base >= shards) return;
      const std::size_t limit = std::min(shards, base + batch);
      for (std::size_t s = base; s < limit; ++s) {
        try {
          run_shard(s, loads_buf);
        } catch (...) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  if (final_segment) {
    for (const ShardSlot& slot : shard_aggs) {
      final_out->aggregate.merge(slot.agg);
    }
    if (cache != nullptr) {
      final_out->lut_builds = snap.lut_builds;
      std::uint64_t hhpim_devices = 0;
      for (const DeviceSpec& ds : device_specs) {
        if (firmwares[ds.firmware_index].arch.kind == sys::ArchKind::kHhpim) {
          ++hhpim_devices;
        }
      }
      final_out->lut_shared = hhpim_devices >= snap.lut_builds
                                  ? hhpim_devices - snap.lut_builds
                                  : 0;
    }
    // memo_* stats stay 0: segments run the exact path (to which the memo
    // path is byte-identical), so nothing is looked up or recorded.
  }
  return snap;
}

}  // namespace hhpim::fleet
