#include "fleet/snapshot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace hhpim::fleet {
namespace {

// "hhpimsnp", little-endian. Version bumps whenever the payload layout
// changes incompatibly; a reader never guesses at a newer layout.
constexpr std::uint64_t kMagic = 0x706e736d69706868ULL;
constexpr std::uint32_t kVersion = 1;

// Per-device field tags. Explicit tags (rather than bare field order) keep
// the format self-describing: a reader meeting a tag it does not know
// throws instead of misinterpreting the bytes that follow.
enum : std::uint16_t {
  kTagFlags = 1,    ///< u8: bit0 started, bit1 done
  kTagResult = 2,   ///< the DeviceResult fixed block
  kTagLane = 3,     ///< next_k, mode, switches, buffered, charge
  kTagSamples = 4,  ///< buffered per-slice aggregate samples
  kTagProc = 5,     ///< Processor::save_state blob (live devices only)
  kTagDeviceEnd = 6,
  /// SLO lane (latency_slo_ps, tier_switches, applied tier) — written only
  /// when the device carries an SLO, so no-SLO snapshots stay byte-identical
  /// to pre-SLO builds (and readable by them: the tag is self-describing
  /// within this build; older readers fail loudly on it, which is the
  /// intended behavior for a snapshot that genuinely needs the SLO fields).
  kTagSlo = 7,
  /// RISC-V host cycle counter — written only when non-zero, so host-off
  /// snapshots stay byte-identical to pre-host builds (docs/RISCV.md).
  kTagHost = 8,
};

/// FNV-1a over a byte run, 8 bytes per step (little-endian packed, zero
/// padded tail; the length is hashed first so padding cannot collide).
std::uint64_t digest_bytes(std::string_view bytes) {
  Fnv1a h;
  h.add(static_cast<std::uint64_t>(bytes.size()));
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    std::uint64_t chunk = 0;
    const std::size_t n = bytes.size() - i < 8 ? bytes.size() - i : 8;
    for (std::size_t j = 0; j < n; ++j) {
      chunk |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes[i + j]))
               << (8 * j);
    }
    h.add(chunk);
  }
  return h.digest();
}

void write_device(ByteWriter& w, const DeviceProgress& p) {
  w.u16(kTagFlags);
  w.u8(static_cast<std::uint8_t>((p.started ? 1u : 0u) | (p.done ? 2u : 0u)));

  w.u16(kTagResult);
  const DeviceResult& r = p.result;
  w.u32(r.id);
  w.u32(r.model_index);
  w.u8(static_cast<std::uint8_t>(r.scenario));
  w.u64(r.seed);
  w.i64(r.slice_ps);
  w.i32(r.slices_total);
  w.i32(r.slices_executed);
  w.u64(r.tasks);
  w.u64(r.tasks_dropped);
  w.u64(r.deadline_violations);
  w.f64(r.energy_pj);
  w.f64(r.battery_capacity_pj);
  w.f64(r.final_soc);
  w.i32(r.exhausted_at_slice);
  w.u32(r.mode_switches);
  w.i32(r.low_power_slices);
  w.i64(r.busy_time_ps);
  w.i64(r.max_busy_ps);
  w.i64(r.movement_time_ps);

  w.u16(kTagLane);
  w.i32(p.next_k);
  w.u8(p.mode);
  w.u32(p.switches);
  w.i32(p.buffered);
  w.f64(p.charge_pj);

  w.u16(kTagSamples);
  w.u64(static_cast<std::uint64_t>(p.sample_busy_ps.size()));
  for (std::size_t i = 0; i < p.sample_busy_ps.size(); ++i) {
    w.i64(p.sample_busy_ps[i]);
    w.f64(p.sample_energy_pj[i]);
  }

  if (!p.proc_state.empty()) {
    w.u16(kTagProc);
    w.blob(p.proc_state);
  }
  if (p.result.latency_slo_ps > 0 || p.result.tier_switches != 0 || p.tier != 255) {
    w.u16(kTagSlo);
    w.i64(p.result.latency_slo_ps);
    w.u32(p.result.tier_switches);
    w.u8(p.tier);
  }
  if (p.result.host_cycles != 0) {
    w.u16(kTagHost);
    w.u64(p.result.host_cycles);
  }
  w.u16(kTagDeviceEnd);
}

DeviceProgress read_device(ByteReader& r) {
  DeviceProgress p;
  for (;;) {
    const std::uint16_t tag = r.u16();
    switch (tag) {
      case kTagFlags: {
        const std::uint8_t f = r.u8();
        p.started = (f & 1u) != 0;
        p.done = (f & 2u) != 0;
        break;
      }
      case kTagResult: {
        DeviceResult& d = p.result;
        d.id = r.u32();
        d.model_index = r.u32();
        d.scenario = static_cast<workload::Scenario>(r.u8());
        d.seed = r.u64();
        d.slice_ps = r.i64();
        d.slices_total = r.i32();
        d.slices_executed = r.i32();
        d.tasks = r.u64();
        d.tasks_dropped = r.u64();
        d.deadline_violations = r.u64();
        d.energy_pj = r.f64();
        d.battery_capacity_pj = r.f64();
        d.final_soc = r.f64();
        d.exhausted_at_slice = r.i32();
        d.mode_switches = r.u32();
        d.low_power_slices = r.i32();
        d.busy_time_ps = r.i64();
        d.max_busy_ps = r.i64();
        d.movement_time_ps = r.i64();
        break;
      }
      case kTagLane:
        p.next_k = r.i32();
        p.mode = r.u8();
        p.switches = r.u32();
        p.buffered = r.i32();
        p.charge_pj = r.f64();
        break;
      case kTagSamples: {
        const std::uint64_t n = r.u64();
        p.sample_busy_ps.reserve(static_cast<std::size_t>(n));
        p.sample_energy_pj.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
          p.sample_busy_ps.push_back(r.i64());
          p.sample_energy_pj.push_back(r.f64());
        }
        break;
      }
      case kTagProc:
        p.proc_state = std::string(r.blob());
        break;
      case kTagSlo:
        p.result.latency_slo_ps = r.i64();
        p.result.tier_switches = r.u32();
        p.tier = r.u8();
        break;
      case kTagHost:
        p.result.host_cycles = r.u64();
        break;
      case kTagDeviceEnd:
        return p;
      default:
        throw std::runtime_error(
            "snapshot: unknown device field tag " + std::to_string(tag) +
            " at offset " + std::to_string(r.position()) +
            " (stream written by an incompatible build?)");
    }
  }
}

}  // namespace

std::string FleetSnapshot::to_bytes() const {
  ByteWriter payload;
  payload.u64(spec_digest);
  payload.u32(static_cast<std::uint32_t>(next_slice));
  payload.u64(lut_builds);
  payload.u64(static_cast<std::uint64_t>(lut_counted.size()));
  for (const placement::LutCacheKey& k : lut_counted) {
    payload.u64(k.topology_hash);
    payload.u64(k.arch_hash);
    payload.u64(k.cost_hash);
    payload.i64(k.slice_ps);
    payload.u64(k.total_weights);
    payload.i32(k.t_entries);
    payload.i32(k.k_blocks);
  }
  payload.u64(static_cast<std::uint64_t>(devices.size()));
  for (const DeviceProgress& p : devices) write_device(payload, p);

  ByteWriter out;
  out.u64(kMagic);
  out.u32(kVersion);
  out.raw(payload.bytes());
  out.u64(digest_bytes(payload.bytes()));
  return out.take();
}

FleetSnapshot FleetSnapshot::from_bytes(std::string_view bytes) {
  ByteReader header{bytes};
  if (header.u64() != kMagic) {
    throw std::runtime_error("snapshot: bad magic (not a fleet snapshot)");
  }
  const std::uint32_t version = header.u32();
  if (version > kVersion) {
    throw std::runtime_error(
        "snapshot: format version " + std::to_string(version) +
        " is newer than this build supports (" + std::to_string(kVersion) +
        ")");
  }
  if (header.remaining() < 8) {
    throw std::runtime_error("snapshot: truncated stream (missing checksum)");
  }
  const std::string_view payload =
      bytes.substr(header.position(), header.remaining() - 8);
  ByteReader tail{bytes.substr(bytes.size() - 8)};
  if (digest_bytes(payload) != tail.u64()) {
    throw std::runtime_error(
        "snapshot: checksum mismatch (corrupted or truncated stream)");
  }

  ByteReader r{payload};
  FleetSnapshot snap;
  snap.spec_digest = r.u64();
  snap.next_slice = static_cast<int>(r.u32());
  snap.lut_builds = r.u64();
  const std::uint64_t n_seen = r.u64();
  snap.lut_counted.reserve(static_cast<std::size_t>(n_seen));
  for (std::uint64_t i = 0; i < n_seen; ++i) {
    placement::LutCacheKey k;
    k.topology_hash = r.u64();
    k.arch_hash = r.u64();
    k.cost_hash = r.u64();
    k.slice_ps = r.i64();
    k.total_weights = r.u64();
    k.t_entries = r.i32();
    k.k_blocks = r.i32();
    snap.lut_counted.push_back(k);
  }
  const std::uint64_t n_devices = r.u64();
  snap.devices.reserve(static_cast<std::size_t>(n_devices));
  for (std::uint64_t i = 0; i < n_devices; ++i) {
    snap.devices.push_back(read_device(r));
  }
  if (!r.at_end()) {
    throw std::runtime_error(
        "snapshot: " + std::to_string(r.remaining()) +
        " trailing payload bytes after the last device record");
  }
  return snap;
}

void FleetSnapshot::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("snapshot: cannot open " + path);
  const std::string bytes = to_bytes();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("snapshot: write failed for " + path);
}

FleetSnapshot FleetSnapshot::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("snapshot: read failed for " + path);
  return from_bytes(buf.str());
}

}  // namespace hhpim::fleet
