#include "fleet/device.hpp"

#include <algorithm>

#include "fleet/aggregate.hpp"
#include "fleet/outcome_cache.hpp"
#include "hhpim/scheduler.hpp"

namespace hhpim::fleet {

sys::SystemConfig Device::device_config(const FleetSpec& fleet,
                                        placement::LutCache* lut_cache) {
  sys::SystemConfig c = fleet.config;
  // The spec's own lut_cache is rejected by FleetSpec::validate(); the
  // simulator's resolved cache (may be null = private builds) is the only
  // one devices ever see, so its stats delta covers every build.
  c.lut_cache = lut_cache;
  return c;
}

Device::Device(const FleetSpec& fleet, const DeviceSpec& spec,
               const nn::Model& model, placement::LutCache* lut_cache)
    : fleet_(fleet),
      spec_(spec),
      model_(model),
      owned_(std::in_place, device_config(fleet, lut_cache), model),
      proc_(&*owned_),
      battery_(fleet.battery),
      policy_(fleet.thresholds),
      low_power_alloc_(fleet.adapt
                           ? sys::balanced_mram_split(proc_->cost_model(),
                                                      proc_->total_weights())
                           : placement::Allocation{}) {}

Device::Device(const FleetSpec& fleet, const DeviceSpec& spec,
               const nn::Model& model, sys::Processor& proc)
    : fleet_(fleet),
      spec_(spec),
      model_(model),
      proc_(&proc),
      battery_(fleet.battery),
      policy_(fleet.thresholds),
      low_power_alloc_(fleet.adapt
                           ? sys::balanced_mram_split(proc_->cost_model(),
                                                      proc_->total_weights())
                           : placement::Allocation{}) {}

DeviceResult Device::run(FleetAggregate* agg) {
  return run(agg, device_loads(spec_), nullptr);
}

DeviceResult Device::run(FleetAggregate* agg, const std::vector<int>& loads,
                         OutcomeRecorder* recorder) {
  const Time slice = proc_->slice_length();

  DeviceResult r;
  r.id = spec_.id;
  r.model_index = static_cast<std::uint32_t>(spec_.model_index);
  r.scenario = spec_.scenario;
  r.seed = spec_.seed;
  r.slice_ps = slice.as_ps();
  r.slices_total = static_cast<int>(loads.size()) + 1;  // + drain slice
  r.battery_capacity_pj = battery_.capacity().as_pj();

  // Digest chain for outcome recording: `pre` is the processor state the
  // coming slice starts from. The mode decided below is part of the key,
  // not the digest — the override flip it causes lands in the slice's
  // *post* digest, which seeds the next link.
  std::uint64_t pre = recorder != nullptr ? proc_->state_digest() : 0;

  int buffered = 0;
  for (std::size_t k = 0; k <= loads.size(); ++k) {
    const int arriving = k < loads.size() ? loads[k] : 0;

    DeviceMode mode = DeviceMode::kDynamic;
    if (fleet_.adapt) {
      mode = policy_.update(battery_.soc());
      if (mode == DeviceMode::kLowPower && !proc_->placement_override_active()) {
        proc_->set_placement_override(low_power_alloc_);
      } else if (mode == DeviceMode::kDynamic && proc_->placement_override_active()) {
        proc_->set_placement_override(std::nullopt);
      }
    }

    const sys::SliceStats s = proc_->run_slice(buffered);
    const Energy requested = s.energy;
    const Energy drained = battery_.drain(requested);

    if (recorder != nullptr) {
      // Recorded even for an exhaustion slice: the slice's outcome is
      // independent of the battery (the clamp is replay-side), so the
      // entry is valid for any device reaching this state.
      const std::uint64_t post = proc_->state_digest();
      recorder->recorded.push_back(
          {SliceOutcomeKey{recorder->reuse_key, pre,
                           static_cast<std::uint32_t>(buffered),
                           static_cast<std::uint8_t>(mode)},
           SliceOutcome{requested.as_pj(), s.busy_time.as_ps(),
                        s.movement_time.as_ps(), post, s.deadline_violated}});
      pre = post;
    }

    ++r.slices_executed;
    r.tasks += static_cast<std::uint64_t>(s.tasks_executed);
    r.deadline_violations += s.deadline_violated ? 1 : 0;
    r.energy_pj += drained.as_pj();
    r.busy_time_ps += s.busy_time.as_ps();
    r.max_busy_ps = std::max(r.max_busy_ps, s.busy_time.as_ps());
    r.movement_time_ps += s.movement_time.as_ps();
    if (mode == DeviceMode::kLowPower) ++r.low_power_slices;
    if (agg != nullptr) {
      agg->add_slice(s.busy_time / slice, s.busy_time.as_us(), s.energy.as_mj());
    }

    if (drained < requested) {
      // The battery died during this slice: the slice's work happened (the
      // device browns out at the boundary, not instantaneously), but nothing
      // after it runs. Arrivals still in flight are dropped.
      r.exhausted_at_slice = s.slice;
      std::uint64_t dropped = static_cast<std::uint64_t>(arriving);
      for (std::size_t j = k + 1; j < loads.size(); ++j) {
        dropped += static_cast<std::uint64_t>(loads[j]);
      }
      r.tasks_dropped = dropped;
      break;
    }
    buffered = arriving;
  }

  r.mode_switches = policy_.switches();
  r.final_soc = battery_.soc();
  if (agg != nullptr) agg->add_device(r);
  return r;
}

}  // namespace hhpim::fleet
