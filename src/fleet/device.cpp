#include "fleet/device.hpp"

#include <algorithm>

#include "common/serialize.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/outcome_cache.hpp"
#include "hhpim/scheduler.hpp"
#include "placement/pareto.hpp"

namespace hhpim::fleet {

sys::SystemConfig Device::device_config(const FleetSpec& fleet,
                                        const DeviceSpec& spec,
                                        placement::LutCache* lut_cache) {
  sys::SystemConfig c = fleet.resolved_firmware()[spec.firmware_index];
  // The spec's own lut_cache is rejected by FleetSpec::validate(); the
  // simulator's resolved cache (may be null = private builds) is the only
  // one devices ever see, so its stats delta covers every build.
  c.lut_cache = lut_cache;
  return c;
}

sys::SystemConfig Device::device_config(const FleetSpec& fleet,
                                        placement::LutCache* lut_cache) {
  sys::SystemConfig c = fleet.config;
  c.lut_cache = lut_cache;
  return c;
}

Device::Device(const FleetSpec& fleet, const DeviceSpec& spec,
               const nn::Model& model, placement::LutCache* lut_cache)
    : fleet_(fleet),
      spec_(spec),
      model_(model),
      owned_(std::in_place, device_config(fleet, spec, lut_cache), model),
      proc_(&*owned_),
      battery_(fleet.battery),
      policy_(fleet.thresholds),
      low_power_alloc_(fleet.adapt
                           ? sys::balanced_mram_split(proc_->cost_model(),
                                                      proc_->total_weights())
                           : placement::Allocation{}) {
  init_slo_tiers();
}

Device::Device(const FleetSpec& fleet, const DeviceSpec& spec,
               const nn::Model& model, sys::Processor& proc)
    : fleet_(fleet),
      spec_(spec),
      model_(model),
      proc_(&proc),
      battery_(fleet.battery),
      policy_(fleet.thresholds),
      low_power_alloc_(fleet.adapt
                           ? sys::balanced_mram_split(proc_->cost_model(),
                                                      proc_->total_weights())
                           : placement::Allocation{}) {
  init_slo_tiers();
}

void Device::init_slo_tiers() {
  if (spec_.latency_slo_ps <= 0) return;
  const placement::AllocationLut* lut = proc_->lut();
  if (lut == nullptr) return;  // validate() rejects non-HH-PIM SLO fleets
  const placement::LutEntry* entry =
      lut->lookup_or_peak(Time::ps(spec_.latency_slo_ps));
  if (entry == nullptr || entry->frontier.empty()) return;  // nothing feasible
  // kBalanced: the entry's anchor — min energy subject to the SLO (the
  // legacy knapsack answer for this constraint, bit-exact).
  slo_allocs_[static_cast<std::size_t>(FrontierTier::kBalanced)] = entry->alloc;
  // kPerformance: the fastest point on the same frontier.
  slo_allocs_[static_cast<std::size_t>(FrontierTier::kPerformance)] =
      placement::min_latency_point(entry->frontier).alloc;
  // kSaver: min energy outright — the most relaxed entry's anchor (feasibility
  // is monotone in t_constraint, so the last entry is feasible whenever any
  // is). Deliberately waives the SLO: the battery is dying.
  slo_allocs_[static_cast<std::size_t>(FrontierTier::kSaver)] =
      lut->entries().back().alloc;
  slo_ok_ = true;
}

const placement::Allocation& Device::tier_alloc(FrontierTier t) const {
  return slo_allocs_[static_cast<std::size_t>(t)];
}

bool Device::has_drain() const {
  return spec_.leave_slice < 0 || spec_.leave_slice >= fleet_.slices;
}

int Device::total_steps(const std::vector<int>& loads) const {
  return static_cast<int>(loads.size()) + (has_drain() ? 1 : 0);
}

DeviceResult Device::run(FleetAggregate* agg) {
  std::vector<int> loads;
  device_loads_into(spec_, fleet_.envelope_multipliers(), loads);
  return run(agg, loads, nullptr);
}

DeviceResult Device::run(FleetAggregate* agg, const std::vector<int>& loads,
                         OutcomeRecorder* recorder) {
  DeviceProgress p;
  start_progress(p, loads);
  run_steps(p, loads, total_steps(loads), agg, recorder);
  if (agg != nullptr) agg->add_device(p.result);
  return p.result;
}

void Device::start_progress(DeviceProgress& p, const std::vector<int>& loads) const {
  DeviceResult& r = p.result;
  r.id = spec_.id;
  r.model_index = static_cast<std::uint32_t>(spec_.model_index);
  r.scenario = spec_.scenario;
  r.seed = spec_.seed;
  r.slice_ps = proc_->slice_length().as_ps();
  r.slices_total = total_steps(loads);
  r.battery_capacity_pj = battery_.capacity().as_pj();
  r.latency_slo_ps = spec_.latency_slo_ps;
  p.started = true;
}

void Device::capture_progress(DeviceProgress& p) const {
  p.mode = static_cast<std::uint8_t>(policy_.mode());
  p.switches = policy_.switches();
  p.tier = applied_tier_;
  p.charge_pj = battery_.charge().as_pj();
  ByteWriter w;
  proc_->save_state(w);
  p.proc_state = w.take();
}

void Device::restore_progress(const DeviceProgress& p) {
  battery_.restore_charge(Energy::pj(p.charge_pj));
  policy_.restore(static_cast<DeviceMode>(p.mode), p.switches);
  // The override itself rides in the processor blob; only the tier label
  // needs restoring so the next slice doesn't re-install (and recount) it.
  applied_tier_ = p.tier;
  ByteReader r{p.proc_state};
  proc_->load_state(r);
}

bool Device::run_steps(DeviceProgress& p, const std::vector<int>& loads,
                       int k_end, FleetAggregate* agg,
                       OutcomeRecorder* recorder, bool buffer_samples) {
  DeviceResult& r = p.result;
  const Time slice = Time::ps(r.slice_ps);
  const int steps = total_steps(loads);
  const int n_loads = static_cast<int>(loads.size());
  if (k_end > steps) k_end = steps;

  // Digest chain for outcome recording: `pre` is the processor state the
  // coming slice starts from. The mode decided below is part of the key,
  // not the digest — the override flip it causes lands in the slice's
  // *post* digest, which seeds the next link.
  std::uint64_t pre = recorder != nullptr ? proc_->state_digest() : 0;

  int buffered = p.buffered;
  int k = p.next_k;
  for (; k < k_end && !p.done; ++k) {
    const int arriving = k < n_loads ? loads[k] : 0;

    if (fleet_.charging.period > 0 && fleet_.charging.window > 0) {
      // Global charging window, applied before the policy observes the SoC
      // (a device wakes into a charged state, it doesn't observe-then-charge).
      const int g = spec_.join_slice + k;
      if (g % fleet_.charging.period < fleet_.charging.window) {
        battery_.recharge(fleet_.charging.energy_per_slice);
      }
    }

    DeviceMode mode = DeviceMode::kDynamic;
    FrontierTier tier = FrontierTier::kBalanced;
    if (slo_active()) {
      // SLO-aware frontier policy: the hysteresis mode still advances (it
      // feeds kSaver and the JSONL mode fields), but the placement pinned is
      // the tier's frontier point, not the dynamic/MRAM toggle. Without
      // adaptation there is no SoC signal — the device holds kBalanced.
      if (fleet_.adapt) {
        mode = policy_.update(battery_.soc());
        tier = select_tier(mode, battery_.soc(), fleet_.thresholds);
      }
      if (static_cast<std::uint8_t>(tier) != applied_tier_) {
        proc_->set_placement_override(tier_alloc(tier));
        if (applied_tier_ != 255) ++r.tier_switches;
        applied_tier_ = static_cast<std::uint8_t>(tier);
      }
    } else if (fleet_.adapt) {
      mode = policy_.update(battery_.soc());
      if (mode == DeviceMode::kLowPower && !proc_->placement_override_active()) {
        proc_->set_placement_override(low_power_alloc_);
      } else if (mode == DeviceMode::kDynamic && proc_->placement_override_active()) {
        proc_->set_placement_override(std::nullopt);
      }
    }

    const sys::SliceStats s = proc_->run_slice(buffered);
    const Energy requested = s.energy;
    const Energy drained = battery_.drain(requested);

    if (recorder != nullptr) {
      // Recorded even for an exhaustion slice: the slice's outcome is
      // independent of the battery (the clamp is replay-side), so the
      // entry is valid for any device reaching this state.
      const std::uint64_t post = proc_->state_digest();
      recorder->recorded.push_back(
          {SliceOutcomeKey{recorder->reuse_key, pre,
                           slo_active() ? spec_.latency_slo_ps : 0,
                           static_cast<std::uint32_t>(buffered),
                           static_cast<std::uint8_t>(mode),
                           slo_active() ? static_cast<std::uint8_t>(tier)
                                        : std::uint8_t{0}},
           SliceOutcome{requested.as_pj(), s.busy_time.as_ps(),
                        s.movement_time.as_ps(), post, s.host_cycles,
                        s.deadline_violated}});
      pre = post;
    }

    ++r.slices_executed;
    r.tasks += static_cast<std::uint64_t>(s.tasks_executed);
    r.deadline_violations += s.deadline_violated ? 1 : 0;
    r.energy_pj += drained.as_pj();
    r.busy_time_ps += s.busy_time.as_ps();
    r.max_busy_ps = std::max(r.max_busy_ps, s.busy_time.as_ps());
    r.movement_time_ps += s.movement_time.as_ps();
    r.host_cycles += s.host_cycles;
    if (mode == DeviceMode::kLowPower) ++r.low_power_slices;
    if (agg != nullptr) {
      agg->add_slice(s.busy_time / slice, s.busy_time.as_us(), s.energy.as_mj());
    } else if (buffer_samples) {
      p.sample_busy_ps.push_back(s.busy_time.as_ps());
      p.sample_energy_pj.push_back(requested.as_pj());
    }

    if (drained < requested) {
      // The battery died during this slice: the slice's work happened (the
      // device browns out at the boundary, not instantaneously), but nothing
      // after it runs. Arrivals still in flight are dropped.
      r.exhausted_at_slice = s.slice;
      std::uint64_t dropped = static_cast<std::uint64_t>(arriving);
      for (int j = k + 1; j < n_loads; ++j) {
        dropped += static_cast<std::uint64_t>(loads[j]);
      }
      r.tasks_dropped = dropped;
      p.done = true;
    }
    buffered = arriving;
  }

  p.next_k = k;
  p.buffered = buffered;
  if (!p.done && p.next_k >= steps) {
    p.done = true;
    if (!has_drain()) {
      // Early leaver: its final buffer never gets a drain slice — those
      // arrivals are dropped exactly like exhaustion drops in-flight work.
      r.tasks_dropped += static_cast<std::uint64_t>(buffered);
    }
  }
  r.mode_switches = policy_.switches();
  r.final_soc = battery_.soc();
  return p.done;
}

}  // namespace hhpim::fleet
