#include "sim/engine.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace hhpim::sim {

EventHandle Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("Engine::schedule_at: time " +
                                at.to_string() + " is in the past (now " +
                                now_.to_string() + ")");
  }
  auto item = std::make_unique<Item>(Item{at, next_seq_++, std::move(fn)});
  Item* raw = item.get();
  pool_.push_back(std::move(item));
  queue_.push(raw);
  ++live_events_;
  return EventHandle{raw->seq};
}

bool Engine::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Linear scan over the (small) live pool; cancellation is rare and used
  // only for timeout-style events.
  for (auto& item : pool_) {
    if (item && item->seq == h.seq_ && !item->cancelled) {
      item->cancelled = true;
      --live_events_;
      return true;
    }
  }
  return false;
}

bool Engine::dispatch_next() {
  while (!queue_.empty()) {
    Item* top = queue_.top();
    queue_.pop();
    if (top->cancelled) {
      top->fn = nullptr;
      continue;
    }
    assert(top->at >= now_);
    now_ = top->at;
    EventFn fn = std::move(top->fn);
    top->cancelled = true;  // consumed
    --live_events_;
    ++executed_;
    fn();
    // Compact the pool opportunistically once it grows past the live set.
    if (pool_.size() > 64 && pool_.size() > live_events_ * 4 && queue_.empty()) {
      pool_.clear();
    }
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (dispatch_next()) ++n;
  pool_.clear();
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Item* top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    if (top->at > deadline) break;
    dispatch_next();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Engine::step() { return dispatch_next(); }

void Engine::reset() {
  while (!queue_.empty()) queue_.pop();
  pool_.clear();
  live_events_ = 0;
  now_ = Time::zero();
  executed_ = 0;
}

}  // namespace hhpim::sim
