#include "sim/engine.hpp"

#include <cassert>
#include <limits>
#include <memory>
#include <stdexcept>

namespace hhpim::sim {

EventHandle Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("Engine::schedule_at: time " +
                                at.to_string() + " is in the past (now " +
                                now_.to_string() + ")");
  }
  Item* raw;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    raw = pool_[slot].get();
    raw->at = at;
    raw->seq = next_seq_++;
    raw->fn = std::move(fn);
    raw->cancelled = false;
  } else {
    assert(pool_.size() < std::numeric_limits<std::uint32_t>::max());
    const auto slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::make_unique<Item>(Item{at, next_seq_++, std::move(fn), slot}));
    raw = pool_.back().get();
  }
  queue_.push(raw);
  ++live_events_;
  // Every live event occupies exactly one non-free slot (cancelled husks keep
  // theirs until popped), so occupancy bounds the live count.
  assert(live_events_ <= pool_.size() - free_slots_.size());
  return EventHandle{raw->seq, raw->slot};
}

bool Engine::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= pool_.size()) return false;
  // O(1): the handle names its slot. A recycled slot carries a fresh seq and
  // consumed/freed slots are marked cancelled, so stale handles never match.
  Item* item = pool_[h.slot_].get();
  if (item->seq != h.seq_ || item->cancelled) return false;
  item->cancelled = true;
  item->fn = nullptr;  // release captures eagerly
  assert(live_events_ > 0);
  --live_events_;
  return true;
}

void Engine::release_slot(Item* item) {
  // The queue no longer references this Item; recycle its slot. Mark it
  // cancelled so stale EventHandles can't re-cancel a dead event before the
  // slot is reused.
  item->fn = nullptr;
  item->cancelled = true;
  free_slots_.push_back(item->slot);
  assert(free_slots_.size() <= pool_.size());
}

bool Engine::dispatch_next() {
  while (!queue_.empty()) {
    Item* top = queue_.top();
    queue_.pop();
    if (top->cancelled) {
      release_slot(top);
      continue;
    }
    assert(top->at >= now_);
    now_ = top->at;
    EventFn fn = std::move(top->fn);
    release_slot(top);  // safe: `fn` is moved out; the slot may be reused by
                        // events the callback schedules.
    --live_events_;
    ++executed_;
    fn();
    assert(live_events_ <= pool_.size() - free_slots_.size());
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (dispatch_next()) ++n;
  assert(live_events_ == 0);
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Item* top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      release_slot(top);
      continue;
    }
    if (top->at > deadline) break;
    dispatch_next();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Engine::step() { return dispatch_next(); }

void Engine::reset() {
  while (!queue_.empty()) queue_.pop();
  pool_.clear();
  free_slots_.clear();
  live_events_ = 0;
  now_ = Time::zero();
  executed_ = 0;
}

}  // namespace hhpim::sim
