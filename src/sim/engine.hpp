// Discrete-event simulation engine.
//
// A single-threaded event loop with integer-picosecond timestamps. Events
// scheduled at the same timestamp execute in insertion order (a monotonically
// increasing sequence number breaks ties), which makes every run
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace hhpim::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; allows cancellation. Carries the event's
/// pool slot so Engine::cancel is O(1); the sequence number validates
/// staleness (a recycled slot carries a fresh seq, so a stale handle can
/// never cancel the slot's new occupant).
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Engine;
  EventHandle(std::uint64_t seq, std::uint32_t slot) : seq_(seq), slot_(slot) {}
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0;
};

/// The event loop. Components hold a reference to an Engine and schedule
/// callbacks; Engine::run() drains the queue in timestamp order.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing during run().
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(Time at, EventFn fn);

  /// Schedules `fn` to run `delay` after the current time.
  EventHandle schedule_after(Time delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a previously scheduled event in O(1) (the handle names its
  /// pool slot; the slot's live seq must match the handle's). Returns false
  /// if the event has already run, been cancelled, or the handle is invalid
  /// or stale (its slot was recycled by a later event).
  bool cancel(EventHandle h);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` are executed. Advances now() to `deadline`
  /// if the queue empties earlier.
  std::size_t run_until(Time deadline);

  /// Executes at most one event. Returns false if the queue is empty.
  bool step();

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Number of Item slots currently allocated. Bounded by the peak number of
  /// simultaneously queued events, not by the run length — executed and
  /// cancelled slots are recycled through a free list (exposed so tests can
  /// pin the no-unbounded-growth property).
  [[nodiscard]] std::size_t pool_slots() const { return pool_.size(); }

  /// Resets time to zero and clears all pending events.
  void reset();

 private:
  struct Item {
    Time at;
    std::uint64_t seq;
    EventFn fn;
    std::uint32_t slot;       ///< index into pool_ (for free-list recycling)
    bool cancelled = false;
  };
  struct Cmp {
    bool operator()(const Item* a, const Item* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  bool dispatch_next();
  /// Returns an Item's slot to the free list once it leaves the queue.
  void release_slot(Item* item);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  // Owning storage: the priority queue holds raw pointers into `pool_`.
  // unique_ptr keeps the pointers stable across pool_ growth; freed slots are
  // reused (newest-first) by schedule_at.
  std::vector<std::unique_ptr<Item>> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<Item*, std::vector<Item*>, Cmp> queue_;
};

}  // namespace hhpim::sim
