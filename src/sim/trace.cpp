#include "sim/trace.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace hhpim::sim {

void Tracer::record(Time at, std::string component, std::string what) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{at, std::move(component), std::move(what)});
}

std::string Tracer::dump() const {
  std::ostringstream out;
  for (const auto& r : records_) {
    out << r.at.to_string() << "  " << r.component << "  " << r.what << "\n";
  }
  return out.str();
}

std::size_t Tracer::count_matching(const std::string& prefix) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (starts_with(r.what, prefix)) ++n;
  }
  return n;
}

}  // namespace hhpim::sim
