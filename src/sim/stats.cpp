#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hhpim::sim {

void Summary::add(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
}

void Summary::merge(const Summary& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  const double n = n1 + n2;
  m2_ += o.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * o.mean_) / n;
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void Summary::reset() { *this = Summary{}; }

double Summary::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double v, std::uint64_t weight) {
  total_ += weight;
  if (v < lo_) {
    underflow_ += weight;
    return;
  }
  if (v >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>((v - lo_) / (hi_ - lo_) *
                                            static_cast<double>(bins_.size()));
  bins_[std::min(idx, bins_.size() - 1)] += weight;
}

void Histogram::merge(const Histogram& o) {
  if (lo_ != o.lo_ || hi_ != o.hi_ || bins_.size() != o.bins_.size()) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  underflow_ += o.underflow_;
  overflow_ += o.overflow_;
  total_ += o.total_;
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target && bins_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const std::uint64_t peak = *std::max_element(bins_.begin(), bins_.end());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto bar = peak == 0 ? 0
                               : static_cast<std::size_t>(
                                     static_cast<double>(bins_[i]) /
                                     static_cast<double>(peak) *
                                     static_cast<double>(width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << bins_[i] << "\n";
  }
  return out.str();
}

}  // namespace hhpim::sim
