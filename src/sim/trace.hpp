// Optional event tracing: components emit (time, component, what) records
// that tests and examples can inspect or dump. Disabled by default — a
// disabled tracer drops records without allocating.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace hhpim::sim {

struct TraceRecord {
  Time at;
  std::string component;
  std::string what;
};

class Tracer {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Time at, std::string component, std::string what);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Renders one line per record: "12.340 ns  pim.hp0  LOAD burst=64".
  [[nodiscard]] std::string dump() const;

  /// Number of records whose `what` starts with `prefix`.
  [[nodiscard]] std::size_t count_matching(const std::string& prefix) const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace hhpim::sim
