// Lightweight statistics: counters, running scalar statistics and fixed-bin
// histograms. Used by module models to expose occupancy/latency metrics.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hhpim::sim {

/// Running mean / min / max / count over double samples (Welford variance).
class Summary {
 public:
  void add(double v);
  void merge(const Summary& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double m2_ = 0.0;   // Welford
  double mean_ = 0.0; // Welford
};

/// Histogram with uniform bins over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow bins.
///
/// Histograms with identical shape (lo, hi, bin count) are mergeable —
/// merge() adds counts bin-wise, so a population split across shards (e.g.
/// the fleet simulator's per-shard aggregates) reduces to exactly the
/// histogram a single pass would have produced, in any merge order.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v, std::uint64_t weight = 1);

  /// Adds `other`'s counts bin-wise (including under/overflow). Throws
  /// std::invalid_argument unless both histograms have the same lo, hi and
  /// bin count. O(bins); associative and commutative.
  void merge(const Histogram& other);

  void reset();

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Value below which `q` (0..1) of the mass lies, linear within a bin.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace hhpim::sim
