#include "pe/processing_element.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::pe {

ProcessingElement::ProcessingElement(std::string name, energy::PeSpec spec,
                                     energy::EnergyLedger* ledger)
    : name_(std::move(name)),
      spec_(spec),
      ledger_(ledger),
      id_(ledger != nullptr ? ledger->register_component(name_) : energy::ComponentId{}),
      tracker_(ledger, id_, spec.leakage) {}

Time ProcessingElement::begin(Time now, std::uint64_t count) {
  if (!tracker_.is_on()) {
    throw std::logic_error("PE " + name_ + ": compute while power-gated");
  }
  const Time start = std::max(now, busy_until_);
  busy_until_ = start + spec_.mac_latency * static_cast<std::int64_t>(count);
  macs_ += count;
  if (ledger_ != nullptr) {
    ledger_->add(id_, energy::Activity::kCompute,
                 spec_.mac_energy() * static_cast<double>(count));
  }
  return start;
}

MacResult ProcessingElement::mac(Time now, std::int8_t a, std::int8_t b, std::int32_t acc) {
  const Time start = begin(now, 1);
  return MacResult{start, busy_until_,
                   acc + static_cast<std::int32_t>(a) * static_cast<std::int32_t>(b)};
}

MacResult ProcessingElement::dot(Time now, std::span<const std::int8_t> a,
                                 std::span<const std::int8_t> b, std::int32_t acc) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("PE " + name_ + ": dot operand length mismatch");
  }
  const Time start = begin(now, a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return MacResult{start, busy_until_, acc};
}

MacResult ProcessingElement::burst(Time now, std::uint64_t count) {
  const Time start = begin(now, count);
  return MacResult{start, busy_until_, 0};
}

Energy ProcessingElement::charge_macs(std::uint64_t count) {
  macs_ += count;
  const Energy e = spec_.mac_energy() * static_cast<double>(count);
  if (ledger_ != nullptr) ledger_->add(id_, energy::Activity::kCompute, e);
  return e;
}

void ProcessingElement::save_state(ByteWriter& w, Time now) const {
  const bool on = tracker_.is_on();
  w.u8(on ? 1 : 0);
  w.i64(on ? (tracker_.anchor() - now).as_ps() : std::int64_t{0});
  w.f64(tracker_.leakage().as_mw());
  w.i64(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
}

void ProcessingElement::load_state(ByteReader& r) {
  const bool on = r.u8() != 0;
  const Time anchor = Time::ps(r.i64());
  const Power leakage = Power::mw(r.f64());
  tracker_.restore(on, anchor, leakage);
  busy_until_ = Time::ps(r.i64());
}

std::int8_t ProcessingElement::requantize(std::int32_t acc, int shift) {
  const std::int32_t shifted = shift >= 0 ? (acc >> shift) : (acc << -shift);
  return static_cast<std::int8_t>(std::clamp<std::int32_t>(shifted, -128, 127));
}

}  // namespace hhpim::pe
