// Processing element: the INT8 multiply-accumulate datapath of one PIM
// module. Functional (int8 x int8 -> int32 accumulate, with saturating
// requantization back to int8) and timed/powered per the cluster spec.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>

#include "common/hash.hpp"
#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "energy/power_spec.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::pe {

struct MacResult {
  Time start;
  Time complete;
  std::int32_t accumulator;
};

class ProcessingElement {
 public:
  /// `ledger` may be nullptr for functional-only use.
  ProcessingElement(std::string name, energy::PeSpec spec, energy::EnergyLedger* ledger);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const energy::PeSpec& spec() const { return spec_; }

  // --- Power state ---------------------------------------------------------
  void power_on(Time now) { tracker_.power_on(now); }
  void power_off(Time now) { tracker_.power_off(now); }
  void settle(Time now) { tracker_.settle(now); }
  [[nodiscard]] bool is_on() const { return tracker_.is_on(); }
  [[nodiscard]] Time total_on_time() const { return tracker_.total_on_time(); }
  /// Leakage-interval anchor (see LeakageTracker::anchor).
  [[nodiscard]] Time leakage_anchor() const { return tracker_.anchor(); }

  // --- Timed compute -------------------------------------------------------

  /// One MAC: acc += a * b. Occupies the datapath for mac_latency.
  MacResult mac(Time now, std::int8_t a, std::int8_t b, std::int32_t acc);

  /// Dot product of two int8 vectors, executed back-to-back (one MAC per
  /// element). Returns timing for the whole burst and the accumulated sum.
  MacResult dot(Time now, std::span<const std::int8_t> a, std::span<const std::int8_t> b,
                std::int32_t acc = 0);

  /// Models a burst of `count` MACs without functional data (timing/energy
  /// only) — the fast path used by the workload-level simulator.
  MacResult burst(Time now, std::uint64_t count);

  /// Accounting-only: charges energy and the MAC counter for `count` MACs
  /// without touching the PE timeline (the PIM module owns serialization).
  Energy charge_macs(std::uint64_t count);

  [[nodiscard]] Time busy_until() const { return busy_until_; }
  [[nodiscard]] std::uint64_t mac_count() const { return macs_; }

  /// Steady-state advance (batched execution): shifts the leakage anchor by
  /// `anchor_shift`, credits `extra_on` of already-posted on-time and
  /// `extra_macs` MACs. The matching energy posts are replayed through
  /// EnergyLedger::replay by the caller.
  void fast_forward(Time anchor_shift, Time extra_on, std::uint64_t extra_macs) {
    tracker_.fast_forward(anchor_shift, extra_on);
    macs_ += extra_macs;
  }

  /// Behavior-relevant state relative to `now` (see mem::Bank::add_state);
  /// the MAC counter and on-time totals are history, not behavior.
  void add_state(Fnv1a& h, Time now) const {
    h.add(tracker_.is_on() ? 1 : 0)
        .add(tracker_.is_on() ? (tracker_.anchor() - now).as_ps()
                              : std::int64_t{0})
        .add(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
  }

  /// Returns accounting state to just-constructed (off, zero counters).
  /// The owning processor resets the ledger separately.
  void reset_accounting() {
    tracker_.reset(spec_.leakage);
    busy_until_ = Time::zero();
    macs_ = 0;
  }

  /// Checkpoint save/load of exactly the state add_state() digests (see
  /// mem::Bank::save_state for the contract).
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

  // --- Functional helpers --------------------------------------------------

  /// Saturating requantization of a 32-bit accumulator back to int8 with a
  /// power-of-two right shift (the usual TinyML post-GEMM step).
  [[nodiscard]] static std::int8_t requantize(std::int32_t acc, int shift);

 private:
  Time begin(Time now, std::uint64_t count);

  std::string name_;
  energy::PeSpec spec_;
  energy::EnergyLedger* ledger_;
  energy::ComponentId id_;
  energy::LeakageTracker tracker_;
  Time busy_until_ = Time::zero();
  std::uint64_t macs_ = 0;
};

}  // namespace hhpim::pe
