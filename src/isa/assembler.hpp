// Text assembler / disassembler for the PIM ISA.
//
// Syntax (one instruction per line, ';' or '#' starts a comment):
//
//   mac.sram   m0-3, 64       ; 64 MACs on modules 0..3, weights from SRAM
//   mac.mram   m0, 128
//   xferout.sram m2, 32
//   pwron.mram m0-7
//   barrier    m0-7
//   halt
//
// Module lists: `m3`, `m0-3`, `m0,m2,m5`, or `mall`.
#pragma once

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "isa/instruction.hpp"

namespace hhpim::isa {

struct AsmError {
  std::size_t line;    ///< 1-based line number in the source.
  std::string message;
};

using AsmResult = std::variant<std::vector<Instruction>, AsmError>;

/// Assembles a program. Returns either the instruction list or the first error.
[[nodiscard]] AsmResult assemble(std::string_view source);

/// Renders a program to assembly text that `assemble` accepts.
[[nodiscard]] std::string disassemble(const std::vector<Instruction>& program);

}  // namespace hhpim::isa
