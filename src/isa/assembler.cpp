#include "isa/assembler.hpp"

#include <cstdlib>
#include <sstream>

#include "common/strings.hpp"

namespace hhpim::isa {

namespace {

struct Mnemonic {
  const char* name;
  Category category;
  std::uint8_t opcode;
  bool takes_imm;
};

constexpr Mnemonic kMnemonics[] = {
    {"mac", Category::kCompute, 0, true},
    {"gemv", Category::kCompute, 1, true},
    {"relu", Category::kCompute, 2, true},
    {"requant", Category::kCompute, 3, true},
    {"load", Category::kDataMove, 0, true},
    {"store", Category::kDataMove, 1, true},
    {"xferout", Category::kDataMove, 2, true},
    {"xferin", Category::kDataMove, 3, true},
    {"intra", Category::kDataMove, 4, true},
    {"pwron", Category::kConfig, 0, false},
    {"pwroff", Category::kConfig, 1, false},
    {"setbase", Category::kConfig, 2, true},
    {"setstride", Category::kConfig, 3, true},
    {"nop", Category::kSync, 0, false},
    {"barrier", Category::kSync, 1, false},
    {"fence", Category::kSync, 2, false},
    {"halt", Category::kSync, 3, false},
};

const Mnemonic* find_mnemonic(std::string_view name) {
  for (const auto& m : kMnemonics) {
    if (name == m.name) return &m;
  }
  return nullptr;
}

bool parse_mem(std::string_view suffix, MemSel* out) {
  if (suffix == "mram") { *out = MemSel::kMram; return true; }
  if (suffix == "sram") { *out = MemSel::kSram; return true; }
  if (suffix == "both") { *out = MemSel::kBoth; return true; }
  return false;
}

/// Parses "m0-3", "m0,m2", "mall", "m7" into a bitmask.
bool parse_modules(std::string_view text, std::uint8_t* mask_out) {
  std::uint8_t mask = 0;
  for (const auto& part : split(text, ',')) {
    const std::string p = trim(part);
    if (p.empty()) return false;
    std::string_view v = p;
    if (v.front() == 'm') v.remove_prefix(1);
    if (v == "all") {
      mask = 0xff;
      continue;
    }
    const auto dash = v.find('-');
    char* end = nullptr;
    if (dash == std::string_view::npos) {
      const long idx = std::strtol(std::string{v}.c_str(), &end, 10);
      if (idx < 0 || idx > 7) return false;
      mask |= static_cast<std::uint8_t>(1u << idx);
    } else {
      const long lo = std::strtol(std::string{v.substr(0, dash)}.c_str(), &end, 10);
      const long hi = std::strtol(std::string{v.substr(dash + 1)}.c_str(), &end, 10);
      if (lo < 0 || hi > 7 || lo > hi) return false;
      for (long i = lo; i <= hi; ++i) mask |= static_cast<std::uint8_t>(1u << i);
    }
  }
  *mask_out = mask;
  return true;
}

}  // namespace

AsmResult assemble(std::string_view source) {
  std::vector<Instruction> program;
  std::size_t line_no = 0;
  for (const auto& raw_line : split(source, '\n')) {
    ++line_no;
    std::string line = raw_line;
    for (const char c : {';', '#'}) {
      const auto pos = line.find(c);
      if (pos != std::string::npos) line = line.substr(0, pos);
    }
    line = trim(line);
    if (line.empty()) continue;

    // Split "<mnemonic>[.mem] [operands...]".
    const auto space = line.find_first_of(" \t");
    std::string head = line.substr(0, space);
    std::string rest = space == std::string::npos ? "" : trim(line.substr(space));

    MemSel mem = MemSel::kNone;
    const auto dot = head.find('.');
    if (dot != std::string::npos) {
      if (!parse_mem(head.substr(dot + 1), &mem)) {
        return AsmError{line_no, "unknown memory selector '" + head.substr(dot + 1) + "'"};
      }
      head = head.substr(0, dot);
    }

    const Mnemonic* m = find_mnemonic(to_lower(head));
    if (m == nullptr) {
      return AsmError{line_no, "unknown mnemonic '" + head + "'"};
    }

    Instruction inst;
    inst.category = m->category;
    inst.opcode = m->opcode;
    inst.mem = mem;

    // Operands: optional module list, optional immediate (last numeric field).
    if (!rest.empty()) {
      auto fields = split(rest, ',');
      // Re-join module ranges: "m0-3, 64" splits cleanly, but "m0,m2, 64"
      // needs the module fields merged. Strategy: fields that start with 'm'
      // belong to the module list; a bare number is the immediate.
      std::string modules_text;
      std::string imm_text;
      for (auto& f : fields) {
        const std::string t = trim(f);
        if (t.empty()) continue;
        if (t.front() == 'm' || t.front() == 'M') {
          if (!modules_text.empty()) modules_text += ',';
          modules_text += to_lower(t);
        } else {
          imm_text = t;
        }
      }
      if (!modules_text.empty() && !parse_modules(modules_text, &inst.module_mask)) {
        return AsmError{line_no, "bad module list '" + modules_text + "'"};
      }
      if (!imm_text.empty()) {
        char* end = nullptr;
        const long v = std::strtol(imm_text.c_str(), &end, 0);
        if (end == imm_text.c_str() || v < 0 || v > 0xffff) {
          return AsmError{line_no, "bad immediate '" + imm_text + "'"};
        }
        inst.imm = static_cast<std::uint16_t>(v);
      } else if (m->takes_imm) {
        return AsmError{line_no, std::string{"'"} + m->name + "' requires an immediate"};
      }
    } else if (m->takes_imm) {
      return AsmError{line_no, std::string{"'"} + m->name + "' requires an immediate"};
    }

    program.push_back(inst);
  }
  return program;
}

std::string disassemble(const std::vector<Instruction>& program) {
  std::ostringstream out;
  for (const auto& inst : program) {
    out << opcode_name(inst.category, inst.opcode);
    if (inst.mem != MemSel::kNone) out << "." << mem_name(inst.mem);
    if (inst.module_mask != 0) {
      out << " ";
      bool first = true;
      for (int i = 0; i < 8; ++i) {
        if ((inst.module_mask & (1 << i)) != 0) {
          if (!first) out << ",";
          out << "m" << i;
          first = false;
        }
      }
    }
    const Mnemonic* m = find_mnemonic(opcode_name(inst.category, inst.opcode));
    if (m != nullptr && m->takes_imm) out << ", " << inst.imm;
    out << "\n";
  }
  return out.str();
}

}  // namespace hhpim::isa
