#include "isa/instruction.hpp"

#include <sstream>

namespace hhpim::isa {

namespace {
constexpr std::uint8_t kMaxOpcode[4] = {
    3,  // Compute: kMac..kRequant
    4,  // DataMove: kLoad..kIntra
    3,  // Config: kPowerOn..kSetStride
    3,  // Sync: kNop..kHalt
};
}  // namespace

std::uint32_t encode(const Instruction& inst) {
  return (static_cast<std::uint32_t>(inst.category) << 30) |
         (static_cast<std::uint32_t>(inst.opcode & 0xf) << 26) |
         (static_cast<std::uint32_t>(inst.mem) << 24) |
         (static_cast<std::uint32_t>(inst.module_mask) << 16) |
         static_cast<std::uint32_t>(inst.imm);
}

std::optional<Instruction> decode(std::uint32_t word) {
  Instruction inst;
  inst.category = static_cast<Category>((word >> 30) & 0x3);
  inst.opcode = static_cast<std::uint8_t>((word >> 26) & 0xf);
  inst.mem = static_cast<MemSel>((word >> 24) & 0x3);
  inst.module_mask = static_cast<std::uint8_t>((word >> 16) & 0xff);
  inst.imm = static_cast<std::uint16_t>(word & 0xffff);
  if (inst.opcode > kMaxOpcode[static_cast<std::size_t>(inst.category)]) {
    return std::nullopt;
  }
  return inst;
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute: return "compute";
    case Category::kDataMove: return "move";
    case Category::kConfig: return "config";
    case Category::kSync: return "sync";
  }
  return "?";
}

const char* mem_name(MemSel m) {
  switch (m) {
    case MemSel::kNone: return "none";
    case MemSel::kMram: return "mram";
    case MemSel::kSram: return "sram";
    case MemSel::kBoth: return "both";
  }
  return "?";
}

const char* opcode_name(Category c, std::uint8_t opcode) {
  static const char* kCompute[] = {"mac", "gemv", "relu", "requant"};
  static const char* kMove[] = {"load", "store", "xferout", "xferin", "intra"};
  static const char* kConfig[] = {"pwron", "pwroff", "setbase", "setstride"};
  static const char* kSync[] = {"nop", "barrier", "fence", "halt"};
  if (opcode > kMaxOpcode[static_cast<std::size_t>(c)]) return nullptr;
  switch (c) {
    case Category::kCompute: return kCompute[opcode];
    case Category::kDataMove: return kMove[opcode];
    case Category::kConfig: return kConfig[opcode];
    case Category::kSync: return kSync[opcode];
  }
  return nullptr;
}

std::string to_string(const Instruction& inst) {
  std::ostringstream out;
  out << opcode_name(inst.category, inst.opcode);
  if (inst.mem != MemSel::kNone) out << "." << mem_name(inst.mem);
  out << " m=0x" << std::hex << static_cast<int>(inst.module_mask) << std::dec
      << " imm=" << inst.imm;
  return out.str();
}

Instruction make_mac(std::uint8_t module_mask, MemSel mem, std::uint16_t count) {
  return Instruction{Category::kCompute, static_cast<std::uint8_t>(ComputeOp::kMac),
                     mem, module_mask, count};
}

Instruction make_barrier(std::uint8_t module_mask) {
  return Instruction{Category::kSync, static_cast<std::uint8_t>(SyncOp::kBarrier),
                     MemSel::kNone, module_mask, 0};
}

Instruction make_halt() {
  return Instruction{Category::kSync, static_cast<std::uint8_t>(SyncOp::kHalt),
                     MemSel::kNone, 0, 0};
}

Instruction make_power(std::uint8_t module_mask, MemSel mem, bool on) {
  return Instruction{Category::kConfig,
                     static_cast<std::uint8_t>(on ? ConfigOp::kPowerOn : ConfigOp::kPowerOff),
                     mem, module_mask, 0};
}

Instruction make_xfer_out(std::uint8_t module_mask, MemSel mem, std::uint16_t words) {
  return Instruction{Category::kDataMove, static_cast<std::uint8_t>(DataMoveOp::kXferOut),
                     mem, module_mask, words};
}

Instruction make_xfer_in(std::uint8_t module_mask, MemSel mem, std::uint16_t words) {
  return Instruction{Category::kDataMove, static_cast<std::uint8_t>(DataMoveOp::kXferIn),
                     mem, module_mask, words};
}

}  // namespace hhpim::isa
