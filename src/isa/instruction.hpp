// Dedicated PIM instruction set.
//
// The paper's controllers operate on dedicated PIM instructions that carry a
// Category, an Instruction Field (opcode / operands / address) and a Module
// Select Signal. We encode them in one 32-bit word:
//
//   [31:30] category      (COMPUTE / DATA_MOVE / CONFIG / SYNC)
//   [29:26] opcode        (within category)
//   [25:24] memory kind   (NONE / MRAM / SRAM / BOTH)
//   [23:16] module mask   (bit i = PIM module i of the target cluster)
//   [15:0]  immediate     (burst length, address, or transfer size)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hhpim::isa {

enum class Category : std::uint8_t {
  kCompute = 0,
  kDataMove = 1,
  kConfig = 2,
  kSync = 3,
};

enum class ComputeOp : std::uint8_t {
  kMac = 0,     ///< imm = number of MACs; weight stream from `mem`.
  kGemv = 1,    ///< imm = vector length.
  kRelu = 2,    ///< imm = element count.
  kRequant = 3, ///< imm = element count.
};

enum class DataMoveOp : std::uint8_t {
  kLoad = 0,     ///< external -> module memory; imm = words.
  kStore = 1,    ///< module memory -> external; imm = words.
  kXferOut = 2,  ///< module -> rearrange buffer (cross-cluster); imm = words.
  kXferIn = 3,   ///< rearrange buffer -> module; imm = words.
  kIntra = 4,    ///< MRAM <-> SRAM within the module; imm = words.
};

enum class ConfigOp : std::uint8_t {
  kPowerOn = 0,   ///< power up `mem` of the selected modules.
  kPowerOff = 1,  ///< gate `mem` of the selected modules.
  kSetBase = 2,   ///< imm = base address for subsequent bursts.
  kSetStride = 3, ///< imm = stride.
};

enum class SyncOp : std::uint8_t {
  kNop = 0,
  kBarrier = 1,  ///< wait until all selected modules are idle.
  kFence = 2,    ///< order data moves before computes.
  kHalt = 3,
};

enum class MemSel : std::uint8_t { kNone = 0, kMram = 1, kSram = 2, kBoth = 3 };

/// A decoded PIM instruction.
struct Instruction {
  Category category = Category::kSync;
  std::uint8_t opcode = 0;  ///< one of the *Op enums, per category
  MemSel mem = MemSel::kNone;
  std::uint8_t module_mask = 0;
  std::uint16_t imm = 0;

  [[nodiscard]] bool operator==(const Instruction&) const = default;
};

/// Encodes to the 32-bit wire format.
[[nodiscard]] std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word. Returns nullopt for malformed encodings
/// (reserved opcode values).
[[nodiscard]] std::optional<Instruction> decode(std::uint32_t word);

/// Human-readable one-line disassembly, accepted back by the assembler.
[[nodiscard]] std::string to_string(const Instruction& inst);

[[nodiscard]] const char* category_name(Category c);
[[nodiscard]] const char* mem_name(MemSel m);
/// Mnemonic for (category, opcode); nullptr if the opcode is reserved.
[[nodiscard]] const char* opcode_name(Category c, std::uint8_t opcode);

// Convenience constructors ---------------------------------------------------

[[nodiscard]] Instruction make_mac(std::uint8_t module_mask, MemSel mem, std::uint16_t count);
[[nodiscard]] Instruction make_barrier(std::uint8_t module_mask = 0xff);
[[nodiscard]] Instruction make_halt();
[[nodiscard]] Instruction make_power(std::uint8_t module_mask, MemSel mem, bool on);
[[nodiscard]] Instruction make_xfer_out(std::uint8_t module_mask, MemSel mem, std::uint16_t words);
[[nodiscard]] Instruction make_xfer_in(std::uint8_t module_mask, MemSel mem, std::uint16_t words);

}  // namespace hhpim::isa
