#include "pim/data_allocator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::pim {

DataAllocator::DataAllocator(DataAllocatorConfig config, std::size_t modules_per_cluster,
                             energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      mem_interface_(
          noc::LinkConfig{
              config_.name + ".mem_if",
              config_.bytes_per_ns_per_module * static_cast<double>(modules_per_cluster),
              config_.interface_latency,
              config_.energy_per_byte,
          },
          ledger) {}

Time DataAllocator::run_transfer(Time now, const TransferRequest& req) {
  if (req.src == nullptr || req.weights == 0) return now;

  if (req.dst == nullptr || req.dst == req.src) {
    // Intra-module MRAM <-> SRAM move through the module interface.
    return req.src->intra_move(now, req.src_mem, req.dst_mem, req.weights).complete;
  }

  const std::uint64_t chunk = config_.rearrange_buffer_bytes;
  std::uint64_t remaining = req.weights;
  // Pipeline recurrences: the rearrange buffer double-buffers one chunk, so
  // chunk i's destination write may overlap chunk i+1's source read, but a
  // chunk cannot start writing before it was fully read and transferred.
  Time read_free = now;   // source side availability
  Time write_free = now;  // destination side availability
  Time complete = now;
  while (remaining > 0) {
    const std::uint64_t n = std::min<std::uint64_t>(chunk, remaining);
    remaining -= n;
    const auto rd = req.src->stream_out(read_free, req.src_mem, n);
    read_free = rd.complete;
    const auto tx = mem_interface_.transfer(rd.complete, n);
    const Time write_start = std::max(tx.complete, write_free);
    const auto wr = req.dst->stream_in(write_start, req.dst_mem, n);
    write_free = wr.complete;
    complete = wr.complete;
  }
  return complete;
}

TransferSummary DataAllocator::execute(Time now, const std::vector<TransferRequest>& requests) {
  TransferSummary summary;
  summary.start = now;
  summary.complete = now;
  for (const auto& req : requests) {
    if (req.weights == 0) continue;
    const Time done = run_transfer(now, req);
    summary.complete = std::max(summary.complete, done);
    summary.weights_moved += req.weights;
    summary.chunks += (req.weights + config_.rearrange_buffer_bytes - 1) /
                      config_.rearrange_buffer_bytes;
  }
  total_moved_ += summary.weights_moved;
  return summary;
}

void DataAllocator::save_state(ByteWriter& w, Time now) const {
  mem_interface_.save_state(w, now);
}

void DataAllocator::load_state(ByteReader& r) { mem_interface_.load_state(r); }

}  // namespace hhpim::pim
