// PIM Controller (Fig. 2): the per-cluster controller with a
// FETCH-DECODE-LOAD-EXECUTE-STORE state machine, instruction decoder,
// command encoder, data allocator and CMD/MEM interface logic.
//
// The controller consumes PIM instructions from an InstructionQueue and
// dispatches command signals to the modules of its cluster. Every
// instruction costs fetch+decode cycles of controller time and a fixed
// control energy; module-level work is then timed by the modules themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "isa/instruction.hpp"
#include "pim/data_allocator.hpp"
#include "pim/instruction_queue.hpp"
#include "pim/module.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::pim {

/// Controller FSM states (paper Fig. 2).
enum class ControllerState : std::uint8_t {
  kIdle,
  kFetch,
  kDecode,
  kLoad,
  kExecute,
  kStore,
  kHalted,
};

[[nodiscard]] const char* to_string(ControllerState s);

struct ControllerConfig {
  std::string name = "ctrl";
  Time cycle = Time::ns(1.0);      ///< controller clock period
  std::uint32_t fetch_cycles = 1;
  std::uint32_t decode_cycles = 1;
  Energy instruction_energy = Energy::pj(0.8);
  Power leakage = Power::mw(0.12);
};

/// Summary of one program execution.
struct RunSummary {
  Time start;
  Time complete;            ///< all modules idle, HALT retired
  std::uint64_t instructions = 0;
  std::uint64_t decode_errors = 0;
};

class PimController {
 public:
  /// `modules` are non-owning; the cluster owns them and outlives the
  /// controller.
  PimController(ControllerConfig config, std::vector<PimModule*> modules,
                DataAllocatorConfig alloc_config, energy::EnergyLedger* ledger);

  /// Runs a whole program synchronously, advancing an internal timeline that
  /// starts at `now`. Executes until HALT or queue exhaustion.
  RunSummary run_program(Time now, const std::vector<isa::Instruction>& program);

  /// Lower-level: executes a single already-decoded instruction at `now`.
  /// Returns the controller-side completion time (modules may still be busy).
  Time execute(Time now, const isa::Instruction& inst);

  /// Time when every module of the cluster is idle.
  [[nodiscard]] Time modules_idle_at() const;

  [[nodiscard]] ControllerState state() const { return state_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] DataAllocator& allocator() { return allocator_; }
  [[nodiscard]] InstructionQueue& queue() { return queue_; }
  [[nodiscard]] const InstructionQueue& queue() const { return queue_; }
  [[nodiscard]] std::uint64_t instructions_retired() const { return retired_; }

  /// Closes the controller leakage window.
  void settle(Time now) { tracker_.settle(now); }

  /// Behavior-relevant state relative to `now` (see mem::Bank::add_state):
  /// FSM state, queue depth, leakage window and the allocator's link. The
  /// retired-instruction counter is history.
  void add_state(Fnv1a& h, Time now) const {
    h.add(static_cast<int>(state_))
        .add(static_cast<std::uint64_t>(queue_.size()))
        .add(tracker_.is_on() ? 1 : 0)
        .add(tracker_.is_on() ? (tracker_.anchor() - now).as_ps()
                              : std::int64_t{0});
    allocator_.add_state(h, now);
  }

  /// Checkpoint save/load of exactly the state add_state() digests (see
  /// mem::Bank::save_state for the contract). save_state throws
  /// std::logic_error while instructions are queued — queue contents are
  /// not serialized (the slice-loop workload path never enqueues any).
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

  /// Returns FSM/accounting state to just-constructed (processor reuse).
  /// Queued instructions are not dropped — the slice-loop workload path
  /// never enqueues any; program-driven callers manage the queue themselves.
  void reset_accounting() {
    tracker_.reset(config_.leakage);
    allocator_.reset_accounting();
    state_ = ControllerState::kIdle;
    retired_ = 0;
  }

 private:
  /// Applies `fn` to every module selected by `mask`.
  void for_selected(std::uint8_t mask, const std::function<void(PimModule&)>& fn);

  ControllerConfig config_;
  std::vector<PimModule*> modules_;
  InstructionQueue queue_;
  DataAllocator allocator_;
  energy::EnergyLedger* ledger_;
  energy::ComponentId id_;
  energy::LeakageTracker tracker_;
  ControllerState state_ = ControllerState::kIdle;
  std::uint64_t retired_ = 0;
};

}  // namespace hhpim::pim
