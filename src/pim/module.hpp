// One PIM module: MRAM bank + SRAM bank + PE + interface (Fig. 1).
//
// The module executes weight-streaming compute bursts: per MAC, the LOAD
// state fetches one int8 weight from the selected memory and the EXECUTE
// state runs one MAC — serialized, so a burst of n MACs from memory m takes
// n * (t_read(m) + t_pe). MRAM and SRAM portions of a task are serialized
// within a module (paper §III-B); modules of a cluster run in parallel.
//
// Power management implemented here:
//   * SRAM is powered whenever it holds resident weights (retention) and
//     during compute bursts (it is also the I/O buffer). Otherwise gated.
//   * MRAM is powered only while being accessed (non-volatile), i.e. during
//     bursts that stream from it and during data movement.
//   * The PE is powered only during compute bursts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "common/hash.hpp"
#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "energy/power_spec.hpp"
#include "mem/bank.hpp"
#include "pe/processing_element.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::pim {

struct ModuleConfig {
  std::string name = "pim0";
  energy::ClusterKind cluster = energy::ClusterKind::kHighPerformance;
  std::size_t mram_bytes = 64 * 1024;  ///< 0 = module has no MRAM (Baseline/Hetero)
  std::size_t sram_bytes = 64 * 1024;
};

/// Completion report of a burst operation.
struct BurstResult {
  Time start;
  Time complete;
};

/// Integer accounting snapshot of one module, used by the batched
/// steady-state kernel: the delta between two snapshots taken around one
/// task is the exact per-task advance, and fast_forward() applies it
/// `repeats` more times (all fields are integers, so repetition is exact).
struct ModuleCounters {
  Time busy_until;
  Time mram_on;   ///< MRAM bank accumulated on-time
  Time sram_on;   ///< SRAM bank accumulated on-time
  Time pe_on;     ///< PE accumulated on-time
  /// Leakage-interval anchors: a tracker gated per burst advances its
  /// anchor by one period per task; a tracker held at constant power
  /// (SRAM weight retention) leaves it frozen until the slice-end settle.
  /// The delta tells fast_forward() which shift each tracker needs.
  Time mram_anchor, sram_anchor, pe_anchor;
  std::uint64_t mram_reads = 0, mram_writes = 0;
  std::uint64_t sram_reads = 0, sram_writes = 0;
  std::uint64_t macs = 0;

  /// Per-period advance between two snapshots of the same module.
  [[nodiscard]] static ModuleCounters delta(const ModuleCounters& before,
                                            const ModuleCounters& after);
};

class PimModule {
 public:
  PimModule(ModuleConfig config, const energy::PowerSpec& spec,
            energy::EnergyLedger* ledger);

  [[nodiscard]] const ModuleConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] bool has_mram() const { return mram_.has_value(); }

  /// Weight capacity (int8 weights) of one memory kind.
  [[nodiscard]] std::uint64_t weight_capacity(energy::MemoryKind m) const;

  // --- Weight residency ----------------------------------------------------

  /// Declares that `weights` int8 weights now live in memory `m`. Manages the
  /// SRAM retention-leakage window. Throws if capacity is exceeded or the
  /// module lacks that memory.
  void set_resident(energy::MemoryKind m, std::uint64_t weights, Time now);
  [[nodiscard]] std::uint64_t resident(energy::MemoryKind m) const;

  // --- Timed operations (module-serialized) --------------------------------

  /// `macs` MACs streaming weights from memory `m`. Starts at `now` or when
  /// the module frees up.
  BurstResult compute_burst(Time now, energy::MemoryKind m, std::uint64_t macs);

  /// PE-only burst (ReLU / requantization): `ops` datapath operations with no
  /// weight fetch; operands come from the SRAM I/O buffer, which stays
  /// powered for the window.
  BurstResult pe_only_burst(Time now, std::uint64_t ops);

  /// Streams `weights` int8 weights out of memory `m` (reads, for transfers).
  BurstResult stream_out(Time now, energy::MemoryKind m, std::uint64_t weights);

  /// Streams `weights` int8 weights into memory `m` (writes).
  BurstResult stream_in(Time now, energy::MemoryKind m, std::uint64_t weights);

  /// Moves `weights` between this module's own MRAM and SRAM (intra-module):
  /// read source + write destination, serialized through the interface.
  BurstResult intra_move(Time now, energy::MemoryKind from, energy::MemoryKind to,
                         std::uint64_t weights);

  [[nodiscard]] Time busy_until() const { return busy_until_; }

  // --- Functional compute (small-scale; validates the burst model) ---------

  /// Timed dot product over real int8 data stored in memory `m` at
  /// `weight_addr`, against the activation vector `acts` (served from the
  /// module's SRAM I/O region conceptually). Returns the accumulator.
  std::int32_t compute_dot(Time now, energy::MemoryKind m, std::size_t weight_addr,
                           const std::int8_t* acts, std::size_t n, BurstResult* timing);

  /// Functional access to the underlying banks (tests, RISC-V DMA).
  [[nodiscard]] mem::Bank& bank(energy::MemoryKind m);
  [[nodiscard]] pe::ProcessingElement& pe() { return pe_; }

  /// Closes all leakage windows at `now` (end of measurement).
  void settle(Time now);

  // --- Steady-state fast path (batched execution / processor reuse) --------

  /// Current accounting snapshot (see ModuleCounters).
  [[nodiscard]] ModuleCounters counters() const;

  /// Advances the module by `repeats` periods of the steady-state interval
  /// described by `per_period` (a ModuleCounters::delta): busy time and
  /// leakage anchors shift by `per_period.busy_until` per period, counters
  /// and on-times accumulate. The caller replays the matching energy posts
  /// through EnergyLedger::replay — together the two restore exactly the
  /// state `repeats` scalar re-executions of the recorded interval would
  /// have produced (pinned by tests/test_batched.cpp).
  void fast_forward(const ModuleCounters& per_period, int repeats);

  /// Returns power/accounting state (banks, PE, busy time, residency) to
  /// just-constructed. The owning processor resets the ledger separately.
  void reset_accounting();

  /// Behavior-relevant state relative to `now` (see mem::Bank::add_state):
  /// residency, the module occupancy horizon, and each component's power/
  /// occupancy state. Equal digests at a slice boundary mean identical
  /// timing/energy for all future bursts.
  void add_state(Fnv1a& h, Time now) const {
    // A horizon in the past is behaviorally "free now": every op starts at
    // max(now, busy_until_), so clamping the offset at 0 keeps the digest
    // exact while erasing *when* an idle module was last used — without the
    // clamp, stale horizons would chain arbitrary history into the digest
    // and the fleet's outcome memo would never converge.
    h.add(static_cast<std::uint64_t>(resident_[0]))
        .add(static_cast<std::uint64_t>(resident_[1]))
        .add(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0))
        .add(mram_.has_value() ? 1 : 0);
    if (mram_.has_value()) mram_->add_state(h, now);
    sram_.add_state(h, now);
    pe_.add_state(h, now);
  }

  /// Checkpoint save/load of exactly the state add_state() digests —
  /// residency, the occupancy horizon, and each component's state (see
  /// mem::Bank::save_state for the contract). load_state throws
  /// std::runtime_error when the blob's MRAM shape does not match this
  /// module's.
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

  /// Per-MAC latency when streaming from memory `m` (t_read + t_pe).
  [[nodiscard]] Time mac_latency(energy::MemoryKind m) const;

  [[nodiscard]] std::uint64_t total_macs() const { return pe_.mac_count(); }

 private:
  /// Opens power windows for a burst [start, end] touching memory `m`.
  void open_windows(Time start, energy::MemoryKind m, bool uses_pe);
  void close_windows(Time end, energy::MemoryKind m, bool uses_pe);
  mem::Bank& require_bank(energy::MemoryKind m);
  [[nodiscard]] const mem::Bank& require_bank(energy::MemoryKind m) const;

  ModuleConfig config_;
  const energy::ModuleSpec& spec_;
  std::optional<mem::Bank> mram_;
  mem::Bank sram_;
  pe::ProcessingElement pe_;
  std::uint64_t resident_[2] = {0, 0};  // indexed by MemoryKind
  Time busy_until_ = Time::zero();
};

}  // namespace hhpim::pim
