#include "pim/instruction_queue.hpp"

#include <algorithm>

namespace hhpim::pim {

InstructionQueue::InstructionQueue(std::size_t depth) : depth_(depth) {}

bool InstructionQueue::push(const isa::Instruction& inst) {
  if (full()) {
    ++rejected_;
    return false;
  }
  fifo_.push_back(inst);
  ++pushed_;
  peak_ = std::max(peak_, fifo_.size());
  return true;
}

std::optional<isa::Instruction> InstructionQueue::pop() {
  if (fifo_.empty()) return std::nullopt;
  isa::Instruction inst = fifo_.front();
  fifo_.pop_front();
  return inst;
}

}  // namespace hhpim::pim
