// PIM Instruction Queue (Fig. 1): the FIFO between the host core and the
// PIM controllers. Fixed depth; the core stalls (MMIO busy) when full.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "isa/instruction.hpp"

namespace hhpim::pim {

class InstructionQueue {
 public:
  explicit InstructionQueue(std::size_t depth = 32);

  /// Returns false (and drops nothing) if the queue is full.
  bool push(const isa::Instruction& inst);

  /// Pops the oldest instruction, or nullopt when empty.
  std::optional<isa::Instruction> pop();

  [[nodiscard]] bool empty() const { return fifo_.empty(); }
  [[nodiscard]] bool full() const { return fifo_.size() >= depth_; }
  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  [[nodiscard]] std::size_t total_pushed() const { return pushed_; }
  [[nodiscard]] std::size_t peak_occupancy() const { return peak_; }
  [[nodiscard]] std::size_t rejected() const { return rejected_; }

 private:
  std::size_t depth_;
  std::deque<isa::Instruction> fifo_;
  std::size_t pushed_ = 0;
  std::size_t peak_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace hhpim::pim
