// A PIM module cluster (HP or LP): N identical modules plus their controller
// and the cluster-side interface (Fig. 1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "energy/power_spec.hpp"
#include "pim/controller.hpp"
#include "pim/module.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::pim {

struct ClusterConfig {
  std::string name = "hp";
  energy::ClusterKind kind = energy::ClusterKind::kHighPerformance;
  std::size_t module_count = 4;
  std::size_t mram_bytes_per_module = 64 * 1024;  ///< 0 = no MRAM
  std::size_t sram_bytes_per_module = 64 * 1024;
};

class Cluster {
 public:
  Cluster(ClusterConfig config, const energy::PowerSpec& spec,
          energy::EnergyLedger* ledger);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }
  [[nodiscard]] PimModule& module(std::size_t i) { return *modules_[i]; }
  [[nodiscard]] const PimModule& module(std::size_t i) const { return *modules_[i]; }
  [[nodiscard]] PimController& controller() { return *controller_; }
  [[nodiscard]] const PimController& controller() const { return *controller_; }

  /// Total weight capacity across modules for one memory kind.
  [[nodiscard]] std::uint64_t weight_capacity(energy::MemoryKind m) const;

  /// Total weights currently resident in one memory kind.
  [[nodiscard]] std::uint64_t resident(energy::MemoryKind m) const;

  /// Distributes `weights` resident weights evenly across modules
  /// (remainder to the lowest-indexed modules), updating retention windows.
  void distribute_resident(energy::MemoryKind m, std::uint64_t weights, Time now);

  /// Runs `macs` MACs streaming from memory kind `m`, split evenly across
  /// the modules, starting at `now`. Returns the cluster completion time.
  Time compute(Time now, energy::MemoryKind m, std::uint64_t macs);

  /// Batched task kernel: equivalent to `n` barrier-synchronized compute()
  /// calls — task k starts when task k-1's slowest module finishes — but
  /// executed in closed form for the steady-state tail. The first task runs
  /// scalar (absorbing whatever power-window state precedes the batch), the
  /// second runs scalar while its energy posts and integer state deltas are
  /// recorded, and tasks 3..n are applied by replaying those posts and
  /// fast-forwarding the modules. Ledger cells, counters and the returned
  /// completion time are bit-identical to the scalar loop (pinned by
  /// tests/test_batched.cpp). Returns the last task's completion.
  Time compute_batch(Time start, energy::MemoryKind m, std::uint64_t macs, int n);

  /// Time when every module is idle.
  [[nodiscard]] Time busy_until() const;

  /// Per-MAC latency of this cluster's modules when streaming from `m`.
  [[nodiscard]] Time mac_latency(energy::MemoryKind m) const;

  void settle(Time now);

  /// Returns every module and the controller to just-constructed
  /// power/accounting state (processor reuse; the owning processor resets
  /// the ledger separately).
  void reset_accounting();

  /// Checkpoint save/load of exactly the state add_state() digests (see
  /// mem::Bank::save_state for the contract). load_state throws
  /// std::runtime_error on a module-count mismatch.
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

  /// Behavior-relevant state of every module and the controller, relative
  /// to `now` (see mem::Bank::add_state).
  void add_state(Fnv1a& h, Time now) const {
    h.add(static_cast<std::uint64_t>(modules_.size()));
    for (const auto& m : modules_) m->add_state(h, now);
    controller_->add_state(h, now);
  }

 private:
  ClusterConfig config_;
  energy::EnergyLedger* ledger_;
  std::vector<std::unique_ptr<PimModule>> modules_;
  std::unique_ptr<PimController> controller_;
  // Scratch buffers for compute_batch, reused across calls (it runs once
  // per slice on the steady-state hot path).
  std::vector<ModuleCounters> batch_probe_;
  std::vector<energy::RecordedPost> batch_posts_;
};

}  // namespace hhpim::pim
