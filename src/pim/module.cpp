#include "pim/module.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::pim {

namespace {
std::size_t idx(energy::MemoryKind m) { return m == energy::MemoryKind::kMram ? 0 : 1; }
}  // namespace

PimModule::PimModule(ModuleConfig config, const energy::PowerSpec& spec,
                     energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      spec_(spec.module(config_.cluster)),
      mram_(config_.mram_bytes > 0
                ? std::optional<mem::Bank>{mem::make_mram(spec, config_.cluster,
                                                          config_.name + ".mram",
                                                          config_.mram_bytes, ledger)}
                : std::nullopt),
      sram_(mem::make_sram(spec, config_.cluster, config_.name + ".sram",
                           config_.sram_bytes, ledger)),
      pe_(config_.name + ".pe", spec.module(config_.cluster).pe, ledger) {}

mem::Bank& PimModule::require_bank(energy::MemoryKind m) {
  if (m == energy::MemoryKind::kMram) {
    if (!mram_.has_value()) {
      throw std::logic_error("PimModule " + config_.name + ": no MRAM present");
    }
    return *mram_;
  }
  return sram_;
}

const mem::Bank& PimModule::require_bank(energy::MemoryKind m) const {
  return const_cast<PimModule*>(this)->require_bank(m);
}

mem::Bank& PimModule::bank(energy::MemoryKind m) { return require_bank(m); }

std::uint64_t PimModule::weight_capacity(energy::MemoryKind m) const {
  if (m == energy::MemoryKind::kMram) {
    return mram_.has_value() ? mram_->capacity() : 0;
  }
  return sram_.capacity();
}

void PimModule::set_resident(energy::MemoryKind m, std::uint64_t weights, Time now) {
  if (weights > weight_capacity(m)) {
    throw std::invalid_argument("PimModule " + config_.name + ": " +
                                std::to_string(weights) + " weights exceed " +
                                energy::to_string(m) + " capacity");
  }
  resident_[idx(m)] = weights;
  if (m == energy::MemoryKind::kSram) {
    // Retention: enough SRAM sub-banks to hold the weights stay powered
    // (1 byte per int8 weight); the rest of the macro gates.
    sram_.set_active_bytes(static_cast<std::size_t>(weights), now);
  }
}

std::uint64_t PimModule::resident(energy::MemoryKind m) const { return resident_[idx(m)]; }

Time PimModule::mac_latency(energy::MemoryKind m) const {
  const Time read = m == energy::MemoryKind::kMram ? spec_.mram_timing.read
                                                   : spec_.sram_timing.read;
  return read + spec_.pe.mac_latency;
}

void PimModule::open_windows(Time start, energy::MemoryKind m, bool uses_pe) {
  if (m == energy::MemoryKind::kMram) require_bank(m).power_on(start);
  // SRAM doubles as the I/O buffer: at least one sub-array is active during
  // any burst, on top of the sub-arrays retaining weights.
  const std::size_t io = std::min<std::size_t>(sram_.capacity(),
                                               sram_.config().gate_granularity_bytes);
  const std::size_t resident = resident_[idx(energy::MemoryKind::kSram)];
  sram_.set_active_bytes(std::max<std::size_t>(resident, io), start);
  if (uses_pe) pe_.power_on(start);
}

void PimModule::close_windows(Time end, energy::MemoryKind m, bool uses_pe) {
  // MRAM gates immediately after the burst (non-volatile).
  if (m == energy::MemoryKind::kMram && mram_.has_value()) mram_->power_off(end);
  // SRAM keeps only its weight-retention sub-banks powered.
  sram_.set_active_bytes(resident_[idx(energy::MemoryKind::kSram)], end);
  if (uses_pe) pe_.power_off(end);
}

BurstResult PimModule::compute_burst(Time now, energy::MemoryKind m, std::uint64_t macs) {
  mem::Bank& bank = require_bank(m);
  const Time start = std::max(now, busy_until_);
  const Time duration = mac_latency(m) * static_cast<std::int64_t>(macs);
  const Time end = start + duration;
  busy_until_ = end;

  open_windows(start, m, /*uses_pe=*/true);
  bank.charge_reads(macs);
  pe_.charge_macs(macs);
  close_windows(end, m, /*uses_pe=*/true);
  return BurstResult{start, end};
}

BurstResult PimModule::pe_only_burst(Time now, std::uint64_t ops) {
  const Time start = std::max(now, busy_until_);
  const Time end = start + spec_.pe.mac_latency * static_cast<std::int64_t>(ops);
  busy_until_ = end;
  open_windows(start, energy::MemoryKind::kSram, /*uses_pe=*/true);
  pe_.charge_macs(ops);
  close_windows(end, energy::MemoryKind::kSram, /*uses_pe=*/true);
  return BurstResult{start, end};
}

BurstResult PimModule::stream_out(Time now, energy::MemoryKind m, std::uint64_t weights) {
  mem::Bank& bank = require_bank(m);
  const Time start = std::max(now, busy_until_);
  const Time per = m == energy::MemoryKind::kMram ? spec_.mram_timing.read
                                                  : spec_.sram_timing.read;
  const Time end = start + per * static_cast<std::int64_t>(weights);
  busy_until_ = end;
  open_windows(start, m, /*uses_pe=*/false);
  bank.charge_reads(weights);
  close_windows(end, m, /*uses_pe=*/false);
  return BurstResult{start, end};
}

BurstResult PimModule::stream_in(Time now, energy::MemoryKind m, std::uint64_t weights) {
  mem::Bank& bank = require_bank(m);
  const Time start = std::max(now, busy_until_);
  const Time per = m == energy::MemoryKind::kMram ? spec_.mram_timing.write
                                                  : spec_.sram_timing.write;
  const Time end = start + per * static_cast<std::int64_t>(weights);
  busy_until_ = end;
  open_windows(start, m, /*uses_pe=*/false);
  bank.charge_writes(weights);
  close_windows(end, m, /*uses_pe=*/false);
  return BurstResult{start, end};
}

BurstResult PimModule::intra_move(Time now, energy::MemoryKind from, energy::MemoryKind to,
                                  std::uint64_t weights) {
  if (from == to) {
    throw std::invalid_argument("PimModule: intra_move requires distinct memories");
  }
  mem::Bank& src = require_bank(from);
  mem::Bank& dst = require_bank(to);
  const Time start = std::max(now, busy_until_);
  const Time per_read = from == energy::MemoryKind::kMram ? spec_.mram_timing.read
                                                          : spec_.sram_timing.read;
  const Time per_write = to == energy::MemoryKind::kMram ? spec_.mram_timing.write
                                                         : spec_.sram_timing.write;
  // Read and write streams through the module interface are pipelined; the
  // slower side dominates, plus one lead-in of the faster side.
  const Time read_total = per_read * static_cast<std::int64_t>(weights);
  const Time write_total = per_write * static_cast<std::int64_t>(weights);
  const Time duration = std::max(read_total, write_total) +
                        (read_total < write_total ? per_read : per_write);
  const Time end = start + duration;
  busy_until_ = end;

  open_windows(start, from, /*uses_pe=*/false);
  open_windows(start, to, /*uses_pe=*/false);
  src.charge_reads(weights);
  dst.charge_writes(weights);
  close_windows(end, from, /*uses_pe=*/false);
  close_windows(end, to, /*uses_pe=*/false);
  return BurstResult{start, end};
}

std::int32_t PimModule::compute_dot(Time now, energy::MemoryKind m, std::size_t weight_addr,
                                    const std::int8_t* acts, std::size_t n,
                                    BurstResult* timing) {
  mem::Bank& bank = require_bank(m);
  const Time start = std::max(now, busy_until_);
  open_windows(start, m, /*uses_pe=*/true);

  // Op-level simulation: one read + one MAC per element, serialized exactly
  // as the burst model assumes. Uses the banks' own timed interface so the
  // result must agree with compute_burst — this is asserted in tests.
  Time t = start;
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t w = 0;
    const auto r = bank.read(t, weight_addr + i, 1, &w);
    const auto mac = pe_.mac(r.complete, static_cast<std::int8_t>(w), acts[i], acc);
    acc = mac.accumulator;
    t = mac.complete;
  }
  busy_until_ = t;
  close_windows(t, m, /*uses_pe=*/true);
  if (timing != nullptr) *timing = BurstResult{start, t};
  return acc;
}

void PimModule::settle(Time now) {
  if (mram_.has_value()) mram_->settle(now);
  sram_.settle(now);
  pe_.settle(now);
}

ModuleCounters ModuleCounters::delta(const ModuleCounters& before,
                                     const ModuleCounters& after) {
  ModuleCounters d;
  d.busy_until = after.busy_until - before.busy_until;
  d.mram_on = after.mram_on - before.mram_on;
  d.sram_on = after.sram_on - before.sram_on;
  d.pe_on = after.pe_on - before.pe_on;
  d.mram_anchor = after.mram_anchor - before.mram_anchor;
  d.sram_anchor = after.sram_anchor - before.sram_anchor;
  d.pe_anchor = after.pe_anchor - before.pe_anchor;
  d.mram_reads = after.mram_reads - before.mram_reads;
  d.mram_writes = after.mram_writes - before.mram_writes;
  d.sram_reads = after.sram_reads - before.sram_reads;
  d.sram_writes = after.sram_writes - before.sram_writes;
  d.macs = after.macs - before.macs;
  return d;
}

ModuleCounters PimModule::counters() const {
  ModuleCounters c;
  c.busy_until = busy_until_;
  if (mram_.has_value()) {
    c.mram_on = mram_->total_on_time();
    c.mram_anchor = mram_->leakage_anchor();
    c.mram_reads = mram_->read_count();
    c.mram_writes = mram_->write_count();
  }
  c.sram_on = sram_.total_on_time();
  c.sram_anchor = sram_.leakage_anchor();
  c.sram_reads = sram_.read_count();
  c.sram_writes = sram_.write_count();
  c.pe_on = pe_.total_on_time();
  c.pe_anchor = pe_.leakage_anchor();
  c.macs = pe_.mac_count();
  return c;
}

void PimModule::fast_forward(const ModuleCounters& per_period, int repeats) {
  // A module (or tracker) untouched over the recorded interval has a zero
  // delta; shifting by zero keeps its state correct. Each tracker shifts by
  // its *own* observed anchor delta — per-burst-gated trackers advance one
  // period per task, retention trackers held at constant power stay frozen
  // until the slice-end settle (see ModuleCounters).
  const auto reps = static_cast<std::int64_t>(repeats);
  busy_until_ += per_period.busy_until * reps;
  if (mram_.has_value()) {
    mram_->fast_forward(per_period.mram_anchor * reps, per_period.mram_on * reps,
                        per_period.mram_reads * static_cast<std::uint64_t>(repeats),
                        per_period.mram_writes * static_cast<std::uint64_t>(repeats));
  }
  sram_.fast_forward(per_period.sram_anchor * reps, per_period.sram_on * reps,
                     per_period.sram_reads * static_cast<std::uint64_t>(repeats),
                     per_period.sram_writes * static_cast<std::uint64_t>(repeats));
  pe_.fast_forward(per_period.pe_anchor * reps, per_period.pe_on * reps,
                   per_period.macs * static_cast<std::uint64_t>(repeats));
}

void PimModule::reset_accounting() {
  busy_until_ = Time::zero();
  resident_[0] = resident_[1] = 0;
  if (mram_.has_value()) mram_->reset_accounting();
  sram_.reset_accounting();
  pe_.reset_accounting();
}

void PimModule::save_state(ByteWriter& w, Time now) const {
  w.u64(static_cast<std::uint64_t>(resident_[0]));
  w.u64(static_cast<std::uint64_t>(resident_[1]));
  w.i64(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
  w.u8(mram_.has_value() ? 1 : 0);
  if (mram_.has_value()) mram_->save_state(w, now);
  sram_.save_state(w, now);
  pe_.save_state(w, now);
}

void PimModule::load_state(ByteReader& r) {
  resident_[0] = r.u64();
  resident_[1] = r.u64();
  busy_until_ = Time::ps(r.i64());
  const bool has_mram = r.u8() != 0;
  if (has_mram != mram_.has_value()) {
    throw std::runtime_error("snapshot: MRAM shape mismatch for module " +
                             config_.name);
  }
  if (mram_.has_value()) mram_->load_state(r);
  sram_.load_state(r);
  pe_.load_state(r);
}

}  // namespace hhpim::pim
