#include "pim/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::pim {

Cluster::Cluster(ClusterConfig config, const energy::PowerSpec& spec,
                 energy::EnergyLedger* ledger)
    : config_(std::move(config)), ledger_(ledger) {
  modules_.reserve(config_.module_count);
  for (std::size_t i = 0; i < config_.module_count; ++i) {
    ModuleConfig mc;
    mc.name = config_.name + std::to_string(i);
    mc.cluster = config_.kind;
    mc.mram_bytes = config_.mram_bytes_per_module;
    mc.sram_bytes = config_.sram_bytes_per_module;
    modules_.push_back(std::make_unique<PimModule>(mc, spec, ledger));
  }
  std::vector<PimModule*> raw;
  raw.reserve(modules_.size());
  for (auto& m : modules_) raw.push_back(m.get());

  ControllerConfig cc;
  cc.name = config_.name + ".ctrl";
  DataAllocatorConfig ac;
  ac.name = config_.name + ".alloc";
  controller_ = std::make_unique<PimController>(cc, std::move(raw), ac, ledger);
}

std::uint64_t Cluster::weight_capacity(energy::MemoryKind m) const {
  std::uint64_t total = 0;
  for (const auto& mod : modules_) total += mod->weight_capacity(m);
  return total;
}

std::uint64_t Cluster::resident(energy::MemoryKind m) const {
  std::uint64_t total = 0;
  for (const auto& mod : modules_) total += mod->resident(m);
  return total;
}

void Cluster::distribute_resident(energy::MemoryKind m, std::uint64_t weights, Time now) {
  const std::uint64_t n = modules_.size();
  const std::uint64_t base = weights / n;
  const std::uint64_t extra = weights % n;
  for (std::uint64_t i = 0; i < n; ++i) {
    modules_[i]->set_resident(m, base + (i < extra ? 1 : 0), now);
  }
}

Time Cluster::compute(Time now, energy::MemoryKind m, std::uint64_t macs) {
  const std::uint64_t n = modules_.size();
  const std::uint64_t base = macs / n;
  const std::uint64_t extra = macs % n;
  Time done = now;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t share = base + (i < extra ? 1 : 0);
    if (share == 0) continue;
    done = std::max(done, modules_[i]->compute_burst(now, m, share).complete);
  }
  return done;
}

Time Cluster::compute_batch(Time start, energy::MemoryKind m, std::uint64_t macs,
                            int n) {
  if (n <= 0 || macs == 0) return start;
  Time end = compute(start, m, macs);
  if (n == 1) return end;

  // Without a ledger (purely functional clusters) there is nothing to
  // record; fall back to the scalar loop.
  if (ledger_ == nullptr) {
    for (int k = 1; k < n; ++k) end = compute(end, m, macs);
    return end;
  }

  // Task 2 is the steady-state exemplar: from here on every task repeats the
  // same per-module burst durations, energy posts and inter-task gaps, so it
  // can be recorded once and replayed (n - 2) times.
  batch_probe_.clear();
  for (const auto& mod : modules_) batch_probe_.push_back(mod->counters());

  batch_posts_.clear();
  const Time c1 = end;
  ledger_->begin_recording(&batch_posts_);
  end = compute(end, m, macs);
  ledger_->end_recording();

  const int repeats = n - 2;
  if (repeats > 0) {
    ledger_->replay(batch_posts_, repeats);
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      modules_[i]->fast_forward(
          ModuleCounters::delta(batch_probe_[i], modules_[i]->counters()),
          repeats);
    }
    end += (end - c1) * static_cast<std::int64_t>(repeats);
  }
  return end;
}

Time Cluster::busy_until() const {
  Time t = Time::zero();
  for (const auto& m : modules_) t = std::max(t, m->busy_until());
  return t;
}

Time Cluster::mac_latency(energy::MemoryKind m) const {
  return modules_.front()->mac_latency(m);
}

void Cluster::settle(Time now) {
  for (auto& m : modules_) m->settle(now);
  controller_->settle(now);
}

void Cluster::reset_accounting() {
  for (auto& m : modules_) m->reset_accounting();
  controller_->reset_accounting();
}

void Cluster::save_state(ByteWriter& w, Time now) const {
  w.u64(static_cast<std::uint64_t>(modules_.size()));
  for (const auto& m : modules_) m->save_state(w, now);
  controller_->save_state(w, now);
}

void Cluster::load_state(ByteReader& r) {
  const std::uint64_t count = r.u64();
  if (count != modules_.size()) {
    throw std::runtime_error("snapshot: module count mismatch for cluster " +
                             config_.name);
  }
  for (auto& m : modules_) m->load_state(r);
  controller_->load_state(r);
}

}  // namespace hhpim::pim
