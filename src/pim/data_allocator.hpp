// Data Allocator (Fig. 2): plans and executes weight movement between PIM
// modules — across clusters through the Data Rearrange Buffer and the MEM
// Interface Logic, or within a module between MRAM and SRAM.
//
// Cross-cluster transfers are chunked by the rearrange-buffer capacity and
// pipelined: while chunk i is being written at the destination, chunk i+1 is
// already being read at the source (double buffering). The buffer "retains
// the data until the destination module is ready" (paper §II), which is what
// decouples the differing HP/LP access speeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "energy/power_spec.hpp"
#include "noc/link.hpp"
#include "pim/module.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::pim {

/// One planned movement of `weights` int8 weights.
struct TransferRequest {
  PimModule* src = nullptr;
  energy::MemoryKind src_mem = energy::MemoryKind::kSram;
  PimModule* dst = nullptr;  ///< nullptr dst => same module (intra move)
  energy::MemoryKind dst_mem = energy::MemoryKind::kSram;
  std::uint64_t weights = 0;
};

struct DataAllocatorConfig {
  std::string name = "alloc";
  std::size_t rearrange_buffer_bytes = 4096;
  /// MEM interface bandwidth per module; total scales with module count
  /// ("the bandwidth of the MEM Interface Logic is scaled according to the
  /// number of PIM modules within each cluster", paper §II).
  double bytes_per_ns_per_module = 4.0;
  Time interface_latency = Time::ns(2.0);
  Energy energy_per_byte = Energy::pj(0.12);
};

struct TransferSummary {
  Time start;
  Time complete;
  std::uint64_t weights_moved = 0;
  std::uint64_t chunks = 0;
};

class DataAllocator {
 public:
  DataAllocator(DataAllocatorConfig config, std::size_t modules_per_cluster,
                energy::EnergyLedger* ledger);

  /// Executes a batch of transfers starting at `now`. Transfers to distinct
  /// module pairs proceed in parallel (the MEM interface is per-module);
  /// chunks within one transfer are pipelined through the rearrange buffer.
  /// Returns the overall completion.
  TransferSummary execute(Time now, const std::vector<TransferRequest>& requests);

  [[nodiscard]] const DataAllocatorConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t total_weights_moved() const { return total_moved_; }

  /// Returns timing/counters to just-constructed (processor reuse).
  void reset_accounting() {
    total_moved_ = 0;
    mem_interface_.reset_accounting();
  }

  /// Behavior-relevant state relative to `now` (see mem::Bank::add_state):
  /// the MEM-interface occupancy; total_weights_moved is history.
  void add_state(Fnv1a& h, Time now) const { mem_interface_.add_state(h, now); }

  /// Checkpoint save/load of exactly the state add_state() digests.
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

 private:
  /// One pipelined chunked transfer between two modules.
  Time run_transfer(Time now, const TransferRequest& req);

  DataAllocatorConfig config_;
  noc::Link mem_interface_;
  std::uint64_t total_moved_ = 0;
};

}  // namespace hhpim::pim
