#include "pim/controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::pim {

const char* to_string(ControllerState s) {
  switch (s) {
    case ControllerState::kIdle: return "IDLE";
    case ControllerState::kFetch: return "FETCH";
    case ControllerState::kDecode: return "DECODE";
    case ControllerState::kLoad: return "LOAD";
    case ControllerState::kExecute: return "EXECUTE";
    case ControllerState::kStore: return "STORE";
    case ControllerState::kHalted: return "HALTED";
  }
  return "?";
}

PimController::PimController(ControllerConfig config, std::vector<PimModule*> modules,
                             DataAllocatorConfig alloc_config,
                             energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      modules_(std::move(modules)),
      queue_(),
      allocator_(std::move(alloc_config), modules_.size(), ledger),
      ledger_(ledger),
      id_(ledger != nullptr ? ledger->register_component(config_.name)
                            : energy::ComponentId{}),
      tracker_(ledger, id_, config_.leakage) {
  if (modules_.empty()) {
    throw std::invalid_argument("PimController: needs at least one module");
  }
}

void PimController::for_selected(std::uint8_t mask,
                                 const std::function<void(PimModule&)>& fn) {
  for (std::size_t i = 0; i < modules_.size() && i < 8; ++i) {
    if ((mask & (1u << i)) != 0) fn(*modules_[i]);
  }
}

Time PimController::modules_idle_at() const {
  Time t = Time::zero();
  for (const auto* m : modules_) t = std::max(t, m->busy_until());
  return t;
}

Time PimController::execute(Time now, const isa::Instruction& inst) {
  // FETCH + DECODE overhead.
  const Time decoded =
      now + config_.cycle * static_cast<std::int64_t>(config_.fetch_cycles +
                                                      config_.decode_cycles);
  if (ledger_ != nullptr) {
    ledger_->add(id_, energy::Activity::kControl, config_.instruction_energy);
  }

  using energy::MemoryKind;
  const auto mem_kind = [&]() -> MemoryKind {
    return inst.mem == isa::MemSel::kMram ? MemoryKind::kMram : MemoryKind::kSram;
  };

  Time done = decoded;
  switch (inst.category) {
    case isa::Category::kCompute: {
      state_ = ControllerState::kLoad;  // LOAD/EXECUTE run inside the modules
      switch (static_cast<isa::ComputeOp>(inst.opcode)) {
        case isa::ComputeOp::kMac:
        case isa::ComputeOp::kGemv:  // a GEMV of length imm streams imm weights
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.compute_burst(decoded, mem_kind(), inst.imm);
          });
          break;
        case isa::ComputeOp::kRelu:
        case isa::ComputeOp::kRequant:
          // Activation-only datapath work: no weight fetch.
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.pe_only_burst(decoded, inst.imm);
          });
          break;
      }
      state_ = ControllerState::kExecute;
      break;
    }
    case isa::Category::kDataMove: {
      state_ = ControllerState::kStore;
      switch (static_cast<isa::DataMoveOp>(inst.opcode)) {
        case isa::DataMoveOp::kLoad:
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.stream_in(decoded, mem_kind(), inst.imm);
          });
          break;
        case isa::DataMoveOp::kStore:
        case isa::DataMoveOp::kXferOut:
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.stream_out(decoded, mem_kind(), inst.imm);
          });
          break;
        case isa::DataMoveOp::kXferIn:
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.stream_in(decoded, mem_kind(), inst.imm);
          });
          break;
        case isa::DataMoveOp::kIntra:
          for_selected(inst.module_mask, [&](PimModule& m) {
            const MemoryKind from = mem_kind();
            const MemoryKind to = from == MemoryKind::kMram ? MemoryKind::kSram
                                                            : MemoryKind::kMram;
            m.intra_move(decoded, from, to, inst.imm);
          });
          break;
      }
      break;
    }
    case isa::Category::kConfig: {
      switch (static_cast<isa::ConfigOp>(inst.opcode)) {
        case isa::ConfigOp::kPowerOn:
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.bank(mem_kind()).power_on(decoded);
          });
          break;
        case isa::ConfigOp::kPowerOff:
          for_selected(inst.module_mask, [&](PimModule& m) {
            m.bank(mem_kind()).power_off(decoded);
          });
          break;
        case isa::ConfigOp::kSetBase:
        case isa::ConfigOp::kSetStride:
          break;  // address generator state; no timing effect at this level
      }
      break;
    }
    case isa::Category::kSync: {
      switch (static_cast<isa::SyncOp>(inst.opcode)) {
        case isa::SyncOp::kNop:
          break;
        case isa::SyncOp::kBarrier: {
          Time idle = decoded;
          for_selected(inst.module_mask == 0 ? 0xff : inst.module_mask,
                       [&](PimModule& m) { idle = std::max(idle, m.busy_until()); });
          done = idle;
          break;
        }
        case isa::SyncOp::kFence:
          done = modules_idle_at();
          done = std::max(done, decoded);
          break;
        case isa::SyncOp::kHalt:
          state_ = ControllerState::kHalted;
          break;
      }
      break;
    }
  }
  ++retired_;
  return std::max(done, decoded);
}

RunSummary PimController::run_program(Time now,
                                      const std::vector<isa::Instruction>& program) {
  RunSummary summary;
  summary.start = now;
  tracker_.power_on(now);
  state_ = ControllerState::kFetch;

  Time t = now;
  for (const auto& inst : program) {
    if (state_ == ControllerState::kHalted) break;
    t = execute(t, inst);
    ++summary.instructions;
  }
  // Completion: controller timeline and all module work drained.
  summary.complete = std::max(t, modules_idle_at());
  tracker_.power_off(summary.complete);
  if (state_ != ControllerState::kHalted) state_ = ControllerState::kIdle;
  return summary;
}

void PimController::save_state(ByteWriter& w, Time now) const {
  if (queue_.size() != 0) {
    // The slice-loop workload path never enqueues; a program-driven caller
    // must drain its program before checkpointing (mid-program controller
    // state is not digested either — see add_state).
    throw std::logic_error("PimController " + config_.name +
                           ": checkpoint requires a drained instruction queue");
  }
  w.u8(static_cast<std::uint8_t>(state_));
  const bool on = tracker_.is_on();
  w.u8(on ? 1 : 0);
  w.i64(on ? (tracker_.anchor() - now).as_ps() : std::int64_t{0});
  w.f64(tracker_.leakage().as_mw());
  allocator_.save_state(w, now);
}

void PimController::load_state(ByteReader& r) {
  const std::uint8_t raw_state = r.u8();
  if (raw_state > static_cast<std::uint8_t>(ControllerState::kHalted)) {
    throw std::runtime_error("snapshot: invalid controller state for " +
                             config_.name);
  }
  state_ = static_cast<ControllerState>(raw_state);
  const bool on = r.u8() != 0;
  const Time anchor = Time::ps(r.i64());
  const Power leakage = Power::mw(r.f64());
  tracker_.restore(on, anchor, leakage);
  allocator_.load_state(r);
}

}  // namespace hhpim::pim
