#include "workload/task.hpp"

namespace hhpim::workload {

std::optional<Task> TaskBuffer::pop() {
  if (fifo_.empty()) return std::nullopt;
  Task t = fifo_.front();
  fifo_.pop_front();
  return t;
}

std::deque<Task> TaskBuffer::drain() {
  std::deque<Task> out;
  out.swap(fifo_);
  return out;
}

void TaskFactory::emit(TaskBuffer& buffer, int slice, int count) {
  for (int i = 0; i < count; ++i) {
    Task t;
    t.id = next_id_++;
    t.pim_macs = pim_macs_;
    t.core_ops = core_ops_;
    t.arrival_slice = slice;
    buffer.push(t);
  }
}

}  // namespace hhpim::workload
