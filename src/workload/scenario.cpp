#include "workload/scenario.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace hhpim::workload {

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kLowConstant: return "low-constant";
    case Scenario::kHighConstant: return "high-constant";
    case Scenario::kPeriodicSpike: return "periodic-spike";
    case Scenario::kPeriodicSpikeFrequent: return "periodic-spike-frequent";
    case Scenario::kPulsing: return "high-low-pulsing";
    case Scenario::kRandom: return "random";
  }
  return "?";
}

const char* case_name(Scenario s) {
  switch (s) {
    case Scenario::kLowConstant: return "Case 1";
    case Scenario::kHighConstant: return "Case 2";
    case Scenario::kPeriodicSpike: return "Case 3";
    case Scenario::kPeriodicSpikeFrequent: return "Case 4";
    case Scenario::kPulsing: return "Case 5";
    case Scenario::kRandom: return "Case 6";
  }
  return "?";
}

std::array<Scenario, 6> all_scenarios() {
  return {Scenario::kLowConstant,       Scenario::kHighConstant,
          Scenario::kPeriodicSpike,     Scenario::kPeriodicSpikeFrequent,
          Scenario::kPulsing,           Scenario::kRandom};
}

std::vector<int> generate(Scenario s, const ScenarioConfig& cfg) {
  if (cfg.slices <= 0 || cfg.low < 0 || cfg.high < cfg.low) {
    throw std::invalid_argument("ScenarioConfig: need slices > 0 and 0 <= low <= high");
  }
  std::vector<int> loads(static_cast<std::size_t>(cfg.slices), cfg.low);
  switch (s) {
    case Scenario::kLowConstant:
      break;  // all low
    case Scenario::kHighConstant:
      std::fill(loads.begin(), loads.end(), cfg.high);
      break;
    case Scenario::kPeriodicSpike:
      for (int i = 0; i < cfg.slices; i += cfg.spike_period) {
        loads[static_cast<std::size_t>(i)] = cfg.high;
      }
      break;
    case Scenario::kPeriodicSpikeFrequent:
      for (int i = 0; i < cfg.slices; i += cfg.spike_period_frequent) {
        loads[static_cast<std::size_t>(i)] = cfg.high;
      }
      break;
    case Scenario::kPulsing:
      for (int i = 0; i < cfg.slices; ++i) {
        const bool high_phase = (i / cfg.pulse_width) % 2 == 0;
        loads[static_cast<std::size_t>(i)] = high_phase ? cfg.high : cfg.low;
      }
      break;
    case Scenario::kRandom: {
      Rng rng{cfg.seed};
      for (auto& l : loads) {
        l = static_cast<int>(rng.next_in(cfg.low, cfg.high));
      }
      break;
    }
  }
  return loads;
}

std::string sparkline(const std::vector<int>& loads, int high) {
  static const char* kLevels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (const int l : loads) {
    const int idx = high == 0 ? 0 : (l * 7) / high;
    out += kLevels[idx < 0 ? 0 : (idx > 7 ? 7 : idx)];
  }
  return out;
}

}  // namespace hhpim::workload
