#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace hhpim::workload {

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kLowConstant: return "low-constant";
    case Scenario::kHighConstant: return "high-constant";
    case Scenario::kPeriodicSpike: return "periodic-spike";
    case Scenario::kPeriodicSpikeFrequent: return "periodic-spike-frequent";
    case Scenario::kPulsing: return "high-low-pulsing";
    case Scenario::kRandom: return "random";
    case Scenario::kRamp: return "ramp";
    case Scenario::kBurstDecay: return "burst-decay";
    case Scenario::kPoisson: return "poisson";
    case Scenario::kTrace: return "trace-replay";
  }
  return "?";
}

const char* case_name(Scenario s) {
  switch (s) {
    case Scenario::kLowConstant: return "Case 1";
    case Scenario::kHighConstant: return "Case 2";
    case Scenario::kPeriodicSpike: return "Case 3";
    case Scenario::kPeriodicSpikeFrequent: return "Case 4";
    case Scenario::kPulsing: return "Case 5";
    case Scenario::kRandom: return "Case 6";
    default: return to_string(s);
  }
}

std::optional<Scenario> from_string(std::string_view name) {
  for (const Scenario s : all_scenarios()) {
    if (name == to_string(s)) return s;
  }
  for (const Scenario s : extended_scenarios()) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

std::array<Scenario, 6> all_scenarios() {
  return {Scenario::kLowConstant,       Scenario::kHighConstant,
          Scenario::kPeriodicSpike,     Scenario::kPeriodicSpikeFrequent,
          Scenario::kPulsing,           Scenario::kRandom};
}

std::array<Scenario, 4> extended_scenarios() {
  return {Scenario::kRamp, Scenario::kBurstDecay, Scenario::kPoisson,
          Scenario::kTrace};
}

namespace {

/// One Poisson draw via Knuth's product-of-uniforms method; exact for the
/// small means used here (< ~30) and bit-stable given the Rng stream.
int poisson_draw(Rng& rng, double mean) {
  const double limit = std::exp(-mean);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

}  // namespace

std::vector<int> generate(Scenario s, const ScenarioConfig& cfg) {
  std::vector<int> loads;
  generate_into(s, cfg, loads);
  return loads;
}

void generate_into(Scenario s, const ScenarioConfig& cfg, std::vector<int>& out) {
  if (s == Scenario::kTrace) {
    // Replay: the trace defines both the counts and the run length.
    std::vector<int> loads = cfg.trace_path.empty() ? cfg.trace : load_trace(cfg.trace_path);
    if (loads.empty()) {
      throw std::invalid_argument("ScenarioConfig: kTrace needs trace_path or a non-empty trace");
    }
    for (const int l : loads) {
      if (l < 0) throw std::invalid_argument("trace replay: negative load");
    }
    out = std::move(loads);
    return;
  }
  if (cfg.slices <= 0 || cfg.low < 0 || cfg.high < cfg.low) {
    throw std::invalid_argument("ScenarioConfig: need slices > 0 and 0 <= low <= high");
  }
  std::vector<int>& loads = out;
  loads.assign(static_cast<std::size_t>(cfg.slices), cfg.low);
  switch (s) {
    case Scenario::kLowConstant:
      break;  // all low
    case Scenario::kHighConstant:
      std::fill(loads.begin(), loads.end(), cfg.high);
      break;
    case Scenario::kPeriodicSpike:
      for (int i = 0; i < cfg.slices; i += cfg.spike_period) {
        loads[static_cast<std::size_t>(i)] = cfg.high;
      }
      break;
    case Scenario::kPeriodicSpikeFrequent:
      for (int i = 0; i < cfg.slices; i += cfg.spike_period_frequent) {
        loads[static_cast<std::size_t>(i)] = cfg.high;
      }
      break;
    case Scenario::kPulsing:
      for (int i = 0; i < cfg.slices; ++i) {
        const bool high_phase = (i / cfg.pulse_width) % 2 == 0;
        loads[static_cast<std::size_t>(i)] = high_phase ? cfg.high : cfg.low;
      }
      break;
    case Scenario::kRandom: {
      Rng rng{cfg.seed};
      for (auto& l : loads) {
        l = static_cast<int>(rng.next_in(cfg.low, cfg.high));
      }
      break;
    }
    case Scenario::kRamp: {
      // Monotone non-decreasing climb from low to high across the run.
      const double span = static_cast<double>(cfg.high - cfg.low);
      const double steps = cfg.slices > 1 ? static_cast<double>(cfg.slices - 1) : 1.0;
      for (int i = 0; i < cfg.slices; ++i) {
        loads[static_cast<std::size_t>(i)] =
            cfg.low + static_cast<int>(std::llround(span * static_cast<double>(i) / steps));
      }
      break;
    }
    case Scenario::kBurstDecay: {
      if (cfg.burst_period <= 0 || cfg.burst_decay <= 0.0 || cfg.burst_decay > 1.0) {
        throw std::invalid_argument(
            "ScenarioConfig: kBurstDecay needs burst_period > 0 and burst_decay in (0, 1]");
      }
      const double span = static_cast<double>(cfg.high - cfg.low);
      for (int i = 0; i < cfg.slices; ++i) {
        const int phase = i % cfg.burst_period;
        const double amplitude = span * std::pow(cfg.burst_decay, static_cast<double>(phase));
        loads[static_cast<std::size_t>(i)] =
            cfg.low + static_cast<int>(std::llround(amplitude));
      }
      break;
    }
    case Scenario::kPoisson: {
      // Upper bound keeps exp(-mean) well away from underflow, where Knuth's
      // method degenerates; per-slice inference counts are far below this.
      if (cfg.poisson_mean <= 0.0 || cfg.poisson_mean > 500.0) {
        throw std::invalid_argument(
            "ScenarioConfig: kPoisson needs poisson_mean in (0, 500]");
      }
      Rng rng{cfg.seed};
      for (auto& l : loads) {
        l = std::min(cfg.high, poisson_draw(rng, cfg.poisson_mean));
      }
      break;
    }
    case Scenario::kTrace:
      break;  // handled above
  }
}

void save_trace(const std::string& path, const std::vector<int>& loads) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  out << "# hhpim load trace: one inference count per slice\n";
  for (const int l : loads) out << l << "\n";
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

std::vector<int> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::vector<int> loads;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(t, &used);
    } catch (const std::exception&) {
      throw std::runtime_error("load_trace: bad line '" + t + "' in " + path);
    }
    if (used != t.size() || v < 0) {
      throw std::runtime_error("load_trace: bad line '" + t + "' in " + path);
    }
    loads.push_back(v);
  }
  return loads;
}

std::string sparkline(const std::vector<int>& loads, int high) {
  static const char* kLevels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (const int l : loads) {
    const int idx = high == 0 ? 0 : (l * 7) / high;
    out += kLevels[idx < 0 ? 0 : (idx > 7 ? 7 : idx)];
  }
  return out;
}

}  // namespace hhpim::workload
