// The six workload scenarios of Fig. 4: per-time-slice inference counts that
// drive the dynamic data-placement experiments.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hhpim::workload {

enum class Scenario : std::uint8_t {
  kLowConstant = 0,           ///< Case 1
  kHighConstant,              ///< Case 2
  kPeriodicSpike,             ///< Case 3
  kPeriodicSpikeFrequent,     ///< Case 4
  kPulsing,                   ///< Case 5
  kRandom,                    ///< Case 6
};

[[nodiscard]] const char* to_string(Scenario s);
[[nodiscard]] const char* case_name(Scenario s);  ///< "Case 1" .. "Case 6"
[[nodiscard]] std::array<Scenario, 6> all_scenarios();

struct ScenarioConfig {
  int slices = 50;        ///< paper: 50 time slices per run
  int low = 2;            ///< inferences/slice at low load
  int high = 10;          ///< paper: up to 10 inferences per slice at peak
  int spike_period = 10;  ///< Case 3: one spike slice every `spike_period`
  int spike_period_frequent = 4;  ///< Case 4
  int pulse_width = 5;    ///< Case 5: alternate `pulse_width` high / low slices
  std::uint64_t seed = 0x5eed2025;  ///< Case 6 randomness
};

/// Per-slice inference counts for a scenario.
[[nodiscard]] std::vector<int> generate(Scenario s, const ScenarioConfig& cfg = {});

/// Renders a small ASCII sparkline of the load curve (for bench output).
[[nodiscard]] std::string sparkline(const std::vector<int>& loads, int high);

}  // namespace hhpim::workload
