// Per-time-slice inference-count generators: the six workload scenarios of
// Fig. 4 plus extended shapes (ramp, burst-decay, Poisson arrivals, trace
// replay) used by the experiment-runner grids and the fleet simulator.
//
// Everything here is a pure function of its arguments (randomized shapes
// draw from common/rng.hpp seeded by ScenarioConfig::seed, bit-identical
// across hosts and standard libraries) — safe to call concurrently, and the
// reason a load trace never needs to be stored: regenerating it from the
// config is exact. generate() is O(slices); file I/O helpers are O(lines).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hhpim::workload {

enum class Scenario : std::uint8_t {
  kLowConstant = 0,           ///< Case 1
  kHighConstant,              ///< Case 2
  kPeriodicSpike,             ///< Case 3
  kPeriodicSpikeFrequent,     ///< Case 4
  kPulsing,                   ///< Case 5
  kRandom,                    ///< Case 6
  // --- extended shapes (not in the paper's Fig. 4) -------------------------
  kRamp,                      ///< monotone low -> high over the run
  kBurstDecay,                ///< periodic bursts decaying geometrically
  kPoisson,                   ///< independent Poisson arrivals per slice
  kTrace,                     ///< replay an explicit per-slice trace
};

[[nodiscard]] const char* to_string(Scenario s);
[[nodiscard]] const char* case_name(Scenario s);  ///< "Case 1" .. "Case 6"; extended shapes get their name
/// Inverse of to_string over every scenario (paper + extended); nullopt for
/// an unknown name. The single name parser shared by the experiment-grid and
/// fleet CLIs — add new shapes here, not in per-binary copies.
[[nodiscard]] std::optional<Scenario> from_string(std::string_view name);
[[nodiscard]] std::array<Scenario, 6> all_scenarios();       ///< the paper's Fig. 4 set
[[nodiscard]] std::array<Scenario, 4> extended_scenarios();  ///< ramp, burst-decay, Poisson, trace

struct ScenarioConfig {
  int slices = 50;        ///< paper: 50 time slices per run
  int low = 2;            ///< inferences/slice at low load
  int high = 10;          ///< paper: up to 10 inferences per slice at peak
  int spike_period = 10;  ///< Case 3: one spike slice every `spike_period`
  int spike_period_frequent = 4;  ///< Case 4
  int pulse_width = 5;    ///< Case 5: alternate `pulse_width` high / low slices
  std::uint64_t seed = 0x5eed2025;  ///< Case 6 / Poisson randomness
  // --- extended-shape parameters -------------------------------------------
  int burst_period = 8;      ///< kBurstDecay: a fresh burst every `burst_period`
  double burst_decay = 0.5;  ///< kBurstDecay: geometric decay factor in (0, 1]
  double poisson_mean = 4.0; ///< kPoisson: mean arrivals per slice (clamped to high)
  std::string trace_path{};  ///< kTrace: file to replay (one count per line)
  std::vector<int> trace{};  ///< kTrace: inline trace (used when trace_path empty)
};

/// Per-slice inference counts for a scenario (all counts >= 0; randomized
/// shapes are capped at cfg.high). Preconditions, enforced with
/// std::invalid_argument: slices > 0 and 0 <= low <= high; kBurstDecay
/// needs burst_period > 0 and burst_decay in (0, 1]; kPoisson needs
/// poisson_mean in (0, 500]; kTrace needs trace_path or a non-empty trace
/// of non-negative counts (the trace also defines the run length —
/// cfg.slices is ignored for it).
[[nodiscard]] std::vector<int> generate(Scenario s, const ScenarioConfig& cfg = {});

/// generate() into a caller-owned buffer (resized to the trace length,
/// capacity reused): the fleet's shard workers regenerate one trace per
/// device, and reusing the buffer removes that per-device allocation.
/// Identical output to generate().
void generate_into(Scenario s, const ScenarioConfig& cfg, std::vector<int>& out);

/// Writes a load trace to `path` (one count per line, '#' comments allowed on
/// read). Throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<int>& loads);

/// Reads a load trace written by save_trace (or by hand). Blank lines and
/// '#'-prefixed comment lines are skipped. Throws on I/O or parse failure.
[[nodiscard]] std::vector<int> load_trace(const std::string& path);

/// Renders a small ASCII sparkline of the load curve (for bench output).
[[nodiscard]] std::string sparkline(const std::vector<int>& loads, int high);

}  // namespace hhpim::workload
