#include "mem/bank.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.hpp"

namespace hhpim::mem {

Bank::Bank(BankConfig config, energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      ledger_(ledger),
      id_(ledger != nullptr ? ledger->register_component(config_.name)
                            : energy::ComponentId{}),
      tracker_(ledger, id_, leakage_power()),
      storage_(config_.capacity_bytes, 0) {
  if (config_.word_bytes == 0 || config_.capacity_bytes % config_.word_bytes != 0) {
    throw std::invalid_argument("Bank: capacity must be a multiple of word size");
  }
}

Power Bank::leakage_power() const {
  const double scale = static_cast<double>(config_.capacity_bytes) /
                       static_cast<double>(config_.reference_capacity_bytes);
  return config_.power.leakage * scale;
}

void Bank::power_on(Time now) {
  if (tracker_.is_on() && active_bytes_ == config_.capacity_bytes) return;
  const bool was_off = !tracker_.is_on();
  tracker_.set_power(leakage_power(), now);
  tracker_.power_on(now);
  active_bytes_ = config_.capacity_bytes;
  // MRAM is non-volatile: data survives gating. SRAM comes up with garbage.
  if (was_off && config_.kind == energy::MemoryKind::kSram) data_valid_ = false;
}

void Bank::power_off(Time now) {
  if (!tracker_.is_on()) return;
  tracker_.power_off(now);
  active_bytes_ = 0;
  if (config_.kind == energy::MemoryKind::kSram) {
    data_valid_ = false;
    if (storage_dirty_) {
      std::fill(storage_.begin(), storage_.end(), 0);
      storage_dirty_ = false;
    }
  }
}

std::size_t Bank::subbank_count() const {
  const std::size_t g = config_.gate_granularity_bytes;
  return (config_.capacity_bytes + g - 1) / g;
}

void Bank::set_active_bytes(std::size_t bytes, Time now) {
  if (bytes == 0) {
    power_off(now);
    return;
  }
  const std::size_t g = config_.gate_granularity_bytes;
  const std::size_t powered = std::min(config_.capacity_bytes, ((bytes + g - 1) / g) * g);
  if (tracker_.is_on() && powered == active_bytes_) return;
  const double fraction =
      static_cast<double>(powered) / static_cast<double>(config_.capacity_bytes);
  tracker_.set_power(leakage_power() * fraction, now);
  tracker_.power_on(now);
  active_bytes_ = powered;
}

void Bank::check_range(std::size_t addr, std::size_t words) const {
  const std::size_t bytes = words * config_.word_bytes;
  if (addr % config_.word_bytes != 0) {
    throw std::out_of_range("Bank " + config_.name + ": unaligned address");
  }
  if (addr + bytes > config_.capacity_bytes || addr + bytes < addr) {
    throw std::out_of_range("Bank " + config_.name + ": access beyond capacity");
  }
}

AccessResult Bank::access(Time now, std::size_t words, bool is_write) {
  if (!tracker_.is_on()) {
    throw std::logic_error("Bank " + config_.name + ": access while power-gated");
  }
  const Time per_word = is_write ? config_.timing.write : config_.timing.read;
  const Time start = std::max(now, busy_until_);
  const Time complete = start + per_word * static_cast<std::int64_t>(words);
  busy_until_ = complete;

  const Power dyn = is_write ? config_.power.dyn_write : config_.power.dyn_read;
  const Energy e = dyn * (per_word * static_cast<std::int64_t>(words));
  if (ledger_ != nullptr) {
    ledger_->add(id_, is_write ? energy::Activity::kMemWrite : energy::Activity::kMemRead, e);
  }
  if (is_write) {
    writes_ += words;
  } else {
    reads_ += words;
  }
  return AccessResult{start, complete, e};
}

AccessResult Bank::read(Time now, std::size_t addr, std::size_t words, std::uint8_t* out) {
  check_range(addr, words);
  const AccessResult r = access(now, words, /*is_write=*/false);
  if (out != nullptr) {
    std::copy_n(storage_.begin() + static_cast<std::ptrdiff_t>(addr),
                words * config_.word_bytes, out);
  }
  return r;
}

AccessResult Bank::write(Time now, std::size_t addr, std::size_t words,
                         const std::uint8_t* data) {
  check_range(addr, words);
  const AccessResult r = access(now, words, /*is_write=*/true);
  if (data != nullptr) {
    std::copy_n(data, words * config_.word_bytes,
                storage_.begin() + static_cast<std::ptrdiff_t>(addr));
    storage_dirty_ = true;
  }
  data_valid_ = true;
  return r;
}

Energy Bank::charge_reads(std::uint64_t words) {
  const Energy e = config_.power.dyn_read *
                   (config_.timing.read * static_cast<std::int64_t>(words));
  if (ledger_ != nullptr) ledger_->add(id_, energy::Activity::kMemRead, e);
  reads_ += words;
  return e;
}

Energy Bank::charge_writes(std::uint64_t words) {
  const Energy e = config_.power.dyn_write *
                   (config_.timing.write * static_cast<std::int64_t>(words));
  if (ledger_ != nullptr) ledger_->add(id_, energy::Activity::kMemWrite, e);
  writes_ += words;
  return e;
}

std::uint8_t Bank::peek(std::size_t addr) const {
  if (addr >= config_.capacity_bytes) {
    throw std::out_of_range("Bank " + config_.name + ": peek beyond capacity");
  }
  return storage_[addr];
}

void Bank::poke(std::size_t addr, std::uint8_t value) {
  if (addr >= config_.capacity_bytes) {
    throw std::out_of_range("Bank " + config_.name + ": poke beyond capacity");
  }
  storage_[addr] = value;
  data_valid_ = true;
  storage_dirty_ = true;
}

void Bank::fast_forward(Time anchor_shift, Time extra_on, std::uint64_t extra_reads,
                        std::uint64_t extra_writes) {
  tracker_.fast_forward(anchor_shift, extra_on);
  reads_ += extra_reads;
  writes_ += extra_writes;
}

void Bank::reset_accounting() {
  tracker_.reset(leakage_power());
  active_bytes_ = 0;
  data_valid_ = false;
  busy_until_ = Time::zero();
  reads_ = 0;
  writes_ = 0;
  if (storage_dirty_) {
    std::fill(storage_.begin(), storage_.end(), 0);
    storage_dirty_ = false;
  }
}

void Bank::save_state(ByteWriter& w, Time now) const {
  const bool on = tracker_.is_on();
  w.u8(on ? 1 : 0);
  w.i64(on ? (tracker_.anchor() - now).as_ps() : std::int64_t{0});
  w.f64(tracker_.leakage().as_mw());
  w.u64(static_cast<std::uint64_t>(active_bytes_));
  w.u8(data_valid_ ? 1 : 0);
  w.u8(storage_dirty_ ? 1 : 0);
  w.i64(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
  if (storage_dirty_) {
    w.blob(std::string_view{reinterpret_cast<const char*>(storage_.data()),
                            storage_.size()});
  }
}

void Bank::load_state(ByteReader& r) {
  const bool on = r.u8() != 0;
  const Time anchor = Time::ps(r.i64());
  const Power leakage = Power::mw(r.f64());
  tracker_.restore(on, anchor, leakage);
  active_bytes_ = static_cast<std::size_t>(r.u64());
  data_valid_ = r.u8() != 0;
  storage_dirty_ = r.u8() != 0;
  busy_until_ = Time::ps(r.i64());
  if (storage_dirty_) {
    const std::string_view bytes = r.blob();
    if (bytes.size() != storage_.size()) {
      throw std::runtime_error("snapshot: storage size mismatch for bank " +
                               config_.name);
    }
    std::copy(bytes.begin(), bytes.end(),
              reinterpret_cast<char*>(storage_.data()));
  }
}

Energy Bank::dynamic_energy() const {
  if (ledger_ == nullptr) return Energy::zero();
  return ledger_->component_total(id_, energy::Activity::kMemRead) +
         ledger_->component_total(id_, energy::Activity::kMemWrite);
}

Bank make_sram(const energy::PowerSpec& spec, energy::ClusterKind cluster,
               std::string name, std::size_t capacity_bytes,
               energy::EnergyLedger* ledger) {
  const auto& m = spec.module(cluster);
  BankConfig c;
  c.name = std::move(name);
  c.kind = energy::MemoryKind::kSram;
  c.capacity_bytes = capacity_bytes;
  c.word_bytes = 1;  // PIM weight streams fetch one int8 weight per access
  c.timing = m.sram_timing;
  c.power = m.sram_power;
  return Bank{std::move(c), ledger};
}

Bank make_mram(const energy::PowerSpec& spec, energy::ClusterKind cluster,
               std::string name, std::size_t capacity_bytes,
               energy::EnergyLedger* ledger) {
  const auto& m = spec.module(cluster);
  BankConfig c;
  c.name = std::move(name);
  c.kind = energy::MemoryKind::kMram;
  c.capacity_bytes = capacity_bytes;
  c.word_bytes = 1;  // PIM weight streams fetch one int8 weight per access
  c.timing = m.mram_timing;
  c.power = m.mram_power;
  return Bank{std::move(c), ledger};
}

}  // namespace hhpim::mem
