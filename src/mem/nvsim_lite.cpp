#include "mem/nvsim_lite.hpp"

#include <cmath>
#include <stdexcept>

namespace hhpim::mem {

namespace {
constexpr double kVddHp = 1.2;
constexpr double kVddLp = 0.8;
}  // namespace

double NvsimLite::Law::operator()(double vdd, double vth) const {
  if (vdd <= vth) {
    throw std::invalid_argument("NvsimLite: vdd must exceed threshold voltage");
  }
  const double x = (vdd - vth) / (kVddHp - vth);
  const double x_lp = (kVddLp - vth) / (kVddHp - vth);
  // beta solves at_lp = at_hp * x_lp^beta.
  const double beta = std::log(at_lp / at_hp) / std::log(x_lp);
  return at_hp * std::pow(x, beta);
}

NvsimLite::NvsimLite() {
  // Anchors: Table III (ns) and Table V (mW), HP = 1.2 V, LP = 0.8 V.
  sram_ = {
      /*read_ns=*/{1.12, 1.41},
      /*write_ns=*/{1.12, 1.41},
      /*dyn_read_mw=*/{508.93, 177.30},
      /*dyn_write_mw=*/{500.00, 177.30},
      /*leak_mw=*/{23.29, 5.45},
  };
  mram_ = {
      /*read_ns=*/{2.62, 2.96},
      /*write_ns=*/{11.81, 14.65},
      /*dyn_read_mw=*/{428.48, 179.05},
      /*dyn_write_mw=*/{133.78, 47.78},
      /*leak_mw=*/{2.98, 0.84},
  };
  pe_ns_ = {5.52, 10.68};
  pe_dyn_mw_ = {0.90, 0.51};
  pe_leak_mw_ = {0.48, 0.25};
}

const NvsimLite::TechLaws& NvsimLite::laws(energy::MemoryKind k) const {
  return k == energy::MemoryKind::kSram ? sram_ : mram_;
}

NvsimResult NvsimLite::evaluate(const NvsimQuery& q) const {
  const TechLaws& l = laws(q.kind);
  const double tech = q.tech_nm / ref_tech_nm_;
  const double cap_delay =
      std::sqrt(static_cast<double>(q.capacity_bytes) / static_cast<double>(ref_capacity_));
  const double cap_leak =
      static_cast<double>(q.capacity_bytes) / static_cast<double>(ref_capacity_);

  NvsimResult r;
  r.timing.read = Time::ns(l.read_ns(q.vdd, vth_) * tech * cap_delay);
  r.timing.write = Time::ns(l.write_ns(q.vdd, vth_) * tech * cap_delay);
  r.power.dyn_read = Power::mw(l.dyn_read_mw(q.vdd, vth_) * tech);
  r.power.dyn_write = Power::mw(l.dyn_write_mw(q.vdd, vth_) * tech);
  r.power.leakage = Power::mw(l.leak_mw(q.vdd, vth_) * tech * cap_leak);
  return r;
}

energy::PeSpec NvsimLite::evaluate_pe(double vdd) const {
  energy::PeSpec pe;
  pe.mac_latency = Time::ns(pe_ns_(vdd, vth_));
  pe.dynamic = Power::mw(pe_dyn_mw_(vdd, vth_));
  pe.leakage = Power::mw(pe_leak_mw_(vdd, vth_));
  return pe;
}

energy::PowerSpec NvsimLite::make_spec(double vdd_hp, double vdd_lp,
                                       std::size_t capacity_bytes) const {
  energy::PowerSpec s;
  auto fill = [&](energy::ModuleSpec& m, double vdd) {
    m.vdd = vdd;
    const auto sram = evaluate({energy::MemoryKind::kSram, capacity_bytes, vdd, ref_tech_nm_});
    const auto mram = evaluate({energy::MemoryKind::kMram, capacity_bytes, vdd, ref_tech_nm_});
    m.sram_timing = sram.timing;
    m.sram_power = sram.power;
    m.mram_timing = mram.timing;
    m.mram_power = mram.power;
    m.pe = evaluate_pe(vdd);
  };
  fill(s.hp, vdd_hp);
  fill(s.lp, vdd_lp);
  return s;
}

}  // namespace hhpim::mem
