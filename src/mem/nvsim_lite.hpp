// NVSim-lite: a small analytical memory parameter model in the spirit of
// NVSim (Dong et al., TCAD 2012), which the paper uses to obtain Table III
// latencies and Table V powers at 45 nm.
//
// Calibration: every quantity (read/write delay, dynamic read/write power,
// leakage — per technology, plus the PE latency/power) is anchored at the
// paper's two measured supply points, 1.2 V (HP) and 0.8 V (LP). Between and
// around the anchors the model fits a per-quantity power law in the gate
// overdrive (Vdd - Vth):
//
//     q(Vdd) = q(1.2 V) * ((Vdd - Vth) / (1.2 - Vth))^beta_q
//
// where beta_q is solved from the two anchors, making Tables III and V exact
// at 1.2 V and 0.8 V by construction. Capacity scales delay with
// sqrt(capacity) (bitline/wordline RC) and leakage linearly; technology node
// scales delay and power linearly. Points away from the anchors are model
// extrapolations used by the design-space-exploration example.
#pragma once

#include "energy/power_spec.hpp"

namespace hhpim::mem {

struct NvsimQuery {
  energy::MemoryKind kind = energy::MemoryKind::kSram;
  std::size_t capacity_bytes = 64 * 1024;
  double vdd = 1.2;
  double tech_nm = 45.0;
};

struct NvsimResult {
  energy::MemoryTiming timing;
  energy::MemoryPower power;
};

class NvsimLite {
 public:
  /// Model calibrated against the paper's 45 nm tables.
  NvsimLite();

  [[nodiscard]] NvsimResult evaluate(const NvsimQuery& q) const;

  /// PE (MAC datapath) latency and power at a given supply voltage.
  [[nodiscard]] energy::PeSpec evaluate_pe(double vdd) const;

  /// Builds a full PowerSpec (both clusters) for arbitrary supply voltages.
  /// make_spec(1.2, 0.8) reproduces PowerSpec::paper_45nm() exactly.
  [[nodiscard]] energy::PowerSpec make_spec(double vdd_hp, double vdd_lp,
                                            std::size_t capacity_bytes = 64 * 1024) const;

 private:
  /// One physical quantity anchored at the two measured voltages.
  struct Law {
    double at_hp = 0.0;  // value at 1.2 V
    double at_lp = 0.0;  // value at 0.8 V
    /// Power-law interpolation/extrapolation in overdrive voltage.
    [[nodiscard]] double operator()(double vdd, double vth) const;
  };

  struct TechLaws {
    Law read_ns, write_ns, dyn_read_mw, dyn_write_mw, leak_mw;
  };

  [[nodiscard]] const TechLaws& laws(energy::MemoryKind k) const;

  TechLaws sram_;
  TechLaws mram_;
  Law pe_ns_, pe_dyn_mw_, pe_leak_mw_;
  double vth_ = 0.35;
  double ref_tech_nm_ = 45.0;
  std::size_t ref_capacity_ = 64 * 1024;
};

}  // namespace hhpim::mem
