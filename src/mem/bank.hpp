// Memory bank model.
//
// A Bank is one macro (e.g. the 64 kB SRAM of one PIM module). It is
// functional (stores real bytes, so the RISC-V core and functional PIM tests
// can run on it), timed (accesses occupy the bank for the spec'd latency and
// back-to-back accesses queue), and powered (dynamic energy per access,
// leakage per powered interval, power gating with technology-correct
// retention: MRAM keeps its contents across gating, SRAM loses them).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "energy/power_spec.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::mem {

/// Result of a timed access request.
struct AccessResult {
  Time start;      ///< When the access actually began (after queueing).
  Time complete;   ///< When the data is available / committed.
  Energy energy;   ///< Dynamic energy charged for the access.
};

struct BankConfig {
  std::string name = "bank";
  energy::MemoryKind kind = energy::MemoryKind::kSram;
  std::size_t capacity_bytes = 64 * 1024;
  std::size_t word_bytes = 4;  ///< One access moves one word.
  energy::MemoryTiming timing;
  energy::MemoryPower power;
  /// Leakage scales with capacity relative to the 64 kB reference macro.
  std::size_t reference_capacity_bytes = 64 * 1024;
  /// Power-gating granularity: the macro is built from sub-arrays of this
  /// size with independent sleep transistors; set_active_bytes() powers a
  /// whole number of them.
  std::size_t gate_granularity_bytes = 16 * 1024;
};

class Bank {
 public:
  /// `ledger` may be nullptr for purely functional use (no accounting).
  Bank(BankConfig config, energy::EnergyLedger* ledger);

  [[nodiscard]] const BankConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] std::size_t capacity() const { return config_.capacity_bytes; }
  /// Leakage power scaled to this bank's capacity.
  [[nodiscard]] Power leakage_power() const;

  // --- Power state ---------------------------------------------------------

  /// Powers the bank on at time `now`. SRAM contents are invalid until
  /// rewritten (data_valid() false); MRAM contents survive.
  void power_on(Time now);
  /// Gates the bank at `now`. SRAM loses its contents.
  void power_off(Time now);

  /// Sub-bank power gating: powers only enough gate-granularity sub-arrays
  /// to cover `bytes` (0 gates the whole macro). Leakage is charged
  /// proportionally to the powered fraction. Used for weight retention,
  /// where unused sub-arrays of a macro stay gated.
  void set_active_bytes(std::size_t bytes, Time now);
  [[nodiscard]] std::size_t active_bytes() const { return active_bytes_; }
  /// Number of gate-granularity sub-arrays this macro comprises.
  [[nodiscard]] std::size_t subbank_count() const;
  [[nodiscard]] bool is_on() const { return tracker_.is_on(); }
  /// Whether stored bytes are trustworthy (false for SRAM after a gate cycle
  /// until the first write, true for MRAM whenever powered history is sane).
  [[nodiscard]] bool data_valid() const { return data_valid_; }
  /// Closes the open leakage interval (end of simulation / checkpoint).
  void settle(Time now) { tracker_.settle(now); }
  [[nodiscard]] Time total_on_time() const { return tracker_.total_on_time(); }
  /// Leakage-interval anchor (see LeakageTracker::anchor).
  [[nodiscard]] Time leakage_anchor() const { return tracker_.anchor(); }

  // --- Timed accesses ------------------------------------------------------

  /// Reads `words` consecutive words starting at byte address `addr` into
  /// `out` (may be nullptr to model timing/energy only). The access begins at
  /// `now` or when the bank becomes free, whichever is later.
  AccessResult read(Time now, std::size_t addr, std::size_t words, std::uint8_t* out);

  /// Writes `words` consecutive words from `data` (nullptr allowed).
  AccessResult write(Time now, std::size_t addr, std::size_t words, const std::uint8_t* data);

  /// Time at which the bank becomes free for the next access.
  [[nodiscard]] Time busy_until() const { return busy_until_; }

  // --- Accounting-only accesses --------------------------------------------
  // Charge dynamic energy and counters for `words` accesses without touching
  // the bank timeline or storage. Used by the burst-granularity PIM module
  // model, which owns its own serialization timeline.

  Energy charge_reads(std::uint64_t words);
  Energy charge_writes(std::uint64_t words);

  // --- Steady-state fast path (batched execution / processor reuse) --------

  /// Advances the accounting state by `repeats` periods of a recorded
  /// steady-state interval: the leakage tracker's open anchor shifts by
  /// `anchor_shift` per period and `extra_on` / `extra_reads` /
  /// `extra_writes` are the per-period deltas. The caller replays the
  /// matching energy posts through EnergyLedger::replay; this keeps the
  /// bank's counters consistent with them. The access timeline
  /// (busy_until()) is not touched — burst-model callers own their own
  /// serialization.
  void fast_forward(Time anchor_shift, Time extra_on, std::uint64_t extra_reads,
                    std::uint64_t extra_writes);

  /// Returns power/accounting state to just-constructed: gated, zero
  /// counters and on-time, contents invalid (SRAM semantics) and zeroed if
  /// ever written. The owning processor resets the ledger separately.
  void reset_accounting();

  /// Folds the bank's behavior-relevant state into `h`, times translated
  /// relative to `now` (sys::Processor::state_digest contract: two banks
  /// with equal digests at a slice boundary behave identically for all
  /// future operations). Cumulative counters, on-time totals and the
  /// ledger are deliberately excluded — they record history, not behavior.
  /// Storage *contents* are represented only by the data_valid/dirty flags:
  /// the accounting-only burst path (charge_reads/charge_writes) never
  /// writes functional data, so dirty banks simply never share a digest.
  void add_state(Fnv1a& h, Time now) const {
    h.add(tracker_.is_on() ? 1 : 0)
        .add(static_cast<std::uint64_t>(active_bytes_))
        .add(data_valid_ ? 1 : 0)
        .add(storage_dirty_ ? 1 : 0)
        .add(tracker_.is_on() ? (tracker_.anchor() - now).as_ps()
                              : std::int64_t{0})
        .add(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
  }

  /// Checkpoint save of exactly the state add_state() digests — power
  /// state (including the tracker's exact leakage-power bits, which vary
  /// with set_active_bytes), residency gating, validity flags and the
  /// busy horizon relative to `now` — plus storage contents when dirty.
  /// load_state() is the inverse: call it on a reset_accounting() bank
  /// whose internal clock is at zero (times load as now = 0; the clamp in
  /// add_state makes that behaviorally exact at slice boundaries). Throws
  /// std::runtime_error on a storage-size mismatch.
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

  // --- Untimed (functional) accesses — used by the RISC-V bus --------------

  [[nodiscard]] std::uint8_t peek(std::size_t addr) const;
  void poke(std::size_t addr, std::uint8_t value);

  // --- Statistics ----------------------------------------------------------

  [[nodiscard]] std::uint64_t read_count() const { return reads_; }
  [[nodiscard]] std::uint64_t write_count() const { return writes_; }
  [[nodiscard]] Energy dynamic_energy() const;

 private:
  void check_range(std::size_t addr, std::size_t words) const;
  AccessResult access(Time now, std::size_t words, bool is_write);

  BankConfig config_;
  energy::EnergyLedger* ledger_;
  energy::ComponentId id_;
  energy::LeakageTracker tracker_;
  std::vector<std::uint8_t> storage_;
  std::size_t active_bytes_ = 0;
  bool data_valid_ = false;
  /// True once storage_ may differ from all-zero (set by write()/poke());
  /// lets power_off skip the SRAM-content wipe for accounting-only workloads
  /// that gate banks every burst without ever storing data.
  bool storage_dirty_ = false;
  Time busy_until_ = Time::zero();
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Convenience factories producing paper-spec banks for a given cluster.
[[nodiscard]] Bank make_sram(const energy::PowerSpec& spec, energy::ClusterKind cluster,
                             std::string name, std::size_t capacity_bytes,
                             energy::EnergyLedger* ledger);
[[nodiscard]] Bank make_mram(const energy::PowerSpec& spec, energy::ClusterKind cluster,
                             std::string name, std::size_t capacity_bytes,
                             energy::EnergyLedger* ledger);

}  // namespace hhpim::mem
