#include "placement/cost_model.hpp"

#include <algorithm>
#include <sstream>

namespace hhpim::placement {

const char* to_string(Space s) {
  switch (s) {
    case Space::kHpMram: return "HP-MRAM";
    case Space::kHpSram: return "HP-SRAM";
    case Space::kLpMram: return "LP-MRAM";
    case Space::kLpSram: return "LP-SRAM";
  }
  return "?";
}

energy::ClusterKind cluster_of(Space s) {
  return (s == Space::kHpMram || s == Space::kHpSram)
             ? energy::ClusterKind::kHighPerformance
             : energy::ClusterKind::kLowPower;
}

energy::MemoryKind memory_of(Space s) {
  return (s == Space::kHpMram || s == Space::kLpMram) ? energy::MemoryKind::kMram
                                                      : energy::MemoryKind::kSram;
}

std::array<Space, kSpaceCount> all_spaces() {
  return {Space::kHpMram, Space::kHpSram, Space::kLpMram, Space::kLpSram};
}

CostModel CostModel::build(const energy::PowerSpec& spec, const ClusterShape& hp,
                           const ClusterShape& lp, double uses_per_weight) {
  CostModel m;
  m.uses_per_weight = uses_per_weight;
  for (const Space s : all_spaces()) {
    const auto cluster = cluster_of(s);
    const auto mem = memory_of(s);
    const auto& mod = spec.module(cluster);
    const ClusterShape& shape = cluster == energy::ClusterKind::kHighPerformance ? hp : lp;
    const std::uint64_t per_module = mem == energy::MemoryKind::kMram
                                         ? shape.mram_weights_per_module
                                         : shape.sram_weights_per_module;
    SpaceCost c;
    c.capacity_weights = per_module * shape.modules;
    c.modules = shape.modules;
    if (c.capacity_weights == 0) {
      m.space[static_cast<std::size_t>(s)] = c;
      continue;
    }
    c.read_latency = mod.timing(mem).read;
    c.write_latency = mod.timing(mem).write;
    c.read_energy = mod.read_energy(mem);
    c.write_energy = mod.write_energy(mem);
    const Time per_mac = mod.timing(mem).read + mod.pe.mac_latency;
    c.time_per_weight =
        (per_mac * uses_per_weight) / static_cast<std::int64_t>(shape.modules);
    c.dyn_per_weight = (mod.read_energy(mem) + mod.pe.mac_energy()) * uses_per_weight;
    // Retention leakage: only SRAM pays it (MRAM is gated whenever idle; its
    // in-burst leakage is negligible and measured exactly by the simulator).
    c.leak_per_weight = mem == energy::MemoryKind::kSram
                            ? mod.power(mem).leakage * (1.0 / static_cast<double>(per_module))
                            : Power::zero();
    m.space[static_cast<std::size_t>(s)] = c;
  }
  return m;
}

std::uint64_t Allocation::total() const {
  std::uint64_t t = 0;
  for (const auto w : weights) t += w;
  return t;
}

std::string Allocation::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < kSpaceCount; ++i) {
    if (i != 0) out << ", ";
    out << hhpim::placement::to_string(static_cast<Space>(i)) << ": " << weights[i];
  }
  out << "}";
  return out.str();
}

Time cluster_time(const CostModel& m, const Allocation& a, energy::ClusterKind c) {
  Time t = Time::zero();
  for (const Space s : all_spaces()) {
    if (cluster_of(s) != c) continue;
    const auto& sc = m.at(s);
    t += Time::ps(static_cast<std::int64_t>(
        sc.time_per_weight.as_ps() * static_cast<std::int64_t>(a[s])));
  }
  return t;
}

Time task_time(const CostModel& m, const Allocation& a) {
  const Time hp = cluster_time(m, a, energy::ClusterKind::kHighPerformance);
  const Time lp = cluster_time(m, a, energy::ClusterKind::kLowPower);
  return hp > lp ? hp : lp;
}

Energy task_dynamic_energy(const CostModel& m, const Allocation& a) {
  Energy e = Energy::zero();
  for (const Space s : all_spaces()) {
    e += m.at(s).dyn_per_weight * static_cast<double>(a[s]);
  }
  return e;
}

Energy retention_energy(const CostModel& m, const Allocation& a, Time window) {
  Energy e = Energy::zero();
  for (const Space s : all_spaces()) {
    e += (m.at(s).leak_per_weight * static_cast<double>(a[s])) * window;
  }
  return e;
}

Energy retention_energy_quantized(const CostModel& m, const Allocation& a, Time window) {
  Energy e = Energy::zero();
  for (const Space s : all_spaces()) {
    const auto& sc = m.space[static_cast<std::size_t>(s)];
    if (sc.leak_per_weight == Power::zero() || a[s] == 0) continue;
    const std::uint64_t per_module =
        (a[s] + sc.modules - 1) / static_cast<std::uint64_t>(sc.modules);
    const std::uint64_t g = m.gate_granularity_weights;
    const std::uint64_t cap_per_module =
        sc.capacity_weights / static_cast<std::uint64_t>(sc.modules);
    const std::uint64_t powered =
        std::min(cap_per_module, ((per_module + g - 1) / g) * g);
    // Modules actually holding weights (the tail module may be empty).
    const std::uint64_t used_modules =
        std::min<std::uint64_t>(sc.modules, (a[s] + per_module - 1) / per_module);
    e += (sc.leak_per_weight * static_cast<double>(powered * used_modules)) * window;
  }
  return e;
}

Energy task_energy(const CostModel& m, const Allocation& a, Time window) {
  return task_dynamic_energy(m, a) + retention_energy(m, a, window);
}

bool fits(const CostModel& m, const Allocation& a) {
  for (const Space s : all_spaces()) {
    if (a[s] > m.at(s).capacity_weights) return false;
  }
  return true;
}

}  // namespace hhpim::placement
