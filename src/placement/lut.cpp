#include "placement/lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hhpim::placement {

namespace {

/// Quantized per-block DP item for one space at a given time constraint.
DpItem make_item(const SpaceCost& sc, std::uint64_t block_weights, Time t_step, Time tc) {
  DpItem item;
  if (sc.capacity_weights == 0) {
    item.time_steps = 1;
    item.cap_blocks = 0;
    return item;
  }
  const double block_time_ps =
      sc.time_per_weight.as_ps() * static_cast<double>(block_weights);
  item.time_steps =
      std::max(1, static_cast<int>(std::ceil(block_time_ps / static_cast<double>(t_step.as_ps()))));
  const Energy dyn = sc.dyn_per_weight * static_cast<double>(block_weights);
  const Energy retention = (sc.leak_per_weight * static_cast<double>(block_weights)) * tc;
  item.energy_pj = (dyn + retention).as_pj();
  item.cap_blocks = static_cast<int>(sc.capacity_weights / block_weights);
  return item;
}

/// Turns a combine split at budget `t` back into a weight allocation —
/// blocks scaled by the block size, with the rounding overshoot trimmed from
/// the largest shares (fewer weights can only reduce time and energy). The
/// legacy single-answer path and the frontier sweep share this so the
/// t' = internal_steps frontier candidate IS the legacy allocation.
Allocation reconstruct_alloc(const ClusterDpTable& hp, const ClusterDpTable& lp,
                             const CombineResult& comb, int t, std::uint64_t block,
                             std::uint64_t total_weights) {
  const auto [hp_mram, hp_sram] = hp.split(t, comb.k_hp);
  const auto [lp_mram, lp_sram] = lp.split(t, comb.k_lp);
  Allocation a;
  a[Space::kHpMram] = static_cast<std::uint64_t>(hp_mram) * block;
  a[Space::kHpSram] = static_cast<std::uint64_t>(hp_sram) * block;
  a[Space::kLpMram] = static_cast<std::uint64_t>(lp_mram) * block;
  a[Space::kLpSram] = static_cast<std::uint64_t>(lp_sram) * block;
  std::uint64_t excess = a.total() - total_weights;
  while (excess > 0) {
    Space largest = Space::kHpMram;
    for (const Space sp : all_spaces()) {
      if (a[sp] > a[largest]) largest = sp;
    }
    const std::uint64_t cut = std::min(excess, a[largest]);
    a[largest] -= cut;
    excess -= cut;
  }
  return a;
}

/// The frontier sweep: re-combine the entry's cluster tables at a
/// deterministic grid of tighter budgets t' in [min feasible, internal_steps]
/// — each yields the min-(linearized-)energy placement at that latency, one
/// trade-off candidate per budget. The anchor (the legacy allocation, from
/// t' = internal_steps) is kept unconditionally; other candidates survive
/// only with strictly higher re-evaluated energy, so after dominance pruning
/// the frontier's min-energy point is the legacy answer bit-exactly.
std::vector<ParetoPoint> build_frontier(const CostModel& model, const ClusterDpTable& hp,
                                        const ClusterDpTable& lp, int k_total,
                                        int internal_steps, std::uint64_t block,
                                        std::uint64_t total_weights, Time tc,
                                        const ParetoPoint& anchor) {
  // Feasibility is monotone in the budget, so the tightest feasible t' is a
  // binary search over O(k_total)-cost combines.
  int lo = 1;
  int hi = internal_steps;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (combine_clusters(hp, lp, k_total, mid).feasible) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const int t_min = lo;

  constexpr int kFrontierSamples = 16;
  std::vector<ParetoPoint> candidates;
  candidates.reserve(kFrontierSamples + 1);
  candidates.push_back(anchor);
  int prev_t = internal_steps;  // the anchor's budget — skip resampling it
  for (int i = 0; i < kFrontierSamples; ++i) {
    const int t = t_min + static_cast<int>(
        static_cast<std::int64_t>(internal_steps - t_min) * i / (kFrontierSamples - 1));
    if (t == prev_t) continue;
    prev_t = t;
    const CombineResult comb = combine_clusters(hp, lp, k_total, t);
    if (!comb.feasible) continue;
    const Allocation a = reconstruct_alloc(hp, lp, comb, t, block, total_weights);
    const ParetoPoint p = evaluate_point(model, a, tc);
    // The DP optimizes linearized energy; the quantized re-evaluation can
    // rank a tighter-budget placement at or below the anchor. Those are
    // dropped (unless they are the anchor's own allocation) to preserve the
    // anchor-is-min-energy invariant the scheduler and tests rely on.
    if (p.energy <= anchor.energy && !(a == anchor.alloc)) continue;
    candidates.push_back(p);
  }
  prune_to_frontier(candidates);
  return candidates;
}

}  // namespace

AllocationLut AllocationLut::build(const CostModel& model, const LutParams& params) {
  if (params.slice <= Time::zero() || params.total_weights == 0 ||
      params.t_entries <= 0 || params.k_blocks <= 0) {
    throw std::invalid_argument("AllocationLut: bad parameters");
  }

  AllocationLut lut;
  lut.params_ = params;

  const std::uint64_t block =
      (params.total_weights + static_cast<std::uint64_t>(params.k_blocks) - 1) /
      static_cast<std::uint64_t>(params.k_blocks);
  const int k_total = static_cast<int>(
      (params.total_weights + block - 1) / block);
  const Time t_step = Time::ps(params.slice.as_ps() / params.t_entries);
  if (t_step <= Time::zero()) {
    throw std::invalid_argument("AllocationLut: slice too short for t_entries");
  }

  // Internal DP time resolution: fine enough that per-block ceil rounding
  // stays below ~1/kStepsPerBlock of the constraint even if every block
  // lands in one cluster.
  constexpr int kStepsPerBlock = 16;
  const int internal_steps = k_total * kStepsPerBlock;

  lut.entries_.reserve(static_cast<std::size_t>(params.t_entries));
  for (int s = 1; s <= params.t_entries; ++s) {
    const Time tc = Time::ps(t_step.as_ps() * s);
    const Time t_int = Time::ps(std::max<std::int64_t>(1, tc.as_ps() / internal_steps));

    const ClusterItems hp_items = {
        make_item(model.at(Space::kHpMram), block, t_int, tc),
        make_item(model.at(Space::kHpSram), block, t_int, tc),
    };
    const ClusterItems lp_items = {
        make_item(model.at(Space::kLpMram), block, t_int, tc),
        make_item(model.at(Space::kLpSram), block, t_int, tc),
    };

    // Early infeasibility cutoff: the DP's feasibility frontier per cluster
    // is known in O(K) (time-minimal schedules), so entries left of the peak
    // boundary — the paper's grey "Not Possible" region — are rejected
    // without paying for the O(T*K) tables. Exact: the combine step is
    // feasible iff some split k_hp + k_lp = K has both halves inside their
    // cluster's frontier, i.e. iff the frontiers sum to at least K.
    const int k_max_hp = max_feasible_blocks(hp_items, internal_steps, k_total);
    const int k_max_lp = max_feasible_blocks(lp_items, internal_steps, k_total);
    if (k_max_hp + k_max_lp < k_total) {
      LutEntry entry;
      entry.t_constraint = tc;
      lut.entries_.push_back(entry);
      continue;
    }

    // Algorithm 1, once per cluster, with this entry's time constraint as
    // the end of the quantized time axis.
    const auto hp = ClusterDpTable::build(hp_items, internal_steps, k_total);
    const auto lp = ClusterDpTable::build(lp_items, internal_steps, k_total);
    // Algorithm 2.
    const CombineResult comb = combine_clusters(hp, lp, k_total, internal_steps);

    LutEntry entry;
    entry.t_constraint = tc;
    entry.feasible = comb.feasible;
    if (comb.feasible) {
      const Allocation a =
          reconstruct_alloc(hp, lp, comb, internal_steps, block, params.total_weights);
      entry.alloc = a;
      // Prediction uses the gating-quantized retention (what the hardware
      // pays); the DP itself optimizes the linearized form per Algorithm 1.
      ParetoPoint anchor = evaluate_point(model, a, tc);
      entry.predicted_task_energy = anchor.energy;
      // The trade-off surface rides along on the already-built DP tables
      // (~the cost of a few extra O(K) combines per entry).
      entry.frontier = build_frontier(model, hp, lp, k_total, internal_steps, block,
                                      params.total_weights, tc, anchor);
    }
    lut.entries_.push_back(entry);
  }
  return lut;
}

const LutEntry& AllocationLut::lookup(Time tc) const {
  // Entries are at t_step, 2*t_step, ...; take the largest entry <= tc.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), tc,
      [](Time value, const LutEntry& e) { return value < e.t_constraint; });
  if (it == entries_.begin()) return entries_.front();
  return *(it - 1);
}

const LutEntry* AllocationLut::lookup_or_peak(Time tc) const {
  const LutEntry& floor_entry = lookup(tc);
  if (floor_entry.feasible) return &floor_entry;
  for (const auto& e : entries_) {
    if (e.feasible) return &e;
  }
  return nullptr;
}

Time AllocationLut::peak_t_constraint() const {
  for (const auto& e : entries_) {
    if (e.feasible) return e.t_constraint;
  }
  return Time::max();
}

ResolutionChoice pick_resolution(Time slice, double budget_fraction, double cells_per_us,
                                 int max_resolution) {
  // Construction cost: sum over entries s of  2 clusters * 2 spaces * s * K
  // cells  ~  2 * R^2 * K  with K = R  =>  2 * R^3 cells.
  const double budget_us = slice.as_us() * budget_fraction;
  int r = 8;
  ResolutionChoice best{r, r, 0.0};
  while (r <= max_resolution) {
    const double cells = 2.0 * std::pow(static_cast<double>(r), 3);
    const double us = cells / cells_per_us;
    if (us > budget_us) break;
    best = {r, r, us};
    r *= 2;
  }
  return best;
}

}  // namespace hhpim::placement
