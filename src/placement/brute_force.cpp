#include "placement/brute_force.hpp"

namespace hhpim::placement {

BruteForceResult brute_force_placement(const CostModel& model, std::uint64_t total_weights,
                                       Time tc, std::uint64_t granularity) {
  BruteForceResult best;
  const std::uint64_t g = granularity == 0 ? 1 : granularity;
  const std::uint64_t units = (total_weights + g - 1) / g;

  // x0..x3 in units of g; x3 is implied.
  for (std::uint64_t x0 = 0; x0 <= units; ++x0) {
    for (std::uint64_t x1 = 0; x0 + x1 <= units; ++x1) {
      for (std::uint64_t x2 = 0; x0 + x1 + x2 <= units; ++x2) {
        const std::uint64_t x3 = units - x0 - x1 - x2;
        Allocation a;
        a[Space::kHpMram] = x0 * g;
        a[Space::kHpSram] = x1 * g;
        a[Space::kLpMram] = x2 * g;
        a[Space::kLpSram] = x3 * g;
        // Trim the final unit so the total is exactly `total_weights`.
        std::uint64_t excess = a.total() - total_weights;
        for (const Space s : all_spaces()) {
          if (excess == 0) break;
          const std::uint64_t cut = a[s] < excess ? a[s] : excess;
          a[s] -= cut;
          excess -= cut;
        }
        if (!fits(model, a)) continue;
        if (task_time(model, a) > tc) continue;
        const Energy e = task_energy(model, a, tc);
        if (!best.feasible || e < best.energy) {
          best.feasible = true;
          best.alloc = a;
          best.energy = e;
        }
      }
    }
  }
  return best;
}

}  // namespace hhpim::placement
