// Process-wide, thread-safe cache of placement LUTs.
//
// Building an AllocationLut is the expensive part of constructing an HH-PIM
// sys::Processor (Algorithms 1 & 2 per entry; tens of millions of DP cells
// at the default 128x128 resolution). Experiment grids construct one
// Processor per run, so a grid of N cells over M distinct (model, arch,
// cost, resolution) combinations would build the same LUT N/M times. The
// LutCache deduplicates that: LUTs are immutable after build, so all runs
// that agree on every build input share one instance by shared_ptr.
//
// Keying: a LUT is fully determined by (CostModel, LutParams) — the cache
// key digests every field of both. On top of that, callers fold in a model
// *topology* hash and an architecture-config hash (computed at the hhpim
// layer, where nn::Model and sys::ArchConfig are visible). Those extra
// fields are deliberately conservative: two models with equal weight totals
// but different layer structure hash differently and never share an entry,
// even though today's LUT build would coincide — correctness of sharing is
// keyed on inputs, not on derived quantities.
//
// Concurrency (see docs/PERF.md "Parallel scaling"): the cache is
// read-mostly — a fleet of a million devices resolves to a handful of warm
// entries — so the hit path must not serialize. Completed builds live in an
// immutable snapshot map published through an atomic pointer: a hit is one
// acquire load + a hash lookup, no lock, no reference-count ping-pong on a
// shared control word. Mutation (first build of a key, clear) copies the
// snapshot under a mutex and publishes the successor with a release store;
// superseded snapshots are retired, not freed, until the cache dies, so a
// reader holding yesterday's snapshot is always safe. The promise/
// shared_future build dedup survives unchanged on the miss path: the first
// requester builds outside the lock, concurrent requesters for the same key
// block on the future instead of duplicating the build. A build failure is
// rethrown to every waiter and the slot is removed so a later call can
// retry.
//
// Lifetime/ownership (see docs/ARCHITECTURE.md "Placement-LUT cache"):
// entries are shared_ptr<const AllocationLut>; the cache retains them until
// clear(), and consumers (DynamicLutPolicy) co-own them, so clear() never
// invalidates a running Processor.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "placement/lut.hpp"

namespace hhpim::placement {

/// Digest of every field of a CostModel (per-space times/energies/leakage/
/// capacities/module counts, uses_per_weight, gate granularity). Two cost
/// models with equal digests produce identical LUTs for identical LutParams.
[[nodiscard]] std::uint64_t cost_model_hash(const CostModel& m);

/// Value-semantic cache key. Equality compares every field, so two keys
/// collide only if all digests and all quantization parameters agree.
struct LutCacheKey {
  std::uint64_t topology_hash = 0;   ///< nn::Model::topology_hash() (0 if N/A)
  std::uint64_t arch_hash = 0;       ///< sys::ArchConfig::config_hash() (0 if N/A)
  std::uint64_t cost_hash = 0;       ///< cost_model_hash(model)
  std::int64_t slice_ps = 0;         ///< LutParams::slice
  std::uint64_t total_weights = 0;   ///< LutParams::total_weights
  int t_entries = 0;                 ///< t_constraint quantization
  int k_blocks = 0;                  ///< block quantization

  [[nodiscard]] bool operator==(const LutCacheKey&) const = default;

  /// Assembles a key from the LUT build inputs plus the caller's
  /// topology/arch digests.
  [[nodiscard]] static LutCacheKey make(std::uint64_t topology_hash,
                                        std::uint64_t arch_hash,
                                        const CostModel& model,
                                        const LutParams& params);

  struct Hash {
    [[nodiscard]] std::size_t operator()(const LutCacheKey& k) const;
  };
};

/// Thread-safe memo of built LUTs. One instance is process-wide
/// (process_cache()); tests and benchmarks construct private instances.
class LutCache {
 public:
  struct Stats {
    /// get_or_build calls served a completed LUT: snapshot fast-path hits
    /// plus waiters whose joined build succeeded. A waiter is counted only
    /// once its future resolves — joining an in-flight build that then
    /// fails is a failed_join, never a hit.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        ///< get_or_build calls that started a build
    std::uint64_t failed_joins = 0;  ///< waiters whose joined build threw
    std::size_t entries = 0;         ///< live slots (completed + in flight)
    std::size_t in_flight = 0;       ///< builds currently running
  };

  LutCache() = default;
  LutCache(const LutCache&) = delete;
  LutCache& operator=(const LutCache&) = delete;
  ~LutCache();

  /// Returns the LUT for `key`, building it from (model, params) on first
  /// use. Warm keys are served lock-free. Blocks while another thread
  /// builds the same key. Throws whatever AllocationLut::build throws (all
  /// waiters see the exception; the failed slot is evicted). Precondition:
  /// (model, params) must be the inputs the key was made from — the cache
  /// trusts the key.
  [[nodiscard]] std::shared_ptr<const AllocationLut> get_or_build(
      const LutCacheKey& key, const CostModel& model, const LutParams& params);

  /// True if a slot exists for `key` (built or in flight).
  [[nodiscard]] bool contains(const LutCacheKey& key) const;

  /// Drops all slots and resets counters. In-flight builds complete
  /// normally for their waiters but are not published; consumers keep
  /// their shared_ptrs alive independently. Note: the superseded snapshot
  /// is retired, not freed — a lock-free reader may still be inside it —
  /// so a cleared entry's LUT is released only when the cache itself is
  /// destroyed (memory stays proportional to builds actually performed).
  void clear();

  [[nodiscard]] Stats stats() const;

  /// The process-wide instance shared by default across exp::Runner grids.
  [[nodiscard]] static LutCache& process_cache();

 private:
  /// Immutable map of completed builds. Never mutated after publication —
  /// mutation copies it and publishes the copy.
  using ReadyMap = std::unordered_map<LutCacheKey, std::shared_ptr<const AllocationLut>,
                                      LutCacheKey::Hash>;
  using Future = std::shared_future<std::shared_ptr<const AllocationLut>>;
  /// `gen` disambiguates in-flight slots under the same key across
  /// clear()/eviction: a failed builder evicts only the slot it inserted,
  /// never a successor's.
  struct Slot {
    Future future;
    std::uint64_t gen = 0;
  };

  /// Publishes `next` as the current snapshot (mu_ held). The superseded
  /// snapshot is retired — kept alive until destruction so concurrent
  /// lock-free readers can finish with it.
  void publish_locked(std::unique_ptr<const ReadyMap> next);

  /// Current snapshot of completed builds; readers load-acquire and never
  /// lock. Owned by retired_ (every snapshot ever published lives there).
  std::atomic<const ReadyMap*> ready_{nullptr};
  std::vector<std::unique_ptr<const ReadyMap>> retired_;

  mutable std::mutex mu_;  ///< guards pending_, retired_, snapshot swaps
  std::unordered_map<LutCacheKey, Slot, LutCacheKey::Hash> pending_;
  std::uint64_t next_gen_ = 0;

  // Counter increments race only with each other; relaxed is enough.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> failed_joins_{0};
};

}  // namespace hhpim::placement
