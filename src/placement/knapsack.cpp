#include "placement/knapsack.hpp"

#include <stdexcept>

namespace hhpim::placement {

ClusterDpTable ClusterDpTable::build(const ClusterItems& items, int t_steps, int k_blocks) {
  if (t_steps < 0 || k_blocks < 0) {
    throw std::invalid_argument("ClusterDpTable: negative dimensions");
  }
  for (const auto& it : items) {
    if (it.time_steps <= 0) {
      throw std::invalid_argument("ClusterDpTable: block time must be >= 1 step");
    }
  }

  ClusterDpTable table;
  table.t_steps_ = t_steps;
  table.k_blocks_ = k_blocks;
  const std::size_t cells =
      static_cast<std::size_t>(t_steps + 1) * static_cast<std::size_t>(k_blocks + 1);

  auto at = [&](std::vector<double>& v, int t, int k) -> double& {
    return v[static_cast<std::size_t>(t) * static_cast<std::size_t>(k_blocks + 1) +
             static_cast<std::size_t>(k)];
  };
  auto atc = [&](std::vector<std::uint16_t>& v, int t, int k) -> std::uint16_t& {
    return v[static_cast<std::size_t>(t) * static_cast<std::size_t>(k_blocks + 1) +
             static_cast<std::size_t>(k)];
  };

  // Rolling the space dimension: `prev` is dp[i-1], `cur` is dp[i].
  // Base case (i = 0, no spaces yet): only k = 0 is feasible, at zero energy
  // (paper lines 2-3). cnt[i] is the paper's count[][][]: the number of
  // blocks the optimal path placed into space i; it traces the allocation
  // and enforces the per-space capacity.
  std::vector<double> prev(cells, kInfEnergy);
  std::vector<double> cur;
  std::vector<std::uint16_t> cnt(cells, 0);
  for (int t = 0; t <= t_steps; ++t) at(prev, t, 0) = 0.0;

  for (int i = 0; i < 2; ++i) {  // n/2 spaces per cluster (paper line 4)
    const DpItem& item = items[static_cast<std::size_t>(i)];
    cur.assign(cells, kInfEnergy);
    std::fill(cnt.begin(), cnt.end(), 0);
    for (int t = 0; t <= t_steps; ++t) at(cur, t, 0) = 0.0;

    for (int k = 1; k <= k_blocks; ++k) {    // paper line 5
      for (int t = 0; t <= t_steps; ++t) {   // paper line 6
        // Option A: carry from the previous space level (paper line 12);
        // that path placed nothing in space i.
        double best = at(prev, t, k);
        std::uint16_t best_cnt = 0;
        // Option B: one more block into space i (paper line 9), if the block
        // fits the remaining time and the space has capacity left.
        if (item.time_steps <= t) {
          const double from = at(cur, t - item.time_steps, k - 1);
          if (from < kInfEnergy) {
            const std::uint16_t used = atc(cnt, t - item.time_steps, k - 1);
            if (static_cast<int>(used) < item.cap_blocks) {
              const double e = from + item.energy_pj;
              if (e < best) {
                best = e;
                best_cnt = static_cast<std::uint16_t>(used + 1);
              }
            }
          }
        }
        at(cur, t, k) = best;
        atc(cnt, t, k) = best_cnt;   // paper lines 10 / 13
      }
    }
    if (i == 0) prev.swap(cur);
  }

  // After the final level, cnt holds the SRAM (space 1) block count of the
  // optimal path; MRAM gets the remainder.
  table.dp_ = std::move(cur);
  table.cnt_ = std::move(cnt);
  return table;
}

std::pair<int, int> ClusterDpTable::split(int t, int k) const {
  const int sram = cnt_[index(t, k)];
  return {k - sram, sram};
}

CombineResult combine_clusters(const ClusterDpTable& hp, const ClusterDpTable& lp,
                               int k_total, int t) {
  CombineResult best;
  for (int k_hp = 0; k_hp <= k_total; ++k_hp) {
    const int k_lp = k_total - k_hp;
    if (k_hp > hp.k_blocks() || k_lp > lp.k_blocks()) continue;
    const double e_hp = hp.energy(t, k_hp);
    const double e_lp = lp.energy(t, k_lp);
    if (e_hp >= kInfEnergy || e_lp >= kInfEnergy) continue;  // paper line 6
    const double e = e_hp + e_lp;
    if (e < best.energy_pj) {  // paper lines 7-10
      best.feasible = true;
      best.energy_pj = e;
      best.k_hp = k_hp;
      best.k_lp = k_lp;
    }
  }
  return best;
}

}  // namespace hhpim::placement
