#include "placement/knapsack.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhpim::placement {

namespace {

void validate_items(const ClusterItems& items, int t_steps, int k_blocks) {
  if (t_steps < 0 || k_blocks < 0) {
    throw std::invalid_argument("ClusterDpTable: negative dimensions");
  }
  for (const auto& it : items) {
    if (it.time_steps <= 0) {
      throw std::invalid_argument("ClusterDpTable: block time must be >= 1 step");
    }
  }
}

/// Minimum steps to process exactly k blocks (fill the faster space first,
/// respecting capacities); -1 when k exceeds the combined capacity. Exactly
/// the DP's feasibility frontier: dp[t][k] < inf iff min_steps(k) <= t.
std::int64_t min_steps_for(const ClusterItems& items, int k) {
  const int fast = items[0].time_steps <= items[1].time_steps ? 0 : 1;
  const int slow = 1 - fast;
  const auto& f = items[static_cast<std::size_t>(fast)];
  const auto& s = items[static_cast<std::size_t>(slow)];
  const int in_fast = std::min(k, f.cap_blocks);
  const int in_slow = k - in_fast;
  if (in_slow > s.cap_blocks) return -1;
  return static_cast<std::int64_t>(in_fast) * f.time_steps +
         static_cast<std::int64_t>(in_slow) * s.time_steps;
}

}  // namespace

int max_feasible_blocks(const ClusterItems& items, int t_steps, int k_max) {
  validate_items(items, t_steps, k_max);
  // min_steps_for is nondecreasing in k, so walk up until the budget breaks.
  int k = 0;
  while (k < k_max) {
    const std::int64_t need = min_steps_for(items, k + 1);
    if (need < 0 || need > t_steps) break;
    ++k;
  }
  return k;
}

ClusterDpTable ClusterDpTable::build(const ClusterItems& items, int t_steps, int k_blocks) {
  validate_items(items, t_steps, k_blocks);

  ClusterDpTable table;
  table.t_steps_ = t_steps;
  table.k_blocks_ = k_blocks;
  const std::size_t stride = static_cast<std::size_t>(k_blocks + 1);
  const std::size_t cells = static_cast<std::size_t>(t_steps + 1) * stride;

  // Algorithm 1 over the two spaces of one cluster, with the MRAM level
  // (space 0) collapsed to its closed form: placing k blocks using MRAM only
  // costs k·e_mram and takes k·dt_mram steps (feasible iff k <= cap_mram).
  // Only the SRAM level (space 1) runs as a DP, written directly into the
  // final table — no per-level scratch buffers, one allocation per array.
  //
  //   dp[t][k] = min( mram_only(t, k),                       // paper line 12
  //                   dp[t - dt_sram][k - 1] + e_sram )      // paper line 9
  //
  // cnt[t][k] is the paper's count[][][]: blocks the optimal path placed in
  // SRAM; it traces the allocation and enforces the SRAM capacity. The MRAM
  // prefix energies are accumulated iteratively (e0sum[k] = e0sum[k-1] + e)
  // so results stay bit-identical to a literal per-level DP.
  table.dp_.assign(cells, kInfEnergy);
  table.cnt_.assign(cells, 0);
  for (int t = 0; t <= t_steps; ++t) table.dp_[static_cast<std::size_t>(t) * stride] = 0.0;
  if (k_blocks == 0) return table;

  const DpItem& mram = items[0];
  const DpItem& sram = items[1];

  // Early-infeasibility bounds: cells with k > cap_mram + cap_sram, or with
  // t < min_steps(k), are infeasible for every placement and are never
  // visited (their infinity initialization is their exact value).
  const int k_cap = std::min<std::int64_t>(
      k_blocks,
      static_cast<std::int64_t>(mram.cap_blocks) + sram.cap_blocks);
  std::vector<std::int64_t> min_steps(static_cast<std::size_t>(k_cap) + 1, 0);
  for (int k = 1; k <= k_cap; ++k) {
    min_steps[static_cast<std::size_t>(k)] = min_steps_for(items, k);
  }

  // MRAM-only prefix energies, iteratively accumulated.
  std::vector<double> mram_energy(static_cast<std::size_t>(std::min(k_cap, mram.cap_blocks)) + 1,
                                  0.0);
  for (std::size_t k = 1; k < mram_energy.size(); ++k) {
    mram_energy[k] = mram_energy[k - 1] + mram.energy_pj;
  }

  double* dp = table.dp_.data();
  std::uint16_t* cnt = table.cnt_.data();
  const int dt = sram.time_steps;
  // t outer / k inner: dp[t][*] and dp[t - dt][*] are contiguous rows, so the
  // inner loop streams through memory instead of striding by k.
  int k_ub = 0;  // largest k with min_steps(k) <= t; nondecreasing in t
  for (int t = 0; t <= t_steps; ++t) {
    while (k_ub < k_cap && min_steps[static_cast<std::size_t>(k_ub) + 1] <= t) ++k_ub;
    double* row = dp + static_cast<std::size_t>(t) * stride;
    std::uint16_t* crow = cnt + static_cast<std::size_t>(t) * stride;
    const double* prev_row =
        t >= dt ? dp + static_cast<std::size_t>(t - dt) * stride : nullptr;
    const std::uint16_t* prev_crow =
        t >= dt ? cnt + static_cast<std::size_t>(t - dt) * stride : nullptr;
    const std::int64_t mram_budget = static_cast<std::int64_t>(t) / mram.time_steps;
    for (int k = 1; k <= k_ub; ++k) {
      // Option A: all remaining blocks stayed in MRAM (the closed-form level).
      double best = kInfEnergy;
      std::uint16_t best_cnt = 0;
      if (k <= mram.cap_blocks && k <= mram_budget) {
        best = mram_energy[static_cast<std::size_t>(k)];
      }
      // Option B: one more block into SRAM, if it fits time and capacity.
      if (prev_row != nullptr) {
        const double from = prev_row[k - 1];
        if (from < kInfEnergy) {
          const std::uint16_t used = prev_crow[k - 1];
          if (static_cast<int>(used) < sram.cap_blocks) {
            const double e = from + sram.energy_pj;
            if (e < best) {
              best = e;
              best_cnt = static_cast<std::uint16_t>(used + 1);
            }
          }
        }
      }
      row[k] = best;
      crow[k] = best_cnt;
    }
  }
  return table;
}

std::pair<int, int> ClusterDpTable::split(int t, int k) const {
  const int sram = cnt_[index(t, k)];
  return {k - sram, sram};
}

CombineResult combine_clusters(const ClusterDpTable& hp, const ClusterDpTable& lp,
                               int k_total, int t) {
  CombineResult best;
  for (int k_hp = 0; k_hp <= k_total; ++k_hp) {
    const int k_lp = k_total - k_hp;
    if (k_hp > hp.k_blocks() || k_lp > lp.k_blocks()) continue;
    const double e_hp = hp.energy(t, k_hp);
    const double e_lp = lp.energy(t, k_lp);
    if (e_hp >= kInfEnergy || e_lp >= kInfEnergy) continue;  // paper line 6
    const double e = e_hp + e_lp;
    if (e < best.energy_pj) {  // paper lines 7-10
      best.feasible = true;
      best.energy_pj = e;
      best.k_hp = k_hp;
      best.k_lp = k_lp;
    }
  }
  return best;
}

}  // namespace hhpim::placement
