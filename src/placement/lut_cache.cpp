#include "placement/lut_cache.hpp"

#include <exception>
#include <utility>

namespace hhpim::placement {

std::uint64_t cost_model_hash(const CostModel& m) {
  Fnv1a h;
  for (const SpaceCost& c : m.space) {
    h.add(c.time_per_weight.as_ps())
        .add(c.dyn_per_weight.as_pj())
        .add(c.leak_per_weight.as_mw())
        .add(static_cast<std::uint64_t>(c.capacity_weights))
        .add(c.read_latency.as_ps())
        .add(c.write_latency.as_ps())
        .add(c.read_energy.as_pj())
        .add(c.write_energy.as_pj())
        .add(static_cast<std::uint64_t>(c.modules));
  }
  h.add(m.uses_per_weight).add(static_cast<std::uint64_t>(m.gate_granularity_weights));
  return h.digest();
}

LutCacheKey LutCacheKey::make(std::uint64_t topology_hash, std::uint64_t arch_hash,
                              const CostModel& model, const LutParams& params) {
  LutCacheKey k;
  k.topology_hash = topology_hash;
  k.arch_hash = arch_hash;
  k.cost_hash = cost_model_hash(model);
  k.slice_ps = params.slice.as_ps();
  k.total_weights = params.total_weights;
  k.t_entries = params.t_entries;
  k.k_blocks = params.k_blocks;
  return k;
}

std::size_t LutCacheKey::Hash::operator()(const LutCacheKey& k) const {
  Fnv1a h;
  h.add(k.topology_hash)
      .add(k.arch_hash)
      .add(k.cost_hash)
      .add(k.slice_ps)
      .add(k.total_weights)
      .add(k.t_entries)
      .add(k.k_blocks);
  return static_cast<std::size_t>(h.digest());
}

LutCache::~LutCache() = default;

void LutCache::publish_locked(std::unique_ptr<const ReadyMap> next) {
  ready_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
}

std::shared_ptr<const AllocationLut> LutCache::get_or_build(const LutCacheKey& key,
                                                            const CostModel& model,
                                                            const LutParams& params) {
  // Fast path: the steady state — every warm key resolves here with one
  // acquire load and a lookup in an immutable map. No lock, no shared
  // writes beyond one relaxed counter.
  if (const ReadyMap* ready = ready_.load(std::memory_order_acquire);
      ready != nullptr) {
    if (const auto it = ready->find(key); it != ready->end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Miss path: dedup through pending_ under the mutex, exactly as before.
  std::promise<std::shared_ptr<const AllocationLut>> promise;
  Future future;
  std::uint64_t my_gen = 0;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    // Re-check the snapshot: a builder may have published between our
    // lock-free probe and acquiring mu_.
    if (const ReadyMap* ready = ready_.load(std::memory_order_relaxed);
        ready != nullptr) {
      if (const auto it = ready->find(key); it != ready->end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    const auto it = pending_.find(key);
    if (it != pending_.end()) {
      future = it->second.future;  // join the in-flight build; counted below
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      builder = true;
      my_gen = ++next_gen_;
      future = promise.get_future().share();
      pending_.emplace(key, Slot{future, my_gen});
    }
  }

  if (builder) {
    std::shared_ptr<const AllocationLut> lut;
    try {
      lut = std::make_shared<const AllocationLut>(AllocationLut::build(model, params));
    } catch (...) {
      {
        // Evict only our own slot: a concurrent clear() may already have
        // dropped it and a successor may have inserted a healthy build
        // under the same key.
        const std::lock_guard<std::mutex> lock{mu_};
        const auto it = pending_.find(key);
        if (it != pending_.end() && it->second.gen == my_gen) pending_.erase(it);
      }
      promise.set_exception(std::current_exception());
      throw;  // the builder's own call failed; its miss stays a miss
    }
    {
      const std::lock_guard<std::mutex> lock{mu_};
      const auto it = pending_.find(key);
      if (it != pending_.end() && it->second.gen == my_gen) {
        pending_.erase(it);
        // Copy-on-write publish: successors hit the new snapshot lock-free.
        const ReadyMap* cur = ready_.load(std::memory_order_relaxed);
        auto next = cur != nullptr ? std::make_unique<ReadyMap>(*cur)
                                   : std::make_unique<ReadyMap>();
        (*next)[key] = lut;
        publish_locked(std::move(next));
      }
      // gen mismatch: clear() ran mid-build — waiters still get the value,
      // but the slot was dropped, so the build is not published.
    }
    promise.set_value(lut);
    return lut;
  }

  // Waiter: the join is classified by the build's outcome, not counted as a
  // hit up front — a failed build must not inflate hits_.
  try {
    std::shared_ptr<const AllocationLut> lut = future.get();
    hits_.fetch_add(1, std::memory_order_relaxed);
    return lut;
  } catch (...) {
    failed_joins_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

bool LutCache::contains(const LutCacheKey& key) const {
  if (const ReadyMap* ready = ready_.load(std::memory_order_acquire);
      ready != nullptr && ready->contains(key)) {
    return true;
  }
  const std::lock_guard<std::mutex> lock{mu_};
  return pending_.contains(key);
}

void LutCache::clear() {
  const std::lock_guard<std::mutex> lock{mu_};
  if (ready_.load(std::memory_order_relaxed) != nullptr) {
    publish_locked(std::make_unique<ReadyMap>());
  }
  pending_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  failed_joins_.store(0, std::memory_order_relaxed);
}

LutCache::Stats LutCache::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  const ReadyMap* ready = ready_.load(std::memory_order_relaxed);
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.failed_joins = failed_joins_.load(std::memory_order_relaxed);
  s.in_flight = pending_.size();
  s.entries = (ready != nullptr ? ready->size() : 0) + pending_.size();
  return s;
}

LutCache& LutCache::process_cache() {
  static LutCache cache;
  return cache;
}

}  // namespace hhpim::placement
