#include "placement/lut_cache.hpp"

#include <exception>
#include <utility>

namespace hhpim::placement {

std::uint64_t cost_model_hash(const CostModel& m) {
  Fnv1a h;
  for (const SpaceCost& c : m.space) {
    h.add(c.time_per_weight.as_ps())
        .add(c.dyn_per_weight.as_pj())
        .add(c.leak_per_weight.as_mw())
        .add(static_cast<std::uint64_t>(c.capacity_weights))
        .add(c.read_latency.as_ps())
        .add(c.write_latency.as_ps())
        .add(c.read_energy.as_pj())
        .add(c.write_energy.as_pj())
        .add(static_cast<std::uint64_t>(c.modules));
  }
  h.add(m.uses_per_weight).add(static_cast<std::uint64_t>(m.gate_granularity_weights));
  return h.digest();
}

LutCacheKey LutCacheKey::make(std::uint64_t topology_hash, std::uint64_t arch_hash,
                              const CostModel& model, const LutParams& params) {
  LutCacheKey k;
  k.topology_hash = topology_hash;
  k.arch_hash = arch_hash;
  k.cost_hash = cost_model_hash(model);
  k.slice_ps = params.slice.as_ps();
  k.total_weights = params.total_weights;
  k.t_entries = params.t_entries;
  k.k_blocks = params.k_blocks;
  return k;
}

std::size_t LutCacheKey::Hash::operator()(const LutCacheKey& k) const {
  Fnv1a h;
  h.add(k.topology_hash)
      .add(k.arch_hash)
      .add(k.cost_hash)
      .add(k.slice_ps)
      .add(k.total_weights)
      .add(k.t_entries)
      .add(k.k_blocks);
  return static_cast<std::size_t>(h.digest());
}

std::shared_ptr<const AllocationLut> LutCache::get_or_build(const LutCacheKey& key,
                                                            const CostModel& model,
                                                            const LutParams& params) {
  std::promise<std::shared_ptr<const AllocationLut>> promise;
  Future future;
  std::uint64_t my_gen = 0;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    const auto it = slots_.find(key);
    if (it != slots_.end()) {
      ++hits_;
      future = it->second.future;
    } else {
      ++misses_;
      builder = true;
      my_gen = ++next_gen_;
      future = promise.get_future().share();
      slots_.emplace(key, Slot{future, my_gen});
    }
  }
  if (builder) {
    try {
      promise.set_value(
          std::make_shared<const AllocationLut>(AllocationLut::build(model, params)));
    } catch (...) {
      {
        // Evict only our own slot: a concurrent clear() may already have
        // dropped it and a successor may have inserted a healthy build under
        // the same key.
        const std::lock_guard<std::mutex> lock{mu_};
        const auto it = slots_.find(key);
        if (it != slots_.end() && it->second.gen == my_gen) slots_.erase(it);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows the build error for builder and waiters alike
}

bool LutCache::contains(const LutCacheKey& key) const {
  const std::lock_guard<std::mutex> lock{mu_};
  return slots_.contains(key);
}

void LutCache::clear() {
  const std::lock_guard<std::mutex> lock{mu_};
  slots_.clear();
  hits_ = 0;
  misses_ = 0;
}

LutCache::Stats LutCache::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return Stats{hits_, misses_, slots_.size()};
}

LutCache& LutCache::process_cache() {
  static LutCache cache;
  return cache;
}

}  // namespace hhpim::placement
