#include "placement/pareto.hpp"

#include <algorithm>

namespace hhpim::placement {

namespace {

/// Deterministic total order: latency, energy, SRAM pressure, then the raw
/// allocation arrays (distinct allocs can tie on all three objectives).
bool point_less(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.latency != b.latency) return a.latency < b.latency;
  if (a.energy != b.energy) return a.energy < b.energy;
  if (a.sram_weights != b.sram_weights) return a.sram_weights < b.sram_weights;
  return a.alloc.weights < b.alloc.weights;
}

}  // namespace

ParetoPoint evaluate_point(const CostModel& model, const Allocation& a, Time window) {
  ParetoPoint p;
  p.alloc = a;
  p.energy = task_dynamic_energy(model, a) + retention_energy_quantized(model, a, window);
  p.latency = task_time(model, a);
  p.sram_weights = a[Space::kHpSram] + a[Space::kLpSram];
  return p;
}

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.energy > b.energy || a.latency > b.latency || a.sram_weights > b.sram_weights) {
    return false;
  }
  return a.energy < b.energy || a.latency < b.latency || a.sram_weights < b.sram_weights;
}

void prune_to_frontier(std::vector<ParetoPoint>& points) {
  std::sort(points.begin(), points.end(), point_less);
  std::vector<ParetoPoint> kept;
  kept.reserve(points.size());
  for (const ParetoPoint& p : points) {
    // Objective-tied duplicates collapse to the sort-first representative.
    if (!kept.empty() && kept.back().energy == p.energy &&
        kept.back().latency == p.latency && kept.back().sram_weights == p.sram_weights) {
      continue;
    }
    const bool dominated = std::any_of(points.begin(), points.end(),
                                       [&](const ParetoPoint& q) { return dominates(q, p); });
    if (!dominated) kept.push_back(p);
  }
  points = std::move(kept);
}

const ParetoPoint& min_latency_point(const std::vector<ParetoPoint>& frontier) {
  return *std::min_element(frontier.begin(), frontier.end(), point_less);
}

const ParetoPoint& min_energy_point(const std::vector<ParetoPoint>& frontier) {
  return *std::min_element(frontier.begin(), frontier.end(),
                           [](const ParetoPoint& a, const ParetoPoint& b) {
                             if (a.energy != b.energy) return a.energy < b.energy;
                             return point_less(a, b);
                           });
}

const ParetoPoint* best_within_slo(const std::vector<ParetoPoint>& frontier, Time slo) {
  const ParetoPoint* best = nullptr;
  for (const ParetoPoint& p : frontier) {
    if (p.latency > slo) continue;
    if (best == nullptr || p.energy < best->energy ||
        (p.energy == best->energy && point_less(p, *best))) {
      best = &p;
    }
  }
  return best;
}

}  // namespace hhpim::placement
