// Cost model for the four weight-storage spaces of HH-PIM:
// HP-MRAM, HP-SRAM, LP-MRAM, LP-SRAM (paper §III-A).
//
// Per stored weight and per task (one inference):
//   * time   t_i = uses_per_weight * (t_read(i) + t_pe(cluster)) / modules
//     — every MAC streams its weight through the LOAD+EXECUTE pipeline, and
//     the modules of a cluster run in parallel;
//   * dynamic energy e_i = uses_per_weight * (E_read(i) + E_mac(cluster));
//   * retention leakage (SRAM only): holding the weight costs
//     P_leak / capacity per unit wall time — SRAM cannot be power-gated
//     without losing the weights, whereas MRAM is gated whenever idle.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "energy/power_spec.hpp"

namespace hhpim::placement {

/// Storage spaces. Within each cluster the order is MRAM then SRAM, which is
/// also the per-cluster order used by the knapsack DP (Algorithm 1 runs over
/// n/2 = 2 spaces per cluster).
enum class Space : std::uint8_t { kHpMram = 0, kHpSram = 1, kLpMram = 2, kLpSram = 3 };
inline constexpr std::size_t kSpaceCount = 4;

[[nodiscard]] const char* to_string(Space s);
[[nodiscard]] energy::ClusterKind cluster_of(Space s);
[[nodiscard]] energy::MemoryKind memory_of(Space s);
[[nodiscard]] std::array<Space, kSpaceCount> all_spaces();

/// Per-space costs, all expressed per *weight*.
struct SpaceCost {
  Time time_per_weight;      ///< cluster-parallel task time contribution
  Energy dyn_per_weight;     ///< dynamic energy per task
  Power leak_per_weight;     ///< retention leakage while held (0 for MRAM)
  std::uint64_t capacity_weights = 0;

  // Raw access characteristics used by the movement planner.
  Time read_latency;         ///< one weight read (not divided by modules)
  Time write_latency;        ///< one weight write
  Energy read_energy;        ///< dynamic energy of one weight read
  Energy write_energy;       ///< dynamic energy of one weight write
  std::size_t modules = 1;   ///< modules this space spans (parallel lanes)
};

/// Shape of one cluster as seen by the optimizer.
struct ClusterShape {
  std::size_t modules = 4;
  std::uint64_t mram_weights_per_module = 64 * 1024;  ///< 0 = no MRAM
  std::uint64_t sram_weights_per_module = 64 * 1024;
};

struct CostModel {
  std::array<SpaceCost, kSpaceCount> space;
  double uses_per_weight = 1.0;
  /// SRAM power-gating granularity in weights (= bytes for int8); retention
  /// is paid per powered sub-array, not per weight (mem::BankConfig).
  std::uint64_t gate_granularity_weights = 16 * 1024;

  [[nodiscard]] const SpaceCost& at(Space s) const {
    return space[static_cast<std::size_t>(s)];
  }

  /// Builds the model from the hardware spec. `uses_per_weight` is the
  /// average number of MACs each stored weight serves per inference
  /// (pim_macs / params). Spaces with zero capacity (e.g. missing MRAM) get
  /// capacity 0 and are never selected.
  [[nodiscard]] static CostModel build(const energy::PowerSpec& spec,
                                       const ClusterShape& hp, const ClusterShape& lp,
                                       double uses_per_weight);
};

/// A placement: weights assigned to each space.
struct Allocation {
  std::array<std::uint64_t, kSpaceCount> weights{};

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t& operator[](Space s) {
    return weights[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t operator[](Space s) const {
    return weights[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool operator==(const Allocation&) const = default;

  [[nodiscard]] std::string to_string() const;
};

// Free evaluators over (CostModel, Allocation). All are pure, O(kSpaceCount)
// per call, and assume `a.total() > 0` weights were placed consistently with
// `m` (they do not check capacities — call fits() for that). Times are
// integer picoseconds, energies picojoules, `window` a wall-clock span.

/// Task time of an allocation: clusters run in parallel, spaces within a
/// cluster serialize (paper §III-B).
[[nodiscard]] Time task_time(const CostModel& m, const Allocation& a);
/// Per-cluster serialized time.
[[nodiscard]] Time cluster_time(const CostModel& m, const Allocation& a,
                                energy::ClusterKind c);
/// Dynamic energy of one task under an allocation.
[[nodiscard]] Energy task_dynamic_energy(const CostModel& m, const Allocation& a);
/// Retention leakage charged to one task whose wall-clock share is `window`,
/// linearized per weight (the knapsack's view).
[[nodiscard]] Energy retention_energy(const CostModel& m, const Allocation& a, Time window);
/// Retention leakage with sub-array gating quantization: weights spread
/// evenly over a space's modules, each module powering whole
/// gate-granularity sub-arrays (matches the simulator's Bank model).
/// Precondition: gate_granularity_weights > 0.
[[nodiscard]] Energy retention_energy_quantized(const CostModel& m, const Allocation& a,
                                                Time window);
/// Total task energy (dynamic + linearized retention over `window`).
[[nodiscard]] Energy task_energy(const CostModel& m, const Allocation& a, Time window);
/// Capacity check: true iff every space holds at most its capacity.
[[nodiscard]] bool fits(const CostModel& m, const Allocation& a);

}  // namespace hhpim::placement
