// Algorithm 1 (KNAPSACK_MIN_ENERGY) and Algorithm 2 (SET_ALLOCATION_STATE).
//
// The placement problem is a hybrid unbounded / multi-choice knapsack
// (paper §III-A): choose how many weight blocks x_i go to each storage space
// to minimize energy, subject to Σ t_i·x_i <= t_constraint and Σ x_i = k.
// Because the two clusters execute in parallel while MRAM/SRAM inside a
// cluster serialize, Algorithm 1 builds one DP table per cluster (over its
// n/2 = 2 spaces) and Algorithm 2 combines the two tables, minimizing
// dp_hp[t][k_hp] + dp_lp[t][K - k_hp] over k_hp.
//
// Work is done in *blocks* of weights and *steps* of time (the paper's
// resolution limiting, §III-B); conversions live in lut.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace hhpim::placement {

/// One storage space as seen by the DP, costs per block.
struct DpItem {
  int time_steps = 1;        ///< quantized processing time of one block
  double energy_pj = 0.0;    ///< energy of one block (incl. amortized leakage)
  int cap_blocks = 0;        ///< capacity of the space in blocks
};

/// Per-cluster spaces in paper order: [0] = MRAM, [1] = SRAM.
using ClusterItems = std::array<DpItem, 2>;

inline constexpr double kInfEnergy = std::numeric_limits<double>::infinity();

/// The DP table of one cluster: dp[t][k] = minimum energy to place exactly k
/// blocks in this cluster within t time steps (infinity if infeasible).
class ClusterDpTable {
 public:
  /// Algorithm 1. O(n/2 * t_steps * k_blocks).
  static ClusterDpTable build(const ClusterItems& items, int t_steps, int k_blocks);

  [[nodiscard]] double energy(int t, int k) const { return dp_[index(t, k)]; }
  [[nodiscard]] bool feasible(int t, int k) const { return energy(t, k) < kInfEnergy; }

  /// Blocks placed in (MRAM, SRAM) on the optimal path for (t, k).
  [[nodiscard]] std::pair<int, int> split(int t, int k) const;

  [[nodiscard]] int t_steps() const { return t_steps_; }
  [[nodiscard]] int k_blocks() const { return k_blocks_; }

 private:
  [[nodiscard]] std::size_t index(int t, int k) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(k_blocks_ + 1) +
           static_cast<std::size_t>(k);
  }
  int t_steps_ = 0;
  int k_blocks_ = 0;
  std::vector<double> dp_;          // (t_steps+1) x (k_blocks+1)
  std::vector<std::uint16_t> cnt_;  // blocks in SRAM (space index 1) on best path
};

/// Result of Algorithm 2 at one time constraint.
struct CombineResult {
  bool feasible = false;
  int k_hp = 0;          ///< blocks assigned to the HP cluster
  int k_lp = 0;
  double energy_pj = kInfEnergy;
};

/// Algorithm 2 inner loop: optimal (k_hp, k_lp) for `k_total` blocks within
/// `t` steps. O(k_total).
[[nodiscard]] CombineResult combine_clusters(const ClusterDpTable& hp,
                                             const ClusterDpTable& lp,
                                             int k_total, int t);

}  // namespace hhpim::placement
