// Algorithm 1 (KNAPSACK_MIN_ENERGY) and Algorithm 2 (SET_ALLOCATION_STATE).
//
// The placement problem is a hybrid unbounded / multi-choice knapsack
// (paper §III-A): choose how many weight blocks x_i go to each storage space
// to minimize energy, subject to Σ t_i·x_i <= t_constraint and Σ x_i = k.
// Because the two clusters execute in parallel while MRAM/SRAM inside a
// cluster serialize, Algorithm 1 builds one DP table per cluster (over its
// n/2 = 2 spaces) and Algorithm 2 combines the two tables, minimizing
// dp_hp[t][k_hp] + dp_lp[t][K - k_hp] over k_hp.
//
// Work is done in *blocks* of weights and *steps* of time (the paper's
// resolution limiting, §III-B); conversions live in lut.cpp. Throughout this
// header: time is in integer DP steps (1 step = the caller's quantum, see
// AllocationLut), energy in picojoules, capacities in blocks.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace hhpim::placement {

/// One storage space as seen by the DP, costs per block.
///
/// Units: `time_steps` is the ceil-quantized processing time of one block in
/// DP steps (precondition: >= 1); `energy_pj` the per-block energy in pJ,
/// including the task's amortized share of retention leakage (see lut.cpp);
/// `cap_blocks` the space capacity in blocks (0 = space absent, never used).
struct DpItem {
  int time_steps = 1;        ///< quantized processing time of one block
  double energy_pj = 0.0;    ///< energy of one block (incl. amortized leakage)
  int cap_blocks = 0;        ///< capacity of the space in blocks
};

/// Per-cluster spaces in paper order: [0] = MRAM, [1] = SRAM.
using ClusterItems = std::array<DpItem, 2>;

inline constexpr double kInfEnergy = std::numeric_limits<double>::infinity();

/// The largest block count k <= `k_max` this cluster can process within
/// `t_steps` (its time-minimal schedule fills the faster space first, capped
/// by capacity). This is exactly the DP's feasibility frontier: for any k,
/// ClusterDpTable::feasible(t_steps, k) iff k <= max_feasible_blocks(...).
/// The LUT builder uses it to reject infeasible t_constraint entries in O(K)
/// before paying for the O(T*K) table. Preconditions: t_steps, k_max >= 0 and
/// every item's time_steps >= 1.
[[nodiscard]] int max_feasible_blocks(const ClusterItems& items, int t_steps, int k_max);

/// The DP table of one cluster: dp[t][k] = minimum energy to place exactly k
/// blocks in this cluster within t time steps (infinity if infeasible).
///
/// build() is Algorithm 1 specialized to the n/2 = 2 spaces of one cluster:
/// the MRAM-only level has the closed form dp_0[t][k] = k·e_mram (feasible
/// iff k <= cap_mram and k·dt_mram <= t), so only the SRAM level runs as an
/// actual DP — computed in place, in one allocation per table, visiting only
/// cells above the per-k feasibility bound t >= min_steps(k). Worst case
/// O(t_steps * k_blocks) cells; the pruning skips the provably-infeasible
/// triangle (cells below the bound keep their infinity initialization, which
/// is exactly their value). Preconditions: t_steps, k_blocks >= 0; every
/// item's time_steps >= 1 (throws std::invalid_argument otherwise);
/// k_blocks < 65536 (block counts trace through uint16 counters).
class ClusterDpTable {
 public:
  /// Algorithm 1. O(t_steps * k_blocks) worst case, pruned as above.
  static ClusterDpTable build(const ClusterItems& items, int t_steps, int k_blocks);

  /// Minimum energy (pJ) to place exactly `k` blocks within `t` steps;
  /// kInfEnergy when infeasible. Precondition: 0 <= t <= t_steps(),
  /// 0 <= k <= k_blocks().
  [[nodiscard]] double energy(int t, int k) const { return dp_[index(t, k)]; }
  [[nodiscard]] bool feasible(int t, int k) const { return energy(t, k) < kInfEnergy; }

  /// Blocks placed in (MRAM, SRAM) on the optimal path for (t, k).
  /// Meaningful only when feasible(t, k); returns (k, 0) otherwise.
  [[nodiscard]] std::pair<int, int> split(int t, int k) const;

  [[nodiscard]] int t_steps() const { return t_steps_; }
  [[nodiscard]] int k_blocks() const { return k_blocks_; }

 private:
  [[nodiscard]] std::size_t index(int t, int k) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(k_blocks_ + 1) +
           static_cast<std::size_t>(k);
  }
  int t_steps_ = 0;
  int k_blocks_ = 0;
  std::vector<double> dp_;          // (t_steps+1) x (k_blocks+1)
  std::vector<std::uint16_t> cnt_;  // blocks in SRAM (space index 1) on best path
};

/// Result of Algorithm 2 at one time constraint.
struct CombineResult {
  bool feasible = false;
  int k_hp = 0;          ///< blocks assigned to the HP cluster
  int k_lp = 0;
  double energy_pj = kInfEnergy;
};

/// Algorithm 2 inner loop: optimal (k_hp, k_lp) for `k_total` blocks within
/// `t` steps. O(k_total). Preconditions: `t` within both tables' t_steps();
/// `k_total` >= 0 (splits beyond a table's k_blocks() are skipped).
[[nodiscard]] CombineResult combine_clusters(const ClusterDpTable& hp,
                                             const ClusterDpTable& lp,
                                             int k_total, int t);

}  // namespace hhpim::placement
