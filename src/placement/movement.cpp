#include "placement/movement.hpp"

#include <algorithm>

namespace hhpim::placement {

std::uint64_t MovementPlan::total() const {
  std::uint64_t t = 0;
  for (const auto& row : moved) {
    for (const auto v : row) t += v;
  }
  return t;
}

MovementPlan plan_movement(const Allocation& from, const Allocation& to) {
  std::array<std::int64_t, kSpaceCount> delta{};
  for (std::size_t i = 0; i < kSpaceCount; ++i) {
    delta[i] = static_cast<std::int64_t>(to.weights[i]) -
               static_cast<std::int64_t>(from.weights[i]);
  }

  MovementPlan plan;
  auto transfer = [&](std::size_t src, std::size_t dst) {
    if (delta[src] >= 0 || delta[dst] <= 0) return;
    const std::uint64_t amount = static_cast<std::uint64_t>(
        std::min(-delta[src], delta[dst]));
    plan.moved[src][dst] += amount;
    delta[src] += static_cast<std::int64_t>(amount);
    delta[dst] -= static_cast<std::int64_t>(amount);
  };

  // Pass 1: intra-cluster moves (HP-MRAM <-> HP-SRAM, LP-MRAM <-> LP-SRAM).
  transfer(static_cast<std::size_t>(Space::kHpMram), static_cast<std::size_t>(Space::kHpSram));
  transfer(static_cast<std::size_t>(Space::kHpSram), static_cast<std::size_t>(Space::kHpMram));
  transfer(static_cast<std::size_t>(Space::kLpMram), static_cast<std::size_t>(Space::kLpSram));
  transfer(static_cast<std::size_t>(Space::kLpSram), static_cast<std::size_t>(Space::kLpMram));
  // Pass 2: whatever remains crosses clusters.
  for (std::size_t src = 0; src < kSpaceCount; ++src) {
    for (std::size_t dst = 0; dst < kSpaceCount; ++dst) {
      if (src != dst) transfer(src, dst);
    }
  }
  return plan;
}

MovementCost estimate_movement(const CostModel& model, const MovementPlan& plan,
                               const MovementParams& params) {
  MovementCost cost;
  Time longest = Time::zero();
  for (std::size_t src = 0; src < kSpaceCount; ++src) {
    for (std::size_t dst = 0; dst < kSpaceCount; ++dst) {
      const std::uint64_t w = plan.moved[src][dst];
      if (w == 0) continue;
      const auto& s = model.space[src];
      const auto& d = model.space[dst];
      const std::size_t lanes = std::max<std::size_t>(1, std::min(s.modules, d.modules));
      const double per_lane = static_cast<double>(w) / static_cast<double>(lanes);
      // Pipelined stages: source reads, interface transfer, destination
      // writes — the slowest stage dominates.
      const double read_ns = s.read_latency.as_ns() * per_lane;
      const double write_ns = d.write_latency.as_ns() * per_lane;
      const bool cross = cluster_of(static_cast<Space>(src)) !=
                         cluster_of(static_cast<Space>(dst));
      const double xfer_ns =
          cross ? per_lane / params.bytes_per_ns_per_module : 0.0;
      Time stream = Time::ns(std::max({read_ns, write_ns, xfer_ns}));
      if (cross) stream += params.interface_latency;
      longest = std::max(longest, stream);

      cost.energy += s.read_energy * static_cast<double>(w);
      cost.energy += d.write_energy * static_cast<double>(w);
      if (cross) cost.energy += params.energy_per_byte * static_cast<double>(w);
    }
  }
  cost.time = longest;
  return cost;
}

}  // namespace hhpim::placement
