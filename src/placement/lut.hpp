// The allocation_state look-up table (paper §III-B).
//
// Built once at application initialization, the LUT maps each quantized time
// constraint t_constraint in (0, T] to the energy-optimal weight allocation
// across the four spaces. At run time the scheduler just indexes it.
//
// Construction runs Algorithms 1 & 2 per LUT entry. The per-block energy
// fed to the DP is  e_i(tc) = uses * E_dyn(i) + P_retention(i) * tc  — the
// dynamic cost of the task plus the task's wall-clock share of the SRAM
// retention leakage. (With purely constant e_i the optimizer would
// degenerate to all-SRAM, since SRAM dominates MRAM in both speed and
// per-access energy; the retention term is what makes MRAM attractive at
// relaxed deadlines, which is exactly the behaviour of the paper's Fig. 6.)
//
// Resolution is limited (the paper's "1 % of the time slice" rule) by
// pick_resolution(): block/step counts are chosen so the estimated
// construction cost on the edge device stays under budget.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "placement/cost_model.hpp"
#include "placement/knapsack.hpp"
#include "placement/pareto.hpp"

namespace hhpim::placement {

/// Build parameters. Preconditions (build() throws std::invalid_argument
/// otherwise): slice > 0, total_weights > 0, t_entries > 0, k_blocks > 0,
/// and slice must span at least t_entries picoseconds.
struct LutParams {
  Time slice;                  ///< T: the time-slice length
  std::uint64_t total_weights = 0;  ///< K, in weights (= bytes for INT8)
  int t_entries = 128;         ///< LUT entries over (0, T]
  int k_blocks = 128;          ///< weight-block resolution
};

struct LutEntry {
  Time t_constraint;
  bool feasible = false;
  Allocation alloc;            ///< weights per space (sums to K when feasible)
  Energy predicted_task_energy;
  /// Non-dominated (energy, latency, SRAM-pressure) trade-off points for this
  /// t_constraint (pareto.hpp), built by re-combining the entry's cluster DP
  /// tables at tighter time budgets. Empty iff infeasible; its strict
  /// min-energy point is (`alloc`, `predicted_task_energy`) bit-exactly.
  std::vector<ParetoPoint> frontier;
};

/// Immutable after build(); lookups are const and safe to share across
/// threads without synchronization. Grid runs share one instance per
/// (model, arch, cost, resolution) via LutCache (lut_cache.hpp).
class AllocationLut {
 public:
  /// Builds the LUT: per entry, an O(K) feasibility precheck (the peak
  /// boundary), then Algorithms 1 & 2 for feasible entries only —
  /// O(t_entries * internal_steps * k_blocks) DP cells worst case, with
  /// internal_steps = 16 * k_blocks. Energies in pJ, times in integer ps.
  static AllocationLut build(const CostModel& model, const LutParams& params);

  /// The entry for the largest tabulated t_constraint <= `tc` (so the
  /// returned allocation is guaranteed feasible for `tc`); clamps to the
  /// first/last entry outside the domain.
  [[nodiscard]] const LutEntry& lookup(Time tc) const;

  /// Like lookup(), but if the floor entry is infeasible (tc sits inside or
  /// just left of the peak-performance boundary), returns the first feasible
  /// entry — the peak placement — or nullptr if the whole table is
  /// infeasible. The caller re-checks the real task time against tc.
  [[nodiscard]] const LutEntry* lookup_or_peak(Time tc) const;

  [[nodiscard]] const std::vector<LutEntry>& entries() const { return entries_; }
  [[nodiscard]] Time slice() const { return params_.slice; }
  [[nodiscard]] const LutParams& params() const { return params_; }
  /// Smallest feasible t_constraint (the peak-performance point; left of it
  /// is the paper's grey "Not Possible" region).
  [[nodiscard]] Time peak_t_constraint() const;

 private:
  LutParams params_;
  std::vector<LutEntry> entries_;
};

/// The paper's resolution limiter: picks (t_entries, k_blocks) so that LUT
/// construction costs at most `budget_fraction` (default 1 %) of the time
/// slice on a device that evaluates `cells_per_us` DP cells per microsecond.
struct ResolutionChoice {
  int t_entries;
  int k_blocks;
  double estimated_us;  ///< estimated on-device construction time
};
[[nodiscard]] ResolutionChoice pick_resolution(Time slice, double budget_fraction = 0.01,
                                               double cells_per_us = 1000.0,
                                               int max_resolution = 512);

}  // namespace hhpim::placement
