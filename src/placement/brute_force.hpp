// Exhaustive reference optimizer. Same objective as the DP (task dynamic
// energy + retention share over the time window), solved by enumerating all
// splits. Exponentially simpler to audit than the DP; used by property tests
// to verify DP optimality and by the resolution-ablation bench.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "placement/cost_model.hpp"

namespace hhpim::placement {

struct BruteForceResult {
  bool feasible = false;
  Allocation alloc;
  Energy energy;
};

/// Enumerates all allocations of `total_weights` (in `granularity`-weight
/// units) across the four spaces, subject to capacities and
/// task_time(alloc) <= tc. O((K/g)^3) — small inputs only.
[[nodiscard]] BruteForceResult brute_force_placement(const CostModel& model,
                                                     std::uint64_t total_weights,
                                                     Time tc,
                                                     std::uint64_t granularity = 1);

}  // namespace hhpim::placement
