// The (energy, latency, SRAM-pressure) Pareto frontier of one LUT entry.
//
// The knapsack DP (knapsack.hpp) answers "minimum energy within t_constraint"
// — a single point. H3PIMAP-style multi-objective mapping wants the whole
// trade-off surface: combining the same per-cluster DP tables at tighter time
// budgets t' <= t_constraint yields, for each t', the min-energy placement at
// that latency. Those candidates, pruned to the non-dominated set, form the
// entry's frontier (lut.cpp builds it; this header owns the point type and
// the dominance machinery so tests and the fleet policy share one
// definition).
//
// Axes, in paper terms:
//   * energy   — predicted task energy at the entry's t_constraint window
//                (dynamic + gating-quantized retention, same formula as
//                LutEntry::predicted_task_energy);
//   * latency  — the exact task_time of the allocation (not the quantized
//                DP budget), so frontier points are directly comparable to a
//                latency SLO;
//   * SRAM pressure — weights resident in HP-SRAM + LP-SRAM, the retention
//                liability a battery-aware policy wants to shed.
//
// Invariant maintained by the builder: the frontier's strictly-minimum-energy
// point is the legacy knapsack answer, bit-exact (candidates that would tie
// or beat it on the quantized-energy re-evaluation are discarded unless they
// ARE the legacy allocation). tests/test_pareto.cpp pins this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "placement/cost_model.hpp"

namespace hhpim::placement {

/// One non-dominated placement on the trade-off surface of a LUT entry.
struct ParetoPoint {
  Allocation alloc;
  Energy energy;                   ///< predicted task energy (see header)
  Time latency;                    ///< exact task_time(model, alloc)
  std::uint64_t sram_weights = 0;  ///< alloc[HpSram] + alloc[LpSram]

  [[nodiscard]] bool operator==(const ParetoPoint&) const = default;
};

/// Evaluates an allocation into a point. `window` is the entry's
/// t_constraint — the wall-clock span retention is charged over.
[[nodiscard]] ParetoPoint evaluate_point(const CostModel& model, const Allocation& a,
                                         Time window);

/// True iff `a` dominates `b`: no worse on all three axes and strictly
/// better on at least one.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Prunes `points` to its non-dominated subset in place, deduplicates exact
/// objective ties, and sorts deterministically: latency ascending, then
/// energy, then SRAM pressure, then the allocation arrays lexicographically.
/// O(n^2) — n is a handful of budget samples per entry.
void prune_to_frontier(std::vector<ParetoPoint>& points);

// Selectors. Precondition: `frontier` non-empty. Ties resolve to the first
// point in the deterministic sort order above.
[[nodiscard]] const ParetoPoint& min_latency_point(const std::vector<ParetoPoint>& frontier);
[[nodiscard]] const ParetoPoint& min_energy_point(const std::vector<ParetoPoint>& frontier);
/// The minimum-energy point among those with latency <= `slo` (the SLO-aware
/// policy's balanced pick); nullptr when even the fastest point misses it.
[[nodiscard]] const ParetoPoint* best_within_slo(const std::vector<ParetoPoint>& frontier,
                                                 Time slo);

}  // namespace hhpim::placement
