// Movement planning between consecutive placements.
//
// When the scheduler switches from allocation A to allocation B, weights must
// move between spaces (HP <-> LP through the Data Rearrange Buffer, MRAM <->
// SRAM inside modules). The paper charges this overhead against the slice
// budget before computing t_constraint; this planner produces the transfer
// matrix and a time/energy estimate matching the DataAllocator's pipeline
// model.
#pragma once

#include <array>
#include <cstdint>

#include "common/units.hpp"
#include "placement/cost_model.hpp"

namespace hhpim::placement {

/// moved[from][to] = weights to move from space `from` to space `to`.
struct MovementPlan {
  std::array<std::array<std::uint64_t, kSpaceCount>, kSpaceCount> moved{};

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t at(Space from, Space to) const {
    return moved[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }
};

/// Matches surpluses to deficits, preferring intra-cluster moves (cheaper:
/// no rearrange-buffer crossing) before cross-cluster ones.
[[nodiscard]] MovementPlan plan_movement(const Allocation& from, const Allocation& to);

struct MovementParams {
  /// MEM-interface bandwidth per module lane (matches DataAllocatorConfig).
  double bytes_per_ns_per_module = 4.0;
  Time interface_latency = Time::ns(2.0);
  Energy energy_per_byte = Energy::pj(0.12);
};

struct MovementCost {
  Time time;
  Energy energy;
};

/// Pipeline estimate of executing `plan`: per source->destination stream,
/// reads / transfer / writes overlap, so the slowest stage dominates; streams
/// touching disjoint spaces run in parallel and the longest stream sets the
/// completion time.
[[nodiscard]] MovementCost estimate_movement(const CostModel& model, const MovementPlan& plan,
                                             const MovementParams& params = {});

}  // namespace hhpim::placement
