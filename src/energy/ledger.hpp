// Energy ledger: the single place where every joule in a simulation is
// accounted. Components register once, then post dynamic energy per event and
// leakage per powered interval. Benches query totals and per-category
// breakdowns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hhpim::energy {

/// What kind of work consumed the energy.
enum class Activity : std::uint8_t {
  kMemRead = 0,
  kMemWrite,
  kCompute,
  kTransfer,   // inter-module / NoC data movement
  kControl,    // controller & instruction handling
  kLeakage,
  kCount,
};

[[nodiscard]] const char* to_string(Activity a);

/// One recorded ledger posting: the flat accumulator cell it targeted and the
/// exact amount added. Replaying a recorded sequence repeats the identical
/// double additions in the identical order, so the final accumulator bits
/// match a scalar re-execution exactly — the property the batched
/// steady-state kernel (sys::Processor::run_tasks_batched) is built on.
struct RecordedPost {
  std::uint32_t cell = 0;  ///< index into the ledger's accumulator array
  double pj = 0.0;
};

/// Opaque handle returned by EnergyLedger::register_component.
class ComponentId {
 public:
  ComponentId() = default;
  [[nodiscard]] bool valid() const { return idx_ != kInvalid; }

 private:
  friend class EnergyLedger;
  explicit ComponentId(std::uint32_t idx) : idx_(idx) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t idx_ = kInvalid;
};

class EnergyLedger {
 public:
  /// Registers a named component (e.g. "hp0.sram"). Names need not be unique,
  /// but unique names make breakdown tables readable.
  ComponentId register_component(std::string name);

  /// Posts dynamic energy consumed by one or more events.
  void add(ComponentId c, Activity a, Energy e);

  // --- Post recording / replay (batched-execution fast path) ---------------
  // While recording, every add() also appends its (cell, amount) to `sink`.
  // replay() re-applies a recorded sequence `repeats` times with plain
  // double additions — bit-identical to calling add() again with the same
  // arguments, at a fraction of the cost of re-simulating the work that
  // produced the posts. Single-threaded, like the ledger itself.

  /// Starts recording into `sink` (not owned; must outlive the recording).
  /// Recording while already recording replaces the sink.
  void begin_recording(std::vector<RecordedPost>* sink) { record_ = sink; }
  void end_recording() { record_ = nullptr; }
  [[nodiscard]] bool recording() const { return record_ != nullptr; }

  /// Re-applies `posts` `repeats` times, preserving per-cell add order.
  void replay(const std::vector<RecordedPost>& posts, int repeats);

  // --- Slice-energy window -------------------------------------------------
  // A single running sum of every post (add or replay) since the last
  // begin_window(), accumulated from 0.0. Unlike `total_after -
  // total_before` over the cumulative cells, the window is
  // *history-independent*: two executions posting the same amounts in the
  // same order read identical window bits no matter what the accumulators
  // already hold (cumulative deltas round differently with the accumulated
  // magnitude). sys::Processor::run_slice reports slice energy from this
  // window, which is what lets the fleet's device-outcome memo
  // (fleet::OutcomeCache) replay a recorded slice byte-identically on
  // devices with different energy histories.

  /// Zeroes the window. Call at the start of the interval to measure.
  void begin_window() { window_pj_ = 0.0; }
  /// Everything posted since begin_window().
  [[nodiscard]] Energy window_total() const { return Energy::pj(window_pj_); }

  /// Posts leakage: power integrated over a powered-on interval.
  void add_leakage(ComponentId c, Power p, Time duration) {
    add(c, Activity::kLeakage, p * duration);
  }

  [[nodiscard]] Energy total() const;
  [[nodiscard]] Energy total(Activity a) const;
  [[nodiscard]] Energy component_total(ComponentId c) const;
  [[nodiscard]] Energy component_total(ComponentId c, Activity a) const;
  /// Sum over all activities except leakage.
  [[nodiscard]] Energy dynamic_total() const;

  [[nodiscard]] std::size_t component_count() const { return names_.size(); }
  [[nodiscard]] const std::string& component_name(std::size_t idx) const { return names_[idx]; }
  [[nodiscard]] Energy component_total_by_index(std::size_t idx, Activity a) const;

  /// Renders a per-component, per-activity breakdown table.
  [[nodiscard]] std::string breakdown() const;

  void reset();

 private:
  static constexpr std::size_t kActivities = static_cast<std::size_t>(Activity::kCount);
  std::vector<std::string> names_;
  std::vector<double> pj_;  // names_.size() * kActivities, row-major
  double window_pj_ = 0.0;  // posts since begin_window(), summed from zero
  std::vector<RecordedPost>* record_ = nullptr;  // active recording sink, if any
};

/// Tracks the powered intervals of one leaky component and posts the
/// integrated leakage to the ledger. Power-gating a component simply means
/// calling power_off(); non-volatile memories keep their contents, volatile
/// ones must be told they lost them by the owner.
class LeakageTracker {
 public:
  LeakageTracker(EnergyLedger* ledger, ComponentId id, Power leakage);

  /// Marks the component powered from `now` on. No-op if already on.
  void power_on(Time now);
  /// Marks the component gated from `now` on, accumulating the elapsed
  /// on-interval. No-op if already off.
  void power_off(Time now);
  /// Closes the current interval at `now` (call at end of simulation or when
  /// reading totals mid-run). The component stays in its current state.
  void settle(Time now);

  /// Changes the leakage power from `now` on (e.g. a macro powering a subset
  /// of its banks). Settles the elapsed interval at the old power first.
  void set_power(Power leakage, Time now);

  /// Steady-state advance (batched execution): shifts the open-interval
  /// anchor by `anchor_shift` (no-op while off) and credits `extra_on` of
  /// already-posted on-time. The caller has replayed the matching leakage
  /// posts through EnergyLedger::replay; this keeps the tracker's integer
  /// state consistent with them. Exact — all quantities are integer ps.
  void fast_forward(Time anchor_shift, Time extra_on) {
    if (on_) on_since_ += anchor_shift;
    total_on_ += extra_on;
  }

  /// Returns the tracker to its just-constructed state at `leakage` power:
  /// off, zero accumulated on-time, nothing posted. Part of
  /// sys::Processor::reset() — callers must reset the ledger separately.
  void reset(Power leakage) {
    leakage_ = leakage;
    on_ = false;
    on_since_ = Time::zero();
    total_on_ = Time::zero();
  }

  /// Checkpoint restore: sets the power state directly without posting
  /// anything to the ledger. `anchor` is the open-interval start to resume
  /// from (ignored while off); accumulated on-time stays wherever reset()
  /// left it — on-time totals are history, and the checkpoint contract
  /// (sys::Processor::state_digest) excludes history.
  void restore(bool on, Time anchor, Power leakage) {
    leakage_ = leakage;
    on_ = on;
    on_since_ = on ? anchor : Time::zero();
  }

  [[nodiscard]] bool is_on() const { return on_; }
  [[nodiscard]] Time total_on_time() const { return total_on_; }
  [[nodiscard]] Power leakage() const { return leakage_; }
  /// Start of the currently-open leakage interval (last power_on / settle /
  /// set_power while on). Stale while off. The batched kernel diffs two
  /// anchor readings to learn whether a steady-state interval touched this
  /// tracker (per-burst gating advances the anchor every period) or left it
  /// running (retention at constant power — anchor frozen until the final
  /// settle), and shifts by exactly that delta in fast_forward().
  [[nodiscard]] Time anchor() const { return on_since_; }

 private:
  EnergyLedger* ledger_;
  ComponentId id_;
  Power leakage_;
  bool on_ = false;
  Time on_since_ = Time::zero();
  Time total_on_ = Time::zero();
};

}  // namespace hhpim::energy
