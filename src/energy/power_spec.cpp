#include "energy/power_spec.hpp"

namespace hhpim::energy {

const char* to_string(ClusterKind c) {
  return c == ClusterKind::kHighPerformance ? "HP" : "LP";
}

const char* to_string(MemoryKind m) {
  return m == MemoryKind::kMram ? "MRAM" : "SRAM";
}

PowerSpec PowerSpec::paper_45nm() {
  PowerSpec s;

  // Table III (latencies, ns) + Table V (power, mW) — HP cluster @ 1.2 V.
  s.hp.vdd = 1.2;
  s.hp.mram_timing = {Time::ns(2.62), Time::ns(11.81)};
  s.hp.sram_timing = {Time::ns(1.12), Time::ns(1.12)};
  s.hp.pe.mac_latency = Time::ns(5.52);
  s.hp.mram_power = {Power::mw(428.48), Power::mw(133.78), Power::mw(2.98)};
  s.hp.sram_power = {Power::mw(508.93), Power::mw(500.0), Power::mw(23.29)};
  s.hp.pe.dynamic = Power::mw(0.90);
  s.hp.pe.leakage = Power::mw(0.48);

  // LP cluster @ 0.8 V.
  s.lp.vdd = 0.8;
  s.lp.mram_timing = {Time::ns(2.96), Time::ns(14.65)};
  s.lp.sram_timing = {Time::ns(1.41), Time::ns(1.41)};
  s.lp.pe.mac_latency = Time::ns(10.68);
  s.lp.mram_power = {Power::mw(179.05), Power::mw(47.78), Power::mw(0.84)};
  s.lp.sram_power = {Power::mw(177.30), Power::mw(177.30), Power::mw(5.45)};
  s.lp.pe.dynamic = Power::mw(0.51);
  s.lp.pe.leakage = Power::mw(0.25);

  return s;
}

PowerSpec PowerSpec::scaled(double time_scale) const {
  PowerSpec s = *this;
  for (ModuleSpec* m : {&s.hp, &s.lp}) {
    m->mram_timing.read = m->mram_timing.read * time_scale;
    m->mram_timing.write = m->mram_timing.write * time_scale;
    m->sram_timing.read = m->sram_timing.read * time_scale;
    m->sram_timing.write = m->sram_timing.write * time_scale;
    m->pe.mac_latency = m->pe.mac_latency * time_scale;
    // Per-access dynamic ENERGY must stay at its 45 nm value (the paper's
    // dynamic energies come from NVSim timing, its wall-clock from the slower
    // FPGA prototype). Energy = P * t, so stretch t, shrink P. Leakage power
    // is genuinely per-wall-time and stays unscaled.
    const double inv = 1.0 / time_scale;
    m->mram_power.dyn_read = m->mram_power.dyn_read * inv;
    m->mram_power.dyn_write = m->mram_power.dyn_write * inv;
    m->sram_power.dyn_read = m->sram_power.dyn_read * inv;
    m->sram_power.dyn_write = m->sram_power.dyn_write * inv;
    m->pe.dynamic = m->pe.dynamic * inv;
  }
  return s;
}

}  // namespace hhpim::energy
