#include "energy/ledger.hpp"

#include <cassert>
#include <sstream>

#include "common/table.hpp"

namespace hhpim::energy {

const char* to_string(Activity a) {
  switch (a) {
    case Activity::kMemRead: return "mem-read";
    case Activity::kMemWrite: return "mem-write";
    case Activity::kCompute: return "compute";
    case Activity::kTransfer: return "transfer";
    case Activity::kControl: return "control";
    case Activity::kLeakage: return "leakage";
    case Activity::kCount: break;
  }
  return "?";
}

ComponentId EnergyLedger::register_component(std::string name) {
  names_.push_back(std::move(name));
  pj_.resize(names_.size() * kActivities, 0.0);
  return ComponentId{static_cast<std::uint32_t>(names_.size() - 1)};
}

void EnergyLedger::add(ComponentId c, Activity a, Energy e) {
  assert(c.valid() && c.idx_ < names_.size());
  const std::size_t cell = c.idx_ * kActivities + static_cast<std::size_t>(a);
  pj_[cell] += e.as_pj();
  window_pj_ += e.as_pj();
  if (record_ != nullptr) {
    record_->push_back(RecordedPost{static_cast<std::uint32_t>(cell), e.as_pj()});
  }
}

void EnergyLedger::replay(const std::vector<RecordedPost>& posts, int repeats) {
  for (int r = 0; r < repeats; ++r) {
    for (const RecordedPost& p : posts) {
      assert(p.cell < pj_.size());
      pj_[p.cell] += p.pj;
      window_pj_ += p.pj;
    }
  }
}

Energy EnergyLedger::total() const {
  double sum = 0.0;
  for (const double v : pj_) sum += v;
  return Energy::pj(sum);
}

Energy EnergyLedger::total(Activity a) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    sum += pj_[i * kActivities + static_cast<std::size_t>(a)];
  }
  return Energy::pj(sum);
}

Energy EnergyLedger::component_total(ComponentId c) const {
  assert(c.valid());
  double sum = 0.0;
  for (std::size_t a = 0; a < kActivities; ++a) sum += pj_[c.idx_ * kActivities + a];
  return Energy::pj(sum);
}

Energy EnergyLedger::component_total(ComponentId c, Activity a) const {
  assert(c.valid());
  return Energy::pj(pj_[c.idx_ * kActivities + static_cast<std::size_t>(a)]);
}

Energy EnergyLedger::dynamic_total() const {
  return total() - total(Activity::kLeakage);
}

Energy EnergyLedger::component_total_by_index(std::size_t idx, Activity a) const {
  return Energy::pj(pj_[idx * kActivities + static_cast<std::size_t>(a)]);
}

std::string EnergyLedger::breakdown() const {
  Table t{{"component", "mem-read", "mem-write", "compute", "transfer",
           "control", "leakage", "total"}};
  for (std::size_t i = 0; i < names_.size(); ++i) {
    std::vector<std::string> row{names_[i]};
    double total = 0.0;
    for (std::size_t a = 0; a < kActivities; ++a) {
      const double v = pj_[i * kActivities + a];
      total += v;
      row.push_back(Energy::pj(v).to_string());
    }
    row.push_back(Energy::pj(total).to_string());
    t.add_row(std::move(row));
  }
  t.add_rule();
  t.add_row({"TOTAL", total(Activity::kMemRead).to_string(),
             total(Activity::kMemWrite).to_string(),
             total(Activity::kCompute).to_string(),
             total(Activity::kTransfer).to_string(),
             total(Activity::kControl).to_string(),
             total(Activity::kLeakage).to_string(), total().to_string()});
  return t.render();
}

void EnergyLedger::reset() {
  std::fill(pj_.begin(), pj_.end(), 0.0);
  window_pj_ = 0.0;
}

LeakageTracker::LeakageTracker(EnergyLedger* ledger, ComponentId id, Power leakage)
    : ledger_(ledger), id_(id), leakage_(leakage) {}

void LeakageTracker::power_on(Time now) {
  if (on_) return;
  on_ = true;
  on_since_ = now;
}

void LeakageTracker::power_off(Time now) {
  if (!on_) return;
  const Time span = now - on_since_;
  total_on_ += span;
  if (ledger_ != nullptr) ledger_->add_leakage(id_, leakage_, span);
  on_ = false;
}

void LeakageTracker::settle(Time now) {
  if (!on_) return;
  const Time span = now - on_since_;
  total_on_ += span;
  if (ledger_ != nullptr) ledger_->add_leakage(id_, leakage_, span);
  on_since_ = now;
}

void LeakageTracker::set_power(Power leakage, Time now) {
  settle(now);
  leakage_ = leakage;
}

}  // namespace hhpim::energy
