#include "energy/battery.hpp"

#include <stdexcept>

namespace hhpim::energy {

Battery::Battery(const BatteryConfig& config)
    : capacity_(config.capacity),
      charge_(config.capacity * config.initial_soc) {
  if (!(config.capacity > Energy::zero())) {
    throw std::invalid_argument("Battery: capacity must be > 0");
  }
  if (config.initial_soc < 0.0 || config.initial_soc > 1.0) {
    throw std::invalid_argument("Battery: initial_soc must be in [0, 1]");
  }
}

Energy Battery::drain(Energy e) {
  if (e < Energy::zero()) {
    throw std::invalid_argument("Battery::drain: negative energy");
  }
  const Energy drained = e < charge_ ? e : charge_;
  charge_ -= drained;
  return drained;
}

void Battery::recharge(Energy e) {
  if (e < Energy::zero()) {
    throw std::invalid_argument("Battery::recharge: negative energy");
  }
  charge_ += e;
  if (charge_ > capacity_) charge_ = capacity_;
}

void Battery::restore_charge(Energy e) {
  if (e < Energy::zero() || e > capacity_) {
    throw std::invalid_argument(
        "Battery::restore_charge: charge outside [0, capacity]");
  }
  charge_ = e;
}

double Battery::soc() const { return charge_ / capacity_; }

}  // namespace hhpim::energy
