// Per-device battery / energy-budget model for fleet simulation.
//
// A Battery is a finite energy reservoir drained by the joules a device's
// EnergyLedger accounts per slice. It is deliberately simple — no voltage
// curve, no temperature, no self-discharge — because the fleet layer only
// needs the quantity the paper's dynamic-optimization loop reacts to: the
// state of charge (SoC) that drives placement-mode adaptation
// (fleet::AdaptivePolicy).
//
// Units follow common/units.hpp (Energy is picojoules internally); all
// methods are O(1); instances are not thread-safe (one per device, devices
// are simulated on a single worker thread each).
#pragma once

#include "common/units.hpp"

namespace hhpim::energy {

struct BatteryConfig {
  /// Usable capacity. Must be > 0 (Battery's constructor throws otherwise).
  /// The default sustains roughly one 20-slice HH-PIM run of a Table IV
  /// model (slice energies are single-digit millijoules), so battery
  /// dynamics — threshold crossings, exhaustion — show up at default specs.
  Energy capacity = Energy::mj(250.0);
  /// Initial state of charge in [0, 1] (1 = full). Out-of-range throws.
  double initial_soc = 1.0;
};

/// Finite energy reservoir with clamped draining.
///
/// drain() never takes the charge below zero: the final drain is truncated
/// to the remaining charge and the battery reports exhausted() from then on.
/// The fleet layer uses the truncation to detect "battery died mid-slice"
/// (requested > drained).
class Battery {
 public:
  /// Throws std::invalid_argument unless capacity > 0 and
  /// initial_soc in [0, 1].
  explicit Battery(const BatteryConfig& config);

  /// Removes up to `e` from the charge; returns the energy actually drained
  /// (== e unless the battery ran out mid-way). `e` must be >= 0 (throws).
  Energy drain(Energy e);

  /// Adds `e` back (e.g. an energy-harvesting scenario), clamped to
  /// capacity. `e` must be >= 0 (throws). Clears exhausted() if it raises
  /// the charge above zero.
  void recharge(Energy e);

  /// Checkpoint restore: sets the charge to exactly `e` (the bits a prior
  /// charge() returned). Throws std::invalid_argument outside [0, capacity].
  void restore_charge(Energy e);

  /// State of charge in [0, 1].
  [[nodiscard]] double soc() const;
  [[nodiscard]] Energy charge() const { return charge_; }
  [[nodiscard]] Energy capacity() const { return capacity_; }
  /// True once the charge reached zero (and recharge() has not raised it).
  [[nodiscard]] bool exhausted() const { return charge_ == Energy::zero(); }

 private:
  Energy capacity_;
  Energy charge_;
};

}  // namespace hhpim::energy
