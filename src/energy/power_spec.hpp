// Timing and power specifications for the HP/LP PIM modules.
//
// The default values are the paper's measured numbers:
//   * Table III — read/write/PE latencies from NVSim @ 45 nm
//     (HP cluster at Vdd = 1.2 V, LP cluster at Vdd = 0.8 V).
//   * Table V  — dynamic read/write power and leakage per 64 kB macro,
//     plus PE dynamic/static power.
//
// SRAM leakage scales linearly with capacity (a 128 kB module leaks 2x the
// 64 kB figure); dynamic per-access power is per-macro and kept constant.
#pragma once

#include <string>

#include "common/units.hpp"

namespace hhpim::energy {

/// Which cluster a module belongs to. HP runs at 1.2 V, LP at 0.8 V.
enum class ClusterKind { kHighPerformance, kLowPower };

/// Memory technology inside a PIM module.
enum class MemoryKind { kMram, kSram };

[[nodiscard]] const char* to_string(ClusterKind c);
[[nodiscard]] const char* to_string(MemoryKind m);

/// Read/write access latencies of one memory macro.
struct MemoryTiming {
  Time read;
  Time write;
};

/// Dynamic power while an access is in flight, plus always-on leakage
/// (chargeable only while the macro is powered; see LeakageTracker).
struct MemoryPower {
  Power dyn_read;
  Power dyn_write;
  Power leakage;
};

/// Processing-element (MAC datapath) characteristics.
struct PeSpec {
  Time mac_latency;
  Power dynamic;
  Power leakage;

  /// Energy of a single MAC operation.
  [[nodiscard]] Energy mac_energy() const { return dynamic * mac_latency; }
};

/// Full per-cluster module specification.
struct ModuleSpec {
  double vdd = 0.0;
  MemoryTiming mram_timing;
  MemoryTiming sram_timing;
  MemoryPower mram_power;
  MemoryPower sram_power;
  PeSpec pe;

  [[nodiscard]] const MemoryTiming& timing(MemoryKind m) const {
    return m == MemoryKind::kMram ? mram_timing : sram_timing;
  }
  [[nodiscard]] const MemoryPower& power(MemoryKind m) const {
    return m == MemoryKind::kMram ? mram_power : sram_power;
  }

  /// Energy of one read / one write access.
  [[nodiscard]] Energy read_energy(MemoryKind m) const {
    return power(m).dyn_read * timing(m).read;
  }
  [[nodiscard]] Energy write_energy(MemoryKind m) const {
    return power(m).dyn_write * timing(m).write;
  }
};

/// The complete spec for both clusters.
struct PowerSpec {
  ModuleSpec hp;
  ModuleSpec lp;

  [[nodiscard]] const ModuleSpec& module(ClusterKind c) const {
    return c == ClusterKind::kHighPerformance ? hp : lp;
  }

  /// The paper's Tables III & V (45 nm, STT-MRAM + SRAM, 64 kB macros).
  [[nodiscard]] static PowerSpec paper_45nm();

  /// Returns a copy with every latency multiplied by `time_scale` (powers
  /// unchanged). The paper pairs execution times measured on a 50 MHz FPGA
  /// prototype with 45 nm power numbers; stretching the raw Table III
  /// latencies by a system-level factor reproduces that time base and thus
  /// the paper's leakage-vs-dynamic energy balance. See DESIGN.md §3.
  [[nodiscard]] PowerSpec scaled(double time_scale) const;
};

}  // namespace hhpim::energy
