#include "noc/ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhpim::noc {

Ring::Ring(RingConfig config, energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      ledger_(ledger),
      id_(ledger != nullptr ? ledger->register_component(config_.name)
                            : energy::ComponentId{}) {
  if (config_.nodes < 2) throw std::invalid_argument("Ring: need at least 2 nodes");
}

bool Ring::clockwise_shorter(std::size_t src, std::size_t dst) const {
  const std::size_t n = config_.nodes;
  const std::size_t cw = (dst + n - src) % n;
  return cw <= n - cw;
}

std::size_t Ring::hops(std::size_t src, std::size_t dst) const {
  const std::size_t n = config_.nodes;
  if (src >= n || dst >= n) throw std::out_of_range("Ring: node index out of range");
  const std::size_t cw = (dst + n - src) % n;
  return std::min(cw, n - cw);
}

TransferResult Ring::send(Time now, std::size_t src, std::size_t dst, std::uint64_t bytes) {
  const std::size_t h = hops(src, dst);
  const std::size_t channel = clockwise_shorter(src, dst) ? 0 : 1;
  Time& busy = busy_until_[channel];
  const Time start = std::max(now, busy);
  const Time serialize =
      Time::ns(static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns);
  busy = start + serialize;
  const Time complete =
      start + serialize + config_.hop_latency * static_cast<std::int64_t>(h);
  const Energy e = config_.energy_per_byte_hop *
                   (static_cast<double>(bytes) * static_cast<double>(std::max<std::size_t>(h, 1)));
  if (ledger_ != nullptr) ledger_->add(id_, energy::Activity::kTransfer, e);
  ++messages_;
  return TransferResult{start, complete, e};
}

}  // namespace hhpim::noc
