// Point-to-point link: fixed propagation latency + serialization at a given
// bandwidth, with per-byte transfer energy. Links are occupied while a
// transfer is serializing; back-to-back transfers queue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/hash.hpp"
#include "common/units.hpp"
#include "energy/ledger.hpp"

namespace hhpim {
class ByteWriter;  // common/serialize.hpp
class ByteReader;
}  // namespace hhpim

namespace hhpim::noc {

struct LinkConfig {
  std::string name = "link";
  double bandwidth_bytes_per_ns = 8.0;  ///< e.g. 64-bit bus at 1 GHz
  Time latency = Time::ns(2.0);         ///< propagation/pipeline latency
  Energy energy_per_byte = Energy::pj(0.15);
};

struct TransferResult {
  Time start;     ///< when serialization began
  Time complete;  ///< when the last byte arrived at the far end
  Energy energy;
};

class Link {
 public:
  Link(LinkConfig config, energy::EnergyLedger* ledger);

  /// Sends `bytes` at `now` (or when the link frees up).
  TransferResult transfer(Time now, std::uint64_t bytes);

  [[nodiscard]] Time busy_until() const { return busy_until_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Serialization time of a payload on an idle link (excludes latency).
  [[nodiscard]] Time serialization_time(std::uint64_t bytes) const;

  /// Returns timing/counters to just-constructed (processor reuse; the
  /// owning processor resets the ledger separately).
  void reset_accounting() {
    busy_until_ = Time::zero();
    bytes_moved_ = 0;
  }

  /// Checkpoint save/load of exactly the state add_state() digests (the
  /// clamped occupancy horizon; see mem::Bank::save_state for the contract).
  void save_state(ByteWriter& w, Time now) const;
  void load_state(ByteReader& r);

  /// Behavior-relevant state relative to `now` (see mem::Bank::add_state):
  /// only the occupancy horizon; bytes_moved is history.
  void add_state(Fnv1a& h, Time now) const {
    // Clamped at 0: a horizon in the past is behaviorally "free now"
    // (transfer() starts at max(now, busy_until_)) — see
    // pim::PimModule::add_state.
    h.add(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
  }

 private:
  LinkConfig config_;
  energy::EnergyLedger* ledger_;
  energy::ComponentId id_;
  Time busy_until_ = Time::zero();
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace hhpim::noc
