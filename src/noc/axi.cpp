#include "noc/axi.hpp"

#include <algorithm>

namespace hhpim::noc {

AxiChannel::AxiChannel(AxiConfig config, energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      ledger_(ledger),
      id_(ledger != nullptr ? ledger->register_component(config_.name)
                            : energy::ComponentId{}) {}

AxiResult AxiChannel::transfer(Time now, std::uint64_t bytes) {
  const Time start = std::max(now, busy_until_);
  const std::uint64_t beats =
      (bytes + config_.data_width_bytes - 1) / config_.data_width_bytes;
  const std::uint64_t bursts =
      beats == 0 ? 0 : (beats + config_.max_burst_beats - 1) / config_.max_burst_beats;
  const std::uint64_t cycles =
      beats + bursts * static_cast<std::uint64_t>(config_.address_cycles);
  const Time complete = start + config_.clock_period * static_cast<std::int64_t>(cycles);
  busy_until_ = complete;
  const Energy e = config_.energy_per_beat * static_cast<double>(beats);
  if (ledger_ != nullptr) ledger_->add(id_, energy::Activity::kTransfer, e);
  bytes_moved_ += bytes;
  return AxiResult{start, complete, static_cast<std::uint32_t>(bursts), e};
}

}  // namespace hhpim::noc
