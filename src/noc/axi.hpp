// AXI-like burst channel: address phase (fixed handshake latency) followed by
// data beats at the bus width/clock. Models the core <-> HH-PIM interface of
// the paper's processor (Fig. 3), which uses AXI for high-bandwidth transfers.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "noc/link.hpp"

namespace hhpim::noc {

struct AxiConfig {
  std::string name = "axi";
  std::size_t data_width_bytes = 8;   ///< AXI4 64-bit data bus
  Time clock_period = Time::ns(1.0);  ///< 1 GHz bus clock
  std::uint32_t address_cycles = 4;   ///< AW/AR handshake
  std::uint32_t max_burst_beats = 256;
  Energy energy_per_beat = Energy::pj(1.2);
};

struct AxiResult {
  Time start;
  Time complete;
  std::uint32_t bursts;  ///< number of AXI bursts the payload was split into
  Energy energy;
};

class AxiChannel {
 public:
  AxiChannel(AxiConfig config, energy::EnergyLedger* ledger);

  /// Moves `bytes` as a sequence of bursts; the channel is occupied for the
  /// whole sequence.
  AxiResult transfer(Time now, std::uint64_t bytes);

  [[nodiscard]] Time busy_until() const { return busy_until_; }
  [[nodiscard]] const AxiConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  AxiConfig config_;
  energy::EnergyLedger* ledger_;
  energy::ComponentId id_;
  Time busy_until_ = Time::zero();
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace hhpim::noc
