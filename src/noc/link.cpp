#include "noc/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/serialize.hpp"

namespace hhpim::noc {

Link::Link(LinkConfig config, energy::EnergyLedger* ledger)
    : config_(std::move(config)),
      ledger_(ledger),
      id_(ledger != nullptr ? ledger->register_component(config_.name)
                            : energy::ComponentId{}) {}

Time Link::serialization_time(std::uint64_t bytes) const {
  const double ns = static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns;
  return Time::ns(ns);
}

TransferResult Link::transfer(Time now, std::uint64_t bytes) {
  const Time start = std::max(now, busy_until_);
  const Time done_serializing = start + serialization_time(bytes);
  busy_until_ = done_serializing;
  const Time complete = done_serializing + config_.latency;
  const Energy e = config_.energy_per_byte * static_cast<double>(bytes);
  if (ledger_ != nullptr) ledger_->add(id_, energy::Activity::kTransfer, e);
  bytes_moved_ += bytes;
  return TransferResult{start, complete, e};
}

void Link::save_state(ByteWriter& w, Time now) const {
  w.i64(std::max<std::int64_t>((busy_until_ - now).as_ps(), 0));
}

void Link::load_state(ByteReader& r) { busy_until_ = Time::ps(r.i64()); }

}  // namespace hhpim::noc
