// Lightweight ring NoC in the spirit of uNoC (the paper's system
// interconnect): N nodes on a bidirectional ring, per-hop pipeline latency,
// shared per-direction channel bandwidth. Messages take the shorter
// direction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/ledger.hpp"
#include "noc/link.hpp"

namespace hhpim::noc {

struct RingConfig {
  std::string name = "ring";
  std::size_t nodes = 4;
  Time hop_latency = Time::ns(1.0);
  double bandwidth_bytes_per_ns = 8.0;
  Energy energy_per_byte_hop = Energy::pj(0.08);
};

class Ring {
 public:
  Ring(RingConfig config, energy::EnergyLedger* ledger);

  /// Number of hops taken from src to dst (shorter direction).
  [[nodiscard]] std::size_t hops(std::size_t src, std::size_t dst) const;

  /// Sends `bytes` from node `src` to node `dst`.
  TransferResult send(Time now, std::size_t src, std::size_t dst, std::uint64_t bytes);

  [[nodiscard]] const RingConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  /// 0 = clockwise channel, 1 = counter-clockwise channel.
  [[nodiscard]] bool clockwise_shorter(std::size_t src, std::size_t dst) const;

  RingConfig config_;
  energy::EnergyLedger* ledger_;
  energy::ComponentId id_;
  Time busy_until_[2] = {Time::zero(), Time::zero()};
  std::uint64_t messages_ = 0;
};

}  // namespace hhpim::noc
