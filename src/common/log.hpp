// Minimal leveled logger. The simulator is a library, so logging is off by
// default and routed through a single sink that tests can capture.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace hhpim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logger configuration. Not thread-safe by design: the simulator is
/// single-threaded (a discrete-event loop), and benches configure logging
/// before running.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  /// Replaces the output sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& msg);

  [[nodiscard]] static const char* level_name(LogLevel level);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hhpim

#define HHPIM_LOG(lvl)                                                   \
  if (static_cast<int>(lvl) < static_cast<int>(::hhpim::Log::level())) { \
  } else                                                                 \
    ::hhpim::detail::LogLine(lvl)

#define HHPIM_DEBUG() HHPIM_LOG(::hhpim::LogLevel::kDebug)
#define HHPIM_INFO() HHPIM_LOG(::hhpim::LogLevel::kInfo)
#define HHPIM_WARN() HHPIM_LOG(::hhpim::LogLevel::kWarn)
#define HHPIM_ERROR() HHPIM_LOG(::hhpim::LogLevel::kError)
