// ASCII table printer used by the benchmark binaries to regenerate the
// paper's tables in a diff-friendly fixed layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hhpim {

/// Accumulates rows of cells and renders them with aligned columns.
///
///   Table t{{"Arch", "Energy"}};
///   t.add_row({"HH-PIM", "1.23 mJ"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with `|`-separated columns, padded to the widest cell.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace hhpim
