// Cache-line padding for cross-worker data layout.
//
// Slots written by different worker threads (per-shard aggregates, result
// buffers, per-model processor freelists) are padded to kCacheLine so two
// workers never invalidate each other's line — false sharing turns
// logically independent writes into coherence traffic, which is exactly the
// kind of silent serialization the parallel-scaling gate exists to catch
// (docs/PERF.md "Parallel scaling").
#pragma once

#include <cstddef>

namespace hhpim {

/// Destructive-interference granularity assumed for padding: 64 bytes on
/// x86-64 and most AArch64 parts. A hard constant instead of
/// std::hardware_destructive_interference_size, whose use GCC flags as
/// ABI-unstable (-Winterference-size) under the strict -Werror preset;
/// over- or under-shooting the true line size costs only a few bytes or a
/// little coherence traffic, never correctness.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace hhpim
