// Tiny command-line flag parser for the example binaries.
// Supports `--name=value` and boolean `--flag`; everything else is a
// positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hhpim {

class Cli {
 public:
  /// Parses argv. Unknown positional arguments are collected in positionals().
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace hhpim
