// Minimal deterministic JSON and CSV writers for experiment results.
//
// Both writers produce byte-stable output for equal inputs: keys are emitted
// in call order, doubles use std::to_chars shortest round-trip formatting,
// and no locale-dependent formatting is involved — which is what lets the
// experiment runner diff a multi-threaded run against a single-threaded one.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hhpim {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest round-trip decimal rendering of a double ("0.25", "1e+20").
/// NaN/Inf (not valid JSON numbers) render as null.
[[nodiscard]] std::string json_number(double v);

/// Streaming JSON writer with 2-space indentation. Usage:
///
///   JsonWriter w{os};
///   w.begin_object();
///     w.key("runs"); w.begin_array();
///       w.value(1); w.value("two");
///     w.end_array();
///   w.end_object();
///
/// The writer validates nesting via its context stack; misuse (e.g. a value
/// in an object without a preceding key) throws std::logic_error.
///
/// Style::kCompact emits no whitespace at all — one value per line of
/// output. This is what JSON Lines (JSONL) emitters use: the fleet
/// simulator writes one compact object per device, '\n'-separated, so shard
/// files can be streamed, diffed and concatenated line-wise.
class JsonWriter {
 public:
  enum class Style : std::uint8_t { kPretty, kCompact };

  explicit JsonWriter(std::ostream& os, Style style = Style::kPretty)
      : os_(os), style_(style) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view{v}); }
  void value(const std::string& v) { value(std::string_view{v}); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// key + value in one call.
  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// True once the single top-level value is complete.
  [[nodiscard]] bool done() const;

 private:
  enum class Ctx : std::uint8_t { kObjectKey, kObjectValue, kArray };

  void before_value();
  void after_value();
  void newline_indent();

  std::ostream& os_;
  Style style_ = Style::kPretty;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;  // parallel to stack_: no comma yet at this level
  bool top_written_ = false;
};

/// CSV writer (RFC 4180 quoting: fields containing comma, quote or newline
/// are quoted, embedded quotes doubled). One row per call, '\n' line endings.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells);

  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ostream& os_;
};

}  // namespace hhpim
