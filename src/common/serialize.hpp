// Minimal deterministic JSON and CSV writers for experiment results, plus
// the fixed-width binary reader/writer pair the fleet checkpoint format is
// built on.
//
// All writers produce byte-stable output for equal inputs: JSON keys are
// emitted in call order, doubles use std::to_chars shortest round-trip
// formatting (or, for the binary writer, their exact IEEE-754 bit pattern),
// and no locale-dependent formatting is involved — which is what lets the
// experiment runner diff a multi-threaded run against a single-threaded one
// and the fleet simulator restore a checkpoint byte-identically.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hhpim {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest round-trip decimal rendering of a double ("0.25", "1e+20").
/// NaN/Inf (not valid JSON numbers) render as null.
[[nodiscard]] std::string json_number(double v);

/// Streaming JSON writer with 2-space indentation. Usage:
///
///   JsonWriter w{os};
///   w.begin_object();
///     w.key("runs"); w.begin_array();
///       w.value(1); w.value("two");
///     w.end_array();
///   w.end_object();
///
/// The writer validates nesting via its context stack; misuse (e.g. a value
/// in an object without a preceding key) throws std::logic_error.
///
/// Style::kCompact emits no whitespace at all — one value per line of
/// output. This is what JSON Lines (JSONL) emitters use: the fleet
/// simulator writes one compact object per device, '\n'-separated, so shard
/// files can be streamed, diffed and concatenated line-wise.
class JsonWriter {
 public:
  enum class Style : std::uint8_t { kPretty, kCompact };

  explicit JsonWriter(std::ostream& os, Style style = Style::kPretty)
      : os_(os), style_(style) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view{v}); }
  void value(const std::string& v) { value(std::string_view{v}); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// key + value in one call.
  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// True once the single top-level value is complete.
  [[nodiscard]] bool done() const;

 private:
  enum class Ctx : std::uint8_t { kObjectKey, kObjectValue, kArray };

  void before_value();
  void after_value();
  void newline_indent();

  std::ostream& os_;
  Style style_ = Style::kPretty;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;  // parallel to stack_: no comma yet at this level
  bool top_written_ = false;
};

/// Appending binary writer: fixed-width little-endian integers, doubles as
/// their raw IEEE-754 bit pattern (exact round trip, no decimal detour).
/// The byte stream it produces is host-independent for the types used —
/// which is what makes fleet checkpoints portable across processes.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append(v, 2); }
  void u32(std::uint32_t v) { append(v, 4); }
  void u64(std::uint64_t v) { append(v, 8); }
  void i32(std::int32_t v) { append(static_cast<std::uint32_t>(v), 4); }
  void i64(std::int64_t v) { append(static_cast<std::uint64_t>(v), 8); }
  void f64(double v);
  /// Length-prefixed (u64) byte run.
  void blob(std::string_view v);
  /// Raw bytes, no length prefix (caller owns the framing).
  void raw(std::string_view v) { bytes_.append(v); }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  /// Moves the accumulated bytes out; the writer is empty afterwards.
  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  void append(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  }
  std::string bytes_;
};

/// Reader over a ByteWriter stream. Every accessor throws std::runtime_error
/// with a position diagnostic when the stream is shorter than the requested
/// field — a truncated snapshot fails loudly, never misreads.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  [[nodiscard]] std::uint64_t u64() { return take(8); }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(take(4)); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(take(8)); }
  [[nodiscard]] double f64();
  /// Length-prefixed (u64) byte run, as written by ByteWriter::blob.
  [[nodiscard]] std::string_view blob();
  /// `n` raw bytes.
  [[nodiscard]] std::string_view raw(std::size_t n);

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

 private:
  std::uint64_t take(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// CSV writer (RFC 4180 quoting: fields containing comma, quote or newline
/// are quoted, embedded quotes doubled). One row per call, '\n' line endings.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells);

  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ostream& os_;
};

}  // namespace hhpim
