// Strong unit types used throughout the simulator.
//
// Conventions:
//   * Time is an integer number of picoseconds. Integer time makes the
//     discrete-event simulation deterministic (no floating-point event-order
//     ambiguity) and is exact for every latency in the paper's Table III
//     (all are multiples of 10 ps).
//   * Energy is a double number of picojoules.
//   * Power is a double number of milliwatts.
//
// The identity 1 mW * 1 ns == 1 pJ makes Power * Time -> Energy exact in
// these units, which is why they were chosen.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace hhpim {

/// A point in (or span of) simulated time, stored as integer picoseconds.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ps(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time ns(double v) {
    return Time{static_cast<std::int64_t>(std::llround(v * 1e3))};
  }
  [[nodiscard]] static constexpr Time us(double v) {
    return Time{static_cast<std::int64_t>(std::llround(v * 1e6))};
  }
  [[nodiscard]] static constexpr Time ms(double v) {
    return Time{static_cast<std::int64_t>(std::llround(v * 1e9))};
  }
  [[nodiscard]] static constexpr Time s(double v) {
    return Time{static_cast<std::int64_t>(std::llround(v * 1e12))};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_ps() const { return ps_; }
  [[nodiscard]] constexpr double as_ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double as_us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double as_ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double as_s() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(Time a, int k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(int k, Time a) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(std::llround(static_cast<double>(a.ps_) * k))};
  }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ps_ / k}; }
  friend constexpr auto operator<=>(Time a, Time b) = default;

  /// Human-readable rendering with an automatically chosen scale.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

/// An amount of energy in picojoules.
class Energy {
 public:
  constexpr Energy() = default;

  [[nodiscard]] static constexpr Energy pj(double v) { return Energy{v}; }
  [[nodiscard]] static constexpr Energy nj(double v) { return Energy{v * 1e3}; }
  [[nodiscard]] static constexpr Energy uj(double v) { return Energy{v * 1e6}; }
  [[nodiscard]] static constexpr Energy mj(double v) { return Energy{v * 1e9}; }
  [[nodiscard]] static constexpr Energy zero() { return Energy{0.0}; }

  [[nodiscard]] constexpr double as_pj() const { return pj_; }
  [[nodiscard]] constexpr double as_nj() const { return pj_ * 1e-3; }
  [[nodiscard]] constexpr double as_uj() const { return pj_ * 1e-6; }
  [[nodiscard]] constexpr double as_mj() const { return pj_ * 1e-9; }

  constexpr Energy& operator+=(Energy o) { pj_ += o.pj_; return *this; }
  constexpr Energy& operator-=(Energy o) { pj_ -= o.pj_; return *this; }

  friend constexpr Energy operator+(Energy a, Energy b) { return Energy{a.pj_ + b.pj_}; }
  friend constexpr Energy operator-(Energy a, Energy b) { return Energy{a.pj_ - b.pj_}; }
  friend constexpr Energy operator*(Energy a, double k) { return Energy{a.pj_ * k}; }
  friend constexpr Energy operator*(double k, Energy a) { return Energy{a.pj_ * k}; }
  friend constexpr Energy operator/(Energy a, double k) { return Energy{a.pj_ / k}; }
  friend constexpr double operator/(Energy a, Energy b) { return a.pj_ / b.pj_; }
  friend constexpr auto operator<=>(Energy a, Energy b) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Energy(double pj) : pj_(pj) {}
  double pj_ = 0.0;
};

/// Power in milliwatts.
class Power {
 public:
  constexpr Power() = default;

  [[nodiscard]] static constexpr Power mw(double v) { return Power{v}; }
  [[nodiscard]] static constexpr Power uw(double v) { return Power{v * 1e-3}; }
  [[nodiscard]] static constexpr Power w(double v) { return Power{v * 1e3}; }
  [[nodiscard]] static constexpr Power zero() { return Power{0.0}; }

  [[nodiscard]] constexpr double as_mw() const { return mw_; }
  [[nodiscard]] constexpr double as_uw() const { return mw_ * 1e3; }
  [[nodiscard]] constexpr double as_w() const { return mw_ * 1e-3; }

  constexpr Power& operator+=(Power o) { mw_ += o.mw_; return *this; }

  friend constexpr Power operator+(Power a, Power b) { return Power{a.mw_ + b.mw_}; }
  friend constexpr Power operator-(Power a, Power b) { return Power{a.mw_ - b.mw_}; }
  friend constexpr Power operator*(Power a, double k) { return Power{a.mw_ * k}; }
  friend constexpr Power operator*(double k, Power a) { return Power{a.mw_ * k}; }
  friend constexpr auto operator<=>(Power a, Power b) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Power(double mw) : mw_(mw) {}
  double mw_ = 0.0;
};

/// 1 mW over 1 ns is exactly 1 pJ.
[[nodiscard]] constexpr Energy operator*(Power p, Time t) {
  return Energy::pj(p.as_mw() * t.as_ns());
}
[[nodiscard]] constexpr Energy operator*(Time t, Power p) { return p * t; }

/// Average power over an interval. Returns zero power for a zero interval.
[[nodiscard]] constexpr Power operator/(Energy e, Time t) {
  return t == Time::zero() ? Power::zero() : Power::mw(e.as_pj() / t.as_ns());
}

/// Clock frequency in hertz; converts to/from cycle periods.
class Frequency {
 public:
  constexpr Frequency() = default;
  [[nodiscard]] static constexpr Frequency hz(double v) { return Frequency{v}; }
  [[nodiscard]] static constexpr Frequency mhz(double v) { return Frequency{v * 1e6}; }
  [[nodiscard]] static constexpr Frequency ghz(double v) { return Frequency{v * 1e9}; }

  [[nodiscard]] constexpr double as_hz() const { return hz_; }
  [[nodiscard]] constexpr double as_mhz() const { return hz_ * 1e-6; }
  /// Duration of one clock period.
  [[nodiscard]] constexpr Time period() const { return Time::ps(static_cast<std::int64_t>(std::llround(1e12 / hz_))); }

  friend constexpr auto operator<=>(Frequency a, Frequency b) = default;

 private:
  constexpr explicit Frequency(double hz) : hz_(hz) {}
  double hz_ = 0.0;
};

namespace literals {
constexpr Time operator""_ps(unsigned long long v) { return Time::ps(static_cast<std::int64_t>(v)); }
constexpr Time operator""_ns(long double v) { return Time::ns(static_cast<double>(v)); }
constexpr Time operator""_ns(unsigned long long v) { return Time::ns(static_cast<double>(v)); }
constexpr Time operator""_us(long double v) { return Time::us(static_cast<double>(v)); }
constexpr Time operator""_us(unsigned long long v) { return Time::us(static_cast<double>(v)); }
constexpr Time operator""_ms(long double v) { return Time::ms(static_cast<double>(v)); }
constexpr Time operator""_ms(unsigned long long v) { return Time::ms(static_cast<double>(v)); }
constexpr Energy operator""_pJ(long double v) { return Energy::pj(static_cast<double>(v)); }
constexpr Energy operator""_pJ(unsigned long long v) { return Energy::pj(static_cast<double>(v)); }
constexpr Energy operator""_nJ(long double v) { return Energy::nj(static_cast<double>(v)); }
constexpr Energy operator""_uJ(long double v) { return Energy::uj(static_cast<double>(v)); }
constexpr Power operator""_mW(long double v) { return Power::mw(static_cast<double>(v)); }
constexpr Power operator""_mW(unsigned long long v) { return Power::mw(static_cast<double>(v)); }
}  // namespace literals

}  // namespace hhpim
