#include "common/serialize.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace hhpim {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void JsonWriter::newline_indent() {
  if (style_ == Style::kCompact) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (top_written_) throw std::logic_error("JsonWriter: second top-level value");
    return;
  }
  const Ctx ctx = stack_.back();
  if (ctx == Ctx::kObjectKey) {
    throw std::logic_error("JsonWriter: value in object without a key");
  }
  if (ctx == Ctx::kArray) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
    newline_indent();
  }
}

void JsonWriter::after_value() {
  if (stack_.empty()) {
    top_written_ = true;
  } else if (stack_.back() == Ctx::kObjectValue) {
    stack_.back() = Ctx::kObjectKey;  // next must be a key
  }
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::kObjectKey);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  if (stack_.empty() || (stack_.back() != Ctx::kObjectKey)) {
    throw std::logic_error("JsonWriter: end_object outside object (or after dangling key)");
  }
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  after_value();
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: end_array outside array");
  }
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  after_value();
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Ctx::kObjectKey) {
    throw std::logic_error("JsonWriter: key outside object (or two keys in a row)");
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
  os_ << '"' << json_escape(k) << (style_ == Style::kCompact ? "\":" : "\": ");
  stack_.back() = Ctx::kObjectValue;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  after_value();
}

void JsonWriter::value(double v) {
  before_value();
  os_ << json_number(v);
  after_value();
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  after_value();
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  after_value();
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  after_value();
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
  after_value();
}

bool JsonWriter::done() const { return top_written_ && stack_.empty(); }

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{cell};
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::blob(std::string_view v) {
  u64(v.size());
  raw(v);
}

std::uint64_t ByteReader::take(std::size_t n) {
  if (remaining() < n) {
    throw std::runtime_error(
        "snapshot: truncated stream (need " + std::to_string(n) +
        " bytes at offset " + std::to_string(pos_) + ", have " +
        std::to_string(remaining()) + ")");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += n;
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string_view ByteReader::blob() {
  const std::uint64_t n = u64();
  if (n > remaining()) {
    throw std::runtime_error(
        "snapshot: truncated blob (declares " + std::to_string(n) +
        " bytes at offset " + std::to_string(pos_) + ", have " +
        std::to_string(remaining()) + ")");
  }
  return raw(static_cast<std::size_t>(n));
}

std::string_view ByteReader::raw(std::size_t n) {
  if (remaining() < n) {
    throw std::runtime_error(
        "snapshot: truncated stream (need " + std::to_string(n) +
        " bytes at offset " + std::to_string(pos_) + ", have " +
        std::to_string(remaining()) + ")");
  }
  const std::string_view v = bytes_.substr(pos_, n);
  pos_ += n;
  return v;
}

}  // namespace hhpim
