// Deterministic random number generation for workload synthesis.
//
// xoshiro256** seeded through SplitMix64: fast, high quality, and — unlike
// std::mt19937 + std::uniform_* — bit-identical across standard libraries,
// which keeps the benchmark workloads reproducible everywhere.
#pragma once

#include <cstdint>

namespace hhpim {

/// SplitMix64; used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses rejection sampling (no modulo bias).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace hhpim
