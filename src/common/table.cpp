#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace hhpim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void Table::add_rule() { pending_rule_ = true; }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (const auto w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  }();

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::ostringstream out;
  out << rule << render_row(header_) << rule;
  for (const auto& row : rows_) {
    if (row.rule_before) out << rule;
    out << render_row(row.cells);
  }
  out << rule;
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.render(); }

}  // namespace hhpim
