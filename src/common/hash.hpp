// Streaming FNV-1a (64-bit) over canonical scalar encodings.
//
// The one hashing utility shared by the digest-producing layers:
// nn::Model::topology_hash(), sys::ArchConfig::config_hash(), and the
// placement-LUT cache key (placement/lut_cache.hpp). Header-only so
// dependency-light subsystems (nn) can use it without pulling anything else
// out of common.
#pragma once

#include <bit>
#include <cstdint>

namespace hhpim {

class Fnv1a {
 public:
  Fnv1a& add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  Fnv1a& add(std::int64_t v) { return add(static_cast<std::uint64_t>(v)); }
  Fnv1a& add(int v) { return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  /// Hashes the exact bit pattern, except that -0.0 is canonicalized to +0.0
  /// (the two compare equal; equal values must never hash apart).
  Fnv1a& add(double v) {
    if (v == 0.0) v = 0.0;
    return add(std::bit_cast<std::uint64_t>(v));
  }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace hhpim
