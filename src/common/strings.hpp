// Small string helpers shared by the assembler, CLI parser and table printer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hhpim {

/// Strips leading and trailing whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Splits on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

[[nodiscard]] std::string to_lower(std::string_view s);

/// Fixed-precision decimal rendering ("3.142").
[[nodiscard]] std::string format_double(double v, int precision);

/// Engineering notation with an SI prefix ("1.234 mJ", "42.000 ns").
/// `v` is in base units (seconds, joules, ...).
[[nodiscard]] std::string format_si(double v, int precision, std::string_view unit);

}  // namespace hhpim
