#include "common/log.hpp"

#include <cstdio>

namespace hhpim {
namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty -> stderr
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace hhpim
