#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/units.hpp"

namespace hhpim {

std::string trim(std::string_view s) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin)) != 0) ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(*(end - 1))) != 0) --end;
  return std::string{begin, end};
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_si(double v, int precision, std::string_view unit) {
  struct Scale { double factor; const char* prefix; };
  static constexpr Scale kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
  };
  const double mag = std::abs(v);
  for (const auto& s : kScales) {
    if (mag >= s.factor || (&s == &kScales[std::size(kScales) - 1])) {
      return format_double(v / s.factor, precision) + " " + s.prefix + std::string{unit};
    }
  }
  return format_double(v, precision) + " " + std::string{unit};
}

std::string Time::to_string() const {
  const double ns = as_ns();
  return format_si(ns * 1e-9, 3, "s");
}

std::string Energy::to_string() const {
  return format_si(as_pj() * 1e-12, 3, "J");
}

std::string Power::to_string() const {
  return format_si(as_mw() * 1e-3, 3, "W");
}

}  // namespace hhpim
