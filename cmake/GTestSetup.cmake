# Resolve a GoogleTest to link the test suites against, in order of preference:
#
#   1. HHPIM_FORCE_GTEST_SHIM=ON       -> bundled shim under third_party/minigtest
#   2. installed GTest package          -> find_package(GTest)
#   3. distro source tree               -> add_subdirectory(/usr/src/googletest)
#   4. FetchContent download            -> probed first so an offline configure
#                                          does not hard-fail
#   5. bundled shim                     -> third_party/minigtest
#
# Every path ends with a usable `GTest::gtest_main` target. The shim (and the
# offline probe in step 4) exist so the tier-1 verify works on machines with no
# network and no gtest install.

set(HHPIM_GTEST_PROVIDER "" CACHE INTERNAL "Which GoogleTest provider was selected")

function(_hhpim_use_shim)
  add_subdirectory(${CMAKE_SOURCE_DIR}/third_party/minigtest
                   ${CMAKE_BINARY_DIR}/third_party/minigtest)
  set(HHPIM_GTEST_PROVIDER "bundled-shim" CACHE INTERNAL "")
endfunction()

if(HHPIM_FORCE_GTEST_SHIM)
  _hhpim_use_shim()
else()
  find_package(GTest QUIET)
  if(TARGET GTest::gtest_main)
    set(HHPIM_GTEST_PROVIDER "find_package" CACHE INTERNAL "")
  elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
    # Debian/Ubuntu libgtest-dev ships sources only; build them in-tree.
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    add_subdirectory(/usr/src/googletest ${CMAKE_BINARY_DIR}/third_party/googletest
                     EXCLUDE_FROM_ALL)
    set(HHPIM_GTEST_PROVIDER "system-source" CACHE INTERNAL "")
  else()
    # Probe the download non-fatally before handing the URL to FetchContent;
    # a plain FetchContent_MakeAvailable aborts the configure when offline.
    set(_gtest_url
        https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz)
    set(_gtest_tarball ${CMAKE_BINARY_DIR}/third_party/googletest-src.tar.gz)
    if(NOT EXISTS ${_gtest_tarball})
      file(DOWNLOAD ${_gtest_url} ${_gtest_tarball}
           TIMEOUT 30 STATUS _gtest_dl INACTIVITY_TIMEOUT 15)
      list(GET _gtest_dl 0 _gtest_dl_code)
      if(NOT _gtest_dl_code EQUAL 0)
        file(REMOVE ${_gtest_tarball})
      endif()
    endif()
    if(EXISTS ${_gtest_tarball})
      include(FetchContent)
      set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
      set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
      FetchContent_Declare(googletest URL ${_gtest_tarball})
      FetchContent_MakeAvailable(googletest)
      set(HHPIM_GTEST_PROVIDER "fetchcontent" CACHE INTERNAL "")
    else()
      message(STATUS "GoogleTest: no install, no /usr/src/googletest, download failed "
                     "-> using bundled minimal shim")
      _hhpim_use_shim()
    endif()
  endif()
endif()

# The source-tree / FetchContent paths define plain `gtest_main`; normalise to
# the namespaced target the tests link against.
if(NOT TARGET GTest::gtest_main AND TARGET gtest_main)
  add_library(GTest::gtest_main ALIAS gtest_main)
  add_library(GTest::gtest ALIAS gtest)
endif()

message(STATUS "GoogleTest provider: ${HHPIM_GTEST_PROVIDER}")
