#!/usr/bin/env python3
"""Markdown link checker for this repo's docs (stdlib only).

Checks, for every markdown file passed on the command line:
  * relative links resolve to an existing file or directory;
  * intra-repo anchors (``file.md#section`` or ``#section``) match a heading
    in the target file (GitHub slug rules: lowercase, spaces -> dashes,
    punctuation stripped);
  * reference-style links ``[text][label]`` have a matching definition.

External links (http/https/mailto) are *not* fetched — CI must not depend
on the network. Inline code spans and fenced code blocks are ignored, so a
literal ``[i]`` in C++ sample code is not a link.

Usage: python3 tools/check_links.py README.md docs/*.md
Exit status: 0 = all links ok, 1 = at least one broken link (listed).
"""

import os
import re
import sys
import unicodedata

INLINE_LINK = re.compile(r"(!?)\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_LINK = re.compile(r"(?<!\])\[([^\]]+)\]\[([^\]]*)\]")
REFERENCE_DEF = re.compile(r"^\s{0,3}\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
FENCE = re.compile(r"```.*?```|~~~.*?~~~", re.DOTALL)
CODE_SPAN = re.compile(r"`[^`\n]*`")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, keep word chars and
    dashes, spaces become dashes."""
    text = re.sub(r"[*_`]|\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = unicodedata.normalize("NFKD", text)
    text = text.lower().strip()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_code(markdown: str) -> str:
    """Blank out fenced blocks and inline code (keeps offsets stable)."""
    markdown = FENCE.sub(lambda m: " " * len(m.group(0)), markdown)
    return CODE_SPAN.sub(lambda m: " " * len(m.group(0)), markdown)


def anchors_of(path: str, cache: dict) -> set:
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                text = strip_code(f.read())
        except OSError:
            cache[path] = set()
            return cache[path]
        slugs = {}
        anchors = set()
        for m in HEADING.finditer(text):
            slug = github_slug(m.group(1))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(path: str, anchor_cache: dict) -> list:
    errors = []
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    text = strip_code(raw)
    base = os.path.dirname(path) or "."

    defs = {m.group(1).lower(): m.group(2) for m in REFERENCE_DEF.finditer(text)}
    targets = [m.group(3) for m in INLINE_LINK.finditer(text)]
    for m in REFERENCE_LINK.finditer(text):
        label = (m.group(2) or m.group(1)).lower()
        if label in defs:
            targets.append(defs[label])
        else:
            errors.append(f"{path}: undefined reference link [{label}]")
    targets.extend(defs.values())

    for target in targets:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                errors.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path
        if anchor and resolved.endswith(".md"):
            if anchor not in anchors_of(resolved, anchor_cache):
                errors.append(f"{path}: dead anchor -> {target}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    anchor_cache = {}
    errors = []
    for path in argv[1:]:
        errors.extend(check_file(path, anchor_cache))
    for e in errors:
        print(e, file=sys.stderr)
    checked = len(argv) - 1
    if errors:
        print(f"check_links: {len(errors)} broken link(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"check_links: {checked} file(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
