#!/usr/bin/env python3
"""Compare a fresh bench JSON against a committed baseline.

Matches entries of the top-level "results" array by their "name" field,
prints fresh/baseline ratios for every shared numeric field, and checks one
watched metric against a regression threshold:

    bench_diff.py BENCH_fleet.json fresh.json \
        --metric devices_per_s --threshold 0.7

flags a regression when fresh < threshold * baseline for a
higher-is-better metric (pass --lower-is-better for latency-style metrics,
where fresh > baseline / threshold flags instead). Top-level numeric fields
(e.g. speedup_t8_vs_t1) are reported too, but only the watched per-result
metric gates.

Exit status: 0 when clean (or with --warn-only, always), 1 on regression,
2 on usage/shape errors. CI runs the fleet bench with --warn-only: shared
runners are noisy, so the report is advisory there; the committed baseline
regenerated on the 1-core build container is the authoritative trajectory
(see docs/PERF.md).
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"bench_diff: {path}: expected a JSON object")
    return doc


def numeric_fields(obj: dict) -> dict[str, float]:
    return {
        k: float(v)
        for k, v in obj.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def by_name(doc: dict, path: str) -> dict[str, dict]:
    results = doc.get("results")
    if not isinstance(results, list):
        sys.exit(f"bench_diff: {path}: no 'results' array")
    out: dict[str, dict] = {}
    for entry in results:
        if isinstance(entry, dict) and isinstance(entry.get("name"), str):
            out[entry["name"]] = entry
    return out


def fmt_ratio(fresh: float, base: float) -> str:
    if base == 0.0:
        return "   n/a"
    return f"{fresh / base:6.3f}"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("fresh", help="freshly generated JSON")
    ap.add_argument("--metric", default="devices_per_s",
                    help="per-result field gating the regression check")
    ap.add_argument("--threshold", type=float, default=0.7,
                    help="allowed fresh/baseline ratio before flagging "
                         "(default 0.7 = tolerate 30%% regression)")
    ap.add_argument("--lower-is-better", action="store_true",
                    help="watched metric is latency-style (flag increases)")
    ap.add_argument("--warn-only", action="store_true",
                    help="print warnings but always exit 0 (noisy CI runners)")
    args = ap.parse_args()
    if not 0.0 < args.threshold <= 1.0:
        ap.error("--threshold must be in (0, 1]")

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    base_results = by_name(base_doc, args.baseline)
    fresh_results = by_name(fresh_doc, args.fresh)

    regressions: list[str] = []
    print(f"bench_diff: {args.fresh} vs baseline {args.baseline} "
          f"(metric {args.metric}, threshold {args.threshold})")

    for name, base in base_results.items():
        fresh = fresh_results.get(name)
        if fresh is None:
            print(f"  {name}: MISSING in fresh output")
            regressions.append(f"{name}: missing")
            continue
        base_num = numeric_fields(base)
        fresh_num = numeric_fields(fresh)
        print(f"  {name}:")
        for field in sorted(base_num):
            if field not in fresh_num:
                continue
            b, f = base_num[field], fresh_num[field]
            print(f"    {field:<20} base={b:<16.6g} fresh={f:<16.6g} "
                  f"ratio={fmt_ratio(f, b)}")
        if args.metric in base_num and args.metric in fresh_num:
            b, f = base_num[args.metric], fresh_num[args.metric]
            if b > 0:
                ratio = f / b
                bad = (ratio > 1.0 / args.threshold) if args.lower_is_better \
                    else (ratio < args.threshold)
                if bad:
                    regressions.append(
                        f"{name}: {args.metric} {f:.6g} vs baseline {b:.6g} "
                        f"(ratio {ratio:.3f}, threshold {args.threshold})")

    shared_top = numeric_fields(base_doc).keys() & numeric_fields(fresh_doc).keys()
    if shared_top:
        print("  top-level:")
        for field in sorted(shared_top):
            b = float(base_doc[field])
            f = float(fresh_doc[field])
            print(f"    {field:<20} base={b:<16.6g} fresh={f:<16.6g} "
                  f"ratio={fmt_ratio(f, b)}")

    for name in fresh_results.keys() - base_results.keys():
        print(f"  {name}: new in fresh output (no baseline)")

    if regressions:
        for r in regressions:
            print(f"bench_diff: {'WARNING' if args.warn_only else 'REGRESSION'}: {r}")
        return 0 if args.warn_only else 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
