#!/usr/bin/env python3
"""Compare fresh bench JSON against committed baselines and gate on floors.

Positional arguments are BASELINE FRESH pairs (one or more):

    bench_diff.py BENCH_fleet.json fresh-fleet.json \
        [BENCH_lut_cache.json fresh-lut.json ...] \
        --metric devices_per_s --threshold 0.7 \
        --require speedup_t8_vs_t1:1.5

Within each pair, entries of the top-level "results" array (or google-
benchmark's "benchmarks" array) are matched by their "name" field; the
tool prints fresh/baseline ratios for every shared numeric field and
checks the watched --metric against the regression threshold: fresh <
threshold * baseline flags for a higher-is-better metric (pass
--lower-is-better for latency-style metrics, where fresh > baseline /
threshold flags instead).

--require METRIC:MIN (repeatable) asserts an absolute floor on a
top-level numeric metric of the fresh documents — e.g. the fleet bench's
speedup_t8_vs_t1, which gates parallel scaling in CI (docs/PERF.md
"Parallel scaling"). Floors are hard failures even under --warn-only:
ratio checks against a baseline from a different machine are advisory by
nature, but an absolute floor measures only the machine the fresh run
executed on. A required metric that appears in no fresh document is a
shape error (exit 2), so a renamed field cannot silently disarm a gate.

Exit status: 0 when clean (ratio warnings allowed under --warn-only),
1 on regression or missed floor, 2 on usage/shape errors.
"""

from __future__ import annotations

import argparse
import json
import sys


def die(msg: str) -> "None":
    """Usage/shape error: print and exit 2 (1 is reserved for regressions)."""
    print(f"bench_diff: {msg}", file=sys.stderr)
    raise SystemExit(2)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: expected a JSON object")
    return doc


def numeric_fields(obj: dict) -> dict[str, float]:
    return {
        k: float(v)
        for k, v in obj.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def by_name(doc: dict, path: str) -> dict[str, dict]:
    # Native bench docs carry "results"; google-benchmark emits "benchmarks".
    results = doc.get("results")
    if not isinstance(results, list):
        results = doc.get("benchmarks")
    if not isinstance(results, list):
        die(f"{path}: no 'results' or 'benchmarks' array")
    out: dict[str, dict] = {}
    for entry in results:
        if isinstance(entry, dict) and isinstance(entry.get("name"), str):
            out[entry["name"]] = entry
    return out


def parse_require(spec: str) -> tuple[str, float]:
    metric, sep, floor = spec.rpartition(":")
    if not sep or not metric:
        die(f"--require expects METRIC:MIN, got '{spec}'")
    try:
        return metric, float(floor)
    except ValueError:
        die(f"--require {spec}: '{floor}' is not a number")


def fmt_ratio(fresh: float, base: float) -> str:
    if base == 0.0:
        return "   n/a"
    return f"{fresh / base:6.3f}"


def diff_pair(baseline: str, fresh: str, args: argparse.Namespace,
              regressions: list[str], fresh_top: dict[str, float]) -> None:
    base_doc = load(baseline)
    fresh_doc = load(fresh)
    base_results = by_name(base_doc, baseline)
    fresh_results = by_name(fresh_doc, fresh)

    print(f"bench_diff: {fresh} vs baseline {baseline} "
          f"(metric {args.metric}, threshold {args.threshold})")

    for name, base in base_results.items():
        entry = fresh_results.get(name)
        if entry is None:
            print(f"  {name}: MISSING in fresh output")
            regressions.append(f"{name}: missing")
            continue
        base_num = numeric_fields(base)
        fresh_num = numeric_fields(entry)
        print(f"  {name}:")
        for field in sorted(base_num):
            if field not in fresh_num:
                continue
            b, f = base_num[field], fresh_num[field]
            print(f"    {field:<20} base={b:<16.6g} fresh={f:<16.6g} "
                  f"ratio={fmt_ratio(f, b)}")
        if args.metric in base_num and args.metric in fresh_num:
            b, f = base_num[args.metric], fresh_num[args.metric]
            if b > 0:
                ratio = f / b
                bad = (ratio > 1.0 / args.threshold) if args.lower_is_better \
                    else (ratio < args.threshold)
                if bad:
                    regressions.append(
                        f"{name}: {args.metric} {f:.6g} vs baseline {b:.6g} "
                        f"(ratio {ratio:.3f}, threshold {args.threshold})")

    shared_top = numeric_fields(base_doc).keys() & numeric_fields(fresh_doc).keys()
    if shared_top:
        print("  top-level:")
        for field in sorted(shared_top):
            b = float(base_doc[field])
            f = float(fresh_doc[field])
            print(f"    {field:<20} base={b:<16.6g} fresh={f:<16.6g} "
                  f"ratio={fmt_ratio(f, b)}")

    for name in fresh_results.keys() - base_results.keys():
        print(f"  {name}: new in fresh output (no baseline)")

    # First fresh doc carrying a metric wins; floors only read fresh docs.
    for field, value in numeric_fields(fresh_doc).items():
        fresh_top.setdefault(field, value)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="BASELINE FRESH",
                    help="one or more BASELINE FRESH JSON pairs")
    ap.add_argument("--metric", default="devices_per_s",
                    help="per-result field gating the regression check")
    ap.add_argument("--threshold", type=float, default=0.7,
                    help="allowed fresh/baseline ratio before flagging "
                         "(default 0.7 = tolerate 30%% regression)")
    ap.add_argument("--lower-is-better", action="store_true",
                    help="watched metric is latency-style (flag increases)")
    ap.add_argument("--require", action="append", default=[], metavar="METRIC:MIN",
                    help="absolute floor on a fresh top-level metric; hard "
                         "failure even with --warn-only (repeatable)")
    ap.add_argument("--warn-only", action="store_true",
                    help="ratio regressions print as warnings and exit 0 "
                         "(noisy CI runners); --require floors still fail")
    args = ap.parse_args()
    if not 0.0 < args.threshold <= 1.0:
        ap.error("--threshold must be in (0, 1]")
    if len(args.files) % 2 != 0:
        ap.error("positional arguments must be BASELINE FRESH pairs "
                 f"(got {len(args.files)} paths)")
    floors = [parse_require(spec) for spec in args.require]

    regressions: list[str] = []
    fresh_top: dict[str, float] = {}
    for i in range(0, len(args.files), 2):
        diff_pair(args.files[i], args.files[i + 1], args, regressions, fresh_top)

    floor_failures: list[str] = []
    for metric, floor in floors:
        if metric not in fresh_top:
            die(f"--require {metric}:{floor:g}: metric not found in any "
                f"fresh document's top level")
        value = fresh_top[metric]
        status = "ok" if value >= floor else "FAIL"
        print(f"bench_diff: require {metric} >= {floor:g}: "
              f"measured {value:.6g} ({status})")
        if value < floor:
            floor_failures.append(
                f"{metric} {value:.6g} below required floor {floor:g}")

    for r in regressions:
        print(f"bench_diff: {'WARNING' if args.warn_only else 'REGRESSION'}: {r}")
    for r in floor_failures:
        print(f"bench_diff: FLOOR FAILED: {r}")
    if floor_failures:
        return 1
    if regressions and not args.warn_only:
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
