// Design-space exploration with NVSim-lite: what supply voltage should the
// LP cluster run at? Sweeps Vdd_LP as a ConfigVariant axis of one experiment
// grid — each point plugs its NVSim-lite spec into SystemConfig::power and
// runs the full HH-PIM simulator on a mixed workload — the kind of study the
// paper's HP/LP choice (1.2 V / 0.8 V) came from.
//
//   ./design_space [--slices=12] [--threads=N] [--json=PATH]
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "mem/nvsim_lite.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const nn::Model model = nn::zoo::efficientnet_b0();
  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 12));

  const mem::NvsimLite nvsim;
  std::printf("LP-cluster supply sweep (HP fixed at 1.2 V), %s, pulsing workload:\n\n",
              model.name().c_str());

  // One grid: the Vdd_LP axis is a ConfigVariant per supply point, each
  // carrying its NVSim-lite spec through the SystemConfig::power override.
  exp::ExperimentSpec spec;
  spec.name = "design-space-vdd-lp";
  spec.archs = {sys::ArchConfig::hhpim()};
  spec.models = {model};
  spec.scenarios = {exp::ScenarioSpec::of(workload::Scenario::kPulsing, wc)};
  const double vdds[] = {1.1, 1.0, 0.9, 0.8, 0.7, 0.6};
  for (const double vdd : vdds) {
    sys::SystemConfig cfg;
    cfg.power = nvsim.make_spec(1.2, vdd);
    cfg.lut_t_entries = 64;
    cfg.lut_k_blocks = 64;
    spec.variants.push_back({format_double(vdd, 1), cfg});
  }

  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const exp::ResultSet results = exp::Runner{opts}.run(spec);

  Table t{{"Vdd_LP (V)", "LP MAC (ns)", "LP SRAM leak (mW)", "T", "total energy",
           "leakage", "misses"}};
  for (const double vdd : vdds) {
    const auto raw = nvsim.make_spec(1.2, vdd);
    const exp::RunResult& r = results.at("HH-PIM", model.name(), "high-low-pulsing",
                                         format_double(vdd, 1));
    t.add_row({format_double(vdd, 1),
               format_double(raw.lp.pe.mac_latency.as_ns(), 2),
               format_double(raw.lp.sram_power.leakage.as_mw(), 2),
               Time::ps(r.slice_ps).to_string(), r.total_energy().to_string(),
               Energy::pj(r.leakage_energy_pj).to_string(),
               std::to_string(r.deadline_violations)});
  }
  std::printf("%s\n", t.render().c_str());

  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    results.write_json(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("Reading: lowering Vdd_LP cuts LP leakage and per-access energy but\n"
              "stretches the LP cluster's latency, pushing work back to the HP side —\n"
              "the paper's 0.8 V choice sits near the sweet spot (and matches fabricated\n"
              "STT-MRAM chip specs).\n");
  return 0;
}
