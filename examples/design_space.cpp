// Design-space exploration with NVSim-lite: what supply voltage should the
// LP cluster run at? Sweeps Vdd_LP, rebuilds the cost model, and reports the
// energy of a mixed workload — the kind of study the paper's HP/LP choice
// (1.2 V / 0.8 V) came from.
//
//   ./design_space [--model=effnet] [--slices=12]
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hhpim/processor.hpp"
#include "mem/nvsim_lite.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const nn::Model model = nn::zoo::efficientnet_b0();
  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 12));
  const auto loads = workload::generate(workload::Scenario::kPulsing, wc);

  const mem::NvsimLite nvsim;
  std::printf("LP-cluster supply sweep (HP fixed at 1.2 V), %s, pulsing workload:\n\n",
              model.name().c_str());

  Table t{{"Vdd_LP (V)", "LP MAC (ns)", "LP SRAM leak (mW)", "peak task", "T",
           "total energy"}};
  for (const double vdd : {1.1, 1.0, 0.9, 0.8, 0.7, 0.6}) {
    const auto spec = nvsim.make_spec(1.2, vdd);
    // Processor derives everything from the spec via the system config; we
    // emulate by constructing the cost side manually through SystemConfig's
    // spec path — the spec swap is exposed for exploration via a small local
    // subclass-free trick: rebuild with paper arch but custom spec through
    // the placement cost model.
    const auto cost = placement::CostModel::build(
        spec.scaled(4.0), sys::ArchConfig::hhpim().hp_shape(),
        sys::ArchConfig::hhpim().lp_shape(), model.uses_per_weight());
    const auto peak_alloc = sys::balanced_sram_split(cost, model.effective_params());
    const Time peak = placement::task_time(cost, peak_alloc);
    const Time slice = peak * 10 * 1.01;

    placement::LutParams lp;
    lp.slice = slice;
    lp.total_weights = model.effective_params();
    lp.t_entries = 64;
    lp.k_blocks = 64;
    const auto lut = placement::AllocationLut::build(cost, lp);

    // Analytic scenario energy from the LUT (dyn + quantized retention),
    // aggregated over the load trace.
    Energy total = Energy::zero();
    for (const int n : loads) {
      if (n == 0) continue;
      const auto& e = lut.lookup(slice / n);
      if (!e.feasible) continue;
      total += e.predicted_task_energy * static_cast<double>(n);
    }
    t.add_row({format_double(vdd, 1),
               format_double(spec.lp.pe.mac_latency.as_ns(), 2),
               format_double(spec.lp.sram_power.leakage.as_mw(), 2),
               peak.to_string(), slice.to_string(), total.to_string()});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: lowering Vdd_LP cuts LP leakage and per-access energy but\n"
              "stretches the LP cluster's latency, pushing work back to the HP side —\n"
              "the paper's 0.8 V choice sits near the sweet spot (and matches fabricated\n"
              "STT-MRAM chip specs).\n");
  return 0;
}
