// Experiment-grid CLI: runs an architecture x model x scenario grid through
// the parallel experiment runner and writes JSON/CSV results.
//
//   ./experiment_grid [--threads=N] [--slices=K] [--lut=R] [--seed=S]
//                     [--models=all|EfficientNet-B0,ResNet-18,...]
//                     [--scenarios=paper|extended|all|name1,name2,...]
//                     [--trace=FILE]        # adds a trace-replay scenario
//                     [--no-lut-cache]      # rebuild LUTs per run (cold path)
//                     [--json=PATH] [--csv=PATH] [--with-slices] [--quiet]
//
// The same spec at any --threads value produces byte-identical JSON/CSV —
// CI diffs --threads=1 against --threads=2 as a determinism smoke check.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "placement/lut_cache.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};

  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 20));

  exp::ExperimentSpec spec;
  spec.name = "experiment-grid";
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed2025));
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());

  // Model axis.
  const std::string models_arg = cli.get("models", "all");
  if (models_arg == "all") {
    spec.models = nn::zoo::paper_models();
  } else {
    for (const std::string& name : split(models_arg, ',')) {
      auto m = nn::zoo::find_model(trim(name));
      if (!m.has_value()) {
        std::fprintf(stderr, "unknown model '%s' (known: %s)\n", name.c_str(),
                     nn::zoo::known_model_names().c_str());
        return 1;
      }
      spec.models.push_back(std::move(*m));
    }
  }

  // Scenario axis.
  const std::string scenarios_arg = cli.get("scenarios", "paper");
  std::vector<workload::Scenario> kinds;
  if (scenarios_arg == "paper" || scenarios_arg == "all") {
    const auto s = workload::all_scenarios();
    kinds.assign(s.begin(), s.end());
  }
  if (scenarios_arg == "extended" || scenarios_arg == "all") {
    kinds.push_back(workload::Scenario::kRamp);
    kinds.push_back(workload::Scenario::kBurstDecay);
    kinds.push_back(workload::Scenario::kPoisson);
  }
  if (kinds.empty()) {
    for (const std::string& name : split(scenarios_arg, ',')) {
      const auto s = workload::from_string(trim(name));
      if (!s.has_value()) {
        std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
        return 1;
      }
      kinds.push_back(*s);
    }
  }
  for (const auto kind : kinds) {
    if (kind == workload::Scenario::kTrace) {
      std::fprintf(stderr, "trace-replay needs a file: pass --trace=FILE instead of "
                           "naming it in --scenarios\n");
      return 1;
    }
    spec.scenarios.push_back(exp::ScenarioSpec::of(kind, wc));
  }
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) {
    spec.scenarios.push_back(
        exp::ScenarioSpec::fixed("trace:" + trace_path, workload::load_trace(trace_path)));
  }

  // Base config (LUT resolution keeps small grids fast).
  sys::SystemConfig base;
  const auto lut = static_cast<int>(cli.get_int("lut", 96));
  base.lut_t_entries = lut;
  base.lut_k_blocks = lut;
  spec.variants.push_back({"", base});

  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.keep_slices = cli.get_bool("with-slices", false);
  opts.share_luts = !cli.get_bool("no-lut-cache", false);
  placement::LutCache lut_cache;  // private per invocation, deterministic stats
  opts.lut_cache = &lut_cache;
  const exp::Runner runner{opts};

  const exp::ResultSet results = runner.run(spec);

  if (!cli.get_bool("quiet", false)) {
    const auto cache_stats = lut_cache.stats();
    std::printf("grid: %zu archs x %zu models x %zu scenarios = %zu runs "
                "(%u threads, %d slices; LUT cache: %s, %llu built, %llu shared)\n\n",
                spec.archs.size(), spec.models.size(), spec.scenarios.size(),
                results.size(), exp::Runner::resolve_threads(opts.threads), wc.slices,
                opts.share_luts ? "on" : "off",
                static_cast<unsigned long long>(cache_stats.misses),
                static_cast<unsigned long long>(cache_stats.hits));
    Table t{{"Arch", "Model", "Scenario", "total energy", "mean/slice", "misses",
             "busy (sum)"}};
    for (const auto& r : results.runs()) {
      t.add_row({r.arch, r.model, r.scenario, r.total_energy().to_string(),
                 Energy::pj(r.mean_slice_energy_pj).to_string(),
                 std::to_string(r.deadline_violations),
                 Time::ps(r.busy_time_ps).to_string()});
    }
    std::printf("%s\n", t.render().c_str());
  }

  const std::string json_path = cli.get("json", "");
  if (json_path == "-") {
    results.write_json(std::cout, opts.keep_slices);
  } else if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    results.write_json(out, opts.keep_slices);
    if (!cli.get_bool("quiet", false)) std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string csv_path = cli.get("csv", "");
  if (csv_path == "-") {
    results.write_csv(std::cout);
  } else if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    results.write_csv(out);
    if (!cli.get_bool("quiet", false)) std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
