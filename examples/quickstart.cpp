// Quickstart: build an HH-PIM processor for a TinyML model, run a small
// fluctuating workload, and print where the optimizer placed the weights and
// what it cost.
//
//   ./quickstart [--model=effnet|mobilenet|resnet] [--slices=10]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hhpim/metrics.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const std::string which = cli.get("model", "effnet");
  nn::Model model = which == "resnet"      ? nn::zoo::resnet18()
                    : which == "mobilenet" ? nn::zoo::mobilenet_v2()
                                           : nn::zoo::efficientnet_b0();

  std::printf("model: %s  (%llu params, %llu MACs, %.0f%% PIM ops)\n",
              model.name().c_str(),
              static_cast<unsigned long long>(model.effective_params()),
              static_cast<unsigned long long>(model.effective_macs()),
              model.pim_op_ratio() * 100.0);

  // 1. Build the processor (HH-PIM, paper Table I configuration).
  sys::SystemConfig config;
  config.arch = sys::ArchConfig::hhpim();
  sys::Processor proc{config, model};

  std::printf("slice T = %s, peak task time = %s, MRAM-only task time = %s\n",
              proc.slice_length().to_string().c_str(),
              proc.peak_task_time().to_string().c_str(),
              proc.mram_only_task_time().to_string().c_str());

  // 2. Generate a pulsing workload (Fig. 4, Case 5) and run it.
  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 10));
  const auto loads = workload::generate(workload::Scenario::kPulsing, wc);
  std::printf("load:  %s\n", workload::sparkline(loads, wc.high).c_str());

  const sys::RunStats run = proc.run_scenario(loads);

  // 3. Inspect what the dynamic placement did, slice by slice.
  Table t{{"slice", "tasks", "HP-MRAM", "HP-SRAM", "LP-MRAM", "LP-SRAM",
           "energy", "busy", "deadline"}};
  for (const auto& s : run.slices) {
    t.add_row({std::to_string(s.slice), std::to_string(s.tasks_executed),
               std::to_string(s.alloc[placement::Space::kHpMram]),
               std::to_string(s.alloc[placement::Space::kHpSram]),
               std::to_string(s.alloc[placement::Space::kLpMram]),
               std::to_string(s.alloc[placement::Space::kLpSram]),
               s.energy.to_string(), s.busy_time.to_string(),
               s.deadline_violated ? "MISS" : "ok"});
  }
  std::printf("%s", t.render().c_str());

  std::printf("total energy: %s over %s (%llu tasks, %llu deadline misses)\n",
              run.total_energy.to_string().c_str(), run.total_time.to_string().c_str(),
              static_cast<unsigned long long>(run.tasks),
              static_cast<unsigned long long>(run.deadline_violations));

  // 4. Compare against the conventional architectures on the same workload.
  for (const auto& arch : {sys::ArchConfig::baseline(), sys::ArchConfig::hetero(),
                           sys::ArchConfig::hybrid()}) {
    sys::SystemConfig ref = config;
    ref.arch = arch;
    ref.slice = proc.slice_length();  // identical application requirement
    const auto cell = sys::run_cell(ref, model, loads);
    std::printf("vs %-18s: %10s  -> HH-PIM saves %6.2f%%\n", cell.arch.c_str(),
                cell.energy.to_string().c_str(),
                sys::energy_saving_percent(run.total_energy, cell.energy));
  }
  return 0;
}
