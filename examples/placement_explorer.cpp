// Placement explorer: sweeps t_constraint and dumps the optimizer's choice
// as CSV (the raw data behind the paper's Fig. 6). Pipe into a plotting tool
// of your choice.
//
//   ./placement_explorer [--model=effnet|mobilenet|resnet] [--entries=128]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"

using namespace hhpim;
using placement::Space;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const std::string which = cli.get("model", "effnet");
  const nn::Model model = which == "resnet"      ? nn::zoo::resnet18()
                          : which == "mobilenet" ? nn::zoo::mobilenet_v2()
                                                 : nn::zoo::efficientnet_b0();

  sys::SystemConfig config;
  config.arch = sys::ArchConfig::hhpim();
  config.lut_t_entries = static_cast<int>(cli.get_int("entries", 128));
  config.lut_k_blocks = 128;
  sys::Processor proc{config, model};
  const auto* lut = proc.lut();

  std::printf("# model=%s T_ms=%.3f peak_ms=%.3f mram_only_ms=%.3f\n",
              model.name().c_str(), proc.slice_length().as_ms(),
              proc.peak_task_time().as_ms(), proc.mram_only_task_time().as_ms());
  std::printf("t_constraint_ms,feasible,hp_mram,hp_sram,lp_mram,lp_sram,task_energy_uj\n");
  for (const auto& e : lut->entries()) {
    std::printf("%.4f,%d,%llu,%llu,%llu,%llu,%.3f\n", e.t_constraint.as_ms(),
                e.feasible ? 1 : 0,
                static_cast<unsigned long long>(e.alloc[Space::kHpMram]),
                static_cast<unsigned long long>(e.alloc[Space::kHpSram]),
                static_cast<unsigned long long>(e.alloc[Space::kLpMram]),
                static_cast<unsigned long long>(e.alloc[Space::kLpSram]),
                e.feasible ? e.predicted_task_energy.as_uj() : 0.0);
  }
  return 0;
}
