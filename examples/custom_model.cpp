// Bringing your own network: define a model with the builder API, calibrate
// it to deployment numbers, and run it on HH-PIM. Also demonstrates the INT8
// quantization utilities against the functional PE.
#include <cstdio>
#include <vector>

#include "hhpim/processor.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "pe/processing_element.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main() {
  // 1. A small keyword-spotting style CNN.
  nn::Model model{"kws-net", /*pim_op_ratio=*/0.82};
  model.input({1, 49, 10});         // MFCC spectrogram
  model.conv("stem", 32, 3, 2);
  model.act("stem.act");
  model.dwconv("dw1", 3, 1);
  model.conv("pw1", 48, 1, 1);
  model.dwconv("dw2", 3, 2);
  model.conv("pw2", 64, 1, 1);
  model.pool("gap", 13);
  model.linear("fc", 12);           // 12 keywords

  std::printf("%s: structural %llu params / %llu MACs\n", model.name().c_str(),
              static_cast<unsigned long long>(model.structural_params()),
              static_cast<unsigned long long>(model.structural_macs()));

  // 2. Calibrate to the deployed (pruned) footprint.
  model.calibrate(model.structural_params() / 2, model.structural_macs() / 2);
  std::printf("deployed: %llu params / %llu MACs (sparsity %.2f), %.1f uses/weight\n\n",
              static_cast<unsigned long long>(model.effective_params()),
              static_cast<unsigned long long>(model.effective_macs()), model.sparsity(),
              model.uses_per_weight());

  // 3. Run a random workload on HH-PIM.
  sys::SystemConfig config;
  config.arch = sys::ArchConfig::hhpim();
  sys::Processor proc{config, model};
  const auto loads = workload::generate(workload::Scenario::kRandom,
                                        workload::ScenarioConfig{.slices = 12});
  const auto run = proc.run_scenario(loads);
  std::printf("HH-PIM: %llu tasks in %s, %s total, %llu deadline misses\n\n",
              static_cast<unsigned long long>(run.tasks), run.total_time.to_string().c_str(),
              run.total_energy.to_string().c_str(),
              static_cast<unsigned long long>(run.deadline_violations));

  // 4. Functional INT8 path: quantize a real dot product and run it through
  // a PE to verify the arithmetic end to end.
  const std::vector<float> weights{0.42f, -0.87f, 0.11f, 0.95f, -0.33f};
  const std::vector<float> acts{0.5f, 0.25f, -0.75f, 1.0f, -0.125f};
  const auto wq = nn::QuantParams::choose(weights);
  const auto aq = nn::QuantParams::choose(acts);
  const auto wi = nn::quantize(weights, wq);
  const auto ai = nn::quantize(acts, aq);

  energy::EnergyLedger ledger;
  pe::ProcessingElement pe{"pe", energy::PowerSpec::paper_45nm().hp.pe, &ledger};
  pe.power_on(Time::zero());
  const auto mac = pe.dot(Time::zero(), wi, ai);
  const float approx = nn::dequantize_acc(mac.accumulator, wq, aq);
  float exact = 0.0f;
  for (std::size_t i = 0; i < weights.size(); ++i) exact += weights[i] * acts[i];
  std::printf("INT8 dot on the PE: %.5f (exact %.5f, err %.5f), %s, %s\n", approx, exact,
              approx - exact, (mac.complete - mac.start).to_string().c_str(),
              ledger.total().to_string().c_str());
  return 0;
}
