// Compares the four Table-I architectures on one scenario across all three
// TinyML models: total energy, energy breakdown, deadline behaviour.
// The 4 x 3 grid is executed by the parallel experiment runner.
//
//   ./compare_architectures [--case=1..6] [--slices=20] [--threads=N]
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "hhpim/metrics.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const int case_idx = static_cast<int>(cli.get_int("case", 5));
  const auto scenario = workload::all_scenarios()[static_cast<std::size_t>(
      std::max(1, std::min(6, case_idx)) - 1)];
  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 20));
  const auto loads = workload::generate(scenario, wc);

  std::printf("scenario: %s (%s), %d slices\nload: %s\n\n", workload::case_name(scenario),
              workload::to_string(scenario), wc.slices,
              workload::sparkline(loads, wc.high).c_str());

  exp::ExperimentSpec spec;
  spec.name = "compare-architectures";
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());
  spec.models = nn::zoo::paper_models();
  spec.scenarios = {exp::ScenarioSpec::fixed(workload::to_string(scenario), loads)};

  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const exp::ResultSet results = exp::Runner{opts}.run(spec);

  for (const auto& model : spec.models) {
    const exp::RunResult& hh =
        results.at("HH-PIM", model.name(), workload::to_string(scenario));

    Table t{{"Architecture", "total energy", "dynamic", "leakage", "movement",
             "deadline misses", "HH-PIM saves"}};
    for (const auto& arch : table1) {
      const exp::RunResult& r =
          results.at(arch.name, model.name(), workload::to_string(scenario));
      t.add_row({arch.name, r.total_energy().to_string(),
                 Energy::pj(r.dynamic_energy_pj).to_string(),
                 Energy::pj(r.leakage_energy_pj).to_string(),
                 Energy::pj(r.transfer_energy_pj).to_string(),
                 std::to_string(r.deadline_violations),
                 arch.kind == sys::ArchKind::kHhpim
                     ? "-"
                     : format_double(sys::energy_saving_percent(hh.total_energy(),
                                                                r.total_energy()),
                                     2) +
                           " %"});
    }

    std::printf("%s (T = %s):\n%s\n", model.name().c_str(),
                Time::ps(hh.slice_ps).to_string().c_str(), t.render().c_str());
  }
  return 0;
}
