// Compares the four Table-I architectures on one scenario across all three
// TinyML models: total energy, energy breakdown, deadline behaviour.
//
//   ./compare_architectures [--case=1..6] [--slices=20]
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hhpim/metrics.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const int case_idx = static_cast<int>(cli.get_int("case", 5));
  const auto scenario = workload::all_scenarios()[static_cast<std::size_t>(
      std::max(1, std::min(6, case_idx)) - 1)];
  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 20));
  const auto loads = workload::generate(scenario, wc);

  std::printf("scenario: %s (%s), %d slices\nload: %s\n\n", workload::case_name(scenario),
              workload::to_string(scenario), wc.slices,
              workload::sparkline(loads, wc.high).c_str());

  for (const auto& model : nn::zoo::paper_models()) {
    sys::SystemConfig hh_cfg;
    hh_cfg.arch = sys::ArchConfig::hhpim();
    sys::Processor hh{hh_cfg, model};
    const Time slice = hh.slice_length();
    const auto hh_run = hh.run_scenario(loads);

    Table t{{"Architecture", "total energy", "dynamic", "leakage", "movement",
             "deadline misses", "HH-PIM saves"}};
    auto add = [&](const std::string& name, const energy::EnergyLedger& ledger,
                   const sys::RunStats& run) {
      t.add_row({name, run.total_energy.to_string(),
                 ledger.dynamic_total().to_string(),
                 ledger.total(energy::Activity::kLeakage).to_string(),
                 ledger.total(energy::Activity::kTransfer).to_string(),
                 std::to_string(run.deadline_violations),
                 name == "HH-PIM"
                     ? "-"
                     : format_double(sys::energy_saving_percent(hh_run.total_energy,
                                                                run.total_energy),
                                     2) +
                           " %"});
    };

    for (const auto& arch : {sys::ArchConfig::baseline(), sys::ArchConfig::hetero(),
                             sys::ArchConfig::hybrid()}) {
      sys::SystemConfig c;
      c.arch = arch;
      c.slice = slice;
      sys::Processor p{c, model};
      const auto run = p.run_scenario(loads);
      add(arch.name, p.ledger(), run);
    }
    add("HH-PIM", hh.ledger(), hh_run);

    std::printf("%s (T = %s):\n%s\n", model.name().c_str(), slice.to_string().c_str(),
                t.render().c_str());
  }
  return 0;
}
