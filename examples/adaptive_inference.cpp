// Adaptive inference: the paper's motivating scenario — an object-detection
// style workload whose computational demand swings with scene content. Shows
// HH-PIM re-placing weights slice by slice and what each decision costs.
//
//   ./adaptive_inference [--slices=24] [--seed=7]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;
using placement::Space;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const int slices = static_cast<int>(cli.get_int("slices", 24));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  const nn::Model model = nn::zoo::mobilenet_v2();
  sys::SystemConfig config;
  config.arch = sys::ArchConfig::hhpim();
  sys::Processor proc{config, model};

  // Scene-driven load: a wandering number of detected objects; each object
  // adds an inference (crop classification), clamped to the slice capacity.
  Rng rng{seed};
  std::vector<int> loads;
  int objects = 2;
  for (int i = 0; i < slices; ++i) {
    objects += static_cast<int>(rng.next_in(-2, 2));
    if (rng.next_bool(0.12)) objects += 6;  // a crowd enters the frame
    objects = std::max(0, std::min(10, objects));
    loads.push_back(objects);
  }

  std::printf("adaptive %s on HH-PIM, T = %s\n", model.name().c_str(),
              proc.slice_length().to_string().c_str());
  std::printf("scene load: %s\n\n", workload::sparkline(loads, 10).c_str());
  std::printf("%-6s %-5s  %-34s %-12s %-10s\n", "slice", "objs", "placement (weights)",
              "energy", "moved");

  placement::Allocation prev = proc.current_allocation();
  int buffered = 0;
  for (std::size_t k = 0; k <= loads.size(); ++k) {
    const auto s = proc.run_slice(buffered);
    const auto moved = placement::plan_movement(prev, s.alloc).total();
    char placement[64];
    std::snprintf(placement, sizeof placement, "HPm%6llu HPs%6llu LPm%6llu LPs%6llu",
                  static_cast<unsigned long long>(s.alloc[Space::kHpMram]),
                  static_cast<unsigned long long>(s.alloc[Space::kHpSram]),
                  static_cast<unsigned long long>(s.alloc[Space::kLpMram]),
                  static_cast<unsigned long long>(s.alloc[Space::kLpSram]));
    std::printf("%-6d %-5d  %-34s %-12s %-10llu%s\n", s.slice, s.tasks_executed, placement,
                s.energy.to_string().c_str(), static_cast<unsigned long long>(moved),
                s.deadline_violated ? "  MISS" : "");
    prev = s.alloc;
    buffered = k < loads.size() ? loads[k] : 0;
  }

  std::printf("\ntotal: %s\n", proc.ledger().total().to_string().c_str());
  std::printf("\nper-component energy breakdown:\n%s", proc.ledger().breakdown().c_str());
  return 0;
}
