// Placement-aware NAS grid: width-variant ladders of the zoo models swept
// through the experiment runner on the HH-PIM arch, each variant annotated
// with its placement Pareto frontier (docs/PARETO.md).
//
//   ./pareto_nas [--threads=N] [--slices=K] [--lut=R] [--seed=S]
//                [--models=all|EfficientNet-B0,ResNet-18,...]
//                [--scales=0.50,0.75,1.00]   # width-variant ladder per model
//                [--scenarios=paper|name1,name2,...]
//                [--slo-frac=0.6]            # latency SLO as a slice fraction
//                [--csv=PATH] [--quiet]
//
// Two halves join in the output:
//   * per-run workload metrics from exp::Runner (energy, busy time, misses) —
//     byte-identical at any --threads value, like experiment_grid (CI diffs
//     --threads=1 against --threads=8 on the CSV as a determinism smoke);
//   * per-variant frontier metrics read from the shared placement LUT at the
//     SLO's entry: frontier size, the min-energy anchor (the legacy knapsack
//     answer), the min-latency point, and the frontier's SRAM-pressure floor.
//
// The interesting NAS read-out is the *shape* of the trade: scaling a model
// down narrows the gap between the anchor and the min-latency point (less to
// place, less room to trade), while the SRAM floor tracks how much of the
// variant must stay resident to meet the SLO at all.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "placement/lut.hpp"
#include "placement/lut_cache.hpp"
#include "placement/pareto.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

namespace {

/// The frontier read-out of one variant at the SLO entry. Zeroed when the
/// model's LUT has no feasible entry (frontier_points == 0 flags it).
struct FrontierMetrics {
  std::uint64_t params = 0;
  std::uint64_t macs = 0;
  std::int64_t slo_ps = 0;
  std::size_t frontier_points = 0;
  double anchor_energy_pj = 0.0;   ///< min-energy point == legacy knapsack
  std::int64_t anchor_latency_ps = 0;
  double perf_energy_pj = 0.0;     ///< min-latency point
  std::int64_t perf_latency_ps = 0;
  std::uint64_t min_sram_weights = 0;
  bool slo_met = false;            ///< some frontier point meets the SLO
};

FrontierMetrics frontier_metrics(const sys::SystemConfig& cfg, const nn::Model& model,
                                 double slo_frac) {
  FrontierMetrics fm;
  fm.params = model.effective_params();
  fm.macs = model.effective_macs();
  const sys::Processor proc{cfg, model};
  const Time slo = Time::ps(
      static_cast<std::int64_t>(static_cast<double>(proc.slice_length().as_ps()) * slo_frac));
  fm.slo_ps = slo.as_ps();
  const placement::AllocationLut* lut = proc.lut();
  if (lut == nullptr) return fm;
  const placement::LutEntry* entry = lut->lookup_or_peak(slo);
  if (entry == nullptr || entry->frontier.empty()) return fm;

  fm.frontier_points = entry->frontier.size();
  const placement::ParetoPoint anchor =
      placement::min_energy_point(entry->frontier);
  fm.anchor_energy_pj = anchor.energy.as_pj();
  fm.anchor_latency_ps = anchor.latency.as_ps();
  const placement::ParetoPoint& perf = placement::min_latency_point(entry->frontier);
  fm.perf_energy_pj = perf.energy.as_pj();
  fm.perf_latency_ps = perf.latency.as_ps();
  fm.min_sram_weights = entry->frontier.front().sram_weights;
  for (const placement::ParetoPoint& p : entry->frontier) {
    if (p.sram_weights < fm.min_sram_weights) fm.min_sram_weights = p.sram_weights;
  }
  fm.slo_met = placement::best_within_slo(entry->frontier, slo) != nullptr;
  return fm;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli{argc, argv};

  workload::ScenarioConfig wc;
  wc.slices = static_cast<int>(cli.get_int("slices", 12));

  exp::ExperimentSpec spec;
  spec.name = "pareto-nas";
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed2025));
  // The frontier is an HH-PIM concept (the other Table I archs have no
  // placement choice to trade on), so the arch axis is a single point.
  spec.archs.push_back(sys::ArchConfig::hhpim());

  // Width-scale ladder.
  std::vector<double> scales;
  for (const std::string& s : split(cli.get("scales", "0.50,0.75,1.00"), ',')) {
    const double v = std::strtod(trim(s).c_str(), nullptr);
    if (v <= 0.0) {
      std::fprintf(stderr, "bad --scales entry '%s' (need positive factors)\n", s.c_str());
      return 1;
    }
    scales.push_back(v);
  }

  // Model axis: each base model expands into its ladder.
  std::vector<nn::Model> bases;
  const std::string models_arg = cli.get("models", "all");
  if (models_arg == "all") {
    bases = nn::zoo::paper_models();
  } else {
    for (const std::string& name : split(models_arg, ',')) {
      auto m = nn::zoo::find_model(trim(name));
      if (!m.has_value()) {
        std::fprintf(stderr, "unknown model '%s' (known: %s)\n", name.c_str(),
                     nn::zoo::known_model_names().c_str());
        return 1;
      }
      bases.push_back(std::move(*m));
    }
  }
  for (const nn::Model& base : bases) {
    for (nn::Model& v : nn::zoo::width_variants(base, scales)) {
      spec.models.push_back(std::move(v));
    }
  }
  if (spec.models.empty()) {
    std::fprintf(stderr, "no variants: every scale exceeded the structural totals\n");
    return 1;
  }

  // Scenario axis.
  const std::string scenarios_arg = cli.get("scenarios", "paper");
  if (scenarios_arg == "paper") {
    for (const auto kind : workload::all_scenarios()) {
      spec.scenarios.push_back(exp::ScenarioSpec::of(kind, wc));
    }
  } else {
    for (const std::string& name : split(scenarios_arg, ',')) {
      const auto s = workload::from_string(trim(name));
      if (!s.has_value()) {
        std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
        return 1;
      }
      spec.scenarios.push_back(exp::ScenarioSpec::of(*s, wc));
    }
  }

  sys::SystemConfig base_cfg;
  const auto lut = static_cast<int>(cli.get_int("lut", 64));
  base_cfg.lut_t_entries = lut;
  base_cfg.lut_k_blocks = lut;
  spec.variants.push_back({"", base_cfg});

  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.share_luts = true;
  placement::LutCache lut_cache;  // private per invocation, deterministic stats
  opts.lut_cache = &lut_cache;
  const exp::Runner runner{opts};
  const exp::ResultSet results = runner.run(spec);

  // Frontier annotations: one per variant, resolved from the same cache the
  // runner warmed (cache hits, so this adds no LUT builds). Computed on this
  // thread in model order — independent of --threads, like the runner's
  // grid-ordered results, which is what keeps the CSV diffable 1-vs-8.
  const double slo_frac = cli.get_double("slo-frac", 0.6);
  sys::SystemConfig probe_cfg = base_cfg;
  probe_cfg.arch = sys::ArchConfig::hhpim();
  probe_cfg.lut_cache = &lut_cache;
  std::map<std::string, FrontierMetrics> frontier;
  for (const nn::Model& m : spec.models) {
    frontier.emplace(m.name(), frontier_metrics(probe_cfg, m, slo_frac));
  }

  if (!cli.get_bool("quiet", false)) {
    std::printf("pareto-nas: %zu variants x %zu scenarios (%u threads, lut %d, "
                "SLO %.0f%% of slice)\n\n",
                spec.models.size(), spec.scenarios.size(),
                exp::Runner::resolve_threads(opts.threads), lut, slo_frac * 100.0);
    Table t{{"Model", "params", "Scenario", "energy", "misses", "front", "SLO ok",
             "anchor lat", "perf lat"}};
    for (const auto& r : results.runs()) {
      const FrontierMetrics& fm = frontier.at(r.model);
      t.add_row({r.model, std::to_string(fm.params), r.scenario,
                 r.total_energy().to_string(), std::to_string(r.deadline_violations),
                 std::to_string(fm.frontier_points), fm.slo_met ? "yes" : "no",
                 Time::ps(fm.anchor_latency_ps).to_string(),
                 Time::ps(fm.perf_latency_ps).to_string()});
    }
    std::printf("%s\n", t.render().c_str());
  }

  const std::string csv_path = cli.get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    out << "model,params,macs,scenario,tasks,deadline_violations,total_energy_pj,"
           "busy_time_ps,max_busy_ps,slo_ps,slo_met,frontier_points,"
           "anchor_energy_pj,anchor_latency_ps,perf_energy_pj,perf_latency_ps,"
           "min_sram_weights\n";
    char buf[64];
    const auto f = [&buf](double v) {  // shortest round-trip double, locale-free
      std::snprintf(buf, sizeof buf, "%.17g", v);
      return std::string{buf};
    };
    for (const auto& r : results.runs()) {
      const FrontierMetrics& fm = frontier.at(r.model);
      out << r.model << ',' << fm.params << ',' << fm.macs << ',' << r.scenario
          << ',' << r.tasks << ',' << r.deadline_violations << ','
          << f(r.total_energy_pj) << ',' << r.busy_time_ps << ',' << r.max_busy_ps
          << ',' << fm.slo_ps << ',' << (fm.slo_met ? 1 : 0) << ','
          << fm.frontier_points << ',' << f(fm.anchor_energy_pj) << ','
          << fm.anchor_latency_ps << ',' << f(fm.perf_energy_pj) << ','
          << fm.perf_latency_ps << ',' << fm.min_sram_weights << '\n';
    }
    if (!cli.get_bool("quiet", false)) std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
