// Fleet-simulation CLI: runs N independent simulated edge devices — each a
// sys::Processor with a battery and SoC-driven placement adaptation — on a
// sharded worker pool, and writes per-device JSONL plus fleet-wide
// aggregates. See docs/FLEET.md for the spec, schema and determinism
// guarantees.
//
//   ./fleet_sim [--devices=1000] [--threads=N] [--slices=20] [--shard-size=256]
//               [--claim-batch=K]  (shards claimed per counter fetch; 0 = auto)
//               [--models=all|EfficientNet-B0,ResNet-18,...]
//               [--scenarios=mix|paper|name1,name2,...]
//               [--seed=S] [--lut=R]
//               [--capacity-mj=250] [--initial-soc=1.0]
//               [--soc-low=0.3] [--soc-high=0.5] [--no-adapt]
//               [--join-fraction=F] [--leave-fraction=F]   (device churn)
//               [--charge-period=P] [--charge-window=W] [--charge-mj=E]
//               [--envelope=pulsing|random|...] [--envelope-min=M]
//               [--envelope-max=M] [--envelope-seed=S]
//               [--checkpoint-every=N]  (run as resumable N-slice segments)
//               [--snapshot-dir=DIR]    (save/load each segment's snapshot)
//               [--no-lut-cache] [--no-device-memo] [--no-results]
//               [--jsonl=PATH|-] [--summary=PATH|-] [--shard-dir=DIR] [--quiet]
//
// The same spec at any --threads value produces byte-identical JSONL and
// summary output — CI diffs --threads=1 against --threads=2 as a
// determinism smoke check. With --checkpoint-every=N the fleet runs as
// ceil(slices/N) segments through FleetSnapshot serialization and the output
// is byte-identical to the one-shot run — CI diffs that too.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "nn/zoo.hpp"
#include "placement/lut_cache.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;

namespace {

int write_stream(const std::string& path, bool quiet, const char* what,
                 const std::function<void(std::ostream&)>& writer) {
  if (path == "-") {
    writer(std::cout);
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  writer(out);
  if (!quiet) std::printf("wrote %s (%s)\n", path.c_str(), what);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli{argc, argv};

  fleet::FleetSpec spec;
  spec.name = "fleet-sim";
  spec.devices = static_cast<int>(cli.get_int("devices", 1000));
  spec.slices = static_cast<int>(cli.get_int("slices", 20));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed2025));
  spec.battery.capacity = Energy::mj(cli.get_double("capacity-mj", 250.0));
  spec.battery.initial_soc = cli.get_double("initial-soc", 1.0);
  spec.thresholds.low_soc = cli.get_double("soc-low", 0.3);
  spec.thresholds.high_soc = cli.get_double("soc-high", 0.5);
  spec.adapt = !cli.get_bool("no-adapt", false);

  spec.lifecycle.join_fraction = cli.get_double("join-fraction", 0.0);
  spec.lifecycle.leave_fraction = cli.get_double("leave-fraction", 0.0);
  spec.charging.period = static_cast<int>(cli.get_int("charge-period", 0));
  spec.charging.window = static_cast<int>(cli.get_int("charge-window", 0));
  spec.charging.energy_per_slice = Energy::mj(cli.get_double("charge-mj", 0.0));

  const std::string envelope_arg = cli.get("envelope", "");
  if (!envelope_arg.empty()) {
    const auto shape = workload::from_string(envelope_arg);
    if (!shape.has_value()) {
      std::fprintf(stderr, "unknown envelope shape '%s'\n", envelope_arg.c_str());
      return 1;
    }
    spec.envelope.enabled = true;
    spec.envelope.shape = *shape;
    spec.envelope.min_multiplier = cli.get_double("envelope-min", 0.5);
    spec.envelope.max_multiplier = cli.get_double("envelope-max", 1.5);
    spec.envelope.seed =
        static_cast<std::uint64_t>(cli.get_int("envelope-seed", 0xd1a2025));
  }

  const auto lut = static_cast<int>(cli.get_int("lut", 96));
  spec.config.lut_t_entries = lut;
  spec.config.lut_k_blocks = lut;

  // Model population ("all" = FleetSpec's default, the full Table IV zoo).
  const std::string models_arg = cli.get("models", "all");
  if (models_arg != "all") {
    for (const std::string& name : split(models_arg, ',')) {
      auto m = nn::zoo::find_model(trim(name));
      if (!m.has_value()) {
        std::fprintf(stderr, "unknown model '%s' (known: %s)\n", name.c_str(),
                     nn::zoo::known_model_names().c_str());
        return 1;
      }
      spec.models.push_back(std::move(*m));
    }
  }

  // Scenario mix.
  const std::string scenarios_arg = cli.get("scenarios", "mix");
  if (scenarios_arg == "paper") {
    const auto s = workload::all_scenarios();
    spec.mix.assign(s.begin(), s.end());
  } else if (scenarios_arg != "mix") {
    for (const std::string& name : split(scenarios_arg, ',')) {
      const auto s = workload::from_string(trim(name));
      if (!s.has_value()) {
        std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
        return 1;
      }
      spec.mix.push_back(*s);
    }
  }  // "mix" = FleetSpec's default dynamic mix

  fleet::FleetOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.shard_size = static_cast<std::size_t>(cli.get_int("shard-size", 256));
  opts.claim_batch = static_cast<std::size_t>(cli.get_int("claim-batch", 0));
  opts.share_luts = !cli.get_bool("no-lut-cache", false);
  opts.shard_dir = cli.get("shard-dir", "");
  opts.keep_results = !cli.get_bool("no-results", false);
  opts.memoize_devices = !cli.get_bool("no-device-memo", false);
  placement::LutCache lut_cache;  // private per invocation, deterministic stats
  opts.lut_cache = &lut_cache;
  fleet::OutcomeCache outcome_cache;  // same: private, cold per invocation
  opts.outcome_cache = &outcome_cache;
  const fleet::FleetSimulator sim{opts};

  const std::string jsonl_path = cli.get("jsonl", "");
  if (!jsonl_path.empty() && !opts.keep_results) {
    // Diagnose the flag conflict before the (potentially long) run.
    std::fprintf(stderr, "--jsonl needs per-device results; drop --no-results "
                         "or use --shard-dir\n");
    return 1;
  }

  const int checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every", 0));
  const std::string snapshot_dir = cli.get("snapshot-dir", "");
  const bool quiet = cli.get_bool("quiet", false);

  const auto t0 = std::chrono::steady_clock::now();
  fleet::FleetResult result;
  int segments = 1;
  try {
    if (checkpoint_every > 0) {
      // Segmented run: checkpoint at every N-slice boundary, forcing each
      // snapshot through full serialization (bytes, or files under
      // --snapshot-dir) so the round-trip is what actually gets exercised.
      fleet::FleetSnapshot snap;
      bool have = false;
      for (int end = checkpoint_every; end < spec.slices;
           end += checkpoint_every) {
        snap = sim.run_to(spec, end, have ? &snap : nullptr);
        if (!snapshot_dir.empty()) {
          char name[64];
          std::snprintf(name, sizeof name, "/snapshot-%06d.bin", end);
          const std::string path = snapshot_dir + name;
          snap.save(path);
          snap = fleet::FleetSnapshot::load(path);
        } else {
          snap = fleet::FleetSnapshot::from_bytes(snap.to_bytes());
        }
        have = true;
        ++segments;
      }
      result = have ? sim.resume(spec, snap) : sim.run(spec);
    } else {
      result = sim.run(spec);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet run failed: %s\n", e.what());
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (!quiet) {
    const auto& a = result.aggregate;
    std::printf("fleet: %d devices x %d slices, %zu shards of %zu "
                "(%u threads; LUT cache: %s, %llu built, %llu shared)\n",
                spec.devices, spec.slices, result.shard_count, result.shard_size,
                fleet::FleetSimulator::resolve_threads(opts.threads),
                opts.share_luts ? "on" : "off",
                static_cast<unsigned long long>(result.lut_builds),
                static_cast<unsigned long long>(result.lut_shared));
    if (checkpoint_every > 0) {
      std::printf("checkpointing: %d segment(s) of %d slice(s)%s\n", segments,
                  checkpoint_every,
                  snapshot_dir.empty() ? "" : " via snapshot files");
    }
    if (opts.memoize_devices) {
      // Stats only — hit/miss counts vary with worker interleaving, which is
      // why they are printed here and never written into the summary JSON.
      std::printf("device memo: %llu replayed, %llu exact (%llu hits, "
                  "%llu misses)\n",
                  static_cast<unsigned long long>(result.memo_replayed_devices),
                  static_cast<unsigned long long>(result.memo_exact_devices),
                  static_cast<unsigned long long>(result.memo_hits),
                  static_cast<unsigned long long>(result.memo_misses));
    }
    std::printf("wall: %.3f s (%.1f devices/s)\n\n", wall_s,
                spec.devices > 0 ? static_cast<double>(spec.devices) / wall_s : 0.0);
    std::printf("tasks %llu (dropped %llu)  deadline misses %llu  "
                "exhausted devices %llu/%llu\n",
                static_cast<unsigned long long>(a.tasks),
                static_cast<unsigned long long>(a.tasks_dropped),
                static_cast<unsigned long long>(a.deadline_violations),
                static_cast<unsigned long long>(a.exhausted_devices),
                static_cast<unsigned long long>(a.devices));
    std::printf("adaptation: %llu mode switches, %llu low-power slices "
                "(of %llu executed)\n",
                static_cast<unsigned long long>(a.mode_switches),
                static_cast<unsigned long long>(a.low_power_slices),
                static_cast<unsigned long long>(a.executed_slices));
    std::printf("slice latency (busy/T): p50 %.3f  p95 %.3f  p99 %.3f\n",
                a.busy_frac_quantile(0.50), a.busy_frac_quantile(0.95),
                a.busy_frac_quantile(0.99));
    std::printf("slice energy (mJ):      p50 %.2f  p95 %.2f  p99 %.2f\n",
                a.slice_energy_mj_quantile(0.50), a.slice_energy_mj_quantile(0.95),
                a.slice_energy_mj_quantile(0.99));
    std::printf("device energy (mJ):     mean %.1f  min %.1f  max %.1f\n",
                a.device_energy_mj.mean(), a.device_energy_mj.min(),
                a.device_energy_mj.max());
    std::printf("final SoC:              mean %.3f  min %.3f  max %.3f\n\n",
                a.final_soc.mean(), a.final_soc.min(), a.final_soc.max());
  }

  if (!jsonl_path.empty()) {
    const int rc = write_stream(jsonl_path, quiet, "device JSONL",
                                [&](std::ostream& os) { result.write_jsonl(os); });
    if (rc != 0) return rc;
  }
  const std::string summary_path = cli.get("summary", "");
  if (!summary_path.empty()) {
    const int rc =
        write_stream(summary_path, quiet, "fleet summary",
                     [&](std::ostream& os) { result.write_summary_json(os); });
    if (rc != 0) return rc;
  }
  if (!opts.shard_dir.empty() && !quiet) {
    std::printf("wrote %zu shard file(s) under %s\n", result.shard_count,
                opts.shard_dir.c_str());
  }
  return 0;
}
