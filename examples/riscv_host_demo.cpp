// Host-core demo: assembles a small RISC-V driver program that submits PIM
// instructions through the memory-mapped instruction-queue port (the paper's
// Rocket-over-AXI path), runs it on the RV32IM ISS, and reports what the PIM
// cluster did.
#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/instruction.hpp"
#include "pim/cluster.hpp"
#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "riscv/rv_asm.hpp"

using namespace hhpim;

int main() {
  energy::EnergyLedger ledger;
  const auto spec = energy::PowerSpec::paper_45nm();
  pim::Cluster cluster{
      pim::ClusterConfig{"hp", energy::ClusterKind::kHighPerformance, 4, 64 * 1024,
                         64 * 1024},
      spec, &ledger};

  riscv::Ram ram{64 * 1024};
  riscv::Console console;
  Time pim_time = Time::zero();
  riscv::PimPort port{
      [&](std::uint32_t word) {
        const auto inst = isa::decode(word);
        return inst.has_value() && cluster.controller().queue().push(*inst);
      },
      [&] {
        auto& q = cluster.controller().queue();
        return (q.full() ? 1u : 0u) | (q.empty() ? 2u : 0u);
      },
      [&] {
        std::vector<isa::Instruction> program;
        while (auto inst = cluster.controller().queue().pop()) program.push_back(*inst);
        std::printf("doorbell -> controller runs:\n%s",
                    isa::disassemble(program).c_str());
        cluster.controller().run_program(pim_time, program);
        pim_time = cluster.busy_until();
      }};
  riscv::Bus bus;
  bus.map(0x0000'0000, 64 * 1024, &ram);
  bus.map(0x1000'0000, 0x100, &console);
  bus.map(0x4000'0000, 0x100, &port);

  // The driver program: announce itself on the console, push a
  // power-up + two MAC bursts + halt sequence, ring the doorbell.
  const std::uint32_t pwron = isa::encode(isa::make_power(0x0f, isa::MemSel::kSram, true));
  const std::uint32_t mac_sram = isa::encode(isa::make_mac(0x0f, isa::MemSel::kSram, 4096));
  const std::uint32_t mac_mram = isa::encode(isa::make_mac(0x03, isa::MemSel::kMram, 1024));
  const std::uint32_t halt = isa::encode(isa::make_halt());

  const std::string source = R"(
      li s0, 0x10000000   # console
      li s1, 0x40000000   # PIM port
      li t0, 80           # 'P'
      sb t0, 0(s0)
      li t0, 73           # 'I'
      sb t0, 0(s0)
      li t0, 77           # 'M'
      sb t0, 0(s0)
      li t1, )" + std::to_string(pwron) + R"(
      sw t1, 0(s1)
      li t1, )" + std::to_string(mac_sram) + R"(
      sw t1, 0(s1)
      li t1, )" + std::to_string(mac_mram) + R"(
      sw t1, 0(s1)
      li t1, )" + std::to_string(halt) + R"(
      sw t1, 0(s1)
      sw zero, 8(s1)      # doorbell
      lw a0, 4(s1)        # status
      ecall
  )";

  const auto assembled = riscv::assemble_rv32(source);
  if (std::holds_alternative<riscv::RvAsmError>(assembled)) {
    const auto& e = std::get<riscv::RvAsmError>(assembled);
    std::fprintf(stderr, "asm error at line %zu: %s\n", e.line, e.message.c_str());
    return 1;
  }
  const auto& words = std::get<std::vector<std::uint32_t>>(assembled);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
  }

  riscv::Cpu cpu{&bus};
  const auto retired = cpu.run();
  std::printf("\ncore: %llu instructions retired, console: \"%s\", status=0x%x\n",
              static_cast<unsigned long long>(retired), console.output().c_str(),
              cpu.reg(10));
  for (std::size_t i = 0; i < cluster.module_count(); ++i) {
    std::printf("module %zu: %llu MACs, busy until %s\n", i,
                static_cast<unsigned long long>(cluster.module(i).total_macs()),
                cluster.module(i).busy_until().to_string().c_str());
  }
  cluster.settle(pim_time);
  std::printf("PIM energy: %s\n", ledger.total().to_string().c_str());
  return 0;
}
