// Host-core demo: assembles a small RISC-V driver program that submits PIM
// instructions through the memory-mapped instruction-queue port (the paper's
// Rocket-over-AXI path), runs it on the decoded-block engine
// (riscv::BlockEngine — the same core the host-in-the-loop fleet path uses),
// and reports what the PIM cluster did.
//
//   --engine=interp   run on the one-instruction-at-a-time riscv::Cpu instead
//   --iters=N         checksum-loop iterations in the driver (default 200000)
//   --stats           print block-cache counters and MIPS
#include <chrono>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "isa/assembler.hpp"
#include "isa/instruction.hpp"
#include "pim/cluster.hpp"
#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "riscv/engine.hpp"
#include "riscv/rv_asm.hpp"

using namespace hhpim;

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const bool use_interp = cli.get("engine", "blocks") == "interp";
  const long iters = static_cast<long>(cli.get_int("iters", 200'000));
  const bool want_stats = cli.has("stats");

  energy::EnergyLedger ledger;
  const auto spec = energy::PowerSpec::paper_45nm();
  pim::Cluster cluster{
      pim::ClusterConfig{"hp", energy::ClusterKind::kHighPerformance, 4, 64 * 1024,
                         64 * 1024},
      spec, &ledger};

  riscv::Ram ram{64 * 1024};
  riscv::Console console;
  Time pim_time = Time::zero();
  riscv::PimPort port{
      [&](std::uint32_t word) {
        const auto inst = isa::decode(word);
        return inst.has_value() && cluster.controller().queue().push(*inst);
      },
      [&] {
        auto& q = cluster.controller().queue();
        return (q.full() ? 1u : 0u) | (q.empty() ? 2u : 0u);
      },
      [&] {
        std::vector<isa::Instruction> program;
        while (auto inst = cluster.controller().queue().pop()) program.push_back(*inst);
        std::printf("doorbell -> controller runs:\n%s",
                    isa::disassemble(program).c_str());
        cluster.controller().run_program(pim_time, program);
        pim_time = cluster.busy_until();
      }};
  riscv::Bus bus;
  bus.map(0x0000'0000, 64 * 1024, &ram);
  bus.map(0x1000'0000, 0x100, &console);
  bus.map(0x4000'0000, 0x100, &port);

  // The driver program: announce itself on the console, hash a descriptor
  // checksum (the busy loop that makes --stats interesting), push a
  // power-up + two MAC bursts + halt sequence, ring the doorbell.
  const std::uint32_t pwron = isa::encode(isa::make_power(0x0f, isa::MemSel::kSram, true));
  const std::uint32_t mac_sram = isa::encode(isa::make_mac(0x0f, isa::MemSel::kSram, 4096));
  const std::uint32_t mac_mram = isa::encode(isa::make_mac(0x03, isa::MemSel::kMram, 1024));
  const std::uint32_t halt = isa::encode(isa::make_halt());

  const std::string source = R"(
      li s0, 0x10000000   # console
      li s1, 0x40000000   # PIM port
      li t0, 80           # 'P'
      sb t0, 0(s0)
      li t0, 73           # 'I'
      sb t0, 0(s0)
      li t0, 77           # 'M'
      sb t0, 0(s0)
      # descriptor checksum loop: a1 = iteration count
      li t0, 0
      li t1, 0x12345
    hash:
      slli t2, t1, 5
      srli t3, t1, 7
      xor  t1, t2, t3
      add  t1, t1, t0
      addi t0, t0, 1
      blt  t0, a1, hash
      li t1, )" + std::to_string(pwron) + R"(
      sw t1, 0(s1)
      li t1, )" + std::to_string(mac_sram) + R"(
      sw t1, 0(s1)
      li t1, )" + std::to_string(mac_mram) + R"(
      sw t1, 0(s1)
      li t1, )" + std::to_string(halt) + R"(
      sw t1, 0(s1)
      sw zero, 8(s1)      # doorbell
      lw a0, 4(s1)        # status
      ecall
  )";

  const auto assembled = riscv::assemble_rv32(source);
  if (std::holds_alternative<riscv::RvAsmError>(assembled)) {
    const auto& e = std::get<riscv::RvAsmError>(assembled);
    std::fprintf(stderr, "asm error at line %zu: %s\n", e.line, e.message.c_str());
    return 1;
  }
  const auto& words = std::get<std::vector<std::uint32_t>>(assembled);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
  }

  riscv::Cpu cpu{&bus};
  riscv::BlockEngine engine{&bus};
  if (use_interp) {
    cpu.set_reg(11, static_cast<std::uint32_t>(iters));  // a1
  } else {
    engine.set_reg(11, static_cast<std::uint32_t>(iters));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t retired =
      use_interp ? cpu.run(~std::uint64_t{0}) : engine.run(~std::uint64_t{0});
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  const std::uint32_t status = use_interp ? cpu.reg(10) : engine.reg(10);

  std::printf("\ncore (%s): %llu instructions retired, console: \"%s\", status=0x%x\n",
              use_interp ? "interp" : "block engine",
              static_cast<unsigned long long>(retired), console.output().c_str(),
              status);
  if (want_stats) {
    const double mips = wall_ms > 0.0
                            ? static_cast<double>(retired) / (wall_ms * 1e3)
                            : 0.0;
    std::printf("stats: %.2f ms, %.1f MIPS\n", wall_ms, mips);
    if (!use_interp) {
      const riscv::EngineStats& s = engine.stats();
      std::printf(
          "stats: %llu blocks compiled, %llu block hits, %llu invalidations, "
          "%llu cycles (CycleModel)\n",
          static_cast<unsigned long long>(s.blocks_compiled),
          static_cast<unsigned long long>(s.block_hits),
          static_cast<unsigned long long>(s.invalidations),
          static_cast<unsigned long long>(engine.cycles()));
    }
  }
  for (std::size_t i = 0; i < cluster.module_count(); ++i) {
    std::printf("module %zu: %llu MACs, busy until %s\n", i,
                static_cast<unsigned long long>(cluster.module(i).total_macs()),
                cluster.module(i).busy_until().to_string().c_str());
  }
  cluster.settle(pim_time);
  std::printf("PIM energy: %s\n", ledger.total().to_string().c_str());
  return 0;
}
