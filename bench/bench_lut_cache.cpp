// Placement-LUT cache + DP-kernel perf baseline (google-benchmark).
//
// Produces BENCH_lut_cache.json — the repo's first committed perf-trajectory
// datapoint. Regenerate with:
//
//   ./build/bench/bench_lut_cache --benchmark_out=BENCH_lut_cache.json \
//       --benchmark_out_format=json
//
// (CI runs the same with --benchmark_min_time=0.01 and uploads the JSON as
// an artifact per PR, so the trajectory accumulates.)
//
// The headline pair is BM_Grid24/cold vs BM_Grid24/warm at 1 and 8 threads:
// the acceptance criterion is warm >= 2x faster end-to-end on the 24-run
// grid (4 Table I architectures x 3 Table IV models x 2 scenarios), because
// the cold path rebuilds the HH-PIM placement LUT for every HH-PIM run while
// the warm path serves all six from three cached builds. Grid outputs are
// byte-identical either way (pinned by tests/test_lut_cache.cpp).
#include <benchmark/benchmark.h>

#include "energy/power_spec.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "hhpim/arch_config.hpp"
#include "nn/zoo.hpp"
#include "placement/knapsack.hpp"
#include "placement/lut.hpp"
#include "placement/lut_cache.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;
using placement::AllocationLut;
using placement::ClusterDpTable;
using placement::ClusterItems;
using placement::CostModel;
using placement::DpItem;
using placement::LutCache;
using placement::LutCacheKey;
using placement::LutParams;

namespace {

constexpr int kLutResolution = 96;  // the bench default (bench_util.hpp)

CostModel paper_model() {
  return CostModel::build(energy::PowerSpec::paper_45nm(),
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024},
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024}, 29.0);
}

LutParams paper_lut_params() {
  LutParams p;
  p.slice = Time::ms(100.0);
  p.total_weights = 95'000;
  p.t_entries = kLutResolution;
  p.k_blocks = kLutResolution;
  return p;
}

// The acceptance grid: 4 archs x 3 models x 2 scenarios = 24 runs; the six
// HH-PIM runs share three distinct (model, arch) LUTs.
exp::ExperimentSpec grid24() {
  exp::ExperimentSpec spec;
  spec.name = "bench-lut-cache";
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());
  spec.models = nn::zoo::paper_models();
  workload::ScenarioConfig wc;
  wc.slices = 6;
  spec.scenarios = {exp::ScenarioSpec::of(workload::Scenario::kPulsing, wc),
                    exp::ScenarioSpec::of(workload::Scenario::kRandom, wc)};
  sys::SystemConfig cfg;
  cfg.lut_t_entries = kLutResolution;
  cfg.lut_k_blocks = kLutResolution;
  spec.variants.push_back({"", cfg});
  return spec;
}

// Cold: LUT sharing off — every HH-PIM run pays its own LUT build, exactly
// the pre-cache behaviour of the experiment runner.
void BM_Grid24_Cold(benchmark::State& state) {
  const exp::ExperimentSpec spec = grid24();
  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  opts.share_luts = false;
  const exp::Runner runner{opts};
  for (auto _ : state) {
    const exp::ResultSet results = runner.run(spec);
    benchmark::DoNotOptimize(results.runs().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.run_count()));
}

// Warm: all runs share a pre-populated cache — the steady state of a long
// sweep, every LUT a hit.
void BM_Grid24_Warm(benchmark::State& state) {
  const exp::ExperimentSpec spec = grid24();
  LutCache cache;
  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  opts.lut_cache = &cache;
  const exp::Runner runner{opts};
  benchmark::DoNotOptimize(runner.run(spec).runs().size());  // populate
  for (auto _ : state) {
    const exp::ResultSet results = runner.run(spec);
    benchmark::DoNotOptimize(results.runs().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.run_count()));
  state.counters["lut_builds"] = static_cast<double>(cache.stats().misses);
  state.counters["lut_hits"] = static_cast<double>(cache.stats().hits);
}

// One cache miss: the full LUT build (paper-sized model at bench resolution)
// plus key/slot overhead. This is the unit the cache amortizes away.
void BM_LutCacheMiss(benchmark::State& state) {
  const CostModel model = paper_model();
  const LutParams params = paper_lut_params();
  const auto key = LutCacheKey::make(1, 2, model, params);
  for (auto _ : state) {
    LutCache cache;
    benchmark::DoNotOptimize(cache.get_or_build(key, model, params));
  }
}

// One cache hit: lock + lookup + shared_future get. Should be ~microseconds,
// i.e. orders of magnitude under the miss above.
void BM_LutCacheHit(benchmark::State& state) {
  const CostModel model = paper_model();
  const LutParams params = paper_lut_params();
  const auto key = LutCacheKey::make(1, 2, model, params);
  LutCache cache;
  benchmark::DoNotOptimize(cache.get_or_build(key, model, params));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_build(key, model, params));
  }
}

// The DP kernel under the LUT build (single-allocation in-place table with
// feasibility pruning): tracks the per-table cost of Algorithm 1.
void BM_DpKernel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int t = 16 * k;  // the LUT's internal_steps ratio
  const ClusterItems items = {DpItem{24, 1.5, k}, DpItem{8, 4.0, k}};
  for (auto _ : state) {
    auto table = ClusterDpTable::build(items, t, k);
    benchmark::DoNotOptimize(table.energy(t, k));
  }
  state.SetItemsProcessed(state.iterations() * t * k);
}

}  // namespace

BENCHMARK(BM_Grid24_Cold)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Grid24_Warm)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_LutCacheMiss)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LutCacheHit);
BENCHMARK(BM_DpKernel)->Arg(64)->Arg(96)->Arg(128)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
