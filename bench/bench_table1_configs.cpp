// Regenerates Table I: developed specifications for HH-PIM and the
// comparison PIM architectures.
#include <cstdio>

#include "common/table.hpp"
#include "hhpim/arch_config.hpp"

using namespace hhpim;

int main() {
  std::printf("== Table I: PIM architecture specifications ==\n\n");
  Table t{{"Architecture", "PIM Module Configuration", "Memory Types (per module)"}};
  for (const auto& a : sys::ArchConfig::paper_table1()) {
    std::string modules;
    if (a.lp_modules == 0) {
      modules = std::to_string(a.hp_modules) + " HP-PIM";
    } else {
      modules = std::to_string(a.hp_modules) + " HP-PIM + " +
                std::to_string(a.lp_modules) + " LP-PIM";
    }
    std::string memory;
    if (a.mram_kb_per_module == 0) {
      memory = std::to_string(a.sram_kb_per_module) + "kB SRAM";
    } else {
      memory = std::to_string(a.mram_kb_per_module) + "kB MRAM + " +
               std::to_string(a.sram_kb_per_module) + "kB SRAM";
    }
    t.add_row({a.name, modules, memory});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper Table I: identical by construction (configs are data).\n");
  return 0;
}
