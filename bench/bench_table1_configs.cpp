// Regenerates Table I: developed specifications for HH-PIM and the
// comparison PIM architectures — plus measured columns from a short probe
// grid (one low-constant scenario per architecture) through exp::Runner:
// the shared slice length T each architecture must honour and its probe
// energy under identical load.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "hhpim/arch_config.hpp"

using namespace hhpim;
using namespace hhpim::bench;

int main() {
  std::printf("== Table I: PIM architecture specifications ==\n\n");

  exp::ExperimentSpec spec = bench_spec();
  spec.name = "table1-probe";
  spec.models = {nn::zoo::efficientnet_b0()};
  workload::ScenarioConfig wc;
  wc.slices = 8;
  spec.scenarios = {exp::ScenarioSpec::of(workload::Scenario::kLowConstant, wc)};
  const exp::ResultSet probe = exp::Runner{}.run(spec);

  Table t{{"Architecture", "PIM Module Configuration", "Memory Types (per module)",
           "T (probe)", "energy (8-slice probe)"}};
  for (const auto& a : sys::ArchConfig::paper_table1()) {
    std::string modules;
    if (a.lp_modules == 0) {
      modules = std::to_string(a.hp_modules) + " HP-PIM";
    } else {
      modules = std::to_string(a.hp_modules) + " HP-PIM + " +
                std::to_string(a.lp_modules) + " LP-PIM";
    }
    std::string memory;
    if (a.mram_kb_per_module == 0) {
      memory = std::to_string(a.sram_kb_per_module) + "kB SRAM";
    } else {
      memory = std::to_string(a.mram_kb_per_module) + "kB MRAM + " +
               std::to_string(a.sram_kb_per_module) + "kB SRAM";
    }
    const exp::RunResult& r =
        probe.at(a.name, "EfficientNet-B0", "low-constant");
    t.add_row({a.name, modules, memory, Time::ps(r.slice_ps).to_string(),
               r.total_energy().to_string()});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper Table I: identical by construction (configs are data); probe\n"
              "columns are measured via exp::Runner on EfficientNet-B0, Case 1.\n");
  return 0;
}
