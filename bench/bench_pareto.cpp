// Pareto-frontier perf baseline — produces BENCH_pareto.json.
//
// Self-contained (no google-benchmark), same harness idiom as
// bench_fleet.cpp. Regenerate with:
//
//   ./build/bench/bench_pareto --out=BENCH_pareto.json
//
// (CI runs the same with --devices=256 --reps=2 --resolutions=32,64 and
// uploads the JSON per PR next to the committed baseline.)
//
// What it pins down:
//   * lut_build/<model>@r<N> — cold private LUT construction per paper model
//     at several resolutions. Since the frontier is built unconditionally
//     (placement/lut.cpp), this IS the frontier-augmented build cost; the
//     pre-frontier trajectory lives in BENCH_fleet.json's lut_warm_ms.
//     `frontier_points` / `points_per_entry` record how much surface each
//     build tabulates on top of the legacy single answer.
//   * fleet/no-slo vs fleet/slo — the same warm-cache fleet with and without
//     a fleet-wide latency SLO. The SLO path swaps the dynamic/MRAM toggle
//     for per-slice frontier-tier selection; `slo_overhead_t1` is its
//     steady-state cost ratio (expected ~1.0: tier selection is O(1) and the
//     tier allocations are resolved once per device).
//   * fleet/slo-memo — the SLO fleet through a pre-warmed device-level
//     outcome memo: tiers ride in the SliceOutcomeKey, so replays must stay
//     as hot as the no-SLO memo path (`slo_memo_speedup`).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "common/strings.hpp"
#include "fleet/device.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "placement/lut.hpp"
#include "placement/lut_cache.hpp"

using namespace hhpim;

namespace {

struct BuildStats {
  double wall_ms = 0.0;
  std::size_t feasible_entries = 0;
  std::size_t frontier_points = 0;
  std::size_t max_points = 0;
};

/// Cold frontier-augmented LUT build: private Processor construction is
/// dominated by AllocationLut::build, and measures exactly what a cache miss
/// costs a fleet or grid run.
BuildStats bench_build(const nn::Model& model, int resolution, int reps) {
  sys::SystemConfig cfg;
  cfg.lut_t_entries = resolution;
  cfg.lut_k_blocks = resolution;
  BuildStats best;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const sys::Processor proc{cfg, model};
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ms < best.wall_ms) best.wall_ms = ms;
    if (rep == 0) {
      for (const placement::LutEntry& e : proc.lut()->entries()) {
        if (!e.feasible) continue;
        ++best.feasible_entries;
        best.frontier_points += e.frontier.size();
        if (e.frontier.size() > best.max_points) best.max_points = e.frontier.size();
      }
    }
  }
  return best;
}

fleet::FleetSpec bench_spec(int devices, int slices, int lut) {
  fleet::FleetSpec spec;
  spec.name = "bench-pareto";
  spec.devices = devices;
  spec.slices = slices;
  spec.config.lut_t_entries = lut;
  spec.config.lut_k_blocks = lut;
  spec.battery.capacity = Energy::mj(2500.0);  // no device exhausts
  return spec;
}

double run_fleet_ms(const fleet::FleetSpec& spec, int reps,
                    placement::LutCache* warm_cache,
                    fleet::OutcomeCache* device_memo = nullptr) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    fleet::FleetOptions opts;
    opts.threads = 1;
    opts.lut_cache = warm_cache;
    opts.keep_results = false;
    opts.memoize_devices = device_memo != nullptr;
    opts.outcome_cache = device_memo;
    const fleet::FleetSimulator sim{opts};
    const auto t0 = std::chrono::steady_clock::now();
    (void)sim.run(spec);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const int devices = static_cast<int>(cli.get_int("devices", 512));
  const int slices = static_cast<int>(cli.get_int("slices", 8));
  const int lut = static_cast<int>(cli.get_int("lut", 64));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double slo_frac = cli.get_double("slo-frac", 0.6);
  const std::string out_path = cli.get("out", "BENCH_pareto.json");

  std::vector<int> resolutions;
  for (const std::string& s : split(cli.get("resolutions", "32,64,128"), ',')) {
    resolutions.push_back(std::stoi(trim(s)));
  }

  std::printf("bench_pareto: %d devices x %d slices (lut %d, best of %d)\n",
              devices, slices, lut, reps);

  const std::vector<nn::Model> models = nn::zoo::paper_models();

  struct BuildRow {
    std::string name;
    int resolution;
    BuildStats stats;
  };
  std::vector<BuildRow> builds;
  for (const nn::Model& m : models) {
    for (const int r : resolutions) {
      BuildRow row{m.name() + "@r" + std::to_string(r), r, bench_build(m, r, reps)};
      std::printf("  lut_build/%-24s: %8.2f ms  (%zu frontier points, "
                  "%.1f/entry)\n",
                  row.name.c_str(), row.stats.wall_ms, row.stats.frontier_points,
                  row.stats.feasible_entries > 0
                      ? static_cast<double>(row.stats.frontier_points) /
                            static_cast<double>(row.stats.feasible_entries)
                      : 0.0);
      builds.push_back(std::move(row));
    }
  }

  // Fleet legs share one warm cache (same convention as bench_fleet: the
  // legs measure slice execution, not LUT construction).
  const fleet::FleetSpec base = bench_spec(devices, slices, lut);
  fleet::FleetSpec slo_spec = base;
  {
    const sys::SystemConfig cfg = fleet::Device::device_config(base, nullptr);
    const sys::Processor probe{cfg, models.front()};
    slo_spec.latency_slo = Time::ps(static_cast<std::int64_t>(
        static_cast<double>(probe.slice_length().as_ps()) * slo_frac));
  }
  placement::LutCache warm;
  {
    const sys::SystemConfig cfg = fleet::Device::device_config(base, &warm);
    for (const nn::Model& m : base.resolved_models()) {
      const sys::Processor proc{cfg, m};
    }
  }

  const double no_slo_ms = run_fleet_ms(base, reps, &warm);
  std::printf("  fleet/no-slo  : %8.1f ms  (%.0f devices/s)\n", no_slo_ms,
              devices / (no_slo_ms * 1e-3));
  const double slo_ms = run_fleet_ms(slo_spec, reps, &warm);
  std::printf("  fleet/slo     : %8.1f ms  (%.2fx vs no-slo)\n", slo_ms,
              slo_ms / no_slo_ms);

  fleet::OutcomeCache warm_memo;
  run_fleet_ms(slo_spec, 1, &warm, &warm_memo);  // untimed warm pass
  const double slo_memo_ms = run_fleet_ms(slo_spec, reps, &warm, &warm_memo);
  std::printf("  fleet/slo-memo: %8.1f ms  (%.2fx vs slo exact)\n", slo_memo_ms,
              slo_ms / slo_memo_ms);

  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w{out};
  w.begin_object();
  w.field("bench", "pareto");
  w.key("host");
  w.begin_object();
  w.field("hardware_threads", static_cast<std::uint64_t>(hw == 0 ? 1 : hw));
  w.end_object();
  w.key("config");
  w.begin_object();
  w.field("devices", devices);
  w.field("slices", slices);
  w.field("lut", lut);
  w.field("reps", reps);
  w.field("slo_frac", slo_frac);
  w.field("slo_ps", slo_spec.latency_slo.as_ps());
  w.end_object();
  w.key("results");
  w.begin_array();
  for (const BuildRow& row : builds) {
    w.begin_object();
    w.field("name", ("lut_build/" + row.name).c_str());
    w.field("resolution", row.resolution);
    w.field("wall_ms", row.stats.wall_ms);
    w.field("builds_per_s",
            row.stats.wall_ms > 0.0 ? 1e3 / row.stats.wall_ms : 0.0);
    w.field("feasible_entries",
            static_cast<std::uint64_t>(row.stats.feasible_entries));
    w.field("frontier_points",
            static_cast<std::uint64_t>(row.stats.frontier_points));
    w.field("max_points_per_entry",
            static_cast<std::uint64_t>(row.stats.max_points));
    w.field("points_per_entry",
            row.stats.feasible_entries > 0
                ? static_cast<double>(row.stats.frontier_points) /
                      static_cast<double>(row.stats.feasible_entries)
                : 0.0);
    w.end_object();
  }
  const auto fleet_row = [&w, devices](const char* name, double ms) {
    w.begin_object();
    w.field("name", name);
    w.field("devices", devices);
    w.field("wall_ms", ms);
    w.field("devices_per_s",
            ms > 0.0 ? static_cast<double>(devices) / (ms * 1e-3) : 0.0);
    w.end_object();
  };
  fleet_row("fleet/no-slo", no_slo_ms);
  fleet_row("fleet/slo", slo_ms);
  fleet_row("fleet/slo-memo", slo_memo_ms);
  w.end_array();
  w.field("slo_overhead_t1", no_slo_ms > 0.0 ? slo_ms / no_slo_ms : 0.0);
  w.field("slo_memo_speedup", slo_memo_ms > 0.0 ? slo_ms / slo_memo_ms : 0.0);
  w.end_object();
  out << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
