// Fleet-throughput perf baseline — produces BENCH_fleet.json.
//
// Self-contained (no google-benchmark): the artifact needs custom fields
// (worker scaling, LUT fan-in economy, devices/s) and must build everywhere
// the fleet does. Regenerate with:
//
//   ./build/bench/bench_fleet --out=BENCH_fleet.json
//
// (CI runs the same with --devices=512 --reps=2 --shard-size=32
// --big-devices=100000 and uploads the JSON per PR next to the committed
// baseline, so the trajectory accumulates.)
//
// Headline comparisons (see docs/PERF.md for how to read them):
//   * fleet/t1 vs fleet/t8 — the same 1,000-device fleet at 1 and 8 worker
//     threads, measured steady-state: the shared LUT cache is warmed once
//     (untimed; `lut_warm_ms` reports the one-off build cost) so the legs
//     measure the slice-execution fast path, not LUT construction.
//     `speedup_t8_vs_t1` is the worker-scaling criterion (≥ 2×, on a host
//     with ≥ 2 cores; `hardware_threads` records what this host offered,
//     and a 1-core container necessarily reports ~1×).
//   * fleet/t1-scalar vs fleet/t1 — the same warm fleet with the batched
//     slice kernel, decision memo and processor reuse all off vs all on.
//     `batched_speedup_t1` is the steady-state fast-path criterion.
//   * fleet/t1-cold — fresh cache per rep (LUT builds inside the timed
//     region), the pre-PR-5 measurement convention, kept for trajectory
//     continuity.
//   * lut_shared/t1 vs lut_private/t1 — a small fleet with the shared LUT
//     cache on vs off. Sharing makes per-device cost independent of the LUT
//     build: `lut_sharing_speedup` is the fan-in economy that lets device
//     counts scale into the thousands at all, on any core count.
//   * fleet/t1-memo vs fleet/t1 — the same warm fleet with the device-level
//     outcome memo (fleet::OutcomeCache) on vs off. The memo is pre-warmed
//     by one untimed pass (`memo_warm_ms`, mirroring the LUT convention), so
//     `memo_speedup_t1` is the steady-state replay economy; `memo_hit_rate`
//     reports the memo leg's hits / (hits + misses).
//   * fleet/t1-1m — `--big-devices` (default 1,000,000) devices through the
//     warm memo at one thread, one rep, results streamed nowhere: the
//     million-device headline (`big_devices_per_s`).
//
// The bench battery is large enough that no device exhausts: exhausted
// devices stop early (fewer slices of work) and must take the exact
// simulation path, so an exhausting fleet would measure a blend of fleet
// sizes rather than slice-execution throughput. Exhaustion-heavy fleets are
// a correctness scenario (tests/test_outcome_memo.cpp), not a throughput
// one.
//
// Fleet outputs are byte-identical across all of these (threads, sharing,
// batching, reuse, device memo); tests/test_fleet.cpp, tests/test_batched.cpp
// and tests/test_outcome_memo.cpp pin that — only wall-clock moves here.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "fleet/device.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"
#include "placement/lut_cache.hpp"

using namespace hhpim;

namespace {

fleet::FleetSpec bench_spec(int devices, int slices, int lut) {
  fleet::FleetSpec spec;
  spec.name = "bench-fleet";
  spec.devices = devices;
  spec.slices = slices;
  spec.config.lut_t_entries = lut;
  spec.config.lut_k_blocks = lut;
  // No device exhausts at this capacity (see the header comment): every leg
  // runs every device through all of its slices.
  spec.battery.capacity = Energy::mj(2500.0);
  return spec;
}

struct Measurement {
  double wall_ms = 0.0;
  std::uint64_t lut_builds = 0;
  std::uint64_t lut_shared = 0;
  std::uint64_t tasks = 0;
  std::uint64_t memo_replayed = 0;
  std::uint64_t memo_exact = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

/// Best-of-`reps` wall clock for one fleet configuration. With `warm_cache`
/// null, a fresh private cache per rep keeps reps identical (first-rep
/// builds are part of the measurement, exactly like a cold CLI invocation);
/// with a pre-warmed cache the legs measure steady-state throughput.
/// `reuse` toggles processor pooling (FleetOptions::reuse_processors).
/// `device_memo` is the outcome memo to run on (nullptr = memoization off,
/// the scalar per-device path).
Measurement run_fleet(const fleet::FleetSpec& spec, unsigned threads,
                      bool share_luts, std::size_t shard_size, int reps,
                      placement::LutCache* warm_cache = nullptr,
                      bool reuse = true,
                      fleet::OutcomeCache* device_memo = nullptr) {
  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    placement::LutCache fresh;
    fleet::FleetOptions opts;
    opts.threads = threads;
    opts.share_luts = share_luts;
    opts.lut_cache = warm_cache != nullptr ? warm_cache : &fresh;
    opts.shard_size = shard_size;
    opts.keep_results = false;  // throughput, not result plumbing
    opts.reuse_processors = reuse;
    opts.memoize_devices = device_memo != nullptr;
    opts.outcome_cache = device_memo;
    const fleet::FleetSimulator sim{opts};

    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult r = sim.run(spec);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ms < best.wall_ms) {
      best.wall_ms = ms;
      best.lut_builds = r.lut_builds;
      best.lut_shared = r.lut_shared;
      best.tasks = r.aggregate.tasks;
      best.memo_replayed = r.memo_replayed_devices;
      best.memo_exact = r.memo_exact_devices;
      best.memo_hits = r.memo_hits;
      best.memo_misses = r.memo_misses;
    }
  }
  return best;
}

void write_result(JsonWriter& w, const char* name, int devices, unsigned threads,
                  bool share_luts, const Measurement& m) {
  w.begin_object();
  w.field("name", name);
  w.field("devices", devices);
  w.field("threads", static_cast<std::uint64_t>(threads));
  w.field("lut_cache", share_luts);
  w.field("wall_ms", m.wall_ms);
  w.field("devices_per_s",
          m.wall_ms > 0.0 ? static_cast<double>(devices) / (m.wall_ms * 1e-3) : 0.0);
  w.field("per_device_ms", devices > 0 ? m.wall_ms / devices : 0.0);
  w.field("lut_builds", m.lut_builds);
  w.field("lut_shared", m.lut_shared);
  w.field("tasks", m.tasks);
  w.field("memo_replayed", m.memo_replayed);
  w.field("memo_exact", m.memo_exact);
  w.field("memo_hits", m.memo_hits);
  w.field("memo_misses", m.memo_misses);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const int devices = static_cast<int>(cli.get_int("devices", 1000));
  const int slices = static_cast<int>(cli.get_int("slices", 10));
  const int lut = static_cast<int>(cli.get_int("lut", 64));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const std::size_t shard = static_cast<std::size_t>(cli.get_int("shard-size", 64));
  // The uncached leg rebuilds one LUT per HH-PIM device; keep it small.
  const int nocache_devices =
      static_cast<int>(cli.get_int("nocache-devices", 24));
  const int big_devices =
      static_cast<int>(cli.get_int("big-devices", 1000000));
  const std::string out_path = cli.get("out", "BENCH_fleet.json");

  const fleet::FleetSpec spec = bench_spec(devices, slices, lut);
  fleet::FleetSpec scalar_spec = spec;
  scalar_spec.config.batched_execution = false;
  scalar_spec.config.memoize_decisions = false;
  const fleet::FleetSpec small = bench_spec(nocache_devices, slices, lut);

  std::printf("bench_fleet: %d devices x %d slices (lut %d, shard %zu, "
              "best of %d)\n",
              devices, slices, lut, shard, reps);

  // Warm the shared cache once: one Processor per distinct model builds its
  // LUT into `warm`, so `lut_warm_ms` is exactly the one-off build cost the
  // steady-state legs amortize away.
  placement::LutCache warm;
  const auto w0 = std::chrono::steady_clock::now();
  {
    const sys::SystemConfig cfg = fleet::Device::device_config(spec, &warm);
    for (const nn::Model& model : spec.resolved_models()) {
      const sys::Processor proc{cfg, model};
    }
  }
  const double lut_warm_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - w0)
                                 .count();

  const Measurement t1 = run_fleet(spec, 1, true, shard, reps, &warm);
  std::printf("  fleet/t1        : %8.1f ms  (%.0f devices/s, warm cache)\n",
              t1.wall_ms, devices / (t1.wall_ms * 1e-3));
  const Measurement t8 = run_fleet(spec, 8, true, shard, reps, &warm);
  std::printf("  fleet/t8        : %8.1f ms  (%.0f devices/s, %.2fx vs t1)\n",
              t8.wall_ms, devices / (t8.wall_ms * 1e-3), t1.wall_ms / t8.wall_ms);
  const Measurement t1_scalar =
      run_fleet(scalar_spec, 1, true, shard, reps, &warm, /*reuse=*/false);
  std::printf("  fleet/t1-scalar : %8.1f ms  (batch/memo/reuse off, %.2fx "
              "slower)\n",
              t1_scalar.wall_ms, t1_scalar.wall_ms / t1.wall_ms);
  const Measurement t1_cold = run_fleet(spec, 1, true, shard, reps);
  std::printf("  fleet/t1-cold   : %8.1f ms  (builds in timed region)\n",
              t1_cold.wall_ms);

  // Warm the outcome memo like the LUT: one untimed memo-on pass records the
  // fleet's slice outcomes (`memo_warm_ms` is that one-off cost), so the
  // memo legs measure steady-state replay throughput.
  fleet::OutcomeCache warm_memo;
  const auto m0 = std::chrono::steady_clock::now();
  run_fleet(spec, 1, true, shard, 1, &warm, true, &warm_memo);
  const double memo_warm_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - m0)
                                  .count();

  const Measurement t1_memo =
      run_fleet(spec, 1, true, shard, reps, &warm, true, &warm_memo);
  std::printf("  fleet/t1-memo   : %8.1f ms  (%llu replayed / %llu exact, "
              "%.2fx vs t1)\n",
              t1_memo.wall_ms,
              static_cast<unsigned long long>(t1_memo.memo_replayed),
              static_cast<unsigned long long>(t1_memo.memo_exact),
              t1.wall_ms / t1_memo.wall_ms);

  // The million-device leg: same per-device spec, so the warm memo carries
  // over (fresh device ids/seeds only grow the key set where new states
  // appear). One rep — at this size the first pass is already steady-state.
  const fleet::FleetSpec big = bench_spec(big_devices, slices, lut);
  const Measurement t1_big =
      run_fleet(big, 1, true, std::size_t{256}, 1, &warm, true, &warm_memo);
  std::printf("  fleet/t1-1m     : %8.1f ms  (%d devices, %.0f devices/s)\n",
              t1_big.wall_ms, big_devices,
              big_devices / (t1_big.wall_ms * 1e-3));

  // Reuse off: with processor pooling, a 24-device fleet builds only one
  // processor (and so one private LUT) per model either way, which would
  // flatten the comparison — these legs isolate the PR 3 LUT-cache economy.
  const Measurement shared =
      run_fleet(small, 1, true, shard, reps, nullptr, /*reuse=*/false);
  const Measurement priv =
      run_fleet(small, 1, false, shard, reps, nullptr, /*reuse=*/false);
  std::printf("  lut_shared/t1   : %8.1f ms  (%d devices, %llu builds)\n",
              shared.wall_ms, nocache_devices,
              static_cast<unsigned long long>(shared.lut_builds));
  std::printf("  lut_private/t1  : %8.1f ms  (%d devices, private LUT each, "
              "%.1fx slower)\n",
              priv.wall_ms, nocache_devices, priv.wall_ms / shared.wall_ms);

  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w{out};
  w.begin_object();
  w.field("bench", "fleet");
  w.key("host");
  w.begin_object();
  w.field("hardware_threads", static_cast<std::uint64_t>(hw == 0 ? 1 : hw));
  w.end_object();
  w.key("config");
  w.begin_object();
  w.field("devices", devices);
  w.field("slices", slices);
  w.field("lut", lut);
  w.field("shard_size", static_cast<std::uint64_t>(shard));
  w.field("reps", reps);
  w.field("nocache_devices", nocache_devices);
  w.field("big_devices", big_devices);
  w.field("battery_capacity_mj", spec.battery.capacity.as_mj());
  w.end_object();
  w.key("results");
  w.begin_array();
  write_result(w, "fleet/t1", devices, 1, true, t1);
  write_result(w, "fleet/t8", devices, 8, true, t8);
  write_result(w, "fleet/t1-scalar", devices, 1, true, t1_scalar);
  write_result(w, "fleet/t1-cold", devices, 1, true, t1_cold);
  write_result(w, "fleet/t1-memo", devices, 1, true, t1_memo);
  write_result(w, "fleet/t1-1m", big_devices, 1, true, t1_big);
  write_result(w, "lut_shared/t1", nocache_devices, 1, true, shared);
  write_result(w, "lut_private/t1", nocache_devices, 1, false, priv);
  w.end_array();
  w.field("lut_warm_ms", lut_warm_ms);
  w.field("memo_warm_ms", memo_warm_ms);
  w.field("speedup_t8_vs_t1", t1.wall_ms / t8.wall_ms);
  w.field("batched_speedup_t1", t1_scalar.wall_ms / t1.wall_ms);
  w.field("cold_vs_warm_t1", t1_cold.wall_ms / t1.wall_ms);
  w.field("lut_sharing_speedup", priv.wall_ms / shared.wall_ms);
  w.field("memo_speedup_t1", t1.wall_ms / t1_memo.wall_ms);
  w.field("memo_hit_rate",
          t1_memo.memo_hits + t1_memo.memo_misses > 0
              ? static_cast<double>(t1_memo.memo_hits) /
                    static_cast<double>(t1_memo.memo_hits + t1_memo.memo_misses)
              : 0.0);
  w.field("big_devices_per_s",
          t1_big.wall_ms > 0.0
              ? static_cast<double>(big_devices) / (t1_big.wall_ms * 1e-3)
              : 0.0);
  w.end_object();
  out << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
