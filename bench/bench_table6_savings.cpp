// Regenerates Table VI: energy savings (ES) by HH-PIM for the dynamic
// scenarios, Cases 3-6 (averaged over the three TinyML models).
//
// The whole 4-arch x 3-model x 4-case grid is one ExperimentSpec executed by
// the parallel runner; rows are then read back from the ResultSet.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace hhpim;
using namespace hhpim::bench;

int main() {
  std::printf("== Table VI: energy savings (%%) by HH-PIM for Cases 3-6 ==\n");
  std::printf("(50 slices; averaged over EfficientNet-B0 / MobileNetV2 / ResNet-18)\n\n");

  const std::array<workload::Scenario, 4> cases = {
      workload::Scenario::kPeriodicSpike, workload::Scenario::kPeriodicSpikeFrequent,
      workload::Scenario::kPulsing, workload::Scenario::kRandom};

  exp::ExperimentSpec spec = bench_spec();
  spec.name = "table6";
  spec.models = nn::zoo::paper_models();
  for (const auto c : cases) {
    exp::ScenarioSpec s = exp::ScenarioSpec::of(c);
    s.explicit_loads = workload::generate(c, s.cfg);  // paper seed, not grid-derived
    spec.scenarios.push_back(std::move(s));
  }
  const exp::ResultSet results = exp::Runner{}.run(spec);

  // Paper Table VI values for the same cells.
  const double paper[4][3] = {{72.01, 55.78, 54.09},
                              {61.46, 38.38, 47.60},
                              {48.94, 16.89, 42.10},
                              {59.28, 34.14, 50.52}};

  Table t{{"Case", "over Baseline-PIM", "over Hetero-PIM", "over H-PIM",
           "paper (B/He/Hy)"}};
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    double base = 0, het = 0, hyb = 0;
    for (const auto& model : spec.models) {
      const ArchSweep sweep =
          arch_sweep_of(results, model.name(), workload::to_string(cases[ci]));
      base += sys::energy_saving_percent(sweep.energy[3], sweep.energy[0]);
      het += sys::energy_saving_percent(sweep.energy[3], sweep.energy[1]);
      hyb += sys::energy_saving_percent(sweep.energy[3], sweep.energy[2]);
    }
    const double n = static_cast<double>(spec.models.size());
    char paper_cell[48];
    std::snprintf(paper_cell, sizeof paper_cell, "%.2f / %.2f / %.2f", paper[ci][0],
                  paper[ci][1], paper[ci][2]);
    t.add_row({std::string{workload::case_name(cases[ci])} + ": " +
                   workload::to_string(cases[ci]),
               pct(base / n), pct(het / n), pct(hyb / n), paper_cell});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
