// RISC-V host engine perf baseline — produces BENCH_riscv.json.
//
// Self-contained (no google-benchmark), same harness idiom as
// bench_fleet.cpp. Regenerate with:
//
//   ./build/bench/bench_riscv --out=BENCH_riscv.json
//
// (CI runs the same with --iters=400000 --reps=2 --devices=128 and gates
// the fresh JSON with tools/bench_diff.py --require decode_cache_speedup:3.0.)
//
// What it pins down:
//   * interp/<kernel> vs engine/<kernel> — the one-instruction-at-a-time
//     riscv::Cpu against the decoded-block riscv::BlockEngine on three
//     Dhrystone-flavored kernels (ALU/branch mix, load/store copy loop,
//     multiplier-heavy hash). `mips` is retired instructions per wall
//     microsecond, best of --reps.
//   * decode_cache_speedup (top level) — geomean of the per-kernel
//     engine/interp MIPS ratios; the CI floor (>= 3) is the tentpole claim
//     of docs/RISCV.md.
//   * fleet/host-off vs fleet/host-on — the same single-thread fleet with
//     and without SystemConfig::host, measuring what per-slice host
//     co-simulation costs end to end (`host_overhead_t1`, expected close
//     to 1: the default scheduler retires a few hundred cycles per slice).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "riscv/engine.hpp"
#include "riscv/rv_asm.hpp"

using namespace hhpim;

namespace {

// 64 KiB RAM at 0: code assembles at 0, data lives at 0x8000 so the copy
// kernel's stores never land inside a compiled block.
constexpr std::size_t kRamBytes = 64 * 1024;

struct Kernel {
  const char* name;
  const char* source;  ///< a0 = iteration count, halts with ecall
};

// Dhrystone-flavored mixes (loop control + the class under test), not the
// real Dhrystone: the assembler has no C runtime. Instruction-class ratios
// are what matters for exercising the dispatch paths.
constexpr Kernel kKernels[] = {
    {"dhry_alu", R"(
        li   t0, 0
        li   t1, 0x12345
    loop:
        slli t2, t1, 5
        srli t3, t1, 7
        xor  t1, t2, t3
        add  t1, t1, t0
        andi t4, t0, 15
        sub  t1, t1, t4
        or   t1, t1, t4
        addi t0, t0, 1
        bne  t0, a0, loop
        mv   a1, t1
        ecall
    )"},
    {"dhry_mem", R"(
        li   s0, 0x8000
        li   s1, 0x9000
        li   t0, 0
    loop:
        andi t1, t0, 255
        slli t1, t1, 2
        add  t2, s0, t1
        lw   t3, 0(t2)
        addi t3, t3, 1
        add  t4, s1, t1
        sw   t3, 0(t4)
        sh   t3, 0(t2)
        addi t0, t0, 1
        bne  t0, a0, loop
        ecall
    )"},
    {"dhry_mul", R"(
        li   t0, 0
        li   t1, 0x7e3779b9
    loop:
        mul   t2, t0, t1
        mulhu t3, t2, t1
        xor   t1, t2, t3
        add   t1, t1, t0
        addi  t0, t0, 1
        bne   t0, a0, loop
        mv    a1, t1
        ecall
    )"},
};

struct MipsRow {
  std::string name;
  double mips = 0.0;            ///< retired instructions / wall us (best rep)
  std::uint64_t retired = 0;    ///< instructions per rep
  std::uint64_t final_a1 = 0;   ///< kernel checksum (engine must match interp)
};

std::vector<std::uint32_t> assemble_or_die(const Kernel& k) {
  const riscv::RvAsmResult r = riscv::assemble_rv32(k.source, 0);
  if (const auto* err = std::get_if<riscv::RvAsmError>(&r)) {
    std::fprintf(stderr, "%s: line %zu: %s\n", k.name, err->line,
                 err->message.c_str());
    std::exit(1);
  }
  return std::get<std::vector<std::uint32_t>>(r);
}

void load_program(riscv::Ram& ram, const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> image(words.size() * 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t w = words[i];
    image[i * 4 + 0] = static_cast<std::uint8_t>(w);
    image[i * 4 + 1] = static_cast<std::uint8_t>(w >> 8);
    image[i * 4 + 2] = static_cast<std::uint8_t>(w >> 16);
    image[i * 4 + 3] = static_cast<std::uint8_t>(w >> 24);
  }
  ram.load_image(0, image.data(), image.size());
}

/// One timed pass of `core` over the loaded program: resume at 0, set
/// a0 = iters, run to ECALL. Returns instructions retired this pass.
template <typename Core>
std::uint64_t run_pass(Core& core, std::uint64_t iters, double& wall_ms) {
  core.resume(0);
  core.set_reg(10, static_cast<std::uint32_t>(iters));  // a0
  const std::uint64_t before = core.retired();
  const auto t0 = std::chrono::steady_clock::now();
  (void)core.run(~std::uint64_t{0});
  wall_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
  if (core.halt_reason() != riscv::HaltReason::kEcall) {
    std::fprintf(stderr, "kernel halted with %s at pc=0x%x\n",
                 riscv::to_string(core.halt_reason()), core.pc());
    std::exit(1);
  }
  return core.retired() - before;
}

template <typename Core>
MipsRow bench_core(const char* prefix, const Kernel& k, Core& core,
                   std::uint64_t iters, int reps) {
  MipsRow row;
  row.name = std::string(prefix) + "/" + k.name;
  for (int rep = 0; rep < reps; ++rep) {
    double wall_ms = 0.0;
    row.retired = run_pass(core, iters, wall_ms);
    const double mips = wall_ms > 0.0
                            ? static_cast<double>(row.retired) / (wall_ms * 1e3)
                            : 0.0;
    if (mips > row.mips) row.mips = mips;
  }
  row.final_a1 = core.reg(11);
  return row;
}

double run_fleet_ms(const fleet::FleetSpec& spec, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    fleet::FleetOptions opts;
    opts.threads = 1;
    opts.keep_results = false;
    const fleet::FleetSimulator sim{opts};
    const auto t0 = std::chrono::steady_clock::now();
    (void)sim.run(spec);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli{argc, argv};
  const std::uint64_t iters =
      static_cast<std::uint64_t>(cli.get_int("iters", 2'000'000));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int devices = static_cast<int>(cli.get_int("devices", 256));
  const int slices = static_cast<int>(cli.get_int("slices", 8));
  const std::string out_path = cli.get("out", "BENCH_riscv.json");

  std::printf("bench_riscv: %llu iterations/kernel (best of %d)\n",
              static_cast<unsigned long long>(iters), reps);

  std::vector<MipsRow> rows;
  double speedup_product = 1.0;
  int speedup_count = 0;
  for (const Kernel& k : kKernels) {
    const std::vector<std::uint32_t> words = assemble_or_die(k);

    riscv::Ram interp_ram{kRamBytes};
    riscv::Bus interp_bus;
    interp_bus.map(0, kRamBytes, &interp_ram);
    load_program(interp_ram, words);
    riscv::Cpu cpu{&interp_bus, 0};
    const MipsRow interp = bench_core("interp", k, cpu, iters, reps);

    riscv::Ram engine_ram{kRamBytes};
    riscv::Bus engine_bus;
    engine_bus.map(0, kRamBytes, &engine_ram);
    load_program(engine_ram, words);
    riscv::BlockEngine engine{&engine_bus, 0};
    const MipsRow fast = bench_core("engine", k, engine, iters, reps);

    if (interp.retired != fast.retired || interp.final_a1 != fast.final_a1) {
      std::fprintf(stderr,
                   "%s: engine diverged from interpreter "
                   "(retired %llu vs %llu, a1 %llu vs %llu)\n",
                   k.name, static_cast<unsigned long long>(fast.retired),
                   static_cast<unsigned long long>(interp.retired),
                   static_cast<unsigned long long>(fast.final_a1),
                   static_cast<unsigned long long>(interp.final_a1));
      return 1;
    }

    const double speedup = interp.mips > 0.0 ? fast.mips / interp.mips : 0.0;
    std::printf("  %-10s: interp %7.1f MIPS, engine %7.1f MIPS (%.2fx)\n",
                k.name, interp.mips, fast.mips, speedup);
    if (speedup > 0.0) {
      speedup_product *= speedup;
      ++speedup_count;
    }
    rows.push_back(interp);
    rows.push_back(fast);
  }
  const double decode_cache_speedup =
      speedup_count > 0
          ? std::pow(speedup_product, 1.0 / static_cast<double>(speedup_count))
          : 0.0;
  std::printf("  decode_cache_speedup (geomean): %.2fx\n", decode_cache_speedup);

  // Fleet legs: identical fleets, host scheduler co-simulation off vs on.
  fleet::FleetSpec base;
  base.name = "bench-riscv";
  base.devices = devices;
  base.slices = slices;
  base.battery.capacity = Energy::mj(2500.0);  // no device exhausts
  fleet::FleetSpec hosted = base;
  hosted.config.host.enabled = true;

  const double off_ms = run_fleet_ms(base, reps);
  std::printf("  fleet/host-off: %8.1f ms  (%.0f devices/s)\n", off_ms,
              devices / (off_ms * 1e-3));
  const double on_ms = run_fleet_ms(hosted, reps);
  std::printf("  fleet/host-on : %8.1f ms  (%.2fx vs host-off)\n", on_ms,
              off_ms > 0.0 ? on_ms / off_ms : 0.0);

  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w{out};
  w.begin_object();
  w.field("bench", "riscv");
  w.key("host");
  w.begin_object();
  w.field("hardware_threads", static_cast<std::uint64_t>(hw == 0 ? 1 : hw));
  w.end_object();
  w.key("config");
  w.begin_object();
  w.field("iters", static_cast<std::uint64_t>(iters));
  w.field("reps", reps);
  w.field("devices", devices);
  w.field("slices", slices);
  w.end_object();
  w.key("results");
  w.begin_array();
  for (const MipsRow& row : rows) {
    w.begin_object();
    w.field("name", row.name.c_str());
    w.field("mips", row.mips);
    w.field("retired", row.retired);
    w.end_object();
  }
  const auto fleet_row = [&w, devices](const char* name, double ms) {
    w.begin_object();
    w.field("name", name);
    w.field("devices", devices);
    w.field("wall_ms", ms);
    w.field("devices_per_s",
            ms > 0.0 ? static_cast<double>(devices) / (ms * 1e-3) : 0.0);
    w.end_object();
  };
  fleet_row("fleet/host-off", off_ms);
  fleet_row("fleet/host-on", on_ms);
  w.end_array();
  w.field("decode_cache_speedup", decode_cache_speedup);
  w.field("host_overhead_t1", off_ms > 0.0 ? on_ms / off_ms : 0.0);
  w.end_object();
  out << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
