// Regenerates Fig. 5: energy savings of HH-PIM over Baseline-, Heterogeneous-
// and Hybrid-PIM across the six benchmark scenarios and the three TinyML
// models (50 time slices each, as in the paper).
//
// One 4 x 3 x 6 grid (72 runs) through the parallel experiment runner.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace hhpim;
using namespace hhpim::bench;

int main() {
  std::printf("== Fig. 5: energy savings of HH-PIM over the comparison PIMs ==\n");
  std::printf("(50 time slices per scenario; ES%% = (1 - E_hh / E_ref) * 100)\n\n");

  exp::ExperimentSpec spec = bench_spec();
  spec.name = "fig5";
  spec.models = nn::zoo::paper_models();
  for (const auto scenario : workload::all_scenarios()) {
    exp::ScenarioSpec s = exp::ScenarioSpec::of(scenario);
    s.explicit_loads = workload::generate(scenario, s.cfg);  // paper seed
    spec.scenarios.push_back(std::move(s));
  }
  const exp::ResultSet results = exp::Runner{}.run(spec);

  Table t{{"Model", "Scenario", "vs Baseline (%)", "vs Hetero (%)", "vs Hybrid (%)",
           "HH deadline misses"}};
  double sum_base = 0, sum_het = 0, sum_hyb = 0;
  int cells = 0;
  double max_base = 0, max_het = 0, max_hyb = 0;

  for (const auto& model : spec.models) {
    for (const auto scenario : workload::all_scenarios()) {
      const ArchSweep sweep =
          arch_sweep_of(results, model.name(), workload::to_string(scenario));
      const double vs_base = sys::energy_saving_percent(sweep.energy[3], sweep.energy[0]);
      const double vs_het = sys::energy_saving_percent(sweep.energy[3], sweep.energy[1]);
      const double vs_hyb = sys::energy_saving_percent(sweep.energy[3], sweep.energy[2]);
      t.add_row({model.name(), workload::case_name(scenario), pct(vs_base), pct(vs_het),
                 pct(vs_hyb), std::to_string(sweep.violations[3])});
      sum_base += vs_base;
      sum_het += vs_het;
      sum_hyb += vs_hyb;
      max_base = std::max(max_base, vs_base);
      max_het = std::max(max_het, vs_het);
      max_hyb = std::max(max_hyb, vs_hyb);
      ++cells;
    }
    t.add_rule();
  }
  t.add_row({"AVERAGE", "", pct(sum_base / cells), pct(sum_het / cells),
             pct(sum_hyb / cells), ""});
  t.add_row({"MAX", "", pct(max_base), pct(max_het), pct(max_hyb), ""});
  std::printf("%s\n", t.render().c_str());

  std::printf("Paper reference points: Case 1 up to 86.23/78.7/66.5 %%; Case 2 up to\n"
              "41.46/3.72/39.69 %%; averages up to 60.43/36.3/48.58 %% (vs Baseline/\n"
              "Hetero/Hybrid). See EXPERIMENTS.md for the deviation discussion.\n");
  return 0;
}
