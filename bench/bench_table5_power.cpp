// Regenerates Table V: power consumption across memory types in HP-PIM
// (1.2 V) and LP-PIM (0.8 V), plus the derived per-access energies the
// simulator charges.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/power_spec.hpp"

using namespace hhpim;

int main() {
  std::printf("== Table V: power consumption (mW) across memory types ==\n\n");
  const auto spec = energy::PowerSpec::paper_45nm();

  Table t{{"Module", "MRAM dyn R/W", "MRAM static", "SRAM dyn R/W", "SRAM static",
           "PE dyn", "PE static"}};
  auto row = [&](const char* name, const energy::ModuleSpec& m) {
    t.add_row({name,
               format_double(m.mram_power.dyn_read.as_mw(), 2) + " / " +
                   format_double(m.mram_power.dyn_write.as_mw(), 2),
               format_double(m.mram_power.leakage.as_mw(), 2),
               format_double(m.sram_power.dyn_read.as_mw(), 2) + " / " +
                   format_double(m.sram_power.dyn_write.as_mw(), 2),
               format_double(m.sram_power.leakage.as_mw(), 2),
               format_double(m.pe.dynamic.as_mw(), 2),
               format_double(m.pe.leakage.as_mw(), 2)});
  };
  row("HP-PIM (1.2V)", spec.hp);
  row("LP-PIM (0.8V)", spec.lp);
  std::printf("%s\n", t.render().c_str());

  std::printf("Derived per-access energies (power x Table III latency):\n");
  Table e{{"Module", "MRAM read (pJ)", "MRAM write (pJ)", "SRAM read (pJ)",
           "SRAM write (pJ)", "PE MAC (pJ)"}};
  auto erow = [&](const char* name, const energy::ModuleSpec& m) {
    e.add_row({name, format_double(m.read_energy(energy::MemoryKind::kMram).as_pj(), 1),
               format_double(m.write_energy(energy::MemoryKind::kMram).as_pj(), 1),
               format_double(m.read_energy(energy::MemoryKind::kSram).as_pj(), 1),
               format_double(m.write_energy(energy::MemoryKind::kSram).as_pj(), 1),
               format_double(m.pe.mac_energy().as_pj(), 2)});
  };
  erow("HP-PIM", spec.hp);
  erow("LP-PIM", spec.lp);
  std::printf("%s", e.render().c_str());
  return 0;
}
