// Ablation A2: what power gating buys.
//
// Reports the measured leakage energy of each architecture against the
// no-gating bound (every macro powered for the whole run), for the
// best-case (Case 1) and worst-case (Case 2) scenarios.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace hhpim;
using namespace hhpim::bench;

namespace {

/// Always-on leakage bound: all macros + PEs powered for `duration`.
Energy no_gating_bound(const sys::ArchConfig& arch, Time duration) {
  const auto spec = energy::PowerSpec::paper_45nm();
  const double sram_scale = static_cast<double>(arch.sram_kb_per_module) / 64.0;
  const double mram_scale = static_cast<double>(arch.mram_kb_per_module) / 64.0;
  Power total = Power::zero();
  total += (spec.hp.sram_power.leakage * sram_scale + spec.hp.mram_power.leakage * mram_scale +
            spec.hp.pe.leakage) *
           static_cast<double>(arch.hp_modules);
  total += (spec.lp.sram_power.leakage * sram_scale + spec.lp.mram_power.leakage * mram_scale +
            spec.lp.pe.leakage) *
           static_cast<double>(arch.lp_modules);
  return total * duration;
}

}  // namespace

int main() {
  std::printf("== Ablation: leakage with power gating vs always-on bound ==\n\n");
  const nn::Model model = nn::zoo::efficientnet_b0();
  const workload::ScenarioConfig wc{.slices = 20};

  for (const auto scenario :
       {workload::Scenario::kLowConstant, workload::Scenario::kHighConstant}) {
    const auto loads = workload::generate(scenario, wc);
    std::printf("%s (%s):\n", workload::case_name(scenario), workload::to_string(scenario));
    Table t{{"Architecture", "leakage (gated)", "leakage (always-on bound)",
             "gating saves", "total energy"}};

    sys::Processor hh{bench_config(sys::ArchConfig::hhpim()), model};
    const Time slice = hh.slice_length();
    for (const auto& arch : sys::ArchConfig::paper_table1()) {
      sys::Processor p{bench_config(arch, slice), model};
      const auto run = p.run_scenario(loads);
      const Energy leak = p.ledger().total(energy::Activity::kLeakage);
      const Energy bound = no_gating_bound(arch, run.total_time);
      t.add_row({arch.name, leak.to_string(), bound.to_string(),
                 pct(sys::energy_saving_percent(leak, bound)) + " %",
                 run.total_energy.to_string()});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("Reading: HH-PIM's dynamic placement keeps its gated leakage near zero at\n"
              "low load (weights parked in MRAM), while SRAM-only architectures must\n"
              "retain weights and pay leakage regardless of gating support.\n");
  return 0;
}
