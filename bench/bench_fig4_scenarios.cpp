// Regenerates Fig. 4: the six workload scenarios of the AI benchmark app
// (per-slice inference counts over 50 time slices).
#include <cstdio>

#include "workload/scenario.hpp"

using namespace hhpim;

int main() {
  std::printf("== Fig. 4: workload scenarios (inferences per time slice, 50 slices) ==\n\n");
  const workload::ScenarioConfig cfg;
  for (const auto s : workload::all_scenarios()) {
    const auto loads = workload::generate(s, cfg);
    int total = 0;
    int peak = 0;
    for (const int l : loads) {
      total += l;
      peak = peak > l ? peak : l;
    }
    std::printf("%-7s %-26s load=[%s]\n", workload::case_name(s), workload::to_string(s),
                workload::sparkline(loads, cfg.high).c_str());
    std::printf("        total=%d inferences, peak=%d/slice, mean=%.2f/slice\n\n",
                total, peak, static_cast<double>(total) / static_cast<double>(loads.size()));
  }
  std::printf("(levels: low=%d, high=%d; spikes every %d / %d slices; pulses of %d;\n"
              " Case 6 seeded 0x%llx for reproducibility)\n",
              cfg.low, cfg.high, cfg.spike_period, cfg.spike_period_frequent,
              cfg.pulse_width, static_cast<unsigned long long>(cfg.seed));
  return 0;
}
