// Ablation A3: the cost of modeling data-movement overhead.
//
// Runs HH-PIM with the realistic rearrange-buffer/MEM-interface movement
// model against an idealized free-movement variant (infinite bandwidth, zero
// latency and energy), on the scenarios with frequent placement changes.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

using namespace hhpim;
using namespace hhpim::bench;

int main() {
  std::printf("== Ablation: data-movement overhead model ==\n\n");
  const nn::Model model = nn::zoo::efficientnet_b0();
  const workload::ScenarioConfig wc{.slices = 30};

  Table t{{"Scenario", "E (real movement)", "E (free movement)", "interface share (%)",
           "weights moved (MB)", "misses real", "misses free"}};
  for (const auto scenario :
       {workload::Scenario::kPeriodicSpike, workload::Scenario::kPeriodicSpikeFrequent,
        workload::Scenario::kPulsing, workload::Scenario::kRandom}) {
    const auto loads = workload::generate(scenario, wc);

    sys::SystemConfig real = bench_config(sys::ArchConfig::hhpim());
    sys::Processor preal{real, model};
    const auto rreal = preal.run_scenario(loads);
    const Energy xfer = preal.ledger().total(energy::Activity::kTransfer);

    sys::SystemConfig free = bench_config(sys::ArchConfig::hhpim());
    free.slice = preal.slice_length();
    free.movement.bytes_per_ns_per_module = 1e9;  // effectively instantaneous
    free.movement.interface_latency = Time::zero();
    free.movement.energy_per_byte = Energy::zero();
    sys::Processor pfree{free, model};
    const auto rfree = pfree.run_scenario(loads);

    // Total weight traffic between placements across the run.
    double moved_mb = 0.0;
    placement::Allocation prev;
    for (const auto& s : rreal.slices) {
      moved_mb += static_cast<double>(placement::plan_movement(prev, s.alloc).total()) / 1e6;
      prev = s.alloc;
    }
    t.add_row({workload::case_name(scenario), rreal.total_energy.to_string(),
               rfree.total_energy.to_string(),
               pct(100.0 * xfer.as_pj() / rreal.total_energy.as_pj()),
               format_double(moved_mb, 2),
               std::to_string(rreal.deadline_violations),
               std::to_string(rfree.deadline_violations)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading: re-placement traffic is real (megabytes of weights cross the\n"
              "clusters over a run) but its energy is dominated by the memory reads and\n"
              "writes, which both variants pay; the MEM-interface share itself is tiny,\n"
              "and budgeting the movement time inside t_constraint keeps deadline misses\n"
              "at zero either way — matching the paper's claim that re-placement never\n"
              "delays inference.\n");
  return 0;
}
