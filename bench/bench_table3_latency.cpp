// Regenerates Table III: read/write/PE latencies of the HP (1.2 V) and LP
// (0.8 V) modules — both the paper's constants and NVSim-lite's re-derivation
// from voltage scaling (exact at the anchors by calibration).
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/power_spec.hpp"
#include "mem/nvsim_lite.hpp"

using namespace hhpim;

int main() {
  std::printf("== Table III: latency of HP-PIM and LP-PIM modules (ns) ==\n\n");
  const auto spec = energy::PowerSpec::paper_45nm();
  const mem::NvsimLite model;
  const auto derived = model.make_spec(1.2, 0.8);

  Table t{{"Module", "MRAM read", "MRAM write", "SRAM read", "SRAM write", "PE"}};
  auto row = [&](const char* name, const energy::ModuleSpec& m) {
    t.add_row({name, format_double(m.mram_timing.read.as_ns(), 2),
               format_double(m.mram_timing.write.as_ns(), 2),
               format_double(m.sram_timing.read.as_ns(), 2),
               format_double(m.sram_timing.write.as_ns(), 2),
               format_double(m.pe.mac_latency.as_ns(), 2)});
  };
  row("HP-PIM (1.2V) [paper]", spec.hp);
  row("HP-PIM (1.2V) [NVSim-lite]", derived.hp);
  row("LP-PIM (0.8V) [paper]", spec.lp);
  row("LP-PIM (0.8V) [NVSim-lite]", derived.lp);
  std::printf("%s\n", t.render().c_str());

  std::printf("Model extrapolation at intermediate supplies:\n");
  Table v{{"Vdd (V)", "SRAM read (ns)", "MRAM read (ns)", "MRAM write (ns)", "PE (ns)"}};
  for (const double vdd : {1.2, 1.1, 1.0, 0.9, 0.8}) {
    const auto s = model.evaluate({energy::MemoryKind::kSram, 64 * 1024, vdd, 45.0});
    const auto m = model.evaluate({energy::MemoryKind::kMram, 64 * 1024, vdd, 45.0});
    const auto pe = model.evaluate_pe(vdd);
    v.add_row({format_double(vdd, 1), format_double(s.timing.read.as_ns(), 2),
               format_double(m.timing.read.as_ns(), 2),
               format_double(m.timing.write.as_ns(), 2),
               format_double(pe.mac_latency.as_ns(), 2)});
  }
  std::printf("%s", v.render().c_str());
  return 0;
}
