// Regenerates Table IV: TinyML model specs and PIM operation ratios.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "nn/zoo.hpp"

using namespace hhpim;

int main() {
  std::printf("== Table IV: TinyML model specs and PIM operation ratios ==\n\n");
  Table t{{"Model", "# Param", "# MAC", "PIM Operation", "uses/weight",
           "layers", "structural params", "pruning sparsity"}};
  for (const auto& m : nn::zoo::paper_models()) {
    char params[32], macs[32];
    std::snprintf(params, sizeof params, "%lluk",
                  static_cast<unsigned long long>(m.effective_params() / 1000));
    std::snprintf(macs, sizeof macs, "%.3fM",
                  static_cast<double>(m.effective_macs()) / 1e6);
    t.add_row({m.name(), params, macs,
               format_double(m.pim_op_ratio() * 100.0, 0) + "%",
               format_double(m.uses_per_weight(), 1),
               std::to_string(m.layers().size()),
               std::to_string(m.structural_params()),
               format_double(m.sparsity(), 3)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper Table IV: EfficientNet-B0 95k/3.245M/85%%, MobileNetV2\n"
              "101k/2.528M/80%%, ResNet-18 256k/29.580M/75%% — matched exactly\n"
              "(INT8 quantized & pruned; pruning modeled as uniform sparsity\n"
              "over a structurally realistic layer stack, see DESIGN.md).\n");
  return 0;
}
