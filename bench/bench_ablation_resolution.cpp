// Ablation A4: DP resolution vs solution quality (the paper's "limit the
// resolution so construction stays under 1 % of the time slice").
//
// Sweeps the LUT resolution and reports construction cost and the resulting
// scenario energy; also shows what the paper's 1 % rule would pick.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "placement/lut.hpp"

using namespace hhpim;
using namespace hhpim::bench;

int main() {
  std::printf("== Ablation: LUT resolution vs quality ==\n\n");
  const nn::Model model = nn::zoo::efficientnet_b0();
  const auto loads = workload::generate(workload::Scenario::kRandom,
                                        workload::ScenarioConfig{.slices = 20});

  Table t{{"resolution (t x k)", "LUT build (ms)", "scenario energy", "vs finest (%)",
           "deadline misses"}};
  double finest_energy = 0.0;
  std::vector<std::pair<int, double>> rows;
  for (const int r : {256, 128, 64, 32, 16}) {
    sys::SystemConfig c = bench_config(sys::ArchConfig::hhpim());
    c.lut_t_entries = r;
    c.lut_k_blocks = r;
    const auto t0 = std::chrono::steady_clock::now();
    sys::Processor p{c, model};
    const auto t1 = std::chrono::steady_clock::now();
    const double build_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const auto run = p.run_scenario(loads);
    if (finest_energy == 0.0) finest_energy = run.total_energy.as_pj();
    t.add_row({std::to_string(r) + " x " + std::to_string(r),
               format_double(build_ms, 1), run.total_energy.to_string(),
               pct(100.0 * (run.total_energy.as_pj() / finest_energy - 1.0)),
               std::to_string(run.deadline_violations)});
  }
  std::printf("%s\n", t.render().c_str());

  sys::Processor ref{bench_config(sys::ArchConfig::hhpim()), model};
  const auto choice = placement::pick_resolution(ref.slice_length(), 0.01, 1000.0);
  std::printf("Paper's 1%% rule on this slice (T = %s, 1000 DP cells/us device):\n"
              "  -> %d x %d resolution, estimated %.0f us of construction.\n",
              ref.slice_length().to_string().c_str(), choice.t_entries, choice.k_blocks,
              choice.estimated_us);
  return 0;
}
