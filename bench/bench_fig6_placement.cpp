// Regenerates Fig. 6: memory utilization and task energy across t_constraint
// under the optimized data placement, including the green (HH-PIM peak) and
// purple (MRAM-only, H-PIM style) points and the in-text claims (16:9 peak
// SRAM split; E_task reduction vs unoptimized allocation at relaxed
// constraints).
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "placement/lut.hpp"

using namespace hhpim;
using namespace hhpim::bench;
using placement::Space;

namespace {

void sweep_model(const nn::Model& model) {
  sys::Processor proc{bench_config(sys::ArchConfig::hhpim()), model};
  const auto* lut = proc.lut();
  const auto& cost = proc.cost_model();
  const std::uint64_t K = model.effective_params();

  std::printf("--- %s: T = %s ---\n", model.name().c_str(),
              proc.slice_length().to_string().c_str());
  std::printf("green point (peak, SRAM allowed):  task time %s\n",
              proc.peak_task_time().to_string().c_str());
  std::printf("purple point (MRAM only, H-PIM):   task time %s  (%.2fx slower; paper 1.43x)\n",
              proc.mram_only_task_time().to_string().c_str(),
              proc.mram_only_task_time() / proc.peak_task_time());

  // Peak SRAM split (paper: 16:9 between HP-SRAM and LP-SRAM).
  const auto peak_entry = [&]() -> const placement::LutEntry* {
    for (const auto& e : lut->entries()) {
      if (e.feasible) return &e;
    }
    return nullptr;
  }();

  Table t{{"t_constraint", "HP-MRAM %", "HP-SRAM %", "LP-MRAM %", "LP-SRAM %",
           "E_task", "E_task (norm)"}};
  const int stride = static_cast<int>(lut->entries().size()) / 16;
  double e_peak = 0.0;
  if (peak_entry != nullptr) e_peak = peak_entry->predicted_task_energy.as_pj();
  for (std::size_t i = 0; i < lut->entries().size();
       i += static_cast<std::size_t>(stride > 0 ? stride : 1)) {
    const auto& e = lut->entries()[i];
    if (!e.feasible) {
      t.add_row({e.t_constraint.to_string(), "-", "-", "-", "-", "Not Possible", "-"});
      continue;
    }
    auto share = [&](Space s) {
      return format_double(100.0 * static_cast<double>(e.alloc[s]) /
                               static_cast<double>(K), 1);
    };
    t.add_row({e.t_constraint.to_string(), share(Space::kHpMram), share(Space::kHpSram),
               share(Space::kLpMram), share(Space::kLpSram),
               e.predicted_task_energy.to_string(),
               format_double(e.predicted_task_energy.as_pj() / e_peak, 3)});
  }
  std::printf("%s", t.render().c_str());

  if (peak_entry != nullptr) {
    const double hp = static_cast<double>(peak_entry->alloc[Space::kHpSram]);
    const double lp = static_cast<double>(peak_entry->alloc[Space::kLpSram]);
    std::printf("peak SRAM split HP:LP = %.1f : %.1f (of 25 units; paper 16 : 9)\n",
                25.0 * hp / (hp + lp), 25.0 * lp / (hp + lp));
  }

  // In-text claim: E_task reduction vs unoptimized (peak) allocation at the
  // most relaxed constraint (paper: up to 43.17 %).
  const auto& relaxed = lut->entries().back();
  if (peak_entry != nullptr && relaxed.feasible) {
    const Energy unopt = placement::task_dynamic_energy(cost, peak_entry->alloc) +
                         placement::retention_energy_quantized(cost, peak_entry->alloc,
                                                               relaxed.t_constraint);
    std::printf("E_task at max t_constraint: optimized %s vs unoptimized %s "
                "(-%.2f%%; paper -43.17%%)\n\n",
                relaxed.predicted_task_energy.to_string().c_str(),
                unopt.to_string().c_str(),
                100.0 * (1.0 - relaxed.predicted_task_energy / unopt));
  }
}

}  // namespace

int main() {
  std::printf("== Fig. 6: memory utilization & E_task across t_constraint ==\n\n");
  for (const auto& model : nn::zoo::paper_models()) sweep_model(model);
  return 0;
}
