// Algorithm runtime scaling (google-benchmark): Algorithm 1 is O(n*T*K) and
// Algorithm 2 is O(T*K) (paper §III-B). These benches verify the DP cell
// throughput and the end-to-end LUT construction cost that the resolution
// limiter reasons about.
#include <benchmark/benchmark.h>

#include "energy/power_spec.hpp"
#include "placement/knapsack.hpp"
#include "placement/lut.hpp"

using namespace hhpim;
using placement::AllocationLut;
using placement::ClusterDpTable;
using placement::ClusterItems;
using placement::CostModel;
using placement::DpItem;

namespace {

CostModel paper_model() {
  return CostModel::build(energy::PowerSpec::paper_45nm(),
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024},
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024}, 29.0);
}

void BM_Algorithm1(benchmark::State& state) {
  const int t_steps = static_cast<int>(state.range(0));
  const int k_blocks = static_cast<int>(state.range(1));
  const ClusterItems items = {DpItem{3, 1.5, k_blocks}, DpItem{1, 4.0, k_blocks}};
  for (auto _ : state) {
    auto table = ClusterDpTable::build(items, t_steps, k_blocks);
    benchmark::DoNotOptimize(table.energy(t_steps, k_blocks));
  }
  state.SetItemsProcessed(state.iterations() * 2 * t_steps * k_blocks);
  state.counters["cells"] = 2.0 * t_steps * k_blocks;
}

void BM_Algorithm2(benchmark::State& state) {
  const int t_steps = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(0)) / 4;
  const ClusterItems items = {DpItem{3, 1.5, k}, DpItem{1, 4.0, k}};
  const auto hp = ClusterDpTable::build(items, t_steps, k);
  const auto lp = ClusterDpTable::build(items, t_steps, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::combine_clusters(hp, lp, k, t_steps));
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void BM_LutBuild(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const CostModel model = paper_model();
  placement::LutParams p;
  p.slice = Time::ms(100.0);
  p.total_weights = 95'000;
  p.t_entries = r;
  p.k_blocks = r;
  for (auto _ : state) {
    auto lut = AllocationLut::build(model, p);
    benchmark::DoNotOptimize(lut.entries().size());
  }
}

}  // namespace

BENCHMARK(BM_Algorithm1)
    ->Args({256, 64})
    ->Args({512, 64})
    ->Args({1024, 64})   // linear in T
    ->Args({512, 128})
    ->Args({512, 256});  // linear in K

BENCHMARK(BM_Algorithm2)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK(BM_LutBuild)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
