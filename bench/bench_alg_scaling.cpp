// Algorithm runtime scaling (google-benchmark): Algorithm 1 is O(n*T*K) and
// Algorithm 2 is O(T*K) (paper §III-B). These benches verify the DP cell
// throughput and the end-to-end LUT construction cost that the resolution
// limiter reasons about — plus the experiment runner's grid throughput as a
// function of worker-thread count (BM_GridRunner).
#include <benchmark/benchmark.h>

#include "energy/power_spec.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "hhpim/arch_config.hpp"
#include "nn/zoo.hpp"
#include "placement/knapsack.hpp"
#include "placement/lut.hpp"
#include "workload/scenario.hpp"

using namespace hhpim;
using placement::AllocationLut;
using placement::ClusterDpTable;
using placement::ClusterItems;
using placement::CostModel;
using placement::DpItem;

namespace {

CostModel paper_model() {
  return CostModel::build(energy::PowerSpec::paper_45nm(),
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024},
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024}, 29.0);
}

void BM_Algorithm1(benchmark::State& state) {
  const int t_steps = static_cast<int>(state.range(0));
  const int k_blocks = static_cast<int>(state.range(1));
  const ClusterItems items = {DpItem{3, 1.5, k_blocks}, DpItem{1, 4.0, k_blocks}};
  for (auto _ : state) {
    auto table = ClusterDpTable::build(items, t_steps, k_blocks);
    benchmark::DoNotOptimize(table.energy(t_steps, k_blocks));
  }
  state.SetItemsProcessed(state.iterations() * 2 * t_steps * k_blocks);
  state.counters["cells"] = 2.0 * t_steps * k_blocks;
}

void BM_Algorithm2(benchmark::State& state) {
  const int t_steps = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(0)) / 4;
  const ClusterItems items = {DpItem{3, 1.5, k}, DpItem{1, 4.0, k}};
  const auto hp = ClusterDpTable::build(items, t_steps, k);
  const auto lp = ClusterDpTable::build(items, t_steps, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::combine_clusters(hp, lp, k, t_steps));
  }
  state.SetItemsProcessed(state.iterations() * k);
}

void BM_LutBuild(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const CostModel model = paper_model();
  placement::LutParams p;
  p.slice = Time::ms(100.0);
  p.total_weights = 95'000;
  p.t_entries = r;
  p.k_blocks = r;
  for (auto _ : state) {
    auto lut = AllocationLut::build(model, p);
    benchmark::DoNotOptimize(lut.entries().size());
  }
}

// Grid throughput of the experiment runner: the paper's 4-architecture sweep
// on one model and two scenarios (8 independent Processor runs), executed at
// 1/2/4 worker threads. Wall-clock should drop with threads on multi-core
// hosts while the results stay bit-identical (pinned by tests/test_exp.cpp).
void BM_GridRunner(benchmark::State& state) {
  exp::ExperimentSpec spec;
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());
  spec.models = {nn::zoo::efficientnet_b0()};
  workload::ScenarioConfig wc;
  wc.slices = 6;
  spec.scenarios = {exp::ScenarioSpec::of(workload::Scenario::kPulsing, wc),
                    exp::ScenarioSpec::of(workload::Scenario::kRandom, wc)};
  sys::SystemConfig cfg;
  cfg.lut_t_entries = 32;
  cfg.lut_k_blocks = 32;
  spec.variants.push_back({"", cfg});

  exp::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  const exp::Runner runner{opts};
  for (auto _ : state) {
    const exp::ResultSet results = runner.run(spec);
    benchmark::DoNotOptimize(results.runs().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.run_count()));
}

}  // namespace

BENCHMARK(BM_Algorithm1)
    ->Args({256, 64})
    ->Args({512, 64})
    ->Args({1024, 64})   // linear in T
    ->Args({512, 128})
    ->Args({512, 256});  // linear in K

BENCHMARK(BM_Algorithm2)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK(BM_LutBuild)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GridRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
