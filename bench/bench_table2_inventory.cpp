// Table II substitute. The paper's Table II reports FPGA resource usage
// (LUTs/FFs/BRAMs/DSPs of the Genesys2 prototype) — a synthesis artifact with
// no simulator equivalent. We substitute the component inventory of each
// simulated processor, which captures the same structural information
// (what exists, how many, how big); see DESIGN.md.
#include <cstdio>

#include "common/table.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"

using namespace hhpim;

int main() {
  std::printf("== Table II (substituted): simulated component inventory ==\n");
  std::printf("(paper reports FPGA LUT/FF/BRAM/DSP usage; our substrate is a\n"
              " simulator, so we report the structural inventory instead)\n\n");

  const nn::Model model = nn::zoo::efficientnet_b0();
  Table t{{"Architecture", "HP mods", "LP mods", "MRAM banks", "SRAM banks",
           "PEs", "Controllers", "MRAM", "SRAM", "IQ depth"}};
  for (const auto& arch : sys::ArchConfig::paper_table1()) {
    sys::SystemConfig c;
    c.arch = arch;
    c.lut_t_entries = 16;  // inventory only; keep construction instant
    c.lut_k_blocks = 16;
    sys::Processor p{c, model};
    const auto inv = p.inventory();
    t.add_row({arch.name, std::to_string(inv.hp_modules), std::to_string(inv.lp_modules),
               std::to_string(inv.mram_banks), std::to_string(inv.sram_banks),
               std::to_string(inv.pes), std::to_string(inv.controllers),
               std::to_string(inv.mram_bytes / 1024) + " kB",
               std::to_string(inv.sram_bytes / 1024) + " kB",
               std::to_string(inv.instruction_queue_depth)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Paper Table II (for reference, HH-PIM prototype): Rocket core 14998 LUTs,\n"
              "HP-PIM cluster 6951 LUTs / 128 BRAMs / 8 DSPs, LP-PIM cluster 6680 LUTs /\n"
              "128 BRAMs / 8 DSPs.\n");
  return 0;
}
