// Property tests for the placement Pareto-frontier layer (placement/pareto.hpp
// + the frontier built per LUT entry in placement/lut.cpp).
//
// The load-bearing invariants, fuzzed over ~200 random (cost model, weight
// count, slice, resolution) specs:
//   * every stored frontier is mutually non-dominated, sorted, and made of
//     allocations that fit and sum to K;
//   * the frontier's strict min-energy point IS the legacy knapsack answer —
//     the same Allocation and the same Energy bits as LutEntry::alloc /
//     predicted_task_energy, so no legacy consumer can observe the frontier;
//   * anchors are monotone across entries up to the retention-window bound
//     E(t2) <= E(t1) * t2/t1 (retention is charged over the entry's own
//     window, so plain monotonicity is deliberately NOT the invariant);
//   * on small block-divisible instances, brute-force enumeration at each
//     frontier point's own latency confirms the point is achievable and not
//     energy-beaten at equal granularity.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "placement/brute_force.hpp"
#include "placement/lut.hpp"
#include "placement/pareto.hpp"

namespace hhpim::placement {
namespace {

using energy::PowerSpec;

/// Random but well-formed cost model: 1-4 modules per cluster, capacities
/// from a small menu (always enough total SRAM+MRAM to be interesting).
CostModel random_cost_model(Rng& rng) {
  const auto kb = [&rng] {
    constexpr std::size_t menu[] = {32, 64, 128};
    return menu[rng.next_below(3)] * 1024;
  };
  const ClusterShape hp{1 + static_cast<std::size_t>(rng.next_below(4)), kb(), kb()};
  const ClusterShape lp{1 + static_cast<std::size_t>(rng.next_below(4)), kb(), kb()};
  const double uses = 5.0 + rng.next_double() * 35.0;
  return CostModel::build(PowerSpec::paper_45nm(), hp, lp, uses);
}

class ParetoFrontierProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoFrontierProperty, FrontiersAreSoundAndAnchorTheLegacyAnswer) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 1};
  const CostModel m = random_cost_model(rng);

  LutParams p;
  p.total_weights = 2'000 + rng.next_below(60'000);
  p.slice = Time::us(500.0 + static_cast<double>(rng.next_below(20'000)));
  constexpr int kRes[] = {8, 16, 32};
  p.t_entries = kRes[rng.next_below(3)];
  p.k_blocks = kRes[rng.next_below(3)];
  const AllocationLut lut = AllocationLut::build(m, p);

  bool seen_feasible = false;
  std::vector<const LutEntry*> feasible;
  for (const LutEntry& e : lut.entries()) {
    if (!e.feasible) {
      EXPECT_FALSE(seen_feasible) << "feasibility must be monotone in tc";
      EXPECT_TRUE(e.frontier.empty());
      continue;
    }
    seen_feasible = true;
    ASSERT_FALSE(e.frontier.empty()) << e.t_constraint.to_string();

    for (std::size_t i = 0; i < e.frontier.size(); ++i) {
      const ParetoPoint& pt = e.frontier[i];
      // Structural soundness: real placements of all K weights.
      EXPECT_EQ(pt.alloc.total(), p.total_weights);
      EXPECT_TRUE(fits(m, pt.alloc));
      // Stored objectives are exactly the evaluator's (no stale caching).
      EXPECT_EQ(pt, evaluate_point(m, pt.alloc, e.t_constraint));
      // Deterministic sort: latency ascending.
      if (i > 0) {
        EXPECT_GE(pt.latency, e.frontier[i - 1].latency);
      }
      // Mutual non-dominance.
      for (std::size_t j = 0; j < e.frontier.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(dominates(e.frontier[j], pt))
            << "point " << j << " dominates point " << i << " at tc="
            << e.t_constraint.to_string();
      }
    }

    // The strict min-energy point is the legacy knapsack answer, bit-exact.
    const ParetoPoint& anchor = min_energy_point(e.frontier);
    EXPECT_EQ(anchor.alloc, e.alloc);
    EXPECT_EQ(anchor.energy, e.predicted_task_energy);
    for (const ParetoPoint& pt : e.frontier) {
      if (pt.alloc == anchor.alloc) continue;
      EXPECT_GT(pt.energy, anchor.energy)
          << "anchor must be the STRICT energy minimum";
    }

    feasible.push_back(&e);
  }

  // Window-scaled anchor monotonicity: a relaxed entry could always keep a
  // tight entry's placement, paying its retention power over the longer
  // window — so E(t2) <= E(t1) * t2/t1. Plain E(t2) <= E(t1) is false in
  // general (the window itself grows), and for *nearby* entries even the
  // scaled bound drowns in the DP's upward time quantization (per-item
  // roundup on a 16*k_blocks grid can make the tight placement quantize
  // infeasible at t2) — so only pairs separated by more than that slack are
  // comparable.
  const double quant_slack =
      static_cast<double>(2 * p.k_blocks + 4) / static_cast<double>(16 * p.k_blocks);
  for (std::size_t i = 0; i < feasible.size(); ++i) {
    for (std::size_t j = i + 1; j < feasible.size(); ++j) {
      const double ratio =
          static_cast<double>(feasible[j]->t_constraint.as_ps()) /
          static_cast<double>(feasible[i]->t_constraint.as_ps());
      if (ratio < 1.0 + 2.0 * quant_slack) continue;
      EXPECT_LE(feasible[j]->predicted_task_energy.as_pj(),
                feasible[i]->predicted_task_energy.as_pj() * ratio * (1.0 + 1e-9) + 1.0)
          << feasible[i]->t_constraint.to_string() << " -> "
          << feasible[j]->t_constraint.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoFrontierProperty, ::testing::Range(1, 201));

// --- brute-force cross-validation on small block-divisible instances -------

class ParetoBruteForceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoBruteForceProperty, FrontierPointsSurviveEnumeration) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 0xda3e39cb94b95bdbULL + 7};
  const CostModel m = random_cost_model(rng);

  // K divisible by k_blocks: reconstruct never needs the trim-excess step, so
  // every frontier allocation is block-granular and brute force at the same
  // granularity enumerates a superset of the DP's choices.
  const std::uint64_t block = 30 + rng.next_below(120);
  LutParams p;
  p.k_blocks = 8;
  p.total_weights = block * static_cast<std::uint64_t>(p.k_blocks);
  p.t_entries = 8;
  p.slice = Time::us(200.0 + static_cast<double>(rng.next_below(4'000)));
  const AllocationLut lut = AllocationLut::build(m, p);

  for (const LutEntry& e : lut.entries()) {
    const BruteForceResult bf =
        brute_force_placement(m, p.total_weights, e.t_constraint, block);
    EXPECT_EQ(e.feasible, bf.feasible) << e.t_constraint.to_string();
    if (!e.feasible) continue;
    // Anchor == brute force up to the DP's documented slack (it quantizes
    // time upward; see test_lut.cpp MatchesBruteForceOnCoarseGrid). Compare
    // with the brute-force objective (linearized retention) — the stored
    // predicted_task_energy uses gating-quantized retention and would not be
    // commensurable.
    const double dp = task_energy(m, e.alloc, e.t_constraint).as_pj();
    const double block_margin =
        m.at(Space::kHpMram).dyn_per_weight.as_pj() * static_cast<double>(block) * 2;
    EXPECT_GE(dp, bf.energy.as_pj() - 1.0);
    EXPECT_LE(dp, bf.energy.as_pj() + block_margin);

    for (const ParetoPoint& pt : e.frontier) {
      // Achievability: enumerating at the point's own latency must find a
      // placement (the point's allocation qualifies), and since brute force
      // charges retention over the tighter window pt.latency <= tc, its
      // optimum can only be cheaper.
      const BruteForceResult at_latency =
          brute_force_placement(m, p.total_weights, pt.latency, block);
      ASSERT_TRUE(at_latency.feasible)
          << "frontier point unreachable at its own latency, tc="
          << e.t_constraint.to_string();
      EXPECT_LE(at_latency.energy.as_pj(), pt.energy.as_pj() * (1.0 + 1e-9) + 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoBruteForceProperty, ::testing::Range(1, 13));

// --- unit coverage of the dominance machinery ------------------------------

ParetoPoint make_point(double energy_pj, std::int64_t latency_ps,
                       std::uint64_t sram) {
  ParetoPoint p;
  p.energy = Energy::pj(energy_pj);
  p.latency = Time::ps(latency_ps);
  p.sram_weights = sram;
  p.alloc.weights = {sram, 0, latency_ps > 0 ? static_cast<std::uint64_t>(latency_ps) : 0, 0};
  return p;
}

TEST(ParetoDominance, RequiresStrictImprovementSomewhere) {
  const ParetoPoint a = make_point(10.0, 100, 5);
  EXPECT_FALSE(dominates(a, a));  // equal on all axes: no strict edge
  EXPECT_TRUE(dominates(a, make_point(10.0, 100, 6)));
  EXPECT_TRUE(dominates(a, make_point(11.0, 120, 5)));
  EXPECT_FALSE(dominates(a, make_point(9.0, 120, 5)));   // trades energy
  EXPECT_FALSE(dominates(a, make_point(11.0, 90, 5)));   // trades latency
  EXPECT_FALSE(dominates(make_point(9.0, 120, 5), a));
}

TEST(ParetoDominance, PruneKeepsOnlyTheFrontier) {
  std::vector<ParetoPoint> pts = {
      make_point(10.0, 100, 5),  // kept
      make_point(12.0, 90, 5),   // kept: faster
      make_point(12.0, 110, 5),  // dominated by the first
      make_point(10.0, 100, 5),  // exact duplicate: deduplicated
      make_point(8.0, 150, 9),   // kept: cheapest
  };
  prune_to_frontier(pts);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].latency, Time::ps(90));
  EXPECT_EQ(pts[1].latency, Time::ps(100));
  EXPECT_EQ(pts[2].latency, Time::ps(150));
}

TEST(ParetoSelectors, PickTheDocumentedEnds) {
  const std::vector<ParetoPoint> f = {make_point(12.0, 90, 7),
                                      make_point(10.0, 100, 5),
                                      make_point(8.0, 150, 2)};
  EXPECT_EQ(min_latency_point(f).latency, Time::ps(90));
  EXPECT_EQ(min_energy_point(f).energy, Energy::pj(8.0));
  ASSERT_NE(best_within_slo(f, Time::ps(120)), nullptr);
  EXPECT_EQ(best_within_slo(f, Time::ps(120))->energy, Energy::pj(10.0));
  ASSERT_NE(best_within_slo(f, Time::ps(90)), nullptr);
  EXPECT_EQ(best_within_slo(f, Time::ps(90))->energy, Energy::pj(12.0));
  EXPECT_EQ(best_within_slo(f, Time::ps(89)), nullptr);
}

}  // namespace
}  // namespace hhpim::placement
