#include "energy/ledger.hpp"

#include <gtest/gtest.h>

namespace hhpim::energy {
namespace {

using namespace hhpim::literals;

TEST(EnergyLedger, AccumulatesPerComponentAndActivity) {
  EnergyLedger ledger;
  const ComponentId a = ledger.register_component("a");
  const ComponentId b = ledger.register_component("b");
  ledger.add(a, Activity::kMemRead, 10_pJ);
  ledger.add(a, Activity::kMemRead, 5_pJ);
  ledger.add(a, Activity::kCompute, 2_pJ);
  ledger.add(b, Activity::kMemWrite, 7_pJ);

  EXPECT_DOUBLE_EQ(ledger.component_total(a, Activity::kMemRead).as_pj(), 15.0);
  EXPECT_DOUBLE_EQ(ledger.component_total(a).as_pj(), 17.0);
  EXPECT_DOUBLE_EQ(ledger.component_total(b).as_pj(), 7.0);
  EXPECT_DOUBLE_EQ(ledger.total().as_pj(), 24.0);
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kMemRead).as_pj(), 15.0);
  EXPECT_DOUBLE_EQ(ledger.dynamic_total().as_pj(), 24.0);
}

TEST(EnergyLedger, LeakageSeparatedFromDynamic) {
  EnergyLedger ledger;
  const ComponentId a = ledger.register_component("sram");
  ledger.add_leakage(a, Power::mw(2.0), Time::ns(10.0));  // 20 pJ
  ledger.add(a, Activity::kMemRead, 5_pJ);
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kLeakage).as_pj(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.dynamic_total().as_pj(), 5.0);
}

TEST(EnergyLedger, ResetZeroes) {
  EnergyLedger ledger;
  const ComponentId a = ledger.register_component("x");
  ledger.add(a, Activity::kControl, 3_pJ);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total().as_pj(), 0.0);
  EXPECT_EQ(ledger.component_count(), 1u);  // registrations survive
}

TEST(EnergyLedger, BreakdownMentionsComponentsAndTotal) {
  EnergyLedger ledger;
  ledger.add(ledger.register_component("hp0.sram"), Activity::kMemRead, 1_pJ);
  const std::string s = ledger.breakdown();
  EXPECT_NE(s.find("hp0.sram"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(LeakageTracker, IntegratesOnIntervals) {
  EnergyLedger ledger;
  const ComponentId id = ledger.register_component("leaky");
  LeakageTracker t{&ledger, id, Power::mw(1.0)};
  t.power_on(Time::ns(10));
  t.power_off(Time::ns(30));   // 20 ns on -> 20 pJ
  t.power_on(Time::ns(100));
  t.power_off(Time::ns(105));  // 5 ns -> 5 pJ
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kLeakage).as_pj(), 25.0);
  EXPECT_EQ(t.total_on_time(), Time::ns(25));
}

TEST(LeakageTracker, RedundantTransitionsAreNoOps) {
  EnergyLedger ledger;
  const ComponentId id = ledger.register_component("leaky");
  LeakageTracker t{&ledger, id, Power::mw(1.0)};
  t.power_off(Time::ns(5));  // already off
  t.power_on(Time::ns(10));
  t.power_on(Time::ns(20));  // no restart: interval began at 10
  t.power_off(Time::ns(30));
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kLeakage).as_pj(), 20.0);
}

TEST(LeakageTracker, SettleClosesWithoutStateChange) {
  EnergyLedger ledger;
  const ComponentId id = ledger.register_component("leaky");
  LeakageTracker t{&ledger, id, Power::mw(2.0)};
  t.power_on(Time::zero());
  t.settle(Time::ns(10));
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kLeakage).as_pj(), 20.0);
  EXPECT_TRUE(t.is_on());
  t.settle(Time::ns(15));  // only the new 5 ns are added
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kLeakage).as_pj(), 30.0);
}

TEST(LeakageTracker, SetPowerSplitsInterval) {
  EnergyLedger ledger;
  const ComponentId id = ledger.register_component("banked");
  LeakageTracker t{&ledger, id, Power::mw(4.0)};
  t.power_on(Time::zero());
  t.set_power(Power::mw(1.0), Time::ns(10));  // 40 pJ so far
  t.power_off(Time::ns(20));                  // + 10 pJ
  EXPECT_DOUBLE_EQ(ledger.total(Activity::kLeakage).as_pj(), 50.0);
}

TEST(ActivityNames, AllDistinct) {
  EXPECT_STREQ(to_string(Activity::kMemRead), "mem-read");
  EXPECT_STREQ(to_string(Activity::kLeakage), "leakage");
  EXPECT_STREQ(to_string(Activity::kTransfer), "transfer");
}

}  // namespace
}  // namespace hhpim::energy
