// Determinism regression suite.
//
// Every future performance refactor (sharding, batching, faster hot paths)
// must preserve one property: the same scenario with the same seed produces
// bit-identical results. These tests pin that down at three levels — the
// workload generator, the discrete-event engine with seeded randomness, and
// a full Processor::run_scenario pass.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "workload/scenario.hpp"

namespace hhpim {
namespace {

using workload::Scenario;

TEST(WorkloadDeterminism, SameSeedSameLoads) {
  workload::ScenarioConfig cfg;
  cfg.seed = 0xfeedbeef;
  const auto a = workload::generate(Scenario::kRandom, cfg);
  const auto b = workload::generate(Scenario::kRandom, cfg);
  EXPECT_EQ(a, b);

  cfg.seed = 0xfeedbeef + 1;
  const auto c = workload::generate(Scenario::kRandom, cfg);
  EXPECT_NE(a, c);
}

// Seeded event cascade on sim::Engine: tasks of slice k arrive at k * slice,
// each completing after an Rng-drawn service time; a completion may spawn a
// follow-up event. Returns the stats a perf refactor must not perturb.
struct EngineRunResult {
  sim::Summary latency;
  sim::Histogram occupancy{0.0, 16.0, 16};
  std::uint64_t executed = 0;
  std::int64_t final_ps = 0;
};

EngineRunResult run_engine_cascade(std::uint64_t seed) {
  EngineRunResult r;
  sim::Engine engine;
  Rng rng{seed};
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.slices = 20;
  const auto loads = workload::generate(Scenario::kRandom, cfg);

  const Time slice = Time::us(50.0);
  int in_flight = 0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    const Time arrival = slice * static_cast<std::int64_t>(k);
    for (int t = 0; t < loads[k]; ++t) {
      engine.schedule_at(arrival, [&, arrival]() {
        ++in_flight;
        r.occupancy.add(static_cast<double>(in_flight));
        const Time service = Time::ns(static_cast<double>(rng.next_in(500, 5000)));
        engine.schedule_after(service, [&, arrival]() {
          --in_flight;
          r.latency.add((engine.now() - arrival).as_us());
          if (rng.next_bool(0.25)) {  // occasional follow-up work
            engine.schedule_after(Time::ns(static_cast<double>(rng.next_in(100, 900))),
                                  []() {});
          }
        });
      });
    }
  }
  engine.run();
  r.executed = engine.executed();
  r.final_ps = engine.now().as_ps();
  return r;
}

void expect_bit_identical(const EngineRunResult& a, const EngineRunResult& b) {
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.final_ps, b.final_ps);
  // Summary: exact double equality, not near-equality — the guard is that
  // event order (and thus accumulation order) is reproducible.
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.variance(), b.latency.variance());
  EXPECT_EQ(a.occupancy.total(), b.occupancy.total());
  EXPECT_EQ(a.occupancy.bins(), b.occupancy.bins());
}

TEST(EngineDeterminism, SeededCascadeIsBitIdentical) {
  const auto a = run_engine_cascade(0x5eed2025);
  const auto b = run_engine_cascade(0x5eed2025);
  ASSERT_GT(a.executed, 0u);
  expect_bit_identical(a, b);
}

TEST(EngineDeterminism, DifferentSeedsDiverge) {
  const auto a = run_engine_cascade(1);
  const auto b = run_engine_cascade(2);
  EXPECT_NE(a.latency.sum(), b.latency.sum());
}

sys::RunStats run_system_scenario(std::uint64_t seed) {
  sys::SystemConfig cfg;
  cfg.arch = sys::ArchConfig::hhpim();
  cfg.lut_t_entries = 32;
  cfg.lut_k_blocks = 32;
  workload::ScenarioConfig wc;
  wc.seed = seed;
  wc.slices = 10;
  const auto loads = workload::generate(Scenario::kRandom, wc);
  sys::Processor p{cfg, nn::zoo::efficientnet_b0()};
  return p.run_scenario(loads);
}

TEST(SystemDeterminism, RunScenarioIsBitIdentical) {
  const auto a = run_system_scenario(0x5eed2025);
  const auto b = run_system_scenario(0x5eed2025);

  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.deadline_violations, b.deadline_violations);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_energy.as_pj(), b.total_energy.as_pj());

  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t i = 0; i < a.slices.size(); ++i) {
    const auto& sa = a.slices[i];
    const auto& sb = b.slices[i];
    EXPECT_EQ(sa.tasks_executed, sb.tasks_executed) << "slice " << i;
    EXPECT_EQ(sa.alloc, sb.alloc) << "slice " << i;
    EXPECT_EQ(sa.movement_time, sb.movement_time) << "slice " << i;
    EXPECT_EQ(sa.busy_time, sb.busy_time) << "slice " << i;
    EXPECT_EQ(sa.energy.as_pj(), sb.energy.as_pj()) << "slice " << i;
    EXPECT_EQ(sa.deadline_violated, sb.deadline_violated) << "slice " << i;
  }
}

}  // namespace
}  // namespace hhpim
