#include "pim/controller.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "pim/cluster.hpp"

namespace hhpim::pim {
namespace {

using energy::ClusterKind;
using energy::EnergyLedger;
using energy::MemoryKind;
using energy::PowerSpec;

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : cluster(ClusterConfig{"hp", ClusterKind::kHighPerformance, 4, 64 * 1024, 64 * 1024},
                spec, &ledger) {}

  std::vector<isa::Instruction> program(const std::string& src) {
    const auto r = isa::assemble(src);
    return std::get<std::vector<isa::Instruction>>(r);
  }

  PowerSpec spec = PowerSpec::paper_45nm();
  EnergyLedger ledger;
  Cluster cluster;
};

TEST_F(ControllerTest, MacInstructionDrivesSelectedModules) {
  const auto summary = cluster.controller().run_program(
      Time::zero(), program("mac.sram m0-1, 100\nhalt"));
  EXPECT_EQ(summary.instructions, 2u);
  EXPECT_EQ(cluster.module(0).total_macs(), 100u);
  EXPECT_EQ(cluster.module(1).total_macs(), 100u);
  EXPECT_EQ(cluster.module(2).total_macs(), 0u);
}

TEST_F(ControllerTest, FetchDecodeOverheadAppliesPerInstruction) {
  const auto summary = cluster.controller().run_program(
      Time::zero(), program("nop\nnop\nnop\nhalt"));
  // 4 instructions * (1 fetch + 1 decode) cycles of 1 ns.
  EXPECT_EQ(summary.complete, Time::ns(8.0));
  EXPECT_EQ(cluster.controller().instructions_retired(), 4u);
}

TEST_F(ControllerTest, BarrierWaitsForModules) {
  const auto summary = cluster.controller().run_program(
      Time::zero(), program("mac.sram m0, 1000\nbarrier m0\nhalt"));
  // Burst: issued at 2 ns (fetch+decode), runs 1000 * 6.64 ns.
  const Time burst_end = Time::ns(2.0) + Time::ns(6640.0);
  EXPECT_GE(summary.complete, burst_end);
}

TEST_F(ControllerTest, HaltStopsExecution) {
  const auto summary = cluster.controller().run_program(
      Time::zero(), program("halt\nmac.sram m0, 50"));
  EXPECT_EQ(summary.instructions, 1u);
  EXPECT_EQ(cluster.module(0).total_macs(), 0u);
  EXPECT_EQ(cluster.controller().state(), ControllerState::kHalted);
}

TEST_F(ControllerTest, PowerInstructionsGateBanks) {
  cluster.controller().run_program(Time::zero(),
                                   program("pwron.mram m0\nhalt"));
  EXPECT_TRUE(cluster.module(0).bank(MemoryKind::kMram).is_on());
  cluster.controller().run_program(cluster.busy_until(),
                                   program("pwroff.mram m0\nhalt"));
  EXPECT_FALSE(cluster.module(0).bank(MemoryKind::kMram).is_on());
}

TEST_F(ControllerTest, ControlEnergyCharged) {
  const Energy before = ledger.total(energy::Activity::kControl);
  cluster.controller().run_program(Time::zero(), program("nop\nnop\nhalt"));
  const Energy after = ledger.total(energy::Activity::kControl);
  // 3 instructions * 0.8 pJ default.
  EXPECT_NEAR((after - before).as_pj(), 2.4, 0.01);
}

TEST_F(ControllerTest, ClusterComputeSplitsAcrossModules) {
  const Time done = cluster.compute(Time::zero(), MemoryKind::kSram, 1003);
  // 1003 over 4 modules: three get 251, one gets 250.
  EXPECT_EQ(cluster.module(0).total_macs(), 251u);
  EXPECT_EQ(cluster.module(3).total_macs(), 250u);
  EXPECT_EQ(done, Time::ns(251 * 6.64));
  EXPECT_EQ(cluster.busy_until(), done);
}

TEST_F(ControllerTest, ClusterResidencyDistribution) {
  cluster.distribute_resident(MemoryKind::kSram, 10, Time::zero());
  EXPECT_EQ(cluster.resident(MemoryKind::kSram), 10u);
  EXPECT_EQ(cluster.module(0).resident(MemoryKind::kSram), 3u);
  EXPECT_EQ(cluster.module(2).resident(MemoryKind::kSram), 2u);
  EXPECT_EQ(cluster.weight_capacity(MemoryKind::kSram), 4u * 64 * 1024);
}

TEST_F(ControllerTest, ReluIsPeOnly) {
  cluster.controller().run_program(Time::zero(), program("relu m0, 500\nhalt"));
  // 500 PE ops at 5.52 ns, no memory reads.
  EXPECT_EQ(cluster.module(0).busy_until(), Time::ns(2.0) + Time::ns(500 * 5.52));
  EXPECT_EQ(cluster.module(0).bank(MemoryKind::kSram).read_count(), 0u);
  EXPECT_EQ(cluster.module(0).total_macs(), 500u);
}

TEST_F(ControllerTest, GemvStreamsWeightsLikeMac) {
  cluster.controller().run_program(Time::zero(), program("gemv.mram m1, 64\nhalt"));
  EXPECT_EQ(cluster.module(1).bank(MemoryKind::kMram).read_count(), 64u);
  EXPECT_EQ(cluster.module(1).total_macs(), 64u);
}

TEST(InstructionQueue, FifoAndCapacity) {
  InstructionQueue q{2};
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(isa::make_halt()));
  EXPECT_TRUE(q.push(isa::make_barrier()));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(isa::make_halt()));
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.peak_occupancy(), 2u);
  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->category, isa::Category::kSync);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.total_pushed(), 2u);
}

}  // namespace
}  // namespace hhpim::pim
