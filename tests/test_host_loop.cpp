// Host-in-the-loop suite: the per-slice RISC-V scheduler co-simulation
// (sys::HostConfig) and its byte-contracts — deterministic cycles and
// energy, host state folded into state_digest()/save_state(), the reuse
// key gated on the feature flag, and fleet JSONL/summary output that is
// byte-identical at any thread count with the memo on or off. The inverse
// contract matters just as much: with the host disabled, no output byte
// anywhere mentions the feature.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim {
namespace {

sys::SystemConfig host_config(placement::LutCache* luts = nullptr) {
  sys::SystemConfig c;
  c.lut_t_entries = 16;
  c.lut_k_blocks = 16;
  c.lut_cache = luts;
  c.host.enabled = true;
  return c;
}

// --- processor-level contracts -----------------------------------------------

TEST(HostLoop, SliceRunsSchedulerDeterministically) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache luts;
  sys::Processor a{host_config(&luts), model};
  sys::Processor b{host_config(&luts), model};

  const int loads[] = {3, 1, 0, 4, 2};
  for (const int n : loads) {
    const sys::SliceStats sa = a.run_slice(n);
    const sys::SliceStats sb = b.run_slice(n);
    EXPECT_GT(sa.host_cycles, 0u);  // the scheduler runs even when idle
    EXPECT_EQ(sa.host_cycles, sb.host_cycles);
    EXPECT_DOUBLE_EQ(sa.energy.as_pj(), sb.energy.as_pj());
    EXPECT_EQ(a.state_digest(), b.state_digest());
  }
  // More dispatched tasks = more scheduler work.
  sys::Processor c{host_config(&luts), model};
  sys::Processor d{host_config(&luts), model};
  EXPECT_GT(c.run_slice(8).host_cycles, d.run_slice(1).host_cycles);
}

TEST(HostLoop, HostEnergyLandsInTheLedger) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache luts;
  sys::SystemConfig off = host_config(&luts);
  off.host.enabled = false;
  sys::Processor with{host_config(&luts), model};
  sys::Processor without{off, model};

  const sys::SliceStats s_on = with.run_slice(3);
  const sys::SliceStats s_off = without.run_slice(3);
  EXPECT_GT(s_on.host_cycles, 0u);
  EXPECT_EQ(s_off.host_cycles, 0u);
  EXPECT_GT(s_on.energy.as_pj(), s_off.energy.as_pj())
      << "host cycles must add energy, not just a counter";
  // Host time is accounting-only: it never extends the slice's busy time.
  EXPECT_EQ(s_on.busy_time.as_ps(), s_off.busy_time.as_ps());
}

TEST(HostLoop, DigestAndResetFoldHostState) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache luts;
  sys::Processor p{host_config(&luts), model};
  const std::uint64_t fresh = p.state_digest();

  (void)p.run_slice(3);
  const std::uint64_t after = p.state_digest();
  EXPECT_NE(after, fresh) << "scheduler state at 0x800 moved";

  // Same slice sequence on a fresh machine reaches the same digest...
  sys::Processor q{host_config(&luts), model};
  (void)q.run_slice(3);
  EXPECT_EQ(q.state_digest(), after);

  // ...and reset() restores the initial host RAM image exactly.
  p.reset();
  EXPECT_EQ(p.state_digest(), fresh);
}

TEST(HostLoop, SaveLoadRoundtripRestoresHostRam) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache luts;
  sys::Processor p{host_config(&luts), model};
  (void)p.run_slice(3);
  (void)p.run_slice(1);

  ByteWriter w;
  p.save_state(w);
  const std::string blob = w.take();
  const std::uint64_t at_save = p.state_digest();

  // Continue the original; replay the same tail on a restored clone.
  const sys::SliceStats cont = p.run_slice(4);

  sys::Processor clone{host_config(&luts), model};
  ByteReader r{blob};
  clone.load_state(r);
  EXPECT_EQ(clone.state_digest(), at_save);
  const sys::SliceStats replay = clone.run_slice(4);

  EXPECT_EQ(replay.host_cycles, cont.host_cycles);
  EXPECT_DOUBLE_EQ(replay.energy.as_pj(), cont.energy.as_pj());
  EXPECT_EQ(clone.state_digest(), p.state_digest());
}

TEST(HostLoop, ReuseKeyGatedOnEnable) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  sys::SystemConfig off;
  off.lut_t_entries = 16;
  off.lut_k_blocks = 16;

  // Disabled: host fields are inert — the key must not move (feature-off
  // builds stay bit-exchangeable with pre-feature builds).
  sys::SystemConfig off_tweaked = off;
  off_tweaked.host.clock_ghz = 3.0;
  off_tweaked.host.ram_bytes = 8192;
  off_tweaked.host.program = "ecall";
  EXPECT_EQ(sys::processor_reuse_key(off, model),
            sys::processor_reuse_key(off_tweaked, model));

  // Enabled: the flag, the program, and every cost knob separate machines.
  sys::SystemConfig on = off;
  on.host.enabled = true;
  EXPECT_NE(sys::processor_reuse_key(on, model),
            sys::processor_reuse_key(off, model));

  sys::SystemConfig other = on;
  other.host.clock_ghz = 2.0;
  EXPECT_NE(sys::processor_reuse_key(on, model),
            sys::processor_reuse_key(other, model));

  other = on;
  other.host.program = "ecall";
  EXPECT_NE(sys::processor_reuse_key(on, model),
            sys::processor_reuse_key(other, model));

  other = on;
  other.host.cycles.div = 16;
  EXPECT_NE(sys::processor_reuse_key(on, model),
            sys::processor_reuse_key(other, model));
}

TEST(HostLoop, BadProgramsFailLoudly) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache luts;

  sys::SystemConfig bad_asm = host_config(&luts);
  bad_asm.host.program = "bogus a0, a1";
  EXPECT_THROW((sys::Processor{bad_asm, model}), std::invalid_argument);

  // A wedged scheduler (never reaches ECALL) is a hard error, not a stat.
  sys::SystemConfig spin = host_config(&luts);
  spin.host.program = "spin:\n j spin";
  spin.host.max_steps_per_slice = 1000;
  sys::Processor wedged{spin, model};
  EXPECT_THROW((void)wedged.run_slice(1), std::runtime_error);

  // EBREAK is equally fatal — only ECALL means "slice done".
  sys::SystemConfig brk = host_config(&luts);
  brk.host.program = "ebreak";
  sys::Processor breaks{brk, model};
  EXPECT_THROW((void)breaks.run_slice(1), std::runtime_error);
}

// --- fleet-level contracts ---------------------------------------------------

fleet::FleetSpec host_fleet(int devices = 24, int slices = 6) {
  fleet::FleetSpec spec;
  spec.name = "host-fleet";
  spec.devices = devices;
  spec.slices = slices;
  spec.models = {nn::zoo::efficientnet_b0()};
  spec.config.lut_t_entries = 16;
  spec.config.lut_k_blocks = 16;
  spec.config.host.enabled = true;
  return spec;
}

fleet::FleetResult run_with(const fleet::FleetSpec& spec, unsigned threads,
                            placement::LutCache* luts,
                            fleet::OutcomeCache* memo) {
  fleet::FleetOptions opts;
  opts.threads = threads;
  opts.shard_size = 4;
  opts.lut_cache = luts;
  opts.memoize_devices = memo != nullptr;
  opts.outcome_cache = memo;
  return fleet::FleetSimulator{opts}.run(spec);
}

TEST(FleetHostLoop, ByteIdenticalAcrossThreadsAndMemo) {
  const fleet::FleetSpec spec = host_fleet();
  placement::LutCache ref_luts;
  const fleet::FleetResult ref = run_with(spec, 1, &ref_luts, nullptr);
  const std::string ref_jsonl = ref.to_jsonl();
  const std::string ref_summary = ref.summary_to_json();
  ASSERT_NE(ref_jsonl.find("\"host_cycles\":"), std::string::npos);
  ASSERT_NE(ref_summary.find("\"host_cycles\":"), std::string::npos);

  for (const unsigned threads : {1u, 8u}) {
    for (const bool memoize : {false, true}) {
      placement::LutCache luts;
      fleet::OutcomeCache memo;
      const fleet::FleetResult r =
          run_with(spec, threads, &luts, memoize ? &memo : nullptr);
      EXPECT_EQ(r.to_jsonl(), ref_jsonl)
          << "threads=" << threads << " memo=" << memoize;
      EXPECT_EQ(r.summary_to_json(), ref_summary)
          << "threads=" << threads << " memo=" << memoize;
    }
  }
}

TEST(FleetHostLoop, MemoReplaysHostDevices) {
  // The default scheduler's RAM state is a pure function of (state, load),
  // so identical devices replay through the outcome memo with the host on.
  const fleet::FleetSpec spec = host_fleet();
  placement::LutCache luts;
  fleet::OutcomeCache memo;
  (void)run_with(spec, 1, &luts, &memo);  // warm
  const fleet::FleetResult warm = run_with(spec, 1, &luts, &memo);
  EXPECT_GT(warm.memo_replayed_devices, 0u);
  EXPECT_EQ(warm.memo_exact_devices, 0u)
      << "every device of a warm homogeneous host fleet must replay";
}

TEST(FleetHostLoop, FeatureOffEmitsNoHostBytes) {
  fleet::FleetSpec spec = host_fleet();
  spec.config.host.enabled = false;
  placement::LutCache luts;
  const fleet::FleetResult r = run_with(spec, 1, &luts, nullptr);
  EXPECT_EQ(r.to_jsonl().find("host_cycles"), std::string::npos);
  EXPECT_EQ(r.summary_to_json().find("host_cycles"), std::string::npos);
  for (const fleet::DeviceResult& d : r.devices) {
    EXPECT_EQ(d.host_cycles, 0u);
  }
}

TEST(FleetHostLoop, ContentDigestTracksHostConfig) {
  const fleet::FleetSpec off = [] {
    fleet::FleetSpec s = host_fleet();
    s.config.host.enabled = false;
    return s;
  }();
  const fleet::FleetSpec on = host_fleet();
  EXPECT_NE(on.content_digest(), off.content_digest());

  fleet::FleetSpec other_clock = host_fleet();
  other_clock.config.host.clock_ghz = 2.0;
  EXPECT_NE(on.content_digest(), other_clock.content_digest());
}

TEST(FleetHostLoop, SnapshotRoundtripWithHost) {
  // Checkpoint mid-run and resume: exercises the host RAM blob in
  // Processor::save_state and the kTagHost field in fleet snapshots.
  const fleet::FleetSpec spec = host_fleet(12, 6);
  placement::LutCache luts;
  {
    // Pre-warm the LUT so both runs see the same builds/shared split (the
    // summary includes the per-run cache-stats delta).
    const sys::SystemConfig cfg = fleet::Device::device_config(spec, &luts);
    const sys::Processor warm{cfg, spec.models[0]};
  }
  fleet::FleetOptions opts;
  opts.threads = 1;
  opts.shard_size = 4;
  opts.lut_cache = &luts;
  opts.memoize_devices = false;
  const fleet::FleetSimulator sim{opts};

  const fleet::FleetResult whole = sim.run(spec);
  const fleet::FleetSnapshot mid = sim.run_to(spec, 3);
  const fleet::FleetResult resumed = sim.resume(spec, mid);
  EXPECT_EQ(resumed.to_jsonl(), whole.to_jsonl());
  EXPECT_EQ(resumed.summary_to_json(), whole.summary_to_json());
}

}  // namespace
}  // namespace hhpim
