// Checkpoint/restore suite: the headline invariant is "restore changes
// nothing, ever" — a fleet run cut into resumable segments (FleetSimulator::
// run_to + resume, snapshots round-tripped through the binary format between
// segments) produces byte-identical JSONL and summary JSON to the
// uninterrupted run, at any thread count, with device memoization on or off,
// across lifecycle events, charging windows, firmware mixes and load
// envelopes. Plus: the format's loud-failure guarantees (truncated,
// corrupted, future-version, wrong-spec blobs all throw with a diagnostic),
// lifecycle/envelope/charging semantics, and a ~200-spec seeded fuzz sweep
// that dumps the offending seed + spec on any divergence.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "nn/zoo.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim::fleet {
namespace {

/// A small fleet that runs in milliseconds: one model, low LUT resolution.
FleetSpec small_fleet(int devices = 24, int slices = 10) {
  FleetSpec spec;
  spec.name = "snapshot-fleet";
  spec.devices = devices;
  spec.slices = slices;
  spec.models = {nn::zoo::efficientnet_b0()};
  spec.config.lut_t_entries = 16;
  spec.config.lut_k_blocks = 16;
  // Small enough that some devices exhaust mid-run — the sweep below cuts
  // on both sides of the exhaustion boundary.
  spec.battery.capacity = Energy::mj(10.0);
  return spec;
}

struct RunOutput {
  std::string jsonl;
  std::string summary;
};

FleetOptions base_options(unsigned threads, bool memo, placement::LutCache* lut,
                          OutcomeCache* outcome) {
  FleetOptions opt;
  opt.threads = threads;
  opt.shard_size = 7;  // deliberately not a divisor of the device counts
  opt.lut_cache = lut;
  opt.memoize_devices = memo;
  opt.outcome_cache = outcome;
  return opt;
}

/// One uninterrupted run on fresh caches (fresh so lut_builds in the summary
/// is comparable between runs — a shared warm cache would zero the delta).
RunOutput run_whole(const FleetSpec& spec, unsigned threads, bool memo) {
  placement::LutCache lut;
  OutcomeCache outcome;
  const FleetSimulator sim{base_options(threads, memo, &lut, &outcome)};
  const FleetResult r = sim.run(spec);
  return {r.to_jsonl(), r.summary_to_json()};
}

/// The same run cut at the given global slice boundaries, each snapshot
/// round-tripped through the binary format between segments.
RunOutput run_segmented(const FleetSpec& spec, const std::vector<int>& cuts,
                        unsigned threads, bool memo) {
  placement::LutCache lut;
  OutcomeCache outcome;
  const FleetSimulator sim{base_options(threads, memo, &lut, &outcome)};
  FleetSnapshot snap;
  bool have = false;
  for (const int cut : cuts) {
    snap = sim.run_to(spec, cut, have ? &snap : nullptr);
    snap = FleetSnapshot::from_bytes(snap.to_bytes());
    have = true;
  }
  const FleetResult r = have ? sim.resume(spec, snap) : sim.run(spec);
  return {r.to_jsonl(), r.summary_to_json()};
}

/// An "at slice 0" snapshot: nothing executed yet. resume() on it must run
/// the whole fleet — the degenerate split point of the sweep.
FleetSnapshot initial_snapshot(const FleetSpec& spec) {
  FleetSnapshot snap;
  snap.spec_digest = spec.content_digest();
  snap.next_slice = 0;
  snap.devices.resize(static_cast<std::size_t>(spec.devices));
  return snap;
}

// --- round-trip equality: split sweep × threads × memo -----------------------

TEST(Snapshot, SplitSweepMatchesUninterrupted) {
  // 24 devices at shard_size 7: cut-independent, but the sweep's split
  // points land mid-shard and on shard boundaries in *device* space via the
  // exhaustion staggering, and before/at/after exhaustion in slice space.
  // With capacity 10 mJ devices exhaust around slices 3-6.
  const FleetSpec spec = small_fleet(24, 10);
  for (const unsigned threads : {1u, 8u}) {
    for (const bool memo : {true, false}) {
      const RunOutput whole = run_whole(spec, threads, memo);
      for (const int cut : {1, 3, 5, 7, 9, 10}) {
        const RunOutput seg = run_segmented(spec, {cut}, threads, memo);
        EXPECT_EQ(seg.jsonl, whole.jsonl)
            << "cut=" << cut << " threads=" << threads << " memo=" << memo;
        EXPECT_EQ(seg.summary, whole.summary)
            << "cut=" << cut << " threads=" << threads << " memo=" << memo;
      }
    }
  }
}

TEST(Snapshot, ResumeFromInitialSnapshotMatchesRun) {
  const FleetSpec spec = small_fleet(12, 6);
  const RunOutput whole = run_whole(spec, 1, true);

  placement::LutCache lut;
  OutcomeCache outcome;
  const FleetSimulator sim{base_options(1, true, &lut, &outcome)};
  const FleetSnapshot snap =
      FleetSnapshot::from_bytes(initial_snapshot(spec).to_bytes());
  const FleetResult r = sim.resume(spec, snap);
  EXPECT_EQ(r.to_jsonl(), whole.jsonl);
  EXPECT_EQ(r.summary_to_json(), whole.summary);
}

TEST(Snapshot, ManySegmentsMatchUninterrupted) {
  FleetSpec spec = small_fleet(24, 12);
  spec.lifecycle.join_fraction = 0.4;
  spec.lifecycle.leave_fraction = 0.4;
  spec.charging = {.period = 4, .window = 1, .energy_per_slice = Energy::mj(2.0)};
  spec.envelope.enabled = true;
  spec.envelope.min_multiplier = 0.5;
  spec.envelope.max_multiplier = 1.5;
  for (const unsigned threads : {1u, 8u}) {
    const RunOutput whole = run_whole(spec, threads, true);
    // Every-slice cuts: each device crosses several segment boundaries
    // (including its join/leave slices) and round-trips through bytes at
    // every one of them.
    const RunOutput seg = run_segmented(
        spec, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, threads, true);
    EXPECT_EQ(seg.jsonl, whole.jsonl) << "threads=" << threads;
    EXPECT_EQ(seg.summary, whole.summary) << "threads=" << threads;
  }
}

TEST(Snapshot, WeekScaleSegmentsMatchUninterrupted) {
  // Scaled-down week: 672 slices (7 days x 24 h x 4) as 7 one-day segments.
  // The full 10k-device week runs as a CI smoke; this keeps the shape — long
  // horizon, day-boundary cuts, churn + diurnal envelope — in the inner loop.
  FleetSpec spec = small_fleet(96, 672);
  spec.battery.capacity = Energy::mj(2000.0);
  spec.lifecycle.join_fraction = 0.25;
  spec.lifecycle.leave_fraction = 0.25;
  spec.charging = {.period = 96, .window = 24,
                   .energy_per_slice = Energy::mj(40.0)};
  spec.envelope.enabled = true;
  spec.envelope.shape = workload::Scenario::kPulsing;
  spec.envelope.min_multiplier = 0.25;
  spec.envelope.max_multiplier = 1.25;
  const RunOutput whole = run_whole(spec, 8, true);
  const RunOutput seg =
      run_segmented(spec, {96, 192, 288, 384, 480, 576}, 8, true);
  EXPECT_EQ(seg.jsonl, whole.jsonl);
  EXPECT_EQ(seg.summary, whole.summary);
}

// --- seeded snapshot fuzz ----------------------------------------------------

/// Compact spec dump for one-line repro of a fuzz failure.
std::string describe(const FleetSpec& spec, std::uint64_t fuzz_seed, int cut,
                     unsigned threads, bool memo) {
  std::ostringstream os;
  os << "{\"fuzz_seed\":" << fuzz_seed << ",\"cut\":" << cut
     << ",\"threads\":" << threads << ",\"memo\":" << (memo ? 1 : 0)
     << ",\"devices\":" << spec.devices << ",\"slices\":" << spec.slices
     << ",\"seed\":" << spec.seed << ",\"models\":" << spec.models.size()
     << ",\"firmware\":" << spec.firmware.size()
     << ",\"join_fraction\":" << spec.lifecycle.join_fraction
     << ",\"leave_fraction\":" << spec.lifecycle.leave_fraction
     << ",\"charging\":[" << spec.charging.period << "," << spec.charging.window
     << "," << spec.charging.energy_per_slice.as_pj() << "]"
     << ",\"envelope\":[" << (spec.envelope.enabled ? 1 : 0) << ","
     << static_cast<int>(spec.envelope.shape) << ","
     << spec.envelope.min_multiplier << "," << spec.envelope.max_multiplier
     << "]"
     << ",\"battery_pj\":" << spec.battery.capacity.as_pj()
     << ",\"adapt\":" << (spec.adapt ? 1 : 0) << "}";
  return os.str();
}

TEST(SnapshotFuzz, RandomSpecsRandomCuts) {
  constexpr std::uint64_t kFuzzSeed = 0x5eedf00d2026ULL;
  constexpr int kSpecs = 200;
  SplitMix64 rng{kFuzzSeed};
  const std::vector<nn::Model> zoo = {nn::zoo::efficientnet_b0(),
                                      nn::zoo::mobilenet_v2()};
  for (int i = 0; i < kSpecs; ++i) {
    FleetSpec spec;
    spec.name = "fuzz";
    spec.devices = static_cast<int>(rng.next() % 13);        // 0..12
    spec.slices = 1 + static_cast<int>(rng.next() % 16);     // 1..16
    spec.seed = rng.next();
    spec.models = {zoo[0]};
    if (rng.next() % 2 == 0) spec.models.push_back(zoo[1]);
    spec.config.lut_t_entries = 16;
    spec.config.lut_k_blocks = 16;
    if (rng.next() % 3 == 0) {
      // Firmware heterogeneity: a second knob generation whose LUT key
      // differs from firmware 0's.
      sys::SystemConfig fw2 = spec.config;
      fw2.lut_t_entries = 24;
      spec.firmware = {spec.config, fw2};
    }
    spec.battery.capacity =
        Energy::mj(5.0 + static_cast<double>(rng.next() % 40));
    spec.lifecycle.join_fraction =
        static_cast<double>(rng.next() % 4) * 0.25;          // 0, .25, .5, .75
    spec.lifecycle.leave_fraction = static_cast<double>(rng.next() % 4) * 0.25;
    if (rng.next() % 3 == 0 && spec.devices > 0) {
      spec.lifecycle_overrides.push_back(
          {.id = 0,
           .join_slice = static_cast<int>(rng.next() %
                                          static_cast<std::uint64_t>(
                                              spec.slices)),
           .leave_slice = -1});
    }
    if (rng.next() % 2 == 0) {
      spec.charging = {
          .period = 1 + static_cast<int>(rng.next() % 6),
          .window = 0,
          .energy_per_slice = Energy::mj(static_cast<double>(rng.next() % 8))};
      spec.charging.window =
          static_cast<int>(rng.next() %
                           static_cast<std::uint64_t>(spec.charging.period + 1));
    }
    if (rng.next() % 2 == 0) {
      spec.envelope.enabled = true;
      const workload::Scenario shapes[] = {workload::Scenario::kPulsing,
                                           workload::Scenario::kRandom,
                                           workload::Scenario::kBurstDecay};
      spec.envelope.shape = shapes[rng.next() % 3];
      spec.envelope.seed = rng.next();
      spec.envelope.min_multiplier = 0.25 * static_cast<double>(rng.next() % 5);
      spec.envelope.max_multiplier =
          spec.envelope.min_multiplier +
          0.25 * static_cast<double>(rng.next() % 5);
    }
    const int cut = 1 + static_cast<int>(
                            rng.next() % static_cast<std::uint64_t>(spec.slices));
    const unsigned threads = rng.next() % 2 == 0 ? 1u : 8u;
    const bool memo = rng.next() % 2 == 0;

    const RunOutput whole = run_whole(spec, threads, memo);
    const RunOutput seg =
        cut == spec.slices
            ? run_segmented(spec, {}, threads, memo)  // degenerate: no cut fits
            : run_segmented(spec, {cut}, threads, memo);
    if (seg.jsonl != whole.jsonl || seg.summary != whole.summary) {
      ADD_FAILURE() << "snapshot fuzz divergence; repro spec #" << i << ": "
                    << describe(spec, kFuzzSeed, cut, threads, memo);
      return;  // one dump is actionable; 199 more are noise
    }
  }
}

// --- loud failure: window, digest, blob --------------------------------------

TEST(Snapshot, RejectsBadWindows) {
  const FleetSpec spec = small_fleet(4, 6);
  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  EXPECT_THROW((void)sim.run_to(spec, 0), std::invalid_argument);
  EXPECT_THROW((void)sim.run_to(spec, -1), std::invalid_argument);
  EXPECT_THROW((void)sim.run_to(spec, 7), std::invalid_argument);
  const FleetSnapshot snap = sim.run_to(spec, 3);
  EXPECT_THROW((void)sim.run_to(spec, 3, &snap), std::invalid_argument);
  EXPECT_THROW((void)sim.run_to(spec, 2, &snap), std::invalid_argument);
  EXPECT_NO_THROW((void)sim.run_to(spec, 4, &snap));
}

TEST(Snapshot, RejectsSpecMismatch) {
  const FleetSpec spec = small_fleet(4, 6);
  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  const FleetSnapshot snap = sim.run_to(spec, 3);

  FleetSpec reseeded = spec;
  reseeded.seed ^= 1;
  EXPECT_THROW((void)sim.resume(reseeded, snap), std::runtime_error);
  FleetSpec recharged = spec;
  recharged.charging = {.period = 2, .window = 1,
                        .energy_per_slice = Energy::mj(1.0)};
  EXPECT_THROW((void)sim.run_to(recharged, 5, &snap), std::runtime_error);
  EXPECT_NO_THROW((void)sim.resume(spec, snap));
}

TEST(Snapshot, RoundTripsThroughBytesAndFiles) {
  const FleetSpec spec = small_fleet(6, 6);
  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  const FleetSnapshot snap = sim.run_to(spec, 3);
  const std::string bytes = snap.to_bytes();
  const FleetSnapshot back = FleetSnapshot::from_bytes(bytes);
  EXPECT_EQ(back.to_bytes(), bytes);
  EXPECT_EQ(back.spec_digest, snap.spec_digest);
  EXPECT_EQ(back.next_slice, 3);
  EXPECT_EQ(back.devices.size(), snap.devices.size());

  const char* tmp = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/hhpim_snapshot_test.bin";
  snap.save(path);
  const FleetSnapshot loaded = FleetSnapshot::load(path);
  EXPECT_EQ(loaded.to_bytes(), bytes);
  std::remove(path.c_str());
}

TEST(Snapshot, FailsLoudlyOnDamagedBlobs) {
  const FleetSpec spec = small_fleet(6, 6);
  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  const std::string bytes = sim.run_to(spec, 3).to_bytes();

  // Truncation at every prefix length must throw, never misread: the header
  // check, the checksum, or the payload walk catches it.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{11}, std::size_t{12},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    EXPECT_THROW((void)FleetSnapshot::from_bytes(bytes.substr(0, keep)),
                 std::runtime_error)
        << "keep=" << keep;
  }

  // A flipped bit anywhere in the payload fails the checksum.
  for (const std::size_t at : {std::size_t{12}, bytes.size() / 2,
                               bytes.size() - 9}) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    EXPECT_THROW((void)FleetSnapshot::from_bytes(corrupt), std::runtime_error)
        << "at=" << at;
  }

  // Wrong magic: not a snapshot at all.
  std::string not_snap = bytes;
  not_snap[0] = static_cast<char>(not_snap[0] ^ 0xff);
  EXPECT_THROW((void)FleetSnapshot::from_bytes(not_snap), std::runtime_error);

  // A future format version is refused even with a valid checksum — the
  // version field (bytes 8..11) is outside the checksummed payload.
  std::string future = bytes;
  future[8] = 99;
  try {
    (void)FleetSnapshot::from_bytes(future);
    FAIL() << "future-version blob was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }

  // Trailing garbage after the checksum is not silently ignored.
  EXPECT_THROW((void)FleetSnapshot::from_bytes(bytes + "x"),
               std::runtime_error);
}

// --- lifecycle / envelope / charging semantics -------------------------------

TEST(Lifecycle, JoinStartsAtSpecifiedPhase) {
  FleetSpec spec = small_fleet(4, 10);
  spec.battery.capacity = Energy::mj(1e6);  // nobody exhausts
  spec.lifecycle_overrides.push_back({.id = 1, .join_slice = 4,
                                      .leave_slice = -1});
  const std::vector<DeviceSpec> devices = spec.expand();
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_EQ(devices[1].join_slice, 4);
  EXPECT_EQ(devices[1].leave_slice, 10);
  EXPECT_EQ(devices[1].cfg.slices, 6);  // its trace covers [join, leave)
  EXPECT_EQ(devices[0].join_slice, 0);

  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  const FleetResult r = sim.run(spec);
  ASSERT_EQ(r.devices.size(), 4u);
  // The joiner runs its 6 arrival slices + the drain slice; a full-term
  // device runs 10 + 1.
  EXPECT_EQ(r.devices[1].slices_total, 7);
  EXPECT_EQ(r.devices[1].slices_executed, 7);
  EXPECT_EQ(r.devices[0].slices_total, 11);
}

TEST(Lifecycle, LeaveDropsFinalBufferLikeExhaustion) {
  FleetSpec spec = small_fleet(4, 10);
  spec.battery.capacity = Energy::mj(1e6);
  spec.lifecycle_overrides.push_back({.id = 2, .join_slice = 0,
                                      .leave_slice = 6});
  const std::vector<DeviceSpec> devices = spec.expand();
  EXPECT_EQ(devices[2].cfg.slices, 6);

  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  const FleetResult r = sim.run(spec);
  const DeviceResult& leaver = r.devices[2];
  // No drain slice: 6 arrival slices only, and the arrivals of slice 5 —
  // buffered for a slice 6 that never runs — count as dropped, exactly the
  // accounting exhaustion uses for never-executed arrivals.
  EXPECT_EQ(leaver.slices_total, 6);
  EXPECT_EQ(leaver.slices_executed, 6);
  EXPECT_EQ(leaver.exhausted_at_slice, -1);
  std::vector<int> loads;
  device_loads_into(devices[2], spec.envelope_multipliers(), loads);
  std::uint64_t arrivals = 0;
  for (const int l : loads) arrivals += static_cast<std::uint64_t>(l);
  EXPECT_EQ(leaver.tasks + leaver.tasks_dropped, arrivals);
  EXPECT_EQ(leaver.tasks_dropped, static_cast<std::uint64_t>(loads.back()));
}

TEST(Lifecycle, ChargingRefillsRespectBatteryClamp) {
  FleetSpec base = small_fleet(6, 12);
  base.battery.capacity = Energy::mj(10.0);

  // Absurdly large refills every slice: the clamp holds SoC at or below 1.0
  // and no device exhausts. Capacity must cover the worst *single* slice —
  // a full-at-every-boundary battery still dies if one slice costs more
  // than the whole pack.
  FleetSpec charged = base;
  charged.battery.capacity = Energy::mj(60.0);
  charged.charging = {.period = 1, .window = 1,
                      .energy_per_slice = Energy::mj(1e6)};
  placement::LutCache lut;
  const FleetSimulator sim{base_options(1, false, &lut, nullptr)};
  const FleetResult r = sim.run(charged);
  for (const DeviceResult& d : r.devices) {
    EXPECT_LE(d.final_soc, 1.0);
    EXPECT_EQ(d.exhausted_at_slice, -1);
    EXPECT_EQ(d.slices_executed, d.slices_total);
  }

  // A zero-energy window and a zero-width window are both exact no-ops.
  FleetSpec zero_energy = base;
  zero_energy.charging = {.period = 3, .window = 2,
                          .energy_per_slice = Energy::zero()};
  FleetSpec zero_window = base;
  zero_window.charging = {.period = 3, .window = 0,
                          .energy_per_slice = Energy::mj(5.0)};
  const RunOutput plain = run_whole(base, 1, false);
  EXPECT_EQ(run_whole(zero_energy, 1, false).jsonl, plain.jsonl);
  EXPECT_EQ(run_whole(zero_window, 1, false).jsonl, plain.jsonl);

  // And a real refill strictly helps: fewer exhausted devices, never more.
  FleetSpec real = base;
  real.charging = {.period = 2, .window = 1,
                   .energy_per_slice = Energy::mj(4.0)};
  const FleetResult plain_r = sim.run(base);
  const FleetResult real_r = sim.run(real);
  int plain_exhausted = 0;
  int real_exhausted = 0;
  for (const DeviceResult& d : plain_r.devices) {
    plain_exhausted += d.exhausted_at_slice >= 0 ? 1 : 0;
  }
  for (const DeviceResult& d : real_r.devices) {
    real_exhausted += d.exhausted_at_slice >= 0 ? 1 : 0;
  }
  EXPECT_LE(real_exhausted, plain_exhausted);
}

TEST(Envelope, UnityMultiplierIsByteIdenticalRegressionPin) {
  // envelope.enabled with min == max == 1.0 must reproduce the un-enveloped
  // output byte-for-byte — the pin that keeps the envelope path from
  // perturbing existing fleets.
  const FleetSpec plain = small_fleet(24, 10);
  FleetSpec unity = plain;
  unity.envelope.enabled = true;
  unity.envelope.min_multiplier = 1.0;
  unity.envelope.max_multiplier = 1.0;
  const RunOutput a = run_whole(plain, 8, true);
  const RunOutput b = run_whole(unity, 8, true);
  EXPECT_EQ(b.jsonl, a.jsonl);
  EXPECT_EQ(b.summary, a.summary);
}

TEST(Envelope, ScalesArrivalsAtGlobalSliceIndex) {
  FleetSpec spec = small_fleet(1, 8);
  const std::vector<DeviceSpec> devices = spec.expand();
  DeviceSpec late = devices[0];
  late.join_slice = 3;
  late.leave_slice = 8;
  late.cfg.slices = 5;

  std::vector<int> raw;
  device_loads_into(late, {}, raw);
  ASSERT_EQ(raw.size(), 5u);

  // env doubles global slices >= 4: the device's local step k maps to
  // global slice join + k, so local steps 1.. double, local step 0 does not.
  std::vector<double> env(8, 1.0);
  for (int g = 4; g < 8; ++g) env[static_cast<std::size_t>(g)] = 2.0;
  std::vector<int> scaled;
  device_loads_into(late, env, scaled);
  ASSERT_EQ(scaled.size(), raw.size());
  EXPECT_EQ(scaled[0], raw[0]);
  for (std::size_t k = 1; k < raw.size(); ++k) {
    EXPECT_EQ(scaled[k], raw[k] * 2) << "k=" << k;
  }
}

TEST(Envelope, DefaultExpansionUnchangedByFeatureGates) {
  // A spec using none of the new features must expand exactly as before the
  // lifecycle/firmware draws existed: all devices full-term on firmware 0.
  const FleetSpec spec = small_fleet(32, 10);
  for (const DeviceSpec& d : spec.expand()) {
    EXPECT_EQ(d.join_slice, 0);
    EXPECT_EQ(d.leave_slice, 10);
    EXPECT_EQ(d.firmware_index, 0u);
    EXPECT_EQ(d.cfg.slices, 10);
  }
}

TEST(Envelope, RejectsMalformedSpecs) {
  FleetSpec bad = small_fleet(4, 6);
  bad.envelope.enabled = true;
  bad.envelope.min_multiplier = 2.0;
  bad.envelope.max_multiplier = 1.0;  // min > max
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  FleetSpec frac = small_fleet(4, 6);
  frac.lifecycle.join_fraction = 1.5;
  EXPECT_THROW(frac.validate(), std::invalid_argument);

  FleetSpec over = small_fleet(4, 6);
  over.lifecycle_overrides.push_back({.id = 9, .join_slice = 0,
                                      .leave_slice = -1});  // id out of range
  EXPECT_THROW(over.validate(), std::invalid_argument);

  FleetSpec window = small_fleet(4, 6);
  window.lifecycle_overrides.push_back({.id = 0, .join_slice = 4,
                                        .leave_slice = 2});  // leave <= join
  EXPECT_THROW(window.validate(), std::invalid_argument);

  FleetSpec charge = small_fleet(4, 6);
  charge.charging = {.period = 2, .window = 3,
                     .energy_per_slice = Energy::zero()};  // window > period
  EXPECT_THROW(charge.validate(), std::invalid_argument);
}

TEST(Firmware, MixedFleetIsDeterministicAndSegmentable) {
  FleetSpec spec = small_fleet(24, 8);
  sys::SystemConfig fw2 = spec.config;
  fw2.lut_t_entries = 24;  // a distinct LUT key -> a second logical build
  spec.firmware = {spec.config, fw2};

  const RunOutput t1 = run_whole(spec, 1, true);
  const RunOutput t8 = run_whole(spec, 8, false);
  EXPECT_EQ(t1.jsonl, t8.jsonl);
  EXPECT_EQ(t1.summary, t8.summary);

  const RunOutput seg = run_segmented(spec, {3, 6}, 8, true);
  EXPECT_EQ(seg.jsonl, t1.jsonl);
  EXPECT_EQ(seg.summary, t1.summary);
}

}  // namespace
}  // namespace hhpim::fleet
