// BlockEngine correctness: bit-exact equivalence with the one-instruction
// interpreter (riscv::Cpu) on the same programs, plus the engine-only
// surfaces — block-cache stats, self-modifying-code invalidation, and the
// CycleModel counter. The equivalence contract (same registers, pc, halt
// reason, retired count, and RAM bytes after any run) is what lets the
// host-in-the-loop path trust the fast engine (docs/RISCV.md).
#include "riscv/engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "riscv/rv_asm.hpp"

namespace hhpim::riscv {
namespace {

constexpr std::size_t kRamBytes = 64 * 1024;

std::vector<std::uint32_t> assemble(const std::string& source) {
  const RvAsmResult r = assemble_rv32(source);
  if (const auto* e = std::get_if<RvAsmError>(&r)) {
    throw std::runtime_error("asm error line " + std::to_string(e->line) +
                             ": " + e->message);
  }
  return std::get<std::vector<std::uint32_t>>(r);
}

/// One program loaded into two identical machines: the interpreter and the
/// block engine. expect_equivalent() is the whole contract.
class DualMachine {
 public:
  explicit DualMachine(const std::string& source)
      : cpu_ram(kRamBytes), eng_ram(kRamBytes), cpu(&cpu_bus), engine(&eng_bus) {
    cpu_bus.map(0, kRamBytes, &cpu_ram);
    eng_bus.map(0, kRamBytes, &eng_ram);
    const std::vector<std::uint32_t> words = assemble(source);
    for (std::size_t i = 0; i < words.size(); ++i) {
      cpu_ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
      eng_ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
    }
  }

  /// Runs both cores with the same budget and returns the interpreter's
  /// step count (asserting the engine returned the same).
  std::uint64_t run(std::uint64_t max_steps = 1'000'000) {
    const std::uint64_t a = cpu.run(max_steps);
    const std::uint64_t b = engine.run(max_steps);
    EXPECT_EQ(a, b) << "run() return values diverged";
    return a;
  }

  void expect_equivalent() const {
    EXPECT_EQ(cpu.halt_reason(), engine.halt_reason());
    EXPECT_EQ(cpu.pc(), engine.pc());
    EXPECT_EQ(cpu.retired(), engine.retired());
    for (unsigned i = 0; i < 32; ++i) {
      EXPECT_EQ(cpu.reg(i), engine.reg(i)) << "x" << i;
    }
    ASSERT_EQ(std::memcmp(cpu_ram.data(), eng_ram.data(), kRamBytes), 0)
        << "RAM contents diverged";
  }

  Ram cpu_ram, eng_ram;
  Bus cpu_bus, eng_bus;
  Cpu cpu;
  BlockEngine engine;
};

TEST(BlockEngine, EquivalentOnLoopKernel) {
  DualMachine m(R"(
      li t0, 0      # sum
      li t1, 1      # i
      li t2, 101
    loop:
      add t0, t0, t1
      addi t1, t1, 1
      blt t1, t2, loop
      ecall
  )");
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.reg(5), 5050u);
  EXPECT_EQ(m.engine.halt_reason(), HaltReason::kEcall);
}

TEST(BlockEngine, EquivalentOnMemoryAndMExtension) {
  DualMachine m(R"(
      li s0, 0x1000
      li t0, 0          # i
      li t1, 0x12345
    loop:
      slli t2, t0, 2
      add  t2, t2, s0
      mul  t3, t0, t1
      mulh t4, t0, t1
      xor  t3, t3, t4
      sw   t3, 0(t2)
      lw   t5, 0(t2)
      sh   t5, 0x400(t2)
      lbu  t6, 0x400(t2)
      div  t4, t3, t0   # i == 0 first pass: div by zero path
      rem  t4, t4, t1
      addi t0, t0, 1
      li   t2, 64
      blt  t0, t2, loop
      ecall
  )");
  m.run();
  m.expect_equivalent();
}

TEST(BlockEngine, EquivalentOnFaults) {
  const char* programs[] = {
      // misaligned load
      "li t0, 0x102\n lw a0, 0(t0)\n ecall",
      // misaligned store
      "li t0, 0x101\n sh t0, 0(t0)\n ecall",
      // unmapped load
      "li t0, 0x00200000\n lw a0, 0(t0)\n ecall",
      // unmapped store
      "li t0, 0x00200000\n sw t0, 0(t0)\n ecall",
      // misaligned fetch
      "li t0, 2\n jr t0",
      // unmapped fetch
      "li t0, 0x00200000\n jr t0",
      // ebreak
      "li a0, 7\n ebreak",
  };
  for (const char* src : programs) {
    DualMachine m(src);
    m.run();
    m.expect_equivalent();
    EXPECT_TRUE(m.engine.halted()) << src;
  }
}

TEST(BlockEngine, EquivalentOnBadInstruction) {
  DualMachine m("nop\n ecall");
  m.cpu_ram.store(4, 4, 0xffffffffu);
  m.eng_ram.store(4, 4, 0xffffffffu);
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.halt_reason(), HaltReason::kBadInstruction);
}

TEST(BlockEngine, EquivalentAtEveryStepBudget) {
  // Stopping mid-block must leave exactly the interpreter's state: same pc
  // (first unexecuted op), same retired count, same registers. Sweep every
  // budget through a loop that crosses block boundaries.
  const std::string src = R"(
      li t0, 0
      li t1, 0
    loop:
      addi t0, t0, 3
      andi t2, t0, 7
      bnez t2, skip
      addi t1, t1, 1
    skip:
      li t3, 60
      blt t0, t3, loop
      ecall
  )";
  for (std::uint64_t budget = 0; budget <= 130; ++budget) {
    DualMachine m(src);
    m.run(budget);
    m.expect_equivalent();
  }
}

TEST(BlockEngine, X0StaysZero) {
  DualMachine m(R"(
      addi zero, zero, 42
      li t0, 9
      add zero, t0, t0
      mv a0, zero
      ecall
  )");
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.reg(0), 0u);
  EXPECT_EQ(m.engine.reg(10), 0u);
}

TEST(BlockEngine, SelfModifyingCodeSameBlock) {
  // The store patches an instruction *later in the same basic block* — the
  // engine must abandon the block mid-flight and recompile, executing the
  // patched word exactly like the interpreter does.
  DualMachine m(R"(
      auipc t2, 0           # t2 = 0
      addi  t2, t2, 28      # patch site (7 words in)
      li    t1, 0x00200513  # encodes: addi a0, zero, 2
      sw    t1, 0(t2)
      nop
      nop
      addi  a0, zero, 1     # the word the sw overwrites
      ecall
  )");
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.reg(10), 2u);
  EXPECT_GE(m.engine.stats().invalidations, 1u);
}

TEST(BlockEngine, SelfModifyingCodeAcrossBlocks) {
  // A loop that rewrites an instruction of a block it *executed on the
  // previous iteration* — the store hits compiled code and the engine must
  // invalidate and recompile, iteration after iteration.
  DualMachine m(R"(
      li   s0, 0            # loop counter
      li   s1, 0x00200513   # encodes: addi a0, zero, 2
      li   s2, 64           # patch site: the addi in `patched`
      li   s3, 0            # sum of the patched addi's results
    loop:
      sw   s1, 0(s2)
      call patched
      add  s3, s3, a0
      li   t0, 0x00100000   # +1 to the I-immediate field
      add  s1, s1, t0
      addi s0, s0, 1
      li   t0, 3
      blt  s0, t0, loop
      mv   a0, s3
      ecall
    patched:
      addi a0, zero, 1      # rewritten before every call
      ret
  )");
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.reg(10), 9u);  // 2 + 3 + 4
  EXPECT_GE(m.engine.stats().invalidations, 2u);
}

TEST(BlockEngine, StatsCountCompilesAndHits) {
  DualMachine m(R"(
      li t0, 0
      li t1, 2000
    loop:
      addi t0, t0, 1
      blt t0, t1, loop
      ecall
  )");
  m.run();
  m.expect_equivalent();
  const EngineStats& s = m.engine.stats();
  EXPECT_GT(s.blocks_compiled, 0u);
  EXPECT_GT(s.block_hits, s.blocks_compiled * 100)
      << "a 2000-iteration loop must be served from the cache";
  EXPECT_EQ(s.invalidations, 0u);
}

TEST(BlockEngine, ResumeKeepsCacheClearCacheDrops) {
  DualMachine m(R"(
      li t0, 0
      li t1, 100
    loop:
      addi t0, t0, 1
      blt t0, t1, loop
      ecall
  )");
  m.run();
  const std::uint64_t compiled_once = m.engine.stats().blocks_compiled;
  EXPECT_GT(compiled_once, 0u);

  // Re-running the same program reuses every block.
  m.cpu.resume(0);
  m.engine.resume(0);
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.stats().blocks_compiled, compiled_once);

  // After RAM is rewritten behind the Bus, clear_cache() + resume must see
  // the new code (the riscv_host_demo / Processor::load_state protocol).
  const std::vector<std::uint32_t> next = assemble("li a0, 77\n ecall");
  for (std::size_t i = 0; i < next.size(); ++i) {
    m.cpu_ram.store(static_cast<std::uint32_t>(i * 4), 4, next[i]);
    m.eng_ram.store(static_cast<std::uint32_t>(i * 4), 4, next[i]);
  }
  m.engine.clear_cache();
  m.cpu.resume(0);
  m.engine.resume(0);
  m.run();
  m.expect_equivalent();
  EXPECT_EQ(m.engine.reg(10), 77u);
  EXPECT_GT(m.engine.stats().blocks_compiled, compiled_once);
}

TEST(BlockEngine, CycleModelCountsPerClass) {
  Ram ram{kRamBytes};
  Bus bus;
  bus.map(0, kRamBytes, &ram);
  const std::vector<std::uint32_t> words = assemble(R"(
      add  t0, t1, t2
      mul  t0, t1, t2
      div  t0, t1, t2
      lw   t0, 0x100(zero)
      sw   t0, 0x100(zero)
      jal  t3, next
    next:
      ecall
  )");
  for (std::size_t i = 0; i < words.size(); ++i) {
    ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
  }
  CycleModel cm;  // defaults: alu 1, mul 3, div 34, load 2, store 2, jump 2,
                  // system 1
  BlockEngine e{&bus, 0, cm};
  e.run();
  EXPECT_EQ(e.halt_reason(), HaltReason::kEcall);
  EXPECT_EQ(e.cycles(), 1u + 3u + 34u + 2u + 2u + 2u + 1u);

  // Same program, doubled ALU cost: exactly one more cycle.
  CycleModel expensive = cm;
  expensive.alu = 2;
  BlockEngine e2{&bus, 0, expensive};
  e2.run();
  EXPECT_EQ(e2.cycles(), e.cycles() + 1);
}

TEST(BlockEngine, CyclesDeterministicAcrossRuns) {
  const std::string src = R"(
      li t0, 0
      li t1, 500
    loop:
      mul t2, t0, t1
      addi t0, t0, 1
      blt t0, t1, loop
      ecall
  )";
  DualMachine a(src);
  DualMachine b(src);
  a.run();
  b.run();
  EXPECT_EQ(a.engine.cycles(), b.engine.cycles());
  EXPECT_GT(a.engine.cycles(), a.engine.retired())
      << "mul-heavy code must cost more cycles than instructions";
}

}  // namespace
}  // namespace hhpim::riscv
