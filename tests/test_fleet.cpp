// Fleet-simulator suite: the battery model, SoC-threshold adaptation (exact
// threshold hits, exhaustion mid-run, zero-device fleets), spec expansion
// jitter, LUT fan-in across devices, and the subsystem's load-bearing
// property — the same FleetSpec at 1 and 8 worker threads yields
// byte-identical JSONL, shard files and summary JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "energy/battery.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/scheduler.hpp"
#include "nn/zoo.hpp"
#include "placement/lut_cache.hpp"
#include "sim/stats.hpp"

namespace hhpim::fleet {
namespace {

using namespace hhpim::literals;

/// A small fleet that runs in milliseconds: one model, low LUT resolution.
FleetSpec small_fleet(int devices = 24, int slices = 6) {
  FleetSpec spec;
  spec.name = "test-fleet";
  spec.devices = devices;
  spec.slices = slices;
  spec.models = {nn::zoo::efficientnet_b0()};
  spec.config.lut_t_entries = 16;
  spec.config.lut_k_blocks = 16;
  return spec;
}

// --- battery -----------------------------------------------------------------

TEST(Battery, DrainClampsAndReportsExhaustion) {
  energy::BatteryConfig cfg;
  cfg.capacity = Energy::pj(100.0);
  energy::Battery b{cfg};
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_DOUBLE_EQ(b.drain(Energy::pj(40.0)).as_pj(), 40.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.6);
  EXPECT_FALSE(b.exhausted());
  // Requested > remaining: the drain truncates — the caller detects
  // died-mid-slice by drained < requested.
  EXPECT_DOUBLE_EQ(b.drain(Energy::pj(80.0)).as_pj(), 60.0);
  EXPECT_TRUE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.drain(Energy::pj(1.0)).as_pj(), 0.0);
  b.recharge(Energy::pj(10.0));
  EXPECT_FALSE(b.exhausted());
  b.recharge(Energy::pj(1000.0));  // clamped to capacity
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
}

TEST(Battery, RejectsBadConfig) {
  energy::BatteryConfig zero;
  zero.capacity = Energy::zero();
  EXPECT_THROW(energy::Battery{zero}, std::invalid_argument);
  energy::BatteryConfig soc;
  soc.initial_soc = 1.5;
  EXPECT_THROW(energy::Battery{soc}, std::invalid_argument);
}

// --- adaptive policy ---------------------------------------------------------

TEST(AdaptivePolicy, HysteresisAndExactThresholds) {
  AdaptivePolicy p{{.low_soc = 0.3, .high_soc = 0.5}};
  EXPECT_EQ(p.update(1.0), DeviceMode::kDynamic);
  EXPECT_EQ(p.update(0.31), DeviceMode::kDynamic);
  // Exactly at the low threshold switches (<=).
  EXPECT_EQ(p.update(0.30), DeviceMode::kLowPower);
  EXPECT_EQ(p.switches(), 1u);
  // Inside the hysteresis band: stays low-power.
  EXPECT_EQ(p.update(0.45), DeviceMode::kLowPower);
  // Exactly at the high threshold switches back (>=).
  EXPECT_EQ(p.update(0.50), DeviceMode::kDynamic);
  EXPECT_EQ(p.switches(), 2u);
  EXPECT_EQ(p.update(0.49), DeviceMode::kDynamic);  // band is sticky both ways
}

TEST(AdaptivePolicy, RejectsBadThresholds) {
  EXPECT_THROW(AdaptivePolicy({.low_soc = 0.6, .high_soc = 0.4}),
               std::invalid_argument);
  EXPECT_THROW(AdaptivePolicy({.low_soc = -0.1, .high_soc = 0.4}),
               std::invalid_argument);
  EXPECT_THROW(AdaptivePolicy({.low_soc = 0.4, .high_soc = 1.1}),
               std::invalid_argument);
  EXPECT_NO_THROW(AdaptivePolicy({.low_soc = 0.4, .high_soc = 0.4}));
}

// --- histogram merge (the shard-aggregation primitive) -----------------------

TEST(HistogramMerge, ExactAcrossSplits) {
  sim::Histogram whole{0.0, 10.0, 10};
  sim::Histogram a{0.0, 10.0, 10};
  sim::Histogram b{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i) * 0.13 - 1.0;  // incl. under/overflow
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), whole.total());
  EXPECT_EQ(a.underflow(), whole.underflow());
  EXPECT_EQ(a.overflow(), whole.overflow());
  for (std::size_t i = 0; i < whole.bins().size(); ++i) {
    EXPECT_EQ(a.bins()[i], whole.bins()[i]);
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.5), whole.quantile(0.5));
}

TEST(HistogramMerge, ShapeMismatchThrows) {
  sim::Histogram a{0.0, 10.0, 10};
  sim::Histogram bins{0.0, 10.0, 20};
  sim::Histogram range{0.0, 5.0, 10};
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

// --- spec expansion ----------------------------------------------------------

TEST(FleetSpec, ExpandIsDeterministicAndJittered) {
  const FleetSpec spec = small_fleet(32);
  const auto a = spec.expand();
  const auto b = spec.expand();
  ASSERT_EQ(a.size(), 32u);
  std::set<std::uint64_t> seeds;
  std::set<int> phases;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].phase, b[i].phase);
    EXPECT_EQ(static_cast<int>(a[i].scenario), static_cast<int>(b[i].scenario));
    seeds.insert(a[i].seed);
    phases.insert(a[i].phase);
  }
  // Jitter: seeds are (overwhelmingly) distinct, phases spread out.
  EXPECT_EQ(seeds.size(), 32u);
  EXPECT_GT(phases.size(), 1u);
}

TEST(FleetSpec, ValidationRejectsBadSpecs) {
  FleetSpec negative = small_fleet(-1);
  EXPECT_THROW(negative.validate(), std::invalid_argument);
  FleetSpec no_slices = small_fleet(4, 6);
  no_slices.slices = 0;
  EXPECT_THROW(no_slices.validate(), std::invalid_argument);
  FleetSpec trace_mix = small_fleet(4);
  trace_mix.mix = {workload::Scenario::kTrace};
  EXPECT_THROW(trace_mix.validate(), std::invalid_argument);
  // Adaptation requires MRAM + the dynamic policy.
  FleetSpec baseline = small_fleet(4);
  baseline.config.arch = sys::ArchConfig::baseline();
  EXPECT_THROW(baseline.validate(), std::invalid_argument);
  baseline.adapt = false;
  EXPECT_NO_THROW(baseline.validate());
  // ... and the low-power MRAM placement must actually fit every model
  // (rejected here, not from a worker thread mid-run).
  FleetSpec tiny_mram = small_fleet(4);
  tiny_mram.config.arch.mram_kb_per_module = 1;
  EXPECT_THROW(tiny_mram.validate(), std::invalid_argument);
  // The LUT cache is an execution concern (FleetOptions), never the spec's.
  FleetSpec preset_cache = small_fleet(4);
  placement::LutCache cache;
  preset_cache.config.lut_cache = &cache;
  EXPECT_THROW(preset_cache.validate(), std::invalid_argument);
}

TEST(FleetSpec, DeviceLoadsRotateByPhase) {
  FleetSpec spec = small_fleet(1, 8);
  auto specs = spec.expand();
  ASSERT_EQ(specs.size(), 1u);
  DeviceSpec d = specs[0];
  d.scenario = workload::Scenario::kPeriodicSpike;
  d.cfg.spike_period = 8;  // spike at index 0 before rotation
  d.phase = 3;
  const std::vector<int> loads = device_loads(d);
  ASSERT_EQ(loads.size(), 8u);
  // Rotated left by 3: the spike lands at index (0 - 3) mod 8 = 5.
  EXPECT_EQ(loads[5], d.cfg.high);
  EXPECT_EQ(loads[0], d.cfg.low);
}

// --- device edge cases -------------------------------------------------------

TEST(Device, BatteryExhaustedMidRunStopsAndDropsTasks) {
  FleetSpec spec = small_fleet(1, 6);
  // A battery that dies after roughly one busy slice.
  spec.battery.capacity = Energy::mj(10.0);
  auto specs = spec.expand();
  specs[0].scenario = workload::Scenario::kHighConstant;
  placement::LutCache cache;
  Device dev{spec, specs[0], spec.models[0], &cache};
  const DeviceResult r = dev.run(nullptr);
  EXPECT_GE(r.exhausted_at_slice, 0);
  EXPECT_LT(r.slices_executed, r.slices_total);
  EXPECT_GT(r.tasks_dropped, 0u);
  EXPECT_DOUBLE_EQ(r.final_soc, 0.0);
  // Drained energy never exceeds capacity.
  EXPECT_LE(r.energy_pj, r.battery_capacity_pj);
}

TEST(Device, AdaptationPinsLowPowerPlacementUnderLowSoc) {
  FleetSpec spec = small_fleet(1, 8);
  // Start below the low threshold: every slice must run low-power.
  spec.battery.initial_soc = 0.25;
  spec.thresholds = {.low_soc = 0.3, .high_soc = 0.5};
  auto specs = spec.expand();
  specs[0].scenario = workload::Scenario::kLowConstant;
  placement::LutCache cache;
  Device dev{spec, specs[0], spec.models[0], &cache};
  const DeviceResult r = dev.run(nullptr);
  EXPECT_EQ(r.mode_switches, 1u);
  EXPECT_EQ(r.low_power_slices, r.slices_executed);
  // The pinned placement is MRAM-balanced: identical to balanced_mram_split.
  const auto& proc = dev.processor();
  EXPECT_TRUE(proc.placement_override_active());
  const placement::Allocation mram = sys::balanced_mram_split(
      proc.cost_model(), proc.total_weights());
  EXPECT_TRUE(proc.current_allocation() == mram);
}

TEST(Device, NoAdaptMatchesPlainHhpimEnergy) {
  // With adapt off and an effectively infinite battery, a device is exactly
  // a sys::Processor::run_scenario of its jittered trace.
  FleetSpec spec = small_fleet(1, 6);
  spec.adapt = false;
  spec.battery.capacity = Energy::mj(1e9);
  auto specs = spec.expand();
  placement::LutCache cache;
  Device dev{spec, specs[0], spec.models[0], &cache};
  const DeviceResult r = dev.run(nullptr);

  sys::SystemConfig config = spec.config;
  config.lut_cache = &cache;
  sys::Processor proc{config, spec.models[0]};
  const sys::RunStats stats = proc.run_scenario(device_loads(specs[0]));
  // The device sums per-slice ledger deltas, run_scenario takes one
  // end-to-end delta — equal up to FP association, so compare tightly but
  // not bit-exactly (total is ~1e10 pJ).
  EXPECT_NEAR(r.energy_pj, stats.total_energy.as_pj(), 1.0);
  EXPECT_EQ(r.tasks, stats.tasks);
  EXPECT_EQ(r.deadline_violations, stats.deadline_violations);
}

// --- simulator ---------------------------------------------------------------

TEST(FleetSimulator, ZeroDeviceFleet) {
  const FleetSpec spec = small_fleet(0);
  const FleetSimulator sim{{.threads = 4}};
  const FleetResult r = sim.run(spec);
  EXPECT_EQ(r.devices.size(), 0u);
  EXPECT_EQ(r.shard_count, 0u);
  EXPECT_EQ(r.aggregate.devices, 0u);
  EXPECT_EQ(r.to_jsonl(), "");
  EXPECT_NE(r.summary_to_json(), "");  // still a valid summary document
}

TEST(FleetSimulator, ByteIdenticalAcrossThreadCounts) {
  const FleetSpec spec = small_fleet(24, 5);
  placement::LutCache c1, c8;
  const FleetSimulator s1{{.threads = 1, .shard_size = 4, .lut_cache = &c1}};
  const FleetSimulator s8{{.threads = 8, .shard_size = 4, .lut_cache = &c8}};
  const FleetResult r1 = s1.run(spec);
  const FleetResult r8 = s8.run(spec);
  EXPECT_EQ(r1.to_jsonl(), r8.to_jsonl());
  EXPECT_EQ(r1.summary_to_json(), r8.summary_to_json());
  EXPECT_EQ(r1.shard_count, r8.shard_count);
}

TEST(FleetSimulator, DevicesShareLutBuilds) {
  const FleetSpec spec = small_fleet(24, 4);  // one model -> one LUT key
  placement::LutCache cache;
  const FleetSimulator sim{{.threads = 2, .shard_size = 6, .lut_cache = &cache}};
  const FleetResult r = sim.run(spec);
  EXPECT_EQ(r.lut_builds, 1u);
  EXPECT_EQ(r.lut_shared, 23u);
}

TEST(FleetSimulator, ShardFilesMatchInMemoryJsonl) {
  const FleetSpec spec = small_fleet(10, 4);
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";
  placement::LutCache cache;
  FleetOptions opts;
  opts.threads = 1;
  opts.shard_size = 4;
  opts.lut_cache = &cache;
  opts.shard_dir = dir;
  const FleetResult r = FleetSimulator{opts}.run(spec);
  EXPECT_EQ(r.shard_count, 3u);
  std::string concatenated;
  for (std::size_t s = 0; s < r.shard_count; ++s) {
    char name[32];
    std::snprintf(name, sizeof name, "shard-%05zu.jsonl", s);
    std::ifstream in(dir + "/" + name);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    concatenated += ss.str();
    std::remove((dir + "/" + name).c_str());
  }
  EXPECT_EQ(concatenated, r.to_jsonl());
}

// --- SLO-aware frontier policy (docs/PARETO.md) ------------------------------

/// small_fleet with a fleet-wide latency SLO at 60 % of the slice length —
/// comfortably inside the LUT's feasible region at this resolution, so the
/// frontier tiers resolve on every device.
FleetSpec slo_fleet(int devices = 24, int slices = 6) {
  FleetSpec spec = small_fleet(devices, slices);
  spec.name = "slo-fleet";
  const sys::Processor probe{Device::device_config(spec, nullptr), spec.models[0]};
  spec.latency_slo = Time::ps(probe.slice_length().as_ps() * 3 / 5);
  return spec;
}

TEST(SelectTier, ExactThresholdsMirrorThePolicy) {
  const AdaptiveThresholds thr{.low_soc = 0.3, .high_soc = 0.5};
  // kSaver rides the mode hysteresis, whatever the SoC says.
  EXPECT_EQ(select_tier(DeviceMode::kLowPower, 0.9, thr), FrontierTier::kSaver);
  EXPECT_EQ(select_tier(DeviceMode::kLowPower, 0.1, thr), FrontierTier::kSaver);
  // Exactly at the high threshold buys performance (>=, like update()).
  EXPECT_EQ(select_tier(DeviceMode::kDynamic, 0.50, thr), FrontierTier::kPerformance);
  EXPECT_EQ(select_tier(DeviceMode::kDynamic, 0.499999, thr), FrontierTier::kBalanced);
  EXPECT_EQ(select_tier(DeviceMode::kDynamic, 1.0, thr), FrontierTier::kPerformance);
  EXPECT_EQ(select_tier(DeviceMode::kDynamic, 0.31, thr), FrontierTier::kBalanced);
}

TEST(FleetSpecSlo, DigestGuardAndValidation) {
  const FleetSpec plain = small_fleet();
  FleetSpec slo = small_fleet();
  const std::uint64_t before = slo.content_digest();
  EXPECT_EQ(before, plain.content_digest());

  slo.latency_slo = Time::ms(5.0);
  EXPECT_NE(slo.content_digest(), before);
  slo.latency_slo = Time::zero();
  // The SLO block is fully guarded: unsetting restores the pre-SLO digest,
  // so old snapshots keep restoring onto SLO-capable builds.
  EXPECT_EQ(slo.content_digest(), before);
  slo.slo_overrides.push_back({.id = 0, .latency_slo = Time::ms(2.0)});
  EXPECT_NE(slo.content_digest(), before);

  FleetSpec bad = small_fleet();
  bad.latency_slo = Time::ps(-1);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.latency_slo = Time::zero();
  bad.slo_overrides = {{.id = 99, .latency_slo = Time::ms(1.0)}};  // id out of range
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  FleetSpec wrong_arch = small_fleet();
  wrong_arch.adapt = false;
  wrong_arch.config.arch = sys::ArchConfig::baseline();
  wrong_arch.latency_slo = Time::ms(5.0);  // SLO needs the HH-PIM LUT
  EXPECT_THROW(wrong_arch.validate(), std::invalid_argument);
}

TEST(FleetSpecSlo, ExpandAddsNoRngDrawsAndOverridesWin) {
  const FleetSpec plain = small_fleet(16);
  FleetSpec slo = small_fleet(16);
  slo.latency_slo = Time::ms(4.0);
  slo.slo_overrides.push_back({.id = 3, .latency_slo = Time::zero()});
  slo.slo_overrides.push_back({.id = 5, .latency_slo = Time::ms(1.0)});

  const auto a = plain.expand();
  const auto b = slo.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The SLO assignment must not disturb the seeded jitter draws: every
    // other per-device field is byte-for-byte the no-SLO expansion.
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].model_index, b[i].model_index);
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    EXPECT_EQ(a[i].phase, b[i].phase);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].join_slice, b[i].join_slice);
    EXPECT_EQ(a[i].leave_slice, b[i].leave_slice);
    EXPECT_EQ(a[i].latency_slo_ps, 0);
    const std::int64_t expect = i == 3   ? 0
                                : i == 5 ? Time::ms(1.0).as_ps()
                                         : Time::ms(4.0).as_ps();
    EXPECT_EQ(b[i].latency_slo_ps, expect) << i;
  }
}

TEST(Device, SloTierFollowsSocAtExactThresholds) {
  // Two identical devices either side of the high-SoC threshold pin
  // different frontier points from slice one: performance (min latency) at
  // exactly 0.50, balanced (the SLO anchor) just below.
  FleetSpec at = slo_fleet(1, 4);
  at.thresholds = {.low_soc = 0.3, .high_soc = 0.5};
  at.battery.initial_soc = 0.5;
  FleetSpec below = at;
  below.battery.initial_soc = 0.499;

  placement::LutCache cache;
  auto at_specs = at.expand();
  auto below_specs = below.expand();
  at_specs[0].scenario = workload::Scenario::kLowConstant;
  below_specs[0].scenario = workload::Scenario::kLowConstant;
  Device d_at{at, at_specs[0], at.models[0], &cache};
  Device d_below{below, below_specs[0], below.models[0], &cache};
  const DeviceResult r_at = d_at.run(nullptr);
  const DeviceResult r_below = d_below.run(nullptr);

  EXPECT_EQ(r_at.latency_slo_ps, at.latency_slo.as_ps());
  // Different tiers -> different pinned allocations -> observably different
  // runs (busy time and drained energy both move; the direction mixes the
  // steady-state gap with the first slice's one-off weight movement, so only
  // the difference itself is pinned — the threshold semantics are unit-tested
  // in SelectTier above).
  EXPECT_NE(r_at.busy_time_ps, r_below.busy_time_ps);
  EXPECT_NE(r_at.energy_pj, r_below.energy_pj);
}

TEST(Device, SloTierSwitchesAsTheBatteryDrains) {
  // Start just above the high threshold: the device opens in kPerformance
  // and any realistic per-slice drain (a few mJ against the 250 mJ default
  // battery) crosses 0.5 within a few slices, dropping it to kBalanced — at
  // least one tier switch, counted separately from mode switches, with no
  // exhaustion risk.
  FleetSpec spec = slo_fleet(1, 8);
  spec.battery.initial_soc = 0.55;
  auto specs = spec.expand();
  specs[0].scenario = workload::Scenario::kHighConstant;
  placement::LutCache cache;
  Device dev{spec, specs[0], spec.models[0], &cache};
  const DeviceResult r = dev.run(nullptr);
  EXPECT_GE(r.tier_switches, 1u);
  EXPECT_GT(r.latency_slo_ps, 0);
}

TEST(FleetSimulator, SloByteIdenticalAcrossThreadsAndMemo) {
  // Mixed population: fleet-wide SLO with a few opted-out devices, so memo
  // keys for SLO and no-SLO lanes coexist in one cache.
  FleetSpec spec = slo_fleet(24, 6);
  spec.slo_overrides.push_back({.id = 2, .latency_slo = Time::zero()});
  spec.slo_overrides.push_back({.id = 7, .latency_slo = Time::zero()});

  placement::LutCache c1, c8, cm1, cm8;
  OutcomeCache m1, m8;
  const FleetResult r1 =
      FleetSimulator{{.threads = 1, .shard_size = 4, .lut_cache = &c1}}.run(spec);
  const FleetResult r8 =
      FleetSimulator{{.threads = 8, .shard_size = 4, .lut_cache = &c8}}.run(spec);
  FleetOptions memo1;
  memo1.threads = 1;
  memo1.shard_size = 4;
  memo1.lut_cache = &cm1;
  memo1.memoize_devices = true;
  memo1.outcome_cache = &m1;
  FleetOptions memo8 = memo1;
  memo8.threads = 8;
  memo8.lut_cache = &cm8;
  memo8.outcome_cache = &m8;
  const FleetResult rm1 = FleetSimulator{memo1}.run(spec);
  const FleetResult rm8 = FleetSimulator{memo8}.run(spec);

  EXPECT_EQ(r1.to_jsonl(), r8.to_jsonl());
  EXPECT_EQ(r1.to_jsonl(), rm1.to_jsonl());
  EXPECT_EQ(r1.to_jsonl(), rm8.to_jsonl());
  EXPECT_EQ(r1.summary_to_json(), r8.summary_to_json());
  EXPECT_EQ(r1.summary_to_json(), rm1.summary_to_json());
  EXPECT_EQ(r1.summary_to_json(), rm8.summary_to_json());
}

TEST(FleetSimulator, SloFieldsAppearOnlyWhenSet) {
  placement::LutCache plain_cache, slo_cache;
  const FleetResult plain = FleetSimulator{{.threads = 1, .lut_cache = &plain_cache}}
                                .run(small_fleet(6, 4));
  const FleetResult slo =
      FleetSimulator{{.threads = 1, .lut_cache = &slo_cache}}.run(slo_fleet(6, 4));
  // No-SLO JSONL carries no SLO fields at all — the schema (and the bytes)
  // are exactly the pre-SLO ones.
  EXPECT_EQ(plain.to_jsonl().find("latency_slo_ps"), std::string::npos);
  EXPECT_EQ(plain.to_jsonl().find("tier_switches"), std::string::npos);
  EXPECT_NE(slo.to_jsonl().find("latency_slo_ps"), std::string::npos);
  EXPECT_NE(slo.to_jsonl().find("tier_switches"), std::string::npos);
}

TEST(FleetSimulator, SloSnapshotRoundTripsByteIdentically) {
  const FleetSpec spec = slo_fleet(12, 8);
  placement::LutCache whole_cache, seg_cache;
  const FleetResult whole =
      FleetSimulator{{.threads = 1, .shard_size = 5, .lut_cache = &whole_cache}}
          .run(spec);
  const FleetSimulator seg{{.threads = 1, .shard_size = 5, .lut_cache = &seg_cache}};
  FleetSnapshot snap = seg.run_to(spec, 3);
  // Round-trip through the binary format: the kTagSlo lane must survive.
  snap = FleetSnapshot::from_bytes(snap.to_bytes());
  const FleetResult resumed = seg.resume(spec, snap);
  EXPECT_EQ(whole.to_jsonl(), resumed.to_jsonl());
  EXPECT_EQ(whole.summary_to_json(), resumed.summary_to_json());
}

TEST(OutcomeCacheSlo, DifferentSlosNeverShareAMemoBucket) {
  // Two devices in identical processor states but with different SLOs (or
  // different tiers at the same SLO) must never replay each other's slices:
  // the first slice's `pre` digest predates the tier override install, so
  // only the key separates them.
  OutcomeCache cache;
  SliceOutcomeKey base{};
  base.reuse_key = 7;
  base.state = 42;
  base.slo_ps = 1'000'000;
  base.n_tasks = 3;
  base.mode = 0;
  base.tier = 0;
  std::vector<std::pair<SliceOutcomeKey, SliceOutcome>> batch;
  batch.push_back({base, SliceOutcome{100.0, 5, 2, 99, 0, false}});
  cache.insert_batch(batch);
  ASSERT_NE(cache.lookup(base), nullptr);

  SliceOutcomeKey other_slo = base;
  other_slo.slo_ps = 2'000'000;
  SliceOutcomeKey no_slo = base;
  no_slo.slo_ps = 0;
  SliceOutcomeKey other_tier = base;
  other_tier.tier = static_cast<std::uint8_t>(FrontierTier::kPerformance);
  EXPECT_NE(base, other_slo);
  EXPECT_NE(base, no_slo);
  EXPECT_NE(base, other_tier);
  EXPECT_EQ(cache.lookup(other_slo), nullptr);
  EXPECT_EQ(cache.lookup(no_slo), nullptr);
  EXPECT_EQ(cache.lookup(other_tier), nullptr);
}

TEST(FleetSimulator, AggregateCountsAreConsistent) {
  const FleetSpec spec = small_fleet(16, 5);
  placement::LutCache cache;
  const FleetSimulator sim{{.threads = 1, .shard_size = 5, .lut_cache = &cache}};
  const FleetResult r = sim.run(spec);
  ASSERT_EQ(r.devices.size(), 16u);
  std::uint64_t tasks = 0, executed = 0;
  for (const DeviceResult& d : r.devices) {
    tasks += d.tasks;
    executed += static_cast<std::uint64_t>(d.slices_executed);
  }
  EXPECT_EQ(r.aggregate.devices, 16u);
  EXPECT_EQ(r.aggregate.tasks, tasks);
  EXPECT_EQ(r.aggregate.executed_slices, executed);
  // Every executed slice contributed one sample to each slice histogram.
  EXPECT_EQ(r.aggregate.busy_frac_hist().total(), executed);
  EXPECT_EQ(r.aggregate.slice_energy_hist().total(), executed);
}

}  // namespace
}  // namespace hhpim::fleet
