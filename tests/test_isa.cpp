#include "isa/instruction.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace hhpim::isa {
namespace {

TEST(Instruction, EncodeDecodeRoundtrip) {
  Instruction inst;
  inst.category = Category::kCompute;
  inst.opcode = static_cast<std::uint8_t>(ComputeOp::kMac);
  inst.mem = MemSel::kSram;
  inst.module_mask = 0x0f;
  inst.imm = 1234;
  const auto decoded = decode(encode(inst));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, inst);
}

TEST(Instruction, ReservedOpcodeRejected) {
  // Compute category has opcodes 0..3; craft a word with opcode 9.
  const std::uint32_t word = (0u << 30) | (9u << 26);
  EXPECT_FALSE(decode(word).has_value());
}

class RoundtripAll : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoundtripAll, EveryValidOpcodeSurvives) {
  const auto [cat, op] = GetParam();
  Instruction inst;
  inst.category = static_cast<Category>(cat);
  inst.opcode = static_cast<std::uint8_t>(op);
  inst.mem = MemSel::kMram;
  inst.module_mask = 0xa5;
  inst.imm = 0xffff;
  if (opcode_name(inst.category, inst.opcode) == nullptr) {
    EXPECT_FALSE(decode(encode(inst)).has_value());
  } else {
    const auto d = decode(encode(inst));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, inst);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundtripAll,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 6)));

TEST(Assembler, BasicProgram) {
  const auto result = assemble(R"(
      ; load weights, run MACs, finish
      pwron.mram m0-3
      mac.sram m0-3, 64
      mac.mram m0, 128
      barrier m0-3
      halt
  )");
  ASSERT_TRUE(std::holds_alternative<std::vector<Instruction>>(result));
  const auto& prog = std::get<std::vector<Instruction>>(result);
  ASSERT_EQ(prog.size(), 5u);
  EXPECT_EQ(prog[0].category, Category::kConfig);
  EXPECT_EQ(prog[0].module_mask, 0x0f);
  EXPECT_EQ(prog[1].imm, 64);
  EXPECT_EQ(prog[1].mem, MemSel::kSram);
  EXPECT_EQ(prog[2].module_mask, 0x01);
  EXPECT_EQ(prog[4].category, Category::kSync);
}

TEST(Assembler, ModuleListVariants) {
  const auto check = [](const std::string& src, std::uint8_t mask) {
    const auto r = assemble(src);
    ASSERT_TRUE(std::holds_alternative<std::vector<Instruction>>(r)) << src;
    EXPECT_EQ(std::get<std::vector<Instruction>>(r)[0].module_mask, mask) << src;
  };
  check("mac.sram m5, 1", 0x20);
  check("mac.sram m0,m2,m4, 1", 0x15);
  check("mac.sram m2-5, 1", 0x3c);
  check("mac.sram mall, 1", 0xff);
}

TEST(Assembler, Errors) {
  auto expect_error = [](const std::string& src, std::size_t line) {
    const auto r = assemble(src);
    ASSERT_TRUE(std::holds_alternative<AsmError>(r)) << src;
    EXPECT_EQ(std::get<AsmError>(r).line, line) << src;
  };
  expect_error("bogus m0, 1", 1);
  expect_error("mac.dram m0, 1", 1);
  expect_error("mac.sram m0", 1);      // missing immediate
  expect_error("mac.sram m9, 1", 1);   // module out of range
  expect_error("\nmac.sram m0, 99999", 2);  // imm > 16 bit
}

TEST(Assembler, DisassembleRoundtrip) {
  const std::vector<Instruction> prog = {
      make_power(0x0f, MemSel::kMram, true),
      make_mac(0x0f, MemSel::kSram, 256),
      make_xfer_out(0x03, MemSel::kSram, 32),
      make_xfer_in(0x0c, MemSel::kMram, 32),
      make_barrier(0xff),
      make_halt(),
  };
  const std::string text = disassemble(prog);
  const auto r = assemble(text);
  ASSERT_TRUE(std::holds_alternative<std::vector<Instruction>>(r)) << text;
  EXPECT_EQ(std::get<std::vector<Instruction>>(r), prog);
}

TEST(Instruction, ToStringIsInformative) {
  const std::string s = to_string(make_mac(0x0f, MemSel::kSram, 64));
  EXPECT_NE(s.find("mac"), std::string::npos);
  EXPECT_NE(s.find("sram"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

TEST(Instruction, Helpers) {
  EXPECT_EQ(make_halt().category, Category::kSync);
  EXPECT_EQ(make_barrier().module_mask, 0xff);
  EXPECT_EQ(make_power(0x01, MemSel::kSram, false).opcode,
            static_cast<std::uint8_t>(ConfigOp::kPowerOff));
}

}  // namespace
}  // namespace hhpim::isa
