// Placement-LUT cache suite: key construction (collisions must be
// impossible between differing build inputs), sharing semantics, concurrent
// build deduplication, and the load-bearing acceptance property — a grid run
// with the cache produces byte-identical JSON/CSV to the uncached path at
// any thread count.
#include "placement/lut_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "hhpim/processor.hpp"
#include "nn/model.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

namespace hhpim::placement {
namespace {

CostModel paper_model(double uses = 29.0) {
  return CostModel::build(energy::PowerSpec::paper_45nm(),
                          ClusterShape{4, 64 * 1024, 64 * 1024},
                          ClusterShape{4, 64 * 1024, 64 * 1024}, uses);
}

LutParams small_params(int resolution = 16) {
  LutParams p;
  p.slice = Time::ms(10.0);
  p.total_weights = 10000;
  p.t_entries = resolution;
  p.k_blocks = resolution;
  return p;
}

TEST(LutCacheKey, EqualInputsEqualKeys) {
  const CostModel m = paper_model();
  const auto a = LutCacheKey::make(1, 2, m, small_params());
  const auto b = LutCacheKey::make(1, 2, m, small_params());
  EXPECT_EQ(a, b);
  EXPECT_EQ(LutCacheKey::Hash{}(a), LutCacheKey::Hash{}(b));
}

TEST(LutCacheKey, EveryComponentSeparatesKeys) {
  const CostModel m = paper_model();
  const auto base = LutCacheKey::make(1, 2, m, small_params());
  EXPECT_NE(base, LutCacheKey::make(9, 2, m, small_params()));  // topology
  EXPECT_NE(base, LutCacheKey::make(1, 9, m, small_params()));  // arch
  EXPECT_NE(base, LutCacheKey::make(1, 2, paper_model(30.0), small_params()));
  LutParams p = small_params();
  p.slice = Time::ms(11.0);
  EXPECT_NE(base, LutCacheKey::make(1, 2, m, p));
  p = small_params();
  p.total_weights = 10001;
  EXPECT_NE(base, LutCacheKey::make(1, 2, m, p));
  p = small_params();
  p.t_entries = 17;
  EXPECT_NE(base, LutCacheKey::make(1, 2, m, p));
  p = small_params();
  p.k_blocks = 17;
  EXPECT_NE(base, LutCacheKey::make(1, 2, m, p));
}

TEST(LutCache, GetOrBuildBuildsOnceThenShares) {
  LutCache cache;
  const CostModel m = paper_model();
  const auto key = LutCacheKey::make(1, 2, m, small_params());
  const auto a = cache.get_or_build(key, m, small_params());
  const auto b = cache.get_or_build(key, m, small_params());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // same instance, not an equal copy
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(LutCache, DistinctKeysDistinctLuts) {
  LutCache cache;
  const CostModel m = paper_model();
  const auto a = cache.get_or_build(LutCacheKey::make(1, 2, m, small_params()), m,
                                    small_params());
  const auto b = cache.get_or_build(LutCacheKey::make(1, 2, m, small_params(32)), m,
                                    small_params(32));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(LutCache, ClearDropsSlotsButConsumersKeepTheirLut) {
  LutCache cache;
  const CostModel m = paper_model();
  const auto key = LutCacheKey::make(1, 2, m, small_params());
  const auto a = cache.get_or_build(key, m, small_params());
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.contains(key));
  // The shared_ptr keeps the LUT alive and usable.
  EXPECT_EQ(a->entries().size(), 16u);
  // Rebuild is a fresh instance.
  const auto b = cache.get_or_build(key, m, small_params());
  EXPECT_NE(a.get(), b.get());
}

TEST(LutCache, FailedBuildPropagatesAndEvicts) {
  LutCache cache;
  const CostModel m = paper_model();
  LutParams bad = small_params();
  bad.total_weights = 0;  // AllocationLut::build throws
  const auto key = LutCacheKey::make(1, 2, m, bad);
  EXPECT_THROW((void)cache.get_or_build(key, m, bad), std::invalid_argument);
  EXPECT_FALSE(cache.contains(key));
  // A later call with good params under a fresh key still works.
  const auto good = LutCacheKey::make(1, 2, m, small_params());
  EXPECT_NE(cache.get_or_build(good, m, small_params()), nullptr);
}

TEST(LutCache, ConcurrentRequestsBuildExactlyOnce) {
  LutCache cache;
  const CostModel m = paper_model();
  const auto key = LutCacheKey::make(1, 2, m, small_params(32));
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const AllocationLut>> got(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([&, i] { got[static_cast<std::size_t>(i)] =
                                   cache.get_or_build(key, m, small_params(32)); });
  }
  for (auto& t : pool) t.join();
  for (const auto& p : got) EXPECT_EQ(p.get(), got[0].get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// Two models with equal parameter sums but different layer topology must not
// share a LUT — the cache keys on structure, not on derived totals.
TEST(LutCache, EqualParamSumsDifferentTopologyDoNotCollide) {
  nn::Model a{"sum-800-a", 0.8};
  a.input({10, 1, 1});
  a.linear("l1", 20);   // 10*20 = 200 params
  a.linear("l2", 30);   // 20*30 = 600 params
  nn::Model b{"sum-800-b", 0.8};
  b.input({10, 1, 1});
  b.linear("l1", 40);   // 10*40 = 400 params
  b.linear("l2", 10);   // 40*10 = 400 params
  ASSERT_EQ(a.structural_params(), b.structural_params());
  EXPECT_NE(a.topology_hash(), b.topology_hash());

  const CostModel m = paper_model();
  const auto ka = LutCacheKey::make(a.topology_hash(), 0, m, small_params());
  const auto kb = LutCacheKey::make(b.topology_hash(), 0, m, small_params());
  EXPECT_NE(ka, kb);

  LutCache cache;
  (void)cache.get_or_build(ka, m, small_params());
  (void)cache.get_or_build(kb, m, small_params());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Model, TopologyHashIgnoresNames) {
  nn::Model a{"name-one", 0.8};
  a.input({10, 1, 1});
  a.linear("x", 20);
  nn::Model b{"name-two", 0.8};
  b.input({10, 1, 1});
  b.linear("y", 20);
  EXPECT_EQ(a.topology_hash(), b.topology_hash());
}

// Processor-level sharing: two HH-PIM Processors over the same (model, arch,
// config) resolve to one cache entry, and the cached run's LUT is identical
// to a privately built one.
TEST(LutCacheIntegration, ProcessorsShareOneEntryAndMatchUncached) {
  sys::SystemConfig cfg;
  cfg.arch = sys::ArchConfig::hhpim();
  cfg.lut_t_entries = 16;
  cfg.lut_k_blocks = 16;
  const nn::Model model = nn::zoo::efficientnet_b0();

  LutCache cache;
  sys::SystemConfig cached_cfg = cfg;
  cached_cfg.lut_cache = &cache;
  const sys::Processor p1{cached_cfg, model};
  const sys::Processor p2{cached_cfg, model};
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_NE(p1.lut(), nullptr);
  EXPECT_EQ(p1.lut(), p2.lut());  // literally the same object

  const sys::Processor uncached{cfg, model};
  ASSERT_NE(uncached.lut(), nullptr);
  ASSERT_EQ(uncached.lut()->entries().size(), p1.lut()->entries().size());
  for (std::size_t i = 0; i < uncached.lut()->entries().size(); ++i) {
    const auto& ue = uncached.lut()->entries()[i];
    const auto& ce = p1.lut()->entries()[i];
    EXPECT_EQ(ue.t_constraint, ce.t_constraint);
    EXPECT_EQ(ue.feasible, ce.feasible);
    EXPECT_EQ(ue.alloc, ce.alloc);
    EXPECT_EQ(ue.predicted_task_energy.as_pj(), ce.predicted_task_energy.as_pj());
  }
}

// The acceptance property: grid JSON/CSV is byte-identical with the cache on
// (1 and 8 threads) and off.
TEST(LutCacheIntegration, GridOutputByteIdenticalCachedVsUncached) {
  exp::ExperimentSpec spec;
  spec.name = "lut-cache-grid";
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());
  spec.models = nn::zoo::paper_models();
  workload::ScenarioConfig wc;
  wc.slices = 4;
  spec.scenarios = {exp::ScenarioSpec::of(workload::Scenario::kPulsing, wc),
                    exp::ScenarioSpec::of(workload::Scenario::kRandom, wc)};
  sys::SystemConfig cfg;
  cfg.lut_t_entries = 16;
  cfg.lut_k_blocks = 16;
  spec.variants.push_back({"", cfg});
  ASSERT_EQ(spec.run_count(), 24u);

  exp::RunnerOptions uncached;
  uncached.threads = 1;
  uncached.share_luts = false;

  LutCache cache1;
  exp::RunnerOptions cached1;
  cached1.threads = 1;
  cached1.lut_cache = &cache1;

  LutCache cache8;
  exp::RunnerOptions cached8;
  cached8.threads = 8;
  cached8.lut_cache = &cache8;

  const exp::ResultSet r_off = exp::Runner{uncached}.run(spec);
  const exp::ResultSet r_t1 = exp::Runner{cached1}.run(spec);
  const exp::ResultSet r_t8 = exp::Runner{cached8}.run(spec);

  EXPECT_EQ(r_off.to_json(), r_t1.to_json());
  EXPECT_EQ(r_off.to_csv(), r_t1.to_csv());
  EXPECT_EQ(r_off.to_json(), r_t8.to_json());
  EXPECT_EQ(r_off.to_csv(), r_t8.to_csv());
  EXPECT_FALSE(r_off.to_json().empty());

  // 6 HH-PIM runs over 3 distinct models: exactly 3 builds each cache. With
  // processor reuse (the default), each worker probes the cache once per
  // (config, model) it constructs a processor for — at 1 thread that is 3
  // probes, all builds, zero hits.
  EXPECT_EQ(cache1.stats().misses, 3u);
  EXPECT_EQ(cache1.stats().hits, 0u);
  EXPECT_EQ(cache8.stats().misses, 3u);

  // With reuse off, every HH-PIM run constructs its own processor and the
  // repeated (model, arch) pairs resolve as cache hits — the PR 3 economy.
  LutCache cache_nr;
  exp::RunnerOptions no_reuse;
  no_reuse.threads = 1;
  no_reuse.lut_cache = &cache_nr;
  no_reuse.reuse_processors = false;
  const exp::ResultSet r_nr = exp::Runner{no_reuse}.run(spec);
  EXPECT_EQ(r_off.to_json(), r_nr.to_json());
  EXPECT_EQ(cache_nr.stats().misses, 3u);
  EXPECT_EQ(cache_nr.stats().hits, 3u);
}

}  // namespace
}  // namespace hhpim::placement
