// Cross-validation: the analytic cost model (what the optimizer reasons
// with) against the discrete-event simulator (what the hardware model
// measures), swept over models, architectures and randomized allocations.
// This is the load-bearing consistency check of the whole reproduction: if
// these two views drift apart, the optimizer's decisions stop meaning
// anything.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "pim/cluster.hpp"
#include "placement/cost_model.hpp"
#include "workload/scenario.hpp"

namespace hhpim {
namespace {

using energy::ClusterKind;
using energy::MemoryKind;
using placement::Allocation;
using placement::CostModel;
using placement::Space;

// --- cluster-level: DES burst timing == analytic time_per_weight ----------

class ClusterTimingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterTimingProperty, DesMatchesAnalyticWithinRounding) {
  const int seed = GetParam();
  Rng rng{static_cast<std::uint64_t>(seed)};
  const auto spec = energy::PowerSpec::paper_45nm();
  energy::EnergyLedger ledger;
  const std::size_t modules = 1 + static_cast<std::size_t>(rng.next_below(4));
  pim::Cluster cluster{
      pim::ClusterConfig{"c",
                         rng.next_bool(0.5) ? ClusterKind::kHighPerformance
                                            : ClusterKind::kLowPower,
                         modules, 64 * 1024, 64 * 1024},
      spec, &ledger};

  const std::uint64_t macs = 1 + rng.next_below(50'000);
  const MemoryKind mem = rng.next_bool(0.5) ? MemoryKind::kMram : MemoryKind::kSram;
  const Time done = cluster.compute(Time::zero(), mem, macs);

  // Analytic: ceil(macs / modules) * per-MAC latency (the uneven remainder
  // goes to the lowest-index modules, which therefore finish last).
  const std::uint64_t per_module = (macs + modules - 1) / modules;
  const Time expected =
      cluster.mac_latency(mem) * static_cast<std::int64_t>(per_module);
  EXPECT_EQ(done, expected) << "seed=" << seed << " macs=" << macs
                            << " modules=" << modules;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterTimingProperty, ::testing::Range(1, 30));

// --- task-level: Processor busy time == analytic task_time ----------------


class TaskTimingProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TaskTimingProperty, StaticArchBusyTimeMatchesCostModel) {
  const auto [arch_idx, model_idx] = GetParam();
  const auto arch = sys::ArchConfig::paper_table1()[static_cast<std::size_t>(arch_idx)];
  if (arch.kind == sys::ArchKind::kHhpim) GTEST_SKIP() << "dynamic placement varies";
  const auto model = nn::zoo::paper_models()[static_cast<std::size_t>(model_idx)];

  sys::SystemConfig c;
  c.arch = arch;
  sys::Processor p{c, model};
  const int n_tasks = 3;
  const auto s = p.run_slice(n_tasks);

  const Time analytic = placement::task_time(p.cost_model(), s.alloc);
  // Tasks run back-to-back; MAC-count rounding across spaces/modules costs at
  // most a few MAC latencies per task.
  const double measured_ms = s.busy_time.as_ms();
  const double expected_ms = analytic.as_ms() * n_tasks;
  EXPECT_NEAR(measured_ms, expected_ms, expected_ms * 0.002 + 0.001)
      << arch.name << " / " << model.name();
}

INSTANTIATE_TEST_SUITE_P(Grid, TaskTimingProperty,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 3)));

// --- energy-level: DES dynamic energy == analytic dyn_per_weight ----------

class EnergyProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnergyProperty, DynamicEnergyMatchesCostModel) {
  const int model_idx = GetParam();
  const auto model = nn::zoo::paper_models()[static_cast<std::size_t>(model_idx)];
  // Hybrid-PIM: fixed all-MRAM placement makes the accounting transparent.
  sys::SystemConfig c;
  c.arch = sys::ArchConfig::hybrid();
  sys::Processor p{c, model};
  const auto s = p.run_slice(2);

  const Energy analytic_dyn =
      placement::task_dynamic_energy(p.cost_model(), s.alloc) * 2.0;
  const Energy measured_dyn = p.ledger().dynamic_total();
  // The DES adds nothing but rounding on top of the per-MAC dynamic model.
  EXPECT_NEAR(measured_dyn.as_uj(), analytic_dyn.as_uj(), analytic_dyn.as_uj() * 0.01)
      << model.name();
  // And leakage exists but is a separate account.
  EXPECT_GT(p.ledger().total(energy::Activity::kLeakage).as_pj(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Models, EnergyProperty, ::testing::Range(0, 3));

// --- LUT-level: every feasible entry is executable within its constraint --

class LutExecutableProperty : public ::testing::TestWithParam<int> {};

TEST_P(LutExecutableProperty, FeasibleEntriesExecuteWithinConstraint) {
  const auto model = nn::zoo::paper_models()[static_cast<std::size_t>(GetParam())];
  sys::SystemConfig c;
  c.lut_t_entries = 24;
  c.lut_k_blocks = 32;
  sys::Processor p{c, model};
  ASSERT_NE(p.lut(), nullptr);
  for (const auto& e : p.lut()->entries()) {
    if (!e.feasible) continue;
    EXPECT_LE(placement::task_time(p.cost_model(), e.alloc).as_ns(),
              e.t_constraint.as_ns() * 1.0001)
        << model.name() << " tc=" << e.t_constraint.to_string();
    EXPECT_EQ(e.alloc.total(), model.effective_params());
    EXPECT_TRUE(placement::fits(p.cost_model(), e.alloc));
  }
}

INSTANTIATE_TEST_SUITE_P(Models, LutExecutableProperty, ::testing::Range(0, 3));

// --- determinism: identical runs produce identical joules ------------------

TEST(Determinism, ScenarioEnergyIsBitStable) {
  const auto model = nn::zoo::mobilenet_v2();
  const auto loads = workload::generate(workload::Scenario::kRandom,
                                        workload::ScenarioConfig{.slices = 6});
  double first = 0.0;
  for (int i = 0; i < 3; ++i) {
    sys::SystemConfig c;
    c.lut_t_entries = 24;
    c.lut_k_blocks = 24;
    sys::Processor p{c, model};
    const auto run = p.run_scenario(loads);
    if (i == 0) {
      first = run.total_energy.as_pj();
    } else {
      EXPECT_DOUBLE_EQ(run.total_energy.as_pj(), first);
    }
  }
}

}  // namespace
}  // namespace hhpim
