#include "noc/axi.hpp"
#include "noc/link.hpp"
#include "noc/ring.hpp"

#include <gtest/gtest.h>

namespace hhpim::noc {
namespace {

using energy::EnergyLedger;

TEST(Link, SerializationPlusLatency) {
  EnergyLedger ledger;
  Link link{LinkConfig{"l", 8.0, Time::ns(2.0), Energy::pj(0.15)}, &ledger};
  const auto r = link.transfer(Time::zero(), 80);
  EXPECT_EQ(r.start, Time::zero());
  EXPECT_EQ(r.complete, Time::ns(10.0 + 2.0));
  EXPECT_NEAR(r.energy.as_pj(), 12.0, 0.01);
  EXPECT_EQ(link.bytes_moved(), 80u);
}

TEST(Link, BackToBackTransfersQueueOnSerialization) {
  EnergyLedger ledger;
  Link link{LinkConfig{"l", 8.0, Time::ns(2.0), Energy::pj(0.15)}, &ledger};
  const auto r1 = link.transfer(Time::zero(), 80);
  const auto r2 = link.transfer(Time::zero(), 80);
  // Second transfer serializes after the first's payload (latency pipelines).
  EXPECT_EQ(r2.start, Time::ns(10.0));
  EXPECT_EQ(r2.complete, Time::ns(22.0));
  (void)r1;
}

TEST(Axi, BeatsAndBursts) {
  EnergyLedger ledger;
  AxiChannel axi{AxiConfig{"axi", 8, Time::ns(1.0), 4, 256, Energy::pj(1.2)}, &ledger};
  // 4096 bytes = 512 beats = 2 bursts of 256: 512 data + 2*4 addr cycles.
  const auto r = axi.transfer(Time::zero(), 4096);
  EXPECT_EQ(r.bursts, 2u);
  EXPECT_EQ(r.complete, Time::ns(520.0));
  EXPECT_NEAR(r.energy.as_pj(), 512 * 1.2, 0.1);
}

TEST(Axi, PartialBeatRoundsUp) {
  EnergyLedger ledger;
  AxiChannel axi{AxiConfig{"axi", 8, Time::ns(1.0), 4, 256, Energy::pj(1.2)}, &ledger};
  const auto r = axi.transfer(Time::zero(), 9);  // 2 beats, 1 burst
  EXPECT_EQ(r.bursts, 1u);
  EXPECT_EQ(r.complete, Time::ns(6.0));
}

TEST(Ring, ShortestPathHopCount) {
  EnergyLedger ledger;
  Ring ring{RingConfig{"r", 6, Time::ns(1.0), 8.0, Energy::pj(0.08)}, &ledger};
  EXPECT_EQ(ring.hops(0, 1), 1u);
  EXPECT_EQ(ring.hops(0, 3), 3u);
  EXPECT_EQ(ring.hops(0, 5), 1u);  // wraps the short way
  EXPECT_EQ(ring.hops(4, 1), 3u);
  EXPECT_THROW(ring.hops(0, 6), std::out_of_range);
}

TEST(Ring, TransferTimingIncludesHops) {
  EnergyLedger ledger;
  Ring ring{RingConfig{"r", 4, Time::ns(1.0), 8.0, Energy::pj(0.08)}, &ledger};
  const auto r = ring.send(Time::zero(), 0, 2, 64);  // 2 hops
  EXPECT_EQ(r.complete, Time::ns(8.0 + 2.0));
  EXPECT_NEAR(r.energy.as_pj(), 64 * 2 * 0.08, 0.01);
  EXPECT_EQ(ring.messages(), 1u);
}

TEST(Ring, OppositeDirectionsDoNotContend) {
  EnergyLedger ledger;
  Ring ring{RingConfig{"r", 4, Time::ns(1.0), 8.0, Energy::pj(0.08)}, &ledger};
  const auto cw = ring.send(Time::zero(), 0, 1, 800);   // clockwise
  const auto ccw = ring.send(Time::zero(), 0, 3, 800);  // counter-clockwise
  EXPECT_EQ(cw.start, Time::zero());
  EXPECT_EQ(ccw.start, Time::zero());  // separate channel, no queueing
}

TEST(Ring, SameDirectionContends) {
  EnergyLedger ledger;
  Ring ring{RingConfig{"r", 4, Time::ns(1.0), 8.0, Energy::pj(0.08)}, &ledger};
  const auto first = ring.send(Time::zero(), 0, 1, 800);
  const auto second = ring.send(Time::zero(), 1, 2, 800);  // same direction
  EXPECT_EQ(second.start, Time::ns(100.0));
  (void)first;
}

TEST(Ring, TooSmallRejected) {
  EnergyLedger ledger;
  EXPECT_THROW(Ring(RingConfig{"r", 1, Time::ns(1.0), 8.0, Energy::pj(0.08)}, &ledger),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhpim::noc
