#include "placement/movement.hpp"

#include <gtest/gtest.h>

#include "placement/brute_force.hpp"

namespace hhpim::placement {
namespace {

using energy::PowerSpec;

CostModel paper_model() {
  return CostModel::build(PowerSpec::paper_45nm(), ClusterShape{4, 64 * 1024, 64 * 1024},
                          ClusterShape{4, 64 * 1024, 64 * 1024}, 10.0);
}

TEST(MovementPlan, ConservesWeights) {
  Allocation from;
  from[Space::kHpSram] = 1000;
  from[Space::kLpMram] = 500;
  Allocation to;
  to[Space::kLpMram] = 1200;
  to[Space::kLpSram] = 300;
  const MovementPlan plan = plan_movement(from, to);
  // Everything leaving HP-SRAM lands somewhere; total moved = total surplus.
  EXPECT_EQ(plan.total(), 1000u);
  // Apply the plan and check we arrive at `to`.
  std::array<std::int64_t, kSpaceCount> sim{};
  for (std::size_t i = 0; i < kSpaceCount; ++i) {
    sim[i] = static_cast<std::int64_t>(from.weights[i]);
  }
  for (std::size_t s = 0; s < kSpaceCount; ++s) {
    for (std::size_t d = 0; d < kSpaceCount; ++d) {
      sim[s] -= static_cast<std::int64_t>(plan.moved[s][d]);
      sim[d] += static_cast<std::int64_t>(plan.moved[s][d]);
    }
  }
  for (std::size_t i = 0; i < kSpaceCount; ++i) {
    EXPECT_EQ(sim[i], static_cast<std::int64_t>(to.weights[i])) << i;
  }
}

TEST(MovementPlan, NoMovementForIdenticalAllocations) {
  Allocation a;
  a[Space::kHpMram] = 42;
  EXPECT_EQ(plan_movement(a, a).total(), 0u);
}

TEST(MovementPlan, PrefersIntraClusterMoves) {
  Allocation from;
  from[Space::kHpSram] = 100;
  from[Space::kLpSram] = 100;
  Allocation to;
  to[Space::kHpMram] = 100;
  to[Space::kLpMram] = 100;
  const MovementPlan plan = plan_movement(from, to);
  // Both moves stay inside their cluster: SRAM -> MRAM locally.
  EXPECT_EQ(plan.at(Space::kHpSram, Space::kHpMram), 100u);
  EXPECT_EQ(plan.at(Space::kLpSram, Space::kLpMram), 100u);
  EXPECT_EQ(plan.at(Space::kHpSram, Space::kLpMram), 0u);
}

TEST(MovementPlan, CrossClusterWhenNecessary) {
  Allocation from;
  from[Space::kHpSram] = 100;
  Allocation to;
  to[Space::kLpMram] = 100;
  const MovementPlan plan = plan_movement(from, to);
  EXPECT_EQ(plan.at(Space::kHpSram, Space::kLpMram), 100u);
}

TEST(EstimateMovement, ZeroPlanCostsNothing) {
  const CostModel m = paper_model();
  const MovementCost c = estimate_movement(m, MovementPlan{});
  EXPECT_EQ(c.time, Time::zero());
  EXPECT_DOUBLE_EQ(c.energy.as_pj(), 0.0);
}

TEST(EstimateMovement, EnergyIsReadPlusWrite) {
  const CostModel m = paper_model();
  MovementPlan plan;
  plan.moved[static_cast<std::size_t>(Space::kHpSram)]
            [static_cast<std::size_t>(Space::kHpMram)] = 1000;
  const MovementCost c = estimate_movement(m, plan);
  // 1000 HP-SRAM reads (508.93 mW * 1.12 ns) + 1000 HP-MRAM writes
  // (133.78 mW * 11.81 ns); intra-cluster so no interface energy.
  const double expect = 1000 * (508.93 * 1.12 + 133.78 * 11.81);
  EXPECT_NEAR(c.energy.as_pj(), expect, 1.0);
  // Write-dominated pipeline: 1000/4 lanes * 11.81 ns.
  EXPECT_NEAR(c.time.as_ns(), 250 * 11.81, 1.0);
}

TEST(EstimateMovement, CrossClusterAddsInterfaceTerm) {
  const CostModel m = paper_model();
  MovementPlan cross;
  cross.moved[static_cast<std::size_t>(Space::kHpSram)]
             [static_cast<std::size_t>(Space::kLpMram)] = 1000;
  const MovementCost cc = estimate_movement(m, cross);
  // Energy = reads + writes + one interface byte per weight (0.12 pJ).
  const double rw = 1000 * (508.93 * 1.12 + 47.78 * 14.65);
  EXPECT_NEAR(cc.energy.as_pj(), rw + 1000 * 0.12, 1.0);
  // Time includes the interface latency on top of the slowest stage
  // (LP-MRAM writes, 250 per lane at 14.65 ns).
  EXPECT_NEAR(cc.time.as_ns(), 250 * 14.65 + 2.0, 1.0);
}

TEST(EstimateMovement, TimeGrowsWithVolume) {
  const CostModel m = paper_model();
  MovementPlan small, big;
  small.moved[0][1] = 100;
  big.moved[0][1] = 10000;
  EXPECT_LT(estimate_movement(m, small).time, estimate_movement(m, big).time);
}

TEST(BruteForce, FindsObviousOptima) {
  const CostModel m = paper_model();
  // Very relaxed constraint: expect the minimum-energy space to win. With
  // uses=10 and no retention window pressure at tc, dynamic dominates:
  // LP-SRAM has the cheapest dynamic energy.
  const auto r = brute_force_placement(m, 100, Time::ms(100.0), 10);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.alloc[Space::kLpSram] + r.alloc[Space::kLpMram], 50u);
}

TEST(BruteForce, InfeasibleWhenTooTight) {
  const CostModel m = paper_model();
  const auto r = brute_force_placement(m, 10000, Time::ns(10.0), 100);
  EXPECT_FALSE(r.feasible);
}

TEST(BruteForce, RespectsTotalExactly) {
  const CostModel m = paper_model();
  const auto r = brute_force_placement(m, 1234, Time::ms(1.0), 100);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.alloc.total(), 1234u);
}

}  // namespace
}  // namespace hhpim::placement
