#include "hhpim/scheduler.hpp"

#include <gtest/gtest.h>

#include "hhpim/arch_config.hpp"

namespace hhpim::sys {
namespace {

using energy::PowerSpec;
using placement::Allocation;
using placement::AllocationLut;
using placement::CostModel;
using placement::LutParams;
using placement::Space;

CostModel paper_model(double uses = 29.0) {
  return CostModel::build(PowerSpec::paper_45nm(),
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024},
                          placement::ClusterShape{4, 64 * 1024, 64 * 1024}, uses);
}

TEST(ArchConfig, TableI) {
  const auto configs = ArchConfig::paper_table1();
  ASSERT_EQ(configs.size(), 4u);

  EXPECT_EQ(configs[0].kind, ArchKind::kBaseline);
  EXPECT_EQ(configs[0].hp_modules, 8u);
  EXPECT_EQ(configs[0].lp_modules, 0u);
  EXPECT_EQ(configs[0].mram_kb_per_module, 0u);
  EXPECT_EQ(configs[0].sram_kb_per_module, 128u);

  EXPECT_EQ(configs[1].kind, ArchKind::kHetero);
  EXPECT_EQ(configs[1].hp_modules, 4u);
  EXPECT_EQ(configs[1].lp_modules, 4u);
  EXPECT_EQ(configs[1].sram_kb_per_module, 128u);

  EXPECT_EQ(configs[2].kind, ArchKind::kHybrid);
  EXPECT_EQ(configs[2].hp_modules, 8u);
  EXPECT_EQ(configs[2].mram_kb_per_module, 64u);
  EXPECT_EQ(configs[2].sram_kb_per_module, 64u);

  EXPECT_EQ(configs[3].kind, ArchKind::kHhpim);
  EXPECT_EQ(configs[3].hp_modules, 4u);
  EXPECT_EQ(configs[3].lp_modules, 4u);
  EXPECT_EQ(configs[3].mram_kb_per_module, 64u);
  EXPECT_STREQ(to_string(ArchKind::kHhpim), "HH-PIM");
}

TEST(BalancedSplit, MatchesLatencyRatio) {
  const CostModel m = paper_model();
  const Allocation a = balanced_sram_split(m, 25000);
  EXPECT_EQ(a.total(), 25000u);
  // Per-weight HP-SRAM 6.64 ns vs LP-SRAM 12.09 ns (both / 4 modules):
  // x_hp / x_lp should track 12.09 / 6.64 = 1.82.
  const double ratio = static_cast<double>(a[Space::kHpSram]) /
                       static_cast<double>(a[Space::kLpSram]);
  EXPECT_NEAR(ratio, 12.09 / 6.64, 0.01);
  // Balance: the two cluster times differ by at most one weight's worth.
  const Time hp = placement::cluster_time(m, a, energy::ClusterKind::kHighPerformance);
  const Time lp = placement::cluster_time(m, a, energy::ClusterKind::kLowPower);
  const Time gap = hp > lp ? hp - lp : lp - hp;
  EXPECT_LE(gap, m.at(Space::kLpSram).time_per_weight * 2);
}

TEST(BalancedSplit, SixteenToNineAtTwentyFiveUnits) {
  // The paper's peak point stores the network 16:9 between HP-SRAM and
  // LP-SRAM. With 25 equal units our integer balance lands exactly there.
  const CostModel m = paper_model();
  const Allocation a = balanced_sram_split(m, 25);
  EXPECT_EQ(a[Space::kHpSram], 16u);
  EXPECT_EQ(a[Space::kLpSram], 9u);
}

TEST(BalancedSplit, HpOnlyWhenNoLpCluster) {
  const CostModel m = CostModel::build(PowerSpec::paper_45nm(),
                                       placement::ClusterShape{8, 0, 128 * 1024},
                                       placement::ClusterShape{0, 0, 0}, 29.0);
  const Allocation a = balanced_sram_split(m, 1000);
  EXPECT_EQ(a[Space::kHpSram], 1000u);
  EXPECT_EQ(a[Space::kLpSram], 0u);
}

TEST(StaticPolicy, AlwaysReturnsFixedPlacement) {
  Allocation fixed;
  fixed[Space::kHpMram] = 777;
  StaticPolicy policy{fixed, Time::ms(10.0)};
  EXPECT_EQ(policy.initial(), fixed);
  const auto d = policy.decide(Allocation{}, 5);
  EXPECT_EQ(d.alloc, fixed);
  EXPECT_EQ(d.t_constraint, Time::ms(2.0));
  EXPECT_TRUE(d.feasible);
  const auto idle = policy.decide(fixed, 0);
  EXPECT_EQ(idle.t_constraint, Time::ms(10.0));
  EXPECT_EQ(idle.plan.total(), 0u);
}

class DynamicPolicyTest : public ::testing::Test {
 protected:
  DynamicPolicyTest() : model(paper_model()) {
    LutParams p;
    p.slice = Time::ms(12.0);
    p.total_weights = 20000;
    p.t_entries = 48;
    p.k_blocks = 48;
    policy = std::make_unique<DynamicLutPolicy>(AllocationLut::build(model, p), model);
  }

  CostModel model;
  std::unique_ptr<DynamicLutPolicy> policy;
};

TEST_F(DynamicPolicyTest, IdleSlicesPark) {
  const auto d = policy->decide(policy->peak_allocation(), 0);
  // Parking = the most relaxed LUT entry, which avoids SRAM retention.
  EXPECT_EQ(d.alloc, policy->lut().entries().back().alloc);
  EXPECT_GT(d.plan.total(), 0u);  // weights actually move out of SRAM
}

TEST_F(DynamicPolicyTest, HighLoadGoesFast) {
  const auto d = policy->decide(policy->initial(), 10);
  // At 10 tasks per slice the budget is ~peak: placement must be SRAM-heavy.
  const std::uint64_t sram = d.alloc[Space::kHpSram] + d.alloc[Space::kLpSram];
  EXPECT_GT(sram, d.alloc.total() / 2);
  EXPECT_LE(placement::task_time(model, d.alloc), d.t_constraint);
}

TEST_F(DynamicPolicyTest, LowLoadGoesFrugal) {
  const auto d = policy->decide(policy->initial(), 1);
  // One task in a whole slice: the optimizer should lean on LP/MRAM.
  const std::uint64_t frugal = d.alloc[Space::kLpMram] + d.alloc[Space::kLpSram] +
                               d.alloc[Space::kHpMram];
  EXPECT_GT(frugal, d.alloc.total() / 2);
  EXPECT_TRUE(d.feasible);
}

TEST_F(DynamicPolicyTest, MovementBudgetTightensConstraint) {
  // Transitioning from a far-away placement must shrink t_constraint below
  // the no-movement value.
  Allocation far;
  far[Space::kHpMram] = 20000;
  const auto d = policy->decide(far, 4);
  EXPECT_LE(d.t_constraint, Time::ms(3.0));
  if (d.plan.total() > 0) {
    EXPECT_GT(d.movement_time, Time::zero());
    EXPECT_GT(d.movement_energy.as_pj(), 0.0);
  }
}

TEST_F(DynamicPolicyTest, DecisionsTotalIsConserved) {
  for (const int n : {0, 1, 2, 5, 10}) {
    const auto d = policy->decide(policy->initial(), n);
    EXPECT_EQ(d.alloc.total(), 20000u) << n;
  }
}

}  // namespace
}  // namespace hhpim::sys
