#include "common/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hhpim {
namespace {

struct LogCapture {
  std::vector<std::pair<LogLevel, std::string>> lines;

  LogCapture() {
    Log::set_sink([this](LogLevel l, const std::string& m) { lines.emplace_back(l, m); });
  }
  ~LogCapture() {
    Log::set_sink(nullptr);
    Log::set_level(LogLevel::kWarn);
  }
};

TEST(Log, RespectsLevel) {
  LogCapture cap;
  Log::set_level(LogLevel::kWarn);
  HHPIM_DEBUG() << "hidden";
  HHPIM_INFO() << "hidden too";
  HHPIM_WARN() << "visible";
  HHPIM_ERROR() << "also visible";
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_EQ(cap.lines[0].second, "visible");
  EXPECT_EQ(cap.lines[1].first, LogLevel::kError);
}

TEST(Log, StreamsCompose) {
  LogCapture cap;
  Log::set_level(LogLevel::kDebug);
  HHPIM_DEBUG() << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0].second, "x=42 y=1.5");
}

TEST(Log, OffSilencesEverything) {
  LogCapture cap;
  Log::set_level(LogLevel::kOff);
  HHPIM_ERROR() << "nope";
  EXPECT_TRUE(cap.lines.empty());
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::kDebug), "debug");
  EXPECT_STREQ(Log::level_name(LogLevel::kError), "error");
}

}  // namespace
}  // namespace hhpim
