// Concurrency suite for the contention-free hot paths (see docs/PERF.md
// "Parallel scaling"): the lock-free LutCache fast path under mixed
// get_or_build/clear/stats stress, waiter accounting when a joined build
// fails, in-flight visibility in Stats, worker/claim-batch resolution,
// the shared processor checkout pools, and fleet byte-identity across
// thread counts with batched shard claiming on.
//
// All assertions run on the main thread after workers join — worker
// threads only record into their own slots — so the suite is safe under
// the minigtest shim and clean under ThreadSanitizer (the CI `tsan` job
// runs it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim {
namespace {

placement::CostModel stress_model(double uses = 29.0) {
  return placement::CostModel::build(energy::PowerSpec::paper_45nm(),
                                     placement::ClusterShape{4, 64 * 1024, 64 * 1024},
                                     placement::ClusterShape{4, 64 * 1024, 64 * 1024},
                                     uses);
}

placement::LutParams stress_params(int resolution) {
  placement::LutParams p;
  p.slice = Time::ms(10.0);
  p.total_weights = 10000;
  p.t_entries = resolution;
  p.k_blocks = resolution;
  return p;
}

// --- LutCache: lock-free fast path + waiter accounting -----------------------

// Every get_or_build call resolves to exactly one of {hit, miss (it built),
// failed_join (it joined a build that threw)} — regardless of interleaving.
// 8 threads hammer 3 good keys and 1 always-failing key; the identity
// must hold exactly, and no failing call may ever be counted a hit (the
// pre-fix code counted a waiter as a hit the moment it joined, so a failed
// build inflated hits_).
TEST(LutCacheConcurrency, AccountingIdentityUnderMixedGoodAndFailingKeys) {
  placement::LutCache cache;
  const placement::CostModel m = stress_model();
  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  const int resolutions[] = {8, 12, 16};

  placement::LutParams bad = stress_params(8);
  bad.total_weights = 0;  // AllocationLut::build throws std::invalid_argument
  const auto bad_key = placement::LutCacheKey::make(1, 2, m, bad);

  std::atomic<bool> start{false};
  std::vector<std::uint64_t> ok_calls(kThreads), bad_calls(kThreads),
      wrong_outcome(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIters; ++i) {
        if (i % 3 == 2) {
          try {
            (void)cache.get_or_build(bad_key, m, bad);
            ++wrong_outcome[static_cast<std::size_t>(t)];  // must always throw
          } catch (const std::invalid_argument&) {
            ++bad_calls[static_cast<std::size_t>(t)];
          }
        } else {
          const int res = resolutions[(t + i) % 3];
          const placement::LutParams p = stress_params(res);
          const auto key = placement::LutCacheKey::make(1, 2, m, p);
          try {
            if (cache.get_or_build(key, m, p) != nullptr) {
              ++ok_calls[static_cast<std::size_t>(t)];
            }
          } catch (...) {
            ++wrong_outcome[static_cast<std::size_t>(t)];  // good keys never throw
          }
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  std::uint64_t ok = 0, failed = 0, wrong = 0;
  for (int t = 0; t < kThreads; ++t) {
    ok += ok_calls[static_cast<std::size_t>(t)];
    failed += bad_calls[static_cast<std::size_t>(t)];
    wrong += wrong_outcome[static_cast<std::size_t>(t)];
  }
  EXPECT_EQ(wrong, 0u);
  EXPECT_EQ(ok + failed, static_cast<std::uint64_t>(kThreads) * kIters);

  const auto s = cache.stats();
  // The identity: every call was a hit, a miss, or a failed join.
  EXPECT_EQ(s.hits + s.misses + s.failed_joins, ok + failed);
  // Good keys build exactly once each; every failing call was a builder
  // (miss) or a failed join — never, ever a hit.
  EXPECT_EQ(s.hits, ok - 3u);
  EXPECT_EQ(s.misses + s.failed_joins, failed + 3u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.in_flight, 0u);
}

// A storm on a single always-failing key: whatever the interleaving, no
// call may be classified a hit, and the slot must never stick.
TEST(LutCacheConcurrency, FailedBuildStormNeverCountsHits) {
  placement::LutCache cache;
  const placement::CostModel m = stress_model();
  placement::LutParams bad = stress_params(8);
  bad.total_weights = 0;
  const auto key = placement::LutCacheKey::make(7, 7, m, bad);

  constexpr int kThreads = 8;
  constexpr int kRounds = 16;
  std::uint64_t threw = 0;
  for (int r = 0; r < kRounds; ++r) {
    std::atomic<bool> start{false};
    std::vector<int> caught(kThreads);
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        while (!start.load(std::memory_order_acquire)) {}
        try {
          (void)cache.get_or_build(key, m, bad);
        } catch (...) {
          caught[static_cast<std::size_t>(t)] = 1;
        }
      });
    }
    start.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    for (int t = 0; t < kThreads; ++t) threw += static_cast<std::uint64_t>(caught[static_cast<std::size_t>(t)]);
  }

  EXPECT_EQ(threw, static_cast<std::uint64_t>(kThreads) * kRounds);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);  // the satellite bug: waiters on failed builds were hits
  EXPECT_EQ(s.misses + s.failed_joins, threw);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_FALSE(cache.contains(key));
}

// Stats must reflect a build in flight, and a waiter that joins a
// successful build is a hit only once the future resolves.
TEST(LutCacheConcurrency, StatsReflectInFlightBuilds) {
  placement::LutCache cache;
  const placement::CostModel m = stress_model();
  // Big enough that the builder is still inside AllocationLut::build when
  // the main thread polls (a 128x128 DP takes ~100ms; the poll loop below
  // runs within microseconds of the spawn).
  const placement::LutParams slow = stress_params(128);
  const auto key = placement::LutCacheKey::make(3, 4, m, slow);

  std::thread builder{[&] { (void)cache.get_or_build(key, m, slow); }};
  bool saw_in_flight = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto s = cache.stats();
    if (s.in_flight == 1 && s.entries == 1) {
      saw_in_flight = true;
      break;
    }
    if (s.entries == 1 && s.in_flight == 0) break;  // build already done
  }
  std::thread waiter{[&] { (void)cache.get_or_build(key, m, slow); }};
  builder.join();
  waiter.join();

  EXPECT_TRUE(saw_in_flight);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);  // the waiter (or fast-path hit if it arrived late)
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.in_flight, 0u);
}

// Mixed get_or_build/clear/stats: clear() retires the published snapshot
// instead of freeing it, so a reader that raced past the atomic load keeps
// a valid map; every successful return must be a usable LUT. Counters are
// not asserted (clear() resets them mid-flight by design).
TEST(LutCacheConcurrency, MixedGetClearStatsStress) {
  placement::LutCache cache;
  const placement::CostModel m = stress_model();
  constexpr int kThreads = 6;
  constexpr int kIters = 40;
  const int resolutions[] = {8, 12};

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> bad_luts(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIters; ++i) {
        const int res = resolutions[(t + i) % 2];
        const placement::LutParams p = stress_params(res);
        const auto key = placement::LutCacheKey::make(1, 2, m, p);
        const auto lut = cache.get_or_build(key, m, p);
        if (lut == nullptr ||
            lut->entries().size() != static_cast<std::size_t>(res)) {
          ++bad_luts[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  std::thread churner{[&] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.clear();
      (void)cache.stats();
      (void)cache.contains(placement::LutCacheKey{});
      std::this_thread::yield();
    }
  }};
  start.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  stop.store(true, std::memory_order_release);
  churner.join();

  std::uint64_t bad = 0;
  for (int t = 0; t < kThreads; ++t) bad += bad_luts[static_cast<std::size_t>(t)];
  EXPECT_EQ(bad, 0u);
  // Quiescent now: a final round lands one entry per key again.
  cache.clear();
  const placement::LutParams p = stress_params(8);
  EXPECT_NE(cache.get_or_build(placement::LutCacheKey::make(1, 2, m, p), m, p),
            nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// --- worker / claim-batch resolution -----------------------------------------

TEST(FleetSimulator, WorkerCountClampsToShards) {
  using fleet::FleetSimulator;
  EXPECT_EQ(FleetSimulator::resolve_workers(8, 3), 3u);
  EXPECT_EQ(FleetSimulator::resolve_workers(8, 100), 8u);
  EXPECT_EQ(FleetSimulator::resolve_workers(2, 2), 2u);
  EXPECT_EQ(FleetSimulator::resolve_workers(8, 1), 1u);
  EXPECT_EQ(FleetSimulator::resolve_workers(8, 0), 1u);  // zero-device fleet
  EXPECT_GE(FleetSimulator::resolve_workers(0, 64), 1u); // 0 = hw concurrency
}

TEST(FleetSimulator, ClaimBatchResolution) {
  using fleet::FleetSimulator;
  // Explicit request wins.
  EXPECT_EQ(FleetSimulator::resolve_claim_batch(4, 1000, 8), 4u);
  EXPECT_EQ(FleetSimulator::resolve_claim_batch(1, 1000, 8), 1u);
  // Auto: ~8 claims per worker, never below 1.
  EXPECT_EQ(FleetSimulator::resolve_claim_batch(0, 1024, 8), 16u);
  EXPECT_EQ(FleetSimulator::resolve_claim_batch(0, 10, 8), 1u);
  EXPECT_EQ(FleetSimulator::resolve_claim_batch(0, 0, 1), 1u);
}

TEST(Runner, WorkerCountClampsToRuns) {
  using exp::Runner;
  EXPECT_EQ(Runner::resolve_workers(8, 3), 3u);
  EXPECT_EQ(Runner::resolve_workers(8, 100), 8u);
  EXPECT_EQ(Runner::resolve_workers(8, 0), 1u);
}

// --- shared processor checkout pool ------------------------------------------

TEST(ProcessorPool, ConcurrentCheckoutsAreDistinctAndRecycled) {
  sys::SystemConfig cfg;
  cfg.arch = sys::ArchConfig::hhpim();
  cfg.lut_t_entries = 8;
  cfg.lut_k_blocks = 8;
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache cache;
  cfg.lut_cache = &cache;

  exp::ProcessorPool pool;
  constexpr int kLeases = 4;
  {
    // Held simultaneously -> distinct processors, nothing idle.
    std::vector<exp::ProcessorPool::Lease> leases;
    leases.reserve(kLeases);
    for (int i = 0; i < kLeases; ++i) leases.push_back(pool.checkout(cfg, model));
    for (int a = 0; a < kLeases; ++a) {
      for (int b = a + 1; b < kLeases; ++b) {
        EXPECT_NE(&leases[static_cast<std::size_t>(a)].get(),
                  &leases[static_cast<std::size_t>(b)].get());
      }
    }
    EXPECT_EQ(pool.size(), 0u);
  }
  // All returned; sequential checkouts now recycle instead of constructing.
  EXPECT_EQ(pool.size(), static_cast<std::size_t>(kLeases));
  {
    const auto lease = pool.checkout(cfg, model);
    EXPECT_EQ(pool.size(), static_cast<std::size_t>(kLeases) - 1);
  }
  EXPECT_EQ(pool.size(), static_cast<std::size_t>(kLeases));

  // Concurrent checkout/run/return churn: leases never alias.
  constexpr int kThreads = 8;
  std::atomic<bool> start{false};
  std::vector<std::uint64_t> aliased(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 25; ++i) {
        const auto a = pool.checkout(cfg, model);
        const auto b = pool.checkout(cfg, model);
        if (&a.get() == &b.get()) ++aliased[static_cast<std::size_t>(t)];
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  std::uint64_t alias_total = 0;
  for (int t = 0; t < kThreads; ++t) alias_total += aliased[static_cast<std::size_t>(t)];
  EXPECT_EQ(alias_total, 0u);
}

// --- outcome-cache get-or-insert stress --------------------------------------

// 8 threads race lookup/insert_batch over an overlapping key range — the
// device-memo access pattern (miss -> run exact -> publish batch). Honest
// writers compute identical values, so any hit must carry the key's
// canonical value no matter which thread's insert won. Each worker records
// mismatches into its own slot; asserts run after the join (TSan-clean).
TEST(FleetConcurrency, OutcomeCacheConcurrentGetOrInsert) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 64;
  constexpr int kIters = 400;
  fleet::OutcomeCache cache;
  std::atomic<bool> start{false};
  std::vector<std::uint64_t> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &start, &mismatches, t] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::vector<std::pair<fleet::SliceOutcomeKey, fleet::SliceOutcome>> batch;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t k =
            (static_cast<std::uint64_t>(i) + static_cast<std::uint64_t>(t) * 7) % kKeys;
        const fleet::SliceOutcomeKey key{1, k, static_cast<std::uint32_t>(k % 3),
                                         static_cast<std::uint8_t>(k % 2)};
        const fleet::SliceOutcome* hit = cache.lookup(key);
        if (hit == nullptr) {
          batch.assign(1, {key, fleet::SliceOutcome{static_cast<double>(k),
                                                    static_cast<std::int64_t>(k), 0,
                                                    k ^ 0xabcdULL, 0, false}});
          cache.insert_batch(batch);
        } else if (hit->post_state != (k ^ 0xabcdULL) ||
                   hit->energy_pj != static_cast<double>(k)) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (const std::uint64_t m : mismatches) total += m;
  EXPECT_EQ(total, 0u);
  const fleet::OutcomeCache::Stats s = cache.stats();
  // Every residue mod kKeys is visited, so the snapshot converges to
  // exactly the canonical key set (first writer wins, no duplicates).
  EXPECT_EQ(s.entries, static_cast<std::size_t>(kKeys));
  EXPECT_EQ(s.insertions, kKeys);
  EXPECT_GT(s.hits, 0u);
}

// --- fleet identity across threads and claim batching ------------------------

TEST(FleetConcurrency, ByteIdenticalAcrossThreadsAndClaimBatches) {
  fleet::FleetSpec spec;
  spec.name = "concurrency-fleet";
  spec.devices = 30;
  spec.slices = 5;
  spec.models = {nn::zoo::efficientnet_b0()};
  spec.config.lut_t_entries = 16;
  spec.config.lut_k_blocks = 16;

  placement::LutCache ref_cache;
  fleet::FleetOptions ref_opts;
  ref_opts.threads = 1;
  ref_opts.shard_size = 4;
  ref_opts.lut_cache = &ref_cache;
  ref_opts.claim_batch = 1;
  const fleet::FleetResult ref = fleet::FleetSimulator{ref_opts}.run(spec);
  ASSERT_FALSE(ref.to_jsonl().empty());

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::size_t batch : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      placement::LutCache cache;
      fleet::FleetOptions opts;
      opts.threads = threads;
      opts.shard_size = 4;
      opts.lut_cache = &cache;
      opts.claim_batch = batch;
      const fleet::FleetResult r = fleet::FleetSimulator{opts}.run(spec);
      EXPECT_EQ(r.to_jsonl(), ref.to_jsonl())
          << "threads=" << threads << " claim_batch=" << batch;
      EXPECT_EQ(r.summary_to_json(), ref.summary_to_json())
          << "threads=" << threads << " claim_batch=" << batch;
      EXPECT_EQ(r.lut_builds, ref.lut_builds);
    }
  }
}

}  // namespace
}  // namespace hhpim
