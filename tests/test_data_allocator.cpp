#include "pim/data_allocator.hpp"

#include <gtest/gtest.h>

#include "pim/cluster.hpp"

namespace hhpim::pim {
namespace {

using energy::ClusterKind;
using energy::EnergyLedger;
using energy::MemoryKind;
using energy::PowerSpec;

class DataAllocatorTest : public ::testing::Test {
 protected:
  DataAllocatorTest()
      : hp(ClusterConfig{"hp", ClusterKind::kHighPerformance, 4, 64 * 1024, 64 * 1024},
           spec, &ledger),
        lp(ClusterConfig{"lp", ClusterKind::kLowPower, 4, 64 * 1024, 64 * 1024}, spec,
           &ledger),
        alloc(DataAllocatorConfig{"alloc", 4096, 4.0, Time::ns(2.0), Energy::pj(0.12)}, 4,
              &ledger) {}

  PowerSpec spec = PowerSpec::paper_45nm();
  EnergyLedger ledger;
  Cluster hp;
  Cluster lp;
  DataAllocator alloc;
};

TEST_F(DataAllocatorTest, CrossClusterTransferMovesAndCharges) {
  TransferRequest r;
  r.src = &hp.module(0);
  r.src_mem = MemoryKind::kSram;
  r.dst = &lp.module(0);
  r.dst_mem = MemoryKind::kSram;
  r.weights = 1000;
  const auto s = alloc.execute(Time::zero(), {r});
  EXPECT_EQ(s.weights_moved, 1000u);
  EXPECT_EQ(s.chunks, 1u);  // fits the 4096-byte rearrange buffer

  // Lower bound: the destination must write every weight (1.41 ns each).
  EXPECT_GE(s.complete - s.start, Time::ns(1000 * 1.41));
  // Upper bound: fully serialized read + transfer + write.
  EXPECT_LE(s.complete - s.start,
            Time::ns(1000 * 1.12) + Time::ns(1000 / 16.0) + Time::ns(2.0) +
                Time::ns(1000 * 1.41));
  // Energy: source reads + link + destination writes all appear.
  EXPECT_GT(ledger.total(energy::Activity::kMemRead).as_pj(), 0.0);
  EXPECT_GT(ledger.total(energy::Activity::kMemWrite).as_pj(), 0.0);
  EXPECT_GT(ledger.total(energy::Activity::kTransfer).as_pj(), 0.0);
}

TEST_F(DataAllocatorTest, ChunkingPipelinesThroughRearrangeBuffer) {
  TransferRequest r;
  r.src = &hp.module(0);
  r.src_mem = MemoryKind::kMram;
  r.dst = &lp.module(1);
  r.dst_mem = MemoryKind::kMram;
  r.weights = 10000;  // 3 chunks of 4096
  const auto s = alloc.execute(Time::zero(), {r});
  EXPECT_EQ(s.chunks, 3u);
  // Pipelined: total well below the fully serialized sum of all stages.
  const Time serial = Time::ns(10000 * 2.62) + Time::ns(10000 * 14.65);
  EXPECT_LT(s.complete - s.start, serial);
  // But at least as long as the slowest stage (LP-MRAM writes).
  EXPECT_GE(s.complete - s.start, Time::ns(10000 * 14.65));
}

TEST_F(DataAllocatorTest, IntraModuleMoveUsesModulePath) {
  TransferRequest r;
  r.src = &hp.module(2);
  r.src_mem = MemoryKind::kMram;
  r.dst = nullptr;  // same module
  r.dst_mem = MemoryKind::kSram;
  r.weights = 64;
  const auto s = alloc.execute(Time::zero(), {r});
  EXPECT_EQ(s.weights_moved, 64u);
  EXPECT_GT(hp.module(2).bank(MemoryKind::kSram).write_count(), 0u);
}

TEST_F(DataAllocatorTest, ParallelRequestsOverlap) {
  std::vector<TransferRequest> reqs;
  for (std::size_t i = 0; i < 4; ++i) {
    TransferRequest r;
    r.src = &hp.module(i);
    r.src_mem = MemoryKind::kSram;
    r.dst = &lp.module(i);
    r.dst_mem = MemoryKind::kSram;
    r.weights = 1000;
    reqs.push_back(r);
  }
  const auto s = alloc.execute(Time::zero(), reqs);
  EXPECT_EQ(s.weights_moved, 4000u);
  // Distinct module pairs overlap: far less than 4x one stream (the shared
  // link is 16 B/ns, so 4 x 1000 B serializes in 250 ns on it).
  EXPECT_LT(s.complete - s.start, Time::ns(4 * (1000 * 1.41) + 1000.0));
}

TEST_F(DataAllocatorTest, EmptyRequestsAreNoOps) {
  const auto s = alloc.execute(Time::ns(5.0), {});
  EXPECT_EQ(s.complete, Time::ns(5.0));
  EXPECT_EQ(s.weights_moved, 0u);
  EXPECT_EQ(alloc.total_weights_moved(), 0u);
}

}  // namespace
}  // namespace hhpim::pim
