// Dedicated suite for src/hhpim/scheduler.{hpp,cpp}: the per-slice placement
// decision. Complements test_policy.cpp (which exercises the paper-shaped
// configuration) with the scheduler's mode spectrum — performance-first under
// tight constraints, LUT-optimal in between, low-power-first when relaxed or
// idle — and with capacity-safety under a deliberately small cluster shape.
#include "hhpim/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hhpim/arch_config.hpp"
#include "placement/cost_model.hpp"
#include "placement/lut.hpp"

namespace hhpim::sys {
namespace {

using energy::PowerSpec;
using placement::Allocation;
using placement::AllocationLut;
using placement::CostModel;
using placement::LutParams;
using placement::Space;

// Small clusters (2 modules x 4096 weights per space => 8192 per space) so
// the 12000-weight working set actually presses against per-space capacity.
CostModel tight_model(double uses = 29.0) {
  return CostModel::build(PowerSpec::paper_45nm(),
                          placement::ClusterShape{2, 4096, 4096},
                          placement::ClusterShape{2, 4096, 4096}, uses);
}

constexpr std::uint64_t kTotalWeights = 12000;

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : model(tight_model()) {
    LutParams p;
    p.slice = Time::ms(12.0);
    p.total_weights = kTotalWeights;
    p.t_entries = 32;
    p.k_blocks = 32;
    policy = std::make_unique<DynamicLutPolicy>(AllocationLut::build(model, p), model);
  }

  CostModel model;
  std::unique_ptr<DynamicLutPolicy> policy;
};

TEST_F(SchedulerTest, PeakAllocationMatchesBalancedSplit) {
  // The scheduler's performance-mode placement is exactly the latency-
  // balanced HP-SRAM/LP-SRAM split.
  const Allocation peak = policy->peak_allocation();
  EXPECT_EQ(peak, balanced_sram_split(model, kTotalWeights));
  EXPECT_EQ(peak.total(), kTotalWeights);
  EXPECT_EQ(peak[Space::kHpMram] + peak[Space::kLpMram], 0u);
}

TEST_F(SchedulerTest, TightConstraintSelectsPerformanceMode) {
  // Max load: the budget per task is at (or below) the LUT's peak boundary,
  // so the decision must be SRAM-heavy and meet the constraint if feasible.
  const auto d = policy->decide(policy->initial(), 10);
  const std::uint64_t sram = d.alloc[Space::kHpSram] + d.alloc[Space::kLpSram];
  EXPECT_GT(sram, d.alloc.total() / 2);
  if (d.feasible) {
    EXPECT_LE(placement::task_time(model, d.alloc), d.t_constraint);
  }
}

TEST_F(SchedulerTest, RelaxedConstraintSelectsLowPowerMode) {
  // One task per 12 ms slice: the optimizer leans on MRAM/LP storage, and
  // predicted task energy is below the peak placement's for the same window.
  const auto d = policy->decide(policy->initial(), 1);
  const std::uint64_t frugal = d.alloc[Space::kHpMram] + d.alloc[Space::kLpMram] +
                               d.alloc[Space::kLpSram];
  EXPECT_GT(frugal, d.alloc.total() / 2);
  const Energy chosen = placement::task_energy(model, d.alloc, d.t_constraint);
  const Energy at_peak =
      placement::task_energy(model, policy->peak_allocation(), d.t_constraint);
  EXPECT_LE(chosen.as_pj(), at_peak.as_pj());
}

TEST_F(SchedulerTest, IdleSelectsParkingMode) {
  const auto d = policy->decide(policy->peak_allocation(), 0);
  EXPECT_EQ(d.alloc, policy->lut().entries().back().alloc);
  EXPECT_EQ(d.t_constraint, policy->lut().slice());
}

TEST_F(SchedulerTest, EveryDecisionRespectsClusterCapacity) {
  // Sweep load levels from several starting placements; no decision may
  // overfill any space or lose weights.
  Allocation mram_heavy;
  mram_heavy[Space::kHpMram] = 6000;
  mram_heavy[Space::kLpMram] = 6000;
  const Allocation starts[] = {policy->initial(), policy->peak_allocation(),
                               mram_heavy};
  for (const auto& start : starts) {
    for (const int n : {0, 1, 2, 3, 5, 8, 10, 16}) {
      const auto d = policy->decide(start, n);
      EXPECT_TRUE(placement::fits(model, d.alloc))
          << "n=" << n << " alloc=" << d.alloc.to_string();
      EXPECT_EQ(d.alloc.total(), kTotalWeights) << "n=" << n;
    }
  }
}

TEST_F(SchedulerTest, SteadyLoadConvergesToMovementFreeFixedPoint) {
  // Under constant load the decisions must settle: each slice's movement
  // budget depends on the previous placement, but within a few slices the
  // chosen allocation stops changing, and at the fixed point no movement is
  // planned and the full slice budget is available per task.
  Allocation current = policy->initial();
  SliceDecision d;
  bool settled = false;
  for (int slice = 0; slice < 6; ++slice) {
    d = policy->decide(current, 4);
    if (d.alloc == current) {
      settled = true;
      break;
    }
    current = d.alloc;
  }
  ASSERT_TRUE(settled) << "decisions still oscillating after 6 slices";
  EXPECT_EQ(d.plan.total(), 0u);
  EXPECT_EQ(d.movement_time, Time::zero());
  EXPECT_EQ(d.t_constraint, policy->lut().slice() / 4);
}

TEST_F(SchedulerTest, OverloadReportsInfeasibleButStaysLegal) {
  // Demand far beyond peak throughput: the scheduler must flag infeasibility
  // yet still hand back a capacity-legal, performance-mode placement.
  const auto d = policy->decide(policy->initial(), 100000);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(placement::fits(model, d.alloc));
  EXPECT_EQ(d.alloc.total(), kTotalWeights);
  const std::uint64_t sram = d.alloc[Space::kHpSram] + d.alloc[Space::kLpSram];
  EXPECT_GT(sram, d.alloc.total() / 2);
}

TEST(StaticScheduler, CapacityAndConstantPlacement) {
  const CostModel m = tight_model();
  const Allocation fixed = balanced_sram_split(m, kTotalWeights);
  StaticPolicy policy{fixed, Time::ms(10.0)};
  for (const int n : {0, 1, 5, 10}) {
    const auto d = policy.decide(policy.initial(), n);
    EXPECT_EQ(d.alloc, fixed);
    EXPECT_TRUE(placement::fits(m, d.alloc));
    EXPECT_EQ(d.t_constraint, n > 0 ? Time::ms(10.0) / n : Time::ms(10.0));
  }
}

TEST(BalancedSplitCapacity, StaysWithinSpaceCapacityNearFull) {
  // Splitting a working set close to the combined SRAM capacity must not
  // assign more to HP-SRAM than it can hold.
  const CostModel m = tight_model();
  const std::uint64_t hp_cap = m.at(Space::kHpSram).capacity_weights;
  const Allocation a = balanced_sram_split(m, kTotalWeights);
  EXPECT_LE(a[Space::kHpSram], hp_cap);
  EXPECT_EQ(a.total(), kTotalWeights);
}

}  // namespace
}  // namespace hhpim::sys
