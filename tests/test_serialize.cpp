#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hhpim {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(JsonNumber, ShortestRoundTripAndNonFinite) {
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(0.0 / 0.0), "null");
  // Round-trip: the rendering parses back to the exact same double.
  const double v = 1234.5678901234567;
  EXPECT_EQ(std::stod(json_number(v)), v);
}

TEST(JsonWriter, NestedStructure) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  w.field("name", "grid");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.field("i", 0);
  w.field("ok", true);
  w.end_object();
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(),
            "{\n  \"name\": \"grid\",\n  \"runs\": [\n    {\n      \"i\": 0,\n"
            "      \"ok\": true\n    },\n    2.5\n  ]\n}");
}

TEST(JsonWriter, EmptyContainersStayCompact) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(JsonWriter, CompactStyleEmitsNoWhitespace) {
  std::ostringstream os;
  JsonWriter w{os, JsonWriter::Style::kCompact};
  w.begin_object();
  w.field("name", "grid");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.field("i", 0);
  w.field("ok", true);
  w.end_object();
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  // One line, no spaces: the JSONL device-line format of the fleet shards.
  EXPECT_EQ(os.str(), "{\"name\":\"grid\",\"runs\":[{\"i\":0,\"ok\":true},2.5]}");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  JsonWriter w{os};
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);   // value without key
  EXPECT_THROW(w.end_array(), std::logic_error);  // wrong closer
  w.key("k");
  EXPECT_THROW(w.key("k2"), std::logic_error);  // two keys in a row
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  std::ostringstream os;
  CsvWriter w{os};
  w.row({"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

}  // namespace
}  // namespace hhpim
