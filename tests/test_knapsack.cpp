#include "placement/knapsack.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hhpim::placement {
namespace {

// A tiny reference solver for one cluster: enumerate x blocks in SRAM
// (space 1), k - x in MRAM (space 0).
double cluster_reference(const ClusterItems& items, int t, int k) {
  double best = kInfEnergy;
  for (int x = 0; x <= k; ++x) {
    const int mram = k - x;
    if (x > items[1].cap_blocks || mram > items[0].cap_blocks) continue;
    const int time = mram * items[0].time_steps + x * items[1].time_steps;
    if (time > t) continue;
    best = std::min(best, mram * items[0].energy_pj + x * items[1].energy_pj);
  }
  return best;
}

TEST(ClusterDp, MatchesReferenceOnSmallInstance) {
  // MRAM: slow (3 steps) cheap (1 pJ); SRAM: fast (1 step) pricey (5 pJ).
  const ClusterItems items = {DpItem{3, 1.0, 100}, DpItem{1, 5.0, 100}};
  const auto table = ClusterDpTable::build(items, 30, 10);
  for (int t = 0; t <= 30; ++t) {
    for (int k = 0; k <= 10; ++k) {
      EXPECT_DOUBLE_EQ(table.energy(t, k), cluster_reference(items, t, k))
          << "t=" << t << " k=" << k;
    }
  }
}

TEST(ClusterDp, SplitTracesTheOptimalPath) {
  const ClusterItems items = {DpItem{3, 1.0, 100}, DpItem{1, 5.0, 100}};
  const auto table = ClusterDpTable::build(items, 30, 10);
  // Plenty of time: everything goes to cheap MRAM.
  auto [mram, sram] = table.split(30, 10);
  EXPECT_EQ(mram, 10);
  EXPECT_EQ(sram, 0);
  // Tight time (10 steps for 10 blocks): everything must use 1-step SRAM.
  std::tie(mram, sram) = table.split(10, 10);
  EXPECT_EQ(mram, 0);
  EXPECT_EQ(sram, 10);
  // In between (t = 20): x SRAM + (10-x) MRAM with 3(10-x)+x <= 20 -> x >= 5.
  std::tie(mram, sram) = table.split(20, 10);
  EXPECT_EQ(sram, 5);
  EXPECT_EQ(mram, 5);
  EXPECT_DOUBLE_EQ(table.energy(20, 10), 5 * 1.0 + 5 * 5.0);
}

TEST(ClusterDp, InfeasibleIsInfinity) {
  const ClusterItems items = {DpItem{3, 1.0, 100}, DpItem{2, 5.0, 100}};
  const auto table = ClusterDpTable::build(items, 5, 10);  // 10 blocks, 5 steps
  EXPECT_FALSE(table.feasible(5, 10));
  EXPECT_TRUE(table.feasible(5, 2));
  EXPECT_TRUE(table.feasible(0, 0));  // zero blocks always feasible
}

TEST(ClusterDp, CapacityConstraintsBind) {
  // SRAM capacity 3 blocks only.
  const ClusterItems items = {DpItem{3, 1.0, 100}, DpItem{1, 5.0, 3}};
  const auto table = ClusterDpTable::build(items, 12, 6);
  // 6 blocks, 12 steps: unconstrained best would be 3 MRAM + 3 SRAM
  // (9 + 3 = 12 steps).
  const auto [mram, sram] = table.split(12, 6);
  EXPECT_LE(sram, 3);
  EXPECT_EQ(mram + sram, 6);
  EXPECT_TRUE(table.feasible(12, 6));
  // With 6 steps only: would need >= 4.5 SRAM blocks -> capacity blocks it.
  EXPECT_FALSE(table.feasible(6, 6));
}

TEST(ClusterDp, ZeroCapacitySpaceNeverUsed) {
  const ClusterItems items = {DpItem{1, 1.0, 0}, DpItem{1, 5.0, 100}};
  const auto table = ClusterDpTable::build(items, 10, 5);
  const auto [mram, sram] = table.split(10, 5);
  EXPECT_EQ(mram, 0);
  EXPECT_EQ(sram, 5);
}

TEST(ClusterDp, BothSpacesZeroCapacityOnlyEmptyIsFeasible) {
  const ClusterItems items = {DpItem{1, 1.0, 0}, DpItem{1, 5.0, 0}};
  const auto table = ClusterDpTable::build(items, 10, 5);
  for (int t = 0; t <= 10; ++t) {
    EXPECT_TRUE(table.feasible(t, 0)) << t;
    EXPECT_DOUBLE_EQ(table.energy(t, 0), 0.0) << t;
    for (int k = 1; k <= 5; ++k) EXPECT_FALSE(table.feasible(t, k)) << t << "," << k;
  }
}

TEST(ClusterDp, CombinedCapacityBounds) {
  // cap 2 + 3 = 5: k = 6 infeasible at any t; k = 5 feasible given time.
  const ClusterItems items = {DpItem{2, 1.0, 2}, DpItem{1, 5.0, 3}};
  const auto table = ClusterDpTable::build(items, 100, 8);
  EXPECT_FALSE(table.feasible(100, 6));
  EXPECT_FALSE(table.feasible(100, 8));
  ASSERT_TRUE(table.feasible(100, 5));
  const auto [mram, sram] = table.split(100, 5);
  EXPECT_EQ(mram, 2);
  EXPECT_EQ(sram, 3);
}

TEST(ClusterDp, ZeroDimensionsDegenerate) {
  const ClusterItems items = {DpItem{1, 1.0, 4}, DpItem{1, 2.0, 4}};
  const auto zero_k = ClusterDpTable::build(items, 5, 0);
  for (int t = 0; t <= 5; ++t) EXPECT_DOUBLE_EQ(zero_k.energy(t, 0), 0.0);
  const auto zero_t = ClusterDpTable::build(items, 0, 3);
  EXPECT_TRUE(zero_t.feasible(0, 0));
  EXPECT_FALSE(zero_t.feasible(0, 1));  // every block costs >= 1 step
}

TEST(MaxFeasibleBlocks, MatchesTheDpFrontier) {
  const ClusterItems items = {DpItem{3, 1.0, 4}, DpItem{1, 5.0, 3}};
  const int T = 20;
  const int K = 10;
  const auto table = ClusterDpTable::build(items, T, K);
  for (int t = 0; t <= T; ++t) {
    const int frontier = max_feasible_blocks(items, t, K);
    for (int k = 0; k <= K; ++k) {
      EXPECT_EQ(table.feasible(t, k), k <= frontier) << "t=" << t << " k=" << k;
    }
  }
}

TEST(MaxFeasibleBlocks, CapsAndBudget) {
  const ClusterItems items = {DpItem{2, 1.0, 100}, DpItem{1, 5.0, 2}};
  // 2 fast blocks (1 step each) + budget/2 slow blocks.
  EXPECT_EQ(max_feasible_blocks(items, 10, 100), 2 + 4);
  EXPECT_EQ(max_feasible_blocks(items, 0, 100), 0);
  EXPECT_EQ(max_feasible_blocks(items, 10, 3), 3);  // clamped by k_max
  const ClusterItems empty = {DpItem{1, 1.0, 0}, DpItem{1, 1.0, 0}};
  EXPECT_EQ(max_feasible_blocks(empty, 100, 10), 0);
}

TEST(ClusterDp, InvalidArgumentsThrow) {
  const ClusterItems items = {DpItem{0, 1.0, 1}, DpItem{1, 1.0, 1}};
  EXPECT_THROW(ClusterDpTable::build(items, 10, 5), std::invalid_argument);
  const ClusterItems ok = {DpItem{1, 1.0, 1}, DpItem{1, 1.0, 1}};
  EXPECT_THROW(ClusterDpTable::build(ok, -1, 5), std::invalid_argument);
}

TEST(Combine, PicksBestSplitAcrossClusters) {
  // HP: fast & expensive; LP: slow & cheap.
  const ClusterItems hp_items = {DpItem{2, 10.0, 100}, DpItem{1, 20.0, 100}};
  const ClusterItems lp_items = {DpItem{4, 1.0, 100}, DpItem{2, 2.0, 100}};
  const auto hp = ClusterDpTable::build(hp_items, 40, 10);
  const auto lp = ClusterDpTable::build(lp_items, 40, 10);

  // Very relaxed: everything fits in the cheap LP-MRAM (10 * 4 = 40 steps).
  const auto relaxed = combine_clusters(hp, lp, 10, 40);
  EXPECT_TRUE(relaxed.feasible);
  EXPECT_EQ(relaxed.k_lp, 10);
  EXPECT_DOUBLE_EQ(relaxed.energy_pj, 10.0);

  // Tight (8 steps): LP alone holds at most 4 blocks (2 steps each); HP must
  // take the rest.
  const auto tight = combine_clusters(hp, lp, 10, 8);
  EXPECT_TRUE(tight.feasible);
  EXPECT_GE(tight.k_hp, 6);
  EXPECT_EQ(tight.k_hp + tight.k_lp, 10);

  // Impossible: more blocks than both clusters can chew in 3 steps.
  const auto impossible = combine_clusters(hp, lp, 10, 3);
  EXPECT_FALSE(impossible.feasible);
}

TEST(Combine, ExhaustiveCrossCheck) {
  const ClusterItems hp_items = {DpItem{2, 7.0, 100}, DpItem{1, 9.0, 100}};
  const ClusterItems lp_items = {DpItem{5, 1.0, 100}, DpItem{3, 2.0, 100}};
  const int K = 8;
  const int T = 25;
  const auto hp = ClusterDpTable::build(hp_items, T, K);
  const auto lp = ClusterDpTable::build(lp_items, T, K);
  for (int t = 0; t <= T; ++t) {
    const auto got = combine_clusters(hp, lp, K, t);
    // Reference: brute force over all (k_hp, intra-cluster splits).
    double best = kInfEnergy;
    for (int k_hp = 0; k_hp <= K; ++k_hp) {
      const double hp_e = cluster_reference(hp_items, t, k_hp);
      const double lp_e = cluster_reference(lp_items, t, K - k_hp);
      if (hp_e < kInfEnergy && lp_e < kInfEnergy) best = std::min(best, hp_e + lp_e);
    }
    if (best == kInfEnergy) {
      EXPECT_FALSE(got.feasible) << t;
    } else {
      ASSERT_TRUE(got.feasible) << t;
      EXPECT_DOUBLE_EQ(got.energy_pj, best) << t;
    }
  }
}

/// Property sweep: the DP result is optimal and feasible for randomized item
/// parameters.
class KnapsackProperty : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackProperty, DpIsOptimalAndFeasible) {
  const int seed = GetParam();
  // Simple deterministic pseudo-random parameters from the seed.
  auto lcg = [state = static_cast<std::uint32_t>(seed * 2654435761u)]() mutable {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  const ClusterItems items = {
      DpItem{1 + static_cast<int>(lcg() % 5), 1.0 + lcg() % 20,
             static_cast<int>(lcg() % 12)},
      DpItem{1 + static_cast<int>(lcg() % 5), 1.0 + lcg() % 20,
             static_cast<int>(lcg() % 12)},
  };
  const int K = 8;
  const int T = 30;
  const auto table = ClusterDpTable::build(items, T, K);
  // The DP enforces capacity along the traced optimal path (a conservative
  // extension of the paper's Algorithm 1, which assumes capacities suffice).
  // When capacities do not bind (cap >= K for both spaces) it is exactly
  // optimal; when they bind it never under-reports energy and its trace is
  // always a valid placement.
  const bool caps_slack = items[0].cap_blocks >= K && items[1].cap_blocks >= K;
  for (int t = 0; t <= T; t += 3) {
    for (int k = 0; k <= K; ++k) {
      const double expect = cluster_reference(items, t, k);
      if (caps_slack) {
        EXPECT_DOUBLE_EQ(table.energy(t, k), expect)
            << "seed=" << seed << " t=" << t << " k=" << k;
      } else if (table.energy(t, k) < kInfEnergy) {
        EXPECT_GE(table.energy(t, k), expect - 1e-9)
            << "seed=" << seed << " t=" << t << " k=" << k;
      }
      if (table.energy(t, k) < kInfEnergy) {
        const auto [m, s] = table.split(t, k);
        EXPECT_EQ(m + s, k);
        EXPECT_LE(m, items[0].cap_blocks);
        EXPECT_LE(s, items[1].cap_blocks);
        EXPECT_LE(m * items[0].time_steps + s * items[1].time_steps, t);
        EXPECT_DOUBLE_EQ(m * items[0].energy_pj + s * items[1].energy_pj,
                         table.energy(t, k));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty, ::testing::Range(1, 25));

}  // namespace
}  // namespace hhpim::placement
