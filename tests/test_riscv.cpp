#include "riscv/cpu.hpp"

#include <gtest/gtest.h>

#include "riscv/bus.hpp"
#include "riscv/rv_asm.hpp"

namespace hhpim::riscv {
namespace {

/// Assembles, loads at 0, runs until halt, returns the CPU for inspection.
class Machine {
 public:
  explicit Machine(const std::string& source, std::size_t ram_bytes = 64 * 1024)
      : ram(ram_bytes), cpu(&bus) {
    bus.map(0x0000'0000, static_cast<std::uint32_t>(ram_bytes), &ram);
    bus.map(0x1000'0000, 0x100, &console);
    const auto r = assemble_rv32(source);
    if (std::holds_alternative<RvAsmError>(r)) {
      const auto& e = std::get<RvAsmError>(r);
      throw std::runtime_error("asm error line " + std::to_string(e.line) + ": " +
                               e.message);
    }
    const auto& words = std::get<std::vector<std::uint32_t>>(r);
    for (std::size_t i = 0; i < words.size(); ++i) {
      ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
    }
  }

  Ram ram;
  Console console;
  Bus bus;
  Cpu cpu;
};

TEST(RvAsm, RegisterNames) {
  EXPECT_EQ(parse_register("x0"), 0);
  EXPECT_EQ(parse_register("zero"), 0);
  EXPECT_EQ(parse_register("sp"), 2);
  EXPECT_EQ(parse_register("a0"), 10);
  EXPECT_EQ(parse_register("t6"), 31);
  EXPECT_EQ(parse_register("x31"), 31);
  EXPECT_EQ(parse_register("x32"), -1);
  EXPECT_EQ(parse_register("bogus"), -1);
}

TEST(Cpu, ArithmeticImmediates) {
  Machine m(R"(
      addi a0, zero, 100
      addi a0, a0, -30
      slti a1, a0, 71
      xori a2, a0, 0xff
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu.reg(10), 70u);
  EXPECT_EQ(m.cpu.reg(11), 1u);
  EXPECT_EQ(m.cpu.reg(12), 70u ^ 0xffu);
}

TEST(Cpu, LuiAuipcAndLi) {
  Machine m(R"(
      lui a0, 0x12345
      li a1, 0x12345678
      li a2, -5
      auipc a3, 0
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), 0x12345000u);
  EXPECT_EQ(m.cpu.reg(11), 0x12345678u);
  EXPECT_EQ(m.cpu.reg(12), 0xfffffffbu);
  // pc of the auipc: lui (1 word) + large li (2 words) + small li (1 word).
  EXPECT_EQ(m.cpu.reg(13), 16u);
}

TEST(Cpu, BranchesAndLoop) {
  // Sum 1..10 with a loop.
  Machine m(R"(
      li t0, 0      # sum
      li t1, 1      # i
      li t2, 11
    loop:
      add t0, t0, t1
      addi t1, t1, 1
      blt t1, t2, loop
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(5), 55u);
}

TEST(Cpu, MemoryLoadsAndStores) {
  Machine m(R"(
      li t0, 0x1000
      li t1, -2
      sw t1, 0(t0)
      lw a0, 0(t0)
      lh a1, 0(t0)
      lhu a2, 0(t0)
      lb a3, 0(t0)
      lbu a4, 0(t0)
      sb t1, 8(t0)
      lbu a5, 8(t0)
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), 0xfffffffeu);
  EXPECT_EQ(m.cpu.reg(11), 0xfffffffeu);  // lh sign-extends
  EXPECT_EQ(m.cpu.reg(12), 0x0000fffeu);  // lhu zero-extends
  EXPECT_EQ(m.cpu.reg(13), 0xfffffffeu);
  EXPECT_EQ(m.cpu.reg(14), 0x000000feu);
  EXPECT_EQ(m.cpu.reg(15), 0x000000feu);
}

TEST(Cpu, ShiftsAndCompares) {
  Machine m(R"(
      li t0, -16
      srai a0, t0, 2
      srli a1, t0, 28
      slli a2, t0, 1
      li t1, 5
      sltu a3, t1, t0    # unsigned: 5 < 0xfff0 -> 1
      slt a4, t0, t1     # signed: -16 < 5 -> 1
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), 0xfffffffcu);
  EXPECT_EQ(m.cpu.reg(11), 0xfu);
  EXPECT_EQ(m.cpu.reg(12), 0xffffffe0u);
  EXPECT_EQ(m.cpu.reg(13), 1u);
  EXPECT_EQ(m.cpu.reg(14), 1u);
}

TEST(Cpu, MExtension) {
  Machine m(R"(
      li t0, 7
      li t1, -3
      mul a0, t0, t1
      mulh a1, t0, t1
      div a2, t1, t0
      rem a3, t1, t0
      divu a4, t1, t0
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), static_cast<std::uint32_t>(-21));
  EXPECT_EQ(m.cpu.reg(11), 0xffffffffu);  // high bits of negative product
  EXPECT_EQ(m.cpu.reg(12), 0u);           // -3 / 7 truncates toward zero
  EXPECT_EQ(m.cpu.reg(13), static_cast<std::uint32_t>(-3));
  EXPECT_EQ(m.cpu.reg(14), 0xfffffffdu / 7u);
}

TEST(Cpu, DivisionEdgeCases) {
  Machine m(R"(
      li t0, 5
      li t1, 0
      div a0, t0, t1     # div by zero -> -1
      rem a1, t0, t1     # rem by zero -> dividend
      li t2, 0x80000000
      li t3, -1
      div a2, t2, t3     # overflow -> INT_MIN
      rem a3, t2, t3     # overflow -> 0
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), 0xffffffffu);
  EXPECT_EQ(m.cpu.reg(11), 5u);
  EXPECT_EQ(m.cpu.reg(12), 0x80000000u);
  EXPECT_EQ(m.cpu.reg(13), 0u);
}

// All eight M-extension ops over one operand pair (a0, a1), results in
// t0..t6 + s0. Reused across operand sets by resume(0) + set_reg.
constexpr const char* kMExtProgram = R"(
    mul    t0, a0, a1
    mulh   t1, a0, a1
    mulhsu t2, a0, a1
    mulhu  t3, a0, a1
    div    t4, a0, a1
    divu   t5, a0, a1
    rem    t6, a0, a1
    remu   s0, a0, a1
    ecall
)";

/// The RV32M result for (a, b) computed with 64-bit reference math.
struct MRef {
  std::uint32_t mul, mulh, mulhsu, mulhu, div, divu, rem, remu;
};

MRef m_reference(std::uint32_t a, std::uint32_t b) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  const auto wa = static_cast<std::int64_t>(sa);
  const auto wb = static_cast<std::int64_t>(sb);
  MRef r{};
  r.mul = static_cast<std::uint32_t>(wa * wb);
  r.mulh = static_cast<std::uint32_t>(static_cast<std::uint64_t>(wa * wb) >> 32);
  r.mulhsu = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(wa * static_cast<std::int64_t>(b)) >> 32);
  r.mulhu = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
  if (b == 0) {
    r.div = 0xffffffffu;  // spec: quotient all ones
    r.rem = a;            // spec: remainder = dividend
    r.divu = 0xffffffffu;
    r.remu = a;
  } else {
    if (a == 0x80000000u && b == 0xffffffffu) {
      r.div = 0x80000000u;  // signed overflow: INT_MIN / -1
      r.rem = 0;
    } else {
      r.div = static_cast<std::uint32_t>(sa / sb);
      r.rem = static_cast<std::uint32_t>(sa % sb);
    }
    r.divu = a / b;
    r.remu = a % b;
  }
  return r;
}

TEST(Cpu, MExtensionMatchesWideReference) {
  // Satellite: DIV/REM by zero, INT_MIN/-1 overflow, and MULH/MULHSU/MULHU
  // sign behavior, every result cross-checked against 64-bit math.
  constexpr std::pair<std::uint32_t, std::uint32_t> kOperands[] = {
      {0, 0},
      {5, 0},                      // division by zero
      {0x80000000u, 0xffffffffu},  // INT_MIN / -1 signed overflow
      {0x80000000u, 1},
      {0x7fffffffu, 0x7fffffffu},
      {0xffffffffu, 0xffffffffu},  // -1 * -1 vs UINT_MAX * UINT_MAX
      {0xdeadbeefu, 0x12345678u},
      {7, 0xfffffffdu},            // 7, -3
      {0xfffffffdu, 7},
      {1u << 31, 1u << 31},
  };
  Machine m(kMExtProgram);
  for (const auto& [a, b] : kOperands) {
    m.cpu.resume(0);
    m.cpu.set_reg(10, a);
    m.cpu.set_reg(11, b);
    m.cpu.run();
    ASSERT_EQ(m.cpu.halt_reason(), HaltReason::kEcall);
    const MRef ref = m_reference(a, b);
    EXPECT_EQ(m.cpu.reg(5), ref.mul) << a << " mul " << b;
    EXPECT_EQ(m.cpu.reg(6), ref.mulh) << a << " mulh " << b;
    EXPECT_EQ(m.cpu.reg(7), ref.mulhsu) << a << " mulhsu " << b;
    EXPECT_EQ(m.cpu.reg(28), ref.mulhu) << a << " mulhu " << b;
    EXPECT_EQ(m.cpu.reg(29), ref.div) << a << " div " << b;
    EXPECT_EQ(m.cpu.reg(30), ref.divu) << a << " divu " << b;
    EXPECT_EQ(m.cpu.reg(31), ref.rem) << a << " rem " << b;
    EXPECT_EQ(m.cpu.reg(8), ref.remu) << a << " remu " << b;
  }
}

TEST(Cpu, MisalignedLoadHalts) {
  Machine m(R"(
      li t0, 0x1002
      lw a0, 0(t0)
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kMisalignedAccess);
}

TEST(Cpu, MisalignedStoreHalts) {
  Machine m(R"(
      li t0, 0x1001
      sh t1, 0(t0)
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kMisalignedAccess);
}

TEST(Cpu, MisalignedFetchHalts) {
  Machine m(R"(
      li t0, 2
      jr t0
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kMisalignedAccess);
  EXPECT_EQ(m.cpu.pc(), 2u);  // the bad pc is left for diagnostics
}

TEST(Cpu, UnmappedLoadHalts) {
  Machine m(R"(
      li t0, 0x00200000
      lw a0, 0(t0)
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kUnmappedAccess);
}

TEST(Cpu, UnmappedStoreHalts) {
  Machine m(R"(
      li t0, 0x00200000
      sw t0, 0(t0)
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kUnmappedAccess);
}

TEST(Cpu, UnmappedFetchHalts) {
  Machine m(R"(
      li t0, 0x00200000
      jr t0
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kUnmappedAccess);
  EXPECT_EQ(m.cpu.pc(), 0x00200000u);
}

TEST(Cpu, FetchFaultDoesNotRetire) {
  // A fetch that never produced an instruction retires nothing; a data
  // fault retires its instruction (the access happened architecturally).
  Machine bad_fetch(R"(
      li t0, 2
      jr t0
  )");
  bad_fetch.cpu.run();
  EXPECT_EQ(bad_fetch.cpu.retired(), 2u);  // li + jr only

  Machine bad_load(R"(
      li t0, 0x102
      lw a0, 0(t0)
      ecall
  )");
  bad_load.cpu.run();
  EXPECT_EQ(bad_load.cpu.halt_reason(), HaltReason::kMisalignedAccess);
  EXPECT_EQ(bad_load.cpu.retired(), 2u);  // li + the faulting lw
}

TEST(HaltReasonNames, AllDistinct) {
  EXPECT_STREQ(to_string(HaltReason::kEcall), "ecall");
  EXPECT_STREQ(to_string(HaltReason::kMisalignedAccess), "misaligned-access");
  EXPECT_STREQ(to_string(HaltReason::kUnmappedAccess), "unmapped-access");
}

TEST(Cpu, FunctionCallAndReturn) {
  Machine m(R"(
      li a0, 20
      call double_it
      call double_it
      ecall
    double_it:
      add a0, a0, a0
      ret
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), 80u);
}

TEST(Cpu, Fibonacci) {
  Machine m(R"(
      li a0, 0
      li a1, 1
      li t0, 15     # iterations
    fib:
      add t1, a0, a1
      mv a0, a1
      mv a1, t1
      addi t0, t0, -1
      bnez t0, fib
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(10), 610u);  // fib(15)
  EXPECT_EQ(m.cpu.reg(11), 987u);  // fib(16)
}

TEST(Cpu, BubbleSortInMemory) {
  // Sorts eight words in RAM — exercises nested loops, loads/stores with
  // computed addresses, and register pressure.
  Machine m(R"(
      li s0, 0x1000       # array base
      # store 8 unsorted values
      li t0, 42
      sw t0, 0(s0)
      li t0, 7
      sw t0, 4(s0)
      li t0, 99
      sw t0, 8(s0)
      li t0, 1
      sw t0, 12(s0)
      li t0, 63
      sw t0, 16(s0)
      li t0, 21
      sw t0, 20(s0)
      li t0, 88
      sw t0, 24(s0)
      li t0, 3
      sw t0, 28(s0)
      li s1, 8            # n
    outer:
      li t1, 0            # i
      li t6, 0            # swapped flag
    inner:
      slli t2, t1, 2
      add t2, t2, s0
      lw t3, 0(t2)
      lw t4, 4(t2)
      bge t4, t3, no_swap
      sw t4, 0(t2)
      sw t3, 4(t2)
      li t6, 1
    no_swap:
      addi t1, t1, 1
      addi t5, s1, -1
      blt t1, t5, inner
      bnez t6, outer
      lw a0, 0(s0)        # min
      lw a1, 28(s0)       # max
      ecall
  )");
  m.cpu.run(100000);
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu.reg(10), 1u);
  EXPECT_EQ(m.cpu.reg(11), 99u);
  // Whole array sorted ascending.
  std::uint32_t prev = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t v = m.ram.load(0x1000 + 4 * static_cast<std::uint32_t>(i), 4);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Cpu, ConsoleMmio) {
  Machine m(R"(
      li t0, 0x10000000
      li t1, 72      # 'H'
      sb t1, 0(t0)
      li t1, 105     # 'i'
      sb t1, 0(t0)
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.console.output(), "Hi");
}

TEST(Cpu, X0IsHardwiredZero) {
  Machine m(R"(
      addi zero, zero, 42
      mv a0, zero
      ecall
  )");
  m.cpu.run();
  EXPECT_EQ(m.cpu.reg(0), 0u);
  EXPECT_EQ(m.cpu.reg(10), 0u);
}

TEST(Cpu, BadInstructionHalts) {
  Machine m("ecall");
  m.ram.store(0, 4, 0xffffffffu);  // overwrite with garbage
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kBadInstruction);
}

TEST(Cpu, MaxStepsGuard) {
  Machine m(R"(
    spin:
      j spin
  )");
  const auto steps = m.cpu.run(1000);
  EXPECT_EQ(steps, 1000u);
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kMaxSteps);
}

TEST(Cpu, EbreakHalts) {
  Machine m("ebreak");
  m.cpu.run();
  EXPECT_EQ(m.cpu.halt_reason(), HaltReason::kEbreak);
}

TEST(Bus, UnmappedAccessThrows) {
  Bus bus;
  Ram ram{64};
  bus.map(0, 64, &ram);
  EXPECT_THROW(bus.load(100, 4), std::out_of_range);
  EXPECT_THROW(bus.map(32, 64, &ram), std::invalid_argument);  // overlap
}

TEST(RvAsm, ReportsErrors) {
  auto expect_err = [](const std::string& src) {
    const auto r = assemble_rv32(src);
    EXPECT_TRUE(std::holds_alternative<RvAsmError>(r)) << src;
  };
  expect_err("bogus a0, a1");
  expect_err("addi a0, a1");          // missing operand
  expect_err("addi a0, a1, 5000");    // imm out of range
  expect_err("beq a0, a1, nowhere");  // unknown label
  expect_err("dup: dup: nop");        // duplicate label
  expect_err("lw a0, a1");            // bad memory operand
}

}  // namespace
}  // namespace hhpim::riscv
